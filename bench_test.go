// Package main's bench_test.go is the benchmark harness of deliverable
// (d): one testing.B benchmark per table and figure of the paper's
// evaluation, plus ablation benches for the design choices DESIGN.md
// calls out. Each bench regenerates its experiment from scratch per
// iteration, so -benchmem also characterizes the pipeline's allocation
// behaviour; the b.N==1 runs that `go test -bench=.` performs are the
// cheap way to execute the whole evaluation suite.
//
// The printed rows/series themselves come from `go run
// ./cmd/experiments all`; these benches assert the same key shape
// properties the unit tests check, at benchmark scale.
package main

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"testing"

	corePkg "repro/internal/core"
	"repro/internal/device"
	enginePkg "repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/infer"
	"repro/internal/stats"
	tracePkg "repro/internal/trace"
	"repro/internal/workload"
)

// benchCfg is larger than the unit-test scale but still finishes each
// iteration in well under a second.
var benchCfg = experiments.Config{Ops: 4000}

func BenchmarkFig01InterArrivalCDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig1(benchCfg)
		if r.AccelShorterFrac < 0.5 {
			b.Fatalf("acceleration shorter frac %v", r.AccelShorterFrac)
		}
	}
}

func BenchmarkFig03Breakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig3(benchCfg)
		if len(r.Acceleration) != 5 {
			b.Fatal("rows missing")
		}
	}
}

func BenchmarkFig05Shapes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig5(benchCfg)
		if len(r.Synthetic) != 3 {
			b.Fatal("classification missing")
		}
	}
}

func BenchmarkFig07aTmovd(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig7a(benchCfg)
		if len(r.Series) != 10 {
			b.Fatal("series missing")
		}
	}
}

func BenchmarkFig07bTcdel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig7b(benchCfg)
		if len(r.Rows) != 10 {
			b.Fatal("rows missing")
		}
	}
}

func BenchmarkFig09Interp(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig9(benchCfg)
		if r.PchipOvershoot > 1e-9 {
			b.Fatal("pchip overshoot")
		}
	}
}

func BenchmarkTable1Corpus(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Table1(benchCfg)
		if len(r.Rows) != 31 {
			b.Fatal("rows missing")
		}
	}
}

func BenchmarkFig10LenTP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig10(benchCfg)
		if len(r.Known.PerPeriod) != 4 {
			b.Fatal("periods missing")
		}
	}
}

func BenchmarkFig11LenFP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig11(benchCfg)
		_ = r.KnownMean
	}
}

func BenchmarkFig12MSNFSCDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig12(benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig13MethodGap(b *testing.B) {
	cfg := experiments.Config{Ops: 1500} // 31 workloads x 5 methods
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig13(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if r.Mean["Acceleration"] == 0 {
			b.Fatal("zero gap")
		}
	}
}

func BenchmarkFig14TargetGap(b *testing.B) {
	cfg := experiments.Config{Ops: 1500}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig14(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig15CDFOverlay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig15(benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig16AvgIdle(b *testing.B) {
	cfg := experiments.Config{Ops: 1500}
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig16(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if r.SetAvg["FIU"] <= r.SetAvg["MSPS"] {
			b.Fatal("idle ordering violated")
		}
	}
}

func BenchmarkFig17IdleBreakdown(b *testing.B) {
	cfg := experiments.Config{Ops: 1500}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig17(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkClaimIdleShare(b *testing.B) {
	cfg := experiments.Config{Ops: 1500}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Claims(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations (DESIGN.md section 5) ---

// ablationTrace builds one FIU-style trace for the steepest-point
// ablations.
func ablationSamples() []float64 {
	p, _ := workload.Lookup("ikki")
	old, _ := experiments.GenerateOld(p, 0, 4000, 0)
	return old.InterArrivalMicros()
}

// BenchmarkAblationInterp compares the steepest-point location under
// PCHIP (paper's choice), spline, and linear interpolation.
func BenchmarkAblationInterp(b *testing.B) {
	samples := ablationSamples()
	for _, scheme := range []string{"pchip", "spline", "linear"} {
		b.Run(scheme, func(b *testing.B) {
			o := infer.DefaultSteepnessOptions()
			o.Interp = scheme
			for i := 0; i < b.N; i++ {
				if _, ok := infer.ExamineSteepness(samples, o); !ok {
					b.Fatal("examination failed")
				}
			}
		})
	}
}

// BenchmarkAblationMargin varies Algorithm 1's outlier margin divisor
// (paper: variance/2).
func BenchmarkAblationMargin(b *testing.B) {
	samples := ablationSamples()
	for _, div := range []float64{1, 2, 4} {
		name := map[float64]string{1: "var", 2: "var_over_2", 4: "var_over_4"}[div]
		b.Run(name, func(b *testing.B) {
			o := infer.DefaultSteepnessOptions()
			o.MarginDivisor = div
			for i := 0; i < b.N; i++ {
				if _, ok := infer.ExamineSteepness(samples, o); !ok {
					b.Fatal("examination failed")
				}
			}
		})
	}
}

// BenchmarkAblationBinning compares log-spaced (pipeline default) and
// linear PDF binning.
func BenchmarkAblationBinning(b *testing.B) {
	samples := ablationSamples()
	for _, binning := range []stats.Binning{stats.LogBins, stats.LinearBins} {
		b.Run(binning.String(), func(b *testing.B) {
			o := infer.DefaultSteepnessOptions()
			o.Binning = binning
			for i := 0; i < b.N; i++ {
				if _, ok := infer.ExamineSteepness(samples, o); !ok {
					b.Fatal("examination failed")
				}
			}
		})
	}
}

// BenchmarkAblationPostProcess is the Dynamic-vs-TraceTracker ablation
// at the whole-pipeline level: post-processing on and off.
func BenchmarkAblationPostProcess(b *testing.B) {
	// Captured implicitly by Fig12/Fig13; here measured as raw
	// pipeline cost difference.
	p, _ := workload.Lookup("Exchange")
	old, _ := experiments.GenerateOld(p, 0, 4000, 0)
	old.TsdevKnown = false
	b.Run("dynamic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := runPipeline(old, true); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("tracetracker", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := runPipeline(old, false); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// discard sinks render output in render benches.
var discard io.Writer = io.Discard

// BenchmarkRenderAll measures the reporting layer itself.
func BenchmarkRenderAll(b *testing.B) {
	r := experiments.Fig1(experiments.Config{Ops: 1000})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Render(discard)
	}
}

// --- Engine (internal/engine) ---

var (
	engineBenchOnce sync.Once
	engineBenchOld  *tracePkg.Trace
)

// engineBenchTrace lazily synthesizes the 1M-request corpus the engine
// throughput benches share: an MSNFS-profile application executed on
// the OLD device, so per-request latencies are recorded (Tsdev-known)
// and the parallel fraction — decomposition + emulation — dominates,
// as it does on the real event-traced corpora.
func engineBenchTrace(b *testing.B) *tracePkg.Trace {
	b.Helper()
	engineBenchOnce.Do(func() {
		p, ok := workload.Lookup("MSNFS")
		if !ok {
			panic("MSNFS profile missing")
		}
		app := workload.Generate(p, workload.GenOptions{
			Ops:  1_000_000,
			Seed: workload.TraceSeed("engine-bench", 0),
		})
		res := app.Execute(device.NewHDD(device.DefaultHDDConfig()))
		engineBenchOld = res.Trace
		engineBenchOld.Name = "engine-bench-1m"
	})
	return engineBenchOld
}

// BenchmarkEngineReconstruct measures sharded reconstruction
// throughput over the 1M-request trace at 1, 4 and GOMAXPROCS
// workers. SetBytes uses the 34-byte binary record size, so the
// ns/op column converts to on-disk MB/s of trace processed.
func BenchmarkEngineReconstruct(b *testing.B) {
	old := engineBenchTrace(b)
	workerSet := []int{1, 4, runtime.GOMAXPROCS(0)}
	seen := map[int]bool{}
	for _, w := range workerSet {
		if seen[w] {
			continue
		}
		seen[w] = true
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			eng := enginePkg.New(enginePkg.Config{Workers: w})
			b.SetBytes(int64(old.Len()) * 34)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out, _, err := eng.Reconstruct(old)
				if err != nil {
					b.Fatal(err)
				}
				if out.Len() != old.Len() {
					b.Fatalf("lost requests: %d != %d", out.Len(), old.Len())
				}
			}
		})
	}
}

// runPipeline runs the reconstruction with or without post-processing.
func runPipeline(old *tracePkg.Trace, skipPost bool) (*tracePkg.Trace, error) {
	out, _, err := corePkg.Reconstruct(old, experiments.NewTarget(), corePkg.Options{SkipPostProcess: skipPost})
	return out, err
}

// BenchmarkExtFixedThSweep regenerates the Fixed-th tuning sweep
// (extension of the paper's 10-100ms threshold selection).
func BenchmarkExtFixedThSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.FixedThSweep(benchCfg)
		if len(r.MeanKS) == 0 {
			b.Fatal("empty sweep")
		}
	}
}

// BenchmarkExtSimilarity regenerates the KS/Wasserstein method
// comparison.
func BenchmarkExtSimilarity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Similarity(benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtGroundTruth regenerates the natural-idle recovery sweep
// over all 31 families.
func BenchmarkExtGroundTruth(b *testing.B) {
	cfg := experiments.Config{Ops: 1500}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.GroundTruth(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtFTLImpact regenerates the downstream FTL study (the
// paper's background-budget implication, closed-loop).
func BenchmarkExtFTLImpact(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.FTLImpact(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Rows) != 6 {
			b.Fatal("rows missing")
		}
	}
}

// BenchmarkExtCacheImpact regenerates the above/below-page-cache
// collection comparison.
func BenchmarkExtCacheImpact(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.CacheImpact(benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPipelineStages isolates the cost of each reconstruction
// stage on one MSNFS-sized trace: classification, Algorithm-1 model
// fit, decomposition, emulation, post-processing (via full pipeline).
func BenchmarkPipelineStages(b *testing.B) {
	p, _ := workload.Lookup("MSNFS")
	old, _ := experiments.GenerateOld(p, 0, 8000, 0)
	old.TsdevKnown = false
	b.Run("classify", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if g := infer.Classify(old); len(g.Groups) == 0 {
				b.Fatal("no groups")
			}
		}
	})
	b.Run("estimate", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := infer.Estimate(old, infer.EstimateOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	m, err := infer.Estimate(old, infer.EstimateOptions{})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("decompose", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			idle, _ := infer.Decompose(m, old)
			if len(idle) != old.Len() {
				b.Fatal("bad decomposition")
			}
		}
	})
	b.Run("full-pipeline", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := runPipeline(old, false); err != nil {
				b.Fatal(err)
			}
		}
	})
}
