// Command tracelint is the repo's project-specific static-analysis
// suite: five analyzers enforcing the load-bearing invariants the
// test suite can only sample (nil-guarded observability hooks,
// complete Snapshot/Restore field coverage, allocation-free annotated
// hot paths, registered error-envelope codes, mutex-guarded field
// access).
//
// It speaks the `go vet -vettool` unit-checking protocol, so the
// canonical repo-wide run is, from the module root:
//
//	go build -o /tmp/tracelint ./tools/tracelint   (from tools/tracelint)
//	go vet -vettool=/tmp/tracelint ./...
//
// and also runs standalone over package patterns:
//
//	tracelint ./...
//
// Suppressions: `//tracelint:ignore <analyzer> <reason>` on (or on
// the line above) the offending line. The reason is mandatory.
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/tools/tracelint/internal/checks/errcode"
	"repro/tools/tracelint/internal/checks/guarded"
	"repro/tools/tracelint/internal/checks/hotpath"
	"repro/tools/tracelint/internal/checks/nilhook"
	"repro/tools/tracelint/internal/checks/snapfields"
	"repro/tools/tracelint/internal/lintkit"
)

// analyzers is the suite, in README inventory order.
var analyzers = []*lintkit.Analyzer{
	nilhook.Analyzer,
	snapfields.Analyzer,
	hotpath.Analyzer,
	errcode.Analyzer,
	guarded.Analyzer,
}

func main() {
	// The go command probes a vettool twice before using it:
	// `-V=full` for a version/build identity line (cache keying) and
	// `-flags` for the JSON list of tool flags it may pass through.
	versionFlag := flag.String("V", "", "print version and exit (go command protocol)")
	flagsFlag := flag.Bool("flags", false, "print tool flags as JSON and exit (go command protocol)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: tracelint [package pattern ...] | tracelint <vet-config>.cfg\n\nanalyzers:\n")
		for _, a := range analyzers {
			fmt.Fprintf(os.Stderr, "  %-10s %s\n", a.Name, strings.SplitN(a.Doc, "\n", 2)[0])
		}
	}
	flag.Parse()

	switch {
	case *versionFlag != "":
		printVersion()
		return
	case *flagsFlag:
		fmt.Println("[]")
		return
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		diags, err := lintkit.RunVetConfig(args[0], analyzers)
		exit(diags, "", err)
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	wd, _ := os.Getwd()
	pkgs, err := lintkit.LoadPackages(wd, args)
	if err != nil {
		fatal(err)
	}
	var all []lintkit.Diagnostic
	for _, p := range pkgs {
		diags, err := lintkit.Run(p.Pass, analyzers)
		if err != nil {
			fatal(fmt.Errorf("%s: %v", p.ImportPath, err))
		}
		all = append(all, diags...)
	}
	exit(all, wd, err)
}

func exit(diags []lintkit.Diagnostic, trimDir string, err error) {
	if err != nil {
		fatal(err)
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, lintkit.TrimPos(d, trimDir))
	}
	if len(diags) > 0 {
		os.Exit(2)
	}
	os.Exit(0)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracelint:", err)
	os.Exit(1)
}

// printVersion emits the `name version build-id` line the go command
// hashes into its action cache, so a rebuilt tracelint binary (new
// checks, new annotations semantics) invalidates cached vet verdicts.
func printVersion() {
	name := filepath.Base(os.Args[0])
	id := "unknown"
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			h := sha256.New()
			io.Copy(h, f)
			f.Close()
			id = fmt.Sprintf("%x", h.Sum(nil)[:12])
		}
	}
	fmt.Printf("%s version devel buildID=%s\n", name, id)
}
