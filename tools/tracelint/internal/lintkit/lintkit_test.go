package lintkit

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func parse(t *testing.T, src string) (*token.FileSet, []*ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "a.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	return fset, []*ast.File{f}
}

// A tracelint:ignore with no analyzer name or no reason is itself a
// diagnostic: a suppression is a reviewed decision and must say why.
func TestMalformedIgnoreIsDiagnostic(t *testing.T) {
	fset, files := parse(t, `package p

func f() {
	//tracelint:ignore
	_ = 1
	//tracelint:ignore nilhook
	_ = 2
	//tracelint:ignore nilhook a documented reason
	_ = 3
}
`)
	ign, bad := collectIgnores(fset, files)
	if len(bad) != 2 {
		t.Fatalf("got %d malformed-directive diagnostics, want 2: %v", len(bad), bad)
	}
	for _, d := range bad {
		if !strings.Contains(d.Message, "needs an analyzer name and a reason") {
			t.Errorf("unexpected message: %s", d.Message)
		}
	}
	// The well-formed directive suppresses its own line and the next.
	if !ign.matches("nilhook", token.Position{Filename: "a.go", Line: 8}) {
		t.Error("directive line not suppressed")
	}
	if !ign.matches("nilhook", token.Position{Filename: "a.go", Line: 9}) {
		t.Error("line after directive not suppressed")
	}
	if ign.matches("nilhook", token.Position{Filename: "a.go", Line: 10}) {
		t.Error("suppression leaked past the following line")
	}
	if ign.matches("hotpath", token.Position{Filename: "a.go", Line: 9}) {
		t.Error("suppression leaked to a different analyzer")
	}
}

func TestExprString(t *testing.T) {
	fset, files := parse(t, `package p

func f() {
	_ = a
	_ = a.b.c
	_ = (a.b)
	_ = *a.b
	_ = a[0].b
}
`)
	_ = fset
	var got []string
	ast.Inspect(files[0], func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		got = append(got, ExprString(as.Rhs[0]))
		return true
	})
	want := []string{"a", "a.b.c", "a.b", "a.b", ""}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("expr %d: got %q, want %q", i, got[i], want[i])
		}
	}
}
