// Package lintkit is a dependency-free miniature of the
// golang.org/x/tools/go/analysis vocabulary: an Analyzer runs over one
// type-checked package and reports position-anchored diagnostics.
//
// The repo's build environment bakes in only the Go toolchain, so the
// tracelint suite cannot depend on x/tools. The subset implemented
// here is exactly what project-local, single-package analyzers need:
// no facts, no cross-analyzer requirements, no SSA. Drivers (the
// unitchecker protocol in driver.go, the fixture runner in lintest)
// construct a Pass per package and collect what the analyzers report.
package lintkit

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named invariant check.
type Analyzer struct {
	// Name identifies the analyzer in output, in `//tracelint:ignore
	// <name> <reason>` suppressions, and in the README inventory.
	Name string
	// Doc is the one-paragraph contract the analyzer enforces.
	Doc string
	// Run inspects the package behind pass and reports violations.
	Run func(pass *Pass) error
}

// Pass carries one type-checked package through an Analyzer.Run.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags []Diagnostic
}

// Diagnostic is one reported violation.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// Reportf records a violation at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// IsTestFile reports whether the file at pos is a _test.go file.
// Analyzers whose invariant protects production hot paths (nilhook,
// hotpath) skip test files: tests construct hooks they know are
// non-nil and allocate freely.
func (p *Pass) IsTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// Run executes every analyzer over one package and returns the merged,
// position-sorted diagnostics with `//tracelint:ignore` suppressions
// applied. Malformed suppressions (no analyzer name, or no reason) are
// themselves diagnostics — a suppression must document why.
func Run(pass *Pass, analyzers []*Analyzer) ([]Diagnostic, error) {
	ign, bad := collectIgnores(pass.Fset, pass.Files)
	var out []Diagnostic
	out = append(out, bad...)
	for _, a := range analyzers {
		p := &Pass{
			Analyzer:  a,
			Fset:      pass.Fset,
			Files:     pass.Files,
			Pkg:       pass.Pkg,
			TypesInfo: pass.TypesInfo,
		}
		if err := a.Run(p); err != nil {
			return nil, fmt.Errorf("%s: %v", a.Name, err)
		}
		for _, d := range p.diags {
			if !ign.matches(a.Name, d.Pos) {
				out = append(out, d)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out, nil
}

// ignoreSet maps file -> line -> analyzer names suppressed on that
// line. A directive suppresses findings on its own line and, when it
// is a standalone comment line, on the following line.
type ignoreSet map[string]map[int][]string

func (s ignoreSet) matches(analyzer string, pos token.Position) bool {
	for _, name := range s[pos.Filename][pos.Line] {
		if name == analyzer {
			return true
		}
	}
	return false
}

// collectIgnores scans comments for `//tracelint:ignore <analyzer>
// <reason>` directives. The reason is mandatory: a suppression is a
// reviewed decision and must say what was decided.
func collectIgnores(fset *token.FileSet, files []*ast.File) (ignoreSet, []Diagnostic) {
	ign := make(ignoreSet)
	var bad []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "//tracelint:ignore")
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				pos := fset.Position(c.Pos())
				if len(fields) < 2 {
					bad = append(bad, Diagnostic{
						Analyzer: "tracelint",
						Pos:      pos,
						Message:  "tracelint:ignore needs an analyzer name and a reason: //tracelint:ignore <analyzer> <reason>",
					})
					continue
				}
				m := ign[pos.Filename]
				if m == nil {
					m = make(map[int][]string)
					ign[pos.Filename] = m
				}
				// A directive suppresses findings on its own line
				// (trailing-comment form) and on the following line
				// (standalone-comment form).
				m[pos.Line] = append(m[pos.Line], fields[0])
				m[pos.Line+1] = append(m[pos.Line+1], fields[0])
			}
		}
	}
	return ign, bad
}

// FuncDirective reports whether fn's doc comment carries the
// `//tracelint:<name>` directive and returns its arguments.
func FuncDirective(fn *ast.FuncDecl, name string) ([]string, bool) {
	return directive(fn.Doc, name)
}

func directive(doc *ast.CommentGroup, name string) ([]string, bool) {
	if doc == nil {
		return nil, false
	}
	for _, c := range doc.List {
		if rest, ok := strings.CutPrefix(c.Text, "//tracelint:"+name); ok {
			if rest == "" || rest[0] == ' ' || rest[0] == '\t' {
				return strings.Fields(rest), true
			}
		}
	}
	return nil, false
}

// CommentDirective scans an arbitrary comment group (e.g. a struct
// field's trailing comment) for `//tracelint:<name>` or the prose
// form used by field guards.
func CommentDirective(doc *ast.CommentGroup, name string) ([]string, bool) {
	return directive(doc, name)
}

// ExprString renders a (small) expression as normalized source text —
// the currency guard tracking uses to compare "the same expression"
// across a function body. Only the shapes that plausibly name a hook
// or mutex are rendered; anything else returns "" (never matches).
func ExprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		x := ExprString(e.X)
		if x == "" {
			return ""
		}
		return x + "." + e.Sel.Name
	case *ast.ParenExpr:
		return ExprString(e.X)
	case *ast.StarExpr:
		return ExprString(e.X)
	}
	return ""
}
