package lintkit

// The two drivers that feed packages to the analyzers:
//
//   - RunVetConfig implements the `go vet -vettool` unit-checking
//     protocol: the go command type-checks nothing itself — it hands
//     the tool a JSON config naming the package's files and the
//     export-data file of every import, and the tool parses,
//     type-checks (via the stdlib gc importer reading that export
//     data) and reports. This is the same contract
//     golang.org/x/tools/go/analysis/unitchecker implements; rebuilt
//     here on the standard library only.
//
//   - LoadPackages drives `go list -export -deps -json` directly so
//     `tracelint ./...` works standalone, resolving import export
//     data from the build cache the same way.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"strings"
)

// VetConfig is the JSON configuration the go command writes for each
// package when invoking a -vettool. Field names and semantics follow
// cmd/go's vet action; unused fields are accepted and ignored.
type VetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// RunVetConfig executes analyzers over the package described by the
// config file at cfgPath, returning its diagnostics. It always writes
// the (empty — tracelint uses no cross-package facts) vetx output the
// go command expects, including in VetxOnly mode, where analysis is
// skipped entirely.
func RunVetConfig(cfgPath string, analyzers []*Analyzer) ([]Diagnostic, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return nil, err
	}
	var cfg VetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, fmt.Errorf("%s: parsing vet config: %v", cfgPath, err)
	}
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			return nil, err
		}
	}
	if cfg.VetxOnly {
		return nil, nil
	}
	pass, err := typecheck(cfg.ImportPath, cfg.GoFiles, cfg.GoVersion, newVetImporter(&cfg))
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil, nil
		}
		return nil, err
	}
	return Run(pass, analyzers)
}

// typecheck parses and type-checks one package from source files.
func typecheck(importPath string, goFiles []string, goVersion string, imp types.Importer) (*Pass, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range goFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("%s: no Go files", importPath)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	tcfg := &types.Config{
		Importer:  imp,
		GoVersion: goVersion,
		Error:     func(error) {}, // keep going; first error is returned below
	}
	pkg, err := tcfg.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("%s: typecheck: %v", importPath, err)
	}
	return &Pass{Fset: fset, Files: files, Pkg: pkg, TypesInfo: info}, nil
}

// newVetImporter builds a gc-export-data importer over the config's
// import-path -> export-file map, with the vendor/ImportMap indirection
// the go command encodes.
func newVetImporter(cfg *VetConfig) types.Importer {
	fset := token.NewFileSet()
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
}

// listPackage is the subset of `go list -json` output the standalone
// driver consumes.
type listPackage struct {
	Dir        string
	ImportPath string
	Standard   bool
	Export     string
	GoFiles    []string
	Module     *struct {
		Path      string
		GoVersion string
		Dir       string
	}
	DepOnly bool
	Error   *struct{ Err string }
}

// LoadedPackage is one module package ready for analysis.
type LoadedPackage struct {
	ImportPath string
	Pass       *Pass
}

// LoadPackages resolves patterns with the go tool (from dir, typically
// a module root), type-checks every non-dependency package from
// source, and returns passes ready for Run. Packages outside the main
// module (and their export data) participate only as imports.
func LoadPackages(dir string, patterns []string) ([]*LoadedPackage, error) {
	args := append([]string{"list", "-e", "-deps", "-export", "-json=Dir,ImportPath,Standard,Export,GoFiles,Module,DepOnly,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}
	exports := make(map[string]string)
	var targets []*listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		if len(p.GoFiles) == 0 {
			continue // e.g. a file-less module root matched by ./...
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			pp := p
			targets = append(targets, &pp)
		}
	}
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	var loaded []*LoadedPackage
	for _, p := range targets {
		var files []string
		for _, f := range p.GoFiles {
			files = append(files, p.Dir+string(os.PathSeparator)+f)
		}
		goVersion := ""
		if p.Module != nil && p.Module.GoVersion != "" {
			goVersion = "go" + p.Module.GoVersion
		}
		pass, err := typecheck(p.ImportPath, files, goVersion, imp)
		if err != nil {
			return nil, err
		}
		loaded = append(loaded, &LoadedPackage{ImportPath: p.ImportPath, Pass: pass})
	}
	return loaded, nil
}

// TrimPos shortens file paths in diagnostics to be relative to dir
// for readable output.
func TrimPos(d Diagnostic, dir string) Diagnostic {
	if dir != "" && strings.HasPrefix(d.Pos.Filename, dir+string(os.PathSeparator)) {
		d.Pos.Filename = d.Pos.Filename[len(dir)+1:]
	}
	return d
}
