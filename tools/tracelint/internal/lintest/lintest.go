// Package lintest is a dependency-free miniature of
// golang.org/x/tools/go/analysis/analysistest: it loads fixture
// packages from an analyzer's testdata/src tree, runs the analyzer,
// and checks reported diagnostics against `// want "regexp"`
// expectations in the fixture source.
//
// Fixture packages may import sibling fixture packages (resolved from
// the same testdata/src tree, so project types like the obs hooks are
// stubbed locally) and standard-library packages (type-checked from
// GOROOT source, since the offline build environment installs no
// export data for a fixture toolchain to read).
package lintest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/tools/tracelint/internal/lintkit"
)

// Run loads each named fixture package from dir/src/<path>, runs the
// analyzer (with tracelint:ignore filtering applied, so fixtures can
// cover the suppression mechanism too), and reports mismatches
// against the fixtures' // want expectations as test errors.
func Run(t *testing.T, dir string, a *lintkit.Analyzer, pkgPaths ...string) {
	t.Helper()
	ld := newLoader(dir)
	for _, path := range pkgPaths {
		pass, err := ld.load(path)
		if err != nil {
			t.Errorf("loading fixture %s: %v", path, err)
			continue
		}
		diags, err := lintkit.Run(pass, []*lintkit.Analyzer{a})
		if err != nil {
			t.Errorf("running %s on %s: %v", a.Name, path, err)
			continue
		}
		checkWants(t, pass.Fset, pass.Files, diags)
	}
}

// loader type-checks fixture packages with memoization so sibling
// imports share one types universe.
type loader struct {
	dir  string // testdata root (containing src/)
	fset *token.FileSet
	pkgs map[string]*loadedPkg
	std  types.Importer
}

type loadedPkg struct {
	pass *lintkit.Pass
	err  error
}

func newLoader(dir string) *loader {
	ld := &loader{dir: dir, fset: token.NewFileSet(), pkgs: make(map[string]*loadedPkg)}
	ld.std = importer.ForCompiler(ld.fset, "source", nil)
	return ld
}

// Import implements types.Importer over the fixture tree with a
// GOROOT-source fallback for std imports.
func (ld *loader) Import(path string) (*types.Package, error) {
	if _, err := os.Stat(filepath.Join(ld.dir, "src", path)); err == nil {
		p, err := ld.load(path)
		if err != nil {
			return nil, err
		}
		return p.Pkg, nil
	}
	return ld.std.Import(path)
}

func (ld *loader) load(path string) (*lintkit.Pass, error) {
	if p, ok := ld.pkgs[path]; ok {
		return p.pass, p.err
	}
	// Mark in-progress to fail fast on fixture import cycles.
	ld.pkgs[path] = &loadedPkg{err: fmt.Errorf("import cycle through %s", path)}
	pass, err := ld.check(path)
	ld.pkgs[path] = &loadedPkg{pass: pass, err: err}
	return pass, err
}

func (ld *loader) check(path string) (*lintkit.Pass, error) {
	pkgDir := filepath.Join(ld.dir, "src", path)
	entries, err := os.ReadDir(pkgDir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(ld.fset, filepath.Join(pkgDir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", pkgDir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	cfg := &types.Config{Importer: ld, Error: func(error) {}}
	pkg, err := cfg.Check(path, ld.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("%s: typecheck: %v", path, err)
	}
	return &lintkit.Pass{Fset: ld.fset, Files: files, Pkg: pkg, TypesInfo: info}, nil
}

// want is one expectation: a diagnostic matching re on line.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	hit  bool
}

// checkWants cross-checks diagnostics against // want comments.
func checkWants(t *testing.T, fset *token.FileSet, files []*ast.File, diags []lintkit.Diagnostic) {
	t.Helper()
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				pats, err := parseWantPatterns(rest)
				if err != nil {
					t.Errorf("%s: bad want comment: %v", pos, err)
					continue
				}
				for _, p := range pats {
					re, err := regexp.Compile(p)
					if err != nil {
						t.Errorf("%s: bad want pattern %q: %v", pos, p, err)
						continue
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re, raw: p})
				}
			}
		}
	}
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	sort.Slice(wants, func(i, j int) bool {
		if wants[i].file != wants[j].file {
			return wants[i].file < wants[j].file
		}
		return wants[i].line < wants[j].line
	})
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.raw)
		}
	}
}

// parseWantPatterns splits `"re1" "re2"` (double-quoted or backquoted
// Go string literals) into its patterns.
func parseWantPatterns(s string) ([]string, error) {
	var pats []string
	s = strings.TrimSpace(s)
	for s != "" {
		switch s[0] {
		case '"':
			end := -1
			for i := 1; i < len(s); i++ {
				if s[i] == '\\' {
					i++
					continue
				}
				if s[i] == '"' {
					end = i
					break
				}
			}
			if end < 0 {
				return nil, fmt.Errorf("unterminated pattern: %s", s)
			}
			p, err := strconv.Unquote(s[:end+1])
			if err != nil {
				return nil, err
			}
			pats = append(pats, p)
			s = strings.TrimSpace(s[end+1:])
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				return nil, fmt.Errorf("unterminated pattern: %s", s)
			}
			pats = append(pats, s[1:end+1])
			s = strings.TrimSpace(s[end+2:])
		default:
			return nil, fmt.Errorf("expected quoted pattern at: %s", s)
		}
	}
	return pats, nil
}
