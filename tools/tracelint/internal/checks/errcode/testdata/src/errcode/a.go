// Fixture for the errcode analyzer: constant strings reaching an
// annotated error-envelope sink must be registered stable codes.
package errcode

type responseWriter struct{}

// httpError mirrors the daemon's envelope writer: parameter 2 (0-based,
// receiver excluded) is the stable code.
//
//tracelint:errcode-sink 2
func httpError(w *responseWriter, status int, code string, msg string) {}

type server struct{}

//tracelint:errcode-sink 4
func (s *server) reject(w *responseWriter, reason, tenant string, status int, code string) {}

// ValidationError mirrors engine.ValidationError: Code reaches the
// envelope through the daemon's specError translation.
type ValidationError struct {
	Field string
	Code  string //tracelint:errcode-field
}

func emit(w *responseWriter, s *server, dynamic string) {
	httpError(w, 400, "bad_json", "malformed body")
	httpError(w, 404, "unknown_job", "no such job")
	httpError(w, 400, "bad_jsonn", "typo")    // want `error code "bad_jsonn" is not in the stable-code set`
	httpError(w, 500, "internal_oops", "new") // want `error code "internal_oops" is not in the stable-code set`

	s.reject(w, "over quota", "t1", 429, "quota_exceeded")
	s.reject(w, "over quota", "t1", 429, "quota_exceded") // want `error code "quota_exceded" is not in the stable-code set`

	// Non-constant codes pass: the analyzer checks the literal
	// vocabulary, not data flow.
	httpError(w, 400, dynamic, "runtime-selected code")
}

func build(cond bool) *ValidationError {
	if cond {
		return &ValidationError{Field: "device", Code: "unknown_device"}
	}
	v := &ValidationError{Field: "spec", Code: "bad_specc"} // want `error code "bad_specc" is not in the stable-code set`
	v.Code = "bad_spec"
	v.Code = "not_a_code" // want `error code "not_a_code" is not in the stable-code set`
	return v
}

func suppressed(w *responseWriter) {
	//tracelint:ignore errcode fixture demonstrating a reviewed legacy code
	httpError(w, 410, "legacy_gone", "kept for a grandfathered client")
}
