// Package errcode kills error-code drift against the daemon's v1
// contract: every non-2xx response carries the envelope
// {"error":{"code","message"}} and the README's "stable codes" table
// promises clients the complete code vocabulary. PRs 8 and 9 grew
// that vocabulary by hand at scattered call sites; a typo'd or
// unregistered code at one call site is invisible to the route tests
// that don't happen to drive that branch.
//
// Sinks are annotated at their declaration:
//
//   - `//tracelint:errcode-sink <n>` on a function whose n'th
//     parameter (0-based, receiver excluded) is a stable code — the
//     daemon's httpError and reject writers.
//   - `//tracelint:errcode-field` on a struct field that carries a
//     stable code — engine.ValidationError.Code, whose literals reach
//     the envelope through specError.
//
// At every call of a sink function (and composite literal or
// assignment of a sink field) in the analyzed package, a constant
// string in code position must be a member of StableCodes. Variables
// pass: the analyzer checks the literal vocabulary, not data flow.
// The set below is the source of truth for the tool;
// cmd/tracetrackerd's TestStableCodeSync locks it against the
// daemon's own table and the README.
package errcode

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strconv"
	"strings"

	"repro/tools/tracelint/internal/lintkit"
)

// StableCodes is the complete stable error-code vocabulary of the v1
// API — the analyzer-side copy of the daemon's codes.go table (README
// "The v1 contract" lists the same set for clients). Keep all three
// in sync; TestStableCodeSync in cmd/tracetrackerd fails otherwise.
var StableCodes = []string{
	"bad_cursor",
	"bad_device_config",
	"bad_format",
	"bad_json",
	"bad_limit",
	"bad_spec",
	"bad_stream_spec",
	"bad_trace",
	"config_mismatch",
	"corpus_disabled",
	"format_conflict",
	"internal",
	"job_not_finished",
	"method_not_allowed",
	"missing_input",
	"not_found",
	"payload_too_large",
	"queue_full",
	"quota_exceeded",
	"rate_limited",
	"result_evicted",
	"shutting_down",
	"trace_evicted",
	"unauthorized",
	"unknown_device",
	"unknown_format",
	"unknown_job",
	"unknown_method",
	"unknown_trace",
}

var stable = func() map[string]bool {
	m := make(map[string]bool, len(StableCodes))
	for _, c := range StableCodes {
		m[c] = true
	}
	return m
}()

var Analyzer = &lintkit.Analyzer{
	Name: "errcode",
	Doc: "string literals reaching an error-envelope sink must be registered stable codes\n\n" +
		"Sinks are declared with //tracelint:errcode-sink <param-index> (functions) " +
		"and //tracelint:errcode-field (struct fields).",
	Run: run,
}

func run(pass *lintkit.Pass) error {
	sinkFuncs := make(map[types.Object]int)   // func/method -> code param index
	sinkFields := make(map[types.Object]bool) // struct field vars

	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			switch decl := decl.(type) {
			case *ast.FuncDecl:
				args, ok := lintkit.FuncDirective(decl, "errcode-sink")
				if !ok {
					continue
				}
				if len(args) != 1 {
					pass.Reportf(decl.Pos(), "errcode-sink directive needs exactly one argument: the 0-based code parameter index")
					continue
				}
				idx, err := strconv.Atoi(args[0])
				if err != nil || idx < 0 {
					pass.Reportf(decl.Pos(), "errcode-sink index %q is not a valid parameter index", args[0])
					continue
				}
				if obj := pass.TypesInfo.Defs[decl.Name]; obj != nil {
					sinkFuncs[obj] = idx
				}
			case *ast.GenDecl:
				for _, spec := range decl.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					st, ok := ts.Type.(*ast.StructType)
					if !ok {
						continue
					}
					for _, fld := range st.Fields.List {
						if !fieldHasDirective(fld) {
							continue
						}
						for _, name := range fld.Names {
							if obj := pass.TypesInfo.Defs[name]; obj != nil {
								sinkFields[obj] = true
							}
						}
					}
				}
			}
		}
	}
	if len(sinkFuncs) == 0 && len(sinkFields) == 0 {
		return nil
	}

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				obj := calleeObject(pass, n)
				idx, ok := sinkFuncs[obj]
				if !ok {
					return true
				}
				if idx >= len(n.Args) {
					return true
				}
				checkCode(pass, n.Args[idx])
			case *ast.KeyValueExpr:
				id, ok := n.Key.(*ast.Ident)
				if !ok {
					return true
				}
				if obj := pass.TypesInfo.Uses[id]; obj != nil && sinkFields[obj] {
					checkCode(pass, n.Value)
				}
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					sel, ok := lhs.(*ast.SelectorExpr)
					if !ok || i >= len(n.Rhs) {
						continue
					}
					if obj := pass.TypesInfo.Uses[sel.Sel]; obj != nil && sinkFields[obj] {
						checkCode(pass, n.Rhs[i])
					}
				}
			}
			return true
		})
	}
	return nil
}

// checkCode reports a constant string in code position that is not a
// registered stable code.
func checkCode(pass *lintkit.Pass, e ast.Expr) {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return // not a compile-time string: vocabulary unknowable here
	}
	code := constant.StringVal(tv.Value)
	if !stable[code] {
		pass.Reportf(e.Pos(),
			"error code %q is not in the stable-code set — register it in cmd/tracetrackerd/codes.go, the README table, and tracelint's errcode.StableCodes, or use a registered code",
			code)
	}
}

// calleeObject resolves the called function or method object.
func calleeObject(pass *lintkit.Pass, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return pass.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		return pass.TypesInfo.Uses[fun.Sel]
	}
	return nil
}

// fieldHasDirective reports whether a struct field carries the
// errcode-field directive in its doc or trailing comment.
func fieldHasDirective(fld *ast.Field) bool {
	for _, cg := range []*ast.CommentGroup{fld.Doc, fld.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if strings.HasPrefix(c.Text, "//tracelint:errcode-field") {
				return true
			}
		}
	}
	return false
}
