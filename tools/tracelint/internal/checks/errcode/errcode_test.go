package errcode_test

import (
	"testing"

	"repro/tools/tracelint/internal/checks/errcode"
	"repro/tools/tracelint/internal/lintest"
)

func TestErrcode(t *testing.T) {
	lintest.Run(t, "testdata", errcode.Analyzer, "errcode")
}
