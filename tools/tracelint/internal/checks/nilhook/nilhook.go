// Package nilhook enforces the nil-safe observability-hook contract
// from the PR 6 instrumentation layer: the engine and corpus accept
// `*obs.EngineMetrics` / `*obs.CorpusMetrics` hook pointers that are
// nil when instrumentation is off, and the zero-allocation hot path
// stays untouched only because every dereference of a hook is behind
// an `if hook != nil` guard (methods *on* the hook itself are
// nil-receiver-safe by package convention and exempt).
//
// A method call reached through a hook field — `mtr.Epochs.Inc()`,
// `cfg.Metrics.CacheHits.Inc()` — panics on a nil hook, so it must be
// dominated by a nil check of the same expression: an enclosing
// `if hook != nil` branch, or an earlier `if hook == nil { return }`
// in the same block. The check is syntactic and conservative; it
// tracks guards by normalized expression text.
package nilhook

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/tools/tracelint/internal/lintkit"
)

var Analyzer = &lintkit.Analyzer{
	Name: "nilhook",
	Doc: "method calls through obs hook fields must be dominated by a nil check\n\n" +
		"A nil *obs.EngineMetrics / *obs.CorpusMetrics disables instrumentation; " +
		"dereferencing one outside an `if hook != nil` guard panics exactly when " +
		"instrumentation is off.",
	Run: run,
}

func run(pass *lintkit.Pass) error {
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			w := &walker{pass: pass}
			w.block(fn.Body.List, newGuards(nil))
		}
	}
	return nil
}

// guards is a lexically scoped set of expressions (by normalized
// source text) known non-nil at the current point.
type guards struct {
	parent *guards
	set    map[string]bool
}

func newGuards(parent *guards) *guards {
	return &guards{parent: parent, set: make(map[string]bool)}
}

func (g *guards) has(expr string) bool {
	for s := g; s != nil; s = s.parent {
		if s.set[expr] {
			return true
		}
	}
	return false
}

type walker struct {
	pass *lintkit.Pass
}

// block walks a statement list, threading guards established by
// early-return nil checks into the statements that follow them.
func (w *walker) block(stmts []ast.Stmt, g *guards) {
	for _, s := range stmts {
		if ifs, ok := s.(*ast.IfStmt); ok && ifs.Init == nil {
			if nils := nilEqualTargets(ifs.Cond); len(nils) > 0 && terminates(ifs.Body) {
				// `if hook == nil { return }`: the rest of this block
				// runs only with hook non-nil.
				if ifs.Else == nil {
					w.stmt(s, g)
					for _, e := range nils {
						g.set[e] = true
					}
					continue
				}
			}
		}
		w.stmt(s, g)
	}
}

func (w *walker) stmt(s ast.Stmt, g *guards) {
	switch s := s.(type) {
	case nil:
	case *ast.IfStmt:
		w.stmt(s.Init, g)
		w.expr(s.Cond, g)
		then := newGuards(g)
		for _, e := range nonNilConjuncts(s.Cond) {
			then.set[e] = true
		}
		w.block(s.Body.List, then)
		if s.Else != nil {
			els := newGuards(g)
			for _, e := range nilEqualTargets(s.Cond) {
				els.set[e] = true
			}
			w.stmt(s.Else, els)
		}
	case *ast.BlockStmt:
		w.block(s.List, newGuards(g))
	case *ast.ForStmt:
		w.stmt(s.Init, g)
		inner := newGuards(g)
		if s.Cond != nil {
			w.expr(s.Cond, inner)
		}
		w.stmt(s.Post, inner)
		w.block(s.Body.List, inner)
	case *ast.RangeStmt:
		w.expr(s.X, g)
		w.block(s.Body.List, newGuards(g))
	case *ast.SwitchStmt:
		w.stmt(s.Init, g)
		if s.Tag != nil {
			w.expr(s.Tag, g)
		}
		for _, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			for _, e := range cc.List {
				w.expr(e, g)
			}
			w.block(cc.Body, newGuards(g))
		}
	case *ast.TypeSwitchStmt:
		w.stmt(s.Init, g)
		w.stmt(s.Assign, g)
		for _, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			w.block(cc.Body, newGuards(g))
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			w.stmt(cc.Comm, g)
			w.block(cc.Body, newGuards(g))
		}
	case *ast.LabeledStmt:
		w.stmt(s.Stmt, g)
	case *ast.ExprStmt:
		w.expr(s.X, g)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.expr(e, g)
		}
		for _, e := range s.Lhs {
			w.expr(e, g)
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.expr(e, g)
		}
	case *ast.DeferStmt:
		w.expr(s.Call, g)
	case *ast.GoStmt:
		w.expr(s.Call, g)
	case *ast.SendStmt:
		w.expr(s.Chan, g)
		w.expr(s.Value, g)
	case *ast.IncDecStmt:
		w.expr(s.X, g)
	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for _, v := range vs.Values {
				w.expr(v, g)
			}
		}
	}
}

// expr checks an expression tree for hook-dereferencing calls.
func (w *walker) expr(e ast.Expr, g *guards) {
	switch e := e.(type) {
	case nil:
	case *ast.BinaryExpr:
		if e.Op == token.LAND {
			// `hook != nil && hook.F.M()`: the left conjunct guards
			// the right.
			w.expr(e.X, g)
			rhs := newGuards(g)
			for _, t := range nonNilConjuncts(e.X) {
				rhs.set[t] = true
			}
			w.expr(e.Y, rhs)
			return
		}
		w.expr(e.X, g)
		w.expr(e.Y, g)
	case *ast.CallExpr:
		w.checkCall(e, g)
		w.expr(e.Fun, g)
		for _, a := range e.Args {
			w.expr(a, g)
		}
	case *ast.FuncLit:
		// Closures inherit the lexical guard set: a hook captured
		// inside an `if hook != nil` block stays non-nil (hooks are
		// configured once, not swapped mid-run).
		w.block(e.Body.List, newGuards(g))
	case *ast.SelectorExpr:
		w.expr(e.X, g)
	case *ast.IndexExpr:
		w.expr(e.X, g)
		w.expr(e.Index, g)
	case *ast.SliceExpr:
		w.expr(e.X, g)
		w.expr(e.Low, g)
		w.expr(e.High, g)
		w.expr(e.Max, g)
	case *ast.ParenExpr:
		w.expr(e.X, g)
	case *ast.StarExpr:
		w.expr(e.X, g)
	case *ast.UnaryExpr:
		w.expr(e.X, g)
	case *ast.TypeAssertExpr:
		w.expr(e.X, g)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				w.expr(kv.Value, g)
				continue
			}
			w.expr(el, g)
		}
	case *ast.KeyValueExpr:
		w.expr(e.Key, g)
		w.expr(e.Value, g)
	}
}

// checkCall flags `hook.Field...M()` calls whose hook expression is
// not guarded. A call whose immediate receiver *is* the hook
// (`hook.M()`) is a nil-safe hook method and exempt.
func (w *walker) checkCall(call *ast.CallExpr, g *guards) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	if w.hookType(sel.X) != "" {
		return // nil-safe method on the hook itself
	}
	for e := ast.Expr(sel.X); e != nil; {
		var next ast.Expr
		switch x := e.(type) {
		case *ast.SelectorExpr:
			next = x.X
		case *ast.IndexExpr:
			next = x.X
		case *ast.ParenExpr:
			next = x.X
		case *ast.StarExpr:
			next = x.X
		default:
			return
		}
		if name := w.hookType(next); name != "" {
			expr := lintkit.ExprString(next)
			if expr == "" || !g.has(expr) {
				w.pass.Reportf(call.Pos(),
					"call dereferences %s through nil-able hook %s without a dominating nil check (obs hooks are nil when instrumentation is off)",
					name, exprOr(expr, "expression"))
			}
			return
		}
		e = next
	}
}

func exprOr(s, fallback string) string {
	if s == "" {
		return fallback
	}
	return s
}

// hookType reports the obs hook type name if e's static type is
// *obs.EngineMetrics or *obs.CorpusMetrics ("" otherwise).
func (w *walker) hookType(e ast.Expr) string {
	tv, ok := w.pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return ""
	}
	ptr, ok := tv.Type.(*types.Pointer)
	if !ok {
		return ""
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Name() != "obs" {
		return ""
	}
	switch obj.Name() {
	case "EngineMetrics", "CorpusMetrics":
		return "*obs." + obj.Name()
	}
	return ""
}

// nonNilConjuncts returns the guard expressions established when cond
// is true: every `x != nil` joined by &&.
func nonNilConjuncts(cond ast.Expr) []string {
	var out []string
	splitOp(cond, token.LAND, func(e ast.Expr) {
		if t := nilCompareTarget(e, token.NEQ); t != "" {
			out = append(out, t)
		}
	})
	return out
}

// nilEqualTargets returns the expressions established non-nil when
// cond is FALSE: every `x == nil` joined by ||.
func nilEqualTargets(cond ast.Expr) []string {
	var out []string
	splitOp(cond, token.LOR, func(e ast.Expr) {
		if t := nilCompareTarget(e, token.EQL); t != "" {
			out = append(out, t)
		}
	})
	return out
}

func splitOp(e ast.Expr, op token.Token, fn func(ast.Expr)) {
	if b, ok := e.(*ast.BinaryExpr); ok && b.Op == op {
		splitOp(b.X, op, fn)
		splitOp(b.Y, op, fn)
		return
	}
	fn(e)
}

// nilCompareTarget matches `x <op> nil` / `nil <op> x` and returns
// x's normalized text.
func nilCompareTarget(e ast.Expr, op token.Token) string {
	b, ok := ast.Unparen(e).(*ast.BinaryExpr)
	if !ok || b.Op != op {
		return ""
	}
	if isNilIdent(b.Y) {
		return lintkit.ExprString(b.X)
	}
	if isNilIdent(b.X) {
		return lintkit.ExprString(b.Y)
	}
	return ""
}

func isNilIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

// terminates reports whether a block's last statement unconditionally
// leaves the enclosing block (return, branch, or panic).
func terminates(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch s := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}
