package nilhook_test

import (
	"testing"

	"repro/tools/tracelint/internal/checks/nilhook"
	"repro/tools/tracelint/internal/lintest"
)

func TestNilhook(t *testing.T) {
	lintest.Run(t, "testdata", nilhook.Analyzer, "nilhook")
}
