// Package obs is a fixture stub of the repo's internal/obs hook
// types: just enough structure for nilhook to resolve
// *obs.EngineMetrics / *obs.CorpusMetrics fields and methods.
package obs

type Counter struct{ n int64 }

func (c *Counter) Inc()         {}
func (c *Counter) Add(d int64)  {}
func (c *Counter) Value() int64 { return c.n }

type Gauge struct{ n int64 }

func (g *Gauge) Inc() {}
func (g *Gauge) Dec() {}

type EngineMetrics struct {
	Epochs     *Counter
	Requests   *Counter
	QueueDepth [3]*Gauge
}

// StageAdd is nil-receiver-safe, like every method on the real type.
func (m *EngineMetrics) StageAdd(stage int, d int64) {
	if m == nil {
		return
	}
	m.Epochs.Add(d)
}

type CorpusMetrics struct {
	IngestBytes *Counter
	DedupHits   *Counter
}
