// Fixture for the nilhook analyzer: method calls through obs hook
// fields must be dominated by a nil check of the hook expression.
package nilhook

import "obs"

type config struct {
	Metrics *obs.EngineMetrics
	Corpus  *obs.CorpusMetrics
}

func unguarded(c *config) {
	c.Metrics.Epochs.Inc() // want `dereferences \*obs\.EngineMetrics through nil-able hook c\.Metrics without a dominating nil check`
}

func unguardedCorpus(c *config) {
	c.Corpus.IngestBytes.Add(1) // want `dereferences \*obs\.CorpusMetrics through nil-able hook c\.Corpus`
}

func unguardedIndexed(c *config) {
	c.Metrics.QueueDepth[0].Inc() // want `nil-able hook c\.Metrics`
}

func wrongGuard(c *config) {
	if c.Corpus != nil {
		c.Metrics.Epochs.Inc() // want `nil-able hook c\.Metrics`
	}
}

func guardedIf(c *config) {
	if c.Metrics != nil {
		c.Metrics.Epochs.Inc()
		c.Metrics.QueueDepth[1].Dec()
	}
}

func guardedEarlyReturn(c *config) {
	if c.Metrics == nil {
		return
	}
	c.Metrics.Requests.Inc()
}

func guardedEarlyReturnOr(c *config) {
	if c.Metrics == nil || c.Corpus == nil {
		return
	}
	c.Metrics.Requests.Inc()
	c.Corpus.DedupHits.Inc()
}

func guardedElse(c *config) {
	if c.Metrics == nil {
		_ = c
	} else {
		c.Metrics.Epochs.Inc()
	}
}

func guardedConjunction(c *config, busy bool) {
	if c.Metrics != nil && busy {
		c.Metrics.Epochs.Inc()
	}
}

func guardedShortCircuit(c *config) bool {
	return c.Metrics != nil && c.Metrics.Epochs.Value() > 0
}

func guardedClosure(c *config) func() {
	if c.Metrics == nil {
		return func() {}
	}
	// Closures inherit the lexical guard: hooks are wired once at
	// startup, never swapped mid-run.
	return func() {
		c.Metrics.Epochs.Inc()
	}
}

func nilSafeHookMethod(c *config) {
	// A method ON the hook itself is nil-receiver-safe by the obs
	// package convention; no guard needed.
	c.Metrics.StageAdd(0, 1)
}

func localHook(m *obs.EngineMetrics) {
	m.Epochs.Inc() // want `nil-able hook m`
	if m != nil {
		m.Epochs.Inc()
	}
}

func suppressed(c *config) {
	//tracelint:ignore nilhook fixture exercising the suppression path
	c.Metrics.Epochs.Inc()
}
