// Fixture for the snapfields analyzer: Snapshot/Restore pairs must
// reference every field of the state struct Snapshot returns.
package snapfields

type leakyState struct {
	busyUntil int64
	headCyl   int
	hasPos    bool
}

type Leaky struct {
	busyUntil int64
	headCyl   int
	hasPos    bool
}

// Snapshot forgets hasPos — exactly the new-field-added drift the
// analyzer exists for.
func (d *Leaky) Snapshot() any { // want `Snapshot of Leaky does not reference field "hasPos" of state struct leakyState`
	return &leakyState{busyUntil: d.busyUntil, headCyl: d.headCyl}
}

func (d *Leaky) Restore(s any) { // want `Restore of Leaky does not reference field "hasPos"` `Restore of Leaky does not reference field "headCyl"`
	st := s.(*leakyState)
	d.busyUntil = st.busyUntil
	_ = st
}

type goodState struct {
	pos  int64
	last int
}

type Good struct {
	pos  int64
	last int
}

func (d *Good) Snapshot() any {
	return &goodState{pos: d.pos, last: d.last}
}

func (d *Good) Restore(s any) {
	st := s.(*goodState)
	d.pos = st.pos
	d.last = st.last
}

// Positional literals force every field at compile time already.
type posState struct {
	a, b int
}

type Positional struct{ a, b int }

func (d *Positional) Snapshot() any {
	return posState{d.a, d.b}
}

func (d *Positional) Restore(s any) {
	st := s.(posState)
	d.a, d.b = st.a, st.b
}

// Stateless devices return nil; the analyzer has nothing to check.
type Stateless struct{}

func (d *Stateless) Snapshot() any { return nil }
func (d *Stateless) Restore(s any) {}

// A Snapshot with no Restore is not a Stateful pair (the repo's
// Instrumented device snapshots stats, not state) — skipped.
type statsOnly struct{ n int }

type PairlessSnapshot struct{ n int }

func (d *PairlessSnapshot) Snapshot() any { return statsOnly{} }
