// Package snapstate is a fixture stub of a foreign state package
// (the repo's internal/ftl.State): its completeness is this package's
// responsibility, not the adopting device's.
package snapstate

type State struct {
	Blocks int
	Active int
}

func (s *State) Clone() *State {
	return &State{Blocks: s.Blocks, Active: s.Active}
}
