// Fixture: a device whose Snapshot returns a foreign package's state
// type (like FTLDevice adopting ftl.State) is skipped — the state
// package owns that struct's completeness.
package foreign

import "snapstate"

type Device struct {
	st *snapstate.State
}

func (d *Device) Snapshot() any {
	return d.st.Clone()
}

func (d *Device) Restore(s any) {
	d.st = s.(*snapstate.State)
}
