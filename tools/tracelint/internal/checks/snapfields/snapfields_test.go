package snapfields_test

import (
	"testing"

	"repro/tools/tracelint/internal/checks/snapfields"
	"repro/tools/tracelint/internal/lintest"
)

func TestSnapfields(t *testing.T) {
	lintest.Run(t, "testdata", snapfields.Analyzer, "snapfields", "foreign")
}
