// Package snapfields enforces the device.Stateful snapshot contract
// from the PR 5 epoch-pipeline handoff: a Snapshot/Restore pair must
// copy the COMPLETE device state, so that restoring a snapshot into a
// fresh device reproduces servicing byte-for-byte. The failure mode
// it exists for: a new field is added to a device, Snapshot/Restore
// are not updated, every test with a quiescent-by-luck fixture still
// passes, and the parallel path silently diverges from serial three
// PRs later.
//
// Mechanically: for every type in the package that has both a
// Snapshot and a Restore method, the analyzer locates the concrete
// state struct Snapshot returns (declared in the same package; types
// returning nil or a foreign state are skipped) and requires both
// method bodies to reference every field of that struct — by
// composite-literal key or by selector.
package snapfields

import (
	"go/ast"
	"go/types"

	"repro/tools/tracelint/internal/lintkit"
)

var Analyzer = &lintkit.Analyzer{
	Name: "snapfields",
	Doc: "Snapshot/Restore pairs must reference every field of their state struct\n\n" +
		"An un-copied state field survives into the next epoch on the serial device " +
		"but not on the worker that restores the snapshot — a byte divergence no " +
		"sampled test reliably catches.",
	Run: run,
}

func run(pass *lintkit.Pass) error {
	// Collect Snapshot/Restore method declarations by receiver type.
	type pair struct {
		snapshot, restore *ast.FuncDecl
	}
	pairs := make(map[types.Object]*pair)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Recv == nil || fn.Body == nil {
				continue
			}
			if fn.Name.Name != "Snapshot" && fn.Name.Name != "Restore" {
				continue
			}
			recv := receiverObject(pass, fn)
			if recv == nil {
				continue
			}
			p := pairs[recv]
			if p == nil {
				p = &pair{}
				pairs[recv] = p
			}
			if fn.Name.Name == "Snapshot" {
				p.snapshot = fn
			} else {
				p.restore = fn
			}
		}
	}

	for recv, p := range pairs {
		if p.snapshot == nil || p.restore == nil {
			continue // not a Stateful pair (e.g. Instrumented.Snapshot stats)
		}
		state := stateStruct(pass, p.snapshot)
		if state == nil {
			continue // trivial snapshot (returns nil) or foreign state type
		}
		st := state.Underlying().(*types.Struct)
		for _, fn := range []*ast.FuncDecl{p.snapshot, p.restore} {
			seen := referencedFields(pass, fn, state, st)
			for i := 0; i < st.NumFields(); i++ {
				fld := st.Field(i)
				if !seen[fld] {
					pass.Reportf(fn.Name.Pos(),
						"%s of %s does not reference field %q of state struct %s — Snapshot/Restore must copy every field",
						fn.Name.Name, recv.Name(), fld.Name(), state.Obj().Name())
				}
			}
		}
	}
	return nil
}

// receiverObject resolves a method's receiver type object.
func receiverObject(pass *lintkit.Pass, fn *ast.FuncDecl) types.Object {
	if len(fn.Recv.List) != 1 {
		return nil
	}
	t := fn.Recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.ParenExpr:
			t = x.X
		case *ast.IndexExpr: // generic receiver
			t = x.X
		case *ast.Ident:
			return pass.TypesInfo.Uses[x]
		default:
			return nil
		}
	}
}

// stateStruct determines the concrete state struct a Snapshot method
// produces: the static type behind its return expressions, accepted
// only when it is a named struct declared in the package under
// analysis (a foreign state belongs to the package that declared it,
// which is where its own Snapshot is checked).
func stateStruct(pass *lintkit.Pass, fn *ast.FuncDecl) *types.Named {
	var found *types.Named
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || len(ret.Results) != 1 {
			return true
		}
		tv, ok := pass.TypesInfo.Types[ret.Results[0]]
		if !ok || tv.Type == nil {
			return true
		}
		t := tv.Type
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok {
			return true
		}
		if _, ok := named.Underlying().(*types.Struct); !ok {
			return true
		}
		if named.Obj().Pkg() != pass.Pkg {
			return true
		}
		if found == nil {
			found = named
		}
		return true
	})
	return found
}

// referencedFields walks a method body and records which fields of
// the state struct it touches: selector accesses resolving to a field
// of st, keyed composite-literal entries of the state type, and
// positional composite literals (which reference all fields).
func referencedFields(pass *lintkit.Pass, fn *ast.FuncDecl, state *types.Named, st *types.Struct) map[*types.Var]bool {
	byName := make(map[string]*types.Var, st.NumFields())
	for i := 0; i < st.NumFields(); i++ {
		byName[st.Field(i).Name()] = st.Field(i)
	}
	seen := make(map[*types.Var]bool)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if sel, ok := pass.TypesInfo.Selections[n]; ok && sel.Kind() == types.FieldVal {
				if v, ok := sel.Obj().(*types.Var); ok {
					if owner, ok := byName[v.Name()]; ok && owner == v {
						seen[v] = true
					}
				}
			}
		case *ast.CompositeLit:
			tv, ok := pass.TypesInfo.Types[n]
			if !ok {
				return true
			}
			t := tv.Type
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			if named, ok := t.(*types.Named); !ok || named != state {
				return true
			}
			if len(n.Elts) > 0 {
				if _, keyed := n.Elts[0].(*ast.KeyValueExpr); !keyed {
					// Positional literal: the compiler already forces
					// every field to be present.
					for _, v := range byName {
						seen[v] = true
					}
					return true
				}
			}
			for _, el := range n.Elts {
				kv, ok := el.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				if id, ok := kv.Key.(*ast.Ident); ok {
					if v, ok := byName[id.Name]; ok {
						seen[v] = true
					}
				}
			}
		}
		return true
	})
	return seen
}
