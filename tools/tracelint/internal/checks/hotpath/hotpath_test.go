package hotpath_test

import (
	"testing"

	"repro/tools/tracelint/internal/checks/hotpath"
	"repro/tools/tracelint/internal/lintest"
)

func TestHotpath(t *testing.T) {
	lintest.Run(t, "testdata", hotpath.Analyzer, "hotpath")
}
