// Fixture for the hotpath analyzer: functions annotated
// //tracelint:hotpath must not contain per-execution allocations.
package hotpath

import "fmt"

type record struct {
	seq  uint64
	dur  int64
	tags []string
}

//tracelint:hotpath
func violations(buf []byte, r *record) {
	fmt.Printf("seq=%d\n", r.seq) // want `fmt\.Printf allocates`
	s := string(buf)              // want `\[\]byte-to-string conversion copies its operand`
	b := []byte(s)                // want `string-to-slice conversion copies its operand`
	msg := "seq " + s             // want `non-constant string concatenation allocates`
	f := func() {}                // want `function literal allocates its closure environment`
	xs := []int{1, 2, 3}          // want `slice literal allocates its backing array`
	m := map[string]int{}         // want `map literal allocates`
	p := &record{}                // want `address of composite literal escapes to the heap`
	q := make([]byte, 8)          // want `make allocates`
	n := new(record)              // want `new allocates`
	_, _, _, _, _, _, _, _ = b, msg, f, xs, m, p, q, n
}

//tracelint:hotpath
func clean(buf []byte, r *record) int {
	// The idioms the real codecs use: index, append into a caller
	// buffer, constant strings, arithmetic.
	total := 0
	for i := 0; i < len(buf); i++ {
		total += int(buf[i])
	}
	buf = append(buf, 0x7f)
	const tag = "csv" + "/v1"
	r.seq++
	var arr [4]byte
	arr[0] = byte(total)
	return total + int(arr[0])
}

//tracelint:hotpath
func errorPathExempt(buf []byte) (int, error) {
	if len(buf) == 0 {
		// Building the error you are about to return is the cold
		// path; steady-state records do not error.
		return 0, fmt.Errorf("empty record at %q", string(buf))
	}
	return int(buf[0]), nil
}

//tracelint:hotpath
func errorPathOnlyCoversReturns(buf []byte) (int, error) {
	s := string(buf) // want `\[\]byte-to-string conversion copies its operand`
	if s == "" {
		return 0, fmt.Errorf("empty")
	}
	return len(s), nil
}

//tracelint:hotpath
func suppressed(buf []byte) string {
	//tracelint:ignore hotpath header path, runs once per stream not per record
	return string(buf)
}

// Unannotated functions may allocate freely.
func coldPath(r *record) string {
	return fmt.Sprintf("%+v", r)
}
