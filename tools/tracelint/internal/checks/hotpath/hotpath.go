// Package hotpath enforces the zero-allocation discipline on
// functions annotated `//tracelint:hotpath` — the per-record codec
// loops (Decoder.Next, Encoder.Write/AppendRecord) and the engine's
// per-epoch decompose/emulate/merge bodies whose ≤0.05 allocs/request
// bound `zeroalloc_test.go` locks. The benchmark catches a regression
// after the fact on the paths it happens to drive; the annotation
// makes the property reviewable at the line that breaks it.
//
// Inside an annotated function the analyzer rejects the constructs
// that allocate on every execution:
//
//   - any call into package fmt (Sprintf and friends allocate;
//     Fprintf reaches a Writer through an interface box)
//   - string <-> []byte / []rune conversions
//   - non-constant string concatenation
//   - function literals (closure environments are heap-allocated)
//   - pointer-to-composite-literal, slice and map literals
//   - make and new
//
// Constructs inside a return statement of a function whose final
// result is an error are exempt: building the error you are about to
// return is the cold path — steady-state records do not error.
// Anything else intentional takes a `//tracelint:ignore hotpath
// <reason>` suppression.
package hotpath

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/tools/tracelint/internal/lintkit"
)

var Analyzer = &lintkit.Analyzer{
	Name: "hotpath",
	Doc: "functions annotated //tracelint:hotpath must not contain allocating constructs\n\n" +
		"Keeps the codec and engine per-record loops at their locked 0 allocs/record " +
		"bound at the source level instead of only at the benchmark level.",
	Run: run,
}

func run(pass *lintkit.Pass) error {
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if _, ok := lintkit.FuncDirective(fn, "hotpath"); !ok {
				continue
			}
			check(pass, fn)
		}
	}
	return nil
}

func check(pass *lintkit.Pass, fn *ast.FuncDecl) {
	// Constructs inside a `return` of an error-returning function are
	// the cold error path; collect those spans first and exempt them.
	var errSpans []span
	if lastResultIsError(pass, fn) {
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			if ret, ok := n.(*ast.ReturnStmt); ok {
				errSpans = append(errSpans, span{ret.Pos(), ret.End()})
			}
			return true
		})
	}
	inErrSpan := func(pos token.Pos) bool {
		for _, s := range errSpans {
			if s.lo <= pos && pos < s.hi {
				return true
			}
		}
		return false
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if n == nil {
			return true
		}
		if inErrSpan(n.Pos()) {
			return true
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			checkCall(pass, n)
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "hot path: function literal allocates its closure environment")
			return false
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isNonConstString(pass, n) {
				pass.Reportf(n.Pos(), "hot path: non-constant string concatenation allocates")
			}
		case *ast.CompositeLit:
			checkCompositeLit(pass, n)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					pass.Reportf(n.Pos(), "hot path: address of composite literal escapes to the heap")
				}
			}
		}
		return true
	})
}

type span struct{ lo, hi token.Pos }

// checkCall flags fmt calls, allocating conversions, and make/new.
func checkCall(pass *lintkit.Pass, call *ast.CallExpr) {
	// Conversion? The "function" position holds a type.
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		to := tv.Type.Underlying()
		argTV, ok := pass.TypesInfo.Types[call.Args[0]]
		if !ok {
			return
		}
		from := argTV.Type.Underlying()
		if isStringByteConversion(to, from) && argTV.Value == nil {
			pass.Reportf(call.Pos(), "hot path: %s conversion copies its operand", conversionName(to, from))
		}
		return
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		switch fun.Name {
		case "make", "new":
			if obj := pass.TypesInfo.Uses[fun]; obj != nil && obj.Parent() == types.Universe {
				pass.Reportf(call.Pos(), "hot path: %s allocates", fun.Name)
			}
		}
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			if pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName); ok && pn.Imported().Path() == "fmt" {
				pass.Reportf(call.Pos(), "hot path: fmt.%s allocates (boxes operands and formats through reflection)", fun.Sel.Name)
			}
		}
	}
}

func checkCompositeLit(pass *lintkit.Pass, lit *ast.CompositeLit) {
	tv, ok := pass.TypesInfo.Types[lit]
	if !ok || tv.Type == nil {
		return
	}
	switch tv.Type.Underlying().(type) {
	case *types.Slice:
		pass.Reportf(lit.Pos(), "hot path: slice literal allocates its backing array")
	case *types.Map:
		pass.Reportf(lit.Pos(), "hot path: map literal allocates")
	}
}

func isStringByteConversion(to, from types.Type) bool {
	return (isString(to) && isByteOrRuneSlice(from)) || (isByteOrRuneSlice(to) && isString(from))
}

func conversionName(to, from types.Type) string {
	if isString(to) {
		return "[]byte-to-string"
	}
	return "string-to-slice"
}

func isString(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

func isNonConstString(pass *lintkit.Pass, e *ast.BinaryExpr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	return isString(tv.Type.Underlying()) && tv.Value == nil
}

// lastResultIsError reports whether fn's final result type is error.
func lastResultIsError(pass *lintkit.Pass, fn *ast.FuncDecl) bool {
	if fn.Type.Results == nil || len(fn.Type.Results.List) == 0 {
		return false
	}
	last := fn.Type.Results.List[len(fn.Type.Results.List)-1]
	tv, ok := pass.TypesInfo.Types[last.Type]
	if !ok || tv.Type == nil {
		return false
	}
	return types.Identical(tv.Type, types.Universe.Lookup("error").Type())
}
