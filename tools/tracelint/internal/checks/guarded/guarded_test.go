package guarded_test

import (
	"testing"

	"repro/tools/tracelint/internal/checks/guarded"
	"repro/tools/tracelint/internal/lintest"
)

func TestGuarded(t *testing.T) {
	lintest.Run(t, "testdata", guarded.Analyzer, "guarded")
}
