// Fixture for the guarded analyzer: fields annotated `// guarded by
// <mu>` may only be accessed in functions that lock that mutex (or
// carry //tracelint:holds <mu>).
package guarded

// mutex stands in for sync.Mutex; the analyzer keys on the Lock/RLock
// call shape, not the concrete type.
type mutex struct{ held bool }

func (m *mutex) Lock()    {}
func (m *mutex) Unlock()  {}
func (m *mutex) RLock()   {}
func (m *mutex) RUnlock() {}

type server struct {
	mu mutex

	// jobs is the live job table. // guarded by mu
	jobs map[string]int
	next int // guarded by mu
	cold int // not guarded: no annotation
}

func (s *server) bad() int {
	return s.next // want `access to s\.next \(guarded by mu\) outside s\.mu\.Lock\(\)`
}

func (s *server) badMap(id string) {
	s.jobs[id] = 1 // want `access to s\.jobs \(guarded by mu\)`
}

func (s *server) good(id string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.jobs[id] = s.next
	s.next++
	return s.next
}

func (s *server) goodRLock() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.next
}

func (s *server) lockAfterAccess() int {
	n := s.next // want `access to s\.next \(guarded by mu\)`
	s.mu.Lock()
	defer s.mu.Unlock()
	return n + s.next
}

// countLocked is a helper whose documented contract is "caller must
// hold mu".
//
//tracelint:holds mu
func (s *server) countLocked() int {
	return len(s.jobs) + s.next
}

func (s *server) unguardedFieldIsFree() int {
	return s.cold
}

func newServer() *server {
	// Composite-literal construction predates sharing; exempt.
	return &server{jobs: make(map[string]int), next: 1}
}

func (s *server) suppressed() int {
	//tracelint:ignore guarded single-writer startup path, documented in the fixture
	return s.next
}
