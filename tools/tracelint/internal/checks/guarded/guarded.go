// Package guarded enforces `// guarded by <mu>` field annotations:
// a field so annotated may only be read or written in functions that
// demonstrably hold that mutex. This is the class of race PR 8 fixed
// in handleSubmit — a 202 response read j.ID after releasing s.mu
// while a fast-failing worker rewrote it under the lock — promoted
// from a -race-under-load find to a compile-time failure.
//
// The check is lexical and deliberately conservative:
//
//   - An access base.field (with field annotated "guarded by mu") is
//     legal when the enclosing function contains base.mu.Lock() or
//     base.mu.RLock() lexically before the access, or when the
//     function is annotated `//tracelint:holds <mu>` (a helper whose
//     documented contract is "caller must hold mu").
//   - Composite-literal construction is exempt: a value under
//     construction is not yet shared.
//   - Test files are exempt; the invariant protects the concurrent
//     production surface.
//
// It does not track Unlock, gotos, or aliasing — it answers one
// question precisely: "is there any locking discipline in this
// function at all for the mutex this field names?"
package guarded

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"

	"repro/tools/tracelint/internal/lintkit"
)

var Analyzer = &lintkit.Analyzer{
	Name: "guarded",
	Doc: "fields annotated `// guarded by <mu>` may only be accessed under that mutex\n\n" +
		"Functions that access such a field must Lock/RLock <mu> first or carry " +
		"//tracelint:holds <mu>.",
	Run: run,
}

var guardedRE = regexp.MustCompile(`guarded by ([A-Za-z_][A-Za-z0-9_.]*)`)

func run(pass *lintkit.Pass) error {
	// fieldGuards: the annotated fields of this package's structs,
	// keyed by the field's types object; value = mutex name.
	fieldGuards := make(map[types.Object]string)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, fld := range st.Fields.List {
				mu := fieldAnnotation(fld)
				if mu == "" {
					continue
				}
				for _, name := range fld.Names {
					if obj := pass.TypesInfo.Defs[name]; obj != nil {
						fieldGuards[obj] = mu
					}
				}
			}
			return true
		})
	}
	if len(fieldGuards) == 0 {
		return nil
	}

	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, fn, fieldGuards)
		}
	}
	return nil
}

// fieldAnnotation extracts the mutex name from a field's
// `// guarded by <mu>` doc or trailing comment.
func fieldAnnotation(fld *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{fld.Doc, fld.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if m := guardedRE.FindStringSubmatch(c.Text); m != nil {
				return m[1]
			}
		}
	}
	return ""
}

func checkFunc(pass *lintkit.Pass, fn *ast.FuncDecl, fieldGuards map[types.Object]string) {
	holds := make(map[string]bool)
	if args, ok := lintkit.FuncDirective(fn, "holds"); ok {
		for _, a := range args {
			holds[a] = true
		}
	}

	// locks: "<base>.<mu>" -> earliest Lock/RLock position.
	locks := make(map[string]token.Pos)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		if mu := lintkit.ExprString(sel.X); mu != "" {
			if old, ok := locks[mu]; !ok || call.Pos() < old {
				locks[mu] = call.Pos()
			}
		}
		return true
	})

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[sel.Sel]
		mu, ok := fieldGuards[obj]
		if !ok {
			return true
		}
		if holds[mu] {
			return true
		}
		base := lintkit.ExprString(sel.X)
		lockExpr := mu
		if base != "" && !hasDot(mu) {
			lockExpr = base + "." + mu
		}
		if pos, ok := locks[lockExpr]; ok && pos < sel.Pos() {
			return true
		}
		pass.Reportf(sel.Pos(),
			"access to %s (guarded by %s) outside %s.Lock() — lock first or annotate the function //tracelint:holds %s",
			fieldName(base, sel.Sel.Name), mu, lockExpr, mu)
		return true
	})
}

func fieldName(base, name string) string {
	if base == "" {
		return name
	}
	return base + "." + name
}

func hasDot(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] == '.' {
			return true
		}
	}
	return false
}
