module repro/tools/tracelint

go 1.23
