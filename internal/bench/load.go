package bench

// Load generation against a live tracetrackerd: N tenant clients mix
// corpus uploads and job submissions in closed loops until a deadline,
// backing off with jittered exponential delays that honor the server's
// Retry-After on shed (429) responses. The report turns "handles
// overload gracefully" into numbers: accepted/shed/error rates,
// accepted-request latency percentiles, and whether every accepted job
// reached a terminal state. tracebench -load drives it from the CLI;
// the daemon's overload-shedding test drives it in-process.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/trace"
)

// LoadOptions configures RunLoad.
type LoadOptions struct {
	// BaseURL is the daemon root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Tenants is the number of concurrent client loops (default 4).
	Tenants int
	// Keys are API keys assigned to tenants round-robin; empty runs
	// anonymously (loopback mode).
	Keys []string
	// Duration is how long the loops submit for (default 5s); waiting
	// for accepted jobs to finish afterwards is not counted.
	Duration time.Duration
	// TraceRequests sizes each tenant's fixed-seed upload (default
	// 20k requests). Every tenant uploads a distinct blob, so corpus
	// traffic is not pure dedup.
	TraceRequests int
	// UploadEvery re-uploads the tenant's blob every Nth operation
	// (default 16); other operations submit jobs.
	UploadEvery int
	// Client overrides the HTTP client (default: 2-minute timeout).
	Client *http.Client
	// Log, when non-nil, receives progress lines.
	Log func(string)
}

// LoadReport is RunLoad's outcome.
type LoadReport struct {
	Tenants  int     `json:"tenants"`
	Duration float64 `json:"duration_seconds"`
	// Requests counts admission-relevant requests issued (uploads +
	// submits); Accepted the 2xx among them; Shed the 429s (rate
	// limits and queue-full); ClientErrors other 4xx (quotas, bad
	// specs); ServerErrors 5xx and transport failures.
	Requests     int64 `json:"requests"`
	Accepted     int64 `json:"accepted"`
	Shed         int64 `json:"shed"`
	ClientErrors int64 `json:"client_errors"`
	ServerErrors int64 `json:"server_errors"`
	// JobsAccepted counts accepted submits; JobsCompleted/JobsFailed
	// their terminal states after the post-deadline drain.
	JobsAccepted  int64 `json:"jobs_accepted"`
	JobsCompleted int64 `json:"jobs_completed"`
	JobsFailed    int64 `json:"jobs_failed"`
	// AcceptedP50Ms / AcceptedP99Ms are latency percentiles over
	// accepted requests.
	AcceptedP50Ms float64 `json:"accepted_p50_ms"`
	AcceptedP99Ms float64 `json:"accepted_p99_ms"`
}

// loadWorker is one tenant's loop state.
type loadWorker struct {
	opts   LoadOptions
	client *http.Client
	key    string
	blob   []byte
	digest string
	rng    *rand.Rand

	report  LoadReport
	jobIDs  []string
	latency []float64 // accepted-request latencies, ms
}

// RunLoad drives the daemon at opts.BaseURL with opts.Tenants client
// loops and aggregates their outcomes.
func RunLoad(opts LoadOptions) (*LoadReport, error) {
	if opts.Tenants <= 0 {
		opts.Tenants = 4
	}
	if opts.Duration <= 0 {
		opts.Duration = 5 * time.Second
	}
	if opts.TraceRequests <= 0 {
		opts.TraceRequests = 20_000
	}
	if opts.UploadEvery <= 0 {
		opts.UploadEvery = 16
	}
	client := opts.Client
	if client == nil {
		client = &http.Client{Timeout: 2 * time.Minute}
	}

	// One fixed-seed trace, re-encoded per tenant under a distinct
	// name so each tenant's blob has its own digest.
	tr, err := GenerateTrace(opts.TraceRequests)
	if err != nil {
		return nil, err
	}
	workers := make([]*loadWorker, opts.Tenants)
	for i := range workers {
		tr.Name = fmt.Sprintf("load-tenant-%d", i)
		var blob bytes.Buffer
		if err := trace.WriteBinary(&blob, tr); err != nil {
			return nil, err
		}
		key := ""
		if len(opts.Keys) > 0 {
			key = opts.Keys[i%len(opts.Keys)]
		}
		workers[i] = &loadWorker{
			opts:   opts,
			client: client,
			key:    key,
			blob:   blob.Bytes(),
			rng:    rand.New(rand.NewSource(int64(i) + 1)),
		}
	}

	start := time.Now()
	deadline := start.Add(opts.Duration)
	var wg sync.WaitGroup
	for _, w := range workers {
		wg.Add(1)
		go func(w *loadWorker) {
			defer wg.Done()
			w.loop(deadline)
		}(w)
	}
	wg.Wait()

	rep := &LoadReport{Tenants: opts.Tenants, Duration: time.Since(start).Seconds()}
	var lat []float64
	for _, w := range workers {
		rep.Requests += w.report.Requests
		rep.Accepted += w.report.Accepted
		rep.Shed += w.report.Shed
		rep.ClientErrors += w.report.ClientErrors
		rep.ServerErrors += w.report.ServerErrors
		rep.JobsAccepted += w.report.JobsAccepted
		lat = append(lat, w.latency...)
	}
	sort.Float64s(lat)
	rep.AcceptedP50Ms = percentile(lat, 0.50)
	rep.AcceptedP99Ms = percentile(lat, 0.99)

	// Drain: every accepted job must reach a terminal state.
	for _, w := range workers {
		done, failed, err := w.drainJobs(5 * time.Minute)
		if err != nil {
			return rep, err
		}
		rep.JobsCompleted += done
		rep.JobsFailed += failed
	}
	if opts.Log != nil {
		opts.Log(fmt.Sprintf(
			"load: %d tenants, %.1fs: %d requests, %d accepted, %d shed, %d client-err, %d server-err; jobs %d accepted / %d completed / %d failed; accepted p50 %.1fms p99 %.1fms",
			rep.Tenants, rep.Duration, rep.Requests, rep.Accepted, rep.Shed,
			rep.ClientErrors, rep.ServerErrors,
			rep.JobsAccepted, rep.JobsCompleted, rep.JobsFailed,
			rep.AcceptedP50Ms, rep.AcceptedP99Ms))
	}
	return rep, nil
}

// loop mixes uploads and submits until the deadline, backing off on
// shed responses.
func (w *loadWorker) loop(deadline time.Time) {
	consecutiveShed := 0
	for op := 0; time.Now().Before(deadline); op++ {
		upload := w.digest == "" || op%w.opts.UploadEvery == 0
		var status int
		var retryAfter time.Duration
		var err error
		if upload {
			status, retryAfter, err = w.doUpload()
		} else {
			status, retryAfter, err = w.doSubmit()
		}
		w.report.Requests++
		switch {
		case err != nil:
			w.report.ServerErrors++
		case status/100 == 2:
			w.report.Accepted++
			consecutiveShed = 0
			continue
		case status == http.StatusTooManyRequests:
			w.report.Shed++
			consecutiveShed++
			w.sleepUntil(deadline, backoff(consecutiveShed, retryAfter, w.rng))
			continue
		case status/100 == 4:
			w.report.ClientErrors++
		default:
			w.report.ServerErrors++
		}
		consecutiveShed = 0
		// Errors back off a little too, so a broken server is not
		// hammered in a tight loop.
		w.sleepUntil(deadline, backoff(1, 0, w.rng))
	}
}

// backoff is the jittered exponential client delay: 50ms doubling per
// consecutive shed (capped at 3.2s), never earlier than the server's
// Retry-After, plus up to 25% jitter to break synchronization across
// tenants.
func backoff(attempt int, retryAfter time.Duration, rng *rand.Rand) time.Duration {
	if attempt > 7 {
		attempt = 7
	}
	d := 50 * time.Millisecond << (attempt - 1)
	if retryAfter > d {
		d = retryAfter
	}
	return d + time.Duration(rng.Int63n(int64(d)/4+1))
}

// sleepUntil sleeps for d but never past the deadline.
func (w *loadWorker) sleepUntil(deadline time.Time, d time.Duration) {
	if remain := time.Until(deadline); d > remain {
		d = remain
	}
	if d > 0 {
		time.Sleep(d)
	}
}

// do issues one request and classifies the response, returning the
// status, any Retry-After, and a transport error.
func (w *loadWorker) do(req *http.Request) (int, time.Duration, []byte, error) {
	if w.key != "" {
		req.Header.Set("Authorization", "Bearer "+w.key)
	}
	start := time.Now()
	resp, err := w.client.Do(req)
	if err != nil {
		return 0, 0, nil, err
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode/100 == 2 {
		w.latency = append(w.latency, float64(time.Since(start))/float64(time.Millisecond))
	}
	var retryAfter time.Duration
	if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
		retryAfter = time.Duration(secs) * time.Second
	}
	return resp.StatusCode, retryAfter, body, nil
}

func (w *loadWorker) doUpload() (int, time.Duration, error) {
	req, err := http.NewRequest("POST", w.opts.BaseURL+"/v1/corpus",
		bytes.NewReader(w.blob))
	if err != nil {
		return 0, 0, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	status, retryAfter, body, err := w.do(req)
	if err != nil || status/100 != 2 {
		return status, retryAfter, err
	}
	var ingest struct {
		Entry struct {
			Digest string `json:"digest"`
		} `json:"entry"`
	}
	if err := json.Unmarshal(body, &ingest); err != nil || ingest.Entry.Digest == "" {
		return status, retryAfter, fmt.Errorf("bench: corpus upload response %q: %v", body, err)
	}
	w.digest = ingest.Entry.Digest
	return status, retryAfter, nil
}

func (w *loadWorker) doSubmit() (int, time.Duration, error) {
	spec := map[string]any{"in": "corpus:" + w.digest, "outformat": "bin"}
	specBytes, _ := json.Marshal(spec)
	req, err := http.NewRequest("POST", w.opts.BaseURL+"/v1/jobs", bytes.NewReader(specBytes))
	if err != nil {
		return 0, 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	status, retryAfter, body, err := w.do(req)
	if err != nil || status/100 != 2 {
		return status, retryAfter, err
	}
	var job struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &job); err != nil || job.ID == "" {
		return status, retryAfter, fmt.Errorf("bench: submit response %q: %v", body, err)
	}
	w.report.JobsAccepted++
	w.jobIDs = append(w.jobIDs, job.ID)
	return status, retryAfter, nil
}

// drainJobs polls the tenant's accepted jobs to a terminal state.
func (w *loadWorker) drainJobs(timeout time.Duration) (done, failed int64, err error) {
	deadline := time.Now().Add(timeout)
	for _, id := range w.jobIDs {
		for {
			if time.Now().After(deadline) {
				return done, failed, fmt.Errorf("bench: job %s not terminal after %s", id, timeout)
			}
			req, err := http.NewRequest("GET", w.opts.BaseURL+"/v1/jobs/"+id, nil)
			if err != nil {
				return done, failed, err
			}
			status, retryAfter, body, err := w.do(req)
			if err != nil {
				return done, failed, err
			}
			if status == http.StatusTooManyRequests {
				// Rate-limited poll: wait it out, the job is still ours.
				if retryAfter <= 0 {
					retryAfter = time.Second
				}
				time.Sleep(retryAfter)
				continue
			}
			if status/100 != 2 {
				return done, failed, fmt.Errorf("bench: job %s status: %d %s", id, status, body)
			}
			var job struct {
				State string `json:"state"`
			}
			if err := json.Unmarshal(body, &job); err != nil {
				return done, failed, fmt.Errorf("bench: job status response %q: %w", body, err)
			}
			if job.State == "done" {
				done++
				break
			}
			if job.State == "failed" {
				failed++
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	return done, failed, nil
}

// percentile over sorted ms latencies (0 when empty).
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx]
}
