package bench

// BENCH_*.json serialization and the regression comparison the CI
// gate runs. The file layout is versioned by Report.SchemaVersion;
// ReadFile rejects versions it does not understand, so a gate never
// silently compares incompatible documents.

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// WriteFile renders rep as indented JSON at path (atomic enough for
// CI artifact use: full rewrite, no partial appends).
func WriteFile(path string, rep *Report) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o666)
}

// ReadFile parses a BENCH_*.json document, enforcing the schema
// version.
func ReadFile(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("bench: %s: %w", path, err)
	}
	switch rep.SchemaVersion {
	case 1, 2:
		// v2 only adds fields (Repeat, Result.Stages), so v1 documents
		// — the committed baselines — parse with those fields absent.
	default:
		return nil, fmt.Errorf("bench: %s: schema version %d, this binary understands 1..%d",
			path, rep.SchemaVersion, SchemaVersion)
	}
	return &rep, nil
}

// Tolerance bounds how much a current run may regress from the
// baseline before Compare flags it.
type Tolerance struct {
	// MaxThroughputDrop is the allowed fractional drop in req/s
	// (0.15 = fail below 85% of baseline).
	MaxThroughputDrop float64
	// AllocsPerReqSlack is the allowed absolute allocs/req increase;
	// anything above it fails. Kept just over zero to absorb counter
	// noise on amortized paths while still catching any real
	// per-request allocation (which costs ≥ 1.0).
	AllocsPerReqSlack float64
}

// DefaultTolerance is the CI gate's configuration.
func DefaultTolerance() Tolerance {
	return Tolerance{MaxThroughputDrop: 0.15, AllocsPerReqSlack: 0.01}
}

// Regression is one gate violation.
type Regression struct {
	Name   string  `json:"name"`
	Metric string  `json:"metric"` // "req_per_sec" or "allocs_per_req"
	Base   float64 `json:"base"`
	Cur    float64 `json:"cur"`
}

func (r Regression) String() string {
	switch r.Metric {
	case "req_per_sec":
		return fmt.Sprintf("%s: req/s %.0f -> %.0f (%.1f%% drop)",
			r.Name, r.Base, r.Cur, (1-r.Cur/r.Base)*100)
	case "allocs_per_req":
		return fmt.Sprintf("%s: allocs/req %s -> %s",
			r.Name, trimFloat(r.Base), trimFloat(r.Cur))
	default:
		return fmt.Sprintf("%s: %s %v -> %v", r.Name, r.Metric, r.Base, r.Cur)
	}
}

func trimFloat(f float64) string { return strconv.FormatFloat(f, 'g', 4, 64) }

// Compare gates current against baseline: scenarios are matched by
// name (the intersection — a quick current run against a full
// baseline compares only the shared scenarios) and each match is
// checked for a throughput drop beyond tol.MaxThroughputDrop and an
// allocs/req increase beyond tol.AllocsPerReqSlack. compared reports
// how many scenarios were actually matched; a gate should treat
// compared == 0 as a configuration error, not a pass.
//
// Multi-worker scenarios (Workers > 1) are skipped when either report
// ran on a single CPU: parallel fan-out on one core measures only
// scheduling overhead, so comparing it against (or from) a multi-core
// run would gate on machine shape, not code.
func Compare(baseline, current *Report, tol Tolerance) (regs []Regression, compared int) {
	base := make(map[string]Result, len(baseline.Results))
	for _, r := range baseline.Results {
		base[r.Name] = r
	}
	singleCPU := baseline.CPUs == 1 || current.CPUs == 1
	for _, cur := range current.Results {
		b, ok := base[cur.Name]
		if !ok {
			continue
		}
		if singleCPU && cur.Workers > 1 {
			continue
		}
		compared++
		if b.ReqPerSec > 0 && cur.ReqPerSec < b.ReqPerSec*(1-tol.MaxThroughputDrop) {
			regs = append(regs, Regression{Name: cur.Name, Metric: "req_per_sec", Base: b.ReqPerSec, Cur: cur.ReqPerSec})
		}
		if cur.AllocsPerReq > b.AllocsPerReq+tol.AllocsPerReqSlack {
			regs = append(regs, Regression{Name: cur.Name, Metric: "allocs_per_req", Base: b.AllocsPerReq, Cur: cur.AllocsPerReq})
		}
	}
	return regs, compared
}

// readPeakRSS returns the process's peak resident set size in bytes
// (Linux /proc VmHWM), or 0 where the facility is unavailable.
func readPeakRSS() int64 {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		f := strings.Fields(line)
		if len(f) < 2 {
			return 0
		}
		kb, err := strconv.ParseInt(f[1], 10, 64)
		if err != nil {
			return 0
		}
		return kb << 10
	}
	return 0
}
