// Package bench is the reproducible performance harness behind
// cmd/tracebench and the CI perf gate: it generates fixed-seed traces
// at several sizes, times the codec and reconstruction hot paths with
// testing.Benchmark, and renders a schema-versioned machine-readable
// report (BENCH_<rev>.json) that the repo's perf trajectory and the
// bench-regression CI job consume.
//
// Scenario names are stable identifiers — Compare matches baseline
// and current results by name, so renaming a scenario silently drops
// it from the gate. Add, don't rename.
package bench

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/device"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/trace"
	"repro/internal/workload"
)

// SchemaVersion identifies the BENCH_*.json layout. Bump on any
// field change and teach ReadFile about the old versions explicitly.
//
// Version history:
//
//	1 — initial layout.
//	2 — adds Report.Repeat (median-of-N runs) and the optional
//	    per-scenario Result.Stages engine breakdown. Both are
//	    additive, so v1 documents still parse; ReadFile accepts both.
const SchemaVersion = 2

// Report is the root of a BENCH_*.json document.
type Report struct {
	SchemaVersion int       `json:"schema_version"`
	Revision      string    `json:"revision"`
	GoVersion     string    `json:"go_version"`
	GOOS          string    `json:"goos"`
	GOARCH        string    `json:"goarch"`
	CPUs          int       `json:"cpus"`
	Quick         bool      `json:"quick"`
	Timestamp     time.Time `json:"timestamp"`
	// PeakRSSBytes is the process's peak resident set after the run
	// (Linux VmHWM; 0 where unavailable).
	PeakRSSBytes int64 `json:"peak_rss_bytes,omitempty"`
	// Repeat records how many full suite runs this report condenses:
	// 0 or 1 for a single run, N > 1 when MedianReport picked each
	// scenario's median-throughput run out of N (tracebench -repeat).
	Repeat  int      `json:"repeat,omitempty"`
	Results []Result `json:"results"`
}

// Result is one timed scenario.
type Result struct {
	// Name is the stable scenario identifier, e.g.
	// "decode/csv/size=200k" or "e2e/bin/size=200k/workers=1".
	Name string `json:"name"`
	// Requests is the number of trace requests processed per op.
	Requests int64 `json:"requests"`
	// Bytes is the on-disk input bytes processed per op (0 when the
	// scenario has no byte-stream side).
	Bytes int64 `json:"bytes,omitempty"`
	// Workers is the engine worker count (0 for codec scenarios).
	Workers int `json:"workers,omitempty"`
	// NsPerOp is the measured wall time per op.
	NsPerOp float64 `json:"ns_per_op"`
	// MBPerSec is Bytes-based throughput (0 when Bytes is 0).
	MBPerSec float64 `json:"mb_per_sec,omitempty"`
	// ReqPerSec is request throughput, the gate's primary metric.
	ReqPerSec float64 `json:"req_per_sec"`
	// AllocsPerReq and AllocBytesPerReq are amortized per-request
	// allocation costs.
	AllocsPerReq     float64 `json:"allocs_per_req"`
	AllocBytesPerReq float64 `json:"alloc_bytes_per_req"`
	// Stages is the per-op engine stage wall-time breakdown in seconds
	// (keys: obs.StageNames plus "token_wait"), present only for engine
	// scenarios run with Options.Stages. Stage seconds sum past NsPerOp
	// on multi-worker runs because stages overlap across goroutines.
	Stages map[string]float64 `json:"stages,omitempty"`
}

// Options configures a Run.
type Options struct {
	// Sizes are the request counts to generate traces at (default
	// 200k, plus 1M when Quick is off).
	Sizes []int
	// Workers are the engine worker counts to time (default 1 and
	// GOMAXPROCS).
	Workers []int
	// Quick trims sizes for the CI gate.
	Quick bool
	// Stages attaches a metrics hook to the engine scenarios and
	// records each one's per-stage wall-time breakdown (Result.Stages).
	// The hook's counters are lock-free atomics, so the perturbation is
	// small, but gate runs should leave this off to time the exact
	// production configuration (a nil hook).
	Stages bool
	// TraceDir, when non-empty, runs one extra untimed op of each
	// engine scenario with a span recorder attached and writes its
	// timeline as a Chrome trace-event file (<scenario>.trace.json)
	// under this directory — load it in Perfetto or chrome://tracing
	// to see where the scenario's wall time goes. The traced op runs
	// outside testing.Benchmark, so the timed numbers are unperturbed.
	TraceDir string
	// Revision labels the report (e.g. a git commit).
	Revision string
	// Log, when non-nil, receives one line per finished scenario.
	Log func(string)
}

func (o Options) withDefaults() Options {
	if len(o.Sizes) == 0 {
		o.Sizes = []int{200_000}
		if !o.Quick {
			o.Sizes = append(o.Sizes, 1_000_000)
		}
	}
	if len(o.Workers) == 0 {
		o.Workers = []int{1}
		if n := runtime.GOMAXPROCS(0); n > 1 {
			o.Workers = append(o.Workers, n)
		}
	}
	if o.Revision == "" {
		o.Revision = "dev"
	}
	return o
}

// GenerateTrace synthesizes the deterministic Tsdev-known benchmark
// trace: an MSNFS-profile application executed on the paper's OLD
// device, the same construction the engine benchmarks use, with a
// fixed seed so every run and every machine times identical input.
func GenerateTrace(n int) (*trace.Trace, error) {
	p, ok := workload.Lookup("MSNFS")
	if !ok {
		return nil, fmt.Errorf("bench: MSNFS workload profile missing")
	}
	app := workload.Generate(p, workload.GenOptions{
		Ops:  n,
		Seed: workload.TraceSeed("tracebench", 0),
	})
	res := app.Execute(device.NewHDD(device.DefaultHDDConfig()))
	res.Trace.Name = fmt.Sprintf("tracebench-%d", n)
	return res.Trace, nil
}

// sizeLabel renders a request count compactly ("200k", "1m").
func sizeLabel(n int) string {
	switch {
	case n >= 1_000_000 && n%1_000_000 == 0:
		return fmt.Sprintf("%dm", n/1_000_000)
	case n >= 1_000 && n%1_000 == 0:
		return fmt.Sprintf("%dk", n/1_000)
	default:
		return fmt.Sprintf("%d", n)
	}
}

// measure converts a testing.Benchmark run into a Result.
func measure(name string, reqs int64, inBytes int64, workers int, fn func(b *testing.B)) Result {
	r := testing.Benchmark(fn)
	ns := float64(r.T.Nanoseconds()) / float64(r.N)
	res := Result{
		Name:     name,
		Requests: reqs,
		Bytes:    inBytes,
		Workers:  workers,
		NsPerOp:  ns,
	}
	if ns > 0 {
		res.ReqPerSec = float64(reqs) / (ns / 1e9)
		if inBytes > 0 {
			res.MBPerSec = float64(inBytes) / 1e6 / (ns / 1e9)
		}
	}
	if reqs > 0 {
		res.AllocsPerReq = float64(r.AllocsPerOp()) / float64(reqs)
		res.AllocBytesPerReq = float64(r.AllocedBytesPerOp()) / float64(reqs)
	}
	return res
}

// measureStaged is measure plus a per-op engine stage breakdown read
// from em. The hook accumulates across every calibration round
// testing.Benchmark runs (and across scenarios sharing an engine), so
// the breakdown is the counter delta over this scenario divided by the
// total iterations observed. A nil em degrades to plain measure.
func measureStaged(em *obs.EngineMetrics, name string, reqs, inBytes int64, workers int, fn func(b *testing.B)) Result {
	if em == nil {
		return measure(name, reqs, inBytes, workers, fn)
	}
	before := em.StageSeconds()
	var iters int64
	res := measure(name, reqs, inBytes, workers, func(b *testing.B) {
		fn(b)
		iters += int64(b.N)
	})
	if iters > 0 {
		after := em.StageSeconds()
		res.Stages = make(map[string]float64, len(after))
		for k, v := range after {
			res.Stages[k] = (v - before[k]) / float64(iters)
		}
	}
	return res
}

// stageLine renders a Stages map in canonical stage order for the
// per-scenario log.
func stageLine(stages map[string]float64) string {
	var sb strings.Builder
	sb.WriteString("    stages/op:")
	for _, name := range append(obs.StageNames[:], "token_wait") {
		if v, ok := stages[name]; ok {
			fmt.Fprintf(&sb, " %s %.1fms", name, v*1e3)
		}
	}
	return sb.String()
}

// TraceFileName maps a scenario name to the file its captured
// timeline lands in: path separators and "=" become filename-safe, so
// "e2e/bin/size=200k/workers=4" → "e2e_bin_size-200k_workers-4.trace.json".
func TraceFileName(scenario string) string {
	r := strings.NewReplacer("/", "_", "=", "-")
	return r.Replace(scenario) + ".trace.json"
}

// captureTrace runs op once against a fresh engine built from cfg with
// a span recorder attached, and writes the resulting timeline as a
// Chrome trace-event file under dir. The engine is rebuilt rather than
// reused because a Tracer records exactly one job.
func captureTrace(dir, scenario string, cfg engine.Config, op func(*engine.Engine) error) (string, error) {
	tra := obs.NewTracer(scenario, 0, obs.TraceContext{})
	cfg.Trace = tra
	if err := op(engine.New(cfg)); err != nil {
		return "", fmt.Errorf("bench: trace capture %s: %w", scenario, err)
	}
	path := filepath.Join(dir, TraceFileName(scenario))
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	if err := obs.WriteChromeTrace(f, tra.Finish()); err != nil {
		f.Close()
		return "", fmt.Errorf("bench: trace capture %s: %w", scenario, err)
	}
	return path, f.Close()
}

// Run executes the suite and assembles the report.
func Run(opts Options) (*Report, error) {
	opts = opts.withDefaults()
	rep := &Report{
		SchemaVersion: SchemaVersion,
		Revision:      opts.Revision,
		GoVersion:     runtime.Version(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		CPUs:          runtime.GOMAXPROCS(0),
		Quick:         opts.Quick,
		Timestamp:     time.Now().UTC(),
	}
	logf := func(format string, args ...any) {
		if opts.Log != nil {
			opts.Log(fmt.Sprintf(format, args...))
		}
	}
	add := func(r Result) {
		rep.Results = append(rep.Results, r)
		logf("%-44s %10.0f req/s  %8.1f MB/s  %7.4f allocs/req",
			r.Name, r.ReqPerSec, r.MBPerSec, r.AllocsPerReq)
		if len(r.Stages) > 0 {
			logf("%s", stageLine(r.Stages))
		}
	}
	capture := func(name string, cfg engine.Config, op func(*engine.Engine) error) error {
		if opts.TraceDir == "" {
			return nil
		}
		path, err := captureTrace(opts.TraceDir, name, cfg, op)
		if err != nil {
			return err
		}
		logf("    trace: %s", path)
		return nil
	}

	workers := dedupWorkers(opts.Workers)
	for _, size := range opts.Sizes {
		tr, err := GenerateTrace(size)
		if err != nil {
			return nil, err
		}
		reqs := int64(tr.Len())
		sz := sizeLabel(size)

		var csvBuf, binBuf bytes.Buffer
		if err := trace.WriteCSV(&csvBuf, tr); err != nil {
			return nil, err
		}
		if err := trace.WriteBinary(&binBuf, tr); err != nil {
			return nil, err
		}
		csvData, binData := csvBuf.Bytes(), binBuf.Bytes()

		decode := func(format string, data []byte) func(b *testing.B) {
			return func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					dec, err := trace.NewDecoder(format, bytes.NewReader(data))
					if err != nil {
						b.Fatal(err)
					}
					var batch [512]trace.Request
					n := 0
					for {
						k, err := trace.DecodeBatch(dec, batch[:])
						n += k
						if err == io.EOF {
							break
						}
						if err != nil {
							b.Fatal(err)
						}
					}
					if int64(n) != reqs {
						b.Fatalf("decoded %d of %d", n, reqs)
					}
				}
			}
		}
		add(measure(fmt.Sprintf("decode/csv/size=%s", sz), reqs, int64(len(csvData)), 0, decode("csv", csvData)))
		add(measure(fmt.Sprintf("decode/bin/size=%s", sz), reqs, int64(len(binData)), 0, decode("bin", binData)))

		// Segmented parallel decode at each worker count (workers=1
		// measures the fan-out overhead floor against plain decode).
		decodePar := func(format string, data []byte, w int) func(b *testing.B) {
			return func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					dec := trace.NewParallelDecoder(bytes.NewReader(data), int64(len(data)), format, w)
					n := 0
					for {
						batch, err := dec.ReadBatch()
						n += len(batch)
						if err == io.EOF {
							break
						}
						if err != nil {
							b.Fatal(err)
						}
					}
					dec.Close()
					if int64(n) != reqs {
						b.Fatalf("decoded %d of %d", n, reqs)
					}
				}
			}
		}
		for _, w := range workers {
			add(measure(fmt.Sprintf("decode-par/csv/size=%s/workers=%d", sz, w), reqs, int64(len(csvData)), w, decodePar("csv", csvData, w)))
			add(measure(fmt.Sprintf("decode-par/bin/size=%s/workers=%d", sz, w), reqs, int64(len(binData)), w, decodePar("bin", binData, w)))
		}

		encode := func(format string) func(b *testing.B) {
			return func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					enc, err := trace.NewEncoder(format, io.Discard, "/dev/bench")
					if err != nil {
						b.Fatal(err)
					}
					if err := trace.EncodeTrace(enc, tr); err != nil {
						b.Fatal(err)
					}
				}
			}
		}
		add(measure(fmt.Sprintf("encode/csv/size=%s", sz), reqs, int64(len(csvData)), 0, encode("csv")))
		add(measure(fmt.Sprintf("encode/bin/size=%s", sz), reqs, int64(len(binData)), 0, encode("bin")))

		for _, w := range workers {
			// One hook per engine: measureStaged snapshots counter deltas,
			// so scenarios sharing the engine stay separable.
			var em *obs.EngineMetrics
			if opts.Stages {
				em = obs.NewEngineMetrics(obs.NewRegistry())
			}
			eng := engine.New(engine.Config{Workers: w, Metrics: em})
			add(measureStaged(em, fmt.Sprintf("reconstruct/size=%s/workers=%d", sz, w), reqs, int64(len(binData)), w,
				func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						out, _, err := eng.Reconstruct(tr)
						if err != nil {
							b.Fatal(err)
						}
						if out.Len() != tr.Len() {
							b.Fatal("request count mismatch")
						}
					}
				}))
			if err := capture(fmt.Sprintf("reconstruct/size=%s/workers=%d", sz, w),
				engine.Config{Workers: w}, func(te *engine.Engine) error {
					_, _, err := te.Reconstruct(tr)
					return err
				}); err != nil {
				return nil, err
			}

			// End-to-end decode → shard → encode. At workers > 1 the
			// decode side runs on the segmented parallel decoder, the
			// fused multi-core ingest path; workers=1 keeps the
			// sequential decoder so the scenario stays comparable with
			// pre-fusion baselines.
			e2e := func(format string, data []byte) func(b *testing.B) {
				return func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						var (
							dec trace.Decoder
							pd  *trace.ParallelDecoder
						)
						if w > 1 {
							pd = trace.NewParallelDecoder(bytes.NewReader(data), int64(len(data)), format, w)
							dec = pd
						} else {
							sd, err := trace.NewDecoder(format, bytes.NewReader(data))
							if err != nil {
								b.Fatal(err)
							}
							dec = sd
						}
						rep, err := eng.ReconstructStream(dec, trace.NewBinaryEncoder(io.Discard), nil)
						if pd != nil {
							pd.Close()
						}
						if err != nil {
							b.Fatal(err)
						}
						if rep.Requests != reqs {
							b.Fatalf("reconstructed %d of %d", rep.Requests, reqs)
						}
					}
				}
			}
			add(measureStaged(em, fmt.Sprintf("e2e/bin/size=%s/workers=%d", sz, w), reqs, int64(len(binData)), w, e2e("bin", binData)))
			add(measureStaged(em, fmt.Sprintf("e2e/csv/size=%s/workers=%d", sz, w), reqs, int64(len(csvData)), w, e2e("csv", csvData)))
			e2eOnce := func(format string, data []byte) func(*engine.Engine) error {
				return func(te *engine.Engine) error {
					var (
						dec trace.Decoder
						pd  *trace.ParallelDecoder
					)
					if w > 1 {
						pd = trace.NewParallelDecoder(bytes.NewReader(data), int64(len(data)), format, w)
						dec = pd
					} else {
						sd, err := trace.NewDecoder(format, bytes.NewReader(data))
						if err != nil {
							return err
						}
						dec = sd
					}
					_, err := te.ReconstructStream(dec, trace.NewBinaryEncoder(io.Discard), nil)
					if pd != nil {
						pd.Close()
					}
					return err
				}
			}
			if err := capture(fmt.Sprintf("e2e/bin/size=%s/workers=%d", sz, w),
				engine.Config{Workers: w}, e2eOnce("bin", binData)); err != nil {
				return nil, err
			}

			// HDD target: the epoch-pipelined snapshot/handoff path (the
			// constrained device the paper's co-evaluation measures).
			// workers=1 doubles as the pipelining-overhead floor against
			// the old serial fallback; reconstruct-hdd times the
			// in-memory engine, e2e-hdd the streaming decode → pipeline
			// → parallel csv render chain.
			var hddEM *obs.EngineMetrics
			if opts.Stages {
				hddEM = obs.NewEngineMetrics(obs.NewRegistry())
			}
			hddEng := engine.New(engine.Config{
				Workers: w,
				Device:  func() device.Device { return device.NewHDD(device.DefaultHDDConfig()) },
				Metrics: hddEM,
			})
			add(measureStaged(hddEM, fmt.Sprintf("reconstruct-hdd/size=%s/workers=%d", sz, w), reqs, int64(len(binData)), w,
				func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						out, _, err := hddEng.Reconstruct(tr)
						if err != nil {
							b.Fatal(err)
						}
						if out.Len() != tr.Len() {
							b.Fatal("request count mismatch")
						}
					}
				}))
			add(measureStaged(hddEM, fmt.Sprintf("e2e-hdd/csv/size=%s/workers=%d", sz, w), reqs, int64(len(binData)), w,
				func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						dec := trace.NewBinaryDecoder(bytes.NewReader(binData))
						rep, err := hddEng.ReconstructStream(dec, trace.NewCSVEncoder(io.Discard), nil)
						if err != nil {
							b.Fatal(err)
						}
						if rep.Requests != reqs {
							b.Fatalf("reconstructed %d of %d", rep.Requests, reqs)
						}
					}
				}))
			hddCfg := engine.Config{
				Workers: w,
				Device:  func() device.Device { return device.NewHDD(device.DefaultHDDConfig()) },
			}
			if err := capture(fmt.Sprintf("reconstruct-hdd/size=%s/workers=%d", sz, w),
				hddCfg, func(te *engine.Engine) error {
					_, _, err := te.Reconstruct(tr)
					return err
				}); err != nil {
				return nil, err
			}
			if err := capture(fmt.Sprintf("e2e-hdd/csv/size=%s/workers=%d", sz, w),
				hddCfg, func(te *engine.Engine) error {
					dec := trace.NewBinaryDecoder(bytes.NewReader(binData))
					_, err := te.ReconstructStream(dec, trace.NewCSVEncoder(io.Discard), nil)
					return err
				}); err != nil {
				return nil, err
			}

			// FTL and host-stack targets: the deep-state devices on the
			// same epoch-pipelined path. The factories come from the
			// engine's device registry so the bench times exactly what a
			// `device: "ftl"` / `device: "host"` job runs.
			mkFTL, err := engine.DeviceFactory("ftl")
			if err != nil {
				return nil, err
			}
			mkHost, err := engine.DeviceFactory("host")
			if err != nil {
				return nil, err
			}
			reconstructTarget := func(name string, mk func() device.Device) error {
				var em *obs.EngineMetrics
				if opts.Stages {
					em = obs.NewEngineMetrics(obs.NewRegistry())
				}
				eng := engine.New(engine.Config{Workers: w, Device: mk, Metrics: em})
				add(measureStaged(em, fmt.Sprintf("reconstruct-%s/size=%s/workers=%d", name, sz, w), reqs, int64(len(binData)), w,
					func(b *testing.B) {
						b.ReportAllocs()
						for i := 0; i < b.N; i++ {
							out, _, err := eng.Reconstruct(tr)
							if err != nil {
								b.Fatal(err)
							}
							if out.Len() != tr.Len() {
								b.Fatal("request count mismatch")
							}
						}
					}))
				if name == "host" {
					// The host stack is the richest per-request target, so
					// it also carries the streaming end-to-end scenario.
					add(measureStaged(em, fmt.Sprintf("e2e-host/csv/size=%s/workers=%d", sz, w), reqs, int64(len(binData)), w,
						func(b *testing.B) {
							b.ReportAllocs()
							for i := 0; i < b.N; i++ {
								dec := trace.NewBinaryDecoder(bytes.NewReader(binData))
								rep, err := eng.ReconstructStream(dec, trace.NewCSVEncoder(io.Discard), nil)
								if err != nil {
									b.Fatal(err)
								}
								if rep.Requests != reqs {
									b.Fatalf("reconstructed %d of %d", rep.Requests, reqs)
								}
							}
						}))
				}
				return capture(fmt.Sprintf("reconstruct-%s/size=%s/workers=%d", name, sz, w),
					engine.Config{Workers: w, Device: mk}, func(te *engine.Engine) error {
						_, _, err := te.Reconstruct(tr)
						return err
					})
			}
			if err := reconstructTarget("ftl", mkFTL); err != nil {
				return nil, err
			}
			if err := reconstructTarget("host", mkHost); err != nil {
				return nil, err
			}
		}
	}
	rep.PeakRSSBytes = readPeakRSS()
	return rep, nil
}

// MedianReport condenses repeated runs of the same suite into one
// report: for each scenario (matched by name, ordered as in the first
// run) it keeps the run with the median req/s — a real measured run,
// so NsPerOp, allocs and Stages stay mutually consistent, unlike a
// per-field average. With an even number of runs the lower middle
// wins, biasing the gate very slightly conservative. The header comes
// from the first run with Repeat set to the run count; PeakRSSBytes is
// the maximum across runs, since RSS is a high-water mark either way.
func MedianReport(runs []*Report) *Report {
	if len(runs) == 0 {
		return nil
	}
	if len(runs) == 1 {
		return runs[0]
	}
	out := *runs[0]
	out.Repeat = len(runs)
	out.Results = nil
	byName := make(map[string][]Result)
	for _, rep := range runs {
		if rep.PeakRSSBytes > out.PeakRSSBytes {
			out.PeakRSSBytes = rep.PeakRSSBytes
		}
		for _, r := range rep.Results {
			byName[r.Name] = append(byName[r.Name], r)
		}
	}
	for _, first := range runs[0].Results {
		rs := byName[first.Name]
		sort.Slice(rs, func(i, j int) bool { return rs[i].ReqPerSec < rs[j].ReqPerSec })
		out.Results = append(out.Results, rs[(len(rs)-1)/2])
	}
	return &out
}

// dedupWorkers sorts and deduplicates the worker counts.
func dedupWorkers(in []int) []int {
	seen := map[int]bool{}
	var out []int
	for _, w := range in {
		if w > 0 && !seen[w] {
			seen[w] = true
			out = append(out, w)
		}
	}
	sort.Ints(out)
	return out
}
