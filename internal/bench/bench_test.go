package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

// TestSchemaRoundTrip locks the BENCH_*.json schema: a report written
// by WriteFile reads back identical through ReadFile.
func TestSchemaRoundTrip(t *testing.T) {
	rep := &Report{
		SchemaVersion: SchemaVersion,
		Revision:      "abc1234",
		GoVersion:     "go1.24.0",
		GOOS:          "linux",
		GOARCH:        "amd64",
		CPUs:          4,
		Quick:         true,
		Timestamp:     time.Date(2026, 7, 30, 12, 0, 0, 0, time.UTC),
		PeakRSSBytes:  123 << 20,
		Results: []Result{
			{
				Name: "decode/csv/size=200k", Requests: 200_000, Bytes: 7_000_000,
				NsPerOp: 17e6, MBPerSec: 411.7, ReqPerSec: 11.7e6,
				AllocsPerReq: 0, AllocBytesPerReq: 0.78,
			},
			{
				Name: "e2e/bin/size=200k/workers=1", Requests: 200_000, Bytes: 6_800_000,
				Workers: 1, NsPerOp: 31e6, MBPerSec: 219, ReqPerSec: 6.4e6,
				AllocsPerReq: 0.004, AllocBytesPerReq: 3.1,
			},
		},
	}
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	if err := WriteFile(path, rep); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, rep) {
		t.Fatalf("round trip diverged:\n got %+v\nwant %+v", got, rep)
	}
}

// TestSchemaVersionRejected checks a future-versioned file fails
// loudly rather than gating against garbage.
func TestSchemaVersionRejected(t *testing.T) {
	rep := &Report{SchemaVersion: SchemaVersion + 1, Revision: "x"}
	path := filepath.Join(t.TempDir(), "BENCH_future.json")
	if err := WriteFile(path, rep); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path); err == nil || !strings.Contains(err.Error(), "schema version") {
		t.Fatalf("future schema accepted: %v", err)
	}
}

// TestSchemaV1Accepted checks the committed v1 baselines still load:
// v2 only added fields, so old documents must keep gating.
func TestSchemaV1Accepted(t *testing.T) {
	rep := &Report{SchemaVersion: 1, Revision: "old",
		Results: []Result{{Name: "decode/csv/size=200k", ReqPerSec: 1000}}}
	path := filepath.Join(t.TempDir(), "BENCH_v1.json")
	if err := WriteFile(path, rep); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatalf("v1 baseline rejected: %v", err)
	}
	if got.SchemaVersion != 1 || len(got.Results) != 1 {
		t.Fatalf("v1 round trip: %+v", got)
	}
}

// TestMedianReport locks the -repeat merge: each scenario keeps its
// median-throughput run whole, the header records the repeat count,
// and peak RSS is the maximum across runs.
func TestMedianReport(t *testing.T) {
	mk := func(rss int64, aReq, bReq float64) *Report {
		return &Report{
			SchemaVersion: SchemaVersion, Revision: "r", CPUs: 4, PeakRSSBytes: rss,
			Results: []Result{
				{Name: "a", ReqPerSec: aReq, NsPerOp: 1e9 / aReq, Stages: map[string]float64{"merge": aReq}},
				{Name: "b", ReqPerSec: bReq},
			},
		}
	}
	if got := MedianReport(nil); got != nil {
		t.Fatalf("empty merge = %+v", got)
	}
	one := mk(1, 100, 200)
	if got := MedianReport([]*Report{one}); got != one || got.Repeat != 0 {
		t.Fatalf("single run must pass through unchanged, got %+v", got)
	}

	runs := []*Report{mk(10, 300, 90), mk(30, 100, 110), mk(20, 200, 100)}
	got := MedianReport(runs)
	if got.Repeat != 3 {
		t.Fatalf("Repeat = %d, want 3", got.Repeat)
	}
	if got.PeakRSSBytes != 30 {
		t.Fatalf("PeakRSSBytes = %d, want max 30", got.PeakRSSBytes)
	}
	if len(got.Results) != 2 || got.Results[0].Name != "a" || got.Results[1].Name != "b" {
		t.Fatalf("results order: %+v", got.Results)
	}
	a, b := got.Results[0], got.Results[1]
	if a.ReqPerSec != 200 || b.ReqPerSec != 100 {
		t.Fatalf("medians: a=%v b=%v, want 200 and 100", a.ReqPerSec, b.ReqPerSec)
	}
	// The median run is kept whole: its other fields travel with it.
	if a.NsPerOp != 1e9/200 || a.Stages["merge"] != 200 {
		t.Fatalf("median run not kept whole: %+v", a)
	}

	// Even run count: the lower middle wins.
	got = MedianReport(runs[:2])
	if got.Repeat != 2 || got.Results[0].ReqPerSec != 100 {
		t.Fatalf("even-count median: %+v", got.Results[0])
	}
}

// TestCompare covers the gate decisions: within tolerance, throughput
// drop, alloc increase, and the matched-scenario count.
func TestCompare(t *testing.T) {
	mk := func(name string, reqPerSec, allocs float64) Result {
		return Result{Name: name, ReqPerSec: reqPerSec, AllocsPerReq: allocs}
	}
	baseline := &Report{SchemaVersion: SchemaVersion, Results: []Result{
		mk("a", 1000, 0),
		mk("b", 1000, 0),
		mk("c", 1000, 0.5),
		mk("full-only", 1000, 0),
	}}
	current := &Report{SchemaVersion: SchemaVersion, Results: []Result{
		mk("a", 900, 0.005), // -10%, noise allocs: fine
		mk("b", 800, 0),     // -20%: throughput regression
		mk("c", 2000, 1.6),  // faster but now allocates: regression
		mk("quick-only", 1, 0),
	}}
	regs, compared := Compare(baseline, current, DefaultTolerance())
	if compared != 3 {
		t.Fatalf("compared %d scenarios, want 3", compared)
	}
	if len(regs) != 2 {
		t.Fatalf("got %d regressions, want 2: %v", len(regs), regs)
	}
	if regs[0].Name != "b" || regs[0].Metric != "req_per_sec" {
		t.Fatalf("first regression: %+v", regs[0])
	}
	if regs[1].Name != "c" || regs[1].Metric != "allocs_per_req" {
		t.Fatalf("second regression: %+v", regs[1])
	}
	for _, r := range regs {
		if r.String() == "" {
			t.Fatal("empty regression rendering")
		}
	}
}

// TestRunSmoke runs the suite at a tiny size so CI exercises the
// whole harness (generation, all scenarios, report assembly) in a few
// seconds.
func TestRunSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("harness smoke is seconds-long")
	}
	rep, err := Run(Options{Sizes: []int{2000}, Workers: []int{1}, Quick: true, Revision: "smoke"})
	if err != nil {
		t.Fatal(err)
	}
	if rep.SchemaVersion != SchemaVersion || rep.Revision != "smoke" {
		t.Fatalf("report header: %+v", rep)
	}
	want := []string{
		"decode/csv/size=2k", "decode/bin/size=2k",
		"encode/csv/size=2k", "encode/bin/size=2k",
		"reconstruct/size=2k/workers=1",
		"e2e/bin/size=2k/workers=1", "e2e/csv/size=2k/workers=1",
	}
	names := map[string]Result{}
	for _, r := range rep.Results {
		names[r.Name] = r
	}
	for _, n := range want {
		r, ok := names[n]
		if !ok {
			t.Fatalf("scenario %s missing from report (have %d results)", n, len(rep.Results))
		}
		if r.ReqPerSec <= 0 || r.Requests != 2000 {
			t.Fatalf("scenario %s: implausible result %+v", n, r)
		}
	}
	// The tentpole property at harness level: steady-state decode does
	// not allocate per request. Tiny sizes amortize the per-op decoder
	// setup to well under one alloc per request.
	for _, n := range []string{"decode/csv/size=2k", "decode/bin/size=2k"} {
		if a := names[n].AllocsPerReq; a > 0.05 {
			t.Fatalf("%s allocates %.4f per request", n, a)
		}
	}
}

// TestCompareSkipsParallelOnSingleCPU locks the gate policy for the
// multi-worker scenarios: runs recorded on a 1-CPU machine (the dev
// container, or a throttled runner) neither gate nor are gated on
// workers>1 scenarios, where fan-out measures scheduling, not code.
func TestCompareSkipsParallelOnSingleCPU(t *testing.T) {
	mk := func(name string, workers int, reqPerSec float64) Result {
		return Result{Name: name, Workers: workers, ReqPerSec: reqPerSec}
	}
	baseline := &Report{SchemaVersion: SchemaVersion, CPUs: 8, Results: []Result{
		mk("e2e/bin/size=200k/workers=1", 1, 1000),
		mk("e2e/bin/size=200k/workers=8", 8, 8000),
		mk("decode-par/csv/size=200k/workers=8", 8, 8000),
	}}
	current := &Report{SchemaVersion: SchemaVersion, CPUs: 1, Results: []Result{
		mk("e2e/bin/size=200k/workers=1", 1, 950),
		mk("e2e/bin/size=200k/workers=8", 8, 900), // would be -89%: skipped
		mk("decode-par/csv/size=200k/workers=8", 8, 700),
	}}
	regs, compared := Compare(baseline, current, DefaultTolerance())
	if compared != 1 {
		t.Fatalf("compared %d scenarios, want 1 (workers>1 skipped on 1 CPU)", compared)
	}
	if len(regs) != 0 {
		t.Fatalf("unexpected regressions: %v", regs)
	}

	// Both multi-core: everything compares, and the parallel drop trips.
	current.CPUs = 8
	regs, compared = Compare(baseline, current, DefaultTolerance())
	if compared != 3 {
		t.Fatalf("compared %d scenarios, want 3", compared)
	}
	if len(regs) != 2 {
		t.Fatalf("got %d regressions, want 2: %v", len(regs), regs)
	}
}

// TestRunSmokeStages checks Options.Stages yields a per-stage
// breakdown on the engine scenarios — and only those — with the
// compute stages nonzero and separable between scenarios sharing an
// engine.
func TestRunSmokeStages(t *testing.T) {
	if testing.Short() {
		t.Skip("harness smoke is seconds-long")
	}
	rep, err := Run(Options{Sizes: []int{2000}, Workers: []int{1}, Quick: true, Stages: true, Revision: "smoke"})
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]Result{}
	for _, r := range rep.Results {
		names[r.Name] = r
	}
	for _, n := range []string{
		"reconstruct/size=2k/workers=1", "e2e/bin/size=2k/workers=1",
		"reconstruct-hdd/size=2k/workers=1", "e2e-hdd/csv/size=2k/workers=1",
	} {
		r, ok := names[n]
		if !ok {
			t.Fatalf("scenario %s missing", n)
		}
		if len(r.Stages) == 0 {
			t.Fatalf("scenario %s has no stage breakdown", n)
		}
		for _, stage := range []string{"decompose", "emulate", "merge"} {
			if r.Stages[stage] <= 0 {
				t.Errorf("%s: stage %q = %v, want > 0 (stages: %v)", n, stage, r.Stages[stage], r.Stages)
			}
		}
	}
	for _, n := range []string{"decode/csv/size=2k", "encode/bin/size=2k"} {
		if len(names[n].Stages) != 0 {
			t.Errorf("codec scenario %s unexpectedly has stages: %v", n, names[n].Stages)
		}
	}
}

// TestRunSmokeParallelScenarios checks the decode-par scenarios are
// emitted and plausible.
func TestRunSmokeParallelScenarios(t *testing.T) {
	if testing.Short() {
		t.Skip("harness smoke is seconds-long")
	}
	rep, err := Run(Options{Sizes: []int{2000}, Workers: []int{1, 2}, Quick: true, Revision: "smoke"})
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]Result{}
	for _, r := range rep.Results {
		names[r.Name] = r
	}
	for _, n := range []string{
		"decode-par/csv/size=2k/workers=1", "decode-par/bin/size=2k/workers=1",
		"decode-par/csv/size=2k/workers=2", "decode-par/bin/size=2k/workers=2",
		"e2e/bin/size=2k/workers=2",
	} {
		r, ok := names[n]
		if !ok {
			t.Fatalf("scenario %s missing from report", n)
		}
		if r.ReqPerSec <= 0 || r.Requests != 2000 {
			t.Fatalf("scenario %s: implausible result %+v", n, r)
		}
	}
}

func TestTraceFileName(t *testing.T) {
	got := TraceFileName("e2e/bin/size=200k/workers=4")
	if got != "e2e_bin_size-200k_workers-4.trace.json" {
		t.Fatalf("TraceFileName = %q", got)
	}
}

// TestRunTraceCapture runs the suite with TraceDir set and checks one
// valid Chrome trace-event file lands per engine scenario.
func TestRunTraceCapture(t *testing.T) {
	if testing.Short() {
		t.Skip("harness smoke is seconds-long")
	}
	dir := t.TempDir()
	_, err := Run(Options{Sizes: []int{2000}, Workers: []int{1}, Quick: true, TraceDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for _, scenario := range []string{
		"reconstruct/size=2k/workers=1",
		"e2e/bin/size=2k/workers=1",
		"reconstruct-hdd/size=2k/workers=1",
		"e2e-hdd/csv/size=2k/workers=1",
	} {
		path := filepath.Join(dir, TraceFileName(scenario))
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("scenario %s: %v", scenario, err)
		}
		var doc struct {
			TraceEvents []struct {
				Ph string `json:"ph"`
			} `json:"traceEvents"`
		}
		if err := json.Unmarshal(data, &doc); err != nil {
			t.Fatalf("%s is not trace-event JSON: %v", path, err)
		}
		spans := 0
		for _, ev := range doc.TraceEvents {
			if ev.Ph == "X" {
				spans++
			}
		}
		if spans < 3 {
			t.Fatalf("%s has %d spans, want a full timeline", path, spans)
		}
	}
}
