// Package verify implements the paper's verification methodology
// (Section V-A): inject idle periods of known length into a block
// trace at random positions, run the inference model over the result,
// and score the speculated idles with the four-statistic scheme —
// true/false positives and negatives — plus the Detection and Len
// ratio metrics Figs 10 and 11 report.
package verify

import (
	"math/rand"
	"time"

	"repro/internal/trace"
)

// InjectionSpec describes one injection experiment.
type InjectionSpec struct {
	// Period is the idle length injected at each chosen instruction
	// (the paper sweeps 100 µs, 1 ms, 10 ms, 100 ms).
	Period time.Duration
	// Frac is the fraction of instructions that receive an injection
	// (the paper uses 10%).
	Frac float64
	// Seed makes placement reproducible.
	Seed int64
}

// Inject returns a copy of t with spec.Period of extra idle inserted
// before a random spec.Frac of its instructions (all later arrivals
// shift), together with the ground-truth injected idle per instruction
// (0 where none). The first instruction never receives an injection —
// there is no preceding inter-arrival to lengthen.
func Inject(t *trace.Trace, spec InjectionSpec) (*trace.Trace, []time.Duration) {
	rng := rand.New(rand.NewSource(spec.Seed))
	out := t.Clone()
	truth := make([]time.Duration, len(out.Requests))
	var shift time.Duration
	for i := range out.Requests {
		if i > 0 && rng.Float64() < spec.Frac {
			truth[i] = spec.Period
			shift += spec.Period
		}
		out.Requests[i].Arrival += shift
	}
	return out, truth
}

// Metrics aggregates the verification statistics of Section V-A.
type Metrics struct {
	TP, FP, FN, TN int
	// Injected is the number of instructions that received an
	// injection (TP+FN).
	Injected int
	// Total is the number of scored instructions.
	Total int
	// LenTPRatio is mean(T_estimated / T_injected) over true
	// positives. Model noise can push individual ratios above 1, so
	// this diagnostic is unbounded.
	LenTPRatio float64
	// SecuredSum / InjectedSum track Σ min(T_estimated, T_injected)
	// and Σ T_injected over all injected instructions (false
	// negatives contribute zero secured time). Their ratio,
	// LenTPSecured, is the paper's Fig 10 presentation of Len(TP):
	// "how much of the real idle period the reconstruction secured",
	// bounded by 100%.
	SecuredSum, InjectedSum time.Duration
	// LenFP holds T_estimated (µs) at every false positive — the
	// population whose CDF Fig 11 plots.
	LenFP []float64
}

// DetectionTP is TP / injected (the paper's Detection(TP), reported at
// 82.2%–99.7%).
func (m Metrics) DetectionTP() float64 {
	if m.Injected == 0 {
		return 0
	}
	return float64(m.TP) / float64(m.Injected)
}

// DetectionFP is FP / total instructions.
func (m Metrics) DetectionFP() float64 {
	if m.Total == 0 {
		return 0
	}
	return float64(m.FP) / float64(m.Total)
}

// LenTPSecured is SecuredSum / InjectedSum — the fraction of injected
// idle time the model recovered, counting misses as zero. This is the
// bounded Len(TP) the paper's Fig 10 bars show.
func (m Metrics) LenTPSecured() float64 {
	if m.InjectedSum == 0 {
		return 0
	}
	return float64(m.SecuredSum) / float64(m.InjectedSum)
}

// LenFPMean is the mean mispredicted idle length.
func (m Metrics) LenFPMean() time.Duration {
	if len(m.LenFP) == 0 {
		return 0
	}
	var sum float64
	for _, v := range m.LenFP {
		sum += v
	}
	return time.Duration(sum / float64(len(m.LenFP)) * float64(time.Microsecond))
}

// Evaluate scores estimated idles against injected ground truth. Both
// slices are per-instruction (index i = idle preceding instruction i);
// estimated idles at instructions with no injection count as false
// positives, matching the paper's definitions. Instruction 0 is
// skipped — no preceding inter-arrival exists.
//
// The base traces used by the verification experiments are generated
// without natural think time, so every estimated idle at a
// non-injected instruction is genuinely spurious.
func Evaluate(truth, estimated []time.Duration) Metrics {
	n := len(truth)
	if len(estimated) < n {
		n = len(estimated)
	}
	m := Metrics{}
	var lenSum float64
	for i := 1; i < n; i++ {
		m.Total++
		injected := truth[i] > 0
		detected := estimated[i] > 0
		if injected {
			m.InjectedSum += truth[i]
			secured := estimated[i]
			if secured > truth[i] {
				secured = truth[i]
			}
			m.SecuredSum += secured
		}
		switch {
		case injected && detected:
			m.TP++
			lenSum += float64(estimated[i]) / float64(truth[i])
		case injected && !detected:
			m.FN++
		case !injected && detected:
			m.FP++
			m.LenFP = append(m.LenFP, float64(estimated[i])/float64(time.Microsecond))
		default:
			m.TN++
		}
	}
	m.Injected = m.TP + m.FN
	if m.TP > 0 {
		m.LenTPRatio = lenSum / float64(m.TP)
	}
	return m
}
