package verify

import (
	"testing"
	"time"

	"repro/internal/trace"
)

func flatTrace(n int, gap time.Duration) *trace.Trace {
	t := &trace.Trace{}
	for i := 0; i < n; i++ {
		t.Requests = append(t.Requests, trace.Request{
			Arrival: time.Duration(i) * gap,
			LBA:     uint64(i * 8),
			Sectors: 8,
		})
	}
	return t
}

func TestInjectShiftsArrivals(t *testing.T) {
	tr := flatTrace(1000, 100*time.Microsecond)
	spec := InjectionSpec{Period: 10 * time.Millisecond, Frac: 0.1, Seed: 1}
	injected, truth := Inject(tr, spec)
	count := 0
	var total time.Duration
	for _, d := range truth {
		if d > 0 {
			count++
			total += d
			if d != spec.Period {
				t.Fatalf("injected period %v, want %v", d, spec.Period)
			}
		}
	}
	// ~10% of 1000.
	if count < 60 || count > 140 {
		t.Fatalf("injection count %d outside 10%% envelope", count)
	}
	// Final arrival shifted by the total injected idle.
	wantLast := tr.Requests[999].Arrival + total
	if injected.Requests[999].Arrival != wantLast {
		t.Fatalf("last arrival %v, want %v", injected.Requests[999].Arrival, wantLast)
	}
	if truth[0] != 0 {
		t.Fatal("instruction 0 must never receive an injection")
	}
	// Original untouched.
	if tr.Requests[999].Arrival != 999*100*time.Microsecond {
		t.Fatal("Inject mutated its input")
	}
	// Inter-arrival at injected points grows by exactly the period.
	for i := 1; i < 1000; i++ {
		oldIA := tr.Requests[i].Arrival - tr.Requests[i-1].Arrival
		newIA := injected.Requests[i].Arrival - injected.Requests[i-1].Arrival
		if truth[i] > 0 && newIA != oldIA+spec.Period {
			t.Fatalf("instruction %d: inter-arrival %v, want %v", i, newIA, oldIA+spec.Period)
		}
		if truth[i] == 0 && newIA != oldIA {
			t.Fatalf("instruction %d: inter-arrival changed without injection", i)
		}
	}
}

func TestInjectDeterministic(t *testing.T) {
	tr := flatTrace(500, time.Millisecond)
	spec := InjectionSpec{Period: time.Millisecond, Frac: 0.1, Seed: 7}
	_, t1 := Inject(tr, spec)
	_, t2 := Inject(tr, spec)
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatal("injection not deterministic")
		}
	}
}

func TestEvaluateCounts(t *testing.T) {
	ms := time.Millisecond
	truth := []time.Duration{0, ms, 0, ms, 0, 0}
	est := []time.Duration{0, ms, ms / 2, 0, 0, 0}
	m := Evaluate(truth, est)
	// Index 0 skipped. 1: TP; 2: FP; 3: FN; 4,5: TN.
	if m.TP != 1 || m.FP != 1 || m.FN != 1 || m.TN != 2 {
		t.Fatalf("counts: %+v", m)
	}
	if m.Injected != 2 || m.Total != 5 {
		t.Fatalf("aggregates: %+v", m)
	}
	if m.DetectionTP() != 0.5 {
		t.Fatalf("DetectionTP = %v", m.DetectionTP())
	}
	if m.DetectionFP() != 0.2 {
		t.Fatalf("DetectionFP = %v", m.DetectionFP())
	}
	if m.LenTPRatio != 1.0 {
		t.Fatalf("LenTPRatio = %v", m.LenTPRatio)
	}
	if len(m.LenFP) != 1 || m.LenFP[0] != 500 {
		t.Fatalf("LenFP = %v (µs)", m.LenFP)
	}
	if m.LenFPMean() != ms/2 {
		t.Fatalf("LenFPMean = %v", m.LenFPMean())
	}
}

func TestEvaluatePartialLenRatio(t *testing.T) {
	ms := time.Millisecond
	truth := []time.Duration{0, 10 * ms, 10 * ms}
	est := []time.Duration{0, 9 * ms, 11 * ms}
	m := Evaluate(truth, est)
	if m.TP != 2 {
		t.Fatalf("TP = %d", m.TP)
	}
	if m.LenTPRatio != 1.0 { // (0.9 + 1.1)/2
		t.Fatalf("LenTPRatio = %v", m.LenTPRatio)
	}
}

func TestEvaluateEmptyAndMismatched(t *testing.T) {
	m := Evaluate(nil, nil)
	if m.Total != 0 || m.DetectionTP() != 0 || m.DetectionFP() != 0 || m.LenFPMean() != 0 {
		t.Fatalf("empty metrics: %+v", m)
	}
	// Mismatched lengths: scored over the shorter.
	m = Evaluate([]time.Duration{0, time.Millisecond, time.Millisecond}, []time.Duration{0, time.Millisecond})
	if m.Total != 1 || m.TP != 1 {
		t.Fatalf("mismatched: %+v", m)
	}
}

func TestLenTPSecured(t *testing.T) {
	ms := time.Millisecond
	truth := []time.Duration{0, 10 * ms, 10 * ms, 10 * ms, 0}
	est := []time.Duration{0, 5 * ms, 20 * ms, 0, 0}
	m := Evaluate(truth, est)
	// Secured: min(5,10) + min(20,10) + 0 = 15ms of 30ms injected.
	if m.InjectedSum != 30*ms || m.SecuredSum != 15*ms {
		t.Fatalf("sums: injected %v secured %v", m.InjectedSum, m.SecuredSum)
	}
	if got := m.LenTPSecured(); got != 0.5 {
		t.Fatalf("LenTPSecured = %v", got)
	}
	if Evaluate(nil, nil).LenTPSecured() != 0 {
		t.Fatal("empty secured should be 0")
	}
}
