package infer

import (
	"fmt"
	"math"

	"repro/internal/interp"
)

// pchipOrLinear fits a PCHIP through the points, falling back to a
// linear interpolant when PCHIP cannot be built (degenerate knots).
func pchipOrLinear(xs, ys []float64) (interp.Interpolant, error) {
	f, err := interp.PCHIP(xs, ys)
	if err == nil {
		return f, nil
	}
	return interp.Linear(xs, ys)
}

// Shape is the CDF taxonomy of paper Fig 5.
type Shape int

const (
	// ShapeGlobalMaxima: the CDF rises sharply once; its derivative
	// has a single dominant maximum (Fig 5a). Simple differential
	// analysis predicts Tslat directly.
	ShapeGlobalMaxima Shape = iota
	// ShapeChunkyMiddle: the CDF climbs smoothly with no pronounced
	// spike (Fig 5b).
	ShapeChunkyMiddle
	// ShapeMultiMaxima: the derivative exhibits two or more comparable
	// maxima (Fig 5c); per-group decomposition is required.
	ShapeMultiMaxima
)

// String implements fmt.Stringer.
func (s Shape) String() string {
	switch s {
	case ShapeGlobalMaxima:
		return "global-maxima"
	case ShapeChunkyMiddle:
		return "chunky-middle"
	case ShapeMultiMaxima:
		return "multi-maxima"
	default:
		return fmt.Sprintf("Shape(%d)", int(s))
	}
}

// ClassifyShape assigns one of the Fig 5 classes to an inter-arrival
// sample (µs). The analysis happens in log10(Tintt) space — the axes
// the paper plots CDFs on — so that modes decades apart compare on
// equal footing. The decision uses the interpolated CDF's derivative
// peaks: a peak within comparableFrac of the top peak counts as a
// second mode; a top peak that concentrates less than sharpFrac of the
// total rise across its neighbourhood is "chunky".
func ClassifyShape(inttMicros []float64) Shape {
	logs := make([]float64, 0, len(inttMicros))
	floor := math.Inf(1)
	for _, v := range inttMicros {
		if v > 0 && v < floor {
			floor = v
		}
	}
	if math.IsInf(floor, 1) {
		floor = 1
	}
	for _, v := range inttMicros {
		if v <= 0 {
			v = floor / 2
		}
		logs = append(logs, math.Log10(v))
	}
	xs, ys := dedupePoints(NewCDFPoints(logs))
	if len(xs) < 3 {
		return ShapeGlobalMaxima
	}
	f, err := pchipOrLinear(xs, ys)
	if err != nil {
		return ShapeChunkyMiddle
	}
	px, _ := interp.LocalMaxima(f, 8, 16)
	if len(px) == 0 {
		return ShapeChunkyMiddle
	}
	// A "mode" is a derivative peak that concentrates real probability
	// mass: the CDF must rise by at least massFrac within a ±2.5%-of-
	// span window around it. Noise ripples in a smooth (chunky) CDF
	// fail this; the spikes of Fig 5a/5c pass it.
	span := xs[len(xs)-1] - xs[0]
	w := span * 0.025
	const massFrac = 0.2
	minSep := span / 20
	// Clamped evaluation: outside the support a CDF is 0 or 1; the
	// interpolant's boundary extrapolation must not leak in.
	at := func(x float64) float64 {
		if x <= xs[0] {
			return 0
		}
		if x >= xs[len(xs)-1] {
			return 1
		}
		return f.At(x)
	}
	var accepted []float64
	for _, x := range px {
		tooClose := false
		for _, a := range accepted {
			if math.Abs(x-a) < minSep {
				tooClose = true
				break
			}
		}
		if tooClose {
			continue
		}
		if rise := at(x+w) - at(x-w); rise >= massFrac {
			accepted = append(accepted, x)
		}
	}
	switch {
	case len(accepted) >= 2:
		return ShapeMultiMaxima
	case len(accepted) == 1:
		return ShapeGlobalMaxima
	default:
		return ShapeChunkyMiddle
	}
}
