package infer

import (
	"math"

	"repro/internal/interp"
	"repro/internal/stats"
)

// SteepnessOptions tunes Algorithm 1 and the interpolation stage. The
// zero value selects the paper's configuration.
type SteepnessOptions struct {
	// Binning selects the PDF histogram spacing; the pipeline default
	// is log bins (inter-arrivals span 7 decades).
	Binning stats.Binning
	// Bins is the histogram resolution (default 96).
	Bins int
	// MarginDivisor sets the outlier margin to var(PDF)/MarginDivisor.
	// The paper uses half the variance, i.e. divisor 2 (default).
	MarginDivisor float64
	// Interp selects the curve-fitting scheme for locating the CDF's
	// maximum-derivative point: "pchip" (paper's choice, default),
	// "spline", or "linear" (ablations).
	Interp string
	// SamplesPerSegment is the derivative scan density (default 8).
	SamplesPerSegment int
}

func (o SteepnessOptions) withDefaults() SteepnessOptions {
	// Binning's zero value is LinearBins but the pipeline default is
	// log bins; a fully zero struct (Bins unset) selects LogBins.
	// Callers wanting linear bins set Bins explicitly as well.
	if o.Bins == 0 {
		o.Binning = stats.LogBins
		o.Bins = 96
	}
	if o.MarginDivisor == 0 {
		o.MarginDivisor = 2
	}
	if o.Interp == "" {
		o.Interp = "pchip"
	}
	if o.SamplesPerSegment == 0 {
		o.SamplesPerSegment = 8
	}
	return o
}

// DefaultSteepnessOptions returns the paper's configuration explicitly.
func DefaultSteepnessOptions() SteepnessOptions {
	return SteepnessOptions{
		Binning:           stats.LogBins,
		Bins:              96,
		MarginDivisor:     2,
		Interp:            "pchip",
		SamplesPerSegment: 8,
	}
}

// SteepnessResult is the outcome of examining one group's CDF.
type SteepnessResult struct {
	// Score is Algorithm 1's steepness: the vertical distance between
	// the utmost PDF outlier and the least-squares line at that point.
	// Higher means a sharper single rise in the CDF.
	Score float64
	// UtmostMicros is the Tintt (µs) of the utmost outlier.
	UtmostMicros float64
	// RiseMicros is the Tintt (µs) at the maximum of the interpolated
	// CDF's derivative — the representative T'intt of Section III.
	RiseMicros float64
	// MaxDeriv is the derivative value at RiseMicros.
	MaxDeriv float64
}

// ExamineSteepness runs Algorithm 1 on the inter-arrival samples (µs)
// and locates the CDF's maximum-derivative point. It returns ok=false
// when the sample is too small or degenerate (fewer than two distinct
// values) for the analysis to mean anything.
func ExamineSteepness(inttMicros []float64, o SteepnessOptions) (SteepnessResult, bool) {
	o = o.withDefaults()
	var res SteepnessResult
	if len(inttMicros) < 2 {
		return res, false
	}
	lo, hi := stats.Min(inttMicros), stats.Max(inttMicros)
	if lo == hi {
		// All samples identical: infinitely steep CDF. Report the
		// degenerate point directly; Score uses the full mass.
		res.Score = 1
		res.UtmostMicros = lo
		res.RiseMicros = lo
		res.MaxDeriv = math.Inf(1)
		return res, true
	}
	if lo <= 0 {
		lo = 1e-3 // clamp to 1ns in µs units for log binning
	}

	// Step 1: PDF of Tintt over the histogram support.
	h, err := stats.NewHistogram(o.Binning, lo, hi, o.Bins)
	if err != nil {
		return res, false
	}
	for _, v := range inttMicros {
		h.Observe(v)
	}
	xs, ps := h.PDF()

	// Step 2: least-squares straight line through (Tintt, PDF).
	fit, err := stats.LeastSquares(xs, ps)
	if err != nil {
		return res, false
	}

	// Step 3: outliers — PDF points above the line by more than the
	// margin (half the PDF variance, per the paper).
	margin := stats.Variance(ps) / o.MarginDivisor
	bestDist := 0.0
	bestX := 0.0
	found := false
	for i := range xs {
		dist := ps[i] - fit.At(xs[i])
		if dist > margin && dist > bestDist {
			bestDist = dist
			bestX = xs[i]
			found = true
		}
	}
	if !found {
		// No bucket stands out: fall back to the highest-mass bucket
		// so every group still yields a representative point.
		for i := range xs {
			if d := ps[i] - fit.At(xs[i]); d > bestDist {
				bestDist, bestX = d, xs[i]
			}
		}
	}
	res.Score = bestDist
	res.UtmostMicros = bestX

	// Step 4 (Section IV "steepness analysis"): interpolate the CDF
	// and find the maximum of its derivative.
	cx, cy := dedupePoints(NewCDFPoints(inttMicros))
	if len(cx) < 2 {
		res.RiseMicros = bestX
		res.MaxDeriv = math.Inf(1)
		return res, true
	}
	if len(cx) < 8 {
		// Too few distinct values for curve fitting to be meaningful
		// (a 2-knot PCHIP has a constant derivative, which would make
		// the argmax the leftmost point). The empirical CDF's largest
		// probability jump is the rise.
		x, gap := stats.NewECDF(inttMicros).MaxGapBelow()
		res.RiseMicros = x
		res.MaxDeriv = gap
		return res, true
	}
	var f interp.Interpolant
	switch o.Interp {
	case "spline":
		f, err = interp.NaturalSpline(cx, cy)
	case "linear":
		f, err = interp.Linear(cx, cy)
	default:
		f, err = interp.PCHIP(cx, cy)
	}
	if err != nil {
		return res, false
	}
	res.RiseMicros, res.MaxDeriv = interp.MaxDeriv(f, o.SamplesPerSegment)
	return res, true
}

// NewCDFPoints builds empirical CDF step points from samples (µs),
// thinned to at most 512 knots so interpolation cost stays bounded on
// million-request groups while preserving the distribution shape.
func NewCDFPoints(samples []float64) ([]float64, []float64) {
	e := stats.NewECDF(samples)
	xs, cs := e.Points()
	const maxKnots = 512
	if len(xs) <= maxKnots {
		return xs, cs
	}
	step := float64(len(xs)-1) / float64(maxKnots-1)
	tx := make([]float64, 0, maxKnots)
	tc := make([]float64, 0, maxKnots)
	for i := 0; i < maxKnots; i++ {
		j := int(math.Round(float64(i) * step))
		if j >= len(xs) {
			j = len(xs) - 1
		}
		tx = append(tx, xs[j])
		tc = append(tc, cs[j])
	}
	return tx, tc
}

// dedupePoints drops knots with non-increasing x (thinning can produce
// duplicates at array ends).
func dedupePoints(xs, ys []float64) ([]float64, []float64) {
	if len(xs) == 0 {
		return xs, ys
	}
	ox := xs[:1]
	oy := ys[:1]
	for i := 1; i < len(xs); i++ {
		if xs[i] > ox[len(ox)-1] {
			ox = append(ox, xs[i])
			oy = append(oy, ys[i])
		}
	}
	return ox, oy
}
