package infer

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"time"

	"repro/internal/trace"
)

// streamTrace builds a mixed synthetic trace with enough group
// structure for estimation.
func streamTrace(n int) *trace.Trace {
	rng := rand.New(rand.NewSource(11))
	t := &trace.Trace{Name: "stream", TsdevKnown: false}
	now := time.Duration(0)
	lba := uint64(0)
	sizes := []uint32{8, 16, 64}
	for i := 0; i < n; i++ {
		sz := sizes[rng.Intn(len(sizes))]
		op := trace.Read
		if rng.Float64() < 0.4 {
			op = trace.Write
		}
		if rng.Float64() < 0.5 {
			lba = uint64(rng.Intn(1 << 24))
		}
		t.Requests = append(t.Requests, trace.Request{
			Arrival: now, LBA: lba, Sectors: sz, Op: op,
		})
		lba += uint64(sz)
		now += time.Duration(50+rng.Intn(3000)) * time.Microsecond
		if rng.Float64() < 0.02 {
			now += time.Duration(rng.Intn(40)) * time.Millisecond
		}
	}
	return t
}

// TestStreamClassifierMatchesClassify checks group keys and samples.
func TestStreamClassifierMatchesClassify(t *testing.T) {
	tr := streamTrace(2000)
	want := Classify(tr)
	c := NewStreamClassifier()
	for _, r := range tr.Requests {
		c.Add(r)
	}
	got := c.Grouping()
	if len(got.Groups) != len(want.Groups) {
		t.Fatalf("group count: got %d want %d", len(got.Groups), len(want.Groups))
	}
	for k, wg := range want.Groups {
		gg := got.Groups[k]
		if gg == nil {
			t.Fatalf("missing group %+v", k)
		}
		if !reflect.DeepEqual(gg.InttMicros, wg.InttMicros) {
			t.Fatalf("group %+v samples differ", k)
		}
	}
	if c.N() != tr.Len() {
		t.Fatalf("N: got %d want %d", c.N(), tr.Len())
	}
}

// TestEstimateGroupingMatchesEstimate checks the fitted models agree.
func TestEstimateGroupingMatchesEstimate(t *testing.T) {
	tr := streamTrace(4000)
	want, err := Estimate(tr, EstimateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	c := NewStreamClassifier()
	for _, r := range tr.Requests {
		c.Add(r)
	}
	got, err := EstimateGrouping(c.Grouping(), tr.Name, EstimateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("models differ:\n got %+v\nwant %+v", got, want)
	}
}

// TestDecomposeShardConcatenation checks that per-shard decomposition
// with carry context concatenates to the whole-trace result, for
// arbitrary cut points.
func TestDecomposeShardConcatenation(t *testing.T) {
	tr := streamTrace(1200)
	m, err := Estimate(tr, EstimateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, tsdev := range []bool{false, true} {
		tr.TsdevKnown = tsdev
		if tsdev {
			for i := range tr.Requests {
				tr.Requests[i].Latency = time.Duration(50+i%200) * time.Microsecond
			}
		}
		wantIdle, wantAsync := Decompose(m, tr)

		cuts := []int{0, 137, 138, 500, 999, 1200}
		sort.Ints(cuts)
		seq := trace.NewSeqState()
		flags := make([]bool, tr.Len())
		for i, r := range tr.Requests {
			flags[i] = seq.Flag(r)
		}
		var gotIdle []time.Duration
		var gotAsync []bool
		for ci := 0; ci+1 < len(cuts); ci++ {
			lo, hi := cuts[ci], cuts[ci+1]
			ctx := ShardContext{TsdevKnown: tsdev, Seq: flags[lo:hi]}
			if lo > 0 {
				ctx.Prev = &tr.Requests[lo-1]
				ctx.PrevSeq = flags[lo-1]
			}
			if hi < tr.Len() {
				ctx.HasNext = true
				ctx.NextArrival = tr.Requests[hi].Arrival
			}
			idle, async := DecomposeShard(m, tr.Requests[lo:hi], ctx)
			gotIdle = append(gotIdle, idle...)
			gotAsync = append(gotAsync, async...)
		}
		if !reflect.DeepEqual(gotIdle, wantIdle) {
			t.Fatalf("tsdev=%v: idle concatenation differs", tsdev)
		}
		if !reflect.DeepEqual(gotAsync, wantAsync) {
			t.Fatalf("tsdev=%v: async concatenation differs", tsdev)
		}
	}
}
