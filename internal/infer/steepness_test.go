package infer

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/stats"
)

func TestExamineSteepnessSharpVsDiffuse(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// Sharp: 95% of samples at ~200µs, a thin uniform tail.
	sharp := make([]float64, 0, 2000)
	for i := 0; i < 1900; i++ {
		sharp = append(sharp, 200+rng.Float64()*2)
	}
	for i := 0; i < 100; i++ {
		sharp = append(sharp, 10+rng.Float64()*100000)
	}
	// Diffuse: log-uniform over 5 decades.
	diffuse := make([]float64, 0, 2000)
	for i := 0; i < 2000; i++ {
		diffuse = append(diffuse, math.Pow(10, 1+rng.Float64()*5))
	}
	rs, ok1 := ExamineSteepness(sharp, DefaultSteepnessOptions())
	rd, ok2 := ExamineSteepness(diffuse, DefaultSteepnessOptions())
	if !ok1 || !ok2 {
		t.Fatal("examination failed")
	}
	if rs.Score <= rd.Score {
		t.Fatalf("sharp score %v should exceed diffuse %v", rs.Score, rd.Score)
	}
	// The sharp sample's rise must be located near 200µs.
	if rs.RiseMicros < 150 || rs.RiseMicros > 260 {
		t.Fatalf("rise at %vµs, want ~200µs", rs.RiseMicros)
	}
}

func TestExamineSteepnessDegenerate(t *testing.T) {
	if _, ok := ExamineSteepness(nil, SteepnessOptions{}); ok {
		t.Fatal("empty sample must not examine")
	}
	if _, ok := ExamineSteepness([]float64{5}, SteepnessOptions{}); ok {
		t.Fatal("single sample must not examine")
	}
	res, ok := ExamineSteepness([]float64{7, 7, 7, 7}, SteepnessOptions{})
	if !ok {
		t.Fatal("identical samples should examine (infinitely steep)")
	}
	if res.RiseMicros != 7 || !math.IsInf(res.MaxDeriv, 1) {
		t.Fatalf("degenerate result: %+v", res)
	}
}

func TestExamineSteepnessZeroAndNegativeClamped(t *testing.T) {
	// Zero inter-arrivals occur in real traces (same-timestamp
	// arrivals); log binning must survive them.
	samples := []float64{0, 0, 100, 100, 100, 100, 100, 200, 100000}
	res, ok := ExamineSteepness(samples, DefaultSteepnessOptions())
	if !ok {
		t.Fatal("examination failed on zero-containing sample")
	}
	if math.IsNaN(res.Score) || math.IsNaN(res.RiseMicros) {
		t.Fatalf("NaN leaked: %+v", res)
	}
}

func TestExamineSteepnessInterpVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	samples := make([]float64, 0, 1000)
	for i := 0; i < 950; i++ {
		samples = append(samples, 500+rng.Float64()*5)
	}
	for i := 0; i < 50; i++ {
		samples = append(samples, 1000+rng.Float64()*50000)
	}
	for _, scheme := range []string{"pchip", "spline", "linear"} {
		o := DefaultSteepnessOptions()
		o.Interp = scheme
		res, ok := ExamineSteepness(samples, o)
		if !ok {
			t.Fatalf("%s: failed", scheme)
		}
		if res.RiseMicros < 400 || res.RiseMicros > 700 {
			t.Fatalf("%s: rise at %v, want ~500", scheme, res.RiseMicros)
		}
	}
}

func TestExamineSteepnessLinearBinning(t *testing.T) {
	o := SteepnessOptions{Binning: stats.LinearBins, Bins: 64}
	samples := make([]float64, 0, 500)
	for i := 0; i < 500; i++ {
		samples = append(samples, 100+float64(i%7))
	}
	if _, ok := ExamineSteepness(samples, o); !ok {
		t.Fatal("linear binning variant failed")
	}
}

func TestNewCDFPointsThinning(t *testing.T) {
	big := make([]float64, 5000)
	for i := range big {
		big[i] = float64(i) // all distinct
	}
	xs, ys := NewCDFPoints(big)
	if len(xs) > 512 {
		t.Fatalf("thinning failed: %d knots", len(xs))
	}
	if len(xs) != len(ys) {
		t.Fatal("mismatched lengths")
	}
	// Endpoints preserved.
	if xs[0] != 0 || xs[len(xs)-1] != 4999 {
		t.Fatalf("endpoints lost: [%v, %v]", xs[0], xs[len(xs)-1])
	}
	if ys[len(ys)-1] != 1 {
		t.Fatalf("final CDF value %v", ys[len(ys)-1])
	}
}

func TestDedupePoints(t *testing.T) {
	xs := []float64{1, 2, 2, 3}
	ys := []float64{0.1, 0.2, 0.3, 0.4}
	ox, oy := dedupePoints(xs, ys)
	if len(ox) != 3 || ox[1] != 2 || oy[2] != 0.4 {
		t.Fatalf("dedupe: %v %v", ox, oy)
	}
	ex, ey := dedupePoints(nil, nil)
	if len(ex) != 0 || len(ey) != 0 {
		t.Fatal("empty dedupe broken")
	}
}

func TestUtmostOutlierIsSpike(t *testing.T) {
	// One bucket holds 60% of mass; Algorithm 1's utmost outlier must
	// land on it.
	rng := rand.New(rand.NewSource(3))
	samples := make([]float64, 0, 1000)
	for i := 0; i < 600; i++ {
		samples = append(samples, 1000+rng.Float64()*10)
	}
	for i := 0; i < 400; i++ {
		samples = append(samples, math.Pow(10, rng.Float64()*6))
	}
	res, ok := ExamineSteepness(samples, DefaultSteepnessOptions())
	if !ok {
		t.Fatal("failed")
	}
	if res.UtmostMicros < 800 || res.UtmostMicros > 1300 {
		t.Fatalf("utmost outlier at %v, want ~1000", res.UtmostMicros)
	}
}
