package infer

import (
	"time"

	"repro/internal/trace"
)

// StreamClassifier builds a Grouping incrementally from a request
// stream, so the Section III model can be fitted without materializing
// the trace. Feeding every request of a trace in order produces the
// same groups (keys and inter-arrival samples) as Classify; only the
// per-sample trace indices are omitted, which the estimator never
// consults.
type StreamClassifier struct {
	groups  map[GroupKey]*Group
	seq     *trace.SeqState
	prev    trace.Request
	prevSeq bool
	have    bool
	n       int
	// lastKey/lastGrp cache the previously hit group: workloads issue
	// runs of same-shaped requests, so most Adds skip the map lookup.
	lastKey GroupKey
	lastGrp *Group
}

// NewStreamClassifier returns an empty incremental classifier.
func NewStreamClassifier() *StreamClassifier {
	return &StreamClassifier{
		groups: make(map[GroupKey]*Group),
		seq:    trace.NewSeqState(),
	}
}

// Add presents the next request of the trace (in arrival order).
func (c *StreamClassifier) Add(r trace.Request) {
	if c.have {
		k := GroupKey{Seq: c.prevSeq, Op: c.prev.Op, Sectors: c.prev.Sectors}
		grp := c.lastGrp
		if grp == nil || k != c.lastKey {
			grp = c.groups[k]
			if grp == nil {
				grp = &Group{Key: k}
				c.groups[k] = grp
			}
			c.lastKey, c.lastGrp = k, grp
		}
		intt := float64(r.Arrival-c.prev.Arrival) / float64(time.Microsecond)
		grp.InttMicros = append(grp.InttMicros, intt)
	}
	c.prevSeq = c.seq.Flag(r)
	c.prev = r
	c.have = true
	c.n++
}

// AddBatch presents a run of consecutive requests — the fold the
// engine's model-fit pass runs over pre-decoded batches from the
// parallel decoders.
func (c *StreamClassifier) AddBatch(rs []trace.Request) {
	for _, r := range rs {
		c.Add(r)
	}
}

// N returns the number of requests seen.
func (c *StreamClassifier) N() int { return c.n }

// Grouping returns the classification accumulated so far.
func (c *StreamClassifier) Grouping() *Grouping {
	return &Grouping{Groups: c.groups}
}

// ShardContext carries the cross-boundary state DecomposeShard needs
// to reproduce the whole-trace decomposition on a sub-range: the
// request immediately before the shard (with its sequentiality flag),
// the arrival immediately after it, and the shard's own flags.
type ShardContext struct {
	// TsdevKnown selects recorded per-request latencies over the model
	// (the whole-trace path's effective t.TsdevKnown).
	TsdevKnown bool
	// Seq[i] is the sequentiality flag of shard request i, computed
	// against the full-trace history (trace.SeqState carried across
	// shards).
	Seq []bool
	// Prev is the last request before the shard, nil for the first
	// shard; PrevSeq is its flag.
	Prev    *trace.Request
	PrevSeq bool
	// HasNext reports whether a request follows the shard; NextArrival
	// is its arrival time.
	HasNext     bool
	NextArrival time.Duration
}

// DecomposeShard computes the per-instruction decomposition of one
// shard of a trace. With a context describing the full trace (nil
// Prev, no Next, whole-trace Seq) it is exactly Decompose; with carry
// state from a shard planner the per-shard results concatenate to the
// whole-trace result, which is what makes parallel reconstruction
// byte-identical to the sequential pipeline.
func DecomposeShard(m *Model, reqs []trace.Request, ctx ShardContext) (idle []time.Duration, async []bool) {
	idle = make([]time.Duration, len(reqs))
	async = make([]bool, len(reqs))
	DecomposeShardInto(idle, async, m, reqs, ctx)
	return idle, async
}

// DecomposeShardInto is DecomposeShard writing into caller-provided
// slices (len == len(reqs)), so a parallel engine can fill its merged
// report slots without per-shard allocations.
func DecomposeShardInto(idle []time.Duration, async []bool, m *Model, reqs []trace.Request, ctx ShardContext) {
	n := len(reqs)
	if n == 0 {
		return
	}
	// Every other slot is assigned unconditionally below, so only the
	// two boundary defaults need clearing — the slices may be reused
	// scratch, not fresh allocations.
	idle[0] = 0
	async[n-1] = false
	// pair evaluates the decomposition across one adjacent pair: r at
	// trace order position i (seq flag rseq), followed by an arrival at
	// next. It reports the idle preceding the follower and whether r
	// was issued asynchronously.
	pair := func(r trace.Request, rseq bool, next time.Duration) (time.Duration, bool) {
		intt := next - r.Arrival
		var slat, sdev time.Duration
		if ctx.TsdevKnown && r.Latency > 0 {
			slat = r.Latency
			sdev = r.Latency
		} else if m != nil {
			slat = m.Tslat(r.Op, r.Sectors, rseq)
			sdev = time.Duration(m.TsdevMicros(r.Op, r.Sectors, rseq) * float64(time.Microsecond))
		}
		var id time.Duration
		if intt > slat {
			id = intt - slat
		}
		return id, intt < sdev
	}
	if ctx.Prev != nil {
		idle[0], _ = pair(*ctx.Prev, ctx.PrevSeq, reqs[0].Arrival)
	}
	for i := 0; i+1 < n; i++ {
		id, as := pair(reqs[i], ctx.Seq[i], reqs[i+1].Arrival)
		idle[i+1] = id
		async[i] = as
	}
	if ctx.HasNext {
		_, async[n-1] = pair(reqs[n-1], ctx.Seq[n-1], ctx.NextArrival)
	}
}
