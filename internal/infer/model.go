package infer

import (
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/trace"
)

// Model is the fitted latency-decomposition model of Section III: the
// per-sector device-time coefficients, channel delays, and the
// representative moving delay for random accesses. All time fields are
// in microseconds to match the estimation arithmetic; the public
// methods convert to time.Duration.
type Model struct {
	// BetaMicros is β: sequential-read device time per sector (µs).
	BetaMicros float64
	// EtaMicros is η: sequential-write device time per sector (µs).
	EtaMicros float64
	// TcdelReadMicros / TcdelWriteMicros are the channel delays.
	TcdelReadMicros  float64
	TcdelWriteMicros float64
	// TmovdMicros is the representative positioning delay added to
	// random accesses.
	TmovdMicros float64

	// FlatReadMicros / FlatWriteMicros are fallback whole-Tslat values
	// used when the trace exhibits a uniform request size for that op
	// (the paper's single-CDF case: Tslat is read directly off the
	// global maximum of CDF'). Negative means unused.
	FlatReadMicros  float64
	FlatWriteMicros float64

	// Diagnostics from estimation, useful in reports.
	ReadSizes  [2]uint32 // the two steepest read group sizes (sectors)
	WriteSizes [2]uint32
}

// EstimateOptions tunes Estimate.
type EstimateOptions struct {
	Steepness SteepnessOptions
	// MinGroupSamples is the minimum group population considered
	// statistically meaningful (default 16).
	MinGroupSamples int
	// DeltaFromCDFDiff selects the literal CDF-difference construction
	// of Fig 6 for ΔTintt instead of the rise-separation estimator;
	// see estimateDelta for the discussion. Default false.
	DeltaFromCDFDiff bool
}

func (o EstimateOptions) withDefaults() EstimateOptions {
	if o.MinGroupSamples == 0 {
		o.MinGroupSamples = 16
	}
	return o
}

// ErrTooSparse is returned when a trace has no group large enough to
// support any inference at all.
var ErrTooSparse = errors.New("infer: trace too sparse for inference")

// Estimate fits the Section III model to a trace: it classifies the
// instructions, scores every sequential per-size CDF with Algorithm 1,
// derives β/η from the two steepest read/write graphs, channel delays
// from the steepest graph's rise location, and Tmovd from the steepest
// random-access graph.
func Estimate(t *trace.Trace, opts EstimateOptions) (*Model, error) {
	return EstimateGrouping(Classify(t), t.Name, opts)
}

// EstimateGrouping fits the model from a pre-built classification
// (either Classify's or a StreamClassifier's). name labels errors.
func EstimateGrouping(g *Grouping, name string, opts EstimateOptions) (*Model, error) {
	opts = opts.withDefaults()
	m := &Model{FlatReadMicros: -1, FlatWriteMicros: -1}

	okRead := estimateOp(m, g, trace.Read, opts)
	okWrite := estimateOp(m, g, trace.Write, opts)
	if !okRead && !okWrite {
		return nil, fmt.Errorf("%w: %q", ErrTooSparse, name)
	}
	// A missing op inherits the other's parameters: the best available
	// estimate when a workload is effectively read-only or write-only.
	if !okRead {
		m.BetaMicros = m.EtaMicros
		m.TcdelReadMicros = m.TcdelWriteMicros
		m.FlatReadMicros = m.FlatWriteMicros
		m.ReadSizes = m.WriteSizes
	}
	if !okWrite {
		m.EtaMicros = m.BetaMicros
		m.TcdelWriteMicros = m.TcdelReadMicros
		m.FlatWriteMicros = m.FlatReadMicros
		m.WriteSizes = m.ReadSizes
	}

	estimateTmovd(m, g, opts)
	return m, nil
}

// estimateOp fits β (or η) and Tcdel for one operation type from the
// sequential groups. Returns false when no group is usable.
func estimateOp(m *Model, g *Grouping, op trace.Op, opts EstimateOptions) bool {
	groups := g.Select(true, op, opts.MinGroupSamples)
	if len(groups) == 0 {
		// No sequential traffic: fall back to random groups of the op
		// so that read-heavy random workloads still get a model; the
		// Tmovd term then absorbs the positioning component.
		for _, grp := range g.SelectAllRandom(opts.MinGroupSamples) {
			if grp.Key.Op == op {
				groups = append(groups, grp)
			}
		}
	}
	type scored struct {
		grp *Group
		res SteepnessResult
	}
	var sc []scored
	for _, grp := range groups {
		if res, ok := ExamineSteepness(grp.InttMicros, opts.Steepness); ok {
			sc = append(sc, scored{grp, res})
		}
	}
	if len(sc) == 0 {
		return false
	}
	// Graph classification: the two highest Algorithm-1 scores with
	// distinct request sizes.
	best := 0
	for i := range sc {
		if sc[i].res.Score > sc[best].res.Score {
			best = i
		}
	}
	steep1 := sc[best]
	second := -1
	for i := range sc {
		if sc[i].grp.Key.Sectors == steep1.grp.Key.Sectors {
			continue
		}
		if second == -1 || sc[i].res.Score > sc[second].res.Score {
			second = i
		}
	}

	if second == -1 {
		// Uniform request size: single-CDF case — read Tslat directly
		// off the global maximum of CDF' (paper Fig 5a discussion).
		flat := steep1.res.RiseMicros
		if op == trace.Read {
			m.FlatReadMicros = flat
			m.ReadSizes = [2]uint32{steep1.grp.Key.Sectors, steep1.grp.Key.Sectors}
		} else {
			m.FlatWriteMicros = flat
			m.WriteSizes = [2]uint32{steep1.grp.Key.Sectors, steep1.grp.Key.Sectors}
		}
		return true
	}
	steep2 := sc[second]

	delta := estimateDelta(steep1.res, steep2.res, steep1.grp.InttMicros, steep2.grp.InttMicros, opts)
	sizeDiff := math.Abs(float64(steep1.grp.Key.Sectors) - float64(steep2.grp.Key.Sectors))
	coef := delta / sizeDiff
	if coef < 0 {
		coef = 0
	}
	// T'intt of the steepest graph minus the size-proportional device
	// time leaves the channel delay.
	tcdel := steep1.res.RiseMicros - coef*float64(steep1.grp.Key.Sectors)
	if tcdel < 0 {
		tcdel = 0
	}
	if op == trace.Read {
		m.BetaMicros = coef
		m.TcdelReadMicros = tcdel
		m.ReadSizes = [2]uint32{steep1.grp.Key.Sectors, steep2.grp.Key.Sectors}
	} else {
		m.EtaMicros = coef
		m.TcdelWriteMicros = tcdel
		m.WriteSizes = [2]uint32{steep1.grp.Key.Sectors, steep2.grp.Key.Sectors}
	}
	return true
}

// estimateDelta produces ΔTintt, the inter-arrival separation between
// the two steepest per-size CDFs, which divided by the size difference
// yields the per-sector coefficient (Fig 6).
//
// The default estimator is the separation of the two rise locations
// |T'1 − T'2|: the two CDFs rise at Tcdel + coef·size1 and
// Tcdel + coef·size2 respectively, so the separation isolates
// coef·|size1−size2| exactly. The paper's Fig 6 construction — build
// CDF(diff) = CDF1 − CDF2 and take the Tintt at max CDF(diff)′ — is
// available behind DeltaFromCDFDiff for the fidelity ablation; on
// well-separated rises both land within a bin width of each other.
func estimateDelta(r1, r2 SteepnessResult, s1, s2 []float64, opts EstimateOptions) float64 {
	if !opts.DeltaFromCDFDiff {
		return math.Abs(r1.RiseMicros - r2.RiseMicros)
	}
	// Literal construction: evaluate both interpolated CDFs on the
	// merged support, interpolate the difference, take argmax of its
	// derivative, then measure separation from steep1's rise.
	x1, y1 := dedupePoints(NewCDFPoints(s1))
	x2, y2 := dedupePoints(NewCDFPoints(s2))
	if len(x1) < 2 || len(x2) < 2 {
		return math.Abs(r1.RiseMicros - r2.RiseMicros)
	}
	f1, err1 := pchipOrLinear(x1, y1)
	f2, err2 := pchipOrLinear(x2, y2)
	if err1 != nil || err2 != nil {
		return math.Abs(r1.RiseMicros - r2.RiseMicros)
	}
	lo := math.Min(x1[0], x2[0])
	hi := math.Max(x1[len(x1)-1], x2[len(x2)-1])
	const n = 512
	bestX, bestD := lo, math.Inf(-1)
	prev := f1.At(lo) - f2.At(lo)
	step := (hi - lo) / n
	for i := 1; i <= n; i++ {
		x := lo + float64(i)*step
		cur := f1.At(x) - f2.At(x)
		if d := (cur - prev) / step; d > bestD {
			bestD, bestX = d, x
		}
		prev = cur
	}
	return math.Abs(bestX - r1.RiseMicros)
}

// estimateTmovd fits the representative random-access positioning
// delay from the steepest random-access CDF.
func estimateTmovd(m *Model, g *Grouping, opts EstimateOptions) {
	var bestGrp *Group
	var bestRes SteepnessResult
	found := false
	for _, grp := range g.SelectAllRandom(opts.MinGroupSamples) {
		res, ok := ExamineSteepness(grp.InttMicros, opts.Steepness)
		if !ok {
			continue
		}
		if !found || res.Score > bestRes.Score {
			bestGrp, bestRes, found = grp, res, true
		}
	}
	if !found {
		m.TmovdMicros = 0
		return
	}
	// Tmovd = T_rand − (Tcdel + coef·size_ref) for the chosen group's
	// op type and size.
	sizeRef := float64(bestGrp.Key.Sectors)
	var seqPart float64
	if bestGrp.Key.Op == trace.Read {
		seqPart = m.TcdelReadMicros + m.BetaMicros*sizeRef
		if m.FlatReadMicros >= 0 {
			seqPart = m.FlatReadMicros
		}
	} else {
		seqPart = m.TcdelWriteMicros + m.EtaMicros*sizeRef
		if m.FlatWriteMicros >= 0 {
			seqPart = m.FlatWriteMicros
		}
	}
	tmovd := bestRes.RiseMicros - seqPart
	if tmovd < 0 {
		tmovd = 0
	}
	m.TmovdMicros = tmovd
}

// TsdevMicros returns the modeled device time (µs) for a request of
// the given op/size/sequentiality.
func (m *Model) TsdevMicros(op trace.Op, sectors uint32, seq bool) float64 {
	var v float64
	switch op {
	case trace.Read:
		if m.FlatReadMicros >= 0 {
			v = m.FlatReadMicros - m.TcdelReadMicros
			if v < 0 {
				v = m.FlatReadMicros
			}
		} else {
			v = m.BetaMicros * float64(sectors)
		}
	default:
		if m.FlatWriteMicros >= 0 {
			v = m.FlatWriteMicros - m.TcdelWriteMicros
			if v < 0 {
				v = m.FlatWriteMicros
			}
		} else {
			v = m.EtaMicros * float64(sectors)
		}
	}
	if !seq {
		v += m.TmovdMicros
	}
	return v
}

// TslatMicros returns the modeled I/O subsystem latency (µs).
func (m *Model) TslatMicros(op trace.Op, sectors uint32, seq bool) float64 {
	tcdel := m.TcdelWriteMicros
	if op == trace.Read {
		tcdel = m.TcdelReadMicros
	}
	return tcdel + m.TsdevMicros(op, sectors, seq)
}

// Tslat returns TslatMicros as a Duration.
func (m *Model) Tslat(op trace.Op, sectors uint32, seq bool) time.Duration {
	return time.Duration(m.TslatMicros(op, sectors, seq) * float64(time.Microsecond))
}

// Decompose computes the per-instruction timing decomposition for a
// whole trace. Element i of the returned slices describes instruction
// i: Idle[i] is the inferred idle period *preceding* instruction i
// (Idle[0] = 0), and Async[i] reports whether instruction i was issued
// asynchronously (its following inter-arrival is shorter than its own
// device time, the paper's post-processing criterion).
//
// When t.TsdevKnown, recorded per-request latencies replace the model's
// Tslat (the paper's "skip the Tsdev inference phase" path); m may then
// be nil.
func Decompose(m *Model, t *trace.Trace) (idle []time.Duration, async []bool) {
	return DecomposeShard(m, t.Requests, ShardContext{
		TsdevKnown: t.TsdevKnown,
		Seq:        t.SeqFlags(),
	})
}
