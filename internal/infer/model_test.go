package infer

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/trace"
)

// synthTrace builds a trace whose inter-arrival structure follows the
// paper's model exactly: after each request of size s (sectors), the
// next arrival comes tcdel + coef*s (+tmovd if random) later, plus an
// occasional injected idle. With jitter=0 recovery should be exact up
// to binning resolution.
type synthSpec struct {
	betaUS, etaUS      float64 // per-sector device time
	tcdelRUS, tcdelWUS float64
	tmovdUS            float64
	readSizes          []uint32
	writeSizes         []uint32
	n                  int
	idleEvery          int // inject idle every k-th request (0=never)
	idleUS             float64
	jitterUS           float64
	seed               int64
}

func buildSynth(s synthSpec) (*trace.Trace, []time.Duration) {
	rng := rand.New(rand.NewSource(s.seed))
	tr := &trace.Trace{Name: "synth"}
	var idles []time.Duration
	now := time.Duration(0)
	lba := uint64(0)
	for i := 0; i < s.n; i++ {
		var op trace.Op
		var sz uint32
		if i%2 == 0 && len(s.readSizes) > 0 {
			op = trace.Read
			sz = s.readSizes[i/2%len(s.readSizes)]
		} else if len(s.writeSizes) > 0 {
			op = trace.Write
			sz = s.writeSizes[(i/2)%len(s.writeSizes)]
		} else {
			op = trace.Read
			sz = s.readSizes[i%len(s.readSizes)]
		}
		// All-sequential: LBA continues exactly.
		tr.Requests = append(tr.Requests, trace.Request{
			Arrival: now, LBA: lba, Sectors: sz, Op: op,
		})
		lba += uint64(sz)
		var slatUS float64
		if op == trace.Read {
			slatUS = s.tcdelRUS + s.betaUS*float64(sz)
		} else {
			slatUS = s.tcdelWUS + s.etaUS*float64(sz)
		}
		slatUS += (rng.Float64()*2 - 1) * s.jitterUS
		idle := time.Duration(0)
		if s.idleEvery > 0 && i%s.idleEvery == s.idleEvery-1 {
			idle = time.Duration(s.idleUS * float64(time.Microsecond))
		}
		idles = append(idles, idle)
		now += time.Duration(slatUS*float64(time.Microsecond)) + idle
	}
	return tr, idles
}

func TestEstimateRecoversCoefficients(t *testing.T) {
	spec := synthSpec{
		betaUS: 0.5, etaUS: 1.5,
		tcdelRUS: 20, tcdelWUS: 30,
		readSizes:  []uint32{8, 128},
		writeSizes: []uint32{8, 128},
		n:          8000,
		seed:       11,
	}
	tr, _ := buildSynth(spec)
	m, err := Estimate(tr, EstimateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// β from ΔT/Δsize: rise points at 20+0.5*8=24 and 20+0.5*128=84,
	// Δ=60 over 120 sectors = 0.5. Binning granularity allows ~25%.
	if math.Abs(m.BetaMicros-spec.betaUS) > spec.betaUS*0.25 {
		t.Fatalf("β = %v, want ~%v", m.BetaMicros, spec.betaUS)
	}
	if math.Abs(m.EtaMicros-spec.etaUS) > spec.etaUS*0.25 {
		t.Fatalf("η = %v, want ~%v", m.EtaMicros, spec.etaUS)
	}
	if math.Abs(m.TcdelReadMicros-spec.tcdelRUS) > 15 {
		t.Fatalf("TcdelRead = %v, want ~%v", m.TcdelReadMicros, spec.tcdelRUS)
	}
	if math.Abs(m.TcdelWriteMicros-spec.tcdelWUS) > 25 {
		t.Fatalf("TcdelWrite = %v, want ~%v", m.TcdelWriteMicros, spec.tcdelWUS)
	}
}

func TestEstimateUniformSizeFallsBackToFlat(t *testing.T) {
	spec := synthSpec{
		betaUS: 1.0, tcdelRUS: 10,
		readSizes: []uint32{64},
		n:         3000,
		seed:      5,
	}
	tr, _ := buildSynth(spec)
	m, err := Estimate(tr, EstimateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if m.FlatReadMicros < 0 {
		t.Fatal("uniform-size trace should use the flat fallback")
	}
	// Flat Tslat should be near 10 + 64 = 74µs.
	if math.Abs(m.FlatReadMicros-74) > 20 {
		t.Fatalf("flat Tslat = %v, want ~74", m.FlatReadMicros)
	}
}

func TestEstimateSparseTraceFails(t *testing.T) {
	tr := &trace.Trace{Requests: []trace.Request{
		{Arrival: 0, LBA: 0, Sectors: 8},
		{Arrival: 100, LBA: 8, Sectors: 8},
	}}
	if _, err := Estimate(tr, EstimateOptions{}); err == nil {
		t.Fatal("two-request trace should be too sparse")
	}
}

func TestEstimateReadOnlyInheritsWriteParams(t *testing.T) {
	spec := synthSpec{
		betaUS: 0.8, tcdelRUS: 15,
		readSizes: []uint32{8, 64},
		n:         4000,
		seed:      9,
	}
	tr, _ := buildSynth(spec)
	// buildSynth with empty writeSizes emits only reads.
	m, err := Estimate(tr, EstimateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if m.EtaMicros != m.BetaMicros || m.TcdelWriteMicros != m.TcdelReadMicros {
		t.Fatal("write params should inherit read params on a read-only trace")
	}
}

func TestTmovdRecovery(t *testing.T) {
	// Mixed trace: sequential reads of two sizes plus random reads of
	// one size whose Tintt carries an extra tmovd.
	rng := rand.New(rand.NewSource(21))
	tr := &trace.Trace{Name: "tmovd"}
	now := time.Duration(0)
	lba := uint64(0)
	const betaUS, tcdelUS, tmovdUS = 0.5, 20.0, 8000.0
	for i := 0; i < 9000; i++ {
		var sz uint32
		var slatUS float64
		random := i%3 == 2
		switch i % 3 {
		case 0:
			sz = 8
		case 1:
			sz = 128
		case 2:
			sz = 8
		}
		if random {
			lba += 1 + uint64(rng.Intn(1e6)) // break sequentiality
			slatUS = tcdelUS + betaUS*float64(sz) + tmovdUS
		} else {
			slatUS = tcdelUS + betaUS*float64(sz)
		}
		tr.Requests = append(tr.Requests, trace.Request{
			Arrival: now, LBA: lba, Sectors: sz, Op: trace.Read,
		})
		lba += uint64(sz)
		now += time.Duration(slatUS * float64(time.Microsecond))
	}
	m, err := Estimate(tr, EstimateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if m.TmovdMicros < tmovdUS*0.5 || m.TmovdMicros > tmovdUS*1.5 {
		t.Fatalf("Tmovd = %v, want ~%v", m.TmovdMicros, tmovdUS)
	}
	// Model Tsdev: random read of 8 sectors should exceed sequential.
	if m.TsdevMicros(trace.Read, 8, false) <= m.TsdevMicros(trace.Read, 8, true) {
		t.Fatal("random Tsdev must exceed sequential Tsdev")
	}
}

func TestDecomposeRecoversInjectedIdle(t *testing.T) {
	spec := synthSpec{
		betaUS: 0.5, etaUS: 1.5,
		tcdelRUS: 20, tcdelWUS: 30,
		readSizes:  []uint32{8, 128},
		writeSizes: []uint32{8, 128},
		n:          6000,
		idleEvery:  10,
		idleUS:     20000, // 20ms idles, far above Tslat
		seed:       13,
	}
	tr, truth := buildSynth(spec)
	m, err := Estimate(tr, EstimateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	idle, _ := Decompose(m, tr)
	// Idle i is attributed to the request *after* the gap; ground
	// truth idles[i] was inserted after request i, i.e. before i+1.
	tp, fn := 0, 0
	var estSum, truthSum time.Duration
	for i := 0; i+1 < len(truth); i++ {
		if truth[i] > 0 {
			truthSum += truth[i]
			estSum += idle[i+1]
			if idle[i+1] > 0 {
				tp++
			} else {
				fn++
			}
		}
	}
	if tp == 0 || float64(tp)/float64(tp+fn) < 0.95 {
		t.Fatalf("idle detection rate %d/%d too low", tp, tp+fn)
	}
	ratio := float64(estSum) / float64(truthSum)
	if ratio < 0.90 || ratio > 1.10 {
		t.Fatalf("idle length recovery ratio %v outside [0.9,1.1]", ratio)
	}
}

func TestDecomposeTsdevKnownPath(t *testing.T) {
	tr := &trace.Trace{TsdevKnown: true, Requests: []trace.Request{
		{Arrival: 0, LBA: 0, Sectors: 8, Latency: 100 * time.Microsecond},
		{Arrival: 500 * time.Microsecond, LBA: 8, Sectors: 8, Latency: 100 * time.Microsecond},
		{Arrival: 550 * time.Microsecond, LBA: 16, Sectors: 8, Latency: 100 * time.Microsecond},
	}}
	idle, async := Decompose(nil, tr)
	// Gap 0->1 is 500us, latency 100us: idle before request 1 = 400us.
	if idle[1] != 400*time.Microsecond {
		t.Fatalf("idle[1] = %v", idle[1])
	}
	// Gap 1->2 is 50us < latency 100us: request 1 is async, no idle.
	if !async[1] {
		t.Fatal("request 1 should be flagged async")
	}
	if idle[2] != 0 {
		t.Fatalf("idle[2] = %v", idle[2])
	}
	if async[2] {
		t.Fatal("last request can never be flagged async")
	}
}

func TestDecomposeEmptyTrace(t *testing.T) {
	idle, async := Decompose(nil, &trace.Trace{})
	if len(idle) != 0 || len(async) != 0 {
		t.Fatal("empty trace should yield empty slices")
	}
}

func TestClassifyGroupsBySizeOpSeq(t *testing.T) {
	tr := &trace.Trace{Requests: []trace.Request{
		{Arrival: 0, LBA: 0, Sectors: 8, Op: trace.Read},
		{Arrival: 100, LBA: 8, Sectors: 8, Op: trace.Read},     // seq read 8
		{Arrival: 200, LBA: 16, Sectors: 16, Op: trace.Write},  // seq write 16
		{Arrival: 300, LBA: 99999, Sectors: 8, Op: trace.Read}, // rand read 8
		{Arrival: 400, LBA: 0, Sectors: 8, Op: trace.Read},     // rand (terminal, no sample)
	}}
	g := Classify(tr)
	// First request: random (no position history), read, 8.
	if grp := g.Groups[GroupKey{Seq: false, Op: trace.Read, Sectors: 8}]; grp == nil || grp.N() != 2 {
		t.Fatalf("random-read-8 group wrong: %+v", grp)
	}
	if grp := g.Groups[GroupKey{Seq: true, Op: trace.Read, Sectors: 8}]; grp == nil || grp.N() != 1 {
		t.Fatalf("seq-read-8 group wrong: %+v", grp)
	}
	if grp := g.Groups[GroupKey{Seq: true, Op: trace.Write, Sectors: 16}]; grp == nil || grp.N() != 1 {
		t.Fatalf("seq-write-16 group wrong: %+v", grp)
	}
	// Terminal request contributes no inter-arrival sample.
	total := 0
	for _, grp := range g.Groups {
		total += grp.N()
	}
	if total != len(tr.Requests)-1 {
		t.Fatalf("total samples %d, want %d", total, len(tr.Requests)-1)
	}
}

func TestSelectOrdersByPopulation(t *testing.T) {
	g := &Grouping{Groups: map[GroupKey]*Group{}}
	add := func(sz uint32, n int) {
		k := GroupKey{Seq: true, Op: trace.Read, Sectors: sz}
		grp := &Group{Key: k}
		for i := 0; i < n; i++ {
			grp.InttMicros = append(grp.InttMicros, float64(i))
		}
		g.Groups[k] = grp
	}
	add(8, 50)
	add(16, 200)
	add(32, 5)
	sel := g.Select(true, trace.Read, 10)
	if len(sel) != 2 {
		t.Fatalf("selected %d groups, want 2 (min filter)", len(sel))
	}
	if sel[0].Key.Sectors != 16 || sel[1].Key.Sectors != 8 {
		t.Fatalf("order wrong: %v then %v", sel[0].Key, sel[1].Key)
	}
}

func TestModelTslatComposition(t *testing.T) {
	m := &Model{
		BetaMicros: 1, EtaMicros: 2,
		TcdelReadMicros: 10, TcdelWriteMicros: 20,
		TmovdMicros:    100,
		FlatReadMicros: -1, FlatWriteMicros: -1,
	}
	if got := m.TslatMicros(trace.Read, 8, true); got != 18 {
		t.Fatalf("seq read Tslat = %v, want 18", got)
	}
	if got := m.TslatMicros(trace.Read, 8, false); got != 118 {
		t.Fatalf("rand read Tslat = %v, want 118", got)
	}
	if got := m.TslatMicros(trace.Write, 4, true); got != 28 {
		t.Fatalf("seq write Tslat = %v, want 28", got)
	}
	if d := m.Tslat(trace.Read, 8, true); d != 18*time.Microsecond {
		t.Fatalf("Tslat duration = %v", d)
	}
}
