package infer

import (
	"math"
	"math/rand"
	"testing"
)

func TestClassifyShapeGlobalMaxima(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// 90% of mass in a tight spike: Fig 5a.
	var s []float64
	for i := 0; i < 900; i++ {
		s = append(s, 100+rng.Float64())
	}
	for i := 0; i < 100; i++ {
		s = append(s, 50+rng.Float64()*200)
	}
	if got := ClassifyShape(s); got != ShapeGlobalMaxima {
		t.Fatalf("got %v, want global-maxima", got)
	}
}

func TestClassifyShapeChunkyMiddle(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	// Smooth wide spread: Fig 5b.
	var s []float64
	for i := 0; i < 3000; i++ {
		s = append(s, math.Pow(10, 1+rng.Float64()*4))
	}
	if got := ClassifyShape(s); got != ShapeChunkyMiddle {
		t.Fatalf("got %v, want chunky-middle", got)
	}
}

func TestClassifyShapeMultiMaxima(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	// Two well-separated tight modes: Fig 5c.
	var s []float64
	for i := 0; i < 500; i++ {
		s = append(s, 100+rng.Float64()*2)
	}
	for i := 0; i < 500; i++ {
		s = append(s, 10000+rng.Float64()*200)
	}
	if got := ClassifyShape(s); got != ShapeMultiMaxima {
		t.Fatalf("got %v, want multi-maxima", got)
	}
}

func TestClassifyShapeDegenerate(t *testing.T) {
	if got := ClassifyShape([]float64{1, 1}); got != ShapeGlobalMaxima {
		t.Fatalf("two identical samples: got %v", got)
	}
	if got := ClassifyShape([]float64{5}); got != ShapeGlobalMaxima {
		t.Fatalf("one sample: got %v", got)
	}
}

func TestShapeString(t *testing.T) {
	if ShapeGlobalMaxima.String() != "global-maxima" ||
		ShapeChunkyMiddle.String() != "chunky-middle" ||
		ShapeMultiMaxima.String() != "multi-maxima" {
		t.Fatal("Shape.String broken")
	}
	if Shape(9).String() == "" {
		t.Fatal("unknown shape should stringify")
	}
}
