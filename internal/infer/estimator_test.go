package infer

import (
	"math"
	"testing"
	"time"

	"repro/internal/trace"
)

// TestDeltaFromCDFDiffAgreesWithSeparation checks the fidelity
// ablation: the paper's literal Fig 6 CDF-difference construction and
// the rise-separation default land within binning resolution of each
// other on a well-separated synthetic trace.
func TestDeltaFromCDFDiffAgreesWithSeparation(t *testing.T) {
	spec := synthSpec{
		betaUS: 0.5, etaUS: 1.5,
		tcdelRUS: 20, tcdelWUS: 30,
		readSizes:  []uint32{8, 128},
		writeSizes: []uint32{8, 128},
		n:          8000,
		seed:       17,
	}
	tr, _ := buildSynth(spec)
	mSep, err := Estimate(tr, EstimateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	mDiff, err := Estimate(tr, EstimateOptions{DeltaFromCDFDiff: true})
	if err != nil {
		t.Fatal(err)
	}
	if mDiff.BetaMicros == 0 {
		t.Fatal("CDFdiff estimator produced zero β")
	}
	ratio := mDiff.BetaMicros / mSep.BetaMicros
	if ratio < 0.5 || ratio > 2.0 {
		t.Fatalf("estimators disagree: separation β=%v, CDFdiff β=%v",
			mSep.BetaMicros, mDiff.BetaMicros)
	}
}

func TestEstimateMinGroupSamplesFiltering(t *testing.T) {
	spec := synthSpec{
		betaUS: 0.5, tcdelRUS: 20,
		readSizes: []uint32{8, 128},
		n:         200, // 100 samples per size group
		seed:      3,
	}
	tr, _ := buildSynth(spec)
	// A requirement above the population must make the trace too
	// sparse.
	if _, err := Estimate(tr, EstimateOptions{MinGroupSamples: 500}); err == nil {
		t.Fatal("oversized MinGroupSamples should fail")
	}
	if _, err := Estimate(tr, EstimateOptions{MinGroupSamples: 50}); err != nil {
		t.Fatalf("reasonable MinGroupSamples failed: %v", err)
	}
}

func TestEstimateWithJitterStillRecovers(t *testing.T) {
	// ±20% service jitter: coefficients must survive within 2x.
	spec := synthSpec{
		betaUS: 1.0, etaUS: 3.0,
		tcdelRUS: 25, tcdelWUS: 40,
		readSizes:  []uint32{8, 256},
		writeSizes: []uint32{8, 256},
		n:          12000,
		jitterUS:   10,
		seed:       23,
	}
	tr, _ := buildSynth(spec)
	m, err := Estimate(tr, EstimateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if m.BetaMicros < spec.betaUS/2 || m.BetaMicros > spec.betaUS*2 {
		t.Fatalf("β under jitter = %v, want ~%v", m.BetaMicros, spec.betaUS)
	}
	if m.EtaMicros < spec.etaUS/2 || m.EtaMicros > spec.etaUS*2 {
		t.Fatalf("η under jitter = %v, want ~%v", m.EtaMicros, spec.etaUS)
	}
}

func TestEstimateIdlesDoNotCorruptCoefficients(t *testing.T) {
	// Idles stretch some inter-arrivals by orders of magnitude; the
	// steepness analysis must still lock onto the service-time rise.
	spec := synthSpec{
		betaUS: 0.5, tcdelRUS: 20,
		readSizes: []uint32{8, 128},
		n:         10000,
		idleEvery: 5, // 20% of gaps carry +50ms
		idleUS:    50000,
		seed:      29,
	}
	tr, _ := buildSynth(spec)
	m, err := Estimate(tr, EstimateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.BetaMicros-spec.betaUS) > spec.betaUS*0.5 {
		t.Fatalf("β with idles = %v, want ~%v", m.BetaMicros, spec.betaUS)
	}
}

func TestDecomposeNeverNegative(t *testing.T) {
	spec := synthSpec{
		betaUS: 0.5, tcdelRUS: 20,
		readSizes: []uint32{8, 128},
		n:         3000,
		seed:      31,
	}
	tr, _ := buildSynth(spec)
	m, err := Estimate(tr, EstimateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	idle, async := Decompose(m, tr)
	if len(idle) != tr.Len() || len(async) != tr.Len() {
		t.Fatal("length mismatch")
	}
	for i, d := range idle {
		if d < 0 {
			t.Fatalf("negative idle at %d: %v", i, d)
		}
	}
	if idle[0] != 0 {
		t.Fatal("idle[0] must be zero (no preceding gap)")
	}
	if async[len(async)-1] {
		t.Fatal("terminal instruction cannot be async-flagged")
	}
}

func TestDecomposeIdleBoundedByIntt(t *testing.T) {
	// Property: inferred idle before instruction i never exceeds the
	// inter-arrival that precedes it.
	spec := synthSpec{
		betaUS: 0.7, tcdelRUS: 15,
		readSizes: []uint32{8, 64},
		n:         4000,
		idleEvery: 7,
		idleUS:    9000,
		seed:      37,
	}
	tr, _ := buildSynth(spec)
	m, err := Estimate(tr, EstimateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	idle, _ := Decompose(m, tr)
	for i := 1; i < tr.Len(); i++ {
		intt := tr.Requests[i].Arrival - tr.Requests[i-1].Arrival
		if idle[i] > intt {
			t.Fatalf("idle[%d]=%v exceeds preceding Tintt %v", i, idle[i], intt)
		}
	}
}

func TestModelFlatWriteFallback(t *testing.T) {
	// Uniform-size writes + two-size reads: writes use the flat path,
	// reads the coefficient path, and both yield positive Tslat.
	tr := &trace.Trace{}
	now := time.Duration(0)
	lba := uint64(0)
	for i := 0; i < 6000; i++ {
		var sz uint32
		var op trace.Op
		var slatUS float64
		switch i % 3 {
		case 0:
			op, sz, slatUS = trace.Read, 8, 20+0.5*8
		case 1:
			op, sz, slatUS = trace.Read, 128, 20+0.5*128
		default:
			op, sz, slatUS = trace.Write, 16, 70
		}
		tr.Requests = append(tr.Requests, trace.Request{Arrival: now, LBA: lba, Sectors: sz, Op: op})
		lba += uint64(sz)
		now += time.Duration(slatUS * float64(time.Microsecond))
	}
	m, err := Estimate(tr, EstimateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if m.FlatWriteMicros < 0 {
		t.Fatal("uniform-size writes should use the flat fallback")
	}
	if m.FlatReadMicros >= 0 {
		t.Fatal("two-size reads should use the coefficient path")
	}
	if m.TslatMicros(trace.Write, 16, true) <= 0 {
		t.Fatal("flat write Tslat must be positive")
	}
	if math.Abs(m.TslatMicros(trace.Write, 16, true)-70) > 25 {
		t.Fatalf("flat write Tslat = %v, want ~70", m.TslatMicros(trace.Write, 16, true))
	}
}
