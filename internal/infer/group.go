// Package infer implements TraceTracker's software evaluation model
// (paper Sections III and IV): it classifies the I/O instructions of a
// block trace into groups by sequentiality, operation type and request
// size, examines the steepness of each group's inter-arrival CDF with
// the PDF-outlier method of Algorithm 1, locates representative
// inter-arrival times with PCHIP interpolation, and decomposes the I/O
// subsystem latency into the paper's components:
//
//	Tslat = Tcdel + Tsdev
//	Tsdev = β·rsize (seq read) | η·rsize (seq write) | +Tmovd (random)
//	Tidle(i+1) = max(0, Tintt(i) − Tslat(i))
//
// The entry point is Estimate, which produces a Model; Model.Idles and
// Model.AsyncFlags then drive the hardware emulation in package core.
package infer

import (
	"sort"
	"time"

	"repro/internal/trace"
)

// GroupKey identifies one instruction group of the paper's three-way
// classification: sequentiality × operation × request size.
type GroupKey struct {
	Seq     bool
	Op      trace.Op
	Sectors uint32
}

// Group is the set of inter-arrival samples attributed to one key.
type Group struct {
	Key GroupKey
	// InttMicros holds the inter-arrival times (µs) following each
	// instruction of this group: sample j is Arrival[i+1]-Arrival[i]
	// for the j-th group member at trace index i.
	InttMicros []float64
	// Indices are the trace positions of the group members (the i of
	// each sample), so per-instruction decisions can be mapped back.
	Indices []int
}

// N returns the group's sample count.
func (g *Group) N() int { return len(g.InttMicros) }

// Grouping is the full classification of a trace.
type Grouping struct {
	Groups map[GroupKey]*Group
	// Seq mirrors trace.SeqFlags for the classified trace.
	Seq []bool
}

// Classify groups every instruction of t that has a following
// inter-arrival sample (all but the last request). This is the first
// stage of Fig 4's software simulation.
func Classify(t *trace.Trace) *Grouping {
	g := &Grouping{Groups: make(map[GroupKey]*Group), Seq: t.SeqFlags()}
	reqs := t.Requests
	for i := 0; i+1 < len(reqs); i++ {
		k := GroupKey{Seq: g.Seq[i], Op: reqs[i].Op, Sectors: reqs[i].Sectors}
		grp := g.Groups[k]
		if grp == nil {
			grp = &Group{Key: k}
			g.Groups[k] = grp
		}
		intt := float64(reqs[i+1].Arrival-reqs[i].Arrival) / float64(time.Microsecond)
		grp.InttMicros = append(grp.InttMicros, intt)
		grp.Indices = append(grp.Indices, i)
	}
	return g
}

// Select returns the groups matching seq/op with at least minSamples
// samples, sorted by descending sample count (stable by size then
// sectors so runs are deterministic).
func (g *Grouping) Select(seq bool, op trace.Op, minSamples int) []*Group {
	var out []*Group
	for k, grp := range g.Groups {
		if k.Seq == seq && k.Op == op && grp.N() >= minSamples {
			out = append(out, grp)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].N() != out[j].N() {
			return out[i].N() > out[j].N()
		}
		return out[i].Key.Sectors < out[j].Key.Sectors
	})
	return out
}

// SelectAllRandom returns the random-access groups of either op with at
// least minSamples samples (used for Tmovd estimation).
func (g *Grouping) SelectAllRandom(minSamples int) []*Group {
	var out []*Group
	for k, grp := range g.Groups {
		if !k.Seq && grp.N() >= minSamples {
			out = append(out, grp)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].N() != out[j].N() {
			return out[i].N() > out[j].N()
		}
		if out[i].Key.Sectors != out[j].Key.Sectors {
			return out[i].Key.Sectors < out[j].Key.Sectors
		}
		return out[i].Key.Op < out[j].Key.Op
	})
	return out
}
