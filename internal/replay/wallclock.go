package replay

import (
	"context"
	"time"

	"repro/internal/device"
	"repro/internal/trace"
)

// WallClock replays a trace in real time against a simulated device:
// the paper's sleep()-based emulation loop, provided for completeness
// and for driving real block devices behind a Device adapter. The
// virtual-time Emulate is what the experiments use — Go's garbage
// collector and scheduler jitter wall-clock sleeps at exactly the
// microsecond scale under study (see DESIGN.md), and this
// implementation quantifies that: the returned drift reports how far
// each issue strayed from its intended instant.
type WallClock struct {
	// Resolution is the shortest sleep worth issuing; waits below it
	// spin on the clock instead (default 500µs, the scheduler's
	// practical timer floor).
	Resolution time.Duration
}

// WallClockResult carries the collected trace and the per-request
// issue drift (actual − intended, always >= 0 up to clock skew).
type WallClockResult struct {
	Trace *trace.Trace
	Drift []time.Duration
}

// MaxDrift returns the worst issue drift.
func (r WallClockResult) MaxDrift() time.Duration {
	var m time.Duration
	for _, d := range r.Drift {
		if d > m {
			m = d
		}
	}
	return m
}

// Run replays old with the given per-request idle schedule (nil =
// closed loop), sleeping real time between issues. ctx cancels the
// replay early; the partial result is returned with ctx.Err().
func (wc *WallClock) Run(ctx context.Context, old *trace.Trace, dev device.Device, idle []time.Duration) (WallClockResult, error) {
	res := WallClockResult{Trace: &trace.Trace{
		Name:       old.Name,
		Workload:   old.Workload,
		Set:        old.Set,
		TsdevKnown: true,
	}}
	resolution := wc.Resolution
	if resolution == 0 {
		resolution = 500 * time.Microsecond
	}
	dev.Reset()
	start := time.Now()
	// next is the intended issue instant relative to start.
	var next time.Duration
	for i, r := range old.Requests {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		if idle != nil {
			next += idle[i]
		}
		// Sleep toward the intended instant; spin the tail below the
		// timer resolution.
		for {
			now := time.Since(start)
			remain := next - now
			if remain <= 0 {
				break
			}
			if remain > resolution {
				time.Sleep(remain - resolution)
			}
		}
		actual := time.Since(start)
		res.Drift = append(res.Drift, actual-next)

		req := r
		req.Arrival = actual
		out := dev.Submit(actual, req)
		req.Latency = out.Complete - actual
		res.Trace.Requests = append(res.Trace.Requests, req)
		// Synchronous loop: the next instruction cannot be prepared
		// before this one completes.
		next = out.Complete
	}
	return res, nil
}
