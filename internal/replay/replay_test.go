package replay

import (
	"testing"
	"time"

	"repro/internal/device"
	"repro/internal/trace"
)

// fixedDevice services every request in a constant latency, making the
// replay arithmetic easy to verify exactly.
type fixedDevice struct {
	lat  time.Duration
	busy time.Duration
}

func (d *fixedDevice) Name() string { return "fixed" }
func (d *fixedDevice) Reset()       { d.busy = 0 }
func (d *fixedDevice) Submit(at time.Duration, r trace.Request) device.Result {
	start := at
	if d.busy > start {
		start = d.busy
	}
	done := start + d.lat
	d.busy = done
	return device.Result{Start: start, Complete: done}
}

func appOf(ops ...AppOp) *App { return &App{Name: "test-app", Ops: ops} }

func TestExecuteSyncTiming(t *testing.T) {
	dev := &fixedDevice{lat: 100 * time.Microsecond}
	app := appOf(
		AppOp{LBA: 0, Sectors: 8, Op: trace.Read, Think: 50 * time.Microsecond, Sync: true},
		AppOp{LBA: 8, Sectors: 8, Op: trace.Read, Think: 30 * time.Microsecond, Sync: true},
	)
	res := app.Execute(dev)
	if len(res.Trace.Requests) != 2 {
		t.Fatalf("len = %d", len(res.Trace.Requests))
	}
	// op0 issues at 50us, completes 150us; op1 at 150+30=180us.
	if got := res.Trace.Requests[0].Arrival; got != 50*time.Microsecond {
		t.Fatalf("arrival0 = %v", got)
	}
	if got := res.Trace.Requests[1].Arrival; got != 180*time.Microsecond {
		t.Fatalf("arrival1 = %v", got)
	}
	if res.Trace.Requests[0].Latency != 100*time.Microsecond {
		t.Fatalf("latency0 = %v", res.Trace.Requests[0].Latency)
	}
	if !res.Trace.TsdevKnown {
		t.Fatal("executed trace must be TsdevKnown")
	}
}

func TestExecuteAsyncDoesNotWait(t *testing.T) {
	dev := &fixedDevice{lat: time.Millisecond}
	app := appOf(
		AppOp{LBA: 0, Sectors: 8, Op: trace.Write, Think: 0, Sync: false},
		AppOp{LBA: 8, Sectors: 8, Op: trace.Write, Think: 0, Sync: true},
	)
	res := app.Execute(dev)
	// op1 becomes ready at issue0 + SubmissionGap, not at completion.
	if got := res.Trace.Requests[1].Arrival; got != SubmissionGap {
		t.Fatalf("arrival1 = %v, want %v", got, SubmissionGap)
	}
	if !res.Trace.Requests[0].Async || res.Trace.Requests[1].Async {
		t.Fatal("Async flags wrong")
	}
}

func TestExecuteGroundTruthThink(t *testing.T) {
	dev := &fixedDevice{lat: 10 * time.Microsecond}
	app := appOf(
		AppOp{LBA: 0, Sectors: 8, Think: 5 * time.Millisecond, Sync: true},
		AppOp{LBA: 8, Sectors: 8, Think: 7 * time.Millisecond, Sync: true},
	)
	res := app.Execute(dev)
	if res.TotalThink() != 12*time.Millisecond {
		t.Fatalf("TotalThink = %v", res.TotalThink())
	}
	if len(res.Think) != 2 || res.Think[1] != 7*time.Millisecond {
		t.Fatalf("Think = %v", res.Think)
	}
}

func TestExecuteResetsDevice(t *testing.T) {
	dev := &fixedDevice{lat: time.Microsecond, busy: time.Hour}
	res := appOf(AppOp{LBA: 0, Sectors: 8, Sync: true}).Execute(dev)
	if res.Results[0].Start != 0 {
		t.Fatal("Execute must Reset the device first")
	}
}

func TestEmulateZeroIdleIsClosedLoop(t *testing.T) {
	dev := &fixedDevice{lat: 200 * time.Microsecond}
	old := &trace.Trace{Requests: []trace.Request{
		{Arrival: 0, LBA: 0, Sectors: 8, Op: trace.Read},
		{Arrival: 10 * time.Second, LBA: 8, Sectors: 8, Op: trace.Read},
		{Arrival: 20 * time.Second, LBA: 16, Sectors: 8, Op: trace.Read},
	}}
	got := Emulate(old, dev, nil)
	// Closed loop: arrivals at 0, 200us, 400us — old gaps discarded.
	want := []time.Duration{0, 200 * time.Microsecond, 400 * time.Microsecond}
	for i, w := range want {
		if got.Requests[i].Arrival != w {
			t.Fatalf("arrival[%d] = %v, want %v", i, got.Requests[i].Arrival, w)
		}
	}
}

func TestEmulateInjectsIdle(t *testing.T) {
	dev := &fixedDevice{lat: 100 * time.Microsecond}
	old := &trace.Trace{Requests: []trace.Request{
		{Arrival: 0, LBA: 0, Sectors: 8},
		{Arrival: 1, LBA: 8, Sectors: 8},
	}}
	idle := []time.Duration{10 * time.Microsecond, 40 * time.Microsecond}
	got := Emulate(old, dev, idle)
	if got.Requests[0].Arrival != 10*time.Microsecond {
		t.Fatalf("arrival0 = %v", got.Requests[0].Arrival)
	}
	// complete0 = 10+100 = 110us; arrival1 = 110+40 = 150us.
	if got.Requests[1].Arrival != 150*time.Microsecond {
		t.Fatalf("arrival1 = %v", got.Requests[1].Arrival)
	}
}

func TestEmulatePreservesRequestIdentity(t *testing.T) {
	dev := &fixedDevice{lat: time.Microsecond}
	old := &trace.Trace{Name: "n", Workload: "w", Set: "s", Requests: []trace.Request{
		{Arrival: 5, Device: 3, LBA: 42, Sectors: 16, Op: trace.Write},
	}}
	got := Emulate(old, dev, nil)
	r := got.Requests[0]
	if r.Device != 3 || r.LBA != 42 || r.Sectors != 16 || r.Op != trace.Write {
		t.Fatalf("identity lost: %+v", r)
	}
	if got.Name != "n" || got.Workload != "w" || got.Set != "s" {
		t.Fatal("metadata lost")
	}
}

func TestAccelerateDividesGaps(t *testing.T) {
	old := &trace.Trace{Requests: []trace.Request{
		{Arrival: 0, LBA: 0, Sectors: 8},
		{Arrival: 100 * time.Millisecond, LBA: 8, Sectors: 8},
		{Arrival: 300 * time.Millisecond, LBA: 16, Sectors: 8},
	}}
	got := Accelerate(old, 100)
	if got.Requests[1].Arrival != time.Millisecond {
		t.Fatalf("arrival1 = %v", got.Requests[1].Arrival)
	}
	if got.Requests[2].Arrival != 3*time.Millisecond {
		t.Fatalf("arrival2 = %v", got.Requests[2].Arrival)
	}
	// Original untouched.
	if old.Requests[1].Arrival != 100*time.Millisecond {
		t.Fatal("Accelerate mutated its input")
	}
}

func TestAccelerateDegenerate(t *testing.T) {
	old := &trace.Trace{Requests: []trace.Request{{Arrival: 7, LBA: 0, Sectors: 8}}}
	if got := Accelerate(old, 0); got.Requests[0].Arrival != 7 {
		t.Fatal("factor<=0 should be identity")
	}
	empty := Accelerate(&trace.Trace{}, 100)
	if empty.Len() != 0 {
		t.Fatal("empty trace should stay empty")
	}
}

func TestEmulateAgainstRealDevices(t *testing.T) {
	old := &trace.Trace{Requests: make([]trace.Request, 0, 200)}
	lba := uint64(0)
	for i := 0; i < 200; i++ {
		old.Requests = append(old.Requests, trace.Request{
			Arrival: time.Duration(i) * time.Millisecond,
			LBA:     lba, Sectors: 8, Op: trace.Op(i % 2),
		})
		lba += 8979
	}
	for _, dev := range []device.Device{
		device.NewHDD(device.DefaultHDDConfig()),
		device.NewArray(device.DefaultArrayConfig()),
	} {
		got := Emulate(old, dev, nil)
		if err := got.Validate(); err != nil {
			t.Fatalf("%s: emulated trace invalid: %v", dev.Name(), err)
		}
		if got.Len() != old.Len() {
			t.Fatalf("%s: lost requests", dev.Name())
		}
	}
}
