// Package replay executes I/O against simulated devices in virtual
// time and collects the resulting block traces, playing the role that
// fio + blktrace play in the paper's testbed.
//
// Two execution models are provided:
//
//   - App.Execute: an open application model with per-op think times
//     and sync/async issue modes. This is how ground-truth traces are
//     produced: the application behaviour (user idles, CPU bursts,
//     async bursts) is known by construction, and running the same App
//     against the OLD and NEW devices yields the paper's "OLD trace"
//     and "NEW trace" pair.
//
//   - Emulate: the paper's hardware-emulation loop — visit each old
//     instruction, sleep the inferred idle, issue synchronously to the
//     target device, and collect the new trace underneath the block
//     layer.
//
// All timing is virtual (see package clock's rationale): wall-clock
// replay in Go would be distorted by GC pauses at exactly the
// microsecond scale under study.
package replay

import (
	"time"

	"repro/internal/device"
	"repro/internal/trace"
)

// AppOp is one application-level I/O operation.
type AppOp struct {
	// Device, LBA, Sectors, Op describe the block request to issue.
	Device  uint32
	LBA     uint64
	Sectors uint32
	Op      trace.Op
	// Think is the user idle / CPU burst the application spends
	// before issuing this op, measured from when the op becomes
	// ready (previous completion for sync, previous issue for async).
	Think time.Duration
	// Sync: when true the application waits for this op to complete
	// before preparing the next one; when false the next op only
	// waits for the submission itself (channel occupancy).
	Sync bool
}

// App is an application-level I/O behaviour: the ground truth the
// paper's inference model tries to recover from block-level timing.
type App struct {
	Name string
	Ops  []AppOp
}

// ExecResult is the outcome of running an App against a device.
type ExecResult struct {
	// Trace is the collected block trace: Arrival is the block-layer
	// issue time, Latency the device service time, Async the ground
	// truth issue mode.
	Trace *trace.Trace
	// Results holds the raw device service windows, index-aligned
	// with Trace.Requests.
	Results []device.Result
	// Think holds the injected think time of each op (ground truth
	// Tidle), index-aligned with Trace.Requests.
	Think []time.Duration
}

// SubmissionGap models the host-side cost of putting one request on
// the wire before control returns to the application in async mode:
// the paper's Tcdel for the (i-1)th asynchronous request in Fig 2b.
// It is charged by Execute between an async issue and the next op's
// readiness.
const SubmissionGap = 4 * time.Microsecond

// Execute runs the application against dev starting at virtual time 0
// and collects the block trace. dev is Reset first.
func (a *App) Execute(dev device.Device) ExecResult {
	dev.Reset()
	res := ExecResult{
		Trace: &trace.Trace{Name: a.Name, Workload: a.Name},
	}
	ready := time.Duration(0)
	for _, op := range a.Ops {
		issue := ready + op.Think
		req := trace.Request{
			Arrival: issue,
			Device:  op.Device,
			LBA:     op.LBA,
			Sectors: op.Sectors,
			Op:      op.Op,
			Async:   !op.Sync,
		}
		r := dev.Submit(issue, req)
		// Host-visible response time, issue to completion: this is
		// what event-traced corpora (MSRC/MSPS) record, and it
		// includes any device queue wait behind earlier async issues.
		req.Latency = r.Complete - issue
		res.Trace.Requests = append(res.Trace.Requests, req)
		res.Results = append(res.Results, r)
		res.Think = append(res.Think, op.Think)
		if op.Sync {
			ready = r.Complete
		} else {
			ready = issue + SubmissionGap
		}
	}
	res.Trace.TsdevKnown = true
	return res
}

// TotalThink sums the injected think times — the ground-truth total
// idle period the verification metrics compare against.
func (r ExecResult) TotalThink() time.Duration {
	var sum time.Duration
	for _, t := range r.Think {
		sum += t
	}
	return sum
}

// Emulate is the paper's hardware-emulation loop: for each request of
// old (in order), wait idle[i] after the previous completion, then
// issue synchronously to dev; the collected trace is returned. idle
// may be nil (all zeros — this is the Revision baseline's closed-loop
// replay) or must have len(old.Requests) entries; idle[0] is applied
// before the first request.
//
// The returned trace's Arrival stamps are the new issue times and
// Latency the new device times, exactly what blktrace would capture
// underneath the block layer on the target node.
func Emulate(old *trace.Trace, dev device.Device, idle []time.Duration) *trace.Trace {
	out := &trace.Trace{
		Name:       old.Name,
		Workload:   old.Workload,
		Set:        old.Set,
		TsdevKnown: true,
	}
	out.Requests, _ = EmulateShard(old.Requests, dev, idle)
	return out
}

// EmulateShard runs the emulation loop over one shard of instructions
// in shard-relative time: the first request is placed at idle[0] past
// virtual time zero, and the returned end time is the completion of
// the last request. dev is Reset first, so each shard sees a drained
// device.
//
// Because the loop is synchronous — every submission happens at or
// after the previous completion, by which time all device busy state
// has passed — a drained device's servicing is invariant under time
// translation, and a shard emulated from zero equals the same span of
// the whole-trace emulation shifted by the preceding shard's end time.
// That invariance is what lets the parallel engine reproduce the
// sequential pipeline byte for byte. It does not hold for devices
// with cross-request positional state (see device.ShardSafe).
func EmulateShard(reqs []trace.Request, dev device.Device, idle []time.Duration) ([]trace.Request, time.Duration) {
	var out []trace.Request
	if len(reqs) > 0 {
		out = make([]trace.Request, len(reqs))
	}
	end := EmulateShardInto(out, reqs, dev, idle)
	return out, end
}

// EmulateShardInto is EmulateShard writing into a caller-provided
// destination (len(dst) == len(reqs)), so a parallel engine can place
// shard results straight into the merged output without copying.
func EmulateShardInto(dst, reqs []trace.Request, dev device.Device, idle []time.Duration) time.Duration {
	dev.Reset()
	now := time.Duration(0)
	for i, r := range reqs {
		if idle != nil {
			now += idle[i]
		}
		req := r
		req.Arrival = now
		res := dev.Submit(now, req)
		req.Latency = res.Complete - now
		req.Async = false // sync loop; post-processing restores mode
		dst[i] = req
		now = res.Complete
	}
	return now
}

// Handoff is the carry between consecutive epochs of a pipelined
// emulation over a non-shard-safe device: the device's state snapshot
// at the epoch boundary and the absolute virtual time of the last
// prior completion. Unlike the shard-safe path — which emulates every
// shard from a drained device at time zero and shifts afterwards —
// the pipelined path keeps all epochs on one global timeline, because
// positional device state (the HDD's rotational phase) is a function
// of absolute time.
type Handoff struct {
	// State is the device snapshot at the epoch boundary (a value from
	// device.Stateful.Snapshot on a same-configured device).
	State device.State
	// Now is the completion time of the last instruction before the
	// epoch (zero for the first epoch).
	Now time.Duration
}

// EmulateShardResume runs the emulation loop over one epoch starting
// from handoff h: dev (which must implement device.Stateful) is
// restored to h.State and the loop continues at absolute time h.Now,
// writing the collected trace into dst (len(dst) == len(reqs); in
// place over reqs is allowed). The exit handoff is returned, so
// chaining epochs through their handoffs reproduces one continuous
// EmulateShardInto run over the concatenation exactly — that is the
// identity the pipelined engine relies on, with the serial servicing
// pass (ServiceShard) producing the entry handoffs and workers
// re-running the epochs from them.
func EmulateShardResume(dst, reqs []trace.Request, dev device.Device, idle []time.Duration, h Handoff) Handoff {
	dev.(device.Stateful).Restore(h.State)
	now := h.Now
	for i, r := range reqs {
		if idle != nil {
			now += idle[i]
		}
		req := r
		req.Arrival = now
		res := dev.Submit(now, req)
		req.Latency = res.Complete - now
		req.Async = false // sync loop; post-processing restores mode
		dst[i] = req
		now = res.Complete
	}
	return Handoff{State: dev.(device.Stateful).Snapshot(), Now: now}
}

// ServiceShard is the lightweight serial pass of the pipelined
// emulation: it advances dev through one epoch's servicing — the same
// submissions, at the same absolute times, as EmulateShardResume —
// without collecting the output trace, and reports the epoch's exit
// time plus the post-processing arrival reduction it accumulates
// (shiftDelta): for each async-flagged instruction, the emulated
// latency beyond SubmissionGap, the rule core.PostProcessShard
// applies. Knowing shiftDelta at handoff time is what lets the
// parallel workers post-process and encode their epochs with final
// absolute arrivals. dev's state must already be the epoch's entry
// state (the servicer owns one continuously evolving device); async
// may be nil when the caller skips post-processing.
//
// This loop and EmulateShardResume must stay in lockstep — any
// divergence breaks the engine's byte-identity guarantee, which the
// engine identity tests lock.
func ServiceShard(reqs []trace.Request, dev device.Device, idle []time.Duration, async []bool, start time.Duration) (end time.Duration, shiftDelta time.Duration) {
	now := start
	for i, r := range reqs {
		if idle != nil {
			now += idle[i]
		}
		req := r
		req.Arrival = now
		res := dev.Submit(now, req)
		if async != nil && async[i] {
			if reduction := (res.Complete - now) - SubmissionGap; reduction > 0 {
				shiftDelta += reduction
			}
		}
		now = res.Complete
	}
	return now, shiftDelta
}

// Accelerate reproduces the Acceleration baseline: it divides every
// inter-arrival time of old by factor, preserving order, sizes and
// addresses. No device is involved; this is the purely static
// transformation of [8] (factor 100 in the paper's evaluation).
func Accelerate(old *trace.Trace, factor float64) *trace.Trace {
	out := old.Clone()
	if factor <= 0 || len(out.Requests) == 0 {
		return out
	}
	base := out.Requests[0].Arrival
	now := time.Duration(0)
	prev := base
	for i := range out.Requests {
		gap := out.Requests[i].Arrival - prev
		prev = out.Requests[i].Arrival
		now += time.Duration(float64(gap) / factor)
		out.Requests[i].Arrival = now
		out.Requests[i].Latency = 0 // static method: no new device times
	}
	out.TsdevKnown = false
	return out
}
