package replay

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/device"
	"repro/internal/ftl"
	"repro/internal/hoststack"
	"repro/internal/trace"
)

// handoffReqs synthesizes a request sequence with mixed sequential
// runs, random jumps and both ops, plus idle periods.
func handoffReqs(n int) ([]trace.Request, []time.Duration) {
	rng := rand.New(rand.NewSource(11))
	reqs := make([]trace.Request, n)
	idle := make([]time.Duration, n)
	lba := uint64(4096)
	for i := range reqs {
		if rng.Intn(4) == 0 {
			lba = uint64(rng.Intn(1 << 28))
		}
		op := trace.Read
		if rng.Intn(3) == 0 {
			op = trace.Write
		}
		sectors := uint32(8 << rng.Intn(4))
		reqs[i] = trace.Request{LBA: lba, Sectors: sectors, Op: op}
		lba += uint64(sectors)
		if rng.Intn(5) == 0 {
			idle[i] = time.Duration(rng.Intn(3_000_000)) * time.Nanosecond
		}
	}
	return reqs, idle
}

// TestEmulateShardResumeChains is the handoff identity: splitting an
// emulation into epochs and chaining EmulateShardResume through the
// returned handoffs reproduces one continuous EmulateShardInto run
// exactly, on both HDD cache configurations (write-back caching leaves
// destage debt in the snapshot) and on the trivially-stateful SSD.
func TestEmulateShardResumeChains(t *testing.T) {
	const n = 1200
	reqs, idle := handoffReqs(n)
	wc := device.DefaultHDDConfig()
	wc.WriteCache = true
	devs := map[string]func() device.Device{
		"hdd":            func() device.Device { return device.NewHDD(device.DefaultHDDConfig()) },
		"hdd-writecache": func() device.Device { return device.NewHDD(wc) },
		"ssd":            func() device.Device { return device.NewSSD(device.SSDConfig{}) },
	}
	for name, mk := range devs {
		want := make([]trace.Request, n)
		wantEnd := EmulateShardInto(want, reqs, mk(), idle)

		got := make([]trace.Request, n)
		h := Handoff{State: mk().(device.Stateful).Snapshot()}
		// Uneven epoch cuts, including a one-request epoch.
		cuts := []int{0, 1, 257, 600, 601, 999, n}
		for c := 0; c+1 < len(cuts); c++ {
			lo, hi := cuts[c], cuts[c+1]
			// A fresh device per epoch: restoring the handoff must be
			// all the continuity the epoch needs.
			h = EmulateShardResume(got[lo:hi], reqs[lo:hi], mk(), idle[lo:hi], h)
		}
		if h.Now != wantEnd {
			t.Fatalf("%s: chained end %v, continuous end %v", name, h.Now, wantEnd)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: request %d diverges:\n got %+v\nwant %+v", name, i, got[i], want[i])
			}
		}
	}
}

// TestEmulateShardResumeChainsFTLHost mirrors
// TestEmulateShardResumeChains for the two deep-state targets: the FTL
// (snapshot = mapping table, wear, GC debt) and the host stack over a
// write-caching HDD (snapshot = page-cache contents, dirty/writeback
// debt, plus the inner device's destage debt). Geometries are sized so
// the fixture actually crosses GC and eviction thresholds inside the
// epoch cuts.
func TestEmulateShardResumeChainsFTLHost(t *testing.T) {
	const n = 1200
	reqs, idle := handoffReqs(n)
	ftlCfg := ftl.Config{Blocks: 64, PagesPerBlock: 8, PageKB: 8}
	wc := device.DefaultHDDConfig()
	wc.WriteCache = true
	hostCfg := hoststack.Config{
		CachePages: 128,
		PageKB:     4,
		WriteBack:  true,
		FlushBatch: 8,
		NoBlockLog: true,
	}
	devs := map[string]func() device.Device{
		"ftl": func() device.Device { return device.NewFTLDevice(ftlCfg) },
		"host-hdd-writecache": func() device.Device {
			return hoststack.New(hostCfg, device.NewHDD(wc))
		},
	}
	for name, mk := range devs {
		want := make([]trace.Request, n)
		wantEnd := EmulateShardInto(want, reqs, mk(), idle)

		got := make([]trace.Request, n)
		h := Handoff{State: mk().(device.Stateful).Snapshot()}
		cuts := []int{0, 1, 257, 600, 601, 999, n}
		for c := 0; c+1 < len(cuts); c++ {
			lo, hi := cuts[c], cuts[c+1]
			h = EmulateShardResume(got[lo:hi], reqs[lo:hi], mk(), idle[lo:hi], h)
		}
		if h.Now != wantEnd {
			t.Fatalf("%s: chained end %v, continuous end %v", name, h.Now, wantEnd)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: request %d diverges:\n got %+v\nwant %+v", name, i, got[i], want[i])
			}
		}
	}
}

// TestServiceShardLockstep checks the lightweight serial pass tracks
// EmulateShardResume exactly: same end time, and a shift delta equal
// to what core-style post-processing would accumulate from the
// emulated latencies.
func TestServiceShardLockstep(t *testing.T) {
	const n = 800
	reqs, idle := handoffReqs(n)
	async := make([]bool, n)
	for i := range async {
		async[i] = i%3 == 0
	}
	mk := func() device.Device { return device.NewHDD(device.DefaultHDDConfig()) }

	out := make([]trace.Request, n)
	h := EmulateShardResume(out, reqs, mk(), idle, Handoff{State: mk().(device.Stateful).Snapshot()})

	end, delta := ServiceShard(reqs, mk(), idle, async, 0)
	if end != h.Now {
		t.Fatalf("service end %v, emulate end %v", end, h.Now)
	}
	var want time.Duration
	for i, r := range out {
		if async[i] {
			if red := r.Latency - SubmissionGap; red > 0 {
				want += red
			}
		}
	}
	if delta != want {
		t.Fatalf("shift delta %v, post-processing accumulates %v", delta, want)
	}
	if _, d := ServiceShard(reqs, mk(), idle, nil, 0); d != 0 {
		t.Fatalf("nil async must accumulate no shift, got %v", d)
	}
}
