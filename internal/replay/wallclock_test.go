package replay

import (
	"context"
	"testing"
	"time"

	"repro/internal/trace"
)

func TestWallClockReplaysInRealTime(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time test")
	}
	old := &trace.Trace{Requests: []trace.Request{
		{Arrival: 0, LBA: 0, Sectors: 8},
		{Arrival: 1, LBA: 8, Sectors: 8},
		{Arrival: 2, LBA: 16, Sectors: 8},
	}}
	idle := []time.Duration{0, 20 * time.Millisecond, 20 * time.Millisecond}
	dev := &fixedDevice{lat: time.Millisecond}
	wc := &WallClock{}
	start := time.Now()
	res, err := wc.Run(context.Background(), old, dev, idle)
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	// Intended: ~40ms idle + ~3ms service (fixedDevice is virtual so
	// its latency contributes to the schedule, not to wall time).
	if elapsed < 40*time.Millisecond {
		t.Fatalf("replay finished in %v, idles not honoured", elapsed)
	}
	if res.Trace.Len() != 3 {
		t.Fatalf("len = %d", res.Trace.Len())
	}
	if err := res.Trace.Validate(); err != nil {
		t.Fatal(err)
	}
	// Drift is the point of the exercise: nonzero but bounded on an
	// idle machine; we only assert it is recorded and non-negative.
	if len(res.Drift) != 3 {
		t.Fatalf("drift entries: %d", len(res.Drift))
	}
	for i, d := range res.Drift {
		if d < 0 {
			t.Fatalf("drift[%d] = %v negative", i, d)
		}
	}
	_ = res.MaxDrift()
}

func TestWallClockCancellation(t *testing.T) {
	old := &trace.Trace{}
	for i := 0; i < 1000; i++ {
		old.Requests = append(old.Requests, trace.Request{
			Arrival: time.Duration(i), LBA: uint64(i), Sectors: 8,
		})
	}
	idle := make([]time.Duration, 1000)
	for i := range idle {
		idle[i] = 10 * time.Millisecond
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	wc := &WallClock{}
	res, err := wc.Run(ctx, old, &fixedDevice{lat: time.Microsecond}, idle)
	if err == nil {
		t.Fatal("expected cancellation error")
	}
	if res.Trace.Len() == 0 || res.Trace.Len() >= 1000 {
		t.Fatalf("partial result expected, got %d", res.Trace.Len())
	}
}

func TestWallClockClosedLoopNoIdle(t *testing.T) {
	old := &trace.Trace{Requests: []trace.Request{
		{Arrival: 0, LBA: 0, Sectors: 8},
		{Arrival: 1, LBA: 8, Sectors: 8},
	}}
	wc := &WallClock{Resolution: time.Millisecond}
	res, err := wc.Run(context.Background(), old, &fixedDevice{lat: 100 * time.Microsecond}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace.Len() != 2 {
		t.Fatalf("len = %d", res.Trace.Len())
	}
}
