// Package interp implements the piecewise interpolation schemes Section
// IV of the TraceTracker paper relies on to turn a discrete CDF into a
// differentiable curve: PCHIP (piecewise cubic Hermite interpolating
// polynomial, Fritsch–Carlson monotone variant) and natural cubic
// splines, plus a plain linear interpolant used as an ablation baseline.
//
// The paper observes (Fig 9) that spline interpolation of a step-like
// CDF oscillates and over/undershoots while PCHIP preserves shape; both
// are implemented from scratch here so the comparison can be reproduced
// numerically.
package interp

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Interpolant is a differentiable curve fitted through a set of knots.
type Interpolant interface {
	// At evaluates the curve at x. Outside the knot range the curve is
	// extrapolated with the boundary polynomial piece.
	At(x float64) float64
	// Deriv evaluates the first derivative at x.
	Deriv(x float64) float64
	// Knots returns the x coordinates of the fit points (do not mutate).
	Knots() []float64
}

// ErrTooFewKnots is returned when fewer than two knots are supplied.
var ErrTooFewKnots = errors.New("interp: need at least two knots")

// validate checks the common preconditions: equal lengths, >= 2 points,
// strictly increasing x.
func validate(xs, ys []float64) error {
	if len(xs) != len(ys) {
		return fmt.Errorf("interp: %d xs vs %d ys", len(xs), len(ys))
	}
	if len(xs) < 2 {
		return ErrTooFewKnots
	}
	for i := 1; i < len(xs); i++ {
		if !(xs[i] > xs[i-1]) {
			return fmt.Errorf("interp: knots not strictly increasing at %d (%g after %g)", i, xs[i], xs[i-1])
		}
	}
	return nil
}

// segment locates the polynomial piece index for x: the largest i with
// xs[i] <= x, clamped to [0, len(xs)-2].
func segment(xs []float64, x float64) int {
	i := sort.SearchFloat64s(xs, x) - 1
	if i < 0 {
		return 0
	}
	if i > len(xs)-2 {
		return len(xs) - 2
	}
	return i
}

// hermite holds per-knot values and derivatives for cubic Hermite
// evaluation, shared by PCHIP and the spline (a spline is a Hermite
// curve with C2-chosen derivatives).
type hermite struct {
	xs, ys, ds []float64
}

func (h *hermite) Knots() []float64 { return h.xs }

func (h *hermite) At(x float64) float64 {
	i := segment(h.xs, x)
	hl := h.xs[i+1] - h.xs[i]
	t := (x - h.xs[i]) / hl
	t2, t3 := t*t, t*t*t
	h00 := 2*t3 - 3*t2 + 1
	h10 := t3 - 2*t2 + t
	h01 := -2*t3 + 3*t2
	h11 := t3 - t2
	return h00*h.ys[i] + h10*hl*h.ds[i] + h01*h.ys[i+1] + h11*hl*h.ds[i+1]
}

func (h *hermite) Deriv(x float64) float64 {
	i := segment(h.xs, x)
	hl := h.xs[i+1] - h.xs[i]
	t := (x - h.xs[i]) / hl
	t2 := t * t
	dh00 := 6*t2 - 6*t
	dh10 := 3*t2 - 4*t + 1
	dh01 := -6*t2 + 6*t
	dh11 := 3*t2 - 2*t
	return (dh00*h.ys[i]+dh01*h.ys[i+1])/hl + dh10*h.ds[i] + dh11*h.ds[i+1]
}

// PCHIP fits a monotonicity-preserving piecewise cubic Hermite
// interpolant (Fritsch–Carlson 1980) through (xs, ys). The xs must be
// strictly increasing. When ys is monotone the curve is monotone, which
// is what makes PCHIP the right tool for CDFs: no overshoot above 1 and
// no oscillating derivative between knots.
func PCHIP(xs, ys []float64) (Interpolant, error) {
	if err := validate(xs, ys); err != nil {
		return nil, err
	}
	n := len(xs)
	x := append([]float64(nil), xs...)
	y := append([]float64(nil), ys...)
	// Segment slopes.
	delta := make([]float64, n-1)
	for i := 0; i < n-1; i++ {
		delta[i] = (y[i+1] - y[i]) / (x[i+1] - x[i])
	}
	d := make([]float64, n)
	if n == 2 {
		d[0], d[1] = delta[0], delta[0]
		return &hermite{x, y, d}, nil
	}
	// Interior derivatives: weighted harmonic mean of adjacent slopes
	// when they share a sign, zero otherwise (local extremum).
	for i := 1; i < n-1; i++ {
		if delta[i-1]*delta[i] <= 0 {
			d[i] = 0
			continue
		}
		h0 := x[i] - x[i-1]
		h1 := x[i+1] - x[i]
		w1 := 2*h1 + h0
		w2 := h1 + 2*h0
		d[i] = (w1 + w2) / (w1/delta[i-1] + w2/delta[i])
	}
	d[0] = endpointDeriv(x[1]-x[0], x[2]-x[1], delta[0], delta[1])
	d[n-1] = endpointDeriv(x[n-1]-x[n-2], x[n-2]-x[n-3], delta[n-2], delta[n-3])
	return &hermite{x, y, d}, nil
}

// endpointDeriv is the one-sided three-point estimate used by PCHIP at
// the boundary, clamped per Fritsch–Carlson to keep shape.
func endpointDeriv(h0, h1, d0, d1 float64) float64 {
	d := ((2*h0+h1)*d0 - h0*d1) / (h0 + h1)
	if d*d0 <= 0 {
		return 0
	}
	if d0*d1 <= 0 && math.Abs(d) > 3*math.Abs(d0) {
		return 3 * d0
	}
	return d
}

// NaturalSpline fits a C2 natural cubic spline (second derivative zero
// at both ends) through (xs, ys). Splines trade shape preservation for
// smoothness; on step-like CDFs they oscillate (paper Fig 9).
func NaturalSpline(xs, ys []float64) (Interpolant, error) {
	if err := validate(xs, ys); err != nil {
		return nil, err
	}
	n := len(xs)
	x := append([]float64(nil), xs...)
	y := append([]float64(nil), ys...)
	if n == 2 {
		s := (y[1] - y[0]) / (x[1] - x[0])
		return &hermite{x, y, []float64{s, s}}, nil
	}
	// Solve the tridiagonal system for second derivatives m[i]
	// (natural boundary: m[0] = m[n-1] = 0), then convert to first
	// derivatives at the knots for Hermite evaluation.
	h := make([]float64, n-1)
	for i := range h {
		h[i] = x[i+1] - x[i]
	}
	// Thomas algorithm on the interior unknowns m[1..n-2].
	a := make([]float64, n) // sub-diagonal
	b := make([]float64, n) // diagonal
	c := make([]float64, n) // super-diagonal
	r := make([]float64, n) // rhs
	for i := 1; i < n-1; i++ {
		a[i] = h[i-1]
		b[i] = 2 * (h[i-1] + h[i])
		c[i] = h[i]
		r[i] = 6 * ((y[i+1]-y[i])/h[i] - (y[i]-y[i-1])/h[i-1])
	}
	m := make([]float64, n)
	// Forward sweep.
	for i := 2; i < n-1; i++ {
		w := a[i] / b[i-1]
		b[i] -= w * c[i-1]
		r[i] -= w * r[i-1]
	}
	// Back substitution.
	if n > 2 {
		m[n-2] = r[n-2] / b[n-2]
		for i := n - 3; i >= 1; i-- {
			m[i] = (r[i] - c[i]*m[i+1]) / b[i]
		}
	}
	d := make([]float64, n)
	for i := 0; i < n-1; i++ {
		d[i] = (y[i+1]-y[i])/h[i] - h[i]*(2*m[i]+m[i+1])/6
	}
	// Derivative at the last knot from the last segment.
	i := n - 2
	d[n-1] = (y[i+1]-y[i])/h[i] + h[i]*(2*m[i+1]+m[i])/6
	return &hermite{x, y, d}, nil
}

// Linear fits a piecewise linear interpolant. Its derivative is a step
// function; used only as the ablation baseline for steepest-point
// location.
func Linear(xs, ys []float64) (Interpolant, error) {
	if err := validate(xs, ys); err != nil {
		return nil, err
	}
	x := append([]float64(nil), xs...)
	y := append([]float64(nil), ys...)
	return &linear{x, y}, nil
}

type linear struct{ xs, ys []float64 }

func (l *linear) Knots() []float64 { return l.xs }

func (l *linear) At(x float64) float64 {
	i := segment(l.xs, x)
	t := (x - l.xs[i]) / (l.xs[i+1] - l.xs[i])
	return l.ys[i] + t*(l.ys[i+1]-l.ys[i])
}

func (l *linear) Deriv(x float64) float64 {
	i := segment(l.xs, x)
	return (l.ys[i+1] - l.ys[i]) / (l.xs[i+1] - l.xs[i])
}

// MaxDeriv scans the interpolant's derivative over its knot range with
// samplesPerSegment evaluation points per knot interval (minimum 1) and
// returns the x of the maximum derivative and the derivative value
// there. This is the "global maxima of CDF'(Tintt)" search from
// Section III of the paper.
func MaxDeriv(f Interpolant, samplesPerSegment int) (argmax, max float64) {
	if samplesPerSegment < 1 {
		samplesPerSegment = 1
	}
	knots := f.Knots()
	max = math.Inf(-1)
	for i := 0; i < len(knots)-1; i++ {
		x0, x1 := knots[i], knots[i+1]
		step := (x1 - x0) / float64(samplesPerSegment)
		for s := 0; s <= samplesPerSegment; s++ {
			x := x0 + float64(s)*step
			if d := f.Deriv(x); d > max {
				max, argmax = d, x
			}
		}
	}
	return argmax, max
}

// LocalMaxima returns up to limit local maxima of the derivative,
// sampled like MaxDeriv, sorted by decreasing derivative value. Used to
// classify CDF shapes (paper Fig 5: single global maximum vs multiple
// maxima).
func LocalMaxima(f Interpolant, samplesPerSegment, limit int) (xs, ds []float64) {
	if samplesPerSegment < 1 {
		samplesPerSegment = 1
	}
	knots := f.Knots()
	if len(knots) < 2 {
		return nil, nil
	}
	// Dense sampling of the derivative.
	var sx, sd []float64
	for i := 0; i < len(knots)-1; i++ {
		x0, x1 := knots[i], knots[i+1]
		step := (x1 - x0) / float64(samplesPerSegment)
		for s := 0; s < samplesPerSegment; s++ {
			x := x0 + float64(s)*step
			sx = append(sx, x)
			sd = append(sd, f.Deriv(x))
		}
	}
	sx = append(sx, knots[len(knots)-1])
	sd = append(sd, f.Deriv(knots[len(knots)-1]))
	type peak struct{ x, d float64 }
	var peaks []peak
	for i := 1; i < len(sd)-1; i++ {
		if sd[i] >= sd[i-1] && sd[i] > sd[i+1] {
			peaks = append(peaks, peak{sx[i], sd[i]})
		}
	}
	sort.Slice(peaks, func(i, j int) bool { return peaks[i].d > peaks[j].d })
	if limit > 0 && len(peaks) > limit {
		peaks = peaks[:limit]
	}
	for _, p := range peaks {
		xs = append(xs, p.x)
		ds = append(ds, p.d)
	}
	return xs, ds
}
