package interp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestValidation(t *testing.T) {
	if _, err := PCHIP([]float64{1}, []float64{1}); err != ErrTooFewKnots {
		t.Fatalf("want ErrTooFewKnots, got %v", err)
	}
	if _, err := PCHIP([]float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("want length mismatch error")
	}
	if _, err := NaturalSpline([]float64{1, 1, 2}, []float64{0, 1, 2}); err == nil {
		t.Fatal("want non-increasing knot error")
	}
	if _, err := Linear([]float64{2, 1}, []float64{0, 1}); err == nil {
		t.Fatal("want decreasing knot error")
	}
}

func TestAllInterpolantsPassThroughKnots(t *testing.T) {
	xs := []float64{0, 1, 2.5, 4, 7}
	ys := []float64{0, 0.1, 0.5, 0.9, 1}
	for name, build := range map[string]func([]float64, []float64) (Interpolant, error){
		"pchip":  PCHIP,
		"spline": NaturalSpline,
		"linear": Linear,
	} {
		f, err := build(xs, ys)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for i := range xs {
			if got := f.At(xs[i]); !almostEq(got, ys[i], 1e-9) {
				t.Errorf("%s: At(%v) = %v, want %v", name, xs[i], got, ys[i])
			}
		}
	}
}

func TestPCHIPMonotonePreservation(t *testing.T) {
	// A step-like CDF: a spline overshoots above 1 here, PCHIP must not.
	xs := []float64{0, 1, 2, 2.1, 3, 4}
	ys := []float64{0, 0.01, 0.02, 0.98, 0.99, 1}
	p, err := PCHIP(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	prev := math.Inf(-1)
	for x := 0.0; x <= 4.0; x += 0.001 {
		v := p.At(x)
		if v < prev-1e-12 {
			t.Fatalf("PCHIP not monotone at %v: %v < %v", x, v, prev)
		}
		if v < -1e-9 || v > 1+1e-9 {
			t.Fatalf("PCHIP out of [0,1] at %v: %v", x, v)
		}
		prev = v
	}
}

func TestSplineOvershootsWherePCHIPDoesNot(t *testing.T) {
	// This is the Fig 9 phenomenon: spline oscillation on step data.
	xs := []float64{0, 1, 2, 2.1, 3, 4}
	ys := []float64{0, 0.01, 0.02, 0.98, 0.99, 1}
	s, err := NaturalSpline(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	overshoot := false
	for x := 0.0; x <= 4.0; x += 0.001 {
		if v := s.At(x); v < -1e-9 || v > 1+1e-9 {
			overshoot = true
			break
		}
	}
	if !overshoot {
		t.Fatal("expected natural spline to overshoot on step-like data")
	}
}

func TestPCHIPTwoKnots(t *testing.T) {
	p, err := PCHIP([]float64{0, 2}, []float64{0, 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.At(1); !almostEq(got, 2, 1e-9) {
		t.Fatalf("At(1) = %v, want 2 (linear between two knots)", got)
	}
	if got := p.Deriv(1); !almostEq(got, 2, 1e-9) {
		t.Fatalf("Deriv(1) = %v, want 2", got)
	}
}

func TestSplineReproducesCubic(t *testing.T) {
	// A natural spline exactly reproduces a function that is already a
	// natural cubic; the simplest is a straight line.
	xs := []float64{0, 1, 2, 3, 4, 5}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 2*x + 1
	}
	s, err := NaturalSpline(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	for x := 0.0; x <= 5; x += 0.1 {
		if got := s.At(x); !almostEq(got, 2*x+1, 1e-9) {
			t.Fatalf("spline At(%v) = %v, want %v", x, got, 2*x+1)
		}
		if got := s.Deriv(x); !almostEq(got, 2, 1e-9) {
			t.Fatalf("spline Deriv(%v) = %v, want 2", x, got)
		}
	}
}

func TestDerivMatchesFiniteDifference(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	xs := make([]float64, 12)
	ys := make([]float64, 12)
	for i := range xs {
		xs[i] = float64(i) + rng.Float64()*0.3
		ys[i] = math.Sin(xs[i] / 3)
	}
	for name, build := range map[string]func([]float64, []float64) (Interpolant, error){
		"pchip":  PCHIP,
		"spline": NaturalSpline,
	} {
		f, err := build(xs, ys)
		if err != nil {
			t.Fatal(err)
		}
		const h = 1e-6
		for x := xs[0] + 0.5; x < xs[len(xs)-1]-0.5; x += 0.37 {
			fd := (f.At(x+h) - f.At(x-h)) / (2 * h)
			if got := f.Deriv(x); !almostEq(got, fd, 1e-4) {
				t.Fatalf("%s: Deriv(%v) = %v, finite diff %v", name, x, got, fd)
			}
		}
	}
}

func TestMaxDerivFindsSteepestRegion(t *testing.T) {
	// CDF rising fastest around x=5.
	var xs, ys []float64
	for x := 0.0; x <= 10; x += 0.5 {
		xs = append(xs, x)
		ys = append(ys, 1/(1+math.Exp(-(x-5)*2)))
	}
	p, err := PCHIP(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	argmax, max := MaxDeriv(p, 16)
	if math.Abs(argmax-5) > 0.5 {
		t.Fatalf("argmax = %v, want ~5", argmax)
	}
	if max <= 0 {
		t.Fatalf("max deriv = %v", max)
	}
}

func TestLocalMaximaFindsTwoModes(t *testing.T) {
	// Bimodal CDF: steep at x=2 and x=8.
	sig := func(x, c float64) float64 { return 1 / (1 + math.Exp(-(x-c)*4)) }
	var xs, ys []float64
	for x := 0.0; x <= 10; x += 0.25 {
		xs = append(xs, x)
		ys = append(ys, 0.5*sig(x, 2)+0.5*sig(x, 8))
	}
	p, err := PCHIP(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	mx, _ := LocalMaxima(p, 8, 2)
	if len(mx) != 2 {
		t.Fatalf("found %d maxima, want 2 (%v)", len(mx), mx)
	}
	near := func(x, c float64) bool { return math.Abs(x-c) < 1 }
	if !(near(mx[0], 2) || near(mx[0], 8)) || !(near(mx[1], 2) || near(mx[1], 8)) {
		t.Fatalf("maxima at %v, want near 2 and 8", mx)
	}
}

func TestLocalMaximaDegenerate(t *testing.T) {
	p, _ := PCHIP([]float64{0, 1}, []float64{0, 1})
	xs, ds := LocalMaxima(p, 4, 3)
	// A straight line has a flat derivative: no strict local maxima
	// required, but the call must not panic and lengths must agree.
	if len(xs) != len(ds) {
		t.Fatal("mismatched return lengths")
	}
}

// Property: PCHIP stays within the y-range of its knots for monotone
// data (no overshoot), for random monotone CDFs.
func TestPCHIPNoOvershootProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(20)
		xs := make([]float64, n)
		ys := make([]float64, n)
		x, y := 0.0, 0.0
		for i := 0; i < n; i++ {
			x += 0.01 + rng.Float64()
			y += rng.Float64()
			xs[i], ys[i] = x, y
		}
		// Normalize to a CDF.
		for i := range ys {
			ys[i] /= ys[n-1]
		}
		p, err := PCHIP(xs, ys)
		if err != nil {
			return false
		}
		for t := 0.0; t <= 1.0; t += 0.01 {
			xx := xs[0] + t*(xs[n-1]-xs[0])
			v := p.At(xx)
			if v < ys[0]-1e-9 || v > ys[n-1]+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestExtrapolationUsesBoundaryPiece(t *testing.T) {
	p, _ := Linear([]float64{0, 1, 2}, []float64{0, 1, 4})
	if got := p.At(3); !almostEq(got, 7, 1e-9) {
		t.Fatalf("extrapolate At(3) = %v, want 7", got)
	}
	if got := p.At(-1); !almostEq(got, -1, 1e-9) {
		t.Fatalf("extrapolate At(-1) = %v, want -1", got)
	}
}
