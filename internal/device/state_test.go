package device

import (
	"testing"
	"time"

	"repro/internal/trace"
)

// TestStatefulCapabilities pins which devices offer which engine
// capability: the flash simulators are shard-safe (and trivially
// stateful), the HDD is stateful only — the combination that routes it
// onto the epoch-pipelined path.
func TestStatefulCapabilities(t *testing.T) {
	cases := []struct {
		dev                 Device
		shardSafe, stateful bool
	}{
		{NewHDD(DefaultHDDConfig()), false, true},
		{NewSSD(DefaultSSDConfig()), true, true},
		{NewArray(DefaultArrayConfig()), true, true},
		{&Null{}, false, false},
		{NewInstrumented(NewHDD(DefaultHDDConfig())), false, false},
	}
	for _, tc := range cases {
		if got := IsShardSafe(tc.dev); got != tc.shardSafe {
			t.Errorf("%s: IsShardSafe = %v, want %v", tc.dev.Name(), got, tc.shardSafe)
		}
		if got := IsStateful(tc.dev); got != tc.stateful {
			t.Errorf("%s: IsStateful = %v, want %v", tc.dev.Name(), got, tc.stateful)
		}
	}
}

// TestHDDSnapshotRestore checks the HDD handoff contract: a snapshot
// taken at a quiescent point, restored into a fresh same-configured
// device, reproduces the original device's future servicing exactly —
// positional state and, with write-back caching, the pending destage
// debt included.
func TestHDDSnapshotRestore(t *testing.T) {
	for name, cfg := range map[string]HDDConfig{
		"default":    DefaultHDDConfig(),
		"writecache": func() HDDConfig { c := DefaultHDDConfig(); c.WriteCache = true; return c }(),
	} {
		prefix := []trace.Request{
			{LBA: 1 << 20, Sectors: 64, Op: trace.Write},
			{LBA: 1<<20 + 64, Sectors: 64, Op: trace.Write},
			{LBA: 9 << 24, Sectors: 8, Op: trace.Read},
		}
		// The suffix starts sequential to the prefix's last access — the
		// positional state a Reset would lose.
		suffix := []trace.Request{
			{LBA: 9<<24 + 8, Sectors: 8, Op: trace.Read},
			{LBA: 3 << 22, Sectors: 16, Op: trace.Write},
			{LBA: 3<<22 + 16, Sectors: 16, Op: trace.Read},
		}

		orig := NewHDD(cfg)
		now := time.Duration(0)
		for _, r := range prefix {
			now = orig.Submit(now, r).Complete
		}
		snap := orig.Snapshot()

		replayFrom := func(h *HDD) []Result {
			t := now
			var out []Result
			for _, r := range suffix {
				res := h.Submit(t, r)
				out = append(out, res)
				t = res.Complete
			}
			return out
		}
		want := replayFrom(orig)

		restored := NewHDD(cfg)
		restored.Restore(snap)
		got := replayFrom(restored)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: suffix result %d diverges after restore: got %+v want %+v", name, i, got[i], want[i])
			}
		}

		// A fresh device without the restore must NOT reproduce the
		// original (otherwise the snapshot carries nothing and the test
		// proves nothing).
		fresh := NewHDD(cfg)
		diverged := false
		for i, res := range replayFrom(fresh) {
			if res != want[i] {
				diverged = true
				break
			}
		}
		if !diverged {
			t.Fatalf("%s: fresh device reproduced the stateful suffix; fixture does not exercise positional state", name)
		}
	}
}
