package device

import (
	"testing"
	"time"

	"repro/internal/trace"
)

// TestStatefulCapabilities pins which devices offer which engine
// capability: the flash simulators are shard-safe (and trivially
// stateful), the HDD is stateful only — the combination that routes it
// onto the epoch-pipelined path.
func TestStatefulCapabilities(t *testing.T) {
	cases := []struct {
		dev                 Device
		shardSafe, stateful bool
	}{
		{NewHDD(DefaultHDDConfig()), false, true},
		{NewSSD(DefaultSSDConfig()), true, true},
		{NewArray(DefaultArrayConfig()), true, true},
		{NewFTLDevice(DefaultFTLDeviceConfig()), false, true},
		{&Null{}, false, false},
		{NewInstrumented(NewHDD(DefaultHDDConfig())), false, false},
	}
	for _, tc := range cases {
		if got := IsShardSafe(tc.dev); got != tc.shardSafe {
			t.Errorf("%s: IsShardSafe = %v, want %v", tc.dev.Name(), got, tc.shardSafe)
		}
		if got := IsStateful(tc.dev); got != tc.stateful {
			t.Errorf("%s: IsStateful = %v, want %v", tc.dev.Name(), got, tc.stateful)
		}
	}
}

// TestFTLDeviceSnapshotRestore checks the FTL handoff contract: a
// snapshot taken at a quiescent point carries the complete translation
// state — mapping table, per-block wear and occupancy, GC debt, and
// the completion clock idle budgets are measured from — so a restored
// fresh device reproduces the original's future servicing and
// statistics exactly.
func TestFTLDeviceSnapshotRestore(t *testing.T) {
	// A tiny geometry so the prefix laps the device and leaves real GC
	// pressure behind.
	cfg := DefaultFTLDeviceConfig()
	cfg.Blocks = 64
	cfg.PagesPerBlock = 8

	var prefix, suffix []trace.Request
	pageSectors := uint64(cfg.PageKB) * 1024 / trace.SectorSize
	for i := 0; i < 600; i++ {
		prefix = append(prefix, trace.Request{
			LBA: uint64(i*7%400) * pageSectors, Sectors: uint32(pageSectors), Op: trace.Write})
	}
	for i := 0; i < 120; i++ {
		op := trace.Write
		if i%3 == 0 {
			op = trace.Read
		}
		suffix = append(suffix, trace.Request{
			LBA: uint64(i*13%400) * pageSectors, Sectors: uint32(pageSectors), Op: op})
	}

	orig := NewFTLDevice(cfg)
	now := time.Duration(0)
	for _, r := range prefix {
		now = orig.Submit(now, r).Complete
	}
	snap := orig.Snapshot()

	replayFrom := func(d *FTLDevice) []Result {
		at := now
		var out []Result
		for _, r := range suffix {
			res := d.Submit(at, r)
			out = append(out, res)
			at = res.Complete
		}
		return out
	}
	want := replayFrom(orig)

	restored := NewFTLDevice(cfg)
	restored.Restore(snap)
	got := replayFrom(restored)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("suffix result %d diverges after restore: got %+v want %+v", i, got[i], want[i])
		}
	}
	ws, rs := orig.DeviceStats(), restored.DeviceStats()
	for i := range ws {
		if ws[i] != rs[i] {
			t.Fatalf("device stat %q diverges after restore: got %v want %v", ws[i].Name, rs[i].Value, ws[i].Value)
		}
	}

	fresh := NewFTLDevice(cfg)
	diverged := false
	for i, res := range replayFrom(fresh) {
		if res != want[i] {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Fatalf("fresh device reproduced the stateful suffix; fixture does not exercise GC/mapping state")
	}
}

// TestHDDSnapshotRestore checks the HDD handoff contract: a snapshot
// taken at a quiescent point, restored into a fresh same-configured
// device, reproduces the original device's future servicing exactly —
// positional state and, with write-back caching, the pending destage
// debt included.
func TestHDDSnapshotRestore(t *testing.T) {
	for name, cfg := range map[string]HDDConfig{
		"default":    DefaultHDDConfig(),
		"writecache": func() HDDConfig { c := DefaultHDDConfig(); c.WriteCache = true; return c }(),
	} {
		prefix := []trace.Request{
			{LBA: 1 << 20, Sectors: 64, Op: trace.Write},
			{LBA: 1<<20 + 64, Sectors: 64, Op: trace.Write},
			{LBA: 9 << 24, Sectors: 8, Op: trace.Read},
		}
		// The suffix starts sequential to the prefix's last access — the
		// positional state a Reset would lose.
		suffix := []trace.Request{
			{LBA: 9<<24 + 8, Sectors: 8, Op: trace.Read},
			{LBA: 3 << 22, Sectors: 16, Op: trace.Write},
			{LBA: 3<<22 + 16, Sectors: 16, Op: trace.Read},
		}

		orig := NewHDD(cfg)
		now := time.Duration(0)
		for _, r := range prefix {
			now = orig.Submit(now, r).Complete
		}
		snap := orig.Snapshot()

		replayFrom := func(h *HDD) []Result {
			t := now
			var out []Result
			for _, r := range suffix {
				res := h.Submit(t, r)
				out = append(out, res)
				t = res.Complete
			}
			return out
		}
		want := replayFrom(orig)

		restored := NewHDD(cfg)
		restored.Restore(snap)
		got := replayFrom(restored)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: suffix result %d diverges after restore: got %+v want %+v", name, i, got[i], want[i])
			}
		}

		// A fresh device without the restore must NOT reproduce the
		// original (otherwise the snapshot carries nothing and the test
		// proves nothing).
		fresh := NewHDD(cfg)
		diverged := false
		for i, res := range replayFrom(fresh) {
			if res != want[i] {
				diverged = true
				break
			}
		}
		if !diverged {
			t.Fatalf("%s: fresh device reproduced the stateful suffix; fixture does not exercise positional state", name)
		}
	}
}
