package device

import (
	"testing"
	"time"

	"repro/internal/trace"
)

func TestInstrumentedCounts(t *testing.T) {
	d := NewInstrumented(&Null{Fixed: 100 * time.Microsecond})
	d.Submit(0, req(0, 8, trace.Read))
	d.Submit(time.Millisecond, req(8, 16, trace.Write))
	d.Submit(2*time.Millisecond, req(24, 8, trace.Read))
	s := d.Snapshot()
	if s.Reads != 2 || s.Writes != 1 {
		t.Fatalf("counts: %+v", s)
	}
	if s.ReadBytes != 16*512 || s.WriteBytes != 16*512 {
		t.Fatalf("bytes: %+v", s)
	}
	if s.MeanLatency != 100*time.Microsecond || s.MaxLatency != 100*time.Microsecond {
		t.Fatalf("latency: %+v", s)
	}
	if s.MeanQueueWait != 0 {
		t.Fatalf("queue wait: %+v", s)
	}
}

func TestInstrumentedReset(t *testing.T) {
	d := NewInstrumented(&Null{})
	d.Submit(0, req(0, 8, trace.Read))
	d.Reset()
	s := d.Snapshot()
	if s.Reads != 0 || s.MeanLatency != 0 {
		t.Fatalf("reset did not clear: %+v", s)
	}
	if d.Name() != "null+stats" {
		t.Fatalf("name: %q", d.Name())
	}
}

func TestInstrumentedUtilization(t *testing.T) {
	// HDD serving back-to-back requests is ~100% utilized.
	d := NewInstrumented(NewHDD(DefaultHDDConfig()))
	at := time.Duration(0)
	for i := 0; i < 50; i++ {
		res := d.Submit(at, req(uint64(i)*1000000, 8, trace.Read))
		at = res.Complete
	}
	s := d.Snapshot()
	if s.Utilization < 0.9 || s.Utilization > 1.1 {
		t.Fatalf("utilization = %v, want ~1", s.Utilization)
	}
}

func TestNullDevice(t *testing.T) {
	n := &Null{}
	r := n.Submit(5*time.Second, req(0, 8, trace.Read))
	if r.Start != 5*time.Second || r.Complete != 5*time.Second {
		t.Fatalf("null result: %+v", r)
	}
	n2 := &Null{Fixed: time.Millisecond}
	if got := n2.Submit(0, req(0, 8, trace.Read)); got.Complete != time.Millisecond {
		t.Fatalf("fixed null: %+v", got)
	}
	n.Reset() // must not panic
	if n.Name() != "null" {
		t.Fatal("name")
	}
}

func TestRecordedReplaysLatencies(t *testing.T) {
	tr := &trace.Trace{Requests: []trace.Request{
		{Arrival: 0, LBA: 0, Sectors: 8, Latency: 100 * time.Microsecond},
		{Arrival: 1, LBA: 8, Sectors: 8, Latency: 300 * time.Microsecond},
		{Arrival: 2, LBA: 16, Sectors: 8}, // zero: fallback
	}}
	d := NewRecorded(tr, 50*time.Microsecond)
	r0 := d.Submit(0, req(0, 8, trace.Read))
	if r0.Complete-r0.Start != 100*time.Microsecond {
		t.Fatalf("r0: %+v", r0)
	}
	r1 := d.Submit(r0.Complete, req(8, 8, trace.Read))
	if r1.Complete-r1.Start != 300*time.Microsecond {
		t.Fatalf("r1: %+v", r1)
	}
	r2 := d.Submit(r1.Complete, req(16, 8, trace.Read))
	if r2.Complete-r2.Start != 50*time.Microsecond {
		t.Fatalf("r2 fallback: %+v", r2)
	}
	// Past the recorded range: fallback again.
	r3 := d.Submit(r2.Complete, req(24, 8, trace.Read))
	if r3.Complete-r3.Start != 50*time.Microsecond {
		t.Fatalf("r3: %+v", r3)
	}
	// Busy serialization.
	d.Reset()
	a := d.Submit(0, req(0, 8, trace.Read))
	b := d.Submit(0, req(8, 8, trace.Read))
	if b.Start < a.Complete {
		t.Fatal("recorded device must serialize")
	}
}

func TestRecordedResetRestartsSequence(t *testing.T) {
	tr := &trace.Trace{Requests: []trace.Request{
		{Latency: time.Millisecond, Sectors: 8},
	}}
	d := NewRecorded(tr, time.Microsecond)
	d.Submit(0, req(0, 8, trace.Read))
	d.Reset()
	r := d.Submit(0, req(0, 8, trace.Read))
	if r.Complete-r.Start != time.Millisecond {
		t.Fatal("Reset should restart the latency sequence")
	}
}
