package device

import (
	"fmt"
	"time"

	"repro/internal/trace"
)

// ArrayConfig parameterizes a striped all-flash array: N member SSDs
// behind an array controller, chunk-striped like RAID-0. The paper's
// evaluation node groups four NVMe 750-class SSDs over four PCIe 3.0
// x4 slots, reaching ~9 GB/s reads and ~4 GB/s writes.
type ArrayConfig struct {
	Members int
	ChunkKB int // stripe unit
	SSD     SSDConfig
	// Controller adds a fixed per-request overhead (host driver +
	// striping computation).
	CtrlOverhead time.Duration
}

// DefaultArrayConfig returns the paper's 4-SSD evaluation node.
func DefaultArrayConfig() ArrayConfig {
	return ArrayConfig{
		Members:      4,
		ChunkKB:      128,
		SSD:          DefaultSSDConfig(),
		CtrlOverhead: 5 * time.Microsecond,
	}
}

// Array is a striped group of SSDs implementing Device.
type Array struct {
	cfg             ArrayConfig
	members         []*SSD
	sectorsPerChunk uint64
}

// NewArray builds an Array from cfg, defaulting zero fields.
func NewArray(cfg ArrayConfig) *Array {
	def := DefaultArrayConfig()
	if cfg.Members == 0 {
		cfg.Members = def.Members
	}
	if cfg.ChunkKB == 0 {
		cfg.ChunkKB = def.ChunkKB
	}
	if cfg.CtrlOverhead == 0 {
		cfg.CtrlOverhead = def.CtrlOverhead
	}
	a := &Array{
		cfg:             cfg,
		sectorsPerChunk: uint64(cfg.ChunkKB) * 1024 / trace.SectorSize,
	}
	for i := 0; i < cfg.Members; i++ {
		a.members = append(a.members, NewSSD(cfg.SSD))
	}
	return a
}

// Name implements Device.
func (a *Array) Name() string {
	return fmt.Sprintf("flash-array-%dx%s", a.cfg.Members, a.members[0].Name())
}

// ShardSafe implements ShardSafe: striping is stateless and the
// members are shard-safe SSDs.
func (a *Array) ShardSafe() bool { return true }

// Snapshot implements Stateful trivially, like the member SSDs:
// drained shard-safe state needs no capture.
func (a *Array) Snapshot() State { return nil }

// Restore implements Stateful: see Snapshot.
func (a *Array) Restore(State) { a.Reset() }

// Reset implements Device.
func (a *Array) Reset() {
	for _, m := range a.members {
		m.Reset()
	}
}

// Submit implements Device. The request is split at chunk boundaries;
// each fragment goes to its stripe member with the member-local LBA,
// and the request completes when the slowest fragment does.
func (a *Array) Submit(at time.Duration, r trace.Request) Result {
	start := at
	issue := start + a.cfg.CtrlOverhead
	complete := issue

	lba := r.LBA
	remaining := uint64(r.Sectors)
	for remaining > 0 {
		chunk := lba / a.sectorsPerChunk
		member := int(chunk % uint64(a.cfg.Members))
		offsetInChunk := lba % a.sectorsPerChunk
		n := a.sectorsPerChunk - offsetInChunk
		if n > remaining {
			n = remaining
		}
		// Member-local address: collapse the stripe so member LBAs
		// stay dense (standard RAID-0 addressing).
		localChunk := chunk / uint64(a.cfg.Members)
		localLBA := localChunk*a.sectorsPerChunk + offsetInChunk
		res := a.members[member].Submit(issue, trace.Request{
			Arrival: issue,
			Device:  r.Device,
			LBA:     localLBA,
			Sectors: uint32(n),
			Op:      r.Op,
		})
		if res.Complete > complete {
			complete = res.Complete
		}
		lba += n
		remaining -= n
	}
	return Result{Start: start, Complete: complete}
}
