package device

import (
	"testing"
	"time"

	"repro/internal/trace"
)

func req(lba uint64, sectors uint32, op trace.Op) trace.Request {
	return trace.Request{LBA: lba, Sectors: sectors, Op: op}
}

func TestHDDSequentialFasterThanRandom(t *testing.T) {
	h := NewHDD(DefaultHDDConfig())
	// Prime head position.
	h.Submit(0, req(0, 8, trace.Read))
	seq := h.Submit(time.Second, req(8, 8, trace.Read))
	h.Reset()
	h.Submit(0, req(0, 8, trace.Read))
	rnd := h.Submit(time.Second, req(500_000_000, 8, trace.Read))
	if seq.Latency() >= rnd.Latency() {
		t.Fatalf("sequential (%v) should beat random (%v)", seq.Latency(), rnd.Latency())
	}
	// The gap is the positioning delay; for a 7200rpm disk it must be
	// in the milliseconds.
	if gap := rnd.Latency() - seq.Latency(); gap < time.Millisecond {
		t.Fatalf("positioning gap %v implausibly small", gap)
	}
}

func TestHDDBusySerialization(t *testing.T) {
	h := NewHDD(DefaultHDDConfig())
	r1 := h.Submit(0, req(0, 128, trace.Read))
	// Second request arrives while the first is still being serviced:
	// it must not start before the mechanism frees.
	r2 := h.Submit(1*time.Microsecond, req(999999, 8, trace.Read))
	if r2.Start < r1.Complete {
		t.Fatalf("overlapping service: r2 start %v < r1 complete %v", r2.Start, r1.Complete)
	}
}

func TestHDDIdleDeviceStartsImmediately(t *testing.T) {
	h := NewHDD(DefaultHDDConfig())
	h.Submit(0, req(0, 8, trace.Read))
	r := h.Submit(10*time.Second, req(12345, 8, trace.Read))
	if r.Start != 10*time.Second {
		t.Fatalf("idle device should start at arrival, got %v", r.Start)
	}
}

func TestHDDSeekMonotoneInDistance(t *testing.T) {
	h := NewHDD(DefaultHDDConfig())
	prev := time.Duration(0)
	for _, cyl := range []uint64{1, 10, 100, 1000, 10000, 100000} {
		st := h.seekTime(0, cyl)
		if st < prev {
			t.Fatalf("seek time not monotone at cylinder %d", cyl)
		}
		if st < h.cfg.SeekMin || st > h.cfg.SeekMax {
			t.Fatalf("seek %v outside [min,max]", st)
		}
		prev = st
	}
	if h.seekTime(5, 5) != 0 {
		t.Fatal("same-cylinder seek must be free")
	}
}

func TestHDDRotationalDelayBounded(t *testing.T) {
	h := NewHDD(DefaultHDDConfig())
	for lba := uint64(0); lba < 4096; lba += 37 {
		d := h.rotationalDelay(time.Duration(lba)*time.Microsecond*13, lba)
		if d < 0 || d >= h.rotPeriod {
			t.Fatalf("rotational delay %v outside [0, period)", d)
		}
	}
}

func TestHDDWriteCache(t *testing.T) {
	cfg := DefaultHDDConfig()
	cfg.WriteCache = true
	h := NewHDD(cfg)
	h.Submit(0, req(0, 8, trace.Write))
	w := h.Submit(time.Second, req(900_000_000, 64, trace.Write))
	cfg.WriteCache = false
	h2 := NewHDD(cfg)
	h2.Submit(0, req(0, 8, trace.Write))
	w2 := h2.Submit(time.Second, req(900_000_000, 64, trace.Write))
	if w.Latency() >= w2.Latency() {
		t.Fatalf("cached write (%v) should beat uncached (%v)", w.Latency(), w2.Latency())
	}
}

func TestHDDLargerTransfersTakeLonger(t *testing.T) {
	h := NewHDD(DefaultHDDConfig())
	small := h.Submit(0, req(0, 8, trace.Read))
	h.Reset()
	big := h.Submit(0, req(0, 2048, trace.Read))
	if big.Latency() <= small.Latency() {
		t.Fatalf("2048-sector read (%v) should exceed 8-sector (%v)", big.Latency(), small.Latency())
	}
}

func TestSSDReadFasterThanHDDRandomRead(t *testing.T) {
	s := NewSSD(DefaultSSDConfig())
	h := NewHDD(DefaultHDDConfig())
	h.Submit(0, req(0, 8, trace.Read))
	hr := h.Submit(time.Second, req(700_000_000, 8, trace.Read))
	sr := s.Submit(time.Second, req(700_000_000, 8, trace.Read))
	if sr.Latency() >= hr.Latency() {
		t.Fatalf("SSD read (%v) should beat HDD random read (%v)", sr.Latency(), hr.Latency())
	}
	// SSD 4KB read should land in the tens-of-microseconds regime.
	if sr.Latency() > time.Millisecond {
		t.Fatalf("SSD small read %v implausibly slow", sr.Latency())
	}
}

func TestSSDWriteSlowerThanRead(t *testing.T) {
	s := NewSSD(DefaultSSDConfig())
	r := s.Submit(0, req(0, 8, trace.Read))
	s.Reset()
	w := s.Submit(0, req(0, 8, trace.Write))
	if w.Latency() <= r.Latency() {
		t.Fatalf("program (%v) should exceed read (%v)", w.Latency(), r.Latency())
	}
}

func TestSSDParallelismLargeRequest(t *testing.T) {
	// A 18-page read stripes across all 18 channels: total time should
	// be far less than 18 sequential page reads.
	cfg := DefaultSSDConfig()
	s := NewSSD(cfg)
	pages := cfg.Channels
	sectors := uint32(uint64(pages) * uint64(cfg.PageKB) * 1024 / trace.SectorSize)
	big := s.Submit(0, req(0, sectors, trace.Read))
	serial := time.Duration(pages) * (cfg.ReadLatency + bytesDuration(int64(cfg.PageKB)*1024, cfg.ChannelBps))
	if big.Latency() >= serial {
		t.Fatalf("striped read %v not faster than serial %v", big.Latency(), serial)
	}
}

func TestSSDChannelContention(t *testing.T) {
	cfg := SSDConfig{Channels: 1, DiesPerChan: 1, PlanesPerDie: 1}
	s := NewSSD(cfg)
	r1 := s.Submit(0, req(0, 16, trace.Read))
	r2 := s.Submit(0, req(16, 16, trace.Read))
	if r2.Complete <= r1.Complete {
		t.Fatal("single-channel device must serialize back-to-back reads")
	}
}

func TestSSDGeometryMapping(t *testing.T) {
	cfg := DefaultSSDConfig()
	s := NewSSD(cfg)
	seen := map[int]bool{}
	for p := uint64(0); p < uint64(cfg.Channels); p++ {
		ch, _, _ := s.geometryOf(p)
		if seen[ch] {
			t.Fatalf("channel %d reused within first stripe", ch)
		}
		seen[ch] = true
	}
	// Page Channels lands on channel 0, die 1.
	ch, die, _ := s.geometryOf(uint64(cfg.Channels))
	if ch != 0 || die != 1 {
		t.Fatalf("page %d -> ch %d die %d, want 0,1", cfg.Channels, ch, die)
	}
}

func TestArrayStripesAcrossMembers(t *testing.T) {
	a := NewArray(DefaultArrayConfig())
	// A request spanning all four members must beat 4x a single-chunk
	// request's media time... simpler invariant: it completes, and a
	// same-size request on a 1-member array is slower.
	chunkSectors := uint64(DefaultArrayConfig().ChunkKB) * 1024 / trace.SectorSize
	sectors := uint32(chunkSectors * 4)
	wide := a.Submit(0, req(0, sectors, trace.Read))

	cfg1 := DefaultArrayConfig()
	cfg1.Members = 1
	a1 := NewArray(cfg1)
	narrow := a1.Submit(0, req(0, sectors, trace.Read))
	if wide.Latency() >= narrow.Latency() {
		t.Fatalf("4-way stripe (%v) should beat 1-way (%v)", wide.Latency(), narrow.Latency())
	}
}

func TestArrayReadBandwidthEnvelope(t *testing.T) {
	// Sustained large sequential reads should land in the multi-GB/s
	// regime (paper: ~9 GB/s reads for the 4-SSD node).
	a := NewArray(DefaultArrayConfig())
	const reqKB = 1024
	sectors := uint32(reqKB * 1024 / trace.SectorSize)
	var last time.Duration
	totalBytes := int64(0)
	lba := uint64(0)
	for i := 0; i < 200; i++ {
		r := a.Submit(0, req(lba, sectors, trace.Read))
		if r.Complete > last {
			last = r.Complete
		}
		lba += uint64(sectors)
		totalBytes += int64(reqKB) * 1024
	}
	gbps := float64(totalBytes) / last.Seconds() / 1e9
	if gbps < 3 || gbps > 20 {
		t.Fatalf("array read bandwidth %.1f GB/s outside plausible envelope", gbps)
	}
}

func TestArrayWriteBandwidthBelowRead(t *testing.T) {
	run := func(op trace.Op) float64 {
		a := NewArray(DefaultArrayConfig())
		sectors := uint32(1024 * 1024 / trace.SectorSize)
		var last time.Duration
		lba := uint64(0)
		total := int64(0)
		for i := 0; i < 200; i++ {
			r := a.Submit(0, req(lba, sectors, op))
			if r.Complete > last {
				last = r.Complete
			}
			lba += uint64(sectors)
			total += 1024 * 1024
		}
		return float64(total) / last.Seconds() / 1e9
	}
	read, write := run(trace.Read), run(trace.Write)
	if write >= read {
		t.Fatalf("write bandwidth %.1f GB/s should be below read %.1f GB/s", write, read)
	}
}

func TestResetClearsState(t *testing.T) {
	for _, d := range []Device{NewHDD(DefaultHDDConfig()), NewSSD(DefaultSSDConfig()), NewArray(DefaultArrayConfig())} {
		r1 := d.Submit(0, req(123456, 64, trace.Read))
		d.Reset()
		r2 := d.Submit(0, req(123456, 64, trace.Read))
		if r1.Start != r2.Start || r1.Complete != r2.Complete {
			t.Fatalf("%s: Reset did not restore determinism: %+v vs %+v", d.Name(), r1, r2)
		}
	}
}

func TestNames(t *testing.T) {
	if NewHDD(DefaultHDDConfig()).Name() == "" ||
		NewSSD(DefaultSSDConfig()).Name() == "" ||
		NewArray(DefaultArrayConfig()).Name() == "" {
		t.Fatal("devices must have names")
	}
}

func TestCompletionNeverBeforeStart(t *testing.T) {
	devices := []Device{NewHDD(DefaultHDDConfig()), NewSSD(DefaultSSDConfig()), NewArray(DefaultArrayConfig())}
	for _, d := range devices {
		at := time.Duration(0)
		lba := uint64(0)
		for i := 0; i < 500; i++ {
			op := trace.Read
			if i%3 == 0 {
				op = trace.Write
			}
			r := d.Submit(at, req(lba, uint32(8+(i%64)*8), op))
			if r.Complete < r.Start || r.Start < at {
				t.Fatalf("%s: bad window %+v at %v", d.Name(), r, at)
			}
			at += time.Duration(i%100) * time.Microsecond
			lba = (lba + 977) % 100_000_000
		}
	}
}
