package device

// FTLDevice adapts the page-mapped FTL simulator (internal/ftl) to the
// Device interface, making it a first-class reconstruction target: the
// engine replays a trace against it and the idle gaps the
// reconstruction preserves become the background-GC budget — the
// paper's central claim, measurable per job. The adapter is the
// synchronous-loop equivalent of ftl.Run: the gap since the previous
// completion is offered to background GC, then each page of the
// request is serviced (reads at tR, writes at tPROG plus any
// foreground-GC stall).
//
// The FTL is not shard-safe — the mapping table, wear and GC debt
// persist across idle periods — but it is Stateful: a snapshot at a
// quiescent point (everything the device owes the host is complete,
// and GC runs only inside Submit) is the full translation state, so
// the epoch-pipelined executor applies.

import (
	"time"

	"repro/internal/ftl"
	"repro/internal/trace"
)

// DefaultFTLDeviceConfig is the engine target's FTL geometry: a 1 GiB
// device rather than the experiments' 8 GiB (ftl.DefaultConfig). The
// pipelined executor deep-copies the translation state at every epoch
// boundary, so the engine default keeps snapshots around 2 MB while
// still being small enough for corpus-scale traces to create GC
// pressure.
func DefaultFTLDeviceConfig() ftl.Config {
	cfg := ftl.DefaultConfig()
	cfg.Blocks = 1024
	cfg.PagesPerBlock = 128
	return cfg
}

// FTLDevice is a Device backed by an ftl.FTL.
type FTLDevice struct {
	f *ftl.FTL
	// lastComplete is the completion time of the previous request; the
	// gap to the next submission is the background-GC budget.
	lastComplete time.Duration
}

// NewFTLDevice builds an FTL-backed device (zero cfg fields default as
// in ftl.New).
func NewFTLDevice(cfg ftl.Config) *FTLDevice {
	return &FTLDevice{f: ftl.New(cfg)}
}

// Name implements Device.
func (d *FTLDevice) Name() string { return "ftl-pagemap" }

// Reset implements Device.
func (d *FTLDevice) Reset() {
	d.f.Reset()
	d.lastComplete = 0
}

// FTL returns the underlying simulator (for stats inspection).
func (d *FTLDevice) FTL() *ftl.FTL { return d.f }

// Submit implements Device: offer the idle gap since the previous
// completion to background GC, then service the request page by page.
// The synchronous replay loop guarantees non-decreasing `at` at or
// after the previous completion, so the gap is exactly the idle period
// the reconstruction inferred.
func (d *FTLDevice) Submit(at time.Duration, r trace.Request) Result {
	if at > d.lastComplete {
		d.f.Idle(at - d.lastComplete)
	}
	first, count := d.f.PagesOf(r)
	logical := d.f.LogicalPages()
	var svc time.Duration
	for i := int64(0); i < count; i++ {
		lpn := (first + i) % logical
		if r.Op == trace.Read {
			svc += d.f.Read(lpn)
		} else {
			// ErrFull is unreachable on a sanely overprovisioned
			// geometry (validated at config time); the partial stall is
			// still charged if it ever fires.
			dur, _ := d.f.Write(lpn)
			svc += dur
		}
	}
	complete := at + svc
	d.lastComplete = complete
	return Result{Start: at, Complete: complete}
}

// ftlDeviceState is the adapter's snapshot: the full translation state
// plus the completion clock the idle budget is measured from.
type ftlDeviceState struct {
	f    ftl.State
	last time.Duration
}

// Snapshot implements Stateful.
func (d *FTLDevice) Snapshot() State {
	return ftlDeviceState{f: d.f.Snapshot(), last: d.lastComplete}
}

// Restore implements Stateful. The state is adopted (see ftl.Restore):
// restore a given State at most once.
func (d *FTLDevice) Restore(s State) {
	st := s.(ftlDeviceState)
	d.f.Restore(st.f)
	d.lastComplete = st.last
}

// DeviceStats implements StatsReporter with the lifetime-study numbers
// the FTL accumulates.
func (d *FTLDevice) DeviceStats() []Stat {
	s := d.f.Stats()
	return []Stat{
		{Name: "host_writes", Value: float64(s.HostWrites)},
		{Name: "gc_writes", Value: float64(s.GCWrites)},
		{Name: "erases", Value: float64(s.Erases)},
		{Name: "foreground_gc", Value: float64(s.ForegroundGC)},
		{Name: "background_gc", Value: float64(s.BackgroundGC)},
		{Name: "foreground_stall_us", Value: float64(s.ForegroundStall) / float64(time.Microsecond)},
		{Name: "idle_budget_used_us", Value: float64(s.IdleBudgetUsed) / float64(time.Microsecond)},
		{Name: "waf", Value: s.WAF()},
		{Name: "wear_spread", Value: s.WearSpread()},
	}
}
