// Package device simulates the two storage systems the paper's
// co-evaluation runs against: the decade-old HDD node the public traces
// were collected on (the OLD system) and the modern all-flash array the
// traces are remastered for (the NEW system).
//
// Both simulators are deterministic discrete-time models: Submit maps
// an arrival time and a block request to the time the device starts
// servicing it and the time completion is signalled to the host. The
// decomposition the paper studies falls directly out of the model:
//
//	Tcdel = interface/channel transfer time (host <-> device)
//	Tsdev = device mechanism time (seek+rotation+media for HDD,
//	        flash array scheduling for SSD)
//	Tslat = Tcdel + Tsdev = Complete - Start for a sync request
package device

import (
	"time"

	"repro/internal/trace"
)

// Result describes the simulated servicing of one request.
type Result struct {
	// Start is when the device began servicing the request (>= the
	// submission time; later when the device was busy).
	Start time.Duration
	// Complete is when completion was signalled to the host.
	Complete time.Duration
}

// Latency is the service time the host observes once servicing begins.
func (r Result) Latency() time.Duration { return r.Complete - r.Start }

// Device is a simulated block storage device.
type Device interface {
	// Submit presents a request to the device at virtual time at and
	// returns its servicing window. Implementations maintain internal
	// busy state, so Submit must be called in non-decreasing `at`
	// order (the replay engine guarantees this).
	Submit(at time.Duration, r trace.Request) Result
	// Name identifies the device model for reports.
	Name() string
	// Reset clears all internal busy/positioning state.
	Reset()
}

// ShardSafe is implemented by devices whose servicing depends only on
// busy state that never outlives the last completion: once such a
// device has drained, a later submission is serviced exactly as on a
// freshly Reset device, so a synchronous emulation over it is
// invariant under time translation and may be partitioned into shards
// (see replay.EmulateShard). The flash simulators qualify; the HDD
// does not — its head position and rotational phase persist across
// idle periods.
type ShardSafe interface {
	// ShardSafe reports whether shard-parallel emulation reproduces
	// the sequential emulation exactly.
	ShardSafe() bool
}

// IsShardSafe reports whether d declares shard-safe emulation.
func IsShardSafe(d Device) bool {
	s, ok := d.(ShardSafe)
	return ok && s.ShardSafe()
}

// bytesDuration returns the time to move n bytes at rate bytesPerSec.
func bytesDuration(n int64, bytesPerSec float64) time.Duration {
	if bytesPerSec <= 0 {
		return 0
	}
	return time.Duration(float64(n) / bytesPerSec * float64(time.Second))
}

// nsPerByte returns the nanoseconds-per-byte multiplier for a
// bandwidth, the reciprocal form hot submit paths use so the
// per-request cost is a multiply instead of a divide. The double
// rounding against bytesDuration is far below the nanosecond grid for
// realistic sizes and bandwidths.
func nsPerByte(bytesPerSec float64) float64 {
	if bytesPerSec <= 0 {
		return 0
	}
	return float64(time.Second) / bytesPerSec
}
