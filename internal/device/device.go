// Package device simulates the two storage systems the paper's
// co-evaluation runs against: the decade-old HDD node the public traces
// were collected on (the OLD system) and the modern all-flash array the
// traces are remastered for (the NEW system).
//
// Both simulators are deterministic discrete-time models: Submit maps
// an arrival time and a block request to the time the device starts
// servicing it and the time completion is signalled to the host. The
// decomposition the paper studies falls directly out of the model:
//
//	Tcdel = interface/channel transfer time (host <-> device)
//	Tsdev = device mechanism time (seek+rotation+media for HDD,
//	        flash array scheduling for SSD)
//	Tslat = Tcdel + Tsdev = Complete - Start for a sync request
package device

import (
	"time"

	"repro/internal/trace"
)

// Result describes the simulated servicing of one request.
type Result struct {
	// Start is when the device began servicing the request (>= the
	// submission time; later when the device was busy).
	Start time.Duration
	// Complete is when completion was signalled to the host.
	Complete time.Duration
}

// Latency is the service time the host observes once servicing begins.
func (r Result) Latency() time.Duration { return r.Complete - r.Start }

// Device is a simulated block storage device.
type Device interface {
	// Submit presents a request to the device at virtual time at and
	// returns its servicing window. Implementations maintain internal
	// busy state, so Submit must be called in non-decreasing `at`
	// order (the replay engine guarantees this).
	Submit(at time.Duration, r trace.Request) Result
	// Name identifies the device model for reports.
	Name() string
	// Reset clears all internal busy/positioning state.
	Reset()
}

// ShardSafe is implemented by devices whose servicing depends only on
// busy state that never outlives the last completion: once such a
// device has drained, a later submission is serviced exactly as on a
// freshly Reset device, so a synchronous emulation over it is
// invariant under time translation and may be partitioned into shards
// (see replay.EmulateShard). The flash simulators qualify; the HDD
// does not — its head position and rotational phase persist across
// idle periods.
type ShardSafe interface {
	// ShardSafe reports whether shard-parallel emulation reproduces
	// the sequential emulation exactly.
	ShardSafe() bool
}

// IsShardSafe reports whether d declares shard-safe emulation.
func IsShardSafe(d Device) bool {
	s, ok := d.(ShardSafe)
	return ok && s.ShardSafe()
}

// State is an opaque device-state snapshot. Each Stateful device
// returns its own concrete value type; a State is only meaningful to
// a device built from the same configuration as the one that took it.
type State any

// Stateful is implemented by devices whose complete servicing state at
// a quiescent point — a virtual time at or after the last completion
// signalled to the host — can be captured and re-established. This is
// the handoff contract of the pipelined emulation of non-shard-safe
// devices (replay.EmulateShardResume): a serial pass snapshots the
// state at each epoch boundary, and a worker restoring that snapshot
// into its own device instance reproduces the epoch's servicing
// exactly.
//
// "Quiescent" matters: the synchronous emulation loop never submits
// before the previous completion, but completion is a host-side event
// — a write-back cache may signal it while the mechanism still owes
// destage work, so pending busy state past the completion must be part
// of the snapshot (the HDD's busyUntil). State that cannot outlive the
// last completion (the flash simulators') snapshots trivially.
type Stateful interface {
	// Snapshot captures the device's servicing state as a value
	// independent of the device's future evolution.
	Snapshot() State
	// Restore replaces the device's state with a snapshot taken from a
	// same-configured device.
	Restore(State)
}

// ConditionalStateful is implemented by wrapper devices whose
// snapshot support depends on what they wrap: a host stack over a
// Stateful device snapshots, the same stack over an arbitrary Device
// does not. IsStateful consults it so the engine never routes such a
// wrapper onto the pipelined path it cannot serve.
type ConditionalStateful interface {
	// SnapshotSupported reports whether Snapshot/Restore are usable on
	// this instance.
	SnapshotSupported() bool
}

// IsStateful reports whether d supports snapshot/restore handoff.
func IsStateful(d Device) bool {
	if _, ok := d.(Stateful); !ok {
		return false
	}
	if c, ok := d.(ConditionalStateful); ok {
		return c.SnapshotSupported()
	}
	return true
}

// Stat is one named statistic a device model accumulated during an
// emulation — the numbers the paper's motivating studies report (GC
// counts, write amplification, cache hit rates). Values are float64 so
// one type carries counters, durations and ratios.
type Stat struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// StatsReporter is implemented by devices that accumulate model
// statistics. The engine reads the stats from the device that serviced
// every request in submission order (the serial device or the
// pipelined servicer's device), so reported stats are identical across
// execution strategies — locked by the engine identity tests.
type StatsReporter interface {
	// DeviceStats returns the accumulated statistics in a fixed order.
	DeviceStats() []Stat
}

// bytesDuration returns the time to move n bytes at rate bytesPerSec.
func bytesDuration(n int64, bytesPerSec float64) time.Duration {
	if bytesPerSec <= 0 {
		return 0
	}
	return time.Duration(float64(n) / bytesPerSec * float64(time.Second))
}

// nsPerByte returns the nanoseconds-per-byte multiplier for a
// bandwidth, the reciprocal form hot submit paths use so the
// per-request cost is a multiply instead of a divide. The double
// rounding against bytesDuration is far below the nanosecond grid for
// realistic sizes and bandwidths.
func nsPerByte(bytesPerSec float64) float64 {
	if bytesPerSec <= 0 {
		return 0
	}
	return float64(time.Second) / bytesPerSec
}
