package device

import (
	"math"
	"time"

	"repro/internal/trace"
)

// HDDConfig parameterizes the rotating-disk model. The defaults
// (DefaultHDDConfig) approximate the 7200rpm enterprise SATA disk class
// the paper calibrates Tmovd on (WD Blue-era): the model follows
// Ruemmler & Wilkes, "An Introduction to Disk Drive Modeling" (the
// paper's reference [21]): a square-root-plus-linear seek curve,
// rotational positioning from actual angular position, media transfer
// at the track rate, and an interface (channel) delay.
type HDDConfig struct {
	// Capacity geometry.
	TotalSectors    uint64
	SectorsPerTrack uint64
	TracksPerCyl    uint64 // surfaces (heads)

	// Rotation.
	RPM float64

	// Seek curve: SeekMin for a single-cylinder move, SeekMax for a
	// full-stroke move. Short seeks follow sqrt, long seeks linear,
	// blended per Ruemmler–Wilkes.
	SeekMin time.Duration
	SeekMax time.Duration

	// Interface (channel): fixed per-request command overhead plus
	// payload transfer at InterfaceBps. This is the model's Tcdel.
	CmdOverhead  time.Duration
	InterfaceBps float64

	// WriteCache: when true, writes complete after the channel
	// transfer and a small cache insertion delay; media work still
	// occupies the mechanism (destage), matching write-back caching
	// on the traced systems.
	WriteCache     bool
	CacheInsertion time.Duration
}

// DefaultHDDConfig returns the 7200rpm SATA profile used as the OLD
// system in all experiments.
func DefaultHDDConfig() HDDConfig {
	return HDDConfig{
		TotalSectors:    976773168, // ~500 GB
		SectorsPerTrack: 1024,
		TracksPerCyl:    4,
		RPM:             7200,
		SeekMin:         800 * time.Microsecond,
		SeekMax:         16 * time.Millisecond,
		CmdOverhead:     20 * time.Microsecond,
		InterfaceBps:    300e6, // SATA-II ~300 MB/s
		WriteCache:      false,
		CacheInsertion:  30 * time.Microsecond,
	}
}

// HDD is a deterministic rotating-disk simulator implementing Device.
type HDD struct {
	cfg HDDConfig

	rotPeriod  time.Duration
	sectorTime time.Duration
	cylinders  uint64

	// mechanism state
	busyUntil time.Duration
	headCyl   uint64
	lastEnd   uint64
	hasPos    bool
}

// NewHDD builds an HDD from cfg; zero-valued fields fall back to
// DefaultHDDConfig values so partial configs stay usable.
func NewHDD(cfg HDDConfig) *HDD {
	def := DefaultHDDConfig()
	if cfg.TotalSectors == 0 {
		cfg.TotalSectors = def.TotalSectors
	}
	if cfg.SectorsPerTrack == 0 {
		cfg.SectorsPerTrack = def.SectorsPerTrack
	}
	if cfg.TracksPerCyl == 0 {
		cfg.TracksPerCyl = def.TracksPerCyl
	}
	if cfg.RPM == 0 {
		cfg.RPM = def.RPM
	}
	if cfg.SeekMin == 0 {
		cfg.SeekMin = def.SeekMin
	}
	if cfg.SeekMax == 0 {
		cfg.SeekMax = def.SeekMax
	}
	if cfg.CmdOverhead == 0 {
		cfg.CmdOverhead = def.CmdOverhead
	}
	if cfg.InterfaceBps == 0 {
		cfg.InterfaceBps = def.InterfaceBps
	}
	if cfg.CacheInsertion == 0 {
		cfg.CacheInsertion = def.CacheInsertion
	}
	h := &HDD{cfg: cfg}
	h.rotPeriod = time.Duration(60 / cfg.RPM * float64(time.Second))
	h.sectorTime = h.rotPeriod / time.Duration(cfg.SectorsPerTrack)
	h.cylinders = cfg.TotalSectors / (cfg.SectorsPerTrack * cfg.TracksPerCyl)
	if h.cylinders == 0 {
		h.cylinders = 1
	}
	return h
}

// Name implements Device.
func (h *HDD) Name() string { return "hdd-7200rpm" }

// Reset implements Device.
func (h *HDD) Reset() {
	h.busyUntil = 0
	h.headCyl = 0
	h.lastEnd = 0
	h.hasPos = false
}

// hddState is the HDD's Stateful snapshot: the positional state (head
// cylinder, last access end, whether the head has a position at all)
// and the write-cache destage debt (busyUntil may exceed the last
// host-visible completion when WriteCache is on). Rotational phase
// needs no field — it is a pure function of absolute time, which the
// pipelined emulation preserves by running every epoch on the global
// timeline.
type hddState struct {
	busyUntil time.Duration
	headCyl   uint64
	lastEnd   uint64
	hasPos    bool
}

// Snapshot implements Stateful.
func (h *HDD) Snapshot() State {
	return hddState{busyUntil: h.busyUntil, headCyl: h.headCyl, lastEnd: h.lastEnd, hasPos: h.hasPos}
}

// Restore implements Stateful.
func (h *HDD) Restore(s State) {
	st := s.(hddState)
	h.busyUntil = st.busyUntil
	h.headCyl = st.headCyl
	h.lastEnd = st.lastEnd
	h.hasPos = st.hasPos
}

// cylinderOf maps an LBA to its cylinder.
func (h *HDD) cylinderOf(lba uint64) uint64 {
	c := lba / (h.cfg.SectorsPerTrack * h.cfg.TracksPerCyl)
	if c >= h.cylinders {
		c = h.cylinders - 1
	}
	return c
}

// seekTime follows the Ruemmler–Wilkes blend: the arm accelerates for
// short strokes (sqrt regime) and coasts for long strokes (linear
// regime). A 70/30 sqrt/linear mix stays monotone in distance and is
// bounded by [SeekMin, SeekMax].
func (h *HDD) seekTime(from, to uint64) time.Duration {
	if from == to {
		return 0
	}
	dist := float64(to) - float64(from)
	if dist < 0 {
		dist = -dist
	}
	frac := dist / float64(h.cylinders)
	if frac > 1 {
		frac = 1
	}
	blend := 0.7*math.Sqrt(frac) + 0.3*frac
	t := float64(h.cfg.SeekMin) + (float64(h.cfg.SeekMax)-float64(h.cfg.SeekMin))*blend
	return time.Duration(t)
}

// rotationalDelay computes the wait for the target sector to come under
// the head given the platter's angular position at time t.
func (h *HDD) rotationalDelay(t time.Duration, lba uint64) time.Duration {
	sectorInTrack := lba % h.cfg.SectorsPerTrack
	targetAngle := float64(sectorInTrack) / float64(h.cfg.SectorsPerTrack)
	nowAngle := float64(t%h.rotPeriod) / float64(h.rotPeriod)
	delta := targetAngle - nowAngle
	if delta < 0 {
		delta++
	}
	return time.Duration(delta * float64(h.rotPeriod))
}

// Submit implements Device.
func (h *HDD) Submit(at time.Duration, r trace.Request) Result {
	// Channel: command + payload transfer. For writes the payload
	// crosses the channel before media work; for reads after. Either
	// way it contributes the same Tcdel to the host-visible latency,
	// so the model charges it up front.
	tcdel := h.cfg.CmdOverhead + bytesDuration(r.Bytes(), h.cfg.InterfaceBps)

	start := at
	if h.busyUntil > start {
		start = h.busyUntil
	}
	mediaStart := start + tcdel

	seq := h.hasPos && r.LBA == h.lastEnd
	var positioning time.Duration
	if !seq {
		cyl := h.cylinderOf(r.LBA)
		sk := h.seekTime(h.headCyl, cyl)
		positioning = sk + h.rotationalDelay(mediaStart+sk, r.LBA)
	}
	transfer := time.Duration(r.Sectors) * h.sectorTime

	mediaDone := mediaStart + positioning + transfer
	h.headCyl = h.cylinderOf(r.End())
	h.lastEnd = r.End()
	h.hasPos = true
	h.busyUntil = mediaDone

	complete := mediaDone
	if r.Op == trace.Write && h.cfg.WriteCache {
		complete = start + tcdel + h.cfg.CacheInsertion
		// Mechanism still owes the destage time (busyUntil above).
		if complete > mediaDone {
			complete = mediaDone
		}
	}
	return Result{Start: start, Complete: complete}
}
