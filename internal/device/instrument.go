package device

import (
	"time"

	"repro/internal/trace"
)

// Instrumented wraps a Device and accumulates the utilization and
// latency statistics the experiments report: request/byte counts per
// op, busy time, and a latency accumulator. It implements Device.
type Instrumented struct {
	Inner Device

	reads, writes uint64
	readBytes     int64
	writeBytes    int64
	busy          time.Duration
	lastComplete  time.Duration
	latencySum    time.Duration
	latencyMax    time.Duration
	queuedSum     time.Duration // Start - arrival accumulated
}

// NewInstrumented wraps inner.
func NewInstrumented(inner Device) *Instrumented {
	return &Instrumented{Inner: inner}
}

// Name implements Device.
func (d *Instrumented) Name() string { return d.Inner.Name() + "+stats" }

// Reset implements Device, clearing both the wrapped device and the
// accumulated statistics.
func (d *Instrumented) Reset() {
	d.Inner.Reset()
	*d = Instrumented{Inner: d.Inner}
}

// Submit implements Device.
func (d *Instrumented) Submit(at time.Duration, r trace.Request) Result {
	res := d.Inner.Submit(at, r)
	if r.Op == trace.Read {
		d.reads++
		d.readBytes += r.Bytes()
	} else {
		d.writes++
		d.writeBytes += r.Bytes()
	}
	lat := res.Complete - at
	d.latencySum += lat
	if lat > d.latencyMax {
		d.latencyMax = lat
	}
	d.queuedSum += res.Start - at
	d.busy += res.Complete - res.Start
	if res.Complete > d.lastComplete {
		d.lastComplete = res.Complete
	}
	return res
}

// Stats is the accumulated snapshot.
type Stats struct {
	Reads, Writes         uint64
	ReadBytes, WriteBytes int64
	MeanLatency           time.Duration
	MaxLatency            time.Duration
	MeanQueueWait         time.Duration
	// Utilization is busy time over the span to the last completion;
	// > 1 means internal parallelism served overlapping requests.
	Utilization float64
}

// Snapshot returns the statistics collected since the last Reset.
func (d *Instrumented) Snapshot() Stats {
	n := d.reads + d.writes
	s := Stats{
		Reads: d.reads, Writes: d.writes,
		ReadBytes: d.readBytes, WriteBytes: d.writeBytes,
		MaxLatency: d.latencyMax,
	}
	if n > 0 {
		s.MeanLatency = d.latencySum / time.Duration(n)
		s.MeanQueueWait = d.queuedSum / time.Duration(n)
	}
	if d.lastComplete > 0 {
		s.Utilization = float64(d.busy) / float64(d.lastComplete)
	}
	return s
}

// Null is a zero-latency device: every request completes the moment it
// is submitted (plus an optional fixed latency). It isolates pipeline
// overheads in benchmarks and serves as the "infinitely fast target"
// limit case.
type Null struct {
	// Fixed is added to every completion (zero by default).
	Fixed time.Duration
}

// Name implements Device.
func (n *Null) Name() string { return "null" }

// Reset implements Device.
func (n *Null) Reset() {}

// Submit implements Device.
func (n *Null) Submit(at time.Duration, _ trace.Request) Result {
	return Result{Start: at, Complete: at + n.Fixed}
}

// Recorded replays the service times recorded in a trace: request i
// gets the latency the original capture measured, regardless of its
// content. Feeding a Tsdev-known trace's own latencies back through
// reconstruction isolates the inference stages from the device model
// (the substrate equivalent of replaying on the original hardware).
type Recorded struct {
	// Latencies indexed by submission order.
	Latencies []time.Duration
	// Fallback is used past the end of Latencies or for zero entries.
	Fallback time.Duration

	next int
	busy time.Duration
}

// NewRecorded builds a Recorded device from a captured trace.
func NewRecorded(t *trace.Trace, fallback time.Duration) *Recorded {
	r := &Recorded{Fallback: fallback}
	for _, req := range t.Requests {
		r.Latencies = append(r.Latencies, req.Latency)
	}
	return r
}

// Name implements Device.
func (r *Recorded) Name() string { return "recorded" }

// Reset implements Device.
func (r *Recorded) Reset() { r.next = 0; r.busy = 0 }

// Submit implements Device.
func (r *Recorded) Submit(at time.Duration, _ trace.Request) Result {
	lat := r.Fallback
	if r.next < len(r.Latencies) && r.Latencies[r.next] > 0 {
		lat = r.Latencies[r.next]
	}
	r.next++
	start := at
	if r.busy > start {
		start = r.busy
	}
	done := start + lat
	r.busy = done
	return Result{Start: start, Complete: done}
}
