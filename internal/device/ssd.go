package device

import (
	"time"

	"repro/internal/trace"
)

// SSDConfig parameterizes the NVMe flash simulator. The defaults
// (DefaultSSDConfig) follow the Intel SSD 750-class device the paper's
// evaluation node uses: 400 GB, 18 channels, 36 dies (2 per channel),
// 72 planes (2 per die), attached over PCIe 3.0 x4.
type SSDConfig struct {
	Channels     int
	DiesPerChan  int
	PlanesPerDie int
	PageKB       int // flash page size

	// Flash timing.
	ReadLatency    time.Duration // tR: cell array -> page register
	ProgramLatency time.Duration // tPROG: page register -> cells
	ChannelBps     float64       // per-channel flash bus bandwidth

	// Host interface (NVMe over PCIe): per-command overhead and link
	// bandwidth. This is the model's Tcdel.
	CmdOverhead time.Duration
	LinkBps     float64
}

// DefaultSSDConfig returns the Intel 750-class profile: with four of
// these striped (see Array), aggregate read bandwidth lands near the
// 9 GB/s the paper reports and write bandwidth near 4 GB/s.
func DefaultSSDConfig() SSDConfig {
	return SSDConfig{
		Channels:       18,
		DiesPerChan:    2,
		PlanesPerDie:   2,
		PageKB:         8,
		ReadLatency:    50 * time.Microsecond,
		ProgramLatency: 600 * time.Microsecond,
		ChannelBps:     160e6, // ONFI-class flash bus
		CmdOverhead:    8 * time.Microsecond,
		LinkBps:        3.2e9, // PCIe 3.0 x4 effective
	}
}

// SSD is a deterministic flash-array simulator implementing Device.
// Requests are split into pages; pages stripe round-robin across
// channels, then dies, then planes, so large requests exploit the full
// internal parallelism while small requests see single-die latency —
// the behaviour that separates Tsdev on the NEW system from the OLD.
type SSD struct {
	cfg            SSDConfig
	sectorsPerPage uint64
	// pageXfer is the channel transfer time of one page, and linkNsPerB
	// the host-link nanoseconds per byte — both Submit-loop constants
	// hoisted out of the per-request path.
	pageXfer   time.Duration
	linkNsPerB float64

	// busy-until trackers, indexed [channel] and [channel*dies+die]
	chanBusy []time.Duration
	dieBusy  []time.Duration
	// plane pipelining: a die with multiple planes overlaps array time
	// of consecutive pages mapped to different planes; modeled as an
	// effective service divisor when planes>1 via per-plane busy.
	planeBusy []time.Duration
}

// NewSSD builds an SSD from cfg, defaulting zero fields.
func NewSSD(cfg SSDConfig) *SSD {
	def := DefaultSSDConfig()
	if cfg.Channels == 0 {
		cfg.Channels = def.Channels
	}
	if cfg.DiesPerChan == 0 {
		cfg.DiesPerChan = def.DiesPerChan
	}
	if cfg.PlanesPerDie == 0 {
		cfg.PlanesPerDie = def.PlanesPerDie
	}
	if cfg.PageKB == 0 {
		cfg.PageKB = def.PageKB
	}
	if cfg.ReadLatency == 0 {
		cfg.ReadLatency = def.ReadLatency
	}
	if cfg.ProgramLatency == 0 {
		cfg.ProgramLatency = def.ProgramLatency
	}
	if cfg.ChannelBps == 0 {
		cfg.ChannelBps = def.ChannelBps
	}
	if cfg.CmdOverhead == 0 {
		cfg.CmdOverhead = def.CmdOverhead
	}
	if cfg.LinkBps == 0 {
		cfg.LinkBps = def.LinkBps
	}
	s := &SSD{
		cfg:            cfg,
		sectorsPerPage: uint64(cfg.PageKB) * 1024 / trace.SectorSize,
		pageXfer:       bytesDuration(int64(cfg.PageKB)*1024, cfg.ChannelBps),
		linkNsPerB:     nsPerByte(cfg.LinkBps),
	}
	s.Reset()
	return s
}

// Name implements Device.
func (s *SSD) Name() string { return "nvme-ssd" }

// ShardSafe implements ShardSafe: all SSD state is busy-until
// tracking bounded by the last completion.
func (s *SSD) ShardSafe() bool { return true }

// Snapshot implements Stateful. The SSD is shard-safe — every busy
// tracker is bounded by the last completion, so at a quiescent point
// the state is indistinguishable from a fresh device and the snapshot
// is trivial.
func (s *SSD) Snapshot() State { return nil }

// Restore implements Stateful: see Snapshot.
func (s *SSD) Restore(State) { s.Reset() }

// Reset implements Device. The busy arrays are cleared in place, so a
// per-shard Reset in the parallel engine costs no allocation.
func (s *SSD) Reset() {
	if s.chanBusy == nil {
		s.chanBusy = make([]time.Duration, s.cfg.Channels)
		s.dieBusy = make([]time.Duration, s.cfg.Channels*s.cfg.DiesPerChan)
		s.planeBusy = make([]time.Duration, s.cfg.Channels*s.cfg.DiesPerChan*s.cfg.PlanesPerDie)
		return
	}
	clear(s.chanBusy)
	clear(s.dieBusy)
	clear(s.planeBusy)
}

// geometryOf maps a flash page number to (channel, die, plane) with
// channel-first striping.
func (s *SSD) geometryOf(page uint64) (ch, die, plane int) {
	ch = int(page % uint64(s.cfg.Channels))
	die = int(page / uint64(s.cfg.Channels) % uint64(s.cfg.DiesPerChan))
	plane = int(page / uint64(s.cfg.Channels) / uint64(s.cfg.DiesPerChan) % uint64(s.cfg.PlanesPerDie))
	return ch, die, plane
}

// Submit implements Device.
func (s *SSD) Submit(at time.Duration, r trace.Request) Result {
	start := at
	// Host link: command processing + payload on the PCIe link. NVMe
	// queues are deep; the link itself is the only serialized stage.
	tcdel := s.cfg.CmdOverhead + time.Duration(float64(r.Bytes())*s.linkNsPerB)
	dataAt := start + tcdel

	firstPage := r.LBA / s.sectorsPerPage
	lastPage := (r.End() - 1) / s.sectorsPerPage
	pageXfer := s.pageXfer

	complete := dataAt
	for p := firstPage; p <= lastPage; p++ {
		ch, die, plane := s.geometryOf(p)
		di := ch*s.cfg.DiesPerChan + die
		pi := di*s.cfg.PlanesPerDie + plane
		var done time.Duration
		if r.Op == trace.Read {
			// Array read on the plane, then page out over the channel.
			cellStart := maxDur(dataAt, s.planeBusy[pi])
			cellDone := cellStart + s.cfg.ReadLatency
			xferStart := maxDur(cellDone, s.chanBusy[ch])
			done = xferStart + pageXfer
			s.planeBusy[pi] = cellDone
			s.chanBusy[ch] = done
			s.dieBusy[di] = maxDur(s.dieBusy[di], cellDone)
		} else {
			// Page in over the channel, then program on the plane.
			xferStart := maxDur(dataAt, s.chanBusy[ch])
			xferDone := xferStart + pageXfer
			progStart := maxDur(xferDone, s.planeBusy[pi])
			done = progStart + s.cfg.ProgramLatency
			s.chanBusy[ch] = xferDone
			s.planeBusy[pi] = done
			s.dieBusy[di] = maxDur(s.dieBusy[di], done)
		}
		if done > complete {
			complete = done
		}
	}
	return Result{Start: start, Complete: complete}
}

func maxDur(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}
