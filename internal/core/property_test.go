package core

import (
	"testing"
	"time"

	"repro/internal/device"
	"repro/internal/workload"
)

// TestPipelineInvariantsAcrossCorpus runs the full reconstruction on
// one small trace per workload family and checks the invariants that
// must hold regardless of workload shape.
func TestPipelineInvariantsAcrossCorpus(t *testing.T) {
	for _, p := range workload.Profiles() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			app := workload.Generate(p, workload.GenOptions{Ops: 800, Seed: workload.TraceSeed(p.Name, 0)})
			old := app.Execute(device.NewHDD(device.DefaultHDDConfig())).Trace
			old.Workload = p.Name
			old.Set = p.Set
			old.TsdevKnown = p.TsdevKnown
			if !p.TsdevKnown {
				for i := range old.Requests {
					old.Requests[i].Latency = 0
				}
			}
			got, rep, err := Reconstruct(old, device.NewArray(device.DefaultArrayConfig()), Options{})
			if err != nil {
				t.Fatal(err)
			}
			// 1. Instruction identity: count, order of content fields.
			if got.Len() != old.Len() {
				t.Fatalf("request count %d != %d", got.Len(), old.Len())
			}
			for i := range got.Requests {
				g, o := got.Requests[i], old.Requests[i]
				if g.LBA != o.LBA || g.Sectors != o.Sectors || g.Op != o.Op || g.Device != o.Device {
					t.Fatalf("instruction %d identity lost", i)
				}
			}
			// 2. Monotone arrivals, valid trace.
			if err := got.Validate(); err != nil {
				t.Fatalf("output invalid: %v", err)
			}
			// 3. Idle accounting: report totals match the per-entry data.
			var total time.Duration
			count := 0
			for _, d := range rep.Idle {
				if d > 0 {
					total += d
					count++
				}
			}
			if total != rep.IdleTotal || count != rep.IdleCount {
				t.Fatalf("idle accounting mismatch: %v/%d vs %v/%d",
					total, count, rep.IdleTotal, rep.IdleCount)
			}
			// 4. Output duration includes at least the injected idle.
			if got.Duration() < rep.IdleTotal/2 {
				t.Fatalf("duration %v lost idle mass %v", got.Duration(), rep.IdleTotal)
			}
			// 5. Reconstruction is deterministic.
			got2, _, err := Reconstruct(old, device.NewArray(device.DefaultArrayConfig()), Options{})
			if err != nil {
				t.Fatal(err)
			}
			for i := range got.Requests {
				if got.Requests[i] != got2.Requests[i] {
					t.Fatalf("nondeterministic at %d", i)
				}
			}
		})
	}
}

// TestPostProcessOnlyRemovesTime verifies the pass's contract on a
// spectrum of workloads: arrivals never move later, never reorder.
func TestPostProcessOnlyRemovesTime(t *testing.T) {
	for _, name := range []string{"Exchange", "homes", "prxy"} {
		p, ok := workload.Lookup(name)
		if !ok {
			t.Fatalf("unknown workload %s", name)
		}
		app := workload.Generate(p, workload.GenOptions{Ops: 1500, Seed: 77})
		old := app.Execute(device.NewHDD(device.DefaultHDDConfig())).Trace
		old.TsdevKnown = p.TsdevKnown
		target := device.NewArray(device.DefaultArrayConfig())
		dyn, _, err := Reconstruct(old, target, Options{SkipPostProcess: true})
		if err != nil {
			t.Fatal(err)
		}
		full, _, err := Reconstruct(old, target, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for i := range full.Requests {
			if full.Requests[i].Arrival > dyn.Requests[i].Arrival {
				t.Fatalf("%s: post-processing moved instruction %d later", name, i)
			}
		}
	}
}

// TestReconstructOntoDifferentTargets: a slower target yields a trace
// at least as long as a faster one (service times only grow).
func TestReconstructTargetOrdering(t *testing.T) {
	p, _ := workload.Lookup("CFS")
	app := workload.Generate(p, workload.GenOptions{Ops: 1500, Seed: 5})
	old := app.Execute(device.NewHDD(device.DefaultHDDConfig())).Trace
	old.TsdevKnown = true

	fast, _, err := Reconstruct(old, &device.Null{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	slow, _, err := Reconstruct(old, device.NewHDD(device.DefaultHDDConfig()), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if slow.Duration() <= fast.Duration() {
		t.Fatalf("HDD target (%v) should be slower than null target (%v)",
			slow.Duration(), fast.Duration())
	}
}

// TestReconstructRecordedDevice: replaying onto a Recorded device fed
// with the old trace's own latencies reproduces the old trace's
// service structure — the identity-target sanity check.
func TestReconstructRecordedDeviceIdentity(t *testing.T) {
	p, _ := workload.Lookup("CFS")
	app := workload.Generate(p, workload.GenOptions{Ops: 1200, Seed: 6})
	old := app.Execute(device.NewHDD(device.DefaultHDDConfig())).Trace
	old.TsdevKnown = true

	rec := device.NewRecorded(old, time.Millisecond)
	got, rep, err := Reconstruct(old, rec, Options{SkipPostProcess: true})
	if err != nil {
		t.Fatal(err)
	}
	// Emulated duration ~= Σ latency + Σ idle: within 20% of the old
	// trace's span (async timing differs, everything else matches).
	var latSum time.Duration
	for _, r := range old.Requests {
		latSum += r.Latency
	}
	want := latSum + rep.IdleTotal
	ratio := float64(got.Duration()) / float64(want)
	if ratio < 0.8 || ratio > 1.2 {
		t.Fatalf("identity replay duration %v vs expected %v (ratio %.2f)",
			got.Duration(), want, ratio)
	}
}
