package core

import (
	"testing"
	"time"

	"repro/internal/device"
	"repro/internal/infer"
	"repro/internal/replay"
	"repro/internal/trace"
	"repro/internal/workload"
)

// oldTrace generates an MSNFS-style application, runs it on the HDD
// model, and returns the collected OLD trace plus ground truth.
func oldTrace(t *testing.T, name string, ops int, tsdevKnown bool) (*trace.Trace, replay.ExecResult) {
	t.Helper()
	p, ok := workload.Lookup(name)
	if !ok {
		t.Fatalf("unknown workload %s", name)
	}
	app := workload.Generate(p, workload.GenOptions{Ops: ops, Seed: 1234})
	res := app.Execute(device.NewHDD(device.DefaultHDDConfig()))
	res.Trace.TsdevKnown = tsdevKnown
	res.Trace.Workload = name
	res.Trace.Set = p.Set
	return res.Trace, res
}

func TestReconstructEndToEndTsdevUnknown(t *testing.T) {
	old, truth := oldTrace(t, "MSNFS", 4000, false)
	target := device.NewArray(device.DefaultArrayConfig())
	got, rep, err := Reconstruct(old, target, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != old.Len() {
		t.Fatalf("request count changed: %d vs %d", got.Len(), old.Len())
	}
	if err := got.Validate(); err != nil {
		t.Fatalf("reconstructed trace invalid: %v", err)
	}
	if rep.Model == nil {
		t.Fatal("Tsdev-unknown path must fit a model")
	}
	// The reconstructed trace must preserve a large share of the
	// ground-truth idle: compare total idle to total injected think.
	truthIdle := truth.TotalThink()
	ratio := float64(rep.IdleTotal) / float64(truthIdle)
	if ratio < 0.7 || ratio > 1.3 {
		t.Fatalf("idle preservation ratio %.3f outside [0.7,1.3] (est %v, truth %v)",
			ratio, rep.IdleTotal, truthIdle)
	}
	// The new trace must be much shorter in wall time than the old
	// one minus idles would suggest... at minimum, it must carry the
	// idle periods: duration >= idle total.
	if got.Duration() < rep.IdleTotal {
		t.Fatalf("new trace duration %v below injected idle %v", got.Duration(), rep.IdleTotal)
	}
}

func TestReconstructEndToEndTsdevKnown(t *testing.T) {
	old, truth := oldTrace(t, "CFS", 4000, true)
	target := device.NewArray(device.DefaultArrayConfig())
	got, rep, err := Reconstruct(old, target, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Model != nil {
		t.Fatal("Tsdev-known path must skip model fitting")
	}
	if got.Len() != old.Len() {
		t.Fatal("request count changed")
	}
	truthIdle := truth.TotalThink()
	ratio := float64(rep.IdleTotal) / float64(truthIdle)
	if ratio < 0.85 || ratio > 1.15 {
		t.Fatalf("recorded-latency idle recovery %.3f should be tight (est %v, truth %v)",
			ratio, rep.IdleTotal, truthIdle)
	}
}

func TestReconstructForceInference(t *testing.T) {
	old, _ := oldTrace(t, "CFS", 4000, true)
	target := device.NewArray(device.DefaultArrayConfig())
	_, rep, err := Reconstruct(old, target, Options{ForceInference: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Model == nil {
		t.Fatal("ForceInference must fit a model even on Tsdev-known traces")
	}
}

func TestReconstructSparseError(t *testing.T) {
	old := &trace.Trace{Requests: []trace.Request{
		{Arrival: 0, LBA: 0, Sectors: 8},
	}}
	if _, _, err := Reconstruct(old, device.NewSSD(device.DefaultSSDConfig()), Options{}); err == nil {
		t.Fatal("sparse trace must fail reconstruction")
	}
}

func TestPostProcessShrinksAsyncGaps(t *testing.T) {
	old, _ := oldTrace(t, "Exchange", 4000, true)
	target := device.NewArray(device.DefaultArrayConfig())
	full, repFull, err := Reconstruct(old, target, Options{})
	if err != nil {
		t.Fatal(err)
	}
	dyn, _, err := Reconstruct(old, target, Options{SkipPostProcess: true})
	if err != nil {
		t.Fatal(err)
	}
	if repFull.AsyncCount == 0 {
		t.Fatal("Exchange workload should exhibit async instructions")
	}
	// Post-processing only removes time: the full pipeline's trace is
	// strictly no longer than Dynamic's.
	if full.Duration() >= dyn.Duration() {
		t.Fatalf("post-processed duration %v should be below dynamic %v",
			full.Duration(), dyn.Duration())
	}
	// And async flags must be recorded on the output.
	asyncOut := 0
	for _, r := range full.Requests {
		if r.Async {
			asyncOut++
		}
	}
	if asyncOut != repFull.AsyncCount {
		t.Fatalf("output async flags %d != report %d", asyncOut, repFull.AsyncCount)
	}
}

func TestPostProcessKeepsArrivalsMonotone(t *testing.T) {
	old, _ := oldTrace(t, "Exchange", 3000, true)
	target := device.NewArray(device.DefaultArrayConfig())
	got, _, err := Reconstruct(old, target, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := got.Validate(); err != nil {
		t.Fatalf("post-processed trace invalid: %v", err)
	}
}

func TestInterArrivalGap(t *testing.T) {
	a := &trace.Trace{Requests: []trace.Request{
		{Arrival: 0, LBA: 0, Sectors: 8},
		{Arrival: 100 * time.Microsecond, LBA: 8, Sectors: 8},
		{Arrival: 300 * time.Microsecond, LBA: 16, Sectors: 8},
	}}
	b := &trace.Trace{Requests: []trace.Request{
		{Arrival: 0, LBA: 0, Sectors: 8},
		{Arrival: 150 * time.Microsecond, LBA: 8, Sectors: 8},
		{Arrival: 250 * time.Microsecond, LBA: 16, Sectors: 8},
	}}
	avg, max := InterArrivalGap(a, b)
	// Gaps: |100-150|=50, |200-100|=100 -> avg 75, max 100.
	if avg != 75*time.Microsecond || max != 100*time.Microsecond {
		t.Fatalf("gap = %v/%v", avg, max)
	}
	if a2, m2 := InterArrivalGap(a, &trace.Trace{}); a2 != 0 || m2 != 0 {
		t.Fatal("empty comparison should be zero")
	}
}

func TestReportIdleStats(t *testing.T) {
	r := &Report{
		Idle:  []time.Duration{0, time.Millisecond, 0, 2 * time.Millisecond},
		Async: []bool{false, true, true, false},
	}
	r.idleStats()
	if r.IdleCount != 2 || r.IdleTotal != 3*time.Millisecond || r.AsyncCount != 2 {
		t.Fatalf("stats: %+v", r)
	}
}

func TestDecomposeAgreesWithReport(t *testing.T) {
	old, _ := oldTrace(t, "homes", 3000, false)
	m, err := infer.Estimate(old, infer.EstimateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	idle, async := infer.Decompose(m, old)
	_, rep, err := Reconstruct(old, device.NewArray(device.DefaultArrayConfig()), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range idle {
		if rep.Idle[i] != idle[i] || rep.Async[i] != async[i] {
			t.Fatalf("report diverges from direct decomposition at %d", i)
		}
	}
}
