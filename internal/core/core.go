// Package core assembles the full TraceTracker pipeline of Fig 4:
// software simulation (classification, Algorithm 1 steepness analysis,
// latency decomposition — package infer), hardware emulation on the
// target device (package replay), and the post-processing pass that
// restores asynchronous-mode timing to the emulated trace.
//
// The entry point is Reconstruct. Given an old block trace and a
// target device, it returns the remastered trace whose inter-arrival
// times are aware of the new storage while preserving the old trace's
// user idle periods and system delays.
package core

import (
	"time"

	"repro/internal/device"
	"repro/internal/infer"
	"repro/internal/replay"
	"repro/internal/trace"
)

// Options configures Reconstruct. The zero value is the paper's full
// TraceTracker configuration.
type Options struct {
	// Estimate tunes the inference model fit.
	Estimate infer.EstimateOptions
	// SkipPostProcess disables the asynchronous-mode restoration pass;
	// this is exactly the paper's Dynamic baseline.
	SkipPostProcess bool
	// ForceInference runs the model fit even when the trace records
	// per-request latencies (Tsdev-known corpora). By default recorded
	// latencies are used directly, the paper's "skip the Tsdev
	// inference phase" path.
	ForceInference bool
}

// Report carries the reconstruction diagnostics the experiments print.
type Report struct {
	// Model is the fitted inference model (nil on the Tsdev-known path).
	Model *infer.Model
	// Idle[i] is the inferred idle period preceding instruction i of
	// the old trace (what the emulation injected).
	Idle []time.Duration
	// Async[i] reports instructions identified as asynchronous.
	Async []bool
	// IdleCount is the number of instructions with nonzero idle.
	IdleCount int
	// IdleTotal is the summed inferred idle.
	IdleTotal time.Duration
	// AsyncCount is the number of async-flagged instructions.
	AsyncCount int
	// Shards is the number of epoch shards the reconstruction ran as:
	// 1 for this sequential pipeline, more when the parallel engine
	// produced the report.
	Shards int
	// DeviceStats carries the target device's accumulated model
	// statistics (GC rounds, write amplification, cache hit rates) when
	// the device reports any (device.StatsReporter); nil otherwise. The
	// stats come from the device instance that serviced every request
	// in submission order, so they are identical across execution
	// strategies.
	DeviceStats []device.Stat
}

// idleStats fills the aggregate fields from the per-instruction data.
func (r *Report) idleStats() {
	r.IdleCount, r.AsyncCount = 0, 0
	r.IdleTotal = 0
	for _, d := range r.Idle {
		if d > 0 {
			r.IdleCount++
			r.IdleTotal += d
		}
	}
	for _, a := range r.Async {
		if a {
			r.AsyncCount++
		}
	}
}

// Reconstruct runs the TraceTracker co-evaluation: infer per-request
// idle periods and async flags from the old trace, emulate the
// instructions on the target device with those idles, and post-process
// the emulated trace to restore asynchronous inter-arrival behaviour.
func Reconstruct(old *trace.Trace, target device.Device, opts Options) (*trace.Trace, *Report, error) {
	rep := &Report{Shards: 1}
	m, useRecorded, err := PrepareModel(old, opts)
	if err != nil {
		return nil, nil, err
	}
	rep.Model = m
	// The effective-TsdevKnown flag (not the trace's own) selects
	// recorded latencies, which is how ForceInference hides them from
	// decomposition without copying the trace.
	rep.Idle, rep.Async = infer.DecomposeShard(rep.Model, old.Requests, infer.ShardContext{
		TsdevKnown: useRecorded,
		Seq:        old.SeqFlags(),
	})
	rep.idleStats()

	out := replay.Emulate(old, target, rep.Idle)
	if !opts.SkipPostProcess {
		postProcess(out, rep.Async)
	}
	if sr, ok := target.(device.StatsReporter); ok {
		rep.DeviceStats = sr.DeviceStats()
	}
	return out, rep, nil
}

// PrepareModel makes the pipeline's model decision in one place, for
// the sequential path above and the parallel engine alike: it reports
// whether recorded latencies drive the decomposition (Tsdev-known and
// not ForceInference) and fits the Section III model otherwise. The
// model is nil on the recorded path, mirroring the paper's "skip the
// Tsdev inference phase".
func PrepareModel(old *trace.Trace, opts Options) (m *infer.Model, useRecorded bool, err error) {
	if old.TsdevKnown && !opts.ForceInference {
		return nil, true, nil
	}
	m, err = infer.Estimate(old, opts.Estimate)
	return m, false, err
}

// postProcess restores asynchronous-mode timing (Section IV): the
// emulation issues every instruction synchronously, so an instruction
// the old trace shows as asynchronous (its old inter-arrival was
// shorter than its old device time) has an inflated new inter-arrival.
// For each such instruction the measured new device time is subtracted
// from its inter-arrival and all later arrivals shift earlier, keeping
// only the submission-gap (channel occupancy) component the paper's
// Fig 2b attributes to async issues.
func postProcess(t *trace.Trace, async []bool) {
	PostProcessShard(t.Requests, async, 0)
}

// PostProcessShard applies the asynchronous-mode restoration to one
// shard of an emulated trace, in place. shift is the cumulative
// arrival reduction accumulated by earlier shards (zero for the whole
// trace or the first shard); the updated cumulative shift is returned
// so shard results chain: running PostProcessShard over consecutive
// shards, threading the shift, equals one postProcess pass over the
// concatenation.
func PostProcessShard(reqs []trace.Request, async []bool, shift time.Duration) time.Duration {
	for i := range reqs {
		reqs[i].Arrival -= shift
		if i < len(async) && async[i] {
			reduction := reqs[i].Latency - replay.SubmissionGap
			if reduction > 0 {
				shift += reduction
			}
			reqs[i].Async = true
		}
	}
	return shift
}

// InterArrivalGap summarizes |Tintt(a) − Tintt(b)| between two equal-
// length traces: the average absolute per-instruction inter-arrival
// difference the paper's Figs 13/14 report. The shorter trace bounds
// the comparison.
func InterArrivalGap(a, b *trace.Trace) (avg, max time.Duration) {
	ia, ib := a.InterArrivals(), b.InterArrivals()
	n := len(ia)
	if len(ib) < n {
		n = len(ib)
	}
	if n == 0 {
		return 0, 0
	}
	var sum, mx time.Duration
	for i := 0; i < n; i++ {
		d := ia[i] - ib[i]
		if d < 0 {
			d = -d
		}
		sum += d
		if d > mx {
			mx = d
		}
	}
	return sum / time.Duration(n), mx
}
