// Package ftl implements a page-mapped flash translation layer with
// garbage collection — the class of simulator the paper's motivating
// studies ([8]: lifetime improvement via program/erase scaling, [31],
// [17], [23]) drive with block traces.
//
// Its role in this repository is to demonstrate the paper's central
// system implication: trace-driven conclusions depend on the timing
// context the trace carries. The FTL runs garbage collection in the
// background *during idle gaps* between requests; a trace whose idle
// periods were destroyed by Acceleration or Revision forces GC into
// the foreground, inflating stall counts and write amplification
// attribution, while a TraceTracker-reconstructed trace preserves the
// background budget. The ext-ftl experiment quantifies exactly this.
package ftl

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/trace"
)

// Config sizes the simulated flash. The zero value is unusable; use
// DefaultConfig.
type Config struct {
	// Geometry.
	Blocks        int // physical erase blocks
	PagesPerBlock int
	PageKB        int

	// OverprovisionPct reserves a fraction of blocks the host LBA
	// space cannot address (SSDs ship 7-28%).
	OverprovisionPct float64

	// Timing.
	ReadLatency    time.Duration // page read (tR)
	ProgramLatency time.Duration // page program (tPROG)
	EraseLatency   time.Duration // block erase (tBERS)

	// GCTriggerFreeBlocks starts foreground GC when free blocks fall
	// to this level; BackgroundGCTarget is the free-block level
	// background GC tries to restore during idle periods.
	GCTriggerFreeBlocks int
	BackgroundGCTarget  int
}

// DefaultConfig returns a small-but-realistic 8 GiB device: big
// enough to exercise GC on corpus-scale traces, small enough that a
// few thousand requests create pressure.
func DefaultConfig() Config {
	return Config{
		Blocks:              4096,
		PagesPerBlock:       256,
		PageKB:              8,
		OverprovisionPct:    0.07,
		ReadLatency:         50 * time.Microsecond,
		ProgramLatency:      600 * time.Microsecond,
		EraseLatency:        3 * time.Millisecond,
		GCTriggerFreeBlocks: 8,
		BackgroundGCTarget:  32,
	}
}

// pageState tracks one physical page.
type pageState uint8

const (
	pageFree pageState = iota
	pageValid
	pageInvalid
)

// block is one erase block.
type block struct {
	pages      []pageState
	lpns       []int64 // logical page stored in each physical page
	validCount int
	writePtr   int
	eraseCount uint64
}

// FTL is the page-mapped translation layer.
type FTL struct {
	cfg Config

	blocks   []block
	freeList []int
	active   int     // block currently receiving host writes
	gcActive int     // block receiving GC relocations (-1 = none)
	l2p      []int64 // logical page -> packed (block<<32 | page); -1 unmapped
	logical  int64   // addressable logical pages

	stats Stats
}

// Stats accumulates the numbers lifetime studies report.
type Stats struct {
	HostWrites   uint64 // pages written by the host
	GCWrites     uint64 // pages relocated by GC
	Erases       uint64
	ForegroundGC uint64 // GC rounds that stalled a host request
	BackgroundGC uint64 // GC rounds absorbed by idle time
	// ForegroundStall is the host-visible time spent waiting for
	// foreground GC.
	ForegroundStall time.Duration
	// IdleBudgetUsed is background-GC time drawn from idle gaps.
	IdleBudgetUsed time.Duration
	MaxErase       uint64
	MinErase       uint64
}

// WAF returns the write amplification factor (host+GC)/host.
func (s Stats) WAF() float64 {
	if s.HostWrites == 0 {
		return 1
	}
	return float64(s.HostWrites+s.GCWrites) / float64(s.HostWrites)
}

// WearSpread returns max/min erase counts (1 = perfectly even).
func (s Stats) WearSpread() float64 {
	if s.MinErase == 0 {
		return float64(s.MaxErase)
	}
	return float64(s.MaxErase) / float64(s.MinErase)
}

// ErrFull is returned when GC cannot reclaim space (logical space
// exceeds physical capacity — a configuration bug).
var ErrFull = errors.New("ftl: no reclaimable space")

// New builds an FTL from cfg (zero fields default).
func New(cfg Config) *FTL {
	def := DefaultConfig()
	if cfg.Blocks == 0 {
		cfg.Blocks = def.Blocks
	}
	if cfg.PagesPerBlock == 0 {
		cfg.PagesPerBlock = def.PagesPerBlock
	}
	if cfg.PageKB == 0 {
		cfg.PageKB = def.PageKB
	}
	if cfg.OverprovisionPct == 0 {
		cfg.OverprovisionPct = def.OverprovisionPct
	}
	if cfg.ReadLatency == 0 {
		cfg.ReadLatency = def.ReadLatency
	}
	if cfg.ProgramLatency == 0 {
		cfg.ProgramLatency = def.ProgramLatency
	}
	if cfg.EraseLatency == 0 {
		cfg.EraseLatency = def.EraseLatency
	}
	if cfg.GCTriggerFreeBlocks == 0 {
		cfg.GCTriggerFreeBlocks = def.GCTriggerFreeBlocks
	}
	if cfg.BackgroundGCTarget == 0 {
		cfg.BackgroundGCTarget = def.BackgroundGCTarget
	}
	f := &FTL{cfg: cfg}
	f.Reset()
	return f
}

// Reset returns the FTL to its freshly-built state: empty mapping,
// zero wear, zero statistics.
func (f *FTL) Reset() {
	f.gcActive = -1
	f.blocks = make([]block, f.cfg.Blocks)
	for i := range f.blocks {
		f.blocks[i] = block{
			pages: make([]pageState, f.cfg.PagesPerBlock),
			lpns:  make([]int64, f.cfg.PagesPerBlock),
		}
	}
	totalPages := int64(f.cfg.Blocks) * int64(f.cfg.PagesPerBlock)
	f.logical = int64(float64(totalPages) * (1 - f.cfg.OverprovisionPct))
	f.l2p = make([]int64, f.logical)
	for i := range f.l2p {
		f.l2p[i] = -1
	}
	// Block 0 starts active; the rest are free.
	f.active = 0
	f.freeList = f.freeList[:0]
	for i := 1; i < f.cfg.Blocks; i++ {
		f.freeList = append(f.freeList, i)
	}
	f.stats = Stats{}
}

// Config returns the FTL's configuration with defaults applied.
func (f *FTL) Config() Config { return f.cfg }

// LogicalPages returns the addressable logical page count.
func (f *FTL) LogicalPages() int64 { return f.logical }

// Stats returns the accumulated statistics with wear bounds filled.
func (f *FTL) Stats() Stats {
	s := f.stats
	s.MinErase = ^uint64(0)
	for i := range f.blocks {
		ec := f.blocks[i].eraseCount
		if ec > s.MaxErase {
			s.MaxErase = ec
		}
		if ec < s.MinErase {
			s.MinErase = ec
		}
	}
	if s.MinErase == ^uint64(0) {
		s.MinErase = 0
	}
	return s
}

// Read services a logical-page read and returns its device time.
func (f *FTL) Read(lpn int64) time.Duration {
	if lpn < 0 || lpn >= f.logical {
		return f.cfg.ReadLatency
	}
	return f.cfg.ReadLatency
}

// Write services a logical-page write: invalidate the old mapping,
// program into the active block, and run foreground GC if free space
// is exhausted. It returns the host-visible device time including any
// GC stall.
func (f *FTL) Write(lpn int64) (time.Duration, error) {
	if lpn < 0 {
		return 0, fmt.Errorf("ftl: negative lpn %d", lpn)
	}
	lpn %= f.logical
	var stall time.Duration
	// Ensure space first so the invariant "active block has a free
	// page" holds.
	for f.activeFull() {
		if err := f.rotateActive(); err != nil {
			// Foreground GC: reclaim, charging the host.
			d, gcErr := f.collect(true)
			if gcErr != nil {
				return stall, gcErr
			}
			stall += d
			continue
		}
	}
	f.invalidate(lpn)
	f.program(f.active, lpn, false)
	// Low-water foreground trigger: keep a reserve so bursts do not
	// deadlock mid-rotation. A cold device with nothing invalid yet
	// simply has nothing to reclaim — that is not an error as long as
	// rotation is still possible.
	for len(f.freeList) < f.cfg.GCTriggerFreeBlocks {
		d, err := f.collect(true)
		if err != nil {
			if len(f.freeList) > 0 {
				break
			}
			return stall, err
		}
		stall += d
	}
	return f.cfg.ProgramLatency + stall, nil
}

// Idle grants the FTL an idle period to spend on background GC. It
// returns the portion of the budget actually used.
func (f *FTL) Idle(budget time.Duration) time.Duration {
	var used time.Duration
	for len(f.freeList) < f.cfg.BackgroundGCTarget {
		cost := f.peekCollectCost()
		if cost <= 0 || used+cost > budget {
			break
		}
		d, err := f.collect(false)
		if err != nil {
			break
		}
		used += d
	}
	f.stats.IdleBudgetUsed += used
	return used
}

func (f *FTL) activeFull() bool {
	return f.blocks[f.active].writePtr >= f.cfg.PagesPerBlock
}

// rotateActive takes a fresh block from the free list.
func (f *FTL) rotateActive() error {
	if len(f.freeList) == 0 {
		return ErrFull
	}
	f.active = f.freeList[0]
	f.freeList = f.freeList[1:]
	return nil
}

// invalidate clears lpn's current mapping.
func (f *FTL) invalidate(lpn int64) {
	packed := f.l2p[lpn]
	if packed < 0 {
		return
	}
	b, p := int(packed>>32), int(packed&0xffffffff)
	if f.blocks[b].pages[p] == pageValid {
		f.blocks[b].pages[p] = pageInvalid
		f.blocks[b].validCount--
	}
	f.l2p[lpn] = -1
}

// program writes lpn into the next free page of block b.
func (f *FTL) program(b int, lpn int64, gc bool) {
	blk := &f.blocks[b]
	p := blk.writePtr
	blk.writePtr++
	blk.pages[p] = pageValid
	blk.lpns[p] = lpn
	blk.validCount++
	f.l2p[lpn] = int64(b)<<32 | int64(p)
	if gc {
		f.stats.GCWrites++
	} else {
		f.stats.HostWrites++
	}
}

// victim selects the fullest-invalid (greedy) block, excluding the
// active and GC blocks. Returns -1 when nothing is reclaimable.
func (f *FTL) victim() int {
	best, bestValid := -1, 1<<30
	for i := range f.blocks {
		if i == f.active || i == f.gcActive {
			continue
		}
		blk := &f.blocks[i]
		if blk.writePtr < f.cfg.PagesPerBlock {
			continue // not yet sealed
		}
		if blk.validCount < bestValid {
			best, bestValid = i, blk.validCount
		}
	}
	if best >= 0 && bestValid == f.cfg.PagesPerBlock {
		return -1 // everything fully valid: nothing to reclaim
	}
	return best
}

// peekCollectCost estimates the next GC round's cost without running
// it (for idle budgeting).
func (f *FTL) peekCollectCost() time.Duration {
	v := f.victim()
	if v < 0 {
		return -1
	}
	valid := f.blocks[v].validCount
	return time.Duration(valid)*(f.cfg.ReadLatency+f.cfg.ProgramLatency) + f.cfg.EraseLatency
}

// collect runs one GC round: relocate the victim's valid pages, erase
// it, return it to the free list.
func (f *FTL) collect(foreground bool) (time.Duration, error) {
	v := f.victim()
	if v < 0 {
		return 0, ErrFull
	}
	var cost time.Duration
	blk := &f.blocks[v]
	for p := 0; p < f.cfg.PagesPerBlock; p++ {
		if blk.pages[p] != pageValid {
			continue
		}
		lpn := blk.lpns[p]
		// Relocation target: a dedicated GC block so host and GC
		// streams do not interleave (hot/cold separation).
		if f.gcActive < 0 || f.blocks[f.gcActive].writePtr >= f.cfg.PagesPerBlock {
			if len(f.freeList) == 0 {
				return cost, ErrFull
			}
			f.gcActive = f.freeList[0]
			f.freeList = f.freeList[1:]
		}
		blk.pages[p] = pageInvalid
		blk.validCount--
		f.program(f.gcActive, lpn, true)
		cost += f.cfg.ReadLatency + f.cfg.ProgramLatency
	}
	// Erase and reclaim.
	blk.pages = make([]pageState, f.cfg.PagesPerBlock)
	blk.validCount = 0
	blk.writePtr = 0
	blk.eraseCount++
	f.stats.Erases++
	cost += f.cfg.EraseLatency
	f.freeList = append(f.freeList, v)
	if foreground {
		f.stats.ForegroundGC++
		f.stats.ForegroundStall += cost
	} else {
		f.stats.BackgroundGC++
	}
	return cost, nil
}

// PagesOf converts a block request to its logical page span.
func (f *FTL) PagesOf(r trace.Request) (first, count int64) {
	pageSectors := int64(f.cfg.PageKB) * 1024 / trace.SectorSize
	first = int64(r.LBA) / pageSectors
	last := (int64(r.End()) - 1) / pageSectors
	return first % f.logical, last - first + 1
}
