package ftl

import (
	"testing"
	"time"

	"repro/internal/trace"
)

// tiny returns a small FTL so GC pressure appears quickly.
func tiny() *FTL {
	return New(Config{
		Blocks:              64,
		PagesPerBlock:       32,
		PageKB:              4,
		OverprovisionPct:    0.15,
		GCTriggerFreeBlocks: 3,
		BackgroundGCTarget:  8,
	})
}

func TestWriteReadBasics(t *testing.T) {
	f := tiny()
	d, err := f.Write(0)
	if err != nil {
		t.Fatal(err)
	}
	if d < f.cfg.ProgramLatency {
		t.Fatalf("write time %v below tPROG", d)
	}
	if got := f.Read(0); got != f.cfg.ReadLatency {
		t.Fatalf("read time %v", got)
	}
	s := f.Stats()
	if s.HostWrites != 1 || s.GCWrites != 0 {
		t.Fatalf("stats: %+v", s)
	}
	if s.WAF() != 1 {
		t.Fatalf("WAF of fresh device = %v", s.WAF())
	}
}

func TestOverwriteInvalidates(t *testing.T) {
	f := tiny()
	for i := 0; i < 10; i++ {
		if _, err := f.Write(7); err != nil {
			t.Fatal(err)
		}
	}
	// One logical page maps to exactly one valid physical page.
	valid := 0
	for i := range f.blocks {
		valid += f.blocks[i].validCount
	}
	if valid != 1 {
		t.Fatalf("valid pages = %d, want 1", valid)
	}
}

func TestGCReclaimsUnderPressure(t *testing.T) {
	f := tiny()
	// Hammer a small hot set far beyond physical capacity: GC must
	// keep reclaiming invalid pages without error.
	totalPages := int64(64 * 32)
	for i := int64(0); i < totalPages*4; i++ {
		if _, err := f.Write(i % 100); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	s := f.Stats()
	if s.Erases == 0 {
		t.Fatal("GC never ran")
	}
	if s.WAF() < 1 {
		t.Fatalf("WAF %v < 1", s.WAF())
	}
}

func TestColdSequentialFillDoesNotErrFull(t *testing.T) {
	f := tiny()
	// Write every logical page exactly once: nothing to reclaim, but
	// the device must absorb the full logical space.
	for lpn := int64(0); lpn < f.LogicalPages(); lpn++ {
		if _, err := f.Write(lpn); err != nil {
			t.Fatalf("lpn %d: %v", lpn, err)
		}
	}
}

func TestIdleRunsBackgroundGC(t *testing.T) {
	f := tiny()
	// Create garbage.
	for i := int64(0); i < int64(64*32)*2; i++ {
		if _, err := f.Write(i % 200); err != nil {
			t.Fatal(err)
		}
	}
	before := f.Stats()
	used := f.Idle(time.Second)
	after := f.Stats()
	if used == 0 {
		t.Fatal("idle budget unused despite garbage")
	}
	if after.BackgroundGC <= before.BackgroundGC {
		t.Fatal("no background GC rounds")
	}
	if after.IdleBudgetUsed != used {
		t.Fatalf("budget accounting: %v vs %v", after.IdleBudgetUsed, used)
	}
}

func TestIdleRespectsBudget(t *testing.T) {
	f := tiny()
	for i := int64(0); i < int64(64*32)*2; i++ {
		if _, err := f.Write(i % 200); err != nil {
			t.Fatal(err)
		}
	}
	budget := 5 * time.Millisecond
	if used := f.Idle(budget); used > budget {
		t.Fatalf("used %v exceeds budget %v", used, budget)
	}
}

func TestIdleBudgetReducesForegroundGC(t *testing.T) {
	// The package's reason for existing: with idle gaps, GC shifts to
	// the background; without them it stalls the host.
	run := func(withIdle bool) Stats {
		f := tiny()
		for i := int64(0); i < int64(64*32)*3; i++ {
			if _, err := f.Write(i % 300); err != nil {
				t.Fatal(err)
			}
			if withIdle && i%100 == 99 {
				f.Idle(100 * time.Millisecond)
			}
		}
		return f.Stats()
	}
	idle := run(true)
	busy := run(false)
	if idle.ForegroundGC >= busy.ForegroundGC {
		t.Fatalf("idle run foreground GC %d should be below busy run %d",
			idle.ForegroundGC, busy.ForegroundGC)
	}
	if idle.BackgroundGC == 0 {
		t.Fatal("idle run should do background GC")
	}
	if busy.ForegroundStall == 0 {
		t.Fatal("busy run should record stalls")
	}
}

func TestStatsWearBounds(t *testing.T) {
	f := tiny()
	for i := int64(0); i < int64(64*32)*3; i++ {
		if _, err := f.Write(i % 150); err != nil {
			t.Fatal(err)
		}
	}
	s := f.Stats()
	if s.MaxErase < s.MinErase {
		t.Fatalf("wear bounds inverted: %+v", s)
	}
	if s.WearSpread() < 1 {
		t.Fatalf("wear spread %v < 1", s.WearSpread())
	}
}

func TestWriteNegativeLPN(t *testing.T) {
	f := tiny()
	if _, err := f.Write(-1); err == nil {
		t.Fatal("negative lpn accepted")
	}
}

func TestPagesOf(t *testing.T) {
	f := tiny() // 4KB pages = 8 sectors
	first, count := f.PagesOf(trace.Request{LBA: 16, Sectors: 8})
	if first != 2 || count != 1 {
		t.Fatalf("PagesOf(16,8) = %d,%d", first, count)
	}
	first, count = f.PagesOf(trace.Request{LBA: 4, Sectors: 8})
	if first != 0 || count != 2 { // straddles pages 0 and 1
		t.Fatalf("PagesOf(4,8) = %d,%d", first, count)
	}
}

func TestRunDriver(t *testing.T) {
	f := tiny()
	tr := &trace.Trace{}
	at := time.Duration(0)
	lba := uint64(0)
	for i := 0; i < 3000; i++ {
		tr.Requests = append(tr.Requests, trace.Request{
			Arrival: at, LBA: lba % 5000, Sectors: 8, Op: trace.Write,
		})
		at += 2 * time.Millisecond // idle gaps between requests
		lba += 8
	}
	res, err := Run(f, tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 3000 {
		t.Fatalf("requests = %d", res.Requests)
	}
	if res.IdleOffered == 0 {
		t.Fatal("no idle offered despite gaps")
	}
	if res.Elapsed == 0 {
		t.Fatal("no elapsed time")
	}
}

func TestRunReadsDoNotAmplify(t *testing.T) {
	f := tiny()
	tr := &trace.Trace{Requests: []trace.Request{
		{Arrival: 0, LBA: 0, Sectors: 64, Op: trace.Read},
	}}
	res, err := Run(f, tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.HostWrites != 0 {
		t.Fatal("reads should not write")
	}
}

func TestDefaultsApplied(t *testing.T) {
	f := New(Config{})
	if f.cfg.Blocks != DefaultConfig().Blocks {
		t.Fatal("defaults not applied")
	}
	if f.LogicalPages() <= 0 {
		t.Fatal("no logical space")
	}
}
