package ftl

import (
	"time"

	"repro/internal/trace"
)

// RunResult summarizes a trace-driven FTL simulation.
type RunResult struct {
	Stats Stats
	// Requests processed.
	Requests int
	// IdleOffered is the total inter-arrival idle presented to the
	// FTL (inter-arrival time beyond the request's own service).
	IdleOffered time.Duration
	// Elapsed is the simulated span including GC stalls.
	Elapsed time.Duration
}

// ForegroundShare is the fraction of GC rounds that stalled the host —
// the number the paper's background-budget discussion predicts will
// differ across reconstructions.
func (r RunResult) ForegroundShare() float64 {
	total := r.Stats.ForegroundGC + r.Stats.BackgroundGC
	if total == 0 {
		return 0
	}
	return float64(r.Stats.ForegroundGC) / float64(total)
}

// Run drives the FTL with a block trace: writes program pages, reads
// charge read latency, and the gap between a request's completion and
// the next arrival is offered to background GC — exactly the idle
// budget the trace's timing context encodes. Traces reconstructed
// without idle context offer no budget, forcing GC into the
// foreground.
func Run(f *FTL, t *trace.Trace) (RunResult, error) {
	var res RunResult
	var now time.Duration
	for i, r := range t.Requests {
		if r.Arrival > now {
			// The device sat idle until this arrival: background GC
			// may use the gap.
			gap := r.Arrival - now
			res.IdleOffered += gap
			f.Idle(gap)
			now = r.Arrival
		}
		first, count := f.PagesOf(r)
		var svc time.Duration
		for p := int64(0); p < count; p++ {
			lpn := (first + p) % f.LogicalPages()
			if r.Op == trace.Read {
				svc += f.Read(lpn)
			} else {
				d, err := f.Write(lpn)
				if err != nil {
					return res, err
				}
				svc += d
			}
		}
		now += svc
		res.Requests = i + 1
	}
	res.Stats = f.Stats()
	res.Elapsed = now
	return res, nil
}
