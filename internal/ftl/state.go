package ftl

// Snapshot/restore of the complete translation state, the handoff the
// epoch-pipelined engine needs to re-run an epoch on a worker's device
// (see device.Stateful). Unlike the HDD — whose state is four words —
// an FTL's servicing depends on the entire mapping table, per-block
// wear/occupancy and GC progress, so a snapshot is a deep copy sized
// by the device geometry. The engine keeps this affordable by using a
// smaller default geometry for the engine target than the experiments
// use (see device.DefaultFTLDeviceConfig).

// State is a deep copy of an FTL's complete servicing state: mapping
// table, per-block page states and wear, free list, active/GC block
// cursors, and accumulated statistics. A State is only meaningful to
// an FTL built from the same Config as the one that took it.
type State struct {
	blocks   []block
	freeList []int
	active   int
	gcActive int
	l2p      []int64
	stats    Stats
}

// Snapshot captures the FTL's state as a value independent of the
// FTL's future evolution.
func (f *FTL) Snapshot() State {
	st := State{
		blocks:   make([]block, len(f.blocks)),
		freeList: append([]int(nil), f.freeList...),
		active:   f.active,
		gcActive: f.gcActive,
		l2p:      append([]int64(nil), f.l2p...),
		stats:    f.stats,
	}
	for i := range f.blocks {
		b := &f.blocks[i]
		st.blocks[i] = block{
			pages:      append([]pageState(nil), b.pages...),
			lpns:       append([]int64(nil), b.lpns...),
			validCount: b.validCount,
			writePtr:   b.writePtr,
			eraseCount: b.eraseCount,
		}
	}
	return st
}

// Restore replaces the FTL's state with st. The FTL adopts st's
// backing storage — a State must be restored at most once, and the
// caller must not use it afterwards. (Snapshot already copied out of
// the source device, so adoption keeps a snapshot+restore handoff at
// one copy instead of two.)
func (f *FTL) Restore(st State) {
	f.blocks = st.blocks
	f.freeList = st.freeList
	f.active = st.active
	f.gcActive = st.gcActive
	f.l2p = st.l2p
	f.stats = st.stats
}
