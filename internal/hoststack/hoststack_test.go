package hoststack

import (
	"testing"
	"time"

	"repro/internal/device"
	"repro/internal/trace"
)

// slowDev counts requests with a fixed latency, for precise assertions.
type slowDev struct {
	lat  time.Duration
	busy time.Duration
	n    int
}

func (d *slowDev) Name() string { return "slow" }
func (d *slowDev) Reset()       { d.busy, d.n = 0, 0 }
func (d *slowDev) Submit(at time.Duration, r trace.Request) device.Result {
	d.n++
	start := at
	if d.busy > start {
		start = d.busy
	}
	done := start + d.lat
	d.busy = done
	return device.Result{Start: start, Complete: done}
}

func small(inner device.Device) *Stack {
	return New(Config{
		CachePages:      64,
		PageKB:          4,
		WriteBack:       true,
		DirtyHighWater:  0.5,
		FlushBatch:      8,
		ReadAheadPages:  0,
		SyscallOverhead: time.Microsecond,
		HitLatency:      time.Microsecond,
	}, inner)
}

func rd(lba uint64, sectors uint32) trace.Request {
	return trace.Request{LBA: lba, Sectors: sectors, Op: trace.Read}
}
func wr(lba uint64, sectors uint32) trace.Request {
	return trace.Request{LBA: lba, Sectors: sectors, Op: trace.Write}
}

func TestReadMissThenHit(t *testing.T) {
	dev := &slowDev{lat: time.Millisecond}
	s := small(dev)
	miss := s.Submit(0, rd(0, 8))
	if miss.Complete-miss.Start < time.Millisecond {
		t.Fatalf("miss served at memory speed: %+v", miss)
	}
	hit := s.Submit(miss.Complete, rd(0, 8))
	if hit.Complete-hit.Start > 10*time.Microsecond {
		t.Fatalf("hit not served from cache: %+v", hit)
	}
	if s.HitRate() != 0.5 {
		t.Fatalf("hit rate = %v", s.HitRate())
	}
	if dev.n != 1 {
		t.Fatalf("device saw %d requests, want 1", dev.n)
	}
}

func TestWriteBackCompletesAtMemorySpeed(t *testing.T) {
	dev := &slowDev{lat: time.Millisecond}
	s := small(dev)
	res := s.Submit(0, wr(0, 8))
	if res.Complete-res.Start > 10*time.Microsecond {
		t.Fatalf("write-back write waited on device: %+v", res)
	}
	if dev.n != 0 {
		t.Fatal("write should not reach the device before flush")
	}
}

func TestWriteThroughWaits(t *testing.T) {
	dev := &slowDev{lat: time.Millisecond}
	s := New(Config{
		CachePages: 64, PageKB: 4, WriteBack: false,
		SyscallOverhead: time.Microsecond, HitLatency: time.Microsecond,
	}, dev)
	res := s.Submit(0, wr(0, 8))
	if res.Complete-res.Start < time.Millisecond {
		t.Fatalf("write-through must wait for media: %+v", res)
	}
	if dev.n != 1 {
		t.Fatal("write-through must reach the device")
	}
}

func TestDirtyHighWaterFlushes(t *testing.T) {
	dev := &slowDev{lat: 100 * time.Microsecond}
	s := small(dev) // 64 pages, high water 0.5 => 32 dirty
	at := time.Duration(0)
	for i := uint64(0); i < 40; i++ {
		res := s.Submit(at, wr(i*8, 8))
		at = res.Complete
	}
	if dev.n == 0 {
		t.Fatal("flusher never ran despite exceeding high water")
	}
	if s.dirtyCount() > 32 {
		t.Fatalf("dirty pages %d above high water after flush", s.dirtyCount())
	}
}

func TestEvictionWritesBackDirtyVictim(t *testing.T) {
	dev := &slowDev{lat: 10 * time.Microsecond}
	// Tiny cache, high water above 1 so only eviction flushes.
	s := New(Config{
		CachePages: 4, PageKB: 4, WriteBack: true, DirtyHighWater: 0.99,
		FlushBatch: 1, SyscallOverhead: time.Microsecond, HitLatency: time.Microsecond,
	}, dev)
	at := time.Duration(0)
	for i := uint64(0); i < 3; i++ { // 3 dirty < ceil(0.99*4)
		res := s.Submit(at, wr(i*8, 8))
		at = res.Complete
	}
	before := dev.n
	// Read misses displace the dirty pages.
	for i := uint64(100); i < 110; i++ {
		res := s.Submit(at, rd(i*8, 8))
		at = res.Complete
	}
	// The displaced dirty pages must have been written back.
	writes := 0
	for _, r := range s.BlockTrace().Requests {
		if r.Op == trace.Write {
			writes++
		}
	}
	if writes == 0 || dev.n <= before {
		t.Fatal("dirty eviction did not write back")
	}
}

func TestFlushDrainsAllDirty(t *testing.T) {
	dev := &slowDev{lat: 50 * time.Microsecond}
	s := small(dev)
	at := time.Duration(0)
	for i := uint64(0); i < 10; i++ {
		res := s.Submit(at, wr(i*8, 8))
		at = res.Complete
	}
	stall := s.Flush(at)
	if stall == 0 {
		t.Fatal("flush of dirty cache should cost time")
	}
	if s.dirtyCount() != 0 {
		t.Fatalf("dirty after flush: %d", s.dirtyCount())
	}
	if s.Flush(at+stall) != 0 {
		t.Fatal("second flush should be free")
	}
}

func TestReadAheadPrefetches(t *testing.T) {
	dev := &slowDev{lat: time.Millisecond}
	s := New(Config{
		CachePages: 64, PageKB: 4, WriteBack: true, ReadAheadPages: 4,
		SyscallOverhead: time.Microsecond, HitLatency: time.Microsecond,
	}, dev)
	res := s.Submit(0, rd(0, 8)) // miss page 0, prefetch 1..4
	// Sequential continuation hits the prefetched pages.
	for p := uint64(1); p <= 4; p++ {
		hit := s.Submit(res.Complete, rd(p*8, 8))
		if hit.Complete-hit.Start > 10*time.Microsecond {
			t.Fatalf("page %d not prefetched", p)
		}
	}
	if dev.n != 1 {
		t.Fatalf("device requests = %d, want 1 (single fetch span)", dev.n)
	}
}

func TestBlockTraceRecordsBelowCache(t *testing.T) {
	dev := &slowDev{lat: 100 * time.Microsecond}
	s := small(dev)
	at := time.Duration(0)
	// One miss read, one hit read, several buffered writes + flush.
	res := s.Submit(at, rd(0, 8))
	at = res.Complete
	res = s.Submit(at, rd(0, 8))
	at = res.Complete
	for i := uint64(10); i < 14; i++ {
		res = s.Submit(at, wr(i*8, 8))
		at = res.Complete
	}
	s.Flush(at)
	blk := s.BlockTrace()
	if err := blk.Validate(); err != nil {
		t.Fatalf("block trace invalid: %v", err)
	}
	reads, writes := 0, 0
	for _, r := range blk.Requests {
		if r.Op == trace.Read {
			reads++
		} else {
			writes++
		}
	}
	if reads != 1 {
		t.Fatalf("block reads = %d, want 1 (hit absorbed)", reads)
	}
	if writes != 4 {
		t.Fatalf("block writes = %d, want 4 flushes", writes)
	}
	if !blk.TsdevKnown {
		t.Fatal("collected trace should carry latencies")
	}
}

func TestResetClears(t *testing.T) {
	dev := &slowDev{lat: time.Microsecond}
	s := small(dev)
	s.Submit(0, wr(0, 8))
	s.Reset()
	if s.dirtyCount() != 0 || s.HitRate() != 0 || s.BlockTrace().Len() != 0 {
		t.Fatal("reset did not clear state")
	}
}

func TestNameComposes(t *testing.T) {
	s := small(&slowDev{})
	if s.Name() != "hoststack(slow)" {
		t.Fatalf("name = %q", s.Name())
	}
}

func TestCacheNeverExceedsCapacity(t *testing.T) {
	dev := &slowDev{lat: time.Microsecond}
	s := small(dev) // 64 pages
	at := time.Duration(0)
	for i := uint64(0); i < 1000; i++ {
		op := rd(i*8, 8)
		if i%3 == 0 {
			op = wr(i*8, 8)
		}
		res := s.Submit(at, op)
		at = res.Complete
	}
	if len(s.pages) > 64 {
		t.Fatalf("cache holds %d pages, capacity 64", len(s.pages))
	}
	if s.lru.Len() != len(s.pages) {
		t.Fatalf("LRU/map divergence: %d vs %d", s.lru.Len(), len(s.pages))
	}
}
