// Package hoststack models the host side of the paper's Fig 2a
// storage stack: the mode switch and buffer copy an I/O system call
// costs, the VFS page cache that absorbs read hits and buffers
// writes, and the writeback flusher that turns dirty pages into the
// block-layer requests an underlying device actually sees.
//
// The Stack wraps any device.Device and is itself a device.Device, so
// the replay machinery composes unchanged:
//
//	inner := device.NewHDD(device.DefaultHDDConfig())
//	host := hoststack.New(hoststack.DefaultConfig(), inner)
//	res := app.Execute(host)      // application-visible timing
//	blk := host.BlockTrace()      // what blktrace records below the cache
//
// This is the substrate behind the paper's observation that public
// block traces are collected *underneath* the block layer: the
// application-level behaviour and the block-level trace differ by
// exactly the cache hits, write buffering and readahead modeled here.
package hoststack

import (
	"container/list"
	"time"

	"repro/internal/device"
	"repro/internal/trace"
)

// Config parameterizes the host stack.
type Config struct {
	// CachePages is the page-cache capacity in pages.
	CachePages int
	// PageKB is the cache page size.
	PageKB int
	// WriteBack buffers writes in the cache (completing them at
	// memory speed) and flushes them later; false means write-through.
	WriteBack bool
	// DirtyHighWater triggers synchronous flushing when the dirty
	// fraction of the cache exceeds it (the kernel flusher's
	// dirty_ratio analogue).
	DirtyHighWater float64
	// FlushBatch is the number of dirty pages each flush round writes.
	FlushBatch int
	// ReadAheadPages prefetches this many pages after a read miss.
	ReadAheadPages int
	// SyscallOverhead is the CPU cost of the user/kernel mode switch
	// and buffer copy charged to every request (the paper's hidden
	// CPU burst).
	SyscallOverhead time.Duration
	// HitLatency is the cost of serving a request from the cache.
	HitLatency time.Duration
	// NoBlockLog disables the block-layer request log. The engine sets
	// it for reconstruction targets: the log grows without bound over a
	// whole trace, is excluded from snapshots anyway, and is only
	// meaningful on a serially-driven stack.
	NoBlockLog bool
}

// DefaultConfig returns a 256 MiB write-back cache with modest
// readahead, roughly a 2007-era file server's per-volume share.
func DefaultConfig() Config {
	return Config{
		CachePages:      65536, // 256 MiB of 4K pages
		PageKB:          4,
		WriteBack:       true,
		DirtyHighWater:  0.20,
		FlushBatch:      32,
		ReadAheadPages:  8,
		SyscallOverhead: 3 * time.Microsecond,
		HitLatency:      2 * time.Microsecond,
	}
}

// pageKey identifies a cached page.
type pageKey struct {
	dev  uint32
	page uint64
}

// cachePage is one resident page.
type cachePage struct {
	key   pageKey
	dirty bool
	elem  *list.Element
}

// Stack is the host storage stack; it implements device.Device.
type Stack struct {
	cfg   Config
	inner device.Device

	pages map[pageKey]*cachePage
	lru   *list.List // front = most recent

	log *trace.Trace

	dirty                 int
	hits, misses, flushed uint64
}

// New builds a Stack over inner (zero cfg fields default).
func New(cfg Config, inner device.Device) *Stack {
	def := DefaultConfig()
	if cfg.CachePages == 0 {
		cfg.CachePages = def.CachePages
	}
	if cfg.PageKB == 0 {
		cfg.PageKB = def.PageKB
	}
	if cfg.DirtyHighWater == 0 {
		cfg.DirtyHighWater = def.DirtyHighWater
	}
	if cfg.FlushBatch == 0 {
		cfg.FlushBatch = def.FlushBatch
	}
	if cfg.SyscallOverhead == 0 {
		cfg.SyscallOverhead = def.SyscallOverhead
	}
	if cfg.HitLatency == 0 {
		cfg.HitLatency = def.HitLatency
	}
	s := &Stack{cfg: cfg, inner: inner}
	s.Reset()
	return s
}

// Name implements device.Device.
func (s *Stack) Name() string { return "hoststack(" + s.inner.Name() + ")" }

// Reset implements device.Device.
func (s *Stack) Reset() {
	s.inner.Reset()
	s.pages = make(map[pageKey]*cachePage)
	s.lru = list.New()
	s.log = &trace.Trace{Name: "blocktrace", TsdevKnown: true}
	s.dirty = 0
	s.hits, s.misses, s.flushed = 0, 0, 0
}

// HitRate returns cache hits / (hits+misses) for reads.
func (s *Stack) HitRate() float64 {
	total := s.hits + s.misses
	if total == 0 {
		return 0
	}
	return float64(s.hits) / float64(total)
}

// BlockTrace returns the block-layer request log collected so far —
// what blktrace underneath the cache would have captured. The caller
// must not mutate it while the stack is in use.
func (s *Stack) BlockTrace() *trace.Trace {
	s.log.Sort()
	return s.log
}

func (s *Stack) pageSectors() uint64 {
	return uint64(s.cfg.PageKB) * 1024 / trace.SectorSize
}

// Submit implements device.Device: the application-visible service of
// one request through the cache.
func (s *Stack) Submit(at time.Duration, r trace.Request) device.Result {
	now := at + s.cfg.SyscallOverhead
	ps := s.pageSectors()
	first := r.LBA / ps
	last := (r.End() - 1) / ps

	if r.Op == trace.Read {
		return s.read(now, r, first, last)
	}
	return s.write(now, r, first, last)
}

func (s *Stack) read(now time.Duration, r trace.Request, first, last uint64) device.Result {
	// Partition the span into hits and misses; misses fetch from the
	// inner device synchronously (plus readahead beyond the span).
	var missFrom, missTo uint64
	haveMiss := false
	for p := first; p <= last; p++ {
		if s.touch(pageKey{r.Device, p}, false) {
			s.hits++
			continue
		}
		s.misses++
		if !haveMiss {
			missFrom, haveMiss = p, true
		}
		missTo = p
	}
	complete := now + s.cfg.HitLatency
	if haveMiss {
		ra := uint64(s.cfg.ReadAheadPages)
		fetchTo := missTo + ra
		res := s.issue(now, r.Device, missFrom, fetchTo, trace.Read)
		for p := missFrom; p <= fetchTo; p++ {
			s.install(pageKey{r.Device, p}, false, now)
		}
		complete = res.Complete
	}
	return device.Result{Start: now, Complete: complete}
}

func (s *Stack) write(now time.Duration, r trace.Request, first, last uint64) device.Result {
	if !s.cfg.WriteBack {
		res := s.issue(now, r.Device, first, last, trace.Write)
		for p := first; p <= last; p++ {
			s.install(pageKey{r.Device, p}, false, now)
		}
		return device.Result{Start: now, Complete: res.Complete}
	}
	for p := first; p <= last; p++ {
		k := pageKey{r.Device, p}
		if !s.touch(k, true) {
			s.install(k, true, now)
		}
	}
	complete := now + s.cfg.HitLatency
	// Dirty high-water: flush synchronously, charging this request —
	// the stall applications observe when the flusher falls behind.
	if stall := s.maybeFlush(now); stall > 0 {
		complete += stall
	}
	return device.Result{Start: now, Complete: complete}
}

// touch marks a resident page used (and dirty when dirty), reporting
// residency.
func (s *Stack) touch(k pageKey, dirty bool) bool {
	pg, ok := s.pages[k]
	if !ok {
		return false
	}
	s.lru.MoveToFront(pg.elem)
	if dirty && !pg.dirty {
		pg.dirty = true
		s.dirty++
	}
	return true
}

// install inserts a page, evicting (and writing back) the LRU victim
// when full.
func (s *Stack) install(k pageKey, dirty bool, now time.Duration) {
	if pg, ok := s.pages[k]; ok {
		s.lru.MoveToFront(pg.elem)
		if dirty && !pg.dirty {
			pg.dirty = true
			s.dirty++
		}
		return
	}
	for len(s.pages) >= s.cfg.CachePages {
		victimElem := s.lru.Back()
		if victimElem == nil {
			break
		}
		victim := victimElem.Value.(*cachePage)
		if victim.dirty {
			s.issue(now, victim.key.dev, victim.key.page, victim.key.page, trace.Write)
			s.flushed++
			s.dirty--
		}
		s.lru.Remove(victimElem)
		delete(s.pages, victim.key)
	}
	pg := &cachePage{key: k, dirty: dirty}
	pg.elem = s.lru.PushFront(pg)
	s.pages[k] = pg
	if dirty {
		s.dirty++
	}
}

// maybeFlush writes back batches while the dirty fraction exceeds the
// high-water mark; returns the synchronous stall incurred.
func (s *Stack) maybeFlush(now time.Duration) time.Duration {
	var stall time.Duration
	for s.dirtyCount() > int(s.cfg.DirtyHighWater*float64(s.cfg.CachePages)) {
		flushedInBatch := 0
		for e := s.lru.Back(); e != nil && flushedInBatch < s.cfg.FlushBatch; e = e.Prev() {
			pg := e.Value.(*cachePage)
			if !pg.dirty {
				continue
			}
			res := s.issue(now+stall, pg.key.dev, pg.key.page, pg.key.page, trace.Write)
			stall += res.Complete - (now + stall)
			pg.dirty = false
			s.dirty--
			s.flushed++
			flushedInBatch++
		}
		if flushedInBatch == 0 {
			break
		}
	}
	return stall
}

// Flush synchronously writes back every dirty page (fsync/unmount).
func (s *Stack) Flush(at time.Duration) time.Duration {
	var stall time.Duration
	for e := s.lru.Back(); e != nil; e = e.Prev() {
		pg := e.Value.(*cachePage)
		if !pg.dirty {
			continue
		}
		res := s.issue(at+stall, pg.key.dev, pg.key.page, pg.key.page, trace.Write)
		stall += res.Complete - (at + stall)
		pg.dirty = false
		s.dirty--
		s.flushed++
	}
	return stall
}

// dirtyCount returns the maintained dirty-page counter.
func (s *Stack) dirtyCount() int { return s.dirty }

// issue sends a page span to the inner device and records it in the
// block-layer log.
func (s *Stack) issue(at time.Duration, dev uint32, firstPage, lastPage uint64, op trace.Op) device.Result {
	ps := s.pageSectors()
	req := trace.Request{
		Arrival: at,
		Device:  dev,
		LBA:     firstPage * ps,
		Sectors: uint32((lastPage - firstPage + 1) * ps),
		Op:      op,
	}
	res := s.inner.Submit(at, req)
	if !s.cfg.NoBlockLog {
		req.Latency = res.Complete - at
		s.log.Requests = append(s.log.Requests, req)
	}
	return res
}

// savedPage is one page-cache entry in a snapshot, in LRU order.
type savedPage struct {
	key   pageKey
	dirty bool
}

// stackState is the Stack's device.State: the page-cache contents in
// recency order with their dirty flags (the writeback debt), the
// accumulated cache counters, and the inner device's own snapshot
// (which carries any destage debt the inner device still owes — e.g.
// a write-back HDD's busyUntil). The block-layer log is deliberately
// not part of the snapshot: it is a diagnostic of a serially-driven
// stack, disabled via Config.NoBlockLog on engine targets.
type stackState struct {
	pages                 []savedPage // front (MRU) to back (LRU)
	hits, misses, flushed uint64
	inner                 device.State
}

// SnapshotSupported implements device.ConditionalStateful: the stack
// snapshots exactly when its inner device does.
func (s *Stack) SnapshotSupported() bool {
	_, ok := s.inner.(device.Stateful)
	return ok
}

// Snapshot implements device.Stateful. The inner device must be
// Stateful (see SnapshotSupported).
func (s *Stack) Snapshot() device.State {
	st := stackState{hits: s.hits, misses: s.misses, flushed: s.flushed}
	if n := s.lru.Len(); n > 0 {
		st.pages = make([]savedPage, 0, n)
	}
	for e := s.lru.Front(); e != nil; e = e.Next() {
		pg := e.Value.(*cachePage)
		st.pages = append(st.pages, savedPage{key: pg.key, dirty: pg.dirty})
	}
	st.inner = s.inner.(device.Stateful).Snapshot()
	return st
}

// Restore implements device.Stateful, rebuilding the cache from a
// snapshot taken on a same-configured stack. Like every State, the
// snapshot may be adopted — restore a given State at most once.
func (s *Stack) Restore(v device.State) {
	st := v.(stackState)
	s.pages = make(map[pageKey]*cachePage, len(st.pages))
	s.lru = list.New()
	s.dirty = 0
	for _, sp := range st.pages {
		pg := &cachePage{key: sp.key, dirty: sp.dirty}
		pg.elem = s.lru.PushBack(pg)
		s.pages[sp.key] = pg
		if sp.dirty {
			s.dirty++
		}
	}
	s.hits, s.misses, s.flushed = st.hits, st.misses, st.flushed
	s.inner.(device.Stateful).Restore(st.inner)
}

// DeviceStats implements device.StatsReporter with the cache-level
// numbers that distinguish application-visible from block-level
// behaviour, appending the inner device's stats when it reports any.
func (s *Stack) DeviceStats() []device.Stat {
	stats := []device.Stat{
		{Name: "cache_hits", Value: float64(s.hits)},
		{Name: "cache_misses", Value: float64(s.misses)},
		{Name: "hit_rate", Value: s.HitRate()},
		{Name: "flushed_pages", Value: float64(s.flushed)},
		{Name: "dirty_pages", Value: float64(s.dirty)},
	}
	if sr, ok := s.inner.(device.StatsReporter); ok {
		for _, st := range sr.DeviceStats() {
			stats = append(stats, device.Stat{Name: "inner_" + st.Name, Value: st.Value})
		}
	}
	return stats
}
