package hoststack

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/device"
	"repro/internal/trace"
)

// TestStackCapabilities pins the engine routing: a stack over a
// Stateful inner device is stateful (pipelined), never shard-safe; a
// stack over a non-Stateful inner device reports no snapshot support,
// so the engine falls back to the sequential path instead of panicking
// mid-pipeline.
func TestStackCapabilities(t *testing.T) {
	over := func(inner device.Device) *Stack {
		return New(Config{CachePages: 16, NoBlockLog: true}, inner)
	}
	statefulInner := over(device.NewHDD(device.DefaultHDDConfig()))
	if device.IsShardSafe(statefulInner) {
		t.Fatalf("stack over hdd must not be shard-safe")
	}
	if !device.IsStateful(statefulInner) {
		t.Fatalf("stack over hdd must be stateful")
	}
	opaque := over(&device.Null{})
	if device.IsStateful(opaque) {
		t.Fatalf("stack over a non-stateful device must not claim statefulness")
	}
}

// stackWorkload drives a deterministic mix of reads and writes that
// fills the cache, dirties pages and crosses the flush threshold.
func stackWorkload(n, span int, seed uint64) []trace.Request {
	reqs := make([]trace.Request, n)
	x := seed
	for i := range reqs {
		x = x*6364136223846793005 + 1442695040888963407
		op := trace.Write
		if x>>32%3 == 0 {
			op = trace.Read
		}
		page := (x >> 16) % uint64(span)
		reqs[i] = trace.Request{LBA: page * 8, Sectors: 8, Op: op}
	}
	return reqs
}

// TestStackSnapshotRestore checks the host-stack handoff contract: a
// snapshot carries the page-cache contents in recency order, the dirty
// (writeback-debt) flags, the cache counters and the inner device's
// own state, so a restored fresh stack reproduces the original's
// future servicing and statistics exactly — while a fresh stack
// without the restore does not.
func TestStackSnapshotRestore(t *testing.T) {
	wc := device.DefaultHDDConfig()
	wc.WriteCache = true
	cfg := Config{CachePages: 64, PageKB: 4, WriteBack: true, FlushBatch: 8, NoBlockLog: true}
	mk := func() *Stack { return New(cfg, device.NewHDD(wc)) }

	prefix := stackWorkload(500, 200, 11)
	suffix := stackWorkload(120, 200, 23)

	orig := mk()
	now := time.Duration(0)
	for _, r := range prefix {
		now = orig.Submit(now, r).Complete
	}
	snap := orig.Snapshot()

	replayFrom := func(s *Stack) []device.Result {
		at := now
		var out []device.Result
		for _, r := range suffix {
			res := s.Submit(at, r)
			out = append(out, res)
			at = res.Complete
		}
		return out
	}
	want := replayFrom(orig)

	restored := mk()
	restored.Restore(snap)
	got := replayFrom(restored)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("suffix result %d diverges after restore: got %+v want %+v", i, got[i], want[i])
		}
	}
	if !reflect.DeepEqual(orig.DeviceStats(), restored.DeviceStats()) {
		t.Fatalf("device stats diverge after restore:\n got %+v\nwant %+v", restored.DeviceStats(), orig.DeviceStats())
	}

	fresh := mk()
	diverged := false
	for i, res := range replayFrom(fresh) {
		if res != want[i] {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Fatalf("fresh stack reproduced the stateful suffix; fixture does not exercise cache state")
	}
}

// TestNoBlockLogDisablesLog checks the engine-target mode: with
// NoBlockLog set the block-layer log stays empty no matter how much
// traffic reaches the inner device, and servicing is unaffected.
func TestNoBlockLogDisablesLog(t *testing.T) {
	inner := device.NewHDD(device.DefaultHDDConfig())
	logged := New(Config{CachePages: 16, WriteBack: true}, device.NewHDD(device.DefaultHDDConfig()))
	quiet := New(Config{CachePages: 16, WriteBack: true, NoBlockLog: true}, inner)
	reqs := stackWorkload(200, 64, 7)
	now, qnow := time.Duration(0), time.Duration(0)
	for _, r := range reqs {
		now = logged.Submit(now, r).Complete
		qnow = quiet.Submit(qnow, r).Complete
	}
	if now != qnow {
		t.Fatalf("NoBlockLog changed servicing: %v vs %v", qnow, now)
	}
	if n := len(logged.BlockTrace().Requests); n == 0 {
		t.Fatalf("fixture issued no block-layer traffic")
	}
	if n := len(quiet.BlockTrace().Requests); n != 0 {
		t.Fatalf("NoBlockLog still logged %d requests", n)
	}
}
