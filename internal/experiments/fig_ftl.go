package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/baseline"
	"repro/internal/ftl"
	"repro/internal/report"
	"repro/internal/trace"
	"repro/internal/workload"
)

// --- Extension 4: downstream simulation impact ---------------------
//
// The paper's core warning is that trace-driven studies reach wrong
// conclusions when the trace's timing context is gone: its Section
// V-B frames inter-arrival idle as the budget for background tasks,
// and its motivating citations are flash studies whose garbage
// collection lives exactly in that budget. This experiment closes the
// loop: the same write-heavy workload, reconstructed by each method,
// drives a page-mapped FTL simulator whose GC prefers idle gaps. A
// reconstruction that destroyed the idle context starves background
// GC and inflates the foreground-stall picture a study would report.

// FTLImpactRow is one reconstruction method's downstream numbers.
type FTLImpactRow struct {
	Method string
	// WAF is the simulated write amplification (same for all methods
	// modulo GC scheduling; reported for completeness).
	WAF float64
	// ForegroundShare is the fraction of GC rounds that stalled host
	// writes.
	ForegroundShare float64
	// Stall is the total host-visible GC stall time.
	Stall time.Duration
	// IdleUsed is background-GC time drawn from the trace's idle.
	IdleUsed time.Duration
}

// FTLImpactResult compares the methods.
type FTLImpactResult struct {
	Workload string
	Rows     []FTLImpactRow
}

// FTLImpact reconstructs a write-heavy FIU workload with every method
// and replays each reconstruction through the FTL.
func FTLImpact(cfg Config) (FTLImpactResult, error) {
	cfg = cfg.withDefaults()
	out := FTLImpactResult{Workload: "homes"}
	p, _ := workload.Lookup("homes") // ~80% writes
	old, _ := GenerateOld(p, 0, cfg.Ops, cfg.Seed)

	// "Target" row: the original trace with its real timing.
	traces := []struct {
		name string
		run  func() (*trace.Trace, error)
	}{
		{"Target(old)", func() (*trace.Trace, error) { return old, nil }},
		{"Acceleration", func() (*trace.Trace, error) {
			return baseline.Acceleration(old, baseline.DefaultAccelerationFactor), nil
		}},
		{"Revision", func() (*trace.Trace, error) { return baseline.Revision(old, NewTarget()), nil }},
		{"Fixed-th", func() (*trace.Trace, error) {
			return baseline.FixedTh(old, NewTarget(), baseline.DefaultFixedThreshold), nil
		}},
		{"Dynamic", func() (*trace.Trace, error) { return baseline.Dynamic(old, NewTarget()) }},
		{"TraceTracker", func() (*trace.Trace, error) { return baseline.TraceTracker(old, NewTarget()) }},
	}
	// The FTL is sized so the trace's footprint wraps around the
	// logical space several times (the driver maps pages modulo the
	// device): sustained overwrite pressure is what makes GC run at
	// all at experiment scale.
	ftlCfg := ftl.Config{
		Blocks:              96,
		PagesPerBlock:       32,
		PageKB:              4,
		OverprovisionPct:    0.10,
		GCTriggerFreeBlocks: 4,
		BackgroundGCTarget:  16,
	}
	for _, tc := range traces {
		tr, err := tc.run()
		if err != nil {
			return out, fmt.Errorf("%s: %w", tc.name, err)
		}
		res, err := ftl.Run(ftl.New(ftlCfg), tr)
		if err != nil {
			return out, fmt.Errorf("%s: ftl: %w", tc.name, err)
		}
		out.Rows = append(out.Rows, FTLImpactRow{
			Method:          tc.name,
			WAF:             res.Stats.WAF(),
			ForegroundShare: res.ForegroundShare(),
			Stall:           res.Stats.ForegroundStall,
			IdleUsed:        res.Stats.IdleBudgetUsed,
		})
	}
	return out, nil
}

// Render implements the textual report.
func (r FTLImpactResult) Render(w io.Writer) {
	t := &report.Table{
		Title:   "FTL study driven by each reconstruction (" + r.Workload + ")",
		Headers: []string{"trace", "WAF", "foreground GC", "stall", "idle GC time"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Method, fmt.Sprintf("%.3f", row.WAF),
			report.Percent(row.ForegroundShare), row.Stall, row.IdleUsed)
	}
	t.Render(w)
	fmt.Fprintln(w, "Reading: idle-destroying reconstructions starve background GC and")
	fmt.Fprintln(w, "inflate the foreground-stall picture a lifetime study would report.")
}
