package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/infer"
	"repro/internal/report"
	"repro/internal/trace"
	"repro/internal/verify"
	"repro/internal/workload"
)

// VerifyPeriods are the injected idle lengths the paper sweeps.
var VerifyPeriods = []time.Duration{
	100 * time.Microsecond,
	1 * time.Millisecond,
	10 * time.Millisecond,
	100 * time.Millisecond,
}

// VerifyGroupResult aggregates one trace group's verification metrics
// across the injected periods.
type VerifyGroupResult struct {
	Group string // "Tsdev-known" or "Tsdev-unknown"
	// PerPeriod[i] corresponds to VerifyPeriods[i].
	PerPeriod []verify.Metrics
}

// Fig10Result reproduces Figure 10 (Len(TP) per injected period per
// group) and carries everything Figure 11 needs too.
type Fig10Result struct {
	Known, Unknown VerifyGroupResult
}

// verifyBase builds a no-natural-idle trace for a family: think times
// are disabled so every idle the inference reports at a non-injected
// instruction is a genuine false positive. When stripLatency is true
// the trace loses its completion timestamps (FIU-style collection).
func verifyBase(family string, ops int, seed int64, stripLatency bool) *trace.Trace {
	p, _ := workload.Lookup(family)
	p.IdleFreq = 0
	app := workload.Generate(p, workload.GenOptions{Ops: ops, Seed: seed})
	res := app.Execute(NewOldDevice())
	tr := res.Trace
	tr.Workload = p.Name
	tr.Set = p.Set
	if stripLatency {
		tr.TsdevKnown = false
		for i := range tr.Requests {
			tr.Requests[i].Latency = 0
		}
	} else {
		tr.TsdevKnown = true
	}
	return tr
}

// Fig10 runs the injection sweep for both groups: the Tsdev-known
// group uses a CFS (MSPS-style) base whose recorded latencies drive
// decomposition directly; the Tsdev-unknown group uses an ikki
// (FIU-style) base that exercises the full inference model.
func Fig10(cfg Config) Fig10Result {
	cfg = cfg.withDefaults()
	known := verifyBase("CFS", cfg.Ops, 10^cfg.Seed, false)
	unknown := verifyBase("ikki", cfg.Ops, 11^cfg.Seed, true)

	out := Fig10Result{
		Known:   VerifyGroupResult{Group: "Tsdev-known"},
		Unknown: VerifyGroupResult{Group: "Tsdev-unknown"},
	}
	for pi, period := range VerifyPeriods {
		spec := verify.InjectionSpec{Period: period, Frac: 0.10, Seed: int64(100 + pi)}

		injected, truth := verify.Inject(known, spec)
		idle, _ := infer.Decompose(nil, injected)
		out.Known.PerPeriod = append(out.Known.PerPeriod, verify.Evaluate(truth, idle))

		injected, truth = verify.Inject(unknown, spec)
		m, err := infer.Estimate(injected, infer.EstimateOptions{})
		var est []time.Duration
		if err == nil {
			est, _ = infer.Decompose(m, injected)
		} else {
			est = make([]time.Duration, injected.Len())
		}
		out.Unknown.PerPeriod = append(out.Unknown.PerPeriod, verify.Evaluate(truth, est))
	}
	return out
}

// Render implements the textual figure.
func (r Fig10Result) Render(w io.Writer) {
	t := &report.Table{
		Title:   "Fig 10: Len(TP) and detection per injected idle period",
		Headers: []string{"group", "period", "Len(TP) secured", "Len(TP) ratio", "Detect(TP)", "Detect(FP)"},
	}
	for _, g := range []VerifyGroupResult{r.Known, r.Unknown} {
		for i, m := range g.PerPeriod {
			t.AddRow(g.Group, report.FormatDuration(VerifyPeriods[i]),
				report.Percent(m.LenTPSecured()),
				report.Percent(m.LenTPRatio),
				report.Percent(m.DetectionTP()),
				report.Percent(m.DetectionFP()))
		}
	}
	t.Render(w)
}

// Fig11Result reproduces Figure 11: the distribution of Len(FP) — the
// idle lengths the model hallucinates at non-injected instructions.
type Fig11Result struct {
	KnownFP, UnknownFP     report.CDFSeries
	KnownMean, UnknownMean time.Duration
}

// Fig11 gathers false-positive idle lengths across the same sweep as
// Fig10.
func Fig11(cfg Config) Fig11Result {
	res := Fig10(cfg)
	collect := func(g VerifyGroupResult) ([]float64, time.Duration) {
		var all []float64
		var sum float64
		for _, m := range g.PerPeriod {
			all = append(all, m.LenFP...)
		}
		for _, v := range all {
			sum += v
		}
		var mean time.Duration
		if len(all) > 0 {
			mean = time.Duration(sum / float64(len(all)) * float64(time.Microsecond))
		}
		return all, mean
	}
	kfp, kmean := collect(res.Known)
	ufp, umean := collect(res.Unknown)
	return Fig11Result{
		KnownFP:     report.NewCDFSeries("Tsdev-known", kfp),
		UnknownFP:   report.NewCDFSeries("Tsdev-unknown", ufp),
		KnownMean:   kmean,
		UnknownMean: umean,
	}
}

// Render implements the textual figure.
func (r Fig11Result) Render(w io.Writer) {
	report.RenderCDFs(w, "Fig 11: CDF of Len(FP)", r.KnownFP, r.UnknownFP)
	fmt.Fprintf(w, "mean Len(FP): known=%s unknown=%s\n",
		report.FormatDuration(r.KnownMean), report.FormatDuration(r.UnknownMean))
}
