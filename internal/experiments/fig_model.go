package experiments

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"time"

	"repro/internal/infer"
	"repro/internal/interp"
	"repro/internal/report"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Fig5Result reproduces Figure 5's CDF-shape taxonomy on synthetic
// populations and on real per-size groups of a generated workload.
type Fig5Result struct {
	// Synthetic maps the three constructed populations to their
	// classified shape (must match the construction).
	Synthetic map[string]infer.Shape
	// WorkloadGroups lists shape classifications of the per-size
	// groups of an MSNFS trace.
	WorkloadGroups []struct {
		Key   infer.GroupKey
		N     int
		Shape infer.Shape
	}
}

// Fig5 builds the three canonical populations of Fig 5 and classifies
// both them and a real workload's groups.
func Fig5(cfg Config) Fig5Result {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(5 ^ cfg.Seed))
	r := Fig5Result{Synthetic: map[string]infer.Shape{}}

	unimodal := make([]float64, 0, 2000)
	for i := 0; i < 1800; i++ {
		unimodal = append(unimodal, 300+rng.Float64()*6)
	}
	for i := 0; i < 200; i++ {
		unimodal = append(unimodal, math.Pow(10, rng.Float64()*5))
	}
	chunky := make([]float64, 0, 2000)
	for i := 0; i < 2000; i++ {
		chunky = append(chunky, math.Pow(10, 1+rng.Float64()*4))
	}
	bimodal := make([]float64, 0, 2000)
	for i := 0; i < 1000; i++ {
		bimodal = append(bimodal, 200+rng.Float64()*4)
	}
	for i := 0; i < 1000; i++ {
		bimodal = append(bimodal, 50000+rng.Float64()*1000)
	}
	r.Synthetic["global-maxima"] = infer.ClassifyShape(unimodal)
	r.Synthetic["chunky-middle"] = infer.ClassifyShape(chunky)
	r.Synthetic["multi-maxima"] = infer.ClassifyShape(bimodal)

	p, _ := workload.Lookup("MSNFS")
	old, _ := GenerateOld(p, 0, cfg.Ops, cfg.Seed)
	g := infer.Classify(old)
	for _, grp := range g.Select(true, trace.Read, 64) {
		r.WorkloadGroups = append(r.WorkloadGroups, struct {
			Key   infer.GroupKey
			N     int
			Shape infer.Shape
		}{grp.Key, grp.N(), infer.ClassifyShape(grp.InttMicros)})
	}
	return r
}

// Render implements the textual figure.
func (r Fig5Result) Render(w io.Writer) {
	t := &report.Table{Title: "Fig 5: CDF shape taxonomy", Headers: []string{"population", "classified"}}
	for _, name := range []string{"global-maxima", "chunky-middle", "multi-maxima"} {
		t.AddRow(name, r.Synthetic[name].String())
	}
	t.Render(w)
	g := &report.Table{Title: "MSNFS sequential-read groups", Headers: []string{"sectors", "n", "shape"}}
	for _, row := range r.WorkloadGroups {
		g.AddRow(row.Key.Sectors, row.N, row.Shape.String())
	}
	g.Render(w)
}

// Fig7aWorkloads are the ten FIU workloads of Figure 7.
var Fig7aWorkloads = []string{
	"topgun", "casa", "webmail", "homes", "mail+online",
	"ikki", "webresearch", "madmax", "webusers", "online",
}

// Fig7aResult reproduces Figure 7a: the distribution of Tmovd — the
// positioning cost the disk pays for random accesses beyond the
// linear (sequential) service model — for each FIU workload replayed
// on the enterprise-disk model.
type Fig7aResult struct {
	Series []report.CDFSeries // Tmovd in µs per workload
	// RepMovd is the representative Tmovd (max of the CDF derivative)
	// per workload, the T^rep_movd of Section III.
	RepMovd map[string]time.Duration
}

// Fig7a replays the FIU workloads on the HDD and measures the gap
// between measured random-access device time and the linear model
// fitted on sequential accesses.
func Fig7a(cfg Config) Fig7aResult {
	cfg = cfg.withDefaults()
	out := Fig7aResult{RepMovd: map[string]time.Duration{}}
	for _, name := range Fig7aWorkloads {
		p, _ := workload.Lookup(name)
		app := workload.Generate(p, workload.GenOptions{Ops: cfg.Ops, Seed: 7 ^ cfg.Seed})
		res := app.Execute(NewOldDevice())
		tr := res.Trace
		seq := tr.SeqFlags()
		// Fit the linear Tsdev model per op from sequential requests.
		betaR, tcdelR := fitLinear(tr, seq, trace.Read)
		betaW, tcdelW := fitLinear(tr, seq, trace.Write)
		var movd []float64
		for i, r := range tr.Requests {
			if seq[i] {
				continue
			}
			var linear float64
			if r.Op == trace.Read {
				linear = tcdelR + betaR*float64(r.Sectors)
			} else {
				linear = tcdelW + betaW*float64(r.Sectors)
			}
			real := float64(r.Latency) / float64(time.Microsecond)
			if d := real - linear; d > 0 {
				movd = append(movd, d)
			}
		}
		out.Series = append(out.Series, report.NewCDFSeries(name, movd))
		if res, ok := infer.ExamineSteepness(movd, infer.DefaultSteepnessOptions()); ok {
			out.RepMovd[name] = time.Duration(res.RiseMicros * float64(time.Microsecond))
		}
	}
	return out
}

// fitLinear least-squares fits latency = tcdel + beta*sectors over the
// sequential requests of one op type (µs units).
func fitLinear(t *trace.Trace, seq []bool, op trace.Op) (beta, tcdel float64) {
	var xs, ys []float64
	for i, r := range t.Requests {
		if !seq[i] || r.Op != op || r.Latency == 0 {
			continue
		}
		xs = append(xs, float64(r.Sectors))
		ys = append(ys, float64(r.Latency)/float64(time.Microsecond))
	}
	if len(xs) < 2 {
		return 0, 0
	}
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	n := float64(len(xs))
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, sy / n
	}
	beta = (n*sxy - sx*sy) / den
	tcdel = (sy - beta*sx) / n
	if beta < 0 {
		beta = 0
	}
	if tcdel < 0 {
		tcdel = 0
	}
	return beta, tcdel
}

// Render implements the textual figure.
func (r Fig7aResult) Render(w io.Writer) {
	report.RenderCDFs(w, "Fig 7a: CDF of Tmovd (FIU on enterprise disk)", r.Series...)
	t := &report.Table{Title: "Representative Tmovd", Headers: []string{"workload", "T_rep_movd"}}
	for _, name := range Fig7aWorkloads {
		t.AddRow(name, r.RepMovd[name])
	}
	t.Render(w)
}

// Fig7bResult reproduces Figure 7b: average channel delay per FIU
// workload for each access pattern.
type Fig7bResult struct {
	// Rows[workload][pattern] = average Tcdel; patterns are SeqW,
	// RandW, SeqR, RandR as in the figure's legend.
	Rows map[string]map[string]time.Duration
}

// Fig7bPatterns orders the figure's legend.
var Fig7bPatterns = []string{"SeqW", "RandW", "SeqR", "RandR"}

// Fig7b measures the modeled channel delay (command overhead plus
// interface transfer) per pattern. On the HDD model Tcdel depends only
// on size, so differences across patterns reflect each pattern's size
// mix — matching the paper's observation that Tcdel differs by op type
// but barely by access pattern (<8%).
func Fig7b(cfg Config) Fig7bResult {
	cfg = cfg.withDefaults()
	out := Fig7bResult{Rows: map[string]map[string]time.Duration{}}
	// The HDD profile's channel parameters.
	const cmdOverheadUS = 20.0
	const bytesPerSec = 300e6
	for _, name := range Fig7aWorkloads {
		p, _ := workload.Lookup(name)
		app := workload.Generate(p, workload.GenOptions{Ops: cfg.Ops, Seed: 7 ^ cfg.Seed})
		res := app.Execute(NewOldDevice())
		tr := res.Trace
		seq := tr.SeqFlags()
		sums := map[string]float64{}
		counts := map[string]int{}
		for i, r := range tr.Requests {
			pat := patternOf(seq[i], r.Op)
			tcdelUS := cmdOverheadUS + float64(r.Bytes())/bytesPerSec*1e6
			sums[pat] += tcdelUS
			counts[pat]++
		}
		row := map[string]time.Duration{}
		for _, pat := range Fig7bPatterns {
			if counts[pat] > 0 {
				row[pat] = time.Duration(sums[pat] / float64(counts[pat]) * float64(time.Microsecond))
			}
		}
		out.Rows[name] = row
	}
	return out
}

func patternOf(seq bool, op trace.Op) string {
	switch {
	case seq && op == trace.Read:
		return "SeqR"
	case seq:
		return "SeqW"
	case op == trace.Read:
		return "RandR"
	default:
		return "RandW"
	}
}

// Render implements the textual figure.
func (r Fig7bResult) Render(w io.Writer) {
	t := &report.Table{Title: "Fig 7b: average Tcdel per access pattern", Headers: append([]string{"workload"}, Fig7bPatterns...)}
	for _, name := range Fig7aWorkloads {
		cells := []any{name}
		for _, pat := range Fig7bPatterns {
			cells = append(cells, r.Rows[name][pat])
		}
		t.AddRow(cells...)
	}
	t.Render(w)
}

// Fig9Result reproduces Figure 9: fit a step-like CDF with natural
// spline and PCHIP and quantify the overshoot/oscillation of each.
type Fig9Result struct {
	SplineOvershoot  float64 // max excursion outside [0,1]
	PchipOvershoot   float64
	SplineMonotone   bool
	PchipMonotone    bool
	SplineViolations int // count of decreasing sample steps
}

// Fig9 runs the interpolation comparison.
func Fig9(cfg Config) Fig9Result {
	// A CDF with a sharp step — the shape real Tintt CDFs take.
	xs := []float64{1, 10, 100, 110, 120, 1000, 10000}
	ys := []float64{0, 0.02, 0.05, 0.80, 0.85, 0.95, 1.0}
	sp, _ := interp.NaturalSpline(xs, ys)
	pc, _ := interp.PCHIP(xs, ys)
	var r Fig9Result
	r.SplineMonotone, r.PchipMonotone = true, true
	evalOvershoot := func(f interp.Interpolant) (float64, bool, int) {
		max := 0.0
		mono := true
		viol := 0
		prev := math.Inf(-1)
		for x := xs[0]; x <= xs[len(xs)-1]; x += (xs[len(xs)-1] - xs[0]) / 4000 {
			v := f.At(x)
			if v < 0 && -v > max {
				max = -v
			}
			if v > 1 && v-1 > max {
				max = v - 1
			}
			if v < prev-1e-12 {
				mono = false
				viol++
			}
			prev = v
		}
		return max, mono, viol
	}
	r.SplineOvershoot, r.SplineMonotone, r.SplineViolations = evalOvershoot(sp)
	r.PchipOvershoot, r.PchipMonotone, _ = evalOvershoot(pc)
	return r
}

// Render implements the textual figure.
func (r Fig9Result) Render(w io.Writer) {
	t := &report.Table{Title: "Fig 9: spline vs pchip on a step CDF", Headers: []string{"fit", "overshoot", "monotone", "violations"}}
	t.AddRow("spline", fmt.Sprintf("%.4f", r.SplineOvershoot), r.SplineMonotone, r.SplineViolations)
	t.AddRow("pchip", fmt.Sprintf("%.4f", r.PchipOvershoot), r.PchipMonotone, 0)
	t.Render(w)
}

// Table1Result reproduces Table I: per-family trace counts, average
// request sizes and measured-in-generation statistics.
type Table1Result struct {
	Rows []Table1Row
}

// Table1Row is one workload family's line.
type Table1Row struct {
	Name, Set     string
	NumTraces     int
	PaperAvgKB    float64
	MeasuredAvgKB float64
	PaperTotalGB  float64
	ReadFrac      float64
}

// Table1 regenerates a sample trace per family and compares measured
// average request size against the paper's Table I.
func Table1(cfg Config) Table1Result {
	cfg = cfg.withDefaults()
	var out Table1Result
	for _, p := range workload.Profiles() {
		old, _ := GenerateOld(p, 0, cfg.Ops, cfg.Seed)
		out.Rows = append(out.Rows, Table1Row{
			Name: p.Name, Set: p.Set, NumTraces: p.NumTraces,
			PaperAvgKB:    p.AvgKB,
			MeasuredAvgKB: old.AvgRequestBytes() / 1024,
			PaperTotalGB:  p.TotalGB,
			ReadFrac:      old.ReadFraction(),
		})
	}
	return out
}

// Render implements the textual table.
func (r Table1Result) Render(w io.Writer) {
	t := &report.Table{
		Title:   "Table I: corpus characteristics (paper vs generated)",
		Headers: []string{"workload", "set", "#traces", "avgKB(paper)", "avgKB(gen)", "totalGB(paper)", "readFrac"},
	}
	total := 0
	for _, row := range r.Rows {
		t.AddRow(row.Name, row.Set, row.NumTraces,
			fmt.Sprintf("%.2f", row.PaperAvgKB),
			fmt.Sprintf("%.2f", row.MeasuredAvgKB),
			fmt.Sprintf("%.1f", row.PaperTotalGB),
			report.Percent(row.ReadFrac))
		total += row.NumTraces
	}
	t.Render(w)
	fmt.Fprintf(w, "total traces: %d\n", total)
}
