package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestFixedThSweepShape(t *testing.T) {
	r := FixedThSweep(small)
	if len(r.Rows) != 3 || len(r.MeanKS) != len(SweepThresholds) {
		t.Fatalf("shape: %d rows, %d means", len(r.Rows), len(r.MeanKS))
	}
	// The paper tuned to 10 ms from a 10-100 ms sweep; our substrate
	// must agree that mid-range thresholds beat the 100 ms extreme.
	last := r.MeanKS[len(r.MeanKS)-1]
	best := r.MeanKS[0]
	bestIdx := 0
	for i, ks := range r.MeanKS {
		if ks < best {
			best, bestIdx = ks, i
		}
	}
	if SweepThresholds[bestIdx] > 50*1e6 { // > 50ms in ns
		t.Fatalf("best threshold %v implausibly large", SweepThresholds[bestIdx])
	}
	if best >= last {
		t.Fatalf("tuned threshold (KS %.3f) should beat 100ms (KS %.3f)", best, last)
	}
	// Idle retention decreases with threshold (larger thresholds
	// swallow more genuine idle).
	for i := range r.Rows {
		first := r.Rows[i][0].IdleKept
		end := r.Rows[i][len(r.Rows[i])-1].IdleKept
		if end > first+1e-9 {
			t.Fatalf("%s: idle kept should not grow with threshold", r.Workloads[i])
		}
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "mean KS per threshold") {
		t.Fatal("render incomplete")
	}
}

func TestSimilarityOrdering(t *testing.T) {
	r, err := Similarity(small)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range r.Workloads {
		rows := r.PerWorkload[name]
		if len(rows) != 5 {
			t.Fatalf("%s: %d rows", name, len(rows))
		}
		byName := map[string]SimilarityRow{}
		for _, row := range rows {
			byName[row.Method] = row
			if row.KS < 0 || row.KS > 1 {
				t.Fatalf("%s/%s: KS %v out of range", name, row.Method, row.KS)
			}
		}
		// The idle-destroying methods displace orders of magnitude
		// more probability mass (W1) than the idle-aware ones.
		for _, bad := range []string{"Acceleration", "Revision"} {
			for _, good := range []string{"Dynamic", "TraceTracker"} {
				if byName[bad].W1Micros < 10*byName[good].W1Micros {
					t.Fatalf("%s: W1(%s)=%v should dwarf W1(%s)=%v",
						name, bad, byName[bad].W1Micros, good, byName[good].W1Micros)
				}
			}
		}
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "similarity") {
		t.Fatal("render incomplete")
	}
}

func TestGroundTruthRecovery(t *testing.T) {
	r, err := GroundTruth(Config{Ops: 1200})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 31 {
		t.Fatalf("rows: %d", len(r.Rows))
	}
	// The paper's headline: ~99% of delays detected, ~96% of periods
	// secured, on average. Our per-set secured fractions must be
	// high; the recorded-latency corpora (MSPS, MSRC) especially.
	for _, set := range []string{"MSPS", "MSRC"} {
		if r.SetAvg[set] < 0.85 {
			t.Fatalf("%s secured %.2f, want >= 0.85", set, r.SetAvg[set])
		}
	}
	if r.SetAvg["FIU"] < 0.60 {
		t.Fatalf("FIU secured %.2f, want >= 0.60 (inference path)", r.SetAvg["FIU"])
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "per-set secured idle") {
		t.Fatal("render incomplete")
	}
}

// TestFig13OrderingRobustToSeed reruns the headline method ordering
// under different seeds: the conclusion must not be a seed artifact.
func TestFig13OrderingRobustToSeed(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed sweep")
	}
	for _, seed := range []int64{0, 1, 2} {
		r, err := Fig13(Config{Ops: 600, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if r.Mean["Acceleration"] < 10*r.Mean["Dynamic"] ||
			r.Mean["Revision"] < 10*r.Mean["Dynamic"] {
			t.Fatalf("seed %d: idle-less methods no longer dominate: %v", seed, r.Mean)
		}
		if r.Mean["Fixed-th"] <= r.Mean["Dynamic"] {
			t.Fatalf("seed %d: Fixed-th should exceed Dynamic: %v", seed, r.Mean)
		}
	}
}
