package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/workload"
)

// IdleBuckets are Figure 17's idle-period groups.
var IdleBuckets = []string{"Tslat", "0-10ms", "10-100ms", ">100ms"}

// Fig16Row is one workload family's average idle period.
type Fig16Row struct {
	Workload, Set string
	AvgIdle       time.Duration
}

// Fig16Result reproduces Figure 16: the average Tidle per workload as
// estimated by TraceTracker's reconstruction.
type Fig16Result struct {
	Rows []Fig16Row
	// SetAvg aggregates per corpus (paper: MSPS 0.27 s, FIU 2.80 s,
	// MSRC 2.25 s modulo outliers).
	SetAvg map[string]time.Duration
}

// Fig16 reconstructs one trace per family and averages the inferred
// idle periods.
func Fig16(cfg Config) (Fig16Result, error) {
	cfg = cfg.withDefaults()
	out := Fig16Result{SetAvg: map[string]time.Duration{}}
	setSums := map[string]time.Duration{}
	setCounts := map[string]int{}
	for _, p := range workload.Profiles() {
		old, _ := GenerateOld(p, 0, cfg.Ops, cfg.Seed)
		_, rep, err := core.Reconstruct(old, NewTarget(), core.Options{})
		if err != nil {
			return out, fmt.Errorf("%s: %w", p.Name, err)
		}
		var avg time.Duration
		if rep.IdleCount > 0 {
			avg = rep.IdleTotal / time.Duration(rep.IdleCount)
		}
		out.Rows = append(out.Rows, Fig16Row{Workload: p.Name, Set: p.Set, AvgIdle: avg})
		setSums[p.Set] += avg
		setCounts[p.Set]++
	}
	for set, sum := range setSums {
		out.SetAvg[set] = sum / time.Duration(setCounts[set])
	}
	return out, nil
}

// Render implements the textual figure.
func (r Fig16Result) Render(w io.Writer) {
	t := &report.Table{Title: "Fig 16: average Tidle per workload", Headers: []string{"workload", "set", "avg Tidle"}}
	for _, row := range r.Rows {
		t.AddRow(row.Workload, row.Set, row.AvgIdle)
	}
	t.Render(w)
	s := &report.Table{Title: "per-set averages", Headers: []string{"set", "avg Tidle"}}
	for _, set := range []string{"MSPS", "FIU", "MSRC"} {
		s.AddRow(set, r.SetAvg[set])
	}
	s.Render(w)
}

// Fig17Row is one workload's Tintt breakdown.
type Fig17Row struct {
	Workload, Set string
	// Freq[b] is the fraction of requests in bucket b; Period[b] the
	// fraction of total Tintt duration. Index order is IdleBuckets.
	Freq, Period [4]float64
}

// Fig17Result reproduces Figure 17.
type Fig17Result struct {
	Rows []Fig17Row
	// SetIdleFreq is the per-set average idle frequency (sum of the
	// three idle buckets; paper: 70% MSPS, 31% FIU, 26% MSRC).
	SetIdleFreq map[string]float64
	// SetIdlePeriod is the per-set average idle share of total time
	// (paper: 87% MSPS, 99.8% FIU, 99.2% MSRC).
	SetIdlePeriod map[string]float64
}

// Fig17 decomposes each workload's total Tintt into service time and
// the three idle buckets, by request count and by duration.
func Fig17(cfg Config) (Fig17Result, error) {
	cfg = cfg.withDefaults()
	out := Fig17Result{SetIdleFreq: map[string]float64{}, SetIdlePeriod: map[string]float64{}}
	setFreq := map[string][]float64{}
	setPeriod := map[string][]float64{}
	for _, p := range workload.Profiles() {
		old, _ := GenerateOld(p, 0, cfg.Ops, cfg.Seed)
		_, rep, err := core.Reconstruct(old, NewTarget(), core.Options{})
		if err != nil {
			return out, fmt.Errorf("%s: %w", p.Name, err)
		}
		row := Fig17Row{Workload: p.Name, Set: p.Set}
		ia := old.InterArrivals()
		var counts [4]int
		var durs [4]time.Duration
		for i := 0; i < len(ia); i++ {
			idle := time.Duration(0)
			if i+1 < len(rep.Idle) {
				idle = rep.Idle[i+1]
			}
			slat := ia[i] - idle
			if slat > 0 {
				durs[0] += slat
			}
			switch {
			case idle == 0:
				counts[0]++
			case idle <= 10*time.Millisecond:
				counts[1]++
				durs[1] += idle
			case idle <= 100*time.Millisecond:
				counts[2]++
				durs[2] += idle
			default:
				counts[3]++
				durs[3] += idle
			}
		}
		total := len(ia)
		var totalDur time.Duration
		for _, d := range durs {
			totalDur += d
		}
		if total > 0 && totalDur > 0 {
			for b := 0; b < 4; b++ {
				row.Freq[b] = float64(counts[b]) / float64(total)
				row.Period[b] = float64(durs[b]) / float64(totalDur)
			}
		}
		out.Rows = append(out.Rows, row)
		setFreq[p.Set] = append(setFreq[p.Set], row.Freq[1]+row.Freq[2]+row.Freq[3])
		setPeriod[p.Set] = append(setPeriod[p.Set], row.Period[1]+row.Period[2]+row.Period[3])
	}
	mean := func(xs []float64) float64 {
		var s float64
		for _, x := range xs {
			s += x
		}
		if len(xs) == 0 {
			return 0
		}
		return s / float64(len(xs))
	}
	for set := range setFreq {
		out.SetIdleFreq[set] = mean(setFreq[set])
		out.SetIdlePeriod[set] = mean(setPeriod[set])
	}
	return out, nil
}

// Render implements the textual figure.
func (r Fig17Result) Render(w io.Writer) {
	freq := &report.Table{Title: "Fig 17 (top): breakdown by frequency", Headers: append([]string{"workload"}, IdleBuckets...)}
	period := &report.Table{Title: "Fig 17 (bottom): breakdown by period", Headers: append([]string{"workload"}, IdleBuckets...)}
	for _, row := range r.Rows {
		fc := []any{row.Workload}
		pc := []any{row.Workload}
		for b := 0; b < 4; b++ {
			fc = append(fc, report.Percent(row.Freq[b]))
			pc = append(pc, report.Percent(row.Period[b]))
		}
		freq.AddRow(fc...)
		period.AddRow(pc...)
	}
	freq.Render(w)
	period.Render(w)
	s := &report.Table{Title: "per-set idle share", Headers: []string{"set", "idle freq", "idle period"}}
	for _, set := range []string{"MSPS", "FIU", "MSRC"} {
		s.AddRow(set, report.Percent(r.SetIdleFreq[set]), report.Percent(r.SetIdlePeriod[set]))
	}
	s.Render(w)
}

// ClaimsResult checks the introduction's corpus-wide claims: the share
// of requests with idle intervals (paper: below 39%) and where the
// bulk of idle periods fall (paper: the majority within 1 ms... i.e.
// short idles dominate by count).
type ClaimsResult struct {
	IdleBearingFrac float64
	IdleWithin1ms   float64
	MedianIdle      time.Duration
}

// Claims sweeps the corpus and aggregates idle statistics.
func Claims(cfg Config) (ClaimsResult, error) {
	cfg = cfg.withDefaults()
	var out ClaimsResult
	totalReq, idleReq, idleShort := 0, 0, 0
	var idles []time.Duration
	for _, p := range workload.Profiles() {
		old, _ := GenerateOld(p, 0, cfg.Ops, cfg.Seed)
		_, rep, err := core.Reconstruct(old, NewTarget(), core.Options{})
		if err != nil {
			return out, fmt.Errorf("%s: %w", p.Name, err)
		}
		totalReq += old.Len()
		for _, d := range rep.Idle {
			if d > 0 {
				idleReq++
				idles = append(idles, d)
				if d <= time.Millisecond {
					idleShort++
				}
			}
		}
	}
	if totalReq > 0 {
		out.IdleBearingFrac = float64(idleReq) / float64(totalReq)
	}
	if idleReq > 0 {
		out.IdleWithin1ms = float64(idleShort) / float64(idleReq)
		out.MedianIdle = medianDur(idles)
	}
	return out, nil
}

func medianDur(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	us := make([]float64, len(ds))
	for i, d := range ds {
		us[i] = float64(d) / float64(time.Microsecond)
	}
	return time.Duration(stats.Median(us) * float64(time.Microsecond))
}

// Render implements the textual summary.
func (r ClaimsResult) Render(w io.Writer) {
	t := &report.Table{Title: "Introduction claims", Headers: []string{"claim", "paper", "measured"}}
	t.AddRow("requests with idle intervals", "< 39%", report.Percent(r.IdleBearingFrac))
	t.AddRow("idle periods within 1 ms", "majority", report.Percent(r.IdleWithin1ms))
	t.AddRow("median idle period", "~1 ms", r.MedianIdle)
	t.Render(w)
}
