package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/infer"
	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/verify"
	"repro/internal/workload"
)

// --- Extension 1: Fixed-th threshold sweep -------------------------
//
// The paper tunes Fixed-th's threshold by sweeping 10–100 ms on an
// HDD node and picking 10 ms. This experiment reruns that tuning on
// the simulated substrate, scoring each threshold by how close the
// reconstructed inter-arrival distribution lands to the ground-truth
// NEW-system trace (which the synthetic corpus provides exactly).

// SweepThresholds are the candidate Fixed-th values.
var SweepThresholds = []time.Duration{
	1 * time.Millisecond, 5 * time.Millisecond, 10 * time.Millisecond,
	20 * time.Millisecond, 50 * time.Millisecond, 100 * time.Millisecond,
}

// SweepRow scores one threshold on one workload.
type SweepRow struct {
	Threshold time.Duration
	// AvgGap is the mean |ΔTintt| against the ground-truth NEW trace.
	AvgGap time.Duration
	// KS is the Kolmogorov–Smirnov distance between the Tintt
	// distributions.
	KS float64
	// IdleKept is the fraction of ground-truth think time retained.
	IdleKept float64
}

// FixedThSweepResult aggregates the sweep over a workload sample.
type FixedThSweepResult struct {
	Workloads []string
	// Rows[i][j]: workload i, threshold j.
	Rows [][]SweepRow
	// MeanKS[j] averages KS across workloads for threshold j.
	MeanKS []float64
}

// FixedThSweep runs the tuning on three representative families (one
// per corpus).
func FixedThSweep(cfg Config) FixedThSweepResult {
	cfg = cfg.withDefaults()
	out := FixedThSweepResult{Workloads: []string{"MSNFS", "ikki", "web"}}
	ksSums := make([]float64, len(SweepThresholds))
	for _, name := range out.Workloads {
		p, _ := workload.Lookup(name)
		app := workload.Generate(p, workload.GenOptions{Ops: cfg.Ops, Seed: 21 ^ cfg.Seed})
		oldRes := app.Execute(NewOldDevice())
		newRes := app.Execute(NewTarget())
		old := oldRes.Trace
		old.TsdevKnown = false
		truthIdle := newRes.TotalThink()
		truthIA := inttMicros(newRes.Trace)

		var rows []SweepRow
		for j, th := range SweepThresholds {
			rec := baseline.FixedTh(old, NewTarget(), th)
			avg, _ := core.InterArrivalGap(rec, newRes.Trace)
			ks := stats.KolmogorovSmirnov(inttMicros(rec), truthIA)
			rows = append(rows, SweepRow{
				Threshold: th,
				AvgGap:    avg,
				KS:        ks,
				IdleKept:  idleKeptFrac(rec, truthIdle),
			})
			ksSums[j] += ks
		}
		out.Rows = append(out.Rows, rows)
	}
	out.MeanKS = make([]float64, len(SweepThresholds))
	for j := range SweepThresholds {
		out.MeanKS[j] = ksSums[j] / float64(len(out.Workloads))
	}
	return out
}

func idleKeptFrac(t *trace.Trace, truth time.Duration) float64 {
	if truth == 0 {
		return 0
	}
	var sum time.Duration
	ia := t.InterArrivals()
	for i := 0; i < len(ia); i++ {
		if excess := ia[i] - t.Requests[i].Latency; excess > 0 {
			sum += excess
		}
	}
	f := float64(sum) / float64(truth)
	if f > 1 {
		f = 1
	}
	return f
}

// Render implements the textual report.
func (r FixedThSweepResult) Render(w io.Writer) {
	for i, name := range r.Workloads {
		t := &report.Table{
			Title:   "Fixed-th threshold sweep: " + name,
			Headers: []string{"threshold", "avg |dTintt| vs NEW", "KS", "idle kept"},
		}
		for _, row := range r.Rows[i] {
			t.AddRow(report.FormatDuration(row.Threshold), row.AvgGap,
				fmt.Sprintf("%.3f", row.KS), report.Percent(row.IdleKept))
		}
		t.Render(w)
	}
	t := &report.Table{Title: "mean KS per threshold", Headers: []string{"threshold", "mean KS"}}
	for j, th := range SweepThresholds {
		t.AddRow(report.FormatDuration(th), fmt.Sprintf("%.3f", r.MeanKS[j]))
	}
	t.Render(w)
}

// --- Extension 2: distribution similarity per method ---------------
//
// A quantitative companion to Fig 12: for each method, the KS and
// first-Wasserstein distances between its reconstructed inter-arrival
// distribution and the ground-truth NEW-system trace.

// SimilarityRow scores one method on one workload.
type SimilarityRow struct {
	Method string
	KS     float64
	// W1Micros is the Wasserstein-1 distance in µs: the average
	// amount of time each unit of probability mass was displaced.
	W1Micros float64
}

// SimilarityResult holds the per-workload method scores.
type SimilarityResult struct {
	// PerWorkload[name] lists the five methods' scores.
	PerWorkload map[string][]SimilarityRow
	Workloads   []string
}

// Similarity scores all five methods on three families.
func Similarity(cfg Config) (SimilarityResult, error) {
	cfg = cfg.withDefaults()
	out := SimilarityResult{
		PerWorkload: map[string][]SimilarityRow{},
		Workloads:   []string{"MSNFS", "homes", "src2"},
	}
	methods := []baseline.Method{
		baseline.MethodAcceleration, baseline.MethodRevision,
		baseline.MethodFixedTh, baseline.MethodDynamic, baseline.MethodTraceTracker,
	}
	for _, name := range out.Workloads {
		p, _ := workload.Lookup(name)
		app := workload.Generate(p, workload.GenOptions{Ops: cfg.Ops, Seed: 22 ^ cfg.Seed})
		oldRes := app.Execute(NewOldDevice())
		newRes := app.Execute(NewTarget())
		old := oldRes.Trace
		old.TsdevKnown = false
		truthIA := inttMicros(newRes.Trace)
		for _, m := range methods {
			rec, err := baseline.Run(m, old, NewTarget())
			if err != nil {
				return out, fmt.Errorf("%s/%s: %w", name, m, err)
			}
			recIA := inttMicros(rec)
			out.PerWorkload[name] = append(out.PerWorkload[name], SimilarityRow{
				Method:   m.String(),
				KS:       stats.KolmogorovSmirnov(recIA, truthIA),
				W1Micros: stats.Wasserstein1(recIA, truthIA),
			})
		}
	}
	return out, nil
}

// Render implements the textual report.
func (r SimilarityResult) Render(w io.Writer) {
	for _, name := range r.Workloads {
		t := &report.Table{
			Title:   "distribution similarity vs ground truth: " + name,
			Headers: []string{"method", "KS", "W1"},
		}
		for _, row := range r.PerWorkload[name] {
			t.AddRow(row.Method, fmt.Sprintf("%.3f", row.KS),
				report.FormatDuration(time.Duration(row.W1Micros*float64(time.Microsecond))))
		}
		t.Render(w)
	}
}

// --- Extension 3: ground-truth verification ------------------------
//
// The paper can only verify against idles it injected itself, because
// the real traces' natural idles are unlabeled. The synthetic corpus
// knows every think time, so this experiment scores the inference
// against the *natural* idle structure of each family — per corpus,
// how much of the genuine user idle does reconstruction secure?

// GroundTruthRow is one family's score.
type GroundTruthRow struct {
	Workload, Set string
	// SecuredFrac is Σ min(estimated, truth) / Σ truth over all
	// instructions with genuine think time.
	SecuredFrac float64
	// DetectFrac is the fraction of genuinely idle instructions the
	// model flagged.
	DetectFrac float64
}

// GroundTruthResult aggregates per family and per corpus.
type GroundTruthResult struct {
	Rows   []GroundTruthRow
	SetAvg map[string]float64 // secured fraction per corpus
}

// GroundTruth sweeps all 31 families.
func GroundTruth(cfg Config) (GroundTruthResult, error) {
	cfg = cfg.withDefaults()
	out := GroundTruthResult{SetAvg: map[string]float64{}}
	sums := map[string]float64{}
	counts := map[string]int{}
	for _, p := range workload.Profiles() {
		old, truth := GenerateOld(p, 0, cfg.Ops, cfg.Seed)
		var est []time.Duration
		if old.TsdevKnown {
			est, _ = infer.Decompose(nil, old)
		} else {
			m, err := infer.Estimate(old, infer.EstimateOptions{})
			if err != nil {
				return out, fmt.Errorf("%s: %w", p.Name, err)
			}
			est, _ = infer.Decompose(m, old)
		}
		// Ground truth think[i] precedes instruction i's issue; the
		// decomposition attributes idle to the following instruction,
		// so the indexing already matches (think[i] ~ est[i]).
		truthIdle := make([]time.Duration, len(truth.Think))
		copy(truthIdle, truth.Think)
		met := verify.Evaluate(truthIdle, est)
		row := GroundTruthRow{
			Workload:    p.Name,
			Set:         p.Set,
			SecuredFrac: met.LenTPSecured(),
			DetectFrac:  met.DetectionTP(),
		}
		out.Rows = append(out.Rows, row)
		sums[p.Set] += row.SecuredFrac
		counts[p.Set]++
	}
	for set, sum := range sums {
		out.SetAvg[set] = sum / float64(counts[set])
	}
	return out, nil
}

// Render implements the textual report.
func (r GroundTruthResult) Render(w io.Writer) {
	t := &report.Table{
		Title:   "natural-idle recovery vs ground truth (all 31 families)",
		Headers: []string{"workload", "set", "detected", "secured"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Workload, row.Set,
			report.Percent(row.DetectFrac), report.Percent(row.SecuredFrac))
	}
	t.Render(w)
	s := &report.Table{Title: "per-set secured idle", Headers: []string{"set", "secured"}}
	for _, set := range []string{"MSPS", "FIU", "MSRC"} {
		s.AddRow(set, report.Percent(r.SetAvg[set]))
	}
	s.Render(w)
}
