package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestFTLImpactOrdering(t *testing.T) {
	r, err := FTLImpact(Config{Ops: 3000})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 6 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	byName := map[string]FTLImpactRow{}
	for _, row := range r.Rows {
		byName[row.Method] = row
	}
	target := byName["Target(old)"]
	tt := byName["TraceTracker"]
	rev := byName["Revision"]
	// Revision destroyed the idle budget: its foreground share must
	// exceed both the target's and TraceTracker's.
	if rev.ForegroundShare <= target.ForegroundShare {
		t.Fatalf("Revision foreground %v should exceed target %v",
			rev.ForegroundShare, target.ForegroundShare)
	}
	if rev.ForegroundShare <= tt.ForegroundShare {
		t.Fatalf("Revision foreground %v should exceed TraceTracker %v",
			rev.ForegroundShare, tt.ForegroundShare)
	}
	// TraceTracker preserves the background budget: idle GC time in
	// the same regime as the target's (within 2x).
	if target.IdleUsed > 0 {
		ratio := float64(tt.IdleUsed) / float64(target.IdleUsed)
		if ratio < 0.5 || ratio > 2 {
			t.Fatalf("TraceTracker idle GC %v vs target %v (ratio %.2f)",
				tt.IdleUsed, target.IdleUsed, ratio)
		}
	}
	// Revision gets no background budget at all.
	if rev.IdleUsed > target.IdleUsed/10 {
		t.Fatalf("Revision idle GC %v should be starved (target %v)",
			rev.IdleUsed, target.IdleUsed)
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "FTL study") {
		t.Fatal("render incomplete")
	}
}
