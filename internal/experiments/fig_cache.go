package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/hoststack"
	"repro/internal/report"
	"repro/internal/trace"
	"repro/internal/workload"
)

// --- Extension 5: traces collected underneath a page cache ---------
//
// The paper's Background (Fig 2a) stresses that public block traces
// are captured underneath the block layer: the page cache above it
// absorbs read hits, defers writes, and prefetches — so the
// block-level trace differs from the application behaviour in exactly
// the ways that make timing reconstruction hard. This experiment runs
// the same application twice, raw and behind a write-back page cache,
// and shows (a) how the cache reshapes the block trace and (b) that
// TraceTracker still reconstructs the cache-shaped trace's idle
// structure.

// CacheImpactResult compares raw vs cached collection.
type CacheImpactResult struct {
	Workload string
	// HitRate is the cache's read hit rate.
	HitRate float64
	// RawRequests / CachedRequests are the block-layer request counts
	// (the cache absorbs hits and batches flushes).
	RawRequests, CachedRequests int
	// RawReadFrac / CachedReadFrac show the op-mix shift (buffered
	// writes surface as flusher writes).
	RawReadFrac, CachedReadFrac float64
	// RawMedianIntt / CachedMedianIntt summarize the timing reshaping.
	RawMedianIntt, CachedMedianIntt time.Duration
	// ReconstructedIdle / RawIdle are the idle totals TraceTracker
	// recovers from each collection.
	RawIdle, CachedIdle time.Duration
	// Series for the textual CDF plot.
	RawCDF, CachedCDF report.CDFSeries
}

// CacheImpact runs the webmail application raw and behind the cache.
func CacheImpact(cfg Config) (CacheImpactResult, error) {
	cfg = cfg.withDefaults()
	out := CacheImpactResult{Workload: "webmail"}
	p, _ := workload.Lookup("webmail")
	app := workload.Generate(p, workload.GenOptions{Ops: cfg.Ops, Seed: 31 ^ cfg.Seed})

	// Raw collection: the application drives the HDD directly.
	rawRes := app.Execute(NewOldDevice())
	raw := rawRes.Trace
	raw.TsdevKnown = false

	// Cached collection: same application, same disk, but through the
	// host stack; the block trace is what blktrace sees below the
	// cache.
	cacheCfg := hoststack.DefaultConfig()
	cacheCfg.CachePages = 8192 // 32 MiB: pressure at experiment scale
	host := hoststack.New(cacheCfg, NewOldDevice())
	app.Execute(host)
	cached := host.BlockTrace().Clone()
	cached.Name = "webmail-cached"
	cached.Workload = p.Name
	cached.TsdevKnown = false
	for i := range cached.Requests {
		cached.Requests[i].Latency = 0
	}

	out.HitRate = host.HitRate()
	out.RawRequests = raw.Len()
	out.CachedRequests = cached.Len()
	out.RawReadFrac = raw.ReadFraction()
	out.CachedReadFrac = cached.ReadFraction()
	out.RawMedianIntt = medianIntt(raw)
	out.CachedMedianIntt = medianIntt(cached)
	out.RawCDF = report.NewCDFSeries("raw", inttMicros(raw))
	out.CachedCDF = report.NewCDFSeries("cached", inttMicros(cached))

	// Reconstruct both with TraceTracker and compare recovered idle.
	for _, tc := range []struct {
		tr   *trace.Trace
		into *time.Duration
	}{
		{raw, &out.RawIdle},
		{cached, &out.CachedIdle},
	} {
		_, rep, err := core.Reconstruct(tc.tr, NewTarget(), core.Options{})
		if err != nil {
			return out, fmt.Errorf("%s: %w", tc.tr.Name, err)
		}
		*tc.into = rep.IdleTotal
	}
	return out, nil
}

// Render implements the textual report.
func (r CacheImpactResult) Render(w io.Writer) {
	t := &report.Table{
		Title:   "block traces above vs below the page cache (" + r.Workload + ")",
		Headers: []string{"metric", "raw", "cached"},
	}
	t.AddRow("block requests", r.RawRequests, r.CachedRequests)
	t.AddRow("read fraction", report.Percent(r.RawReadFrac), report.Percent(r.CachedReadFrac))
	t.AddRow("median Tintt", r.RawMedianIntt, r.CachedMedianIntt)
	t.AddRow("recovered idle (TT)", r.RawIdle, r.CachedIdle)
	t.Render(w)
	fmt.Fprintf(w, "cache read hit rate: %s\n", report.Percent(r.HitRate))
	report.RenderCDFs(w, "Tintt CDF, raw vs cached collection", r.RawCDF, r.CachedCDF)
}
