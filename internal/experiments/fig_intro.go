package experiments

import (
	"io"
	"time"

	"repro/internal/baseline"
	"repro/internal/report"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Fig1Result reproduces Figure 1: the CDF of inter-arrival times seen
// on the OLD system, the NEW system (same application), and the
// Acceleration / Revision reconstructions of the OLD trace.
type Fig1Result struct {
	Old, New, Revision, Acceleration report.CDFSeries
	// ShorterFrac is the fraction of Acceleration inter-arrivals
	// shorter than NEW's at matching instruction positions (the
	// paper: first half of the CDF is shorter by 88% on average,
	// losing 98% of user idles).
	AccelShorterFrac float64
	// RevisionIdleLossFrac is the fraction of NEW-trace idle period
	// lost by Revision (paper: 69% of total idle periods).
	RevisionIdleLossFrac float64
}

// Fig1 runs the motivating experiment. The paper issues 70M
// MSNFS-patterned instructions with ~20% injected user idles, 14M of
// them asynchronous; this reproduction runs the same pattern at
// cfg.Ops scale (the distributions stabilize by tens of thousands).
func Fig1(cfg Config) Fig1Result {
	cfg = cfg.withDefaults()
	p, _ := workload.Lookup("MSNFS")
	p.IdleFreq = 0.20  // the paper's injected idle share
	p.AsyncFrac = 0.20 // 14M of 70M instructions

	app := workload.Generate(p, workload.GenOptions{Ops: cfg.Ops, Seed: 1 ^ cfg.Seed})
	oldRes := app.Execute(NewOldDevice())
	newRes := app.Execute(NewTarget())
	old := oldRes.Trace
	old.TsdevKnown = false

	acc := baseline.Acceleration(old, baseline.DefaultAccelerationFactor)
	rev := baseline.Revision(old, NewTarget())

	r := Fig1Result{
		Old:          report.NewCDFSeries("OLD", inttMicros(old)),
		New:          report.NewCDFSeries("NEW", inttMicros(newRes.Trace)),
		Revision:     report.NewCDFSeries("Revision", inttMicros(rev)),
		Acceleration: report.NewCDFSeries("Acceleration", inttMicros(acc)),
	}

	newIA := newRes.Trace.InterArrivals()
	accIA := acc.InterArrivals()
	shorter := 0
	for i := range newIA {
		if accIA[i] < newIA[i] {
			shorter++
		}
	}
	if len(newIA) > 0 {
		r.AccelShorterFrac = float64(shorter) / float64(len(newIA))
	}

	// Idle mass: think time is ground truth on the NEW system;
	// Revision's total duration beyond pure service approximates the
	// idle it retained (closed loop retains none).
	newIdle := newRes.TotalThink()
	revIdle := idleMassAbove(rev)
	if newIdle > 0 {
		r.RevisionIdleLossFrac = 1 - float64(revIdle)/float64(newIdle)
		if r.RevisionIdleLossFrac < 0 {
			r.RevisionIdleLossFrac = 0
		}
	}
	return r
}

// idleMassAbove estimates how much think time a reconstructed trace
// retained: the sum of its inter-arrivals in excess of the matching
// new-system service times.
func idleMassAbove(t *trace.Trace) time.Duration {
	var sum time.Duration
	ia := t.InterArrivals()
	for i := 0; i < len(ia); i++ {
		svc := t.Requests[i].Latency
		if ia[i] > svc {
			sum += ia[i] - svc
		}
	}
	return sum
}

// Render implements the textual figure.
func (r Fig1Result) Render(w io.Writer) {
	report.RenderCDFs(w, "Fig 1: CDF of inter-arrival times (MSNFS pattern)",
		r.Old, r.New, r.Revision, r.Acceleration)
	t := &report.Table{Headers: []string{"metric", "value"}}
	t.AddRow("Acceleration Tintt shorter than NEW", report.Percent(r.AccelShorterFrac))
	t.AddRow("Revision idle-period loss vs NEW", report.Percent(r.RevisionIdleLossFrac))
	t.Render(w)
}

// Fig3Workloads are the five open-license traces Figure 3 compares.
var Fig3Workloads = []string{"MSNFS", "webusers", "Exchange", "homes", "wdev"}

// Fig3Row is one workload's longer/equal/shorter breakdown for one
// method.
type Fig3Row struct {
	Workload               string
	Longer, Equal, Shorter float64
}

// Fig3Result reproduces Figure 3: per-instruction comparison of
// reconstructed inter-arrival times against the real NEW system.
type Fig3Result struct {
	Acceleration []Fig3Row // Fig 3a
	Revision     []Fig3Row // Fig 3b
}

// equalTolerance matches the paper's "equal" band: reconstructed
// inter-arrivals within ±10% of the NEW system's count as equal.
const equalTolerance = 0.10

// Fig3 runs the comparison for the five workloads.
func Fig3(cfg Config) Fig3Result {
	cfg = cfg.withDefaults()
	var out Fig3Result
	for _, name := range Fig3Workloads {
		p, _ := workload.Lookup(name)
		app := workload.Generate(p, workload.GenOptions{Ops: cfg.Ops, Seed: 3 ^ cfg.Seed})
		oldRes := app.Execute(NewOldDevice())
		newRes := app.Execute(NewTarget())
		old := oldRes.Trace
		old.TsdevKnown = false

		acc := baseline.Acceleration(old, baseline.DefaultAccelerationFactor)
		rev := baseline.Revision(old, NewTarget())
		out.Acceleration = append(out.Acceleration, breakdown(name, acc, newRes.Trace))
		out.Revision = append(out.Revision, breakdown(name, rev, newRes.Trace))
	}
	return out
}

func breakdown(name string, got, ref *trace.Trace) Fig3Row {
	gi, ri := got.InterArrivals(), ref.InterArrivals()
	n := len(gi)
	if len(ri) < n {
		n = len(ri)
	}
	row := Fig3Row{Workload: name}
	if n == 0 {
		return row
	}
	var longer, equal, shorter int
	for i := 0; i < n; i++ {
		g, r := float64(gi[i]), float64(ri[i])
		switch {
		case g > r*(1+equalTolerance):
			longer++
		case g < r*(1-equalTolerance):
			shorter++
		default:
			equal++
		}
	}
	row.Longer = float64(longer) / float64(n)
	row.Equal = float64(equal) / float64(n)
	row.Shorter = float64(shorter) / float64(n)
	return row
}

// Render implements the textual figure.
func (r Fig3Result) Render(w io.Writer) {
	render := func(title string, rows []Fig3Row) {
		t := &report.Table{Title: title, Headers: []string{"workload", "longer", "equal", "shorter"}}
		for _, row := range rows {
			t.AddRow(row.Workload, report.Percent(row.Longer), report.Percent(row.Equal), report.Percent(row.Shorter))
		}
		t.Render(w)
	}
	render("Fig 3a: Acceleration vs NEW", r.Acceleration)
	render("Fig 3b: Revision vs NEW", r.Revision)
}
