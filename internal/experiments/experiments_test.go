package experiments

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/infer"
	"repro/internal/workload"
)

// small keeps unit-test runtime low; the benches run larger scales.

var small = Config{Ops: 1500, TracesPerFamily: 1}

func TestFig1Shape(t *testing.T) {
	r := Fig1(small)
	// Acceleration must be overwhelmingly shorter than NEW (paper:
	// 98.6% of inter-arrivals).
	if r.AccelShorterFrac < 0.80 {
		t.Fatalf("Acceleration shorter-than-NEW fraction %.2f, want > 0.80", r.AccelShorterFrac)
	}
	// Revision loses the bulk of idle periods (paper: 69%).
	if r.RevisionIdleLossFrac < 0.4 {
		t.Fatalf("Revision idle loss %.2f, want > 0.4", r.RevisionIdleLossFrac)
	}
	// OLD medians must exceed NEW medians (slower device).
	oldMedian := r.Old.Values[3]
	newMedian := r.New.Values[3]
	if oldMedian <= newMedian {
		t.Fatalf("OLD median %v should exceed NEW median %v", oldMedian, newMedian)
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "Fig 1") {
		t.Fatal("render missing title")
	}
}

func TestFig3Shape(t *testing.T) {
	r := Fig3(small)
	if len(r.Acceleration) != 5 || len(r.Revision) != 5 {
		t.Fatalf("rows: %d/%d", len(r.Acceleration), len(r.Revision))
	}
	for _, row := range r.Acceleration {
		total := row.Longer + row.Equal + row.Shorter
		if total < 0.999 || total > 1.001 {
			t.Fatalf("%s: breakdown sums to %v", row.Workload, total)
		}
		// Acceleration's dominant bucket is "shorter" (paper Fig 3a).
		if row.Shorter < row.Longer {
			t.Fatalf("%s: acceleration should skew shorter (%+v)", row.Workload, row)
		}
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "Fig 3a") || !strings.Contains(buf.String(), "wdev") {
		t.Fatal("render incomplete")
	}
}

func TestFig5Classification(t *testing.T) {
	r := Fig5(small)
	if r.Synthetic["global-maxima"] != infer.ShapeGlobalMaxima {
		t.Fatalf("unimodal classified %v", r.Synthetic["global-maxima"])
	}
	if r.Synthetic["chunky-middle"] != infer.ShapeChunkyMiddle {
		t.Fatalf("chunky classified %v", r.Synthetic["chunky-middle"])
	}
	if r.Synthetic["multi-maxima"] != infer.ShapeMultiMaxima {
		t.Fatalf("bimodal classified %v", r.Synthetic["multi-maxima"])
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "taxonomy") {
		t.Fatal("render incomplete")
	}
}

func TestFig7aTmovdMagnitude(t *testing.T) {
	r := Fig7a(small)
	if len(r.Series) != 10 {
		t.Fatalf("series count %d", len(r.Series))
	}
	// Representative Tmovd on a 7200rpm disk must be in the
	// milliseconds (seek + rotation).
	for _, name := range Fig7aWorkloads {
		rep, ok := r.RepMovd[name]
		if !ok {
			continue
		}
		if rep < 500*time.Microsecond || rep > 50*time.Millisecond {
			t.Fatalf("%s: representative Tmovd %v outside disk regime", name, rep)
		}
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "Tmovd") {
		t.Fatal("render incomplete")
	}
}

func TestFig7bTcdelSmall(t *testing.T) {
	r := Fig7b(small)
	for name, row := range r.Rows {
		for pat, d := range row {
			// Channel delays are tens of µs (paper Fig 7b: < 30 µs).
			if d < time.Microsecond || d > 500*time.Microsecond {
				t.Fatalf("%s/%s: Tcdel %v implausible", name, pat, d)
			}
		}
		// Sequential vs random Tcdel of the same op should be close
		// (paper: < 8% reads, < 6% writes — ours differ only via the
		// size mix, so allow 30%).
		if sr, rr := row["SeqR"], row["RandR"]; sr > 0 && rr > 0 {
			ratio := float64(sr) / float64(rr)
			if ratio < 0.7 || ratio > 1.3 {
				t.Fatalf("%s: SeqR/RandR Tcdel ratio %.2f", name, ratio)
			}
		}
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "Tcdel") {
		t.Fatal("render incomplete")
	}
}

func TestFig9SplineVsPchip(t *testing.T) {
	r := Fig9(small)
	if r.PchipOvershoot > 1e-9 {
		t.Fatalf("PCHIP overshoot %v, want none", r.PchipOvershoot)
	}
	if !r.PchipMonotone {
		t.Fatal("PCHIP must stay monotone")
	}
	if r.SplineOvershoot <= 0 && r.SplineMonotone {
		t.Fatal("spline should overshoot or oscillate on step data (Fig 9)")
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "pchip") {
		t.Fatal("render incomplete")
	}
}

func TestTable1Corpus(t *testing.T) {
	r := Table1(small)
	if len(r.Rows) != 31 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	total := 0
	for _, row := range r.Rows {
		total += row.NumTraces
		// Generated averages should land within 60% of Table I's
		// (power-of-two anchors quantize the mixture).
		lo, hi := row.PaperAvgKB*0.4, row.PaperAvgKB*1.7
		if row.MeasuredAvgKB < lo || row.MeasuredAvgKB > hi {
			t.Fatalf("%s: measured %0.2f KB vs paper %0.2f KB", row.Name, row.MeasuredAvgKB, row.PaperAvgKB)
		}
	}
	if total != 577 {
		t.Fatalf("corpus total %d, want 577", total)
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "577") {
		t.Fatal("render incomplete")
	}
}

func TestFig10VerificationShape(t *testing.T) {
	r := Fig10(small)
	for _, g := range []VerifyGroupResult{r.Known, r.Unknown} {
		if len(g.PerPeriod) != len(VerifyPeriods) {
			t.Fatalf("%s: period count %d", g.Group, len(g.PerPeriod))
		}
	}
	// The recorded-latency group detects the bulk of idles at >= 1 ms.
	// Injections landing right after an asynchronous burst can be
	// swallowed by the predecessor's queue-inflated service time, so
	// detection tops out below 100% — the paper's own Detection(TP)
	// spans 82.2%–99.7%.
	for i := 1; i < len(VerifyPeriods); i++ {
		if det := r.Known.PerPeriod[i].DetectionTP(); det < 0.70 {
			t.Fatalf("known group detection at %v = %.2f", VerifyPeriods[i], det)
		}
		if lr := r.Known.PerPeriod[i].LenTPRatio; lr < 0.70 || lr > 1.30 {
			t.Fatalf("known group Len(TP) at %v = %.2f", VerifyPeriods[i], lr)
		}
	}
	// The inference group improves with period: 100 ms beats 100 µs.
	first := r.Unknown.PerPeriod[0].LenTPRatio
	last := r.Unknown.PerPeriod[len(VerifyPeriods)-1].LenTPRatio
	if last < 0.80 || last > 1.20 {
		t.Fatalf("unknown group Len(TP) at 100ms = %.3f", last)
	}
	// At 100µs the ratio may over- or under-shoot, but accuracy
	// |1-ratio| must not be better than at 100ms by a wide margin...
	// the robust check: the long-period estimate is closer to 1.
	if abs(1-last) > abs(1-first)+0.05 {
		t.Fatalf("verification should improve with period: %v vs %v", first, last)
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "Len(TP)") {
		t.Fatal("render incomplete")
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestFig11FalsePositives(t *testing.T) {
	r := Fig11(small)
	// Recorded-latency decomposition on an idle-free base should
	// produce almost no FPs; inference some, but bounded.
	if r.UnknownMean > 50*time.Millisecond {
		t.Fatalf("unknown-group Len(FP) mean %v too large", r.UnknownMean)
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "Len(FP)") {
		t.Fatal("render incomplete")
	}
}

func TestFig12Panels(t *testing.T) {
	r, err := Fig12(small)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Unaware) != 4 || len(r.Aware) != 4 {
		t.Fatalf("panel sizes %d/%d", len(r.Unaware), len(r.Aware))
	}
	// Acceleration's median is far below Target's (100x shift).
	target, accel := r.Unaware[0], r.Unaware[1]
	if accel.Values[3] >= target.Values[3]/10 {
		t.Fatalf("acceleration median %v not ~100x below target %v", accel.Values[3], target.Values[3])
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "Fig 12a") || !strings.Contains(buf.String(), "Fig 12b") {
		t.Fatal("render incomplete")
	}
}

func TestFig13MethodOrdering(t *testing.T) {
	r, err := Fig13(Config{Ops: 800})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 31 {
		t.Fatalf("rows %d", len(r.Rows))
	}
	// Idle-less methods (Acceleration, Revision) must diverge from
	// TraceTracker far more than the idle-aware ones (paper: ~7 s vs
	// <= 1.3 ms).
	if r.Mean["Acceleration"] < 10*r.Mean["Dynamic"] {
		t.Fatalf("Acceleration gap %v should dwarf Dynamic %v",
			r.Mean["Acceleration"], r.Mean["Dynamic"])
	}
	if r.Mean["Revision"] < 10*r.Mean["Dynamic"] {
		t.Fatalf("Revision gap %v should dwarf Dynamic %v",
			r.Mean["Revision"], r.Mean["Dynamic"])
	}
	if r.Mean["Dynamic"] == 0 {
		t.Fatal("Dynamic gap should be nonzero (post-processing differs)")
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "MEAN") {
		t.Fatal("render incomplete")
	}
}

func TestFig14TargetGap(t *testing.T) {
	r, err := Fig14(Config{Ops: 800})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 31 {
		t.Fatalf("rows %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.Max < row.Avg {
			t.Fatalf("%s: max %v below avg %v", row.Workload, row.Max, row.Avg)
		}
		// The reconstructed trace leans shorter: its median must not
		// exceed the target's (paper Fig 15 discussion).
		if row.MedianTT > row.MedianTarget {
			t.Fatalf("%s: TT median %v above target %v", row.Workload, row.MedianTT, row.MedianTarget)
		}
	}
	if r.AvgOverall <= 0 {
		t.Fatal("overall gap must be positive")
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "overall average gap") {
		t.Fatal("render incomplete")
	}
}

func TestFig15Overlays(t *testing.T) {
	r, err := Fig15(small)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range Fig15Workloads {
		med := r.Medians[name]
		if med[1] > med[0] {
			t.Fatalf("%s: TT median %v should not exceed target %v", name, med[1], med[0])
		}
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "ikki") {
		t.Fatal("render incomplete")
	}
}

func TestFig16IdleAverages(t *testing.T) {
	r, err := Fig16(Config{Ops: 800})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 31 {
		t.Fatalf("rows %d", len(r.Rows))
	}
	// FIU and MSRC idles dwarf MSPS (paper: 2.80 s / 2.25 s vs 0.27 s).
	if r.SetAvg["FIU"] <= r.SetAvg["MSPS"] {
		t.Fatalf("FIU avg idle %v should exceed MSPS %v", r.SetAvg["FIU"], r.SetAvg["MSPS"])
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "per-set averages") {
		t.Fatal("render incomplete")
	}
}

func TestFig17Breakdown(t *testing.T) {
	r, err := Fig17(Config{Ops: 800})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range r.Rows {
		var fsum, psum float64
		for b := 0; b < 4; b++ {
			fsum += row.Freq[b]
			psum += row.Period[b]
		}
		if fsum < 0.999 || fsum > 1.001 {
			t.Fatalf("%s: freq sums to %v", row.Workload, fsum)
		}
		if psum < 0.999 || psum > 1.001 {
			t.Fatalf("%s: period sums to %v", row.Workload, psum)
		}
	}
	// MSPS requests see idles more often than FIU/MSRC (paper: 70% vs
	// 31%/26%).
	if r.SetIdleFreq["MSPS"] <= r.SetIdleFreq["FIU"] {
		t.Fatalf("MSPS idle freq %v should exceed FIU %v",
			r.SetIdleFreq["MSPS"], r.SetIdleFreq["FIU"])
	}
	// But FIU/MSRC idle *time* dominates their total period (paper:
	// ~99% vs 87%).
	if r.SetIdlePeriod["FIU"] <= r.SetIdlePeriod["MSPS"] {
		t.Fatalf("FIU idle period share %v should exceed MSPS %v",
			r.SetIdlePeriod["FIU"], r.SetIdlePeriod["MSPS"])
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "Fig 17") {
		t.Fatal("render incomplete")
	}
}

func TestClaims(t *testing.T) {
	r, err := Claims(Config{Ops: 800})
	if err != nil {
		t.Fatal(err)
	}
	// Idle-bearing requests below ~50% corpus-wide (paper: < 39%).
	if r.IdleBearingFrac <= 0 || r.IdleBearingFrac > 0.6 {
		t.Fatalf("idle-bearing fraction %v", r.IdleBearingFrac)
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "claims") && !strings.Contains(buf.String(), "claim") {
		t.Fatal("render incomplete")
	}
}

func TestGenerateOldDeterministic(t *testing.T) {
	ikki, ok := workload.Lookup("ikki")
	if !ok {
		t.Fatal("ikki profile missing")
	}
	pA, truthA := GenerateOld(ikki, 0, 500, 0)
	pB, truthB := GenerateOld(ikki, 0, 500, 0)
	if pA.Len() != pB.Len() {
		t.Fatal("lengths differ")
	}
	for i := range pA.Requests {
		if pA.Requests[i] != pB.Requests[i] {
			t.Fatal("regeneration not deterministic")
		}
	}
	if truthA.TotalThink() != truthB.TotalThink() {
		t.Fatal("ground truth not deterministic")
	}
	// FIU trace must carry no latency.
	for _, r := range pA.Requests {
		if r.Latency != 0 {
			t.Fatal("FIU trace should strip latency")
		}
	}
}

// TestRenderDeterminism: identical configs must produce byte-identical
// reports — the property every "same seed, same figure" claim in the
// README rests on.
func TestRenderDeterminism(t *testing.T) {
	cfg := Config{Ops: 900}
	var a, b bytes.Buffer
	Fig1(cfg).Render(&a)
	Fig1(cfg).Render(&b)
	if a.String() != b.String() {
		t.Fatal("Fig1 render not deterministic")
	}
	a.Reset()
	b.Reset()
	r1, err := Fig12(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Fig12(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r1.Render(&a)
	r2.Render(&b)
	if a.String() != b.String() {
		t.Fatal("Fig12 render not deterministic")
	}
	a.Reset()
	b.Reset()
	FixedThSweep(cfg).Render(&a)
	FixedThSweep(cfg).Render(&b)
	if a.String() != b.String() {
		t.Fatal("FixedThSweep render not deterministic")
	}
}
