// Package experiments regenerates every table and figure of the
// paper's evaluation (Section V) plus the motivating Figures 1 and 3,
// on top of the simulated substrate: synthetic corpora calibrated to
// Table I, the HDD model as the OLD system and the all-flash array as
// the NEW system.
//
// Each ExpN function is deterministic for a given Config and returns a
// result struct with a Render method; cmd/experiments and the root
// bench_test.go are thin wrappers around these.
package experiments

import (
	"repro/internal/device"
	"repro/internal/replay"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Config scales the experiments. The zero value picks defaults that
// run the full suite in seconds; raise Ops and TracesPerFamily to
// approach the paper's trace sizes.
type Config struct {
	// Ops is the number of I/O instructions per generated trace
	// (default 4000; the paper's traces hold millions — the
	// distributions stabilize long before that).
	Ops int
	// TracesPerFamily is how many traces to generate per workload
	// family in corpus-wide sweeps (default 2, capped by the family's
	// Table I count).
	TracesPerFamily int
	// Seed offsets all derived seeds, for sensitivity checks.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Ops == 0 {
		c.Ops = 4000
	}
	if c.TracesPerFamily == 0 {
		c.TracesPerFamily = 2
	}
	return c
}

// NewOldDevice builds the OLD system: the HDD node the public corpora
// were collected on.
func NewOldDevice() device.Device { return device.NewHDD(device.DefaultHDDConfig()) }

// NewTarget builds the NEW system: the paper's 4-SSD all-flash array.
func NewTarget() device.Device { return device.NewArray(device.DefaultArrayConfig()) }

// GenerateOld synthesizes trace index idx of a workload family and
// collects it on the OLD device, returning the block trace (stamped
// with the family's TsdevKnown property) and the execution ground
// truth.
func GenerateOld(p workload.Profile, idx, ops int, seed int64) (*trace.Trace, replay.ExecResult) {
	app := workload.Generate(p, workload.GenOptions{
		Ops:  ops,
		Seed: workload.TraceSeed(p.Name, idx) ^ seed,
	})
	res := app.Execute(NewOldDevice())
	res.Trace.Name = traceName(p.Name, idx)
	res.Trace.Workload = p.Name
	res.Trace.Set = p.Set
	res.Trace.TsdevKnown = p.TsdevKnown
	if !p.TsdevKnown {
		// FIU-style collection recorded no completions: strip them.
		for i := range res.Trace.Requests {
			res.Trace.Requests[i].Latency = 0
		}
	}
	return res.Trace, res
}

func traceName(family string, idx int) string {
	return family + "-" + string(rune('0'+idx/10%10)) + string(rune('0'+idx%10))
}

// inttMicros returns a trace's inter-arrival times in µs.
func inttMicros(t *trace.Trace) []float64 { return t.InterArrivalMicros() }
