package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Fig12Result reproduces Figure 12: the MSNFS inter-arrival CDFs under
// the idle-unaware methods (a) and the idle-aware methods (b), always
// alongside the Target (original OLD trace) and TraceTracker.
type Fig12Result struct {
	// Panel (a): Target, Acceleration, Revision, TraceTracker.
	Unaware []report.CDFSeries
	// Panel (b): Target, Fixed-th, Dynamic, TraceTracker.
	Aware []report.CDFSeries
}

// Fig12 reconstructs the MSNFS trace with all five methods.
func Fig12(cfg Config) (Fig12Result, error) {
	cfg = cfg.withDefaults()
	p, _ := workload.Lookup("MSNFS")
	old, _ := GenerateOld(p, 0, cfg.Ops, cfg.Seed)
	old.TsdevKnown = false // exercise the full inference path

	acc := baseline.Acceleration(old, baseline.DefaultAccelerationFactor)
	rev := baseline.Revision(old, NewTarget())
	fixed := baseline.FixedTh(old, NewTarget(), baseline.DefaultFixedThreshold)
	dyn, err := baseline.Dynamic(old, NewTarget())
	if err != nil {
		return Fig12Result{}, err
	}
	tt, err := baseline.TraceTracker(old, NewTarget())
	if err != nil {
		return Fig12Result{}, err
	}

	target := report.NewCDFSeries("Target", inttMicros(old))
	ttSeries := report.NewCDFSeries("TraceTracker", inttMicros(tt))
	return Fig12Result{
		Unaware: []report.CDFSeries{
			target,
			report.NewCDFSeries("Acceleration", inttMicros(acc)),
			report.NewCDFSeries("Revision", inttMicros(rev)),
			ttSeries,
		},
		Aware: []report.CDFSeries{
			target,
			report.NewCDFSeries("Fixed-th", inttMicros(fixed)),
			report.NewCDFSeries("Dynamic", inttMicros(dyn)),
			ttSeries,
		},
	}, nil
}

// Render implements the textual figure.
func (r Fig12Result) Render(w io.Writer) {
	report.RenderCDFs(w, "Fig 12a: Tintt CDF, idle-unaware methods (MSNFS)", r.Unaware...)
	report.RenderCDFs(w, "Fig 12b: Tintt CDF, idle-aware methods (MSNFS)", r.Aware...)
}

// Fig13Row is one workload's average Tintt gap between TraceTracker
// and each other method.
type Fig13Row struct {
	Workload string
	Gap      map[string]time.Duration // method name -> avg |ΔTintt|
}

// Fig13Result reproduces Figure 13.
type Fig13Result struct {
	Rows []Fig13Row
	// Mean aggregates each method's gap across workloads.
	Mean map[string]time.Duration
}

// fig13Methods orders the compared methods.
var fig13Methods = []string{"Dynamic", "Fixed-th", "Acceleration", "Revision"}

// Fig13 sweeps all 31 workload families.
func Fig13(cfg Config) (Fig13Result, error) {
	cfg = cfg.withDefaults()
	out := Fig13Result{Mean: map[string]time.Duration{}}
	sums := map[string]time.Duration{}
	for _, p := range workload.Profiles() {
		old, _ := GenerateOld(p, 0, cfg.Ops, cfg.Seed)
		tt, err := baseline.TraceTracker(old, NewTarget())
		if err != nil {
			return out, fmt.Errorf("%s: %w", p.Name, err)
		}
		row := Fig13Row{Workload: p.Name, Gap: map[string]time.Duration{}}
		for _, m := range []baseline.Method{
			baseline.MethodDynamic, baseline.MethodFixedTh,
			baseline.MethodAcceleration, baseline.MethodRevision,
		} {
			other, err := baseline.Run(m, old, NewTarget())
			if err != nil {
				return out, fmt.Errorf("%s/%s: %w", p.Name, m, err)
			}
			avg, _ := core.InterArrivalGap(tt, other)
			row.Gap[m.String()] = avg
			sums[m.String()] += avg
		}
		out.Rows = append(out.Rows, row)
	}
	for _, m := range fig13Methods {
		out.Mean[m] = sums[m] / time.Duration(len(out.Rows))
	}
	return out, nil
}

// Render implements the textual figure.
func (r Fig13Result) Render(w io.Writer) {
	t := &report.Table{
		Title:   "Fig 13: avg |Tintt(TraceTracker) − Tintt(method)| per workload",
		Headers: append([]string{"workload"}, fig13Methods...),
	}
	for _, row := range r.Rows {
		cells := []any{row.Workload}
		for _, m := range fig13Methods {
			cells = append(cells, row.Gap[m])
		}
		t.AddRow(cells...)
	}
	cells := []any{"MEAN"}
	for _, m := range fig13Methods {
		cells = append(cells, r.Mean[m])
	}
	t.AddRow(cells...)
	t.Render(w)
}

// Fig14Row is one workload's target-vs-TraceTracker gap.
type Fig14Row struct {
	Workload string
	Avg, Max time.Duration
	// MedianTarget / MedianTT are the two traces' median Tintt values
	// (the paper quotes 2 ms vs 0.02 ms corpus-wide).
	MedianTarget, MedianTT time.Duration
}

// Fig14Result reproduces Figure 14.
type Fig14Result struct {
	Rows []Fig14Row
	// AvgOverall is the mean of the per-workload averages (the paper
	// reports 0.677 ms).
	AvgOverall time.Duration
}

// Fig14 sweeps all 31 families comparing the original trace with its
// reconstruction.
func Fig14(cfg Config) (Fig14Result, error) {
	cfg = cfg.withDefaults()
	var out Fig14Result
	var sum time.Duration
	for _, p := range workload.Profiles() {
		old, _ := GenerateOld(p, 0, cfg.Ops, cfg.Seed)
		tt, err := baseline.TraceTracker(old, NewTarget())
		if err != nil {
			return out, fmt.Errorf("%s: %w", p.Name, err)
		}
		avg, max := core.InterArrivalGap(old, tt)
		row := Fig14Row{
			Workload:     p.Name,
			Avg:          avg,
			Max:          max,
			MedianTarget: medianIntt(old),
			MedianTT:     medianIntt(tt),
		}
		out.Rows = append(out.Rows, row)
		sum += avg
	}
	out.AvgOverall = sum / time.Duration(len(out.Rows))
	return out, nil
}

func medianIntt(t *trace.Trace) time.Duration {
	us := t.InterArrivalMicros()
	return time.Duration(stats.Median(us) * float64(time.Microsecond))
}

// Render implements the textual figure.
func (r Fig14Result) Render(w io.Writer) {
	t := &report.Table{
		Title:   "Fig 14: Tintt difference, target vs TraceTracker",
		Headers: []string{"workload", "avg", "max", "median(target)", "median(TT)"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Workload, row.Avg, row.Max, row.MedianTarget, row.MedianTT)
	}
	t.Render(w)
	fmt.Fprintf(w, "overall average gap: %s\n", report.FormatDuration(r.AvgOverall))
}

// Fig15Workloads are the two detail workloads (largest gaps within
// their sets in the paper).
var Fig15Workloads = []string{"CFS", "ikki"}

// Fig15Result reproduces Figure 15: full CDF overlays for CFS and
// ikki.
type Fig15Result struct {
	// Overlays[workload] = {Target, TraceTracker} series.
	Overlays map[string][2]report.CDFSeries
	// Medians[workload] = {target median, TT median}.
	Medians map[string][2]time.Duration
}

// Fig15 builds the overlays.
func Fig15(cfg Config) (Fig15Result, error) {
	cfg = cfg.withDefaults()
	out := Fig15Result{
		Overlays: map[string][2]report.CDFSeries{},
		Medians:  map[string][2]time.Duration{},
	}
	for _, name := range Fig15Workloads {
		p, _ := workload.Lookup(name)
		old, _ := GenerateOld(p, 0, cfg.Ops, cfg.Seed)
		tt, err := baseline.TraceTracker(old, NewTarget())
		if err != nil {
			return out, fmt.Errorf("%s: %w", name, err)
		}
		out.Overlays[name] = [2]report.CDFSeries{
			report.NewCDFSeries("Target", inttMicros(old)),
			report.NewCDFSeries("TraceTracker", inttMicros(tt)),
		}
		out.Medians[name] = [2]time.Duration{medianIntt(old), medianIntt(tt)}
	}
	return out, nil
}

// Render implements the textual figure.
func (r Fig15Result) Render(w io.Writer) {
	for _, name := range Fig15Workloads {
		ov := r.Overlays[name]
		report.RenderCDFs(w, "Fig 15: Tintt CDF, "+name, ov[0], ov[1])
		med := r.Medians[name]
		fmt.Fprintf(w, "%s medians: target=%s tracetracker=%s\n",
			name, report.FormatDuration(med[0]), report.FormatDuration(med[1]))
	}
}
