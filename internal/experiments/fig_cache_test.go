package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestCacheImpact(t *testing.T) {
	r, err := CacheImpact(Config{Ops: 2500})
	if err != nil {
		t.Fatal(err)
	}
	// The cache must absorb some reads...
	if r.HitRate <= 0 {
		t.Fatal("zero hit rate: cache inert")
	}
	// ...and shift the block-level op mix toward writes (buffered
	// writes surface as flusher traffic while read hits disappear).
	if r.CachedReadFrac >= r.RawReadFrac {
		t.Fatalf("cached read fraction %v should drop below raw %v",
			r.CachedReadFrac, r.RawReadFrac)
	}
	// Reconstruction still recovers the idle mass from the
	// cache-shaped trace: within 25% of the raw collection's.
	if r.RawIdle > 0 {
		ratio := float64(r.CachedIdle) / float64(r.RawIdle)
		if ratio < 0.75 || ratio > 1.25 {
			t.Fatalf("cached idle recovery ratio %.2f", ratio)
		}
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "page cache") {
		t.Fatal("render incomplete")
	}
}
