package corpus

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/trace"
)

// sampleTrace builds a small sorted Tsdev-known trace.
func sampleTrace() *trace.Trace {
	return &trace.Trace{
		Name: "corpus-sample", Workload: "w", Set: "FIU", TsdevKnown: true,
		Requests: []trace.Request{
			{Arrival: 0, Device: 0, LBA: 100, Sectors: 8, Op: trace.Read, Latency: 90 * time.Microsecond},
			{Arrival: 500 * time.Microsecond, Device: 0, LBA: 108, Sectors: 8, Op: trace.Read, Latency: 80 * time.Microsecond},
			{Arrival: time.Millisecond, Device: 1, LBA: 50, Sectors: 16, Op: trace.Write, Latency: 120 * time.Microsecond},
			{Arrival: 4 * time.Millisecond, Device: 0, LBA: 9999, Sectors: 32, Op: trace.Write, Latency: 200 * time.Microsecond},
		},
	}
}

func csvBytes(t *testing.T, tr *trace.Trace) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := trace.WriteCSV(&buf, tr); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func openStore(t *testing.T) *Store {
	t.Helper()
	s, err := Open(filepath.Join(t.TempDir(), "data"))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestIngestSummaryAndDigest checks the landed entry: digest over the
// exact bytes, and the summary matching the whole-trace accessors.
func TestIngestSummaryAndDigest(t *testing.T) {
	s := openStore(t)
	tr := sampleTrace()
	data := csvBytes(t, tr)

	e, created, err := s.Ingest(bytes.NewReader(data), "csv")
	if err != nil {
		t.Fatal(err)
	}
	if !created {
		t.Fatal("first ingest not created")
	}
	sum := sha256.Sum256(data)
	if e.Digest != hex.EncodeToString(sum[:]) {
		t.Fatalf("digest: %s", e.Digest)
	}
	if e.Format != "csv" || e.Size != int64(len(data)) {
		t.Fatalf("format/size: %+v", e)
	}
	if e.Requests != int64(tr.Len()) || e.Duration != tr.Duration() ||
		e.TotalBytes != tr.TotalBytes() || e.ReadFraction != tr.ReadFraction() ||
		e.SeqFraction != tr.SeqFraction() {
		t.Fatalf("summary: %+v", e)
	}
	if e.Name != tr.Name || e.Workload != tr.Workload || e.Set != tr.Set || !e.TsdevKnown {
		t.Fatalf("meta: %+v", e)
	}

	// Blob bytes are exactly what went in.
	rc, got, err := s.OpenBlob(e.Digest)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	stored, err := io.ReadAll(rc)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(stored, data) {
		t.Fatal("blob bytes diverge from upload")
	}
	if got.Digest != e.Digest {
		t.Fatalf("OpenBlob entry: %+v", got)
	}
}

// TestIngestDedup checks identical bytes land once.
func TestIngestDedup(t *testing.T) {
	s := openStore(t)
	data := csvBytes(t, sampleTrace())
	e1, created1, err := s.Ingest(bytes.NewReader(data), "csv")
	if err != nil || !created1 {
		t.Fatalf("first: %v created=%v", err, created1)
	}
	e2, created2, err := s.Ingest(bytes.NewReader(data), "")
	if err != nil {
		t.Fatal(err)
	}
	if created2 {
		t.Fatal("duplicate ingest reported created")
	}
	if e2.Digest != e1.Digest {
		t.Fatalf("digests diverge: %s vs %s", e1.Digest, e2.Digest)
	}
	if s.Len() != 1 {
		t.Fatalf("catalogue size: %d", s.Len())
	}
	blobs, _ := os.ReadDir(filepath.Join(s.Root(), "objects"))
	if len(blobs) != 2 { // blob + sidecar
		t.Fatalf("objects dir has %d files", len(blobs))
	}
	tmps, _ := os.ReadDir(filepath.Join(s.Root(), "tmp"))
	if len(tmps) != 0 {
		t.Fatalf("staging leftovers: %d", len(tmps))
	}
}

// TestIngestAutoDetect sniffs bin and msrc uploads without a hint.
func TestIngestAutoDetect(t *testing.T) {
	s := openStore(t)
	var bin bytes.Buffer
	if err := trace.WriteBinary(&bin, sampleTrace()); err != nil {
		t.Fatal(err)
	}
	e, _, err := s.Ingest(bytes.NewReader(bin.Bytes()), "auto")
	if err != nil {
		t.Fatal(err)
	}
	if e.Format != "bin" {
		t.Fatalf("bin detected as %q", e.Format)
	}
	msrc := "128166372003061629,web,0,Write,8192,4096,501\n128166372003061700,web,0,Read,0,4096,700\n"
	e2, _, err := s.Ingest(strings.NewReader(msrc), "")
	if err != nil {
		t.Fatal(err)
	}
	if e2.Format != "msrc" || e2.Requests != 2 {
		t.Fatalf("msrc: %+v", e2)
	}
}

// TestIngestRejects keeps broken uploads out of the store.
func TestIngestRejects(t *testing.T) {
	s := openStore(t)
	for name, in := range map[string]struct {
		data, format string
	}{
		"garbage":      {"not,a,trace\n", "auto"},
		"empty":        {"", "csv"},
		"header-only":  {"# tracetracker name=a workload=b set=c tsdev_known=true\n", "csv"},
		"parse-error":  {"12.5,0,100,8,R,0,0\nbroken line\n", "csv"},
		"bad-format":   {"12.5,0,100,8,R,0,0\n", "nope"},
		"zero-sectors": {"", "bin"},
	} {
		if _, _, err := s.Ingest(strings.NewReader(in.data), in.format); err == nil {
			t.Errorf("%s: ingest succeeded", name)
		}
	}
	if s.Len() != 0 {
		t.Fatalf("catalogue not empty: %d", s.Len())
	}
	tmps, _ := os.ReadDir(filepath.Join(s.Root(), "tmp"))
	if len(tmps) != 0 {
		t.Fatalf("staging leftovers after failed ingests: %d", len(tmps))
	}
}

// TestIndexRebuild deletes index.json and checks Open recovers the
// catalogue from the sidecars, preserving every entry field.
func TestIndexRebuild(t *testing.T) {
	s := openStore(t)
	want, _, err := s.Ingest(bytes.NewReader(csvBytes(t, sampleTrace())), "csv")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(s.Root(), "index.json")); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(s.Root())
	if err != nil {
		t.Fatal(err)
	}
	got, err := s2.Resolve(want.Digest)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("rebuilt entry diverges:\n got %+v\nwant %+v", got, want)
	}
	// Corrupt index also recovers.
	if err := os.WriteFile(filepath.Join(s.Root(), "index.json"), []byte("{broken"), 0o666); err != nil {
		t.Fatal(err)
	}
	s3, err := Open(s.Root())
	if err != nil {
		t.Fatal(err)
	}
	if s3.Len() != 1 {
		t.Fatalf("recovered catalogue size: %d", s3.Len())
	}
}

// TestMultiProcessCatalogue simulates two processes ingesting into the
// same root: a reopened store must see both traces even though each
// writer clobbered the other's index.json (the sidecars are
// authoritative, the index a convenience export).
func TestMultiProcessCatalogue(t *testing.T) {
	root := filepath.Join(t.TempDir(), "shared")
	a, err := Open(root)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Open(root)
	if err != nil {
		t.Fatal(err)
	}
	tr2 := sampleTrace()
	tr2.Requests = tr2.Requests[:2]
	ea, _, err := a.Ingest(bytes.NewReader(csvBytes(t, sampleTrace())), "csv")
	if err != nil {
		t.Fatal(err)
	}
	eb, _, err := b.Ingest(bytes.NewReader(csvBytes(t, tr2)), "csv")
	if err != nil {
		t.Fatal(err)
	}
	// a's catalogue does not see b's ingest (per-process), but a fresh
	// Open sees everything on disk.
	fresh, err := Open(root)
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Len() != 2 {
		t.Fatalf("reopened catalogue: %d entries", fresh.Len())
	}
	for _, d := range []string{ea.Digest, eb.Digest} {
		if _, err := fresh.Resolve(d); err != nil {
			t.Fatalf("reopened store lost %s: %v", d, err)
		}
	}
}

// TestIngestErrorsAreBadTrace checks client-caused ingest failures
// carry the sentinel servers use to pick a 4xx status.
func TestIngestErrorsAreBadTrace(t *testing.T) {
	s := openStore(t)
	for name, in := range map[string]struct {
		data, format string
	}{
		"garbage":    {"not,a,trace\n", "auto"},
		"empty":      {"", "csv"},
		"bad-format": {"12.5,0,100,8,R,0,0\n", "nope"},
	} {
		_, _, err := s.Ingest(strings.NewReader(in.data), in.format)
		if !errors.Is(err, ErrBadTrace) {
			t.Errorf("%s: error %v does not wrap ErrBadTrace", name, err)
		}
	}
}

// TestResolvePrefix covers unique-prefix, ambiguous and unknown
// lookups.
func TestResolvePrefix(t *testing.T) {
	s := openStore(t)
	e, _, err := s.Ingest(bytes.NewReader(csvBytes(t, sampleTrace())), "csv")
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Resolve(e.Digest[:8])
	if err != nil || got.Digest != e.Digest {
		t.Fatalf("prefix resolve: %v %+v", err, got)
	}
	if _, err := s.Resolve("ffffffff"); err == nil && e.Digest[:8] != "ffffffff" {
		t.Fatal("unknown prefix resolved")
	}
	if _, err := s.Resolve("not-hex!"); err == nil {
		t.Fatal("non-hex resolved")
	}
	if _, err := s.Resolve(""); err == nil {
		t.Fatal("empty prefix resolved")
	}
}

// TestGC removes staging leftovers, orphaned results and broken
// object pairs while keeping live data.
func TestGC(t *testing.T) {
	s := openStore(t)
	e, _, err := s.Ingest(bytes.NewReader(csvBytes(t, sampleTrace())), "csv")
	if err != nil {
		t.Fatal(err)
	}
	liveKey := strings.Repeat("ab", 32)
	if _, err := s.StoreResult(liveKey, e.Digest, []byte(`{"k":1}`), func(w io.Writer) error {
		_, err := w.Write([]byte("live result"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	orphanKey := strings.Repeat("cd", 32)
	if _, err := s.StoreResult(orphanKey, strings.Repeat("00", 32), nil, func(w io.Writer) error {
		_, err := w.Write([]byte("orphan result"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	// Staging leftover + a sidecar-less blob.
	if err := os.WriteFile(filepath.Join(s.Root(), "tmp", "ingest-stale"), []byte("x"), 0o666); err != nil {
		t.Fatal(err)
	}
	hexName := strings.Repeat("ef", 32)
	if err := os.WriteFile(filepath.Join(s.Root(), "objects", hexName), []byte("x"), 0o666); err != nil {
		t.Fatal(err)
	}

	st, err := s.GC()
	if err != nil {
		t.Fatal(err)
	}
	if st.TmpRemoved != 1 || st.ResultsRemoved != 1 || st.ObjectsRemoved != 1 {
		t.Fatalf("gc stats: %+v", st)
	}
	if _, _, ok := s.LookupResult(liveKey); !ok {
		t.Fatal("gc removed a live result")
	}
	if _, _, ok := s.LookupResult(orphanKey); ok {
		t.Fatal("gc kept an orphan result")
	}
	if _, err := s.Resolve(e.Digest); err != nil {
		t.Fatal("gc removed a live object")
	}
}

// TestIngestParallelMatchesSequential locks the parallel ingest
// pipeline: with decode workers enabled, every format (including a
// counted binary blob with trailing bytes, which the decoder stops
// before) must land with the same digest, size and summary as the
// sequential path — the digest must cover every uploaded byte either
// way.
func TestIngestParallelMatchesSequential(t *testing.T) {
	tr := sampleTrace()
	var binBuf bytes.Buffer
	if err := trace.WriteBinary(&binBuf, tr); err != nil {
		t.Fatal(err)
	}
	binTrailing := append(append([]byte{}, binBuf.Bytes()...), []byte("trailing-bytes-beyond-count")...)

	// A trace past ParallelMinBytes, so ingest actually takes the
	// stream-parallel pipeline (smaller uploads fall back to decoding
	// the probe prefix sequentially).
	big := &trace.Trace{Name: "corpus-big", Workload: "w", Set: "FIU", TsdevKnown: true}
	big.Requests = make([]trace.Request, 40_000)
	for i := range big.Requests {
		big.Requests[i] = trace.Request{
			Arrival: time.Duration(i) * 41 * time.Microsecond,
			Device:  uint32(i % 3),
			LBA:     uint64(i * 16),
			Sectors: 8,
			Op:      trace.Op(i % 2),
			Latency: time.Duration(80+i%40) * time.Microsecond,
		}
	}
	bigCSV := csvBytes(t, big)
	if len(bigCSV) < trace.ParallelMinBytes {
		t.Fatalf("big fixture only %d bytes; must exceed ParallelMinBytes", len(bigCSV))
	}

	cases := []struct {
		name   string
		format string
		data   []byte
	}{
		{"csv", "csv", csvBytes(t, tr)},
		{"bin", "bin", binBuf.Bytes()},
		{"bin-trailing", "bin", binTrailing},
		{"auto-sniffed", "auto", csvBytes(t, tr)},
		{"csv-big-parallel", "csv", bigCSV},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			seqStore := openStore(t)
			parStore := openStore(t)
			parStore.SetParallel(4)
			want, _, err := seqStore.Ingest(bytes.NewReader(tc.data), tc.format)
			if err != nil {
				t.Fatal(err)
			}
			got, created, err := parStore.Ingest(bytes.NewReader(tc.data), tc.format)
			if err != nil {
				t.Fatal(err)
			}
			if !created {
				t.Fatal("parallel ingest not created")
			}
			want.Ingested, got.Ingested = time.Time{}, time.Time{}
			if got != want {
				t.Fatalf("parallel entry diverges:\n got %+v\nwant %+v", got, want)
			}
			rc, _, err := parStore.OpenBlob(got.Digest)
			if err != nil {
				t.Fatal(err)
			}
			defer rc.Close()
			stored, err := io.ReadAll(rc)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(stored, tc.data) {
				t.Fatal("parallel-ingested blob bytes diverge from upload")
			}
		})
	}
}

// TestIngestParallelRejects keeps the rejection behaviour intact on
// the parallel path: undecodable uploads are ErrBadTrace and leave
// nothing behind.
func TestIngestParallelRejects(t *testing.T) {
	s := openStore(t)
	s.SetParallel(4)
	for _, in := range []struct{ data, format string }{
		{"not,a,trace\n", "csv"},
		{"", "bin"},
		{"garbage", "auto"},
	} {
		_, _, err := s.Ingest(strings.NewReader(in.data), in.format)
		if !errors.Is(err, ErrBadTrace) {
			t.Fatalf("%q as %q: err %v, want ErrBadTrace", in.data, in.format, err)
		}
	}
	if s.Len() != 0 {
		t.Fatalf("rejected uploads landed: %d entries", s.Len())
	}
	tmps, err := os.ReadDir(filepath.Join(s.Root(), "tmp"))
	if err != nil {
		t.Fatal(err)
	}
	if len(tmps) != 0 {
		t.Fatalf("rejected uploads left %d staging files", len(tmps))
	}
}

// TestStoreMetrics checks the instrumentation hook: ingest volume and
// dedup on the store side, hit/store traffic on the result cache, and
// that StoreResult's internal existence probe is not counted as a hit.
func TestStoreMetrics(t *testing.T) {
	s := openStore(t)
	reg := obs.NewRegistry()
	cm := obs.NewCorpusMetrics(reg)
	s.SetMetrics(cm)

	data := csvBytes(t, sampleTrace())
	e, created, err := s.Ingest(bytes.NewReader(data), "csv")
	if err != nil || !created {
		t.Fatalf("first ingest: created=%v err=%v", created, err)
	}
	if _, created, err = s.Ingest(bytes.NewReader(data), "csv"); err != nil || created {
		t.Fatalf("dedup ingest: created=%v err=%v", created, err)
	}
	if got := cm.IngestBytes.Value(); got != 2*int64(len(data)) {
		t.Fatalf("ingest bytes = %d, want %d", got, 2*len(data))
	}
	if cm.IngestRecords.Value() != 2*int64(sampleTrace().Len()) {
		t.Fatalf("ingest records = %d", cm.IngestRecords.Value())
	}
	if cm.IngestTraces.Value() != 1 || cm.DedupHits.Value() != 1 {
		t.Fatalf("traces=%d dedup=%d, want 1/1", cm.IngestTraces.Value(), cm.DedupHits.Value())
	}

	key := strings.Repeat("ab", 32)
	if _, _, ok := s.LookupResult(key); ok {
		t.Fatal("lookup hit on empty cache")
	}
	if cm.ResultHits.Value() != 0 {
		t.Fatalf("miss counted as hit: %d", cm.ResultHits.Value())
	}
	write := func(w io.Writer) error { _, err := w.Write([]byte("out")); return err }
	if _, err := s.StoreResult(key, e.Digest, nil, write); err != nil {
		t.Fatal(err)
	}
	if cm.ResultStores.Value() != 1 {
		t.Fatalf("result stores = %d, want 1", cm.ResultStores.Value())
	}
	if cm.ResultHits.Value() != 0 {
		t.Fatalf("StoreResult's internal probe counted as a hit: %d", cm.ResultHits.Value())
	}
	// Re-storing an existing key is a no-op, not a new store.
	if _, err := s.StoreResult(key, e.Digest, nil, write); err != nil {
		t.Fatal(err)
	}
	if cm.ResultStores.Value() != 1 {
		t.Fatalf("no-op store counted: %d", cm.ResultStores.Value())
	}
	if _, _, ok := s.LookupResult(key); !ok {
		t.Fatal("lookup missed stored result")
	}
	if cm.ResultHits.Value() != 1 {
		t.Fatalf("result hits = %d, want 1", cm.ResultHits.Value())
	}
}
