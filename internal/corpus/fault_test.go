package corpus

// Fault-injection coverage for the store's durable write paths: an
// ENOSPC/EIO from the disk must come back as a storage error (never
// ErrBadTrace, which servers map to a client 4xx) and must leave the
// store consistent — no catalogued entry, staging leftovers that GC
// removes, and a clean retry once the fault clears.

import (
	"bytes"
	"errors"
	"io"
	"os"
	"strings"
	"syscall"
	"testing"

	"repro/internal/faultfs"
)

// tmpEntries lists the store's staging directory.
func tmpEntries(t *testing.T, s *Store) []string {
	t.Helper()
	des, err := os.ReadDir(s.tmpDir())
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, de := range des {
		names = append(names, de.Name())
	}
	return names
}

func TestIngestSpoolFaultIsStorageError(t *testing.T) {
	s := openStore(t)
	fi := faultfs.New()
	s.SetFaultInjector(fi)
	data := csvBytes(t, sampleTrace())

	fi.Fail(faultfs.SinkCorpusObject, 16, syscall.ENOSPC)
	_, _, err := s.Ingest(bytes.NewReader(data), "csv")
	if err == nil {
		t.Fatal("ingest succeeded under an ENOSPC spool fault")
	}
	if errors.Is(err, ErrBadTrace) {
		t.Fatalf("spool fault classified as a bad trace (client fault): %v", err)
	}
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("ENOSPC lost from the chain: %v", err)
	}
	if fi.Hits(faultfs.SinkCorpusObject) == 0 {
		t.Fatal("fault rule never fired")
	}
	if s.Len() != 0 {
		t.Fatalf("catalogue holds %d entries after a failed ingest", s.Len())
	}
	if names := tmpEntries(t, s); len(names) != 0 {
		t.Fatalf("staging leftovers after failed ingest: %v", names)
	}

	// Same bytes land cleanly once the disk recovers.
	fi.Clear(faultfs.SinkCorpusObject)
	if _, created, err := s.Ingest(bytes.NewReader(data), "csv"); err != nil || !created {
		t.Fatalf("retry after clearing the fault: created=%v err=%v", created, err)
	}
}

// A parallel-ingest store hits the same classification: the fault
// fires inside the probe/parallel pipeline rather than the sequential
// decoder.
func TestIngestSpoolFaultParallel(t *testing.T) {
	s := openStore(t)
	s.SetParallel(4)
	fi := faultfs.New()
	s.SetFaultInjector(fi)
	data := csvBytes(t, sampleTrace())

	fi.Fail(faultfs.SinkCorpusObject, 8, syscall.EIO)
	_, _, err := s.Ingest(bytes.NewReader(data), "csv")
	if err == nil || errors.Is(err, ErrBadTrace) || !errors.Is(err, syscall.EIO) {
		t.Fatalf("parallel ingest under EIO: %v", err)
	}
	if names := tmpEntries(t, s); len(names) != 0 {
		t.Fatalf("staging leftovers: %v", names)
	}
}

// A short write models the torn spool a dying device leaves: part of
// the failing write lands, the error still surfaces, nothing is
// catalogued.
func TestIngestSpoolShortWrite(t *testing.T) {
	s := openStore(t)
	fi := faultfs.New()
	s.SetFaultInjector(fi)
	data := csvBytes(t, sampleTrace())

	fi.FailShort(faultfs.SinkCorpusObject, 10, syscall.ENOSPC)
	_, _, err := s.Ingest(bytes.NewReader(data), "csv")
	if err == nil || errors.Is(err, ErrBadTrace) || !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("short-write ingest: %v", err)
	}
	if s.Len() != 0 {
		t.Fatal("torn spool was catalogued")
	}
}

func TestStoreResultFaultLeavesCacheConsistent(t *testing.T) {
	s := openStore(t)
	fi := faultfs.New()
	s.SetFaultInjector(fi)

	e, _, err := s.Ingest(bytes.NewReader(csvBytes(t, sampleTrace())), "csv")
	if err != nil {
		t.Fatal(err)
	}
	key := strings.Repeat("ab", 32)

	fi.Fail(faultfs.SinkCorpusResult, 4, syscall.ENOSPC)
	_, err = s.StoreResult(key, e.Digest, nil, func(w io.Writer) error {
		_, werr := w.Write([]byte("reconstructed output bytes"))
		return werr
	})
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("StoreResult under ENOSPC: %v", err)
	}
	if _, _, ok := s.LookupResult(key); ok {
		t.Fatal("failed result visible in the cache")
	}
	if names := tmpEntries(t, s); len(names) != 0 {
		t.Fatalf("staging leftovers after failed result fill: %v", names)
	}

	// GC on a store with (synthesized) leftovers stays clean, and the
	// fill succeeds after the fault clears.
	fi.Clear(faultfs.SinkCorpusResult)
	if _, err := s.GC(); err != nil {
		t.Fatal(err)
	}
	p, err := s.StoreResult(key, e.Digest, nil, func(w io.Writer) error {
		_, werr := w.Write([]byte("reconstructed output bytes"))
		return werr
	})
	if err != nil {
		t.Fatalf("retry after clearing the fault: %v", err)
	}
	if _, err := os.Stat(p); err != nil {
		t.Fatalf("stored result missing: %v", err)
	}
}

func TestIngestAsRecordsTenant(t *testing.T) {
	s := openStore(t)
	data := csvBytes(t, sampleTrace())
	e, created, err := s.IngestAs(bytes.NewReader(data), "csv", "alice")
	if err != nil || !created {
		t.Fatalf("ingest: created=%v err=%v", created, err)
	}
	if e.Tenant != "alice" {
		t.Fatalf("tenant = %q", e.Tenant)
	}
	// Dedup: the first ingester keeps the attribution.
	e2, created, err := s.IngestAs(bytes.NewReader(data), "csv", "bob")
	if err != nil || created {
		t.Fatalf("dedup ingest: created=%v err=%v", created, err)
	}
	if e2.Tenant != "alice" {
		t.Fatalf("dedup tenant = %q, want the original ingester", e2.Tenant)
	}
	// The attribution survives a catalogue rebuild (it lives in the
	// sidecar, the source of truth).
	if err := s.Rebuild(); err != nil {
		t.Fatal(err)
	}
	got, err := s.Resolve(e.Digest)
	if err != nil || got.Tenant != "alice" {
		t.Fatalf("after rebuild: tenant=%q err=%v", got.Tenant, err)
	}
}
