// Package corpus is the content-addressed store underneath the
// reconstruction pipeline: traces land as immutable blobs named by
// their SHA-256 digest with a one-pass characterization sidecar, and
// reconstructed outputs are cached by (input digest, job fingerprint)
// so identical jobs never redo a reconstruction.
//
// Layout under the store root:
//
//	objects/<sha256>        trace blob, byte-exact as ingested
//	objects/<sha256>.json   sidecar: format + one-pass summary (Entry)
//	results/<key>           cached reconstruction output
//	results/<key>.json      sidecar: input digest + caller note (ResultMeta)
//	index.json              catalogue of all entries (pure cache)
//	tmp/                    staging for atomic writes
//
// Every write lands via tmp/ + rename, so a crashed ingest or cache
// fill never leaves a partial object visible. The sidecars are the
// source of truth: Open always rebuilds the catalogue from them and
// rewrites index.json, which is only a convenience export.
package corpus

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"
)

// ErrBadTrace marks ingest failures caused by the uploaded bytes (or
// the caller's format hint) rather than by the store: undetectable or
// unparseable data, or an empty trace. Servers map it to a client
// error; anything else is a storage fault.
var ErrBadTrace = errors.New("corpus: not an ingestible trace")

// Entry describes one ingested trace: identity, format, and the
// one-pass characterization recorded at ingest so catalogue queries
// never re-read blobs. Order-sensitive metrics (SeqFraction) are
// computed in file order.
type Entry struct {
	// Digest is the lowercase hex SHA-256 of the blob bytes.
	Digest string `json:"digest"`
	// Format is the concrete input format ("csv", "bin", "msrc", "spc").
	Format string `json:"format"`
	// Size is the blob length in bytes.
	Size int64 `json:"size"`
	// Tenant is the identity that first ingested the blob ("" before
	// multi-tenant servers, or for anonymous ingest); servers charge
	// the blob's bytes against this tenant's quota.
	Tenant string `json:"tenant,omitempty"`
	// Name/Workload/Set/TsdevKnown mirror the trace metadata.
	Name       string `json:"name,omitempty"`
	Workload   string `json:"workload,omitempty"`
	Set        string `json:"set,omitempty"`
	TsdevKnown bool   `json:"tsdev_known"`
	// Requests through SeqFraction are the one-pass summary.
	Requests     int64         `json:"requests"`
	Duration     time.Duration `json:"duration_ns"`
	TotalBytes   int64         `json:"total_bytes"`
	ReadFraction float64       `json:"read_fraction"`
	SeqFraction  float64       `json:"seq_fraction"`
	// Ingested is when the blob first landed (UTC).
	Ingested time.Time `json:"ingested"`
}

// isHex reports whether s is non-empty lowercase hex — the only shape
// ever spliced into a store path, which also blocks traversal.
func isHex(s string) bool {
	if s == "" {
		return false
	}
	for _, c := range s {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// writeJSONAtomic marshals v and lands it at path via the store's tmp
// directory and a rename.
func writeJSONAtomic(tmpDir, path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	f, err := os.CreateTemp(tmpDir, "json-*")
	if err != nil {
		return err
	}
	name := f.Name()
	if _, err := f.Write(append(data, '\n')); err != nil {
		f.Close()
		os.Remove(name)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(name)
		return err
	}
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return err
	}
	return nil
}

// readJSON unmarshals the file at path into v.
func readJSON(path string, v any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("corpus: %s: %w", filepath.Base(path), err)
	}
	return nil
}
