package corpus

import (
	"bytes"
	"encoding/json"
	"io"
	"strings"
	"testing"
)

// TestResultCacheRoundTrip stores, looks up and reopens a cached
// result with its note.
func TestResultCacheRoundTrip(t *testing.T) {
	s := openStore(t)
	key := strings.Repeat("12", 32)
	digest := strings.Repeat("34", 32)
	note := []byte(`{"spec":{"method":"tracetracker"}}`)

	if _, _, ok := s.LookupResult(key); ok {
		t.Fatal("lookup hit before store")
	}
	path, err := s.StoreResult(key, digest, note, func(w io.Writer) error {
		_, err := w.Write([]byte("reconstructed bytes"))
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	gotPath, gotNote, ok := s.LookupResult(key)
	if !ok || gotPath != path {
		t.Fatalf("lookup: ok=%v path=%q", ok, gotPath)
	}
	// The sidecar is stored indented, so the note round-trips as
	// equivalent JSON, not identical bytes.
	var wantC, gotC bytes.Buffer
	if err := json.Compact(&wantC, note); err != nil {
		t.Fatal(err)
	}
	if err := json.Compact(&gotC, gotNote); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotC.Bytes(), wantC.Bytes()) {
		t.Fatalf("note: %s", gotNote)
	}
	rc, meta, err := s.OpenResult(key)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	data, err := io.ReadAll(rc)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "reconstructed bytes" {
		t.Fatalf("bytes: %q", data)
	}
	if meta.Key != key || meta.InputDigest != digest {
		t.Fatalf("meta: %+v", meta)
	}
}

// TestResultCacheIdempotent keeps the first result when the same key
// is stored twice, and never calls the second writer's fill after the
// first landed.
func TestResultCacheIdempotent(t *testing.T) {
	s := openStore(t)
	key := strings.Repeat("ab", 32)
	if _, err := s.StoreResult(key, strings.Repeat("00", 32), nil, func(w io.Writer) error {
		_, err := w.Write([]byte("first"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.StoreResult(key, strings.Repeat("00", 32), nil, func(w io.Writer) error {
		t.Fatal("fill ran for an existing key")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	rc, _, err := s.OpenResult(key)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	data, _ := io.ReadAll(rc)
	if string(data) != "first" {
		t.Fatalf("bytes: %q", data)
	}
}

// TestResultCacheValidation rejects non-hex keys and non-JSON notes,
// and a failed fill leaves nothing behind.
func TestResultCacheValidation(t *testing.T) {
	s := openStore(t)
	if _, err := s.StoreResult("../escape", "d", nil, nil); err == nil {
		t.Fatal("non-hex key accepted")
	}
	if _, err := s.StoreResult(strings.Repeat("aa", 32), "d", []byte("not json"), nil); err == nil {
		t.Fatal("non-JSON note accepted")
	}
	key := strings.Repeat("bb", 32)
	if _, err := s.StoreResult(key, "d", nil, func(w io.Writer) error {
		return io.ErrClosedPipe
	}); err == nil {
		t.Fatal("failed fill reported success")
	}
	if _, _, ok := s.LookupResult(key); ok {
		t.Fatal("failed fill left a visible result")
	}
}
