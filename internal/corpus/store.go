package corpus

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faultfs"
	"repro/internal/obs"
	"repro/internal/trace"
)

// Store is a content-addressed trace corpus rooted at one directory.
// It is safe for concurrent use within a process; concurrent processes
// sharing a root are safe for ingest and result writes (atomic
// renames) but each maintains its own in-memory catalogue.
type Store struct {
	root string

	// parallel is the ingest decode worker count (1 = sequential).
	parallel atomic.Int32

	// metrics is the optional instrumentation hook (SetMetrics).
	metrics atomic.Pointer[obs.CorpusMetrics]

	// faults is the optional write-fault injector (SetFaultInjector):
	// resilience tests arm it to prove disk faults surface as storage
	// errors with the store left consistent.
	faults atomic.Pointer[faultfs.Injector]

	mu      sync.Mutex
	entries map[string]Entry // guarded by mu
}

// SetParallel sets the number of decode workers Ingest uses (values
// below 2 select the sequential path). With workers, ingest runs the
// double-buffered parallel decoder over the upload tee, so the SHA-256
// digest and blob spooling (reader side) pipeline with the parse
// (worker side).
func (s *Store) SetParallel(n int) {
	s.parallel.Store(int32(n))
}

// SetMetrics attaches (or, with nil, detaches) the store's
// instrumentation hook: ingest volume, digest dedup and result-cache
// traffic. Safe to call concurrently with store operations.
func (s *Store) SetMetrics(m *obs.CorpusMetrics) {
	s.metrics.Store(m)
}

// SetFaultInjector attaches (or, with nil, detaches) a write-fault
// injector covering the store's durable write paths: the ingest blob
// spool (faultfs.SinkCorpusObject) and the result-cache fill
// (faultfs.SinkCorpusResult). Test-only; safe to call concurrently
// with store operations.
func (s *Store) SetFaultInjector(in *faultfs.Injector) {
	s.faults.Store(in)
}

// sinkWriter wraps w with the attached fault injector's rule for sink
// (a pass-through when none is attached).
func (s *Store) sinkWriter(sink string, w io.Writer) io.Writer {
	return s.faults.Load().Writer(sink, w)
}

// Open opens (creating if needed) the store rooted at root. The
// catalogue is always rebuilt from the object sidecars — the source of
// truth — so a stale, clobbered or missing index.json (for example
// after two processes ingested into the same root) can never hide
// traces that are on disk. index.json is rewritten as a side effect.
func Open(root string) (*Store, error) {
	s := &Store{root: root, entries: make(map[string]Entry)}
	for _, d := range []string{root, s.objectsDir(), s.resultsDir(), s.tmpDir()} {
		if err := os.MkdirAll(d, 0o777); err != nil {
			return nil, err
		}
	}
	if err := s.rebuildLocked(); err != nil {
		return nil, err
	}
	return s, nil
}

// Root returns the store's root directory.
func (s *Store) Root() string { return s.root }

func (s *Store) objectsDir() string { return filepath.Join(s.root, "objects") }
func (s *Store) resultsDir() string { return filepath.Join(s.root, "results") }
func (s *Store) tmpDir() string     { return filepath.Join(s.root, "tmp") }
func (s *Store) indexPath() string  { return filepath.Join(s.root, "index.json") }

func (s *Store) blobPath(digest string) string {
	return filepath.Join(s.objectsDir(), digest)
}
func (s *Store) sidecarPath(digest string) string {
	return s.blobPath(digest) + ".json"
}

// index is the serialized catalogue.
type index struct {
	Version int              `json:"version"`
	Entries map[string]Entry `json:"entries"`
}

// writeIndexLocked rewrites index.json from the catalogue; the caller
// holds s.mu. The index is a convenience export (one file to read the
// whole catalogue); the sidecars stay authoritative.
//
//tracelint:holds mu
func (s *Store) writeIndexLocked() error {
	return writeJSONAtomic(s.tmpDir(), s.indexPath(), index{Version: 1, Entries: s.entries})
}

// rebuildLocked reconstructs the catalogue from the object sidecars
// (the source of truth) and rewrites index.json. Sidecars without a
// blob are skipped; blobs without a sidecar are left for GC.
//
//tracelint:holds mu
func (s *Store) rebuildLocked() error {
	names, err := os.ReadDir(s.objectsDir())
	if err != nil {
		return err
	}
	entries := make(map[string]Entry)
	for _, de := range names {
		digest, ok := strings.CutSuffix(de.Name(), ".json")
		if !ok || !isHex(digest) {
			continue
		}
		var e Entry
		if err := readJSON(s.sidecarPath(digest), &e); err != nil {
			continue
		}
		if e.Digest != digest {
			continue
		}
		if _, err := os.Stat(s.blobPath(digest)); err != nil {
			continue
		}
		entries[digest] = e
	}
	s.entries = entries
	return s.writeIndexLocked()
}

// Rebuild re-derives the catalogue from the sidecars on disk —
// recovery from a lost or stale index.json.
func (s *Store) Rebuild() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rebuildLocked()
}

// countingWriter counts bytes passed through.
type countingWriter struct{ n int64 }

func (c *countingWriter) Write(p []byte) (int, error) {
	c.n += int64(len(p))
	return len(p), nil
}

// spoolWriter forwards to the blob staging file and remembers the
// first write error. The spool sits inside the ingest tee, so its
// failures reach the decoder as read errors and would otherwise be
// wrapped in ErrBadTrace — blaming the client for a dying disk. The
// recorded error lets Ingest re-classify them as storage faults.
type spoolWriter struct {
	w   io.Writer
	err error
}

func (s *spoolWriter) Write(p []byte) (int, error) {
	n, err := s.w.Write(p)
	if err != nil && s.err == nil {
		s.err = err
	}
	return n, err
}

// Ingest streams one trace into the store: the blob is staged to tmp/
// while a single pass computes the SHA-256 digest and the metadata
// summary through the format decoder, then lands atomically. format
// "" or "auto" selects content sniffing. The returned bool is false
// when the blob was already present (dedup by digest): the existing
// entry wins and the upload is discarded.
//
// A trace that fails to decode, or decodes to zero requests, is
// rejected and nothing is stored — the corpus only holds traces the
// pipeline can actually read. Errors from the upload side (including
// anything the reader r returns) keep their chain, so callers can
// classify wrapped sentinels like http.MaxBytesError; errors from the
// store's own disk are never wrapped in ErrBadTrace.
func (s *Store) Ingest(r io.Reader, format string) (Entry, bool, error) {
	return s.IngestAs(r, format, "")
}

// IngestAs is Ingest with a tenant attribution recorded on the entry
// for per-tenant accounting. On dedup the existing entry (and its
// original tenant) wins.
func (s *Store) IngestAs(r io.Reader, format, tenant string) (Entry, bool, error) {
	switch format {
	case "", "auto":
		var err error
		format, r, err = trace.SniffFormat(r)
		if err != nil {
			return Entry{}, false, fmt.Errorf("%w: %w", ErrBadTrace, err)
		}
	}
	tmpf, err := os.CreateTemp(s.tmpDir(), "ingest-*")
	if err != nil {
		return Entry{}, false, err
	}
	tmpName := tmpf.Name()
	keep := false
	defer func() {
		tmpf.Close()
		if !keep {
			os.Remove(tmpName)
		}
	}()

	h := sha256.New()
	cw := &countingWriter{}
	spool := &spoolWriter{w: s.sinkWriter(faultfs.SinkCorpusObject, tmpf)}
	// storageErr substitutes the spool's own failure for err: a decode
	// that died because the staging write died is a storage fault, not
	// a bad trace.
	storageErr := func(err error) error {
		if spool.err != nil {
			return fmt.Errorf("corpus: spooling ingest: %w", spool.err)
		}
		return err
	}
	tee := io.TeeReader(r, io.MultiWriter(h, cw, spool))
	var dec trace.Decoder
	if workers := int(s.parallel.Load()); workers > 1 {
		// Probe the first ParallelMinBytes before fanning out: a small
		// upload that ends inside the probe decodes sequentially from
		// the buffered prefix, so it never pays the block buffers and
		// worker goroutines of the parallel pipeline. The probe bytes
		// pass through the tee either way, so the digest and spooled
		// blob are unaffected.
		head := make([]byte, trace.ParallelMinBytes)
		n, rerr := io.ReadFull(tee, head)
		head = head[:n]
		if rerr != nil && rerr != io.EOF && rerr != io.ErrUnexpectedEOF {
			return Entry{}, false, storageErr(rerr)
		}
		if rerr != nil { // whole upload fits in the probe
			sd, serr := trace.NewDecoder(format, bytes.NewReader(head))
			if serr != nil {
				// The format hint came from the caller.
				return Entry{}, false, fmt.Errorf("%w: %w", ErrBadTrace, serr)
			}
			dec = sd
		} else {
			// The parallel decoder's coordinator goroutine owns all
			// reads of its source (the replayed probe, then the tee),
			// so digesting and spooling run concurrently with the
			// worker-side parse; after Summarize returns (or Close, on
			// the error path) the tee is ours again for the trailing
			// drain.
			pd, perr := trace.NewStreamParallelDecoder(io.MultiReader(bytes.NewReader(head), tee), format, workers)
			if perr != nil {
				if spool.err != nil {
					return Entry{}, false, storageErr(perr)
				}
				return Entry{}, false, fmt.Errorf("%w: %w", ErrBadTrace, perr)
			}
			defer pd.Close()
			dec = pd
		}
	} else {
		sd, serr := trace.NewDecoder(format, tee)
		if serr != nil {
			if spool.err != nil {
				return Entry{}, false, storageErr(serr)
			}
			return Entry{}, false, fmt.Errorf("%w: %w", ErrBadTrace, serr)
		}
		dec = sd
	}
	sum, err := trace.Summarize(dec)
	if err != nil {
		if spool.err != nil {
			return Entry{}, false, storageErr(err)
		}
		return Entry{}, false, fmt.Errorf("%w: as %s: %w", ErrBadTrace, format, err)
	}
	if sum.Requests == 0 {
		return Entry{}, false, fmt.Errorf("%w: empty trace", ErrBadTrace)
	}
	// Counted binary headers let the decoder stop before EOF; drain the
	// remainder so the digest and stored blob cover every input byte.
	if _, err := io.Copy(io.Discard, tee); err != nil {
		return Entry{}, false, storageErr(err)
	}
	if err := tmpf.Close(); err != nil {
		return Entry{}, false, err
	}

	digest := hex.EncodeToString(h.Sum(nil))
	entry := Entry{
		Digest:       digest,
		Format:       format,
		Size:         cw.n,
		Tenant:       tenant,
		Name:         sum.Meta.Name,
		Workload:     sum.Meta.Workload,
		Set:          sum.Meta.Set,
		TsdevKnown:   sum.Meta.TsdevKnown,
		Requests:     sum.Requests,
		Duration:     sum.Duration(),
		TotalBytes:   sum.TotalBytes,
		ReadFraction: sum.ReadFraction(),
		SeqFraction:  sum.SeqFraction(),
		Ingested:     time.Now().UTC(),
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if existing, ok := s.entries[digest]; ok {
		s.metrics.Load().IngestObserve(cw.n, int64(sum.Requests), false)
		return existing, false, nil
	}
	if err := os.Rename(tmpName, s.blobPath(digest)); err != nil {
		return Entry{}, false, err
	}
	keep = true
	if err := writeJSONAtomic(s.tmpDir(), s.sidecarPath(digest), entry); err != nil {
		return Entry{}, false, err
	}
	s.entries[digest] = entry
	if err := s.writeIndexLocked(); err != nil {
		return Entry{}, false, err
	}
	s.metrics.Load().IngestObserve(cw.n, int64(sum.Requests), true)
	return entry, true, nil
}

// IngestFile ingests the trace at path.
func (s *Store) IngestFile(path, format string) (Entry, bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return Entry{}, false, err
	}
	defer f.Close()
	return s.Ingest(f, format)
}

// Entries returns the catalogue sorted by ingest time, then digest.
func (s *Store) Entries() []Entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Entry, 0, len(s.entries))
	for _, e := range s.entries {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Ingested.Equal(out[j].Ingested) {
			return out[i].Ingested.Before(out[j].Ingested)
		}
		return out[i].Digest < out[j].Digest
	})
	return out
}

// Resolve finds the entry for a full digest or a unique prefix.
func (s *Store) Resolve(prefix string) (Entry, error) {
	prefix = strings.ToLower(prefix)
	if !isHex(prefix) {
		return Entry{}, fmt.Errorf("corpus: %q is not a hex digest", prefix)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.entries[prefix]; ok {
		return e, nil
	}
	var found []Entry
	for d, e := range s.entries {
		if strings.HasPrefix(d, prefix) {
			found = append(found, e)
		}
	}
	switch len(found) {
	case 0:
		return Entry{}, fmt.Errorf("corpus: no trace with digest %s", prefix)
	case 1:
		return found[0], nil
	default:
		return Entry{}, fmt.Errorf("corpus: digest prefix %s is ambiguous (%d matches)", prefix, len(found))
	}
}

// BlobPath returns the on-disk path of an ingested blob by its full
// digest.
func (s *Store) BlobPath(digest string) (string, error) {
	s.mu.Lock()
	_, ok := s.entries[digest]
	s.mu.Unlock()
	if !ok {
		return "", fmt.Errorf("corpus: no trace with digest %s", digest)
	}
	return s.blobPath(digest), nil
}

// OpenBlob opens a blob for reading by digest or unique prefix.
func (s *Store) OpenBlob(prefix string) (io.ReadCloser, Entry, error) {
	e, err := s.Resolve(prefix)
	if err != nil {
		return nil, Entry{}, err
	}
	f, err := os.Open(s.blobPath(e.Digest))
	if err != nil {
		return nil, Entry{}, err
	}
	return f, e, nil
}

// Len returns the number of catalogued traces.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// GCStats reports what GC removed.
type GCStats struct {
	// TmpRemoved counts abandoned staging files.
	TmpRemoved int
	// ResultsRemoved counts cached results dropped because their input
	// digest is gone or their blob/sidecar pair was broken.
	ResultsRemoved int
	// ObjectsRemoved counts half-ingested objects (blob or sidecar
	// missing its partner).
	ObjectsRemoved int
}

// GC removes abandoned staging files, half-written object pairs, and
// cached results whose input trace is no longer in the corpus, then
// rewrites the index. Run it while no ingest is in flight against the
// same root (e.g. with the daemon stopped).
func (s *Store) GC() (GCStats, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var st GCStats

	tmps, err := os.ReadDir(s.tmpDir())
	if err != nil {
		return st, err
	}
	for _, de := range tmps {
		if os.Remove(filepath.Join(s.tmpDir(), de.Name())) == nil {
			st.TmpRemoved++
		}
	}

	// Objects: drop blobs without sidecars and sidecars without blobs.
	objs, err := os.ReadDir(s.objectsDir())
	if err != nil {
		return st, err
	}
	for _, de := range objs {
		name := de.Name()
		if digest, ok := strings.CutSuffix(name, ".json"); ok {
			if _, err := os.Stat(s.blobPath(digest)); err != nil {
				os.Remove(filepath.Join(s.objectsDir(), name))
				st.ObjectsRemoved++
			}
			continue
		}
		if _, err := os.Stat(s.sidecarPath(name)); err != nil {
			os.Remove(filepath.Join(s.objectsDir(), name))
			st.ObjectsRemoved++
		}
	}
	if err := s.rebuildLocked(); err != nil {
		return st, err
	}

	// Results: drop orphans (input gone) and broken pairs.
	results, err := os.ReadDir(s.resultsDir())
	if err != nil {
		return st, err
	}
	for _, de := range results {
		name := de.Name()
		key, isMeta := strings.CutSuffix(name, ".json")
		if !isMeta {
			if _, err := os.Stat(s.resultMetaPath(name)); err != nil {
				os.Remove(s.resultPath(name))
				st.ResultsRemoved++
			}
			continue
		}
		var meta ResultMeta
		drop := false
		if err := readJSON(s.resultMetaPath(key), &meta); err != nil {
			drop = true
		} else if _, err := os.Stat(s.resultPath(key)); err != nil {
			drop = true
		} else if _, ok := s.entries[meta.InputDigest]; !ok {
			drop = true
		}
		if drop {
			os.Remove(s.resultPath(key))
			os.Remove(s.resultMetaPath(key))
			st.ResultsRemoved++
		}
	}
	return st, nil
}
