package corpus

// Result cache: reconstructed outputs keyed by the engine's
// (input digest, job fingerprint) cache key. *Store satisfies
// engine.ResultCache structurally, so the corpus package stays free of
// engine imports and the engine free of storage concerns.

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"repro/internal/faultfs"
)

// ResultMeta is the sidecar stored beside each cached result.
type ResultMeta struct {
	// Key is the cache key the result is stored under.
	Key string `json:"key"`
	// InputDigest names the corpus trace the result was computed from;
	// GC drops results whose input is gone.
	InputDigest string `json:"input_digest"`
	// Note is an opaque JSON document the caller stored with the
	// result (the engine records the normalized spec and report).
	Note json.RawMessage `json:"note,omitempty"`
	// Created is when the result landed (UTC).
	Created time.Time `json:"created"`
}

func (s *Store) resultPath(key string) string {
	return filepath.Join(s.resultsDir(), key)
}
func (s *Store) resultMetaPath(key string) string {
	return s.resultPath(key) + ".json"
}

// LookupResult returns the on-disk path of the cached output for key
// and the note stored with it. It implements the engine's result-cache
// hook.
func (s *Store) LookupResult(key string) (string, []byte, bool) {
	p, note, ok := s.lookupResult(key)
	if ok {
		s.metrics.Load().ResultHit()
	}
	return p, note, ok
}

// lookupResult is LookupResult without the hit metric, for internal
// callers (StoreResult's existence check is not cache traffic).
func (s *Store) lookupResult(key string) (string, []byte, bool) {
	if !isHex(key) {
		return "", nil, false
	}
	var meta ResultMeta
	if err := readJSON(s.resultMetaPath(key), &meta); err != nil {
		return "", nil, false
	}
	p := s.resultPath(key)
	if _, err := os.Stat(p); err != nil {
		return "", nil, false
	}
	return p, []byte(meta.Note), true
}

// StoreResult atomically stores the output produced by write under
// key, recording inputDigest and the caller's note (which must be
// valid JSON) in the sidecar. Storing an existing key is a no-op that
// returns the existing path, so racing identical jobs converge on one
// result. The blob lands before the sidecar; a crash between the two
// leaves an invisible result that GC removes.
func (s *Store) StoreResult(key, inputDigest string, note []byte, write func(io.Writer) error) (string, error) {
	if !isHex(key) {
		return "", fmt.Errorf("corpus: result key %q is not a hex digest", key)
	}
	if len(note) > 0 && !json.Valid(note) {
		return "", fmt.Errorf("corpus: result note must be valid JSON")
	}
	if p, _, ok := s.lookupResult(key); ok {
		return p, nil
	}
	tmpf, err := os.CreateTemp(s.tmpDir(), "result-*")
	if err != nil {
		return "", err
	}
	tmpName := tmpf.Name()
	keep := false
	defer func() {
		tmpf.Close()
		if !keep {
			os.Remove(tmpName)
		}
	}()
	if err := write(s.sinkWriter(faultfs.SinkCorpusResult, tmpf)); err != nil {
		return "", err
	}
	if err := tmpf.Close(); err != nil {
		return "", err
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := os.Stat(s.resultMetaPath(key)); err == nil {
		// Another writer landed the same key first; keep theirs.
		return s.resultPath(key), nil
	}
	if err := os.Rename(tmpName, s.resultPath(key)); err != nil {
		return "", err
	}
	keep = true
	meta := ResultMeta{Key: key, InputDigest: inputDigest, Note: note, Created: time.Now().UTC()}
	if err := writeJSONAtomic(s.tmpDir(), s.resultMetaPath(key), meta); err != nil {
		return "", err
	}
	s.metrics.Load().ResultStore()
	return s.resultPath(key), nil
}

// OpenResult opens a cached result for reading.
func (s *Store) OpenResult(key string) (io.ReadCloser, ResultMeta, error) {
	if !isHex(key) {
		return nil, ResultMeta{}, fmt.Errorf("corpus: result key %q is not a hex digest", key)
	}
	var meta ResultMeta
	if err := readJSON(s.resultMetaPath(key), &meta); err != nil {
		return nil, ResultMeta{}, fmt.Errorf("corpus: no cached result for key %s", key)
	}
	f, err := os.Open(s.resultPath(key))
	if err != nil {
		return nil, ResultMeta{}, err
	}
	return f, meta, nil
}
