// Package baseline implements the four trace-reconstruction methods
// the paper evaluates TraceTracker against (Section V):
//
//   - Acceleration: statically divide all inter-arrival times by a
//     fixed factor (the paper uses 100, after [8]).
//   - Revision: replay the instructions closed-loop on the target
//     device with no think time ([4]-style replay).
//   - Fixed-th: replay with idles inferred by a fixed threshold — any
//     old inter-arrival above the threshold contributes the excess as
//     idle (the paper selects 10 ms).
//   - Dynamic: TraceTracker's inference-driven emulation without the
//     asynchronous post-processing pass.
package baseline

import (
	"time"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/replay"
	"repro/internal/trace"
)

// DefaultAccelerationFactor is the paper's acceleration degree,
// borrowed from the flash-lifetime study it cites as [8].
const DefaultAccelerationFactor = 100

// DefaultFixedThreshold is the paper's tuned Fixed-th value: the
// worst-case device latency of the old storage, selected from a
// 10–100 ms sweep on the HDD node.
const DefaultFixedThreshold = 10 * time.Millisecond

// Acceleration reconstructs by shortening all inter-arrival times by
// factor. It involves no device.
func Acceleration(old *trace.Trace, factor float64) *trace.Trace {
	return replay.Accelerate(old, factor)
}

// Revision reconstructs by replaying closed-loop on the target device:
// each instruction issues as soon as the previous completes. Realistic
// Tcdel and Tsdev, but all idle context is lost.
func Revision(old *trace.Trace, target device.Device) *trace.Trace {
	return replay.Emulate(old, target, nil)
}

// FixedTh reconstructs by replaying with threshold-inferred idles:
// idle(i+1) = max(0, Tintt(i) − threshold).
func FixedTh(old *trace.Trace, target device.Device, threshold time.Duration) *trace.Trace {
	n := len(old.Requests)
	idle := make([]time.Duration, n)
	for i := 0; i+1 < n; i++ {
		intt := old.Requests[i+1].Arrival - old.Requests[i].Arrival
		if intt > threshold {
			idle[i+1] = intt - threshold
		}
	}
	return replay.Emulate(old, target, idle)
}

// Dynamic reconstructs with TraceTracker's inference model but skips
// post-processing, losing asynchronous-mode timing.
func Dynamic(old *trace.Trace, target device.Device) (*trace.Trace, error) {
	out, _, err := core.Reconstruct(old, target, core.Options{SkipPostProcess: true})
	return out, err
}

// TraceTracker is the full co-evaluation (inference + emulation +
// post-processing), re-exported here so comparison sweeps can iterate
// over all five methods uniformly.
func TraceTracker(old *trace.Trace, target device.Device) (*trace.Trace, error) {
	out, _, err := core.Reconstruct(old, target, core.Options{})
	return out, err
}

// Method names the five reconstruction techniques for reports.
type Method int

const (
	MethodAcceleration Method = iota
	MethodRevision
	MethodFixedTh
	MethodDynamic
	MethodTraceTracker
)

// String implements fmt.Stringer.
func (m Method) String() string {
	switch m {
	case MethodAcceleration:
		return "Acceleration"
	case MethodRevision:
		return "Revision"
	case MethodFixedTh:
		return "Fixed-th"
	case MethodDynamic:
		return "Dynamic"
	case MethodTraceTracker:
		return "TraceTracker"
	default:
		return "unknown"
	}
}

// Run applies the method to old with its default parameters.
func Run(m Method, old *trace.Trace, target device.Device) (*trace.Trace, error) {
	switch m {
	case MethodAcceleration:
		return Acceleration(old, DefaultAccelerationFactor), nil
	case MethodRevision:
		return Revision(old, target), nil
	case MethodFixedTh:
		return FixedTh(old, target, DefaultFixedThreshold), nil
	case MethodDynamic:
		return Dynamic(old, target)
	default:
		return TraceTracker(old, target)
	}
}
