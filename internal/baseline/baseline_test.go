package baseline

import (
	"testing"
	"time"

	"repro/internal/device"
	"repro/internal/trace"
	"repro/internal/workload"
)

func genOld(t *testing.T, name string, ops int) *trace.Trace {
	t.Helper()
	p, ok := workload.Lookup(name)
	if !ok {
		t.Fatalf("unknown workload %s", name)
	}
	app := workload.Generate(p, workload.GenOptions{Ops: ops, Seed: 99})
	res := app.Execute(device.NewHDD(device.DefaultHDDConfig()))
	res.Trace.TsdevKnown = p.TsdevKnown
	return res.Trace
}

func newTarget() device.Device { return device.NewArray(device.DefaultArrayConfig()) }

func TestAccelerationShortensDuration(t *testing.T) {
	old := genOld(t, "MSNFS", 2000)
	acc := Acceleration(old, DefaultAccelerationFactor)
	want := old.Duration() / DefaultAccelerationFactor
	got := acc.Duration()
	diff := got - want
	if diff < 0 {
		diff = -diff
	}
	if diff > want/100+time.Millisecond {
		t.Fatalf("accelerated duration %v, want ~%v", got, want)
	}
}

func TestRevisionLosesIdle(t *testing.T) {
	old := genOld(t, "MSNFS", 2000)
	rev := Revision(old, newTarget())
	// Closed-loop replay is vastly shorter than the original: all
	// think time disappears.
	if rev.Duration() >= old.Duration()/10 {
		t.Fatalf("revision duration %v not much below old %v", rev.Duration(), old.Duration())
	}
	if rev.Len() != old.Len() {
		t.Fatal("request count changed")
	}
}

func TestFixedThKeepsLongIdles(t *testing.T) {
	old := genOld(t, "MSNFS", 2000)
	fixed := FixedTh(old, newTarget(), DefaultFixedThreshold)
	rev := Revision(old, newTarget())
	// Fixed-th preserves idle beyond the threshold, so its duration
	// must exceed Revision's.
	if fixed.Duration() <= rev.Duration() {
		t.Fatalf("fixed-th %v should exceed revision %v", fixed.Duration(), rev.Duration())
	}
	// But it truncates every gap by up to the threshold, so it cannot
	// exceed the old duration.
	if fixed.Duration() > old.Duration() {
		t.Fatalf("fixed-th %v exceeds old %v", fixed.Duration(), old.Duration())
	}
}

func TestDynamicAndTraceTrackerRun(t *testing.T) {
	old := genOld(t, "homes", 2000)
	dyn, err := Dynamic(old, newTarget())
	if err != nil {
		t.Fatal(err)
	}
	tt, err := TraceTracker(old, newTarget())
	if err != nil {
		t.Fatal(err)
	}
	if dyn.Len() != old.Len() || tt.Len() != old.Len() {
		t.Fatal("request counts changed")
	}
	// Post-processing can only remove time.
	if tt.Duration() > dyn.Duration() {
		t.Fatalf("tracetracker %v should not exceed dynamic %v", tt.Duration(), dyn.Duration())
	}
}

func TestMethodString(t *testing.T) {
	names := map[Method]string{
		MethodAcceleration: "Acceleration",
		MethodRevision:     "Revision",
		MethodFixedTh:      "Fixed-th",
		MethodDynamic:      "Dynamic",
		MethodTraceTracker: "TraceTracker",
	}
	for m, want := range names {
		if m.String() != want {
			t.Fatalf("%d.String() = %q", m, m.String())
		}
	}
	if Method(99).String() != "unknown" {
		t.Fatal("unknown method string")
	}
}

func TestRunDispatch(t *testing.T) {
	old := genOld(t, "CFS", 1500)
	for _, m := range []Method{MethodAcceleration, MethodRevision, MethodFixedTh, MethodDynamic, MethodTraceTracker} {
		out, err := Run(m, old, newTarget())
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if out.Len() != old.Len() {
			t.Fatalf("%v: request count changed", m)
		}
		if err := out.Validate(); err != nil {
			t.Fatalf("%v: invalid output: %v", m, err)
		}
	}
}
