// Package clock provides the virtual-time substrate the simulators and
// the replay engine run on.
//
// The paper's hardware emulation replays traces in wall-clock time with
// sleep() and re-collects them with blktrace. Go's garbage collector
// and scheduler introduce jitter at the microsecond scale that replay
// timing cannot tolerate, so this reproduction performs replay in
// discrete virtual time: a Clock that only moves when the simulation
// advances it, and an event queue for components that need ordered
// future callbacks. The arithmetic performed is identical to the
// paper's replay loop; only the passage of time is simulated.
package clock

import (
	"container/heap"
	"time"
)

// Clock is a monotonically advancing virtual clock.
type Clock struct {
	now time.Duration
}

// New returns a Clock at time zero.
func New() *Clock { return &Clock{} }

// Now returns the current virtual time.
func (c *Clock) Now() time.Duration { return c.now }

// Advance moves the clock forward by d. Negative d is ignored: virtual
// time never runs backwards.
func (c *Clock) Advance(d time.Duration) {
	if d > 0 {
		c.now += d
	}
}

// AdvanceTo moves the clock to t if t is in the future.
func (c *Clock) AdvanceTo(t time.Duration) {
	if t > c.now {
		c.now = t
	}
}

// Event is a scheduled callback in an EventQueue.
type Event struct {
	At time.Duration
	// Fn runs when the event fires. It may schedule further events.
	Fn func(now time.Duration)

	index int // heap bookkeeping
	seq   int // FIFO tie-break for equal timestamps
}

// EventQueue is a deterministic discrete-event scheduler: events fire
// in timestamp order, FIFO among equal timestamps.
type EventQueue struct {
	clock *Clock
	h     eventHeap
	seq   int
}

// NewEventQueue returns an event queue driving the given clock.
func NewEventQueue(c *Clock) *EventQueue {
	return &EventQueue{clock: c}
}

// Len returns the number of pending events.
func (q *EventQueue) Len() int { return q.h.Len() }

// Schedule enqueues fn to run at time at. Events scheduled in the past
// fire at the current time (never backwards).
func (q *EventQueue) Schedule(at time.Duration, fn func(now time.Duration)) {
	if at < q.clock.Now() {
		at = q.clock.Now()
	}
	q.seq++
	heap.Push(&q.h, &Event{At: at, Fn: fn, seq: q.seq})
}

// ScheduleAfter enqueues fn to run d after the current time.
func (q *EventQueue) ScheduleAfter(d time.Duration, fn func(now time.Duration)) {
	q.Schedule(q.clock.Now()+d, fn)
}

// Step fires the earliest pending event, advancing the clock to its
// timestamp. It reports whether an event fired.
func (q *EventQueue) Step() bool {
	if q.h.Len() == 0 {
		return false
	}
	ev := heap.Pop(&q.h).(*Event)
	q.clock.AdvanceTo(ev.At)
	ev.Fn(q.clock.Now())
	return true
}

// Run fires events until the queue drains.
func (q *EventQueue) Run() {
	for q.Step() {
	}
}

// RunUntil fires events with timestamps <= deadline, advancing the
// clock no further than deadline.
func (q *EventQueue) RunUntil(deadline time.Duration) {
	for q.h.Len() > 0 && q.h[0].At <= deadline {
		q.Step()
	}
	q.clock.AdvanceTo(deadline)
}

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}
