package clock

import (
	"testing"
	"time"
)

func TestClockAdvance(t *testing.T) {
	c := New()
	if c.Now() != 0 {
		t.Fatal("new clock not at zero")
	}
	c.Advance(5 * time.Millisecond)
	if c.Now() != 5*time.Millisecond {
		t.Fatalf("Now = %v", c.Now())
	}
	c.Advance(-time.Hour)
	if c.Now() != 5*time.Millisecond {
		t.Fatal("negative advance must be ignored")
	}
	c.AdvanceTo(3 * time.Millisecond)
	if c.Now() != 5*time.Millisecond {
		t.Fatal("AdvanceTo must never rewind")
	}
	c.AdvanceTo(9 * time.Millisecond)
	if c.Now() != 9*time.Millisecond {
		t.Fatalf("AdvanceTo failed: %v", c.Now())
	}
}

func TestEventQueueOrder(t *testing.T) {
	c := New()
	q := NewEventQueue(c)
	var fired []int
	q.Schedule(30, func(time.Duration) { fired = append(fired, 3) })
	q.Schedule(10, func(time.Duration) { fired = append(fired, 1) })
	q.Schedule(20, func(time.Duration) { fired = append(fired, 2) })
	q.Run()
	if len(fired) != 3 || fired[0] != 1 || fired[1] != 2 || fired[2] != 3 {
		t.Fatalf("order = %v", fired)
	}
	if c.Now() != 30 {
		t.Fatalf("clock = %v", c.Now())
	}
}

func TestEventQueueFIFOTieBreak(t *testing.T) {
	c := New()
	q := NewEventQueue(c)
	var fired []int
	for i := 0; i < 5; i++ {
		i := i
		q.Schedule(7, func(time.Duration) { fired = append(fired, i) })
	}
	q.Run()
	for i, v := range fired {
		if v != i {
			t.Fatalf("tie-break not FIFO: %v", fired)
		}
	}
}

func TestEventCanScheduleMore(t *testing.T) {
	c := New()
	q := NewEventQueue(c)
	count := 0
	var chain func(now time.Duration)
	chain = func(now time.Duration) {
		count++
		if count < 4 {
			q.ScheduleAfter(10, chain)
		}
	}
	q.Schedule(0, chain)
	q.Run()
	if count != 4 {
		t.Fatalf("count = %d", count)
	}
	if c.Now() != 30 {
		t.Fatalf("clock = %v", c.Now())
	}
}

func TestSchedulePastClampsToNow(t *testing.T) {
	c := New()
	c.Advance(100)
	q := NewEventQueue(c)
	var at time.Duration = -1
	q.Schedule(50, func(now time.Duration) { at = now })
	q.Step()
	if at != 100 {
		t.Fatalf("past event fired at %v, want 100", at)
	}
}

func TestRunUntil(t *testing.T) {
	c := New()
	q := NewEventQueue(c)
	var fired []time.Duration
	for _, at := range []time.Duration{10, 20, 30, 40} {
		at := at
		q.Schedule(at, func(now time.Duration) { fired = append(fired, now) })
	}
	q.RunUntil(25)
	if len(fired) != 2 {
		t.Fatalf("fired %v", fired)
	}
	if c.Now() != 25 {
		t.Fatalf("clock = %v, want deadline", c.Now())
	}
	if q.Len() != 2 {
		t.Fatalf("pending = %d", q.Len())
	}
}

func TestStepOnEmptyQueue(t *testing.T) {
	q := NewEventQueue(New())
	if q.Step() {
		t.Fatal("Step on empty queue should report false")
	}
}
