package obs

import (
	"fmt"
	"testing"
)

func flightTrace(name string) *JobTrace {
	return &JobTrace{Name: name, Spans: []SpanOut{{ID: "1", Name: name}}}
}

// TestFlightRecorderEviction proves the memory bound: the ring never
// holds more than its capacity, evicts oldest first, and counts every
// eviction on the wired metric.
func TestFlightRecorderEviction(t *testing.T) {
	reg := NewRegistry()
	evictions := reg.Counter("evictions_total", "test", nil)
	f := NewFlightRecorder(3)
	f.SetEvictionCounter(evictions)

	for i := 0; i < 5; i++ {
		f.Add(fmt.Sprintf("job-%d", i), flightTrace(fmt.Sprintf("t%d", i)))
	}
	if f.Len() != 3 {
		t.Fatalf("ring holds %d timelines, capacity 3", f.Len())
	}
	if f.Evictions() != 2 || evictions.Value() != 2 {
		t.Fatalf("evictions: recorder %d, counter %d, want 2", f.Evictions(), evictions.Value())
	}
	for _, gone := range []string{"job-0", "job-1"} {
		if _, ok := f.Get(gone); ok {
			t.Fatalf("oldest entry %s survived eviction", gone)
		}
	}
	for _, kept := range []string{"job-2", "job-3", "job-4"} {
		if _, ok := f.Get(kept); !ok {
			t.Fatalf("recent entry %s evicted", kept)
		}
	}

	// Replacing an existing ID (a cache-replayed job re-finishing)
	// must not consume a second slot or evict anything.
	f.Add("job-3", flightTrace("t3-replayed"))
	if f.Len() != 3 || f.Evictions() != 2 {
		t.Fatalf("replace-in-place evicted: len %d, evictions %d", f.Len(), f.Evictions())
	}
	if jt, _ := f.Get("job-3"); jt.Name != "t3-replayed" {
		t.Fatalf("replace kept the old timeline: %s", jt.Name)
	}

	// Shrinking the ring evicts down to the new bound.
	f.SetCapacity(1)
	if f.Len() != 1 || f.Evictions() != 4 {
		t.Fatalf("after shrink: len %d, evictions %d", f.Len(), f.Evictions())
	}
	if _, ok := f.Get("job-4"); !ok {
		t.Fatal("newest entry evicted by shrink")
	}

	// A nil timeline is ignored rather than stored.
	f.Add("job-nil", nil)
	if _, ok := f.Get("job-nil"); ok {
		t.Fatal("nil timeline stored")
	}
}
