package obs

// Domain metric bundles: pre-registered metric sets the engine and
// the corpus store accept as nil-checked hooks, so instrumentation
// costs nothing when disabled and only atomic updates when enabled.
// All methods tolerate a nil receiver, which keeps the call sites
// free of guards for the pure-counter updates; call sites that would
// otherwise pay a time.Now() still guard explicitly.

import "time"

// Engine pipeline stages, in pipeline order. The epoch-pipelined HDD
// executor exercises all five; the shard-parallel executor has no
// service stage (shard-safe devices drain between epochs, so nothing
// is serialized on device state).
const (
	StagePlan = iota
	StageDecompose
	StageService
	StageEmulate
	StageMerge
	NumStages
)

// StageNames are the stage label values, indexed by the constants
// above.
var StageNames = [NumStages]string{"plan", "decompose", "service", "emulate", "merge"}

// EngineMetrics is the engine's instrumentation hook
// (engine.Config.Metrics): per-stage wall time and queue occupancy,
// token-pool wait, epochs in flight, and result-cache traffic. A nil
// *EngineMetrics disables instrumentation entirely.
type EngineMetrics struct {
	// StageNanos accumulates wall nanoseconds spent per stage (exposed
	// as engine_stage_seconds_total); StageEpochs counts epochs that
	// passed through each stage.
	StageNanos  [NumStages]*Counter
	StageEpochs [NumStages]*Counter
	// QueueDepth is the occupancy of each stage's input queue
	// (StagePlan has none and stays zero).
	QueueDepth [NumStages]*Gauge
	// TokenWaitNanos accumulates producer stalls on the in-flight
	// token pool — backpressure from slow downstream stages.
	TokenWaitNanos *Counter
	// EpochsInFlight is the number of epochs holding an in-flight
	// token (admitted by the planner, not yet merged).
	EpochsInFlight *Gauge
	// Epochs and Requests count merged work.
	Epochs   *Counter
	Requests *Counter
	// CacheHits / CacheMisses count result-cache consultations by
	// cached job runs.
	CacheHits   *Counter
	CacheMisses *Counter
}

// NewEngineMetrics registers the engine metric set on r.
func NewEngineMetrics(r *Registry) *EngineMetrics {
	m := &EngineMetrics{}
	for i, name := range StageNames {
		l := Labels{"stage": name}
		m.StageNanos[i] = r.CounterScaled("engine_stage_seconds_total",
			"Cumulative wall time per engine pipeline stage.", l, 1e-9)
		m.StageEpochs[i] = r.Counter("engine_stage_epochs_total",
			"Epochs processed per engine pipeline stage.", l)
		m.QueueDepth[i] = r.Gauge("engine_stage_queue_depth",
			"Occupancy of each pipeline stage's input queue.", l)
	}
	m.TokenWaitNanos = r.CounterScaled("engine_token_wait_seconds_total",
		"Cumulative producer wall time stalled on the in-flight epoch token pool.", nil, 1e-9)
	m.EpochsInFlight = r.Gauge("engine_epochs_in_flight",
		"Epochs admitted by the planner and not yet merged.", nil)
	m.Epochs = r.Counter("engine_epochs_total", "Epochs merged into output.", nil)
	m.Requests = r.Counter("engine_requests_total", "Trace requests reconstructed.", nil)
	m.CacheHits = r.Counter("engine_cache_hits_total",
		"Cached jobs served from the result cache without reconstructing.", nil)
	m.CacheMisses = r.Counter("engine_cache_misses_total",
		"Cached jobs that missed the result cache and reconstructed.", nil)
	return m
}

// StageAdd records d of wall time (and one epoch) against a stage.
func (m *EngineMetrics) StageAdd(stage int, d time.Duration) {
	if m == nil {
		return
	}
	m.StageNanos[stage].Add(int64(d))
	m.StageEpochs[stage].Inc()
}

// QueuePush/QueuePop track a stage input queue's occupancy around
// channel sends and receives.
func (m *EngineMetrics) QueuePush(stage int) {
	if m == nil {
		return
	}
	m.QueueDepth[stage].Inc()
}

func (m *EngineMetrics) QueuePop(stage int) {
	if m == nil {
		return
	}
	m.QueueDepth[stage].Dec()
}

// StageSeconds snapshots the cumulative per-stage wall time, keyed by
// stage name — what tracebench -stages reports.
func (m *EngineMetrics) StageSeconds() map[string]float64 {
	if m == nil {
		return nil
	}
	out := make(map[string]float64, NumStages+1)
	for i, name := range StageNames {
		out[name] = float64(m.StageNanos[i].Value()) / 1e9
	}
	out["token_wait"] = float64(m.TokenWaitNanos.Value()) / 1e9
	return out
}

// CorpusMetrics is the corpus store's instrumentation hook
// (Store.SetMetrics): ingest volume, digest dedup, and result-cache
// traffic. A nil *CorpusMetrics disables instrumentation.
type CorpusMetrics struct {
	IngestBytes   *Counter
	IngestRecords *Counter
	IngestTraces  *Counter
	DedupHits     *Counter
	ResultHits    *Counter
	ResultStores  *Counter
}

// NewCorpusMetrics registers the corpus metric set on r.
func NewCorpusMetrics(r *Registry) *CorpusMetrics {
	return &CorpusMetrics{
		IngestBytes: r.Counter("corpus_ingest_bytes_total",
			"Bytes accepted by corpus ingest (including deduplicated uploads).", nil),
		IngestRecords: r.Counter("corpus_ingest_records_total",
			"Trace records decoded during corpus ingest.", nil),
		IngestTraces: r.Counter("corpus_ingest_traces_total",
			"New traces landed in the corpus.", nil),
		DedupHits: r.Counter("corpus_dedup_hits_total",
			"Uploads discarded because their digest was already stored.", nil),
		ResultHits: r.Counter("corpus_result_cache_hits_total",
			"Result-cache lookups that found a cached output.", nil),
		ResultStores: r.Counter("corpus_result_cache_stores_total",
			"New reconstructed outputs stored in the result cache.", nil),
	}
}

// IngestObserve records one ingest outcome.
func (m *CorpusMetrics) IngestObserve(bytes, records int64, created bool) {
	if m == nil {
		return
	}
	m.IngestBytes.Add(bytes)
	m.IngestRecords.Add(records)
	if created {
		m.IngestTraces.Inc()
	} else {
		m.DedupHits.Inc()
	}
}

// ResultHit / ResultStore record result-cache traffic.
func (m *CorpusMetrics) ResultHit() {
	if m != nil {
		m.ResultHits.Inc()
	}
}

func (m *CorpusMetrics) ResultStore() {
	if m != nil {
		m.ResultStores.Inc()
	}
}
