package obs

// Per-job span tracing: a lock-cheap recorder in the same nil-safe
// hook idiom as EngineMetrics. A Tracer collects a bounded tree of
// spans (monotonic start/end, parent links, a small inline attribute
// set) for one job; components receive it through config pointers and
// call Start/Child/End without caring whether tracing is on. Every
// method tolerates a nil *Tracer and the zero Span, so the disabled
// path costs a nil check and no time.Now.
//
// Memory is hard-bounded: the span buffer is allocated once at
// capacity and never grows, so a 100k-epoch job records O(cap) spans.
// Epoch spans go through StartEpoch, which samples — every stride-th
// epoch is recorded, and the stride doubles as the buffer fills — so
// early, middle and late epochs all survive in a long job. Children
// of an unsampled epoch get the zero Span and record nothing.

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sort"
	"sync"
	"time"
)

// TraceContext is a position in a W3C trace: the 16-byte trace ID and
// 8-byte span ID as lowercase hex. The zero value means "no incoming
// trace".
type TraceContext struct {
	TraceID string // 32 lowercase hex chars, not all zero
	SpanID  string // 16 lowercase hex chars, not all zero
}

// Valid reports whether tc carries a usable trace ID.
func (tc TraceContext) Valid() bool {
	return isHexID(tc.TraceID, 32) && isHexID(tc.SpanID, 16)
}

// Traceparent renders the W3C traceparent header value
// (version 00, sampled flag set).
func (tc TraceContext) Traceparent() string {
	return "00-" + tc.TraceID + "-" + tc.SpanID + "-01"
}

// ParseTraceparent parses a W3C traceparent header value. Unknown
// versions with the version-00 shape are accepted (per spec); all-zero
// IDs and malformed values are rejected.
func ParseTraceparent(s string) (TraceContext, bool) {
	if len(s) < 55 || s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return TraceContext{}, false
	}
	version, traceID, spanID := s[:2], s[3:35], s[36:52]
	if !isHexID(version, 2) || version == "ff" {
		return TraceContext{}, false
	}
	if len(s) > 55 && (version == "00" || s[55] != '-') {
		return TraceContext{}, false
	}
	if !isHexID(s[53:55], 2) {
		return TraceContext{}, false
	}
	tc := TraceContext{TraceID: traceID, SpanID: spanID}
	if !tc.Valid() {
		return TraceContext{}, false
	}
	return tc, true
}

// isHexID reports whether s is exactly n lowercase hex chars and (for
// ID fields) not all zero.
func isHexID(s string, n int) bool {
	if len(s) != n {
		return false
	}
	zero := true
	for i := 0; i < n; i++ {
		c := s[i]
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return false
		}
		if c != '0' {
			zero = false
		}
	}
	return n == 2 || !zero
}

// NewTraceContext mints a fresh random trace position.
func NewTraceContext() TraceContext {
	var b [24]byte
	if _, err := rand.Read(b[:]); err != nil {
		// Entropy exhaustion never happens on the platforms we run on,
		// but an all-zero ID would be invalid per spec.
		b[0], b[16] = 1, 1
	}
	return TraceContext{
		TraceID: hex.EncodeToString(b[:16]),
		SpanID:  hex.EncodeToString(b[16:]),
	}
}

// Attr is one span attribute. Values are int64 — counts, indexes,
// nanosecond durations — so recording one never allocates.
type Attr struct {
	Key string `json:"key"`
	Val int64  `json:"val"`
}

// spanRec is the recorded form of a span. Records live in the
// Tracer's fixed-capacity slice; Span handles hold stable pointers
// into its backing array (the slice is never appended past capacity).
type spanRec struct {
	id     uint64
	parent uint64 // 0 = no parent (the root span)
	name   string
	start  int64 // ns since Tracer start
	end    int64 // 0 while open
	nattrs int32
	attrs  [4]Attr
}

// Span is a handle to one recorded span. The zero value is a no-op:
// every method is safe and free on it, which is how unsampled epochs
// and disabled tracers cost nothing downstream.
type Span struct {
	t   *Tracer
	rec *spanRec
}

// Recorded reports whether the span is actually being recorded.
func (s Span) Recorded() bool { return s.t != nil }

// Child starts a span parented under s, no-op if s is.
func (s Span) Child(name string) Span {
	if s.t == nil {
		return Span{}
	}
	return s.t.Start(s, name)
}

// End closes the span at the current time. Idempotent: the first End
// wins, so a deferred safety End after an explicit one is harmless.
func (s Span) End() {
	if s.t == nil {
		return
	}
	now := int64(time.Since(s.t.start))
	s.t.mu.Lock()
	if s.rec.end == 0 {
		s.rec.end = now
	}
	s.t.mu.Unlock()
}

// SetAttr attaches a key/value pair. Spans carry a small fixed attr
// set; pairs beyond it are dropped.
func (s Span) SetAttr(key string, v int64) {
	if s.t == nil {
		return
	}
	s.t.mu.Lock()
	if int(s.rec.nattrs) < len(s.rec.attrs) {
		s.rec.attrs[s.rec.nattrs] = Attr{Key: key, Val: v}
		s.rec.nattrs++
	}
	s.t.mu.Unlock()
}

// DefaultTracerCapacity bounds a job's span count when the caller
// doesn't choose: enough for the full fixed stages plus a few
// thousand sampled epochs.
const DefaultTracerCapacity = 4096

// epochReserve is the headroom StartEpoch demands before recording an
// epoch, so the epoch's per-stage children (decompose, service,
// emulate, merge) still fit in the buffer after the epoch span does.
const epochReserve = 8

// Tracer records one job's span tree. Create with NewTracer, hand to
// the engine/daemon via config pointers, then Finish for the
// exportable tree. All methods are safe on a nil receiver (recording
// disabled) and safe for concurrent use.
type Tracer struct {
	mu            sync.Mutex
	ctx           TraceContext
	parentSpan    string // incoming traceparent span ID, if any
	name          string
	start         time.Time
	spans         []spanRec // cap fixed at construction; never reallocated. guarded by mu
	nextID        uint64    // guarded by mu
	stride        int       // guarded by mu
	droppedSpans  int64     // guarded by mu
	droppedEpochs int64     // guarded by mu
	root          Span      // written once in NewTracer, immutable after
}

// NewTracer starts a trace for one job. capacity bounds the recorded
// span count (<= 0 means DefaultTracerCapacity). If parent carries a
// valid trace ID the job joins that trace (and when it also names a
// span, the root span records it as its parent — a trace-ID-only
// parent, e.g. one restored from a journal, just pins the trace ID);
// otherwise a fresh trace ID is minted. The root span is open on
// return; Finish closes it.
func NewTracer(name string, capacity int, parent TraceContext) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTracerCapacity
	}
	if capacity < 16 {
		capacity = 16
	}
	ctx := NewTraceContext()
	parentSpan := ""
	if isHexID(parent.TraceID, 32) {
		ctx.TraceID = parent.TraceID
		if isHexID(parent.SpanID, 16) {
			parentSpan = parent.SpanID
		}
	}
	t := &Tracer{
		ctx:        ctx,
		parentSpan: parentSpan,
		name:       name,
		start:      time.Now(),
		spans:      make([]spanRec, 0, capacity),
		stride:     1,
	}
	t.mu.Lock()
	t.root = t.startLocked(Span{}, name)
	t.mu.Unlock()
	return t
}

// Context returns the trace position of the job's root span — what a
// response traceparent should carry.
func (t *Tracer) Context() TraceContext {
	if t == nil {
		return TraceContext{}
	}
	return t.ctx
}

// Root returns the job root span (the zero Span on a nil tracer).
func (t *Tracer) Root() Span {
	if t == nil {
		return Span{}
	}
	return t.root
}

// Start opens a span under parent (use Root() for top-level phases).
// Returns the zero Span when the buffer is full or t is nil.
func (t *Tracer) Start(parent Span, name string) Span {
	if t == nil {
		return Span{}
	}
	t.mu.Lock()
	s := t.startLocked(parent, name)
	t.mu.Unlock()
	return s
}

// startLocked appends the span record; the caller holds t.mu.
//
//tracelint:holds mu
func (t *Tracer) startLocked(parent Span, name string) Span {
	if len(t.spans) == cap(t.spans) {
		t.droppedSpans++
		return Span{}
	}
	t.nextID++
	var pid uint64
	if parent.rec != nil {
		pid = parent.rec.id
	}
	t.spans = append(t.spans, spanRec{
		id:     t.nextID,
		parent: pid,
		name:   name,
		start:  int64(time.Since(t.start)),
	})
	return Span{t: t, rec: &t.spans[len(t.spans)-1]}
}

// StartEpoch opens a sampled epoch span under parent, carrying the
// epoch index as an attribute. Epochs are recorded every stride-th
// index, and the stride doubles whenever the buffer passes 3/4 full,
// so arbitrarily long jobs keep a spread of epochs within the fixed
// capacity. Unsampled epochs return the zero Span — their per-stage
// children then record nothing, at nil-check cost.
func (t *Tracer) StartEpoch(parent Span, index int) Span {
	if t == nil {
		return Span{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if index%t.stride != 0 || len(t.spans)+epochReserve > cap(t.spans) {
		t.droppedEpochs++
		return Span{}
	}
	if 4*len(t.spans) >= 3*cap(t.spans) {
		t.stride *= 2
	}
	s := t.startLocked(parent, "epoch")
	if s.rec != nil {
		s.rec.attrs[0] = Attr{Key: "epoch", Val: int64(index)}
		s.rec.nattrs = 1
	}
	return s
}

// Finish closes the root span and returns the exportable tree.
// Safe to call on a nil tracer (returns nil).
func (t *Tracer) Finish() *JobTrace {
	if t == nil {
		return nil
	}
	t.root.End()
	return t.Snapshot()
}

// Snapshot renders the current span tree without closing anything —
// open spans (the root included, before Finish) export with their
// duration so far.
func (t *Tracer) Snapshot() *JobTrace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	now := int64(time.Since(t.start))
	jt := &JobTrace{
		TraceID:       t.ctx.TraceID,
		ParentSpanID:  t.parentSpan,
		Name:          t.name,
		Start:         t.start,
		DroppedSpans:  t.droppedSpans,
		DroppedEpochs: t.droppedEpochs,
		Spans:         make([]SpanOut, len(t.spans)),
	}
	for i := range t.spans {
		rec := &t.spans[i]
		end := rec.end
		if end == 0 {
			end = now
		}
		out := SpanOut{
			ID:      t.spanID(rec.id),
			Name:    rec.name,
			StartNS: rec.start,
			EndNS:   end,
		}
		if rec.parent != 0 {
			out.Parent = t.spanID(rec.parent)
		}
		if rec.nattrs > 0 {
			out.Attrs = make(map[string]int64, rec.nattrs)
			for _, a := range rec.attrs[:rec.nattrs] {
				out.Attrs[a.Key] = a.Val
			}
		}
		jt.Spans[i] = out
	}
	if len(jt.Spans) > 0 {
		jt.DurationNS = jt.Spans[0].EndNS - jt.Spans[0].StartNS
	}
	return jt
}

// spanID renders a span's wire ID. The root span carries the trace
// context's W3C span ID (so the echoed traceparent points at it);
// descendants use their sequence number.
func (t *Tracer) spanID(id uint64) string {
	if id == 1 {
		return t.ctx.SpanID
	}
	return fmt.Sprintf("%016x", id)
}

// JobTrace is one job's exported span tree: the JSON served by
// GET /jobs/{id}/trace and the input to WriteChromeTrace.
type JobTrace struct {
	TraceID       string    `json:"trace_id"`
	ParentSpanID  string    `json:"parent_span_id,omitempty"`
	Name          string    `json:"name"`
	Start         time.Time `json:"start"`
	DurationNS    int64     `json:"duration_ns"`
	DroppedSpans  int64     `json:"dropped_spans,omitempty"`
	DroppedEpochs int64     `json:"dropped_epochs,omitempty"`
	Spans         []SpanOut `json:"spans"`
}

// SpanOut is one span in the exported tree. Times are nanoseconds
// relative to the trace start; the first span is always the job root.
type SpanOut struct {
	ID      string           `json:"id"`
	Parent  string           `json:"parent,omitempty"`
	Name    string           `json:"name"`
	StartNS int64            `json:"start_ns"`
	EndNS   int64            `json:"end_ns"`
	Attrs   map[string]int64 `json:"attrs,omitempty"`
}

// Duration returns the span's wall time.
func (s SpanOut) Duration() time.Duration {
	return time.Duration(s.EndNS - s.StartNS)
}

// SlowestSpans returns the k longest non-root spans, longest first —
// the payload of the daemon's slow-job log line.
func (jt *JobTrace) SlowestSpans(k int) []SpanOut {
	if jt == nil || len(jt.Spans) <= 1 || k <= 0 {
		return nil
	}
	spans := make([]SpanOut, len(jt.Spans)-1)
	copy(spans, jt.Spans[1:])
	sort.SliceStable(spans, func(i, j int) bool {
		return spans[i].Duration() > spans[j].Duration()
	})
	if len(spans) > k {
		spans = spans[:k]
	}
	return spans
}

// SummarizeSpans renders spans as "name dur; name dur" for log lines.
func SummarizeSpans(spans []SpanOut) string {
	var b []byte
	for i, s := range spans {
		if i > 0 {
			b = append(b, "; "...)
		}
		b = append(b, s.Name...)
		if v, ok := s.Attrs["epoch"]; ok {
			b = append(b, fmt.Sprintf("[%d]", v)...)
		}
		b = append(b, ' ')
		b = append(b, s.Duration().Round(time.Microsecond).String()...)
	}
	return string(b)
}
