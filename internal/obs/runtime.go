package obs

// Go runtime health gauges for the daemon registry: goroutine count,
// heap size, cumulative GC pause and GOMAXPROCS, evaluated at scrape
// time. ReadMemStats stops the world, so its snapshot is cached
// briefly — one scrape reads one snapshot regardless of how many
// series consult it, and scrape storms can't turn into GC-pause
// storms.

import (
	"runtime"
	"sync"
	"time"
)

// memStatsCache serves runtime.MemStats snapshots no older than ttl.
type memStatsCache struct {
	mu   sync.Mutex
	ttl  time.Duration
	at   time.Time        // guarded by mu
	stat runtime.MemStats // guarded by mu
}

func (c *memStatsCache) get() *runtime.MemStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.at.IsZero() || time.Since(c.at) > c.ttl {
		runtime.ReadMemStats(&c.stat)
		c.at = time.Now()
	}
	return &c.stat
}

// RegisterRuntimeMetrics registers Go runtime series on r:
// go_goroutines, go_memstats_heap_alloc_bytes,
// go_gc_pause_seconds_total and go_gomaxprocs. Values are computed at
// scrape time; registration is idempotent like every registry call.
func RegisterRuntimeMetrics(r *Registry) {
	cache := &memStatsCache{ttl: 100 * time.Millisecond}
	r.GaugeFunc("go_goroutines", "Goroutines that currently exist.", nil,
		func() float64 { return float64(runtime.NumGoroutine()) })
	r.GaugeFunc("go_memstats_heap_alloc_bytes", "Heap bytes allocated and still in use.", nil,
		func() float64 { return float64(cache.get().HeapAlloc) })
	r.CounterFunc("go_gc_pause_seconds_total", "Cumulative GC stop-the-world pause time.", nil,
		func() float64 { return float64(cache.get().PauseTotalNs) / 1e9 })
	r.GaugeFunc("go_gomaxprocs", "GOMAXPROCS: OS threads executing Go code simultaneously.", nil,
		func() float64 { return float64(runtime.GOMAXPROCS(0)) })
}
