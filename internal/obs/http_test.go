package obs

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestNewLogger(t *testing.T) {
	var buf bytes.Buffer
	log, err := NewLogger(&buf, "info", "json")
	if err != nil {
		t.Fatal(err)
	}
	log.Debug("hidden")
	log.Info("shown", "k", "v")
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("log output is not one JSON record: %q", buf.String())
	}
	if rec["msg"] != "shown" || rec["k"] != "v" {
		t.Fatalf("record: %v", rec)
	}
	if _, err := NewLogger(io.Discard, "loud", "text"); err == nil {
		t.Fatal("bad level accepted")
	}
	if _, err := NewLogger(io.Discard, "info", "xml"); err == nil {
		t.Fatal("bad format accepted")
	}
}

func TestMiddlewareRequestIDAndMetrics(t *testing.T) {
	reg := NewRegistry()
	hm := NewHTTPMetrics(reg, "t")
	var logBuf bytes.Buffer
	log := slog.New(slog.NewTextHandler(&logBuf, &slog.HandlerOptions{Level: slog.LevelDebug}))

	mux := http.NewServeMux()
	var sawID string
	mux.HandleFunc("GET /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		sawID = RequestIDFrom(r.Context())
		LoggerFrom(r.Context()).Info("handling", "job", r.PathValue("id"))
		w.WriteHeader(http.StatusOK)
		w.Write([]byte("ok"))
	})
	h := Middleware(log, hm, mux)

	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/jobs/job-7", nil))
	hdr := rr.Header().Get("X-Request-ID")
	if hdr == "" || hdr != sawID {
		t.Fatalf("request id: header %q, context %q", hdr, sawID)
	}
	logs := logBuf.String()
	if !strings.Contains(logs, "request_id="+hdr) {
		t.Fatalf("handler log missing bound request id:\n%s", logs)
	}
	if !strings.Contains(logs, "route=\"GET /jobs/{id}\"") {
		t.Fatalf("completion log missing route:\n%s", logs)
	}

	// Unmatched request lands under its own label and logs a warning.
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/nope", nil))

	var buf strings.Builder
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`t_requests_total{code="200",route="GET /jobs/{id}"} 1`,
		`t_requests_total{code="404",route="unmatched"} 1`,
		`t_request_seconds_count{route="GET /jobs/{id}"} 1`,
		"t_requests_in_flight 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q:\n%s", want, out)
		}
	}
	if _, err := ParseExposition([]byte(out)); err != nil {
		t.Fatalf("exposition does not parse: %v", err)
	}
}

func TestRequestIDsDistinct(t *testing.T) {
	a, b := nextRequestID(), nextRequestID()
	if a == b {
		t.Fatalf("request ids collide: %s", a)
	}
}
