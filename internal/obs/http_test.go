package obs

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestNewLogger(t *testing.T) {
	var buf bytes.Buffer
	log, err := NewLogger(&buf, "info", "json")
	if err != nil {
		t.Fatal(err)
	}
	log.Debug("hidden")
	log.Info("shown", "k", "v")
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("log output is not one JSON record: %q", buf.String())
	}
	if rec["msg"] != "shown" || rec["k"] != "v" {
		t.Fatalf("record: %v", rec)
	}
	if _, err := NewLogger(io.Discard, "loud", "text"); err == nil {
		t.Fatal("bad level accepted")
	}
	if _, err := NewLogger(io.Discard, "info", "xml"); err == nil {
		t.Fatal("bad format accepted")
	}
}

func TestMiddlewareRequestIDAndMetrics(t *testing.T) {
	reg := NewRegistry()
	hm := NewHTTPMetrics(reg, "t")
	var logBuf bytes.Buffer
	log := slog.New(slog.NewTextHandler(&logBuf, &slog.HandlerOptions{Level: slog.LevelDebug}))

	mux := http.NewServeMux()
	var sawID string
	mux.HandleFunc("GET /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		sawID = RequestIDFrom(r.Context())
		LoggerFrom(r.Context()).Info("handling", "job", r.PathValue("id"))
		w.WriteHeader(http.StatusOK)
		w.Write([]byte("ok"))
	})
	h := Middleware(log, hm, mux)

	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/jobs/job-7", nil))
	hdr := rr.Header().Get("X-Request-ID")
	if hdr == "" || hdr != sawID {
		t.Fatalf("request id: header %q, context %q", hdr, sawID)
	}
	logs := logBuf.String()
	if !strings.Contains(logs, "request_id="+hdr) {
		t.Fatalf("handler log missing bound request id:\n%s", logs)
	}
	if !strings.Contains(logs, "route=\"GET /jobs/{id}\"") {
		t.Fatalf("completion log missing route:\n%s", logs)
	}

	// Unmatched request lands under its own label and logs a warning.
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/nope", nil))

	var buf strings.Builder
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`t_requests_total{code="200",route="GET /jobs/{id}"} 1`,
		`t_requests_total{code="404",route="unmatched"} 1`,
		`t_request_seconds_count{route="GET /jobs/{id}"} 1`,
		"t_requests_in_flight 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q:\n%s", want, out)
		}
	}
	if _, err := ParseExposition([]byte(out)); err != nil {
		t.Fatalf("exposition does not parse: %v", err)
	}
}

func TestRequestIDsDistinct(t *testing.T) {
	a, b := nextRequestID(), nextRequestID()
	if a == b {
		t.Fatalf("request ids collide: %s", a)
	}
}

// TestMiddlewareUnmatchedRoute is the cardinality regression test for
// the "unmatched" bucket: requests matching no mux pattern — probe
// paths, typos, non-mux handlers — must aggregate under one
// route="unmatched" label, never mint per-path series.
func TestMiddlewareUnmatchedRoute(t *testing.T) {
	reg := NewRegistry()
	hm := NewHTTPMetrics(reg, "t")
	mux := http.NewServeMux()
	mux.HandleFunc("GET /real", func(w http.ResponseWriter, r *http.Request) {})
	h := Middleware(NopLogger(), hm, mux)

	for _, path := range []string{"/nope", "/admin.php", "/nope/deeper", "/.env"} {
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, httptest.NewRequest("GET", path, nil))
		if rr.Code != http.StatusNotFound {
			t.Fatalf("GET %s = %d, want 404", path, rr.Code)
		}
	}
	// A handler that is not a ServeMux never sets r.Pattern; those
	// requests land in the same bucket instead of an empty label.
	plain := Middleware(NopLogger(), hm, http.HandlerFunc(
		func(w http.ResponseWriter, r *http.Request) { w.WriteHeader(http.StatusTeapot) }))
	plain.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/whatever", nil))

	var buf strings.Builder
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`t_requests_total{code="404",route="unmatched"} 4`,
		`t_requests_total{code="418",route="unmatched"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q:\n%s", want, out)
		}
	}
	for _, leak := range []string{"/nope", "/admin.php", "/.env", "/whatever", `route=""`} {
		if strings.Contains(out, leak) {
			t.Errorf("per-path label leaked into metrics (%q):\n%s", leak, out)
		}
	}
}

func TestMiddlewareTraceparent(t *testing.T) {
	var got TraceContext
	h := Middleware(NopLogger(), nil, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got = TraceContextFrom(r.Context())
	}))

	// A valid incoming traceparent is bound to the request and echoed.
	incoming := "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"
	req := httptest.NewRequest("GET", "/", nil)
	req.Header.Set("Traceparent", incoming)
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	if got.TraceID != "0af7651916cd43dd8448eb211c80319c" {
		t.Fatalf("handler saw trace context %+v", got)
	}
	if echo := rr.Header().Get("Traceparent"); echo != incoming {
		t.Fatalf("traceparent echo: %q, want %q", echo, incoming)
	}

	// No (or malformed) traceparent: a fresh valid one is minted.
	req = httptest.NewRequest("GET", "/", nil)
	req.Header.Set("Traceparent", "garbage")
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	minted, ok := ParseTraceparent(rr.Header().Get("Traceparent"))
	if !ok {
		t.Fatalf("minted traceparent invalid: %q", rr.Header().Get("Traceparent"))
	}
	if minted != got {
		t.Fatalf("response traceparent %+v != handler context %+v", minted, got)
	}
	if minted.TraceID == "0af7651916cd43dd8448eb211c80319c" {
		t.Fatal("malformed traceparent adopted instead of replaced")
	}
}
