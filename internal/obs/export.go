package obs

// Chrome trace-event export: renders a JobTrace as the JSON Array
// Format that chrome://tracing and https://ui.perfetto.dev open
// directly. Spans become complete ("X") events; concurrent top-level
// spans (epochs in flight together) are packed onto separate lanes
// (tids) by greedy interval coloring so overlapping work displays
// side by side, while each span's descendants inherit its lane and
// nest inside it.

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// chromeEvent is one trace-event record. Field order is fixed by the
// struct (and map keys marshal sorted), so output is deterministic —
// the golden fixtures depend on that.
type chromeEvent struct {
	Name string           `json:"name"`
	Ph   string           `json:"ph"`
	Ts   float64          `json:"ts"` // microseconds
	Dur  float64          `json:"dur,omitempty"`
	Pid  int              `json:"pid"`
	Tid  int              `json:"tid"`
	Args map[string]int64 `json:"args,omitempty"`
}

// chromeMeta is a metadata ("M") event naming the process or a lane.
type chromeMeta struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args"`
}

// WriteChromeTrace writes jt in the Chrome trace-event JSON Array
// Format. The result is a complete JSON object ({"traceEvents": [...]})
// that loads in Perfetto as-is.
func WriteChromeTrace(w io.Writer, jt *JobTrace) error {
	if jt == nil || len(jt.Spans) == 0 {
		_, err := io.WriteString(w, `{"traceEvents":[]}`+"\n")
		return err
	}

	lanes := assignLanes(jt)
	maxLane := 0
	for _, l := range lanes {
		if l > maxLane {
			maxLane = l
		}
	}

	events := make([]json.RawMessage, 0, len(jt.Spans)+maxLane+2)
	add := func(v any) error {
		b, err := json.Marshal(v)
		if err != nil {
			return err
		}
		events = append(events, b)
		return nil
	}

	if err := add(chromeMeta{
		Name: "process_name", Ph: "M", Pid: 1, Tid: 0,
		Args: map[string]string{"name": jt.Name},
	}); err != nil {
		return err
	}
	for lane := 0; lane <= maxLane; lane++ {
		name := "job"
		if lane > 0 {
			name = fmt.Sprintf("lane %d", lane)
		}
		if err := add(chromeMeta{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: lane,
			Args: map[string]string{"name": name},
		}); err != nil {
			return err
		}
	}

	// Spans in start order: stable, and viewers prefer sorted ts.
	order := make([]int, len(jt.Spans))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return jt.Spans[order[a]].StartNS < jt.Spans[order[b]].StartNS
	})
	for _, i := range order {
		s := jt.Spans[i]
		if err := add(chromeEvent{
			Name: s.Name,
			Ph:   "X",
			Ts:   float64(s.StartNS) / 1e3,
			Dur:  float64(s.EndNS-s.StartNS) / 1e3,
			Pid:  1,
			Tid:  lanes[s.ID],
			Args: s.Attrs,
		}); err != nil {
			return err
		}
	}

	out := struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
		Meta        map[string]string `json:"otherData"`
	}{
		TraceEvents: events,
		Meta:        map[string]string{"trace_id": jt.TraceID, "name": jt.Name},
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// assignLanes maps span IDs to display lanes. The root span gets lane
// 0; its direct children are greedily packed onto the fewest lanes
// (starting at 1) such that no two overlapping spans share one;
// deeper descendants inherit their top-level ancestor's lane so
// nesting renders inside it.
func assignLanes(jt *JobTrace) map[string]int {
	lanes := make(map[string]int, len(jt.Spans))
	rootID := jt.Spans[0].ID
	lanes[rootID] = 0

	// Top-level spans, in start order, onto the first free lane.
	type iv struct {
		id         string
		start, end int64
	}
	var top []iv
	for _, s := range jt.Spans {
		if s.Parent == rootID {
			top = append(top, iv{s.ID, s.StartNS, s.EndNS})
		}
	}
	sort.SliceStable(top, func(a, b int) bool { return top[a].start < top[b].start })
	var laneEnd []int64 // index = lane-1
	for _, t := range top {
		lane := -1
		for i, end := range laneEnd {
			if end <= t.start {
				lane = i
				break
			}
		}
		if lane == -1 {
			lane = len(laneEnd)
			laneEnd = append(laneEnd, 0)
		}
		laneEnd[lane] = t.end
		lanes[t.id] = lane + 1
	}

	// Descendants inherit. Spans are recorded parent-before-child, so
	// one forward pass resolves every depth.
	for _, s := range jt.Spans {
		if _, done := lanes[s.ID]; done {
			continue
		}
		if l, ok := lanes[s.Parent]; ok {
			lanes[s.ID] = l
		} else {
			lanes[s.ID] = 0
		}
	}
	return lanes
}
