package obs

import (
	"strings"
	"testing"
)

// TestRegisterRuntimeMetrics scrapes the runtime gauges and checks
// they expose live, plausible values in parseable exposition format.
func TestRegisterRuntimeMetrics(t *testing.T) {
	reg := NewRegistry()
	RegisterRuntimeMetrics(reg)

	var buf strings.Builder
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE go_goroutines gauge",
		"# TYPE go_memstats_heap_alloc_bytes gauge",
		"# TYPE go_gc_pause_seconds_total counter",
		"# TYPE go_gomaxprocs gauge",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	samples, err := ParseExposition([]byte(out))
	if err != nil {
		t.Fatalf("exposition does not parse: %v", err)
	}
	byName := map[string]float64{}
	for _, s := range samples {
		byName[s.Name] = s.Value
	}
	if v := byName["go_goroutines"]; v < 1 {
		t.Fatalf("go_goroutines = %v, want >= 1", v)
	}
	if v := byName["go_memstats_heap_alloc_bytes"]; v <= 0 {
		t.Fatalf("heap bytes = %v, want > 0", v)
	}
	if v := byName["go_gomaxprocs"]; v < 1 {
		t.Fatalf("go_gomaxprocs = %v, want >= 1", v)
	}
}
