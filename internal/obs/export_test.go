package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden trace-export fixtures")

// exportFixture is a hand-built JobTrace with fixed IDs and times, so
// both export formats are byte-deterministic. It exercises the lane
// packer: decode/plan/encode fit one lane, the two overlapping epochs
// need two more, and decompose/merge nest inside their epoch.
func exportFixture() *JobTrace {
	return &JobTrace{
		TraceID:       "0af7651916cd43dd8448eb211c80319c",
		ParentSpanID:  "b7ad6b7169203331",
		Name:          "job-1 web_0",
		Start:         time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC),
		DurationNS:    5_000_000,
		DroppedEpochs: 2,
		Spans: []SpanOut{
			{ID: "00f067aa0ba902b7", Name: "job-1 web_0", StartNS: 0, EndNS: 5_000_000},
			{ID: "0000000000000002", Parent: "00f067aa0ba902b7", Name: "decode", StartNS: 10_000, EndNS: 1_000_000},
			{ID: "0000000000000003", Parent: "00f067aa0ba902b7", Name: "plan", StartNS: 1_000_000, EndNS: 4_500_000, Attrs: map[string]int64{"token_wait_ns": 1234}},
			{ID: "0000000000000004", Parent: "00f067aa0ba902b7", Name: "epoch", StartNS: 1_200_000, EndNS: 2_000_000, Attrs: map[string]int64{"epoch": 0, "requests": 512}},
			{ID: "0000000000000005", Parent: "0000000000000004", Name: "decompose", StartNS: 1_200_000, EndNS: 1_400_000},
			{ID: "0000000000000006", Parent: "00f067aa0ba902b7", Name: "epoch", StartNS: 1_500_000, EndNS: 2_600_000, Attrs: map[string]int64{"epoch": 1}},
			{ID: "0000000000000007", Parent: "0000000000000004", Name: "merge", StartNS: 1_900_000, EndNS: 2_000_000},
			{ID: "0000000000000008", Parent: "00f067aa0ba902b7", Name: "encode", StartNS: 4_500_000, EndNS: 5_000_000},
		},
	}
}

// checkGolden compares got against the fixture file, rewriting it
// under -update.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", "golden", name)
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o666); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/obs -update` to create fixtures)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden fixture (re-run with -update if intended)\n got: %s\nwant: %s", name, got, want)
	}
}

// TestJobTraceGoldenJSON locks the JSON shape GET /jobs/{id}/trace
// serves.
func TestJobTraceGoldenJSON(t *testing.T) {
	got, err := json.MarshalIndent(exportFixture(), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "job_trace.json", append(got, '\n'))
}

// TestWriteChromeTraceGolden locks the ?format=perfetto byte output.
func TestWriteChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, exportFixture()); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "chrome_trace.json", buf.Bytes())
}

// TestWriteChromeTraceValid parses the export as the Chrome
// trace-event JSON Array Format and checks the display invariants the
// golden bytes alone don't explain: one complete event per span,
// sorted timestamps, named lanes, and overlapping epochs on distinct
// lanes with their children alongside them.
func TestWriteChromeTraceValid(t *testing.T) {
	jt := exportFixture()
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, jt); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		OtherData map[string]string `json:"otherData"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, buf.String())
	}
	if doc.OtherData["trace_id"] != jt.TraceID {
		t.Fatalf("otherData: %v", doc.OtherData)
	}

	var xs, ms int
	lastTS := -1.0
	lanes := map[string][]int{} // span name -> tids
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			ms++
		case "X":
			xs++
			if ev.Ts < lastTS {
				t.Fatalf("events not sorted by ts: %v", doc.TraceEvents)
			}
			lastTS = ev.Ts
			if ev.Dur < 0 || ev.Pid != 1 {
				t.Fatalf("bad event: %+v", ev)
			}
			lanes[ev.Name] = append(lanes[ev.Name], ev.Tid)
		default:
			t.Fatalf("unexpected phase %q", ev.Ph)
		}
	}
	if xs != len(jt.Spans) {
		t.Fatalf("%d X events for %d spans", xs, len(jt.Spans))
	}
	if ms < 2 {
		t.Fatalf("missing metadata events (%d)", ms)
	}
	if lanes["job-1 web_0"][0] != 0 {
		t.Fatalf("root not on lane 0: %v", lanes)
	}
	ep := lanes["epoch"]
	if len(ep) != 2 || ep[0] == ep[1] {
		t.Fatalf("overlapping epochs share lane %v", ep)
	}
	if lanes["decompose"][0] != ep[0] || lanes["merge"][0] != ep[0] {
		t.Fatalf("epoch children not on their epoch's lane: %v", lanes)
	}
	// decode (ends 1ms) and plan (starts 1ms) can share a lane.
	if lanes["decode"][0] != lanes["plan"][0] {
		t.Fatalf("adjacent spans not packed onto one lane: %v", lanes)
	}
}

func TestWriteChromeTraceEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, nil); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("empty export invalid: %v: %s", err, buf.String())
	}
	if len(doc.TraceEvents) != 0 {
		t.Fatalf("empty trace produced events: %s", buf.String())
	}
}
