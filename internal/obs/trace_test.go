package obs

import (
	"strings"
	"testing"
	"time"
)

func TestParseTraceparent(t *testing.T) {
	valid := "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"
	tc, ok := ParseTraceparent(valid)
	if !ok {
		t.Fatalf("valid traceparent rejected: %s", valid)
	}
	if tc.TraceID != "0af7651916cd43dd8448eb211c80319c" || tc.SpanID != "b7ad6b7169203331" {
		t.Fatalf("parsed %+v", tc)
	}
	if got := tc.Traceparent(); got != valid {
		t.Fatalf("round trip: %s", got)
	}
	// A future version may carry extra dash-separated fields.
	if _, ok := ParseTraceparent("cc-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01-extra"); !ok {
		t.Fatal("future-version traceparent with extra field rejected")
	}

	for _, bad := range []string{
		"",
		"00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331",      // no flags
		"00-00000000000000000000000000000000-b7ad6b7169203331-01",   // all-zero trace id
		"00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01",   // all-zero span id
		"ff-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",   // forbidden version
		"00-0AF7651916CD43DD8448EB211C80319C-b7ad6b7169203331-01",   // uppercase hex
		"00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01-x", // version 00 has no extra fields
		"00_0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",   // wrong separator
	} {
		if _, ok := ParseTraceparent(bad); ok {
			t.Errorf("accepted malformed traceparent %q", bad)
		}
	}
}

func TestNewTraceContextValid(t *testing.T) {
	a, b := NewTraceContext(), NewTraceContext()
	if !a.Valid() || !b.Valid() {
		t.Fatalf("minted contexts invalid: %+v %+v", a, b)
	}
	if a.TraceID == b.TraceID {
		t.Fatal("minted trace IDs collide")
	}
	if _, ok := ParseTraceparent(a.Traceparent()); !ok {
		t.Fatalf("minted context does not round-trip: %s", a.Traceparent())
	}
}

func TestTracerSpanTree(t *testing.T) {
	parent := TraceContext{
		TraceID: "0af7651916cd43dd8448eb211c80319c",
		SpanID:  "b7ad6b7169203331",
	}
	tr := NewTracer("job-1 web_0", 64, parent)
	if got := tr.Context().TraceID; got != parent.TraceID {
		t.Fatalf("tracer did not join the parent trace: %s", got)
	}
	if tr.Context().SpanID == parent.SpanID {
		t.Fatal("root span reused the parent's span ID")
	}

	plan := tr.Start(tr.Root(), "plan")
	plan.SetAttr("token_wait_ns", 42)
	ep := tr.StartEpoch(tr.Root(), 0)
	dec := ep.Child("decompose")
	dec.End()
	ep.End()
	plan.End()
	time.Sleep(time.Millisecond)
	jt := tr.Finish()

	if jt.TraceID != parent.TraceID || jt.ParentSpanID != parent.SpanID {
		t.Fatalf("exported trace identity: %+v", jt)
	}
	if len(jt.Spans) != 4 {
		t.Fatalf("recorded %d spans, want 4", len(jt.Spans))
	}
	root := jt.Spans[0]
	if root.Name != "job-1 web_0" || root.Parent != "" || root.ID != tr.Context().SpanID {
		t.Fatalf("root span: %+v", root)
	}
	if jt.DurationNS != root.EndNS-root.StartNS || jt.DurationNS < int64(time.Millisecond) {
		t.Fatalf("root duration %d ns does not cover the job", jt.DurationNS)
	}
	byName := map[string]SpanOut{}
	for _, s := range jt.Spans {
		byName[s.Name] = s
		if s.EndNS < s.StartNS {
			t.Fatalf("span %s ends before it starts: %+v", s.Name, s)
		}
		if s.EndNS > root.EndNS {
			t.Fatalf("span %s outlives the root: %+v", s.Name, s)
		}
	}
	if byName["plan"].Parent != root.ID || byName["epoch"].Parent != root.ID {
		t.Fatalf("top-level spans not parented on root: %+v", jt.Spans)
	}
	if byName["decompose"].Parent != byName["epoch"].ID {
		t.Fatalf("decompose not nested in its epoch: %+v", jt.Spans)
	}
	if byName["plan"].Attrs["token_wait_ns"] != 42 {
		t.Fatalf("plan attrs: %+v", byName["plan"].Attrs)
	}
	if byName["epoch"].Attrs["epoch"] != 0 {
		t.Fatalf("epoch attrs: %+v", byName["epoch"].Attrs)
	}
}

func TestTracerTraceIDOnlyParent(t *testing.T) {
	tr := NewTracer("restored", 0, TraceContext{TraceID: "0af7651916cd43dd8448eb211c80319c"})
	jt := tr.Finish()
	if jt.TraceID != "0af7651916cd43dd8448eb211c80319c" {
		t.Fatalf("trace ID not pinned: %s", jt.TraceID)
	}
	if jt.ParentSpanID != "" {
		t.Fatalf("parent span invented: %s", jt.ParentSpanID)
	}
}

// TestTracerNilSafety locks the disabled-hook contract: every method
// on a nil *Tracer and the zero Span is a safe no-op.
func TestTracerNilSafety(t *testing.T) {
	var tr *Tracer
	if tr.Context().Valid() {
		t.Fatal("nil tracer has a valid context")
	}
	s := tr.Root()
	if s.Recorded() {
		t.Fatal("nil tracer's root claims to record")
	}
	s = tr.Start(s, "x")
	s = tr.StartEpoch(s, 7)
	s = s.Child("y")
	s.SetAttr("k", 1)
	s.End()
	if jt := tr.Finish(); jt != nil {
		t.Fatalf("nil tracer finished to %+v", jt)
	}
	if jt := tr.Snapshot(); jt != nil {
		t.Fatalf("nil tracer snapshot %+v", jt)
	}
	var jtNil *JobTrace
	if got := jtNil.SlowestSpans(3); got != nil {
		t.Fatalf("nil JobTrace slowest spans: %v", got)
	}
	if got := SummarizeSpans(nil); got != "" {
		t.Fatalf("empty summary: %q", got)
	}
}

// TestTracerEpochSampling drives far more epochs than the buffer
// holds and checks the memory bound and the sampling spread.
func TestTracerEpochSampling(t *testing.T) {
	const capacity, epochs = 64, 10_000
	tr := NewTracer("long-job", capacity, TraceContext{})
	for i := 0; i < epochs; i++ {
		ep := tr.StartEpoch(tr.Root(), i)
		ep.End()
	}
	jt := tr.Finish()

	if len(jt.Spans) > capacity {
		t.Fatalf("recorded %d spans, capacity %d", len(jt.Spans), capacity)
	}
	if jt.DroppedEpochs == 0 {
		t.Fatal("no epochs reported dropped")
	}
	var indexes []int64
	for _, s := range jt.Spans[1:] {
		indexes = append(indexes, s.Attrs["epoch"])
	}
	if int64(len(indexes))+jt.DroppedEpochs != epochs {
		t.Fatalf("recorded %d + dropped %d != %d epochs", len(indexes), jt.DroppedEpochs, epochs)
	}
	if indexes[0] != 0 {
		t.Fatalf("first epoch not recorded: %v", indexes)
	}
	// Stride doubling keeps later epochs represented instead of only
	// recording the first bufferful.
	if last := indexes[len(indexes)-1]; last <= capacity {
		t.Fatalf("sampling stopped at epoch %d — no spread over %d epochs", last, epochs)
	}
}

func TestTracerBufferFullDropsSpans(t *testing.T) {
	tr := NewTracer("tiny", 16, TraceContext{})
	for i := 0; i < 40; i++ {
		sp := tr.Start(tr.Root(), "s")
		sp.End() // ending a dropped (zero) span must be safe
	}
	jt := tr.Finish()
	if len(jt.Spans) != 16 {
		t.Fatalf("recorded %d spans, want the full capacity 16", len(jt.Spans))
	}
	if jt.DroppedSpans != 40-15 {
		t.Fatalf("dropped %d spans, want %d", jt.DroppedSpans, 40-15)
	}
}

func TestSlowestSpansAndSummary(t *testing.T) {
	jt := &JobTrace{Spans: []SpanOut{
		{ID: "1", Name: "root", StartNS: 0, EndNS: 100},
		{ID: "2", Name: "fast", StartNS: 0, EndNS: 10},
		{ID: "3", Name: "epoch", StartNS: 0, EndNS: 90_000, Attrs: map[string]int64{"epoch": 12}},
		{ID: "4", Name: "mid", StartNS: 0, EndNS: 50_000},
	}}
	top := jt.SlowestSpans(2)
	if len(top) != 2 || top[0].Name != "epoch" || top[1].Name != "mid" {
		t.Fatalf("slowest spans: %+v", top)
	}
	sum := SummarizeSpans(top)
	if !strings.Contains(sum, "epoch[12] 90µs") || !strings.Contains(sum, "mid 50µs") {
		t.Fatalf("summary: %q", sum)
	}
}
