// Package obs is the repo's observability layer: a dependency-free,
// allocation-conscious metrics registry (atomic counters, gauges and
// fixed-bucket histograms with expvar-style registration and
// Prometheus text-format exposition), structured-logging helpers, and
// HTTP middleware that threads request IDs through slog.
//
// The registry is built for hot paths that must stay allocation-free:
// metrics are registered once up front and held by pointer, so an
// instrumented loop costs one or two atomic operations per event and
// never touches the registry. Exposition walks the registry in
// registration order, which keeps /metrics output stable across
// scrapes.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The zero
// value is usable, but hot paths should hold a pointer obtained from
// Registry.Counter so the metric is also exposed.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (callers must keep counters monotone: n >= 0).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value (queue depths, in-flight
// work). Unlike Counter it may go down.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (negative allowed).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket cumulative histogram. Observe is
// allocation-free: a linear scan over the (small, fixed) bound slice
// plus three atomic updates. Exposed in the Prometheus histogram
// convention: cumulative _bucket{le=...} series, _sum and _count.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is +Inf
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-updated
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// DurationBuckets are the default latency bounds in seconds, spanning
// sub-millisecond cache hits to multi-minute reconstructions.
var DurationBuckets = []float64{0.001, 0.005, 0.025, 0.1, 0.5, 2.5, 10, 60}

// Labels are the label pairs attached to one metric within a family.
// Metrics in the same family must use the same label keys.
type Labels map[string]string

// metric is one labelled series within a family. Exactly one of the
// value fields is set, matching the family's type.
type metric struct {
	labels string // pre-rendered, sorted: `k1="v1",k2="v2"`
	c      *Counter
	g      *Gauge
	fn     func() float64
	h      *Histogram
}

// family groups all series sharing a metric name.
type family struct {
	name  string
	help  string
	typ   string // counter | gauge | histogram
	scale float64
	order []*metric
	byKey map[string]*metric
}

// Registry holds registered metrics and renders them in the
// Prometheus text format. Registration is idempotent: asking for an
// existing (name, labels) pair returns the same metric, so lazily
// instrumented paths (per-route HTTP metrics) need no separate
// bookkeeping. Re-registering a name with a different type or scale
// panics — that is a programming error, like a duplicate expvar.
type Registry struct {
	mu     sync.Mutex
	order  []*family          // guarded by mu
	byName map[string]*family // guarded by mu
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

func renderLabels(l Labels) string {
	if len(l) == 0 {
		return ""
	}
	keys := make([]string, 0, len(l))
	for k := range l {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l[k]))
		b.WriteByte('"')
	}
	return b.String()
}

// getOrCreate finds or adds the (name, labels) series, enforcing
// family consistency.
func (r *Registry) getOrCreate(name, help, typ string, scale float64, labels Labels, build func() *metric) *metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.byName[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ, scale: scale, byKey: make(map[string]*metric)}
		r.byName[name] = f
		r.order = append(r.order, f)
	} else if f.typ != typ || f.scale != scale {
		panic(fmt.Sprintf("obs: metric %q re-registered as %s (scale %g), was %s (scale %g)",
			name, typ, scale, f.typ, f.scale))
	}
	key := renderLabels(labels)
	if m := f.byKey[key]; m != nil {
		return m
	}
	m := build()
	m.labels = key
	f.byKey[key] = m
	f.order = append(f.order, m)
	return m
}

// Counter registers (or finds) a counter. labels may be nil.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	return r.CounterScaled(name, help, labels, 1)
}

// CounterScaled registers a counter whose exposed value is the raw
// count multiplied by scale — the idiom for nanosecond-accumulating
// time counters exposed in seconds (scale 1e-9) without paying
// float arithmetic on the hot path.
func (r *Registry) CounterScaled(name, help string, labels Labels, scale float64) *Counter {
	m := r.getOrCreate(name, help, "counter", scale, labels, func() *metric {
		return &metric{c: &Counter{}}
	})
	return m.c
}

// Gauge registers (or finds) a gauge.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	m := r.getOrCreate(name, help, "gauge", 1, labels, func() *metric {
		return &metric{g: &Gauge{}}
	})
	return m.g
}

// GaugeFunc registers a gauge computed at scrape time by fn — for
// values that already live elsewhere (queue lengths, uptime) and
// would otherwise need write-through maintenance.
func (r *Registry) GaugeFunc(name, help string, labels Labels, fn func() float64) {
	r.getOrCreate(name, help, "gauge", 1, labels, func() *metric {
		return &metric{fn: fn}
	})
}

// CounterFunc registers a counter computed at scrape time by fn — for
// monotone totals the runtime already accumulates (GC pause time)
// where mirroring into a Counter would need a poller. fn must be
// monotone non-decreasing.
func (r *Registry) CounterFunc(name, help string, labels Labels, fn func() float64) {
	r.getOrCreate(name, help, "counter", 1, labels, func() *metric {
		return &metric{fn: fn}
	})
}

// Histogram registers (or finds) a fixed-bucket histogram with the
// given upper bounds (ascending; +Inf is implicit).
func (r *Registry) Histogram(name, help string, labels Labels, bounds []float64) *Histogram {
	m := r.getOrCreate(name, help, "histogram", 1, labels, func() *metric {
		h := &Histogram{bounds: bounds}
		h.counts = make([]atomic.Int64, len(bounds)+1)
		return &metric{h: h}
	})
	return m.h
}

// formatFloat renders a sample value the way Prometheus expects.
func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

// WritePrometheus renders every registered metric in the Prometheus
// text exposition format (version 0.0.4), families in registration
// order, series in registration order within each family.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, len(r.order))
	copy(fams, r.order)
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		b.Reset()
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", f.name, escapeHelp(f.help), f.name, f.typ)
		r.mu.Lock()
		series := make([]*metric, len(f.order))
		copy(series, f.order)
		r.mu.Unlock()
		for _, m := range series {
			switch {
			case m.c != nil:
				v := m.c.Value()
				if f.scale == 1 {
					writeSample(&b, f.name, "", m.labels, strconv.FormatInt(v, 10))
				} else {
					writeSample(&b, f.name, "", m.labels, formatFloat(float64(v)*f.scale))
				}
			case m.g != nil:
				writeSample(&b, f.name, "", m.labels, strconv.FormatInt(m.g.Value(), 10))
			case m.fn != nil:
				writeSample(&b, f.name, "", m.labels, formatFloat(m.fn()))
			case m.h != nil:
				cum := int64(0)
				for i, bound := range m.h.bounds {
					cum += m.h.counts[i].Load()
					writeSample(&b, f.name, "_bucket", joinLabels(m.labels, `le="`+formatFloat(bound)+`"`),
						strconv.FormatInt(cum, 10))
				}
				writeSample(&b, f.name, "_bucket", joinLabels(m.labels, `le="+Inf"`),
					strconv.FormatInt(m.h.Count(), 10))
				writeSample(&b, f.name, "_sum", m.labels, formatFloat(m.h.Sum()))
				writeSample(&b, f.name, "_count", m.labels, strconv.FormatInt(m.h.Count(), 10))
			}
		}
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

func joinLabels(a, b string) string {
	if a == "" {
		return b
	}
	return a + "," + b
}

func writeSample(b *strings.Builder, name, suffix, labels, value string) {
	b.WriteString(name)
	b.WriteString(suffix)
	if labels != "" {
		b.WriteByte('{')
		b.WriteString(labels)
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(value)
	b.WriteByte('\n')
}

// Handler returns an http.Handler serving the registry in the text
// exposition format — mount it at GET /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}
