package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeHistogram(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if c.Value() != 42 {
		t.Fatalf("counter = %d, want 42", c.Value())
	}
	var g Gauge
	g.Set(7)
	g.Inc()
	g.Dec()
	g.Add(-2)
	if g.Value() != 5 {
		t.Fatalf("gauge = %d, want 5", g.Value())
	}

	r := NewRegistry()
	h := r.Histogram("h_seconds", "help", nil, []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("histogram count = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 56.05; got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("histogram sum = %g, want %g", got, want)
	}
	var buf strings.Builder
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`h_seconds_bucket{le="0.1"} 1`,
		`h_seconds_bucket{le="1"} 3`,
		`h_seconds_bucket{le="10"} 4`,
		`h_seconds_bucket{le="+Inf"} 5`,
		`h_seconds_sum 56.05`,
		`h_seconds_count 5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("conc", "help", nil, []float64{1})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				h.Observe(0.5)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("count = %d, want 8000", h.Count())
	}
	if h.Sum() != 4000 {
		t.Fatalf("sum = %g, want 4000", h.Sum())
	}
}

func TestRegistryIdempotentAndScaled(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("reqs_total", "help", Labels{"route": "a"})
	b := r.Counter("reqs_total", "help", Labels{"route": "a"})
	if a != b {
		t.Fatal("same (name, labels) returned distinct counters")
	}
	c := r.Counter("reqs_total", "help", Labels{"route": "b"})
	if a == c {
		t.Fatal("distinct labels returned the same counter")
	}
	a.Add(3)
	c.Inc()

	ns := r.CounterScaled("wait_seconds_total", "help", nil, 1e-9)
	ns.Add(int64(1500 * time.Millisecond))

	var buf strings.Builder
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE reqs_total counter",
		`reqs_total{route="a"} 3`,
		`reqs_total{route="b"} 1`,
		"wait_seconds_total 1.5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}

	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("reqs_total", "help", nil)
}

func TestGaugeFuncAndLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("up_seconds", "uptime", nil, func() float64 { return 12.25 })
	r.Counter("odd_total", "help", Labels{"path": "a\"b\\c\nd"}).Inc()

	var buf strings.Builder
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "up_seconds 12.25") {
		t.Errorf("gauge func missing:\n%s", out)
	}
	if !strings.Contains(out, `odd_total{path="a\"b\\c\nd"} 1`) {
		t.Errorf("label escaping wrong:\n%s", out)
	}
	// The writer's output must satisfy the package's own parser.
	samples, err := ParseExposition([]byte(out))
	if err != nil {
		t.Fatalf("self-exposition does not parse: %v\n%s", err, out)
	}
	found := false
	for _, s := range samples {
		if s.Name == "odd_total" && s.Labels["path"] == "a\"b\\c\nd" {
			found = true
		}
	}
	if !found {
		t.Fatalf("escaped label did not round-trip: %+v", samples)
	}
}

func TestEngineMetricsNilSafe(t *testing.T) {
	var m *EngineMetrics
	m.StageAdd(StageEmulate, time.Second) // must not panic
	m.QueuePush(StageMerge)
	m.QueuePop(StageMerge)
	if m.StageSeconds() != nil {
		t.Fatal("nil metrics should snapshot to nil")
	}
	var cm *CorpusMetrics
	cm.IngestObserve(1, 1, true)
	cm.ResultHit()
	cm.ResultStore()
}

func TestEngineMetricsRegistersAllStages(t *testing.T) {
	r := NewRegistry()
	m := NewEngineMetrics(r)
	m.StageAdd(StageService, 2*time.Second)
	m.TokenWaitNanos.Add(int64(time.Second / 2))
	var buf strings.Builder
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, stage := range StageNames {
		if !strings.Contains(out, `engine_stage_seconds_total{stage="`+stage+`"}`) {
			t.Errorf("missing stage %q:\n%s", stage, out)
		}
	}
	if !strings.Contains(out, `engine_stage_seconds_total{stage="service"} 2`) {
		t.Errorf("service stage time wrong:\n%s", out)
	}
	if !strings.Contains(out, "engine_token_wait_seconds_total 0.5") {
		t.Errorf("token wait scaling wrong:\n%s", out)
	}
	secs := m.StageSeconds()
	if secs["service"] != 2 || secs["token_wait"] != 0.5 {
		t.Fatalf("StageSeconds = %v", secs)
	}
}
