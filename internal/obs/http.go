package obs

// Structured logging and HTTP instrumentation: a slog constructor
// following the level/format flag idiom, a request-ID middleware that
// threads a per-request logger through the context, and per-route
// count/latency/in-flight metrics keyed on the ServeMux pattern that
// matched.

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"
)

// NewLogger builds a slog.Logger writing to w at the given level
// ("debug", "info", "warn", "error") and format ("text", "json").
func NewLogger(w io.Writer, level, format string) (*slog.Logger, error) {
	var lvl slog.Level
	switch level {
	case "debug":
		lvl = slog.LevelDebug
	case "", "info":
		lvl = slog.LevelInfo
	case "warn":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("obs: unknown log level %q (debug, info, warn, error)", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch format {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("obs: unknown log format %q (text, json)", format)
	}
}

// NopLogger returns a logger that discards everything — the default
// for embedded servers until a real logger is attached.
func NopLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{Level: slog.LevelError + 1}))
}

type ctxKey int

const (
	ctxKeyRequestID ctxKey = iota
	ctxKeyLogger
	ctxKeyTrace
)

// reqIDPrefix makes request IDs unique across daemon restarts without
// per-request entropy; the atomic sequence makes them unique within a
// process.
var (
	reqIDPrefix = func() string {
		var b [4]byte
		if _, err := rand.Read(b[:]); err != nil {
			return "req"
		}
		return hex.EncodeToString(b[:])
	}()
	reqIDSeq atomic.Uint64
)

func nextRequestID() string {
	return fmt.Sprintf("%s-%06d", reqIDPrefix, reqIDSeq.Add(1))
}

// RequestIDFrom returns the request ID the middleware assigned, or ""
// outside an instrumented request.
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(ctxKeyRequestID).(string)
	return id
}

// TraceContextFrom returns the W3C trace position the middleware
// bound to the request — the incoming traceparent when the client
// sent a valid one, else the one minted for the response. Zero
// outside an instrumented request.
func TraceContextFrom(ctx context.Context) TraceContext {
	tc, _ := ctx.Value(ctxKeyTrace).(TraceContext)
	return tc
}

// LoggerFrom returns the per-request logger (request ID pre-bound),
// falling back to the default logger outside an instrumented request.
func LoggerFrom(ctx context.Context) *slog.Logger {
	if l, ok := ctx.Value(ctxKeyLogger).(*slog.Logger); ok {
		return l
	}
	return slog.Default()
}

// statusWriter captures the response status and size.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// HTTPMetrics instruments a handler with per-route request count
// (labelled by status code), latency histograms and an in-flight
// gauge. Routes are the http.ServeMux patterns that matched
// (r.Pattern), so the label set stays bounded by the registered API
// surface; unmatched requests land under route="unmatched".
type HTTPMetrics struct {
	reg      *Registry
	prefix   string
	inFlight *Gauge
}

// NewHTTPMetrics registers the in-flight gauge and returns the
// per-route instrumenter; count and latency series register lazily as
// routes are first served.
func NewHTTPMetrics(reg *Registry, prefix string) *HTTPMetrics {
	return &HTTPMetrics{
		reg:    reg,
		prefix: prefix,
		inFlight: reg.Gauge(prefix+"_requests_in_flight",
			"HTTP requests currently being served.", nil),
	}
}

func (hm *HTTPMetrics) observe(route string, status int, d time.Duration) {
	hm.reg.Counter(hm.prefix+"_requests_total",
		"HTTP requests served, by route pattern and status code.",
		Labels{"route": route, "code": strconv.Itoa(status)}).Inc()
	hm.reg.Histogram(hm.prefix+"_request_seconds",
		"HTTP request latency, by route pattern.",
		Labels{"route": route}, DurationBuckets).Observe(d.Seconds())
}

// Middleware wraps next with request IDs, per-request slog logging
// and (when hm is non-nil) per-route metrics. Every response carries
// an X-Request-ID header; handlers retrieve the bound logger with
// LoggerFrom(r.Context()).
//
// W3C trace context: a valid incoming traceparent header is accepted
// and echoed back; otherwise a fresh trace position is minted and
// echoed, so every response names the trace the server filed the
// request under. Handlers read it with TraceContextFrom.
//
// Completion log levels: 5xx at Error, 4xx at Warn, health and
// metrics scrapes at Debug (they would otherwise dominate the log at
// any scrape interval), everything else at Info.
func Middleware(log *slog.Logger, hm *HTTPMetrics, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id := nextRequestID()
		tc, ok := ParseTraceparent(r.Header.Get("traceparent"))
		if !ok {
			tc = NewTraceContext()
		}
		reqLog := log.With("request_id", id, "trace_id", tc.TraceID)
		ctx := context.WithValue(r.Context(), ctxKeyRequestID, id)
		ctx = context.WithValue(ctx, ctxKeyLogger, reqLog)
		ctx = context.WithValue(ctx, ctxKeyTrace, tc)
		w.Header().Set("X-Request-ID", id)
		w.Header().Set("Traceparent", tc.Traceparent())
		sw := &statusWriter{ResponseWriter: w}
		if hm != nil {
			hm.inFlight.Inc()
		}
		r = r.WithContext(ctx)
		next.ServeHTTP(sw, r)
		if hm != nil {
			hm.inFlight.Dec()
		}
		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		// r.Pattern is filled in by the ServeMux that matched, on the
		// request value we handed it — not the caller's original.
		route := r.Pattern
		if route == "" {
			route = "unmatched"
		}
		elapsed := time.Since(start)
		if hm != nil {
			hm.observe(route, status, elapsed)
		}
		level := slog.LevelInfo
		switch {
		case status >= 500:
			level = slog.LevelError
		case status >= 400:
			level = slog.LevelWarn
		case r.URL.Path == "/healthz" || r.URL.Path == "/metrics":
			level = slog.LevelDebug
		}
		reqLog.Log(ctx, level, "request",
			"method", r.Method,
			"path", r.URL.Path,
			"route", route,
			"status", status,
			"bytes", sw.bytes,
			"duration", elapsed,
			"remote", r.RemoteAddr,
		)
	})
}
