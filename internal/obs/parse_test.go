package obs

import (
	"math"
	"strings"
	"testing"
	"time"
)

// TestParseExposition is the table-driven format gate the CI metrics
// smoke relies on: every accept case must parse, every reject case
// must fail.
func TestParseExposition(t *testing.T) {
	cases := []struct {
		name    string
		in      string
		wantErr bool
		// want asserts one expected sample (name -> value) when set.
		want map[string]float64
	}{
		{
			name: "bare counter",
			in:   "requests_total 10\n",
			want: map[string]float64{"requests_total": 10},
		},
		{
			name: "typed family with labels",
			in: "# HELP reqs_total total\n# TYPE reqs_total counter\n" +
				`reqs_total{route="GET /jobs",code="200"} 3` + "\n",
			want: map[string]float64{"reqs_total": 3},
		},
		{
			name: "histogram series",
			in: "# TYPE lat_seconds histogram\n" +
				`lat_seconds_bucket{le="0.1"} 1` + "\n" +
				`lat_seconds_bucket{le="+Inf"} 2` + "\n" +
				"lat_seconds_sum 0.25\nlat_seconds_count 2\n",
			want: map[string]float64{"lat_seconds_sum": 0.25},
		},
		{
			name: "float and special values",
			in:   "a 1.5e-3\nb +Inf\nc NaN\n",
		},
		{
			name: "sample with timestamp",
			in:   "a 1 1700000000000\n",
			want: map[string]float64{"a": 1},
		},
		{
			name: "escaped label value",
			in:   `path_total{p="a\"b\\c\nd"} 1` + "\n",
			want: map[string]float64{"path_total": 1},
		},
		{
			name: "blank lines and stray comments",
			in:   "\n# just a note\na 1\n\n",
			want: map[string]float64{"a": 1},
		},
		{name: "missing value", in: "a\n", wantErr: true},
		{name: "bad value", in: "a twelve\n", wantErr: true},
		{name: "bad metric name", in: "9a 1\n", wantErr: true},
		{name: "unterminated labels", in: `a{x="1" 2` + "\n", wantErr: true},
		{name: "unquoted label value", in: "a{x=1} 2\n", wantErr: true},
		{name: "duplicate label", in: `a{x="1",x="2"} 3` + "\n", wantErr: true},
		{name: "bad escape", in: `a{x="\q"} 1` + "\n", wantErr: true},
		{name: "unknown type", in: "# TYPE a widget\na 1\n", wantErr: true},
		{name: "duplicate type", in: "# TYPE a counter\n# TYPE a counter\na 1\n", wantErr: true},
		{name: "type after samples", in: "a 1\n# TYPE a counter\n", wantErr: true},
		{name: "type after histogram samples", in: `a_bucket{le="+Inf"} 1` + "\n# TYPE a histogram\n", wantErr: true},
		{name: "bad timestamp", in: "a 1 soon\n", wantErr: true},
		{name: "trailing garbage", in: "a 1 2 3\n", wantErr: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			samples, err := ParseExposition([]byte(tc.in))
			if tc.wantErr {
				if err == nil {
					t.Fatalf("parsed %q without error: %+v", tc.in, samples)
				}
				return
			}
			if err != nil {
				t.Fatalf("parse %q: %v", tc.in, err)
			}
			for name, want := range tc.want {
				found := false
				for _, s := range samples {
					if s.Name == name {
						found = true
						if s.Value != want {
							t.Errorf("%s = %g, want %g", name, s.Value, want)
						}
					}
				}
				if !found {
					t.Errorf("sample %s missing from %+v", name, samples)
				}
			}
		})
	}
}

func TestParseExpositionSpecialValues(t *testing.T) {
	samples, err := ParseExposition([]byte("a +Inf\nb -Inf\nc NaN\n"))
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(samples[0].Value, 1) || !math.IsInf(samples[1].Value, -1) || !math.IsNaN(samples[2].Value) {
		t.Fatalf("special values parsed wrong: %+v", samples)
	}
}

// TestParseOwnExposition locks writer/parser agreement over the whole
// metric surface the daemon exposes.
func TestParseOwnExposition(t *testing.T) {
	r := NewRegistry()
	em := NewEngineMetrics(r)
	em.StageAdd(StagePlan, 1)
	NewCorpusMetrics(r).IngestObserve(100, 5, true)
	hm := NewHTTPMetrics(r, "d")
	hm.observe("GET /jobs/{id}", 200, 10*time.Millisecond)
	r.GaugeFunc("uptime_seconds", "up", nil, func() float64 { return 3 })

	var buf strings.Builder
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseExposition([]byte(buf.String())); err != nil {
		t.Fatalf("own exposition does not parse: %v\n%s", err, buf.String())
	}
}
