package obs

// A strict-enough parser for the Prometheus text exposition format,
// used by the tests and the daemon metrics smoke to validate that
// what /metrics serves actually parses — a gate on the writer, not a
// general scrape client.

import (
	"fmt"
	"strconv"
	"strings"
)

// Sample is one parsed metric sample.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// ParseExposition validates data against the Prometheus text format
// (version 0.0.4) and returns the samples. It enforces what the
// format actually promises: legal metric and label names, quoted and
// escaped label values, float-parsable sample values, `# TYPE` lines
// naming a known type at most once per family and appearing before
// that family's samples.
func ParseExposition(data []byte) ([]Sample, error) {
	var samples []Sample
	typed := make(map[string]string)
	seenSamples := make(map[string]bool)
	for ln, line := range strings.Split(string(data), "\n") {
		lineNo := ln + 1
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || fields[0] != "#" {
				return nil, fmt.Errorf("line %d: malformed comment %q", lineNo, line)
			}
			switch fields[1] {
			case "HELP":
				if !validMetricName(fields[2]) {
					return nil, fmt.Errorf("line %d: HELP for invalid metric name %q", lineNo, fields[2])
				}
			case "TYPE":
				if len(fields) != 4 {
					return nil, fmt.Errorf("line %d: TYPE needs a name and a type", lineNo)
				}
				name, typ := fields[2], fields[3]
				if !validMetricName(name) {
					return nil, fmt.Errorf("line %d: TYPE for invalid metric name %q", lineNo, name)
				}
				switch typ {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return nil, fmt.Errorf("line %d: unknown metric type %q", lineNo, typ)
				}
				if _, dup := typed[name]; dup {
					return nil, fmt.Errorf("line %d: duplicate TYPE for %q", lineNo, name)
				}
				if seenSamples[name] {
					return nil, fmt.Errorf("line %d: TYPE for %q after its samples", lineNo, name)
				}
				typed[name] = typ
			default:
				// Other comments are legal and ignored.
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		seenSamples[familyOf(s.Name)] = true
		samples = append(samples, s)
	}
	return samples, nil
}

// familyOf strips the histogram/summary sample suffixes so TYPE
// ordering can be checked against the family name.
func familyOf(name string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if f, ok := strings.CutSuffix(name, suf); ok {
			return f
		}
	}
	return name
}

func parseSample(line string) (Sample, error) {
	s := Sample{}
	i := 0
	for i < len(line) && isNameChar(line[i], i == 0) {
		i++
	}
	if i == 0 {
		return s, fmt.Errorf("sample %q: no metric name", line)
	}
	s.Name = line[:i]
	rest := line[i:]
	if strings.HasPrefix(rest, "{") {
		end, labels, err := parseLabels(rest)
		if err != nil {
			return s, fmt.Errorf("sample %q: %w", line, err)
		}
		s.Labels = labels
		rest = rest[end:]
	}
	rest = strings.TrimLeft(rest, " \t")
	// An optional timestamp may trail the value.
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return s, fmt.Errorf("sample %q: want value [timestamp], got %q", line, rest)
	}
	v, err := parseValue(fields[0])
	if err != nil {
		return s, fmt.Errorf("sample %q: bad value %q", line, fields[0])
	}
	s.Value = v
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return s, fmt.Errorf("sample %q: bad timestamp %q", line, fields[1])
		}
	}
	return s, nil
}

func parseValue(v string) (float64, error) {
	switch v {
	case "+Inf":
		return strconv.ParseFloat("+Inf", 64)
	case "-Inf":
		return strconv.ParseFloat("-Inf", 64)
	case "NaN":
		return strconv.ParseFloat("NaN", 64)
	}
	return strconv.ParseFloat(v, 64)
}

// parseLabels consumes a {k="v",...} block, returning the index just
// past the closing brace.
func parseLabels(in string) (int, map[string]string, error) {
	labels := make(map[string]string)
	i := 1 // past '{'
	for {
		if i >= len(in) {
			return 0, nil, fmt.Errorf("unterminated label block")
		}
		if in[i] == '}' {
			return i + 1, labels, nil
		}
		start := i
		for i < len(in) && isLabelNameChar(in[i], i == start) {
			i++
		}
		if i == start {
			return 0, nil, fmt.Errorf("empty label name at offset %d", i)
		}
		name := in[start:i]
		if i >= len(in) || in[i] != '=' {
			return 0, nil, fmt.Errorf("label %q: want '='", name)
		}
		i++
		if i >= len(in) || in[i] != '"' {
			return 0, nil, fmt.Errorf("label %q: want quoted value", name)
		}
		i++
		var val strings.Builder
		for {
			if i >= len(in) {
				return 0, nil, fmt.Errorf("label %q: unterminated value", name)
			}
			c := in[i]
			if c == '"' {
				i++
				break
			}
			if c == '\\' {
				i++
				if i >= len(in) {
					return 0, nil, fmt.Errorf("label %q: dangling escape", name)
				}
				switch in[i] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return 0, nil, fmt.Errorf("label %q: bad escape \\%c", name, in[i])
				}
				i++
				continue
			}
			val.WriteByte(c)
			i++
		}
		if _, dup := labels[name]; dup {
			return 0, nil, fmt.Errorf("duplicate label %q", name)
		}
		labels[name] = val.String()
		if i < len(in) && in[i] == ',' {
			i++
		}
	}
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		if !isNameChar(s[i], i == 0) {
			return false
		}
	}
	return true
}

func isNameChar(c byte, first bool) bool {
	if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == ':' {
		return true
	}
	return !first && c >= '0' && c <= '9'
}

func isLabelNameChar(c byte, first bool) bool {
	if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' {
		return true
	}
	return !first && c >= '0' && c <= '9'
}
