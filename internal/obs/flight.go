package obs

// FlightRecorder is the daemon's bounded ring of recent job
// timelines: finished (or failed) jobs park their JobTrace here until
// capacity evicts them, oldest first. Lookups are by job ID. The
// bound is on timeline count — each timeline is itself O(tracer
// capacity) — so daemon memory stays O(ring * cap) no matter how many
// jobs run.

import "sync"

// DefaultFlightRecorderCapacity is the daemon default for -trace-ring.
const DefaultFlightRecorderCapacity = 256

// FlightRecorder holds the most recent job timelines, keyed by job
// ID. Safe for concurrent use.
type FlightRecorder struct {
	mu      sync.Mutex
	cap     int
	order   []string             // insertion order, oldest first. guarded by mu
	byID    map[string]*JobTrace // guarded by mu
	evicted int64                // guarded by mu
	counter *Counter             // optional eviction metric. guarded by mu
}

// NewFlightRecorder returns a recorder keeping at most capacity
// timelines (minimum 1).
func NewFlightRecorder(capacity int) *FlightRecorder {
	if capacity < 1 {
		capacity = 1
	}
	return &FlightRecorder{cap: capacity, byID: make(map[string]*JobTrace)}
}

// SetEvictionCounter wires a registry counter that ticks once per
// evicted timeline.
func (f *FlightRecorder) SetEvictionCounter(c *Counter) {
	f.mu.Lock()
	f.counter = c
	f.mu.Unlock()
}

// SetCapacity resizes the ring, evicting oldest entries if it
// shrinks below the current population.
func (f *FlightRecorder) SetCapacity(capacity int) {
	if capacity < 1 {
		capacity = 1
	}
	f.mu.Lock()
	f.cap = capacity
	f.evictLocked()
	f.mu.Unlock()
}

// Add parks a timeline. Re-adding an existing job ID replaces its
// timeline in place (replays) without consuming a second slot.
func (f *FlightRecorder) Add(id string, jt *JobTrace) {
	if jt == nil {
		return
	}
	f.mu.Lock()
	if _, ok := f.byID[id]; !ok {
		f.order = append(f.order, id)
	}
	f.byID[id] = jt
	f.evictLocked()
	f.mu.Unlock()
}

// evictLocked drops the oldest timelines beyond cap; the caller holds
// f.mu.
//
//tracelint:holds mu
func (f *FlightRecorder) evictLocked() {
	for len(f.order) > f.cap {
		victim := f.order[0]
		f.order = f.order[1:]
		delete(f.byID, victim)
		f.evicted++
		if f.counter != nil {
			f.counter.Inc()
		}
	}
}

// Get returns the timeline for a job ID, or (nil, false) if it was
// never recorded or has been evicted.
func (f *FlightRecorder) Get(id string) (*JobTrace, bool) {
	f.mu.Lock()
	jt, ok := f.byID[id]
	f.mu.Unlock()
	return jt, ok
}

// Len returns the number of timelines currently held.
func (f *FlightRecorder) Len() int {
	f.mu.Lock()
	n := len(f.order)
	f.mu.Unlock()
	return n
}

// Evictions returns the total timelines evicted since creation.
func (f *FlightRecorder) Evictions() int64 {
	f.mu.Lock()
	n := f.evicted
	f.mu.Unlock()
	return n
}
