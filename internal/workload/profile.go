// Package workload synthesizes application-level I/O behaviours for
// the 31 public workload families of the paper's Table I (FIU SRCMap,
// FIU IODedup, Microsoft Production Server, MSR Cambridge).
//
// The real corpora cannot be redistributed with this repository, so
// each family is modeled as a seeded generator whose profile is
// calibrated to the published characteristics: Table I's request-size
// averages and trace counts, Fig 16's per-family average idle periods,
// and Fig 17's idle frequency/period breakdowns. Because generation
// happens at the application level (think times and issue modes are
// explicit), every synthetic trace carries ground truth that the real
// traces never had — which is exactly what the verification experiments
// (Figs 10/11) need.
package workload

import (
	"fmt"
	"time"
)

// Profile describes one workload family's statistical shape.
type Profile struct {
	// Name is the family name as the paper spells it.
	Name string
	// Set is the corpus: "FIU", "MSPS" or "MSRC".
	Set string
	// NumTraces is the family's trace count from Table I.
	NumTraces int
	// AvgKB is Table I's average request size.
	AvgKB float64
	// TotalGB is Table I's total transferred volume.
	TotalGB float64

	// ReadFrac is the fraction of read requests.
	ReadFrac float64
	// SeqFrac is the probability a request continues the current
	// sequential run.
	SeqFrac float64
	// AsyncFrac is the probability a request is issued asynchronously
	// (no wait for completion).
	AsyncFrac float64

	// IdleFreq is the fraction of requests preceded by a think time
	// (user idle / system delay); the remainder issue back-to-back.
	IdleFreq float64
	// IdleShortFrac / IdleMidFrac / IdleLongFrac partition idles into
	// the paper's Fig 17 buckets: 0–10 ms, 10–100 ms, >100 ms. They
	// must sum to 1.
	IdleShortFrac, IdleMidFrac, IdleLongFrac float64
	// LongIdleMean is the mean of the >100 ms idle component, the
	// knob that calibrates the family's Fig 16 average idle.
	LongIdleMean time.Duration

	// WorkingSetGB bounds the LBA space touched.
	WorkingSetGB float64
	// TsdevKnown marks corpora whose collection recorded completion
	// timestamps (MSPS, MSRC event tracing) versus those that did not
	// (FIU).
	TsdevKnown bool
}

// Validate checks internal consistency.
func (p Profile) Validate() error {
	sum := p.IdleShortFrac + p.IdleMidFrac + p.IdleLongFrac
	if sum < 0.999 || sum > 1.001 {
		return fmt.Errorf("workload %s: idle fractions sum to %v", p.Name, sum)
	}
	// Table I's smallest average is topgun's 3.87 KB (sub-page
	// requests exist in the FIU corpus).
	if p.AvgKB < 3 {
		return fmt.Errorf("workload %s: implausible average request size", p.Name)
	}
	if p.ReadFrac < 0 || p.ReadFrac > 1 || p.SeqFrac < 0 || p.SeqFrac > 1 {
		return fmt.Errorf("workload %s: fraction out of range", p.Name)
	}
	return nil
}

// msps builds an MSPS-family profile: idle-frequent (Fig 17 top: ~70%
// of requests see idles) but idle-short (Fig 16: 0.27 s average),
// completion-timestamped.
func msps(name string, traces int, avgKB, totalGB, readFrac, seqFrac float64, longMean time.Duration) Profile {
	return Profile{
		Name: name, Set: "MSPS", NumTraces: traces, AvgKB: avgKB, TotalGB: totalGB,
		ReadFrac: readFrac, SeqFrac: seqFrac, AsyncFrac: 0.15,
		IdleFreq:      0.70,
		IdleShortFrac: 0.68, IdleMidFrac: 0.22, IdleLongFrac: 0.10,
		LongIdleMean: longMean,
		WorkingSetGB: 32, TsdevKnown: true,
	}
}

// fiu builds an FIU-family profile: idle-rare (~31% of requests) but
// idle-long (Fig 16: seconds), no completion timestamps.
func fiu(name string, traces int, avgKB, totalGB, readFrac, seqFrac float64, longMean time.Duration) Profile {
	return Profile{
		Name: name, Set: "FIU", NumTraces: traces, AvgKB: avgKB, TotalGB: totalGB,
		ReadFrac: readFrac, SeqFrac: seqFrac, AsyncFrac: 0.15,
		IdleFreq:      0.31,
		IdleShortFrac: 0.45, IdleMidFrac: 0.25, IdleLongFrac: 0.30,
		LongIdleMean: longMean,
		WorkingSetGB: 16, TsdevKnown: false,
	}
}

// msrc builds an MSRC-family profile: idle-rare (~26%), idle-long,
// completion-timestamped.
func msrc(name string, traces int, avgKB, totalGB, readFrac, seqFrac float64, longMean time.Duration) Profile {
	return Profile{
		Name: name, Set: "MSRC", NumTraces: traces, AvgKB: avgKB, TotalGB: totalGB,
		ReadFrac: readFrac, SeqFrac: seqFrac, AsyncFrac: 0.20,
		IdleFreq:      0.26,
		IdleShortFrac: 0.40, IdleMidFrac: 0.25, IdleLongFrac: 0.35,
		LongIdleMean: longMean,
		WorkingSetGB: 64, TsdevKnown: true,
	}
}

// Profiles returns the 31 Table I workload families plus the Exchange
// workload the paper's Figs 1/3 use (Exchange is part of the MSPS
// corpus but not broken out in Table I; it is excluded from corpus
// totals). The slice order is the paper's Table I order.
func Profiles() []Profile {
	return []Profile{
		// --- MSPS, published 2007 (324 traces) ---
		msps("24HR", 18, 8.27, 21.2, 0.55, 0.30, 700*time.Millisecond),
		msps("24HRS", 18, 28.79, 178.6, 0.60, 0.45, 600*time.Millisecond),
		msps("BS", 96, 20.73, 331.2, 0.45, 0.35, 800*time.Millisecond),
		msps("CFS", 36, 9.71, 43.6, 0.65, 0.25, 500*time.Millisecond),
		msps("DADS", 48, 28.66, 44.6, 0.70, 0.50, 650*time.Millisecond),
		msps("DAP", 48, 74.42, 84, 0.75, 0.60, 900*time.Millisecond),
		msps("DDR", 24, 24.78, 44, 0.50, 0.40, 750*time.Millisecond),
		msps("MSNFS", 36, 10.71, 317.9, 0.60, 0.30, 550*time.Millisecond),
		// --- FIU SRCMap, published 2008 (176 traces) ---
		fiu("ikki", 20, 4.64, 25.4, 0.25, 0.15, 9*time.Second),
		fiu("madmax", 20, 4.11, 3.8, 0.20, 0.10, 60*time.Second),
		fiu("online", 20, 4.00, 22.8, 0.30, 0.15, 8*time.Second),
		fiu("topgun", 20, 3.87, 9.4, 0.22, 0.12, 10*time.Second),
		fiu("webmail", 20, 4.00, 31.2, 0.35, 0.15, 7*time.Second),
		fiu("casa", 20, 4.04, 80.4, 0.28, 0.14, 8*time.Second),
		fiu("webresearch", 28, 4.00, 13.7, 0.40, 0.18, 9*time.Second),
		fiu("webusers", 28, 4.20, 33.6, 0.38, 0.16, 8*time.Second),
		// --- FIU IODedup, published 2009 (42 traces) ---
		fiu("mail+online", 21, 4.0, 57.1, 0.32, 0.15, 7*time.Second),
		fiu("homes", 21, 5.23, 84.6, 0.20, 0.20, 9*time.Second),
		// --- MSRC, published 2008 (35 traces) ---
		msrc("mds", 2, 33.0, 208.4, 0.55, 0.40, 7*time.Second),
		msrc("prn", 2, 15.4, 568.8, 0.35, 0.30, 6*time.Second),
		msrc("proj", 5, 29.6, 4780.1, 0.60, 0.50, 7*time.Second),
		msrc("prxy", 2, 8.6, 4353, 0.20, 0.25, 5*time.Second),
		msrc("rsrch", 3, 8.4, 27.63, 0.15, 0.20, 180*time.Second),
		msrc("src1", 3, 35.7, 6516.5, 0.65, 0.55, 6*time.Second),
		msrc("src2", 3, 40.9, 230.6, 0.60, 0.50, 7*time.Second),
		msrc("stg", 2, 26.2, 226.4, 0.45, 0.40, 6*time.Second),
		msrc("web", 4, 7, 625.4, 0.70, 0.25, 6*time.Second),
		msrc("wdev", 4, 34, 23.7, 0.25, 0.35, 900*time.Second),
		msrc("usr", 3, 38.65, 5506.1, 0.55, 0.45, 7*time.Second),
		msrc("hm", 1, 15.16, 9.24, 0.45, 0.30, 6*time.Second),
		msrc("ts", 1, 9.0, 16.2, 0.40, 0.25, 6*time.Second),
	}
}

// Exchange is the Microsoft exchange-server workload of Figs 1 and 3:
// MSPS corpus style, 5000-user mail pattern.
func Exchange() Profile {
	p := msps("Exchange", 0, 12.5, 600, 0.45, 0.20, 500*time.Millisecond)
	p.AsyncFrac = 0.30
	return p
}

// Lookup returns the profile with the given name (Profiles plus
// Exchange); ok is false when the name is unknown.
func Lookup(name string) (Profile, bool) {
	if name == "Exchange" {
		return Exchange(), true
	}
	for _, p := range Profiles() {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// TotalTraces sums NumTraces across Profiles — the paper's 577.
func TotalTraces() int {
	n := 0
	for _, p := range Profiles() {
		n += p.NumTraces
	}
	return n
}
