package workload

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/trace"
)

func TestProfilesMatchTableI(t *testing.T) {
	ps := Profiles()
	if len(ps) != 31 {
		t.Fatalf("profiles = %d, want 31 workload families", len(ps))
	}
	if TotalTraces() != 577 {
		t.Fatalf("total traces = %d, want 577 (Table I)", TotalTraces())
	}
	sets := map[string]int{}
	for _, p := range ps {
		if err := p.Validate(); err != nil {
			t.Errorf("profile %s invalid: %v", p.Name, err)
		}
		sets[p.Set] += p.NumTraces
	}
	if sets["MSPS"] != 324 || sets["FIU"] != 218 || sets["MSRC"] != 35 {
		t.Fatalf("per-set counts %v, want MSPS 324 / FIU 218 / MSRC 35", sets)
	}
}

func TestLookup(t *testing.T) {
	p, ok := Lookup("MSNFS")
	if !ok || p.Set != "MSPS" {
		t.Fatalf("Lookup MSNFS: %+v %v", p, ok)
	}
	if _, ok := Lookup("Exchange"); !ok {
		t.Fatal("Exchange must be resolvable")
	}
	if _, ok := Lookup("nope"); ok {
		t.Fatal("unknown workload resolved")
	}
}

func TestTsdevKnownBySets(t *testing.T) {
	for _, p := range Profiles() {
		want := p.Set != "FIU"
		if p.TsdevKnown != want {
			t.Errorf("%s (%s): TsdevKnown = %v", p.Name, p.Set, p.TsdevKnown)
		}
	}
}

func TestSizeMixHitsMean(t *testing.T) {
	for _, avg := range []float64{4.0, 4.64, 10.71, 28.79, 74.42} {
		sizes, weights := sizeMix(avg)
		if len(sizes) != len(weights) {
			t.Fatal("mismatched mixture")
		}
		var wsum, mean float64
		for i := range sizes {
			wsum += weights[i]
			mean += weights[i] * float64(sizes[i]) * trace.SectorSize / 1024
		}
		if math.Abs(wsum-1) > 1e-9 {
			t.Fatalf("avg %v: weights sum %v", avg, wsum)
		}
		// Mixture mean within 40% of target (anchors are powers of
		// two; clamping can bias small averages).
		if mean < avg*0.6 || mean > avg*1.6 {
			t.Fatalf("avg %v: mixture mean %v", avg, mean)
		}
		// At least two distinct sizes (β/η need two CDFs).
		if sizes[0] == sizes[len(sizes)-1] {
			t.Fatalf("avg %v: degenerate mixture %v", avg, sizes)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p, _ := Lookup("ikki")
	a := Generate(p, GenOptions{Ops: 500, Seed: 42})
	b := Generate(p, GenOptions{Ops: 500, Seed: 42})
	if len(a.Ops) != len(b.Ops) {
		t.Fatal("lengths differ")
	}
	for i := range a.Ops {
		if a.Ops[i] != b.Ops[i] {
			t.Fatalf("op %d differs", i)
		}
	}
	c := Generate(p, GenOptions{Ops: 500, Seed: 43})
	same := true
	for i := range a.Ops {
		if a.Ops[i] != c.Ops[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestGenerateStatisticalShape(t *testing.T) {
	p, _ := Lookup("MSNFS")
	app := Generate(p, GenOptions{Ops: 20000, Seed: 7})
	reads, idles, asyncs := 0, 0, 0
	for _, op := range app.Ops {
		if op.Op == trace.Read {
			reads++
		}
		if op.Think > 0 {
			idles++
		}
		if !op.Sync {
			asyncs++
		}
	}
	n := float64(len(app.Ops))
	if rf := float64(reads) / n; math.Abs(rf-p.ReadFrac) > 0.05 {
		t.Fatalf("read fraction %v, want ~%v", rf, p.ReadFrac)
	}
	// Idle frequency: async bursts zero their think times, so the
	// realized rate sits below IdleFreq but must stay in its vicinity.
	if idf := float64(idles) / n; idf < p.IdleFreq*0.5 || idf > p.IdleFreq*1.1 {
		t.Fatalf("idle fraction %v, want near %v", idf, p.IdleFreq)
	}
	if af := float64(asyncs) / n; af < 0.05 || af > 0.6 {
		t.Fatalf("async fraction %v implausible", af)
	}
}

func TestDrawIdleBuckets(t *testing.T) {
	p, _ := Lookup("homes")
	rng := rand.New(rand.NewSource(3))
	short, mid, long := 0, 0, 0
	const n = 20000
	for i := 0; i < n; i++ {
		d := p.drawIdle(rng)
		switch {
		case d <= 10*time.Millisecond:
			short++
		case d <= 100*time.Millisecond:
			mid++
		default:
			long++
		}
	}
	if sf := float64(short) / n; math.Abs(sf-p.IdleShortFrac) > 0.03 {
		t.Fatalf("short frac %v, want %v", sf, p.IdleShortFrac)
	}
	if lf := float64(long) / n; math.Abs(lf-p.IdleLongFrac) > 0.03 {
		t.Fatalf("long frac %v, want %v", lf, p.IdleLongFrac)
	}
}

func TestExpectedIdleMeanOrdering(t *testing.T) {
	// FIU families must have much longer expected idles than MSPS
	// (Fig 16: 2.80s vs 0.27s), and wdev the longest of all.
	msnfs, _ := Lookup("MSNFS")
	ikki, _ := Lookup("ikki")
	wdev, _ := Lookup("wdev")
	if ikki.ExpectedIdleMean() <= msnfs.ExpectedIdleMean() {
		t.Fatal("FIU idle mean should exceed MSPS")
	}
	if wdev.ExpectedIdleMean() <= ikki.ExpectedIdleMean() {
		t.Fatal("wdev idle mean should dominate (Fig 16: 403s)")
	}
}

func TestTraceSeedStable(t *testing.T) {
	if TraceSeed("ikki", 3) != TraceSeed("ikki", 3) {
		t.Fatal("TraceSeed not stable")
	}
	if TraceSeed("ikki", 3) == TraceSeed("ikki", 4) {
		t.Fatal("TraceSeed ignores index")
	}
	if TraceSeed("ikki", 3) == TraceSeed("casa", 3) {
		t.Fatal("TraceSeed ignores family")
	}
	if TraceSeed("x", 0) < 0 {
		t.Fatal("TraceSeed must be non-negative")
	}
}

func TestGenerateLBAWithinWorkingSet(t *testing.T) {
	p, _ := Lookup("prxy")
	app := Generate(p, GenOptions{Ops: 5000, Seed: 11})
	limit := uint64(p.WorkingSetGB*1e9/trace.SectorSize) + 1<<20
	for i, op := range app.Ops {
		if op.LBA > limit {
			t.Fatalf("op %d LBA %d beyond working set", i, op.LBA)
		}
		if op.Sectors == 0 {
			t.Fatalf("op %d zero sectors", i)
		}
	}
}

func TestDiurnalModulation(t *testing.T) {
	p, _ := Lookup("webusers")
	const ops = 8000
	app := Generate(p, GenOptions{Ops: ops, Seed: 5, DiurnalOps: ops})
	// Phase 0..pi/2 and 3pi/2..2pi are "day" (cos near 1), the middle
	// half is "night": the night half must carry more total think.
	var day, night time.Duration
	for i, op := range app.Ops {
		if i >= ops/4 && i < 3*ops/4 {
			night += op.Think
		} else {
			day += op.Think
		}
	}
	if night <= day {
		t.Fatalf("night think %v should exceed day think %v", night, day)
	}
	// Without modulation the halves balance (within 3x).
	flat := Generate(p, GenOptions{Ops: ops, Seed: 5})
	day, night = 0, 0
	for i, op := range flat.Ops {
		if i >= ops/4 && i < 3*ops/4 {
			night += op.Think
		} else {
			day += op.Think
		}
	}
	ratio := float64(night) / float64(day+1)
	if ratio > 3 || ratio < 1.0/3 {
		t.Fatalf("unmodulated halves imbalanced: %v", ratio)
	}
}

func TestDiurnalDeterministic(t *testing.T) {
	p, _ := Lookup("ikki")
	a := Generate(p, GenOptions{Ops: 500, Seed: 9, DiurnalOps: 250})
	b := Generate(p, GenOptions{Ops: 500, Seed: 9, DiurnalOps: 250})
	for i := range a.Ops {
		if a.Ops[i] != b.Ops[i] {
			t.Fatal("diurnal generation not deterministic")
		}
	}
}
