package workload

import (
	"hash/fnv"
	"math"
	"math/rand"
	"time"

	"repro/internal/replay"
	"repro/internal/trace"
)

// GenOptions controls application synthesis.
type GenOptions struct {
	// Ops is the number of I/O operations to generate (default 5000).
	Ops int
	// Seed makes generation reproducible; TraceSeed derives per-trace
	// seeds for multi-trace families.
	Seed int64
	// DiurnalOps, when nonzero, modulates activity with a day/night
	// cycle of this many operations: around the cycle's trough the
	// workload idles more often and longer (production servers show
	// exactly this structure; the MSRC captures span a full week).
	DiurnalOps int
	// DiurnalAmplitude scales the modulation depth in (0,1]; default
	// 0.8 when DiurnalOps is set.
	DiurnalAmplitude float64
}

func (o GenOptions) withDefaults() GenOptions {
	if o.Ops == 0 {
		o.Ops = 5000
	}
	return o
}

// TraceSeed derives a stable seed for trace index i of a family, so
// corpus sweeps regenerate identical traces run over run.
func TraceSeed(family string, i int) int64 {
	h := fnv.New64a()
	h.Write([]byte(family))
	h.Write([]byte{byte(i), byte(i >> 8), byte(i >> 16), byte(i >> 24)})
	return int64(h.Sum64() & 0x7fffffffffffffff)
}

// sizeMix returns the discrete request-size mixture (sectors) whose
// mean matches the profile's AvgKB: a small anchor (4 KB, the page
// size every corpus is dominated by) and a large anchor (next power of
// two >= 2*AvgKB), mixed to hit the mean, plus a middle size for
// realism. Two-plus sizes per op type are exactly what the inference
// model's β/η estimation needs.
func sizeMix(avgKB float64) (sizes []uint32, weights []float64) {
	const loKB = 4.0
	hiKB := 8.0
	for hiKB < 2*avgKB {
		hiKB *= 2
	}
	midKB := hiKB / 2
	if midKB <= loKB {
		midKB = loKB * 2
		if hiKB <= midKB {
			hiKB = midKB * 2
		}
	}
	// Solve wLo*lo + wMid*mid + wHi*hi = avg with wMid fixed at 0.15.
	const wMid = 0.15
	rem := 1 - wMid
	target := avgKB - wMid*midKB
	// wLo*lo + (rem-wLo)*hi = target
	wLo := (rem*hiKB - target) / (hiKB - loKB)
	if wLo < 0.05 {
		wLo = 0.05
	}
	if wLo > rem-0.05 {
		wLo = rem - 0.05
	}
	wHi := rem - wLo
	toSectors := func(kb float64) uint32 { return uint32(kb * 1024 / trace.SectorSize) }
	return []uint32{toSectors(loKB), toSectors(midKB), toSectors(hiKB)},
		[]float64{wLo, wMid, wHi}
}

// pick draws an index from weights.
func pick(rng *rand.Rand, weights []float64) int {
	x := rng.Float64()
	for i, w := range weights {
		if x < w {
			return i
		}
		x -= w
	}
	return len(weights) - 1
}

// Generate synthesizes the application behaviour for one trace of the
// family: LBA stream with the profile's sequentiality, read/write and
// size mixture, async bursts, and the three-bucket idle structure. The
// result runs against any device via replay.App.Execute.
func Generate(p Profile, opts GenOptions) *replay.App {
	opts = opts.withDefaults()
	rng := rand.New(rand.NewSource(opts.Seed))
	sizes, weights := sizeMix(p.AvgKB)

	workingSectors := uint64(p.WorkingSetGB * 1e9 / trace.SectorSize)
	if workingSectors < 1<<20 {
		workingSectors = 1 << 20
	}
	app := &replay.App{Name: p.Name}
	lba := uint64(rng.Int63n(int64(workingSectors)))
	asyncRun := 0
	for i := 0; i < opts.Ops; i++ {
		op := trace.Write
		if rng.Float64() < p.ReadFrac {
			op = trace.Read
		}
		sz := sizes[pick(rng, weights)]
		if rng.Float64() < p.SeqFrac && i > 0 {
			// continue the sequential run: lba already points at the
			// end of the previous request
		} else {
			lba = uint64(rng.Int63n(int64(workingSectors)))
		}
		// Diurnal modulation: phase 0 is midday (busy), phase π the
		// night trough where idles are more frequent and longer.
		nightness := 0.0
		if opts.DiurnalOps > 0 {
			amp := opts.DiurnalAmplitude
			if amp == 0 {
				amp = 0.8
			}
			phase := 2 * math.Pi * float64(i) / float64(opts.DiurnalOps)
			nightness = amp * (1 - math.Cos(phase)) / 2 // 0 midday .. amp midnight
		}
		idleFreq := p.IdleFreq * (1 + nightness)
		if idleFreq > 1 {
			idleFreq = 1
		}
		think := time.Duration(0)
		if rng.Float64() < idleFreq {
			think = p.drawIdle(rng)
			if nightness > 0 {
				think += time.Duration(float64(think) * 2 * nightness)
			}
		}
		// Async bursts: geometric runs so bursts look like real
		// asynchronous flushes rather than independent coin flips.
		sync := true
		if asyncRun > 0 {
			sync = false
			asyncRun--
		} else if rng.Float64() < p.AsyncFrac/3 {
			sync = false
			asyncRun = 2 + rng.Intn(6)
			think = 0 // bursts are back-to-back
		}
		app.Ops = append(app.Ops, replay.AppOp{
			LBA:     lba,
			Sectors: sz,
			Op:      op,
			Think:   think,
			Sync:    sync,
		})
		lba += uint64(sz)
		if lba >= workingSectors {
			lba = 0
		}
	}
	return app
}

// drawIdle samples one think time from the profile's three-bucket idle
// mixture: 0–10 ms log-uniform, 10–100 ms log-uniform, and an
// exponential >100 ms component with mean LongIdleMean.
func (p Profile) drawIdle(rng *rand.Rand) time.Duration {
	x := rng.Float64()
	switch {
	case x < p.IdleShortFrac:
		// 0.2–10 ms, log-uniform
		return logUniform(rng, 200*time.Microsecond, 10*time.Millisecond)
	case x < p.IdleShortFrac+p.IdleMidFrac:
		// 10–100 ms, log-uniform
		return logUniform(rng, 10*time.Millisecond, 100*time.Millisecond)
	default:
		mean := float64(p.LongIdleMean - 100*time.Millisecond)
		if mean < float64(100*time.Millisecond) {
			mean = float64(100 * time.Millisecond)
		}
		return 100*time.Millisecond + time.Duration(rng.ExpFloat64()*mean)
	}
}

func logUniform(rng *rand.Rand, lo, hi time.Duration) time.Duration {
	llo, lhi := math.Log(float64(lo)), math.Log(float64(hi))
	return time.Duration(math.Exp(llo + rng.Float64()*(lhi-llo)))
}

// ExpectedIdleMean returns the analytic mean idle period of the
// profile's mixture (for calibration tests against Fig 16).
func (p Profile) ExpectedIdleMean() time.Duration {
	shortMean := logUniformMean(200*time.Microsecond, 10*time.Millisecond)
	midMean := logUniformMean(10*time.Millisecond, 100*time.Millisecond)
	longMean := float64(p.LongIdleMean)
	if longMean < float64(200*time.Millisecond) {
		longMean = float64(200 * time.Millisecond)
	}
	m := p.IdleShortFrac*shortMean + p.IdleMidFrac*midMean + p.IdleLongFrac*longMean
	return time.Duration(m)
}

func logUniformMean(lo, hi time.Duration) float64 {
	a, b := float64(lo), float64(hi)
	return (b - a) / math.Log(b/a)
}
