package trace

// Content sniffing: every supported input format is recognizable from
// its leading bytes — the binary format by its magic, the text formats
// by the field layout of the first data record — so tools can accept
// "-informat auto" and the corpus store can ingest uploads without a
// format hint.

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// SniffLen is the longest prefix DetectFormat ever needs: enough to
// cover leading comments plus one complete data record in any
// supported text format.
const SniffLen = 64 << 10

// DetectFormat inspects the leading bytes of a trace (the first
// SniffLen bytes, or the whole input when shorter) and returns the
// input format name: "csv", "bin", "msrc" or "spc".
//
// The binary magic and the native header comment are unambiguous; bare
// data records are decided by the first line that parses under exactly
// the field layout one decoder expects. Degenerate all-numeric lines
// that would parse under more than one layout resolve in the fixed
// order native CSV, then MSRC, then SPC.
func DetectFormat(head []byte) (string, error) {
	if len(head) >= len(binaryMagic) && bytes.Equal(head[:len(binaryMagic)], binaryMagic[:]) {
		return "bin", nil
	}
	rest := head
	for len(rest) > 0 {
		line, tail, complete := cutLine(rest)
		rest = tail
		s := strings.TrimSpace(string(line))
		if s == "" {
			continue
		}
		if strings.HasPrefix(s, "#") {
			// The native metadata header identifies the format before
			// any data; other comments are format-neutral.
			if strings.HasPrefix(s, "# tracetracker ") {
				return "csv", nil
			}
			continue
		}
		if !complete && len(head) >= SniffLen {
			// The record was cut by the sniff window, not by EOF —
			// don't guess from a truncated line.
			break
		}
		f := strings.Split(s, ",")
		switch {
		case isNativeLine(f):
			return "csv", nil
		case isMSRCLine(f):
			return "msrc", nil
		case isSPCLine(f):
			return "spc", nil
		}
		return "", fmt.Errorf("trace: unrecognized trace data %q", clip(s, 80))
	}
	return "", fmt.Errorf("trace: cannot detect format: no data record in the first %d bytes", SniffLen)
}

// SniffFormat detects the format of r without losing bytes: it reads
// at most SniffLen bytes, detects, and returns a reader that replays
// the consumed prefix followed by the remainder of r.
func SniffFormat(r io.Reader) (string, io.Reader, error) {
	head := make([]byte, SniffLen)
	n, err := io.ReadFull(r, head)
	if err != nil && err != io.ErrUnexpectedEOF && err != io.EOF {
		return "", nil, err
	}
	head = head[:n]
	format, derr := DetectFormat(head)
	if derr != nil {
		return "", nil, derr
	}
	return format, io.MultiReader(bytes.NewReader(head), r), nil
}

// ReadAuto materializes a whole trace of the named input format,
// resolving "auto" (or "") by content sniffing first — the shared
// implementation behind every tool's -informat auto.
func ReadAuto(format string, r io.Reader) (*Trace, error) {
	if format == "auto" || format == "" {
		var err error
		if format, r, err = SniffFormat(r); err != nil {
			return nil, err
		}
	}
	return ReadFormat(format, r)
}

// DetectFile detects the format of a trace file from its head.
func DetectFile(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	head := make([]byte, SniffLen)
	n, err := io.ReadFull(f, head)
	if err != nil && err != io.ErrUnexpectedEOF && err != io.EOF {
		return "", err
	}
	return DetectFormat(head[:n])
}

// cutLine splits off the first line of b; complete reports whether the
// line was terminated by a newline (false only for a trailing
// fragment).
func cutLine(b []byte) (line, tail []byte, complete bool) {
	if i := bytes.IndexByte(b, '\n'); i >= 0 {
		return b[:i], b[i+1:], true
	}
	return b, nil, false
}

// isNativeLine reports whether f is a native CSV record
// (arrival_us,device,lba,sectors,op,latency_us,async). It funnels
// through the decoder's own parser so the sniff cannot drift from
// what CSVDecoder actually accepts.
func isNativeLine(f []string) bool {
	if len(f) != 7 {
		return false
	}
	var fb [7][]byte
	for i, s := range f {
		fb[i] = []byte(s)
	}
	_, err := parseNativeLine(fb[:])
	return err == nil
}

// isMSRCLine reports whether f is an MSRC record
// (timestamp,host,disk,op,offset,size,response): the same checks
// MSRCDecoder.Next applies, without building the request.
func isMSRCLine(f []string) bool {
	if len(f) != 7 {
		return false
	}
	if _, err := strconv.ParseInt(f[0], 10, 64); err != nil {
		return false
	}
	if _, err := strconv.ParseUint(f[2], 10, 32); err != nil {
		return false
	}
	if _, err := ParseOp(f[3]); err != nil {
		return false
	}
	if _, err := strconv.ParseUint(f[4], 10, 64); err != nil {
		return false
	}
	if _, err := strconv.ParseUint(f[5], 10, 64); err != nil {
		return false
	}
	_, err := strconv.ParseInt(f[6], 10, 64)
	return err == nil
}

// isSPCLine reports whether f is an SPC-1 record
// (asu,lba,size,op,timestamp[,...]); SPCDecoder trims each field, so
// the sniff does too.
func isSPCLine(f []string) bool {
	if len(f) < 5 {
		return false
	}
	if _, err := strconv.ParseUint(strings.TrimSpace(f[0]), 10, 32); err != nil {
		return false
	}
	if _, err := strconv.ParseUint(strings.TrimSpace(f[1]), 10, 64); err != nil {
		return false
	}
	if _, err := strconv.ParseUint(strings.TrimSpace(f[2]), 10, 64); err != nil {
		return false
	}
	if _, err := ParseOp(strings.TrimSpace(f[3])); err != nil {
		return false
	}
	_, err := strconv.ParseFloat(strings.TrimSpace(f[4]), 64)
	return err == nil
}

// clip bounds s for error messages.
func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}
