package trace

// One-pass characterization: Summarizer folds a request stream into
// the whole-trace metrics tracestat prints and the corpus store
// records in its sidecars, without materializing the trace — the
// bounded-memory counterpart of the Trace accessor methods.

import (
	"math"
	"time"
)

// Summary is the one-pass characterization of a request stream. All
// order-sensitive metrics (sequential fraction, inter-arrival moments)
// are computed in stream order; wrap near-sorted corpora (msrc/spc) in
// a ReorderDecoder when arrival-order semantics matter.
type Summary struct {
	// Meta is the stream metadata observed by the decoder.
	Meta Meta
	// Requests is the record count.
	Requests int64
	// MinArrival/MaxArrival bound the arrivals seen.
	MinArrival, MaxArrival time.Duration
	// TotalBytes is the sum of request sizes.
	TotalBytes int64
	// Reads and Seq count read and sequential requests.
	Reads, Seq int64
	// IntervalMeanUS/IntervalStdUS/IntervalMaxUS are moments of the
	// successive inter-arrival gaps in microseconds.
	IntervalMeanUS, IntervalStdUS, IntervalMaxUS float64
}

// Duration returns the arrival span, zero below two requests —
// matching Trace.Duration on sorted input.
func (s Summary) Duration() time.Duration {
	if s.Requests < 2 {
		return 0
	}
	return s.MaxArrival - s.MinArrival
}

// ReadFraction returns the fraction of read requests.
func (s Summary) ReadFraction() float64 {
	if s.Requests == 0 {
		return 0
	}
	return float64(s.Reads) / float64(s.Requests)
}

// SeqFraction returns the fraction of sequential requests.
func (s Summary) SeqFraction() float64 {
	if s.Requests == 0 {
		return 0
	}
	return float64(s.Seq) / float64(s.Requests)
}

// AvgRequestBytes returns the mean request size in bytes.
func (s Summary) AvgRequestBytes() float64 {
	if s.Requests == 0 {
		return 0
	}
	return float64(s.TotalBytes) / float64(s.Requests)
}

// Summarizer accumulates a Summary incrementally (O(1) memory beyond
// the per-device sequentiality map).
type Summarizer struct {
	sum  Summary
	seq  *SeqState
	prev time.Duration
	m2   float64 // Welford sum of squared deviations of the gaps
}

// NewSummarizer returns an empty accumulator.
func NewSummarizer() *Summarizer {
	return &Summarizer{seq: NewSeqState()}
}

// Add folds one request into the summary.
//
//tracelint:hotpath
func (a *Summarizer) Add(r Request) {
	s := &a.sum
	if s.Requests == 0 {
		s.MinArrival, s.MaxArrival = r.Arrival, r.Arrival
	} else {
		if r.Arrival < s.MinArrival {
			s.MinArrival = r.Arrival
		}
		if r.Arrival > s.MaxArrival {
			s.MaxArrival = r.Arrival
		}
		gap := float64(r.Arrival-a.prev) / float64(time.Microsecond)
		n := float64(s.Requests) // gap count including this one
		delta := gap - s.IntervalMeanUS
		s.IntervalMeanUS += delta / n
		a.m2 += delta * (gap - s.IntervalMeanUS)
		if gap > s.IntervalMaxUS {
			s.IntervalMaxUS = gap
		}
	}
	a.prev = r.Arrival
	s.Requests++
	s.TotalBytes += r.Bytes()
	if r.Op == Read {
		s.Reads++
	}
	if a.seq.Flag(r) {
		s.Seq++
	}
}

// Summary finalizes the accumulated metrics under the stream metadata
// m (pass dec.Meta() after draining, when it is complete).
func (a *Summarizer) Summary(m Meta) Summary {
	s := a.sum
	s.Meta = m
	if n := s.Requests - 1; n > 0 {
		s.IntervalStdUS = math.Sqrt(a.m2 / float64(n))
	}
	return s
}

// Summarize drains dec and returns its one-pass summary. It reads
// through the batched decode path — or straight out of a parallel
// decoder's internal batches — so the per-record cost is the Add
// fold, not interface dispatch — this is what tracestat -stream and
// corpus ingest run over whole corpora. On a decode error the decoder
// is closed (CloseDecoder), so abandoned parallel decodes never leak
// workers.
func Summarize(dec Decoder) (Summary, error) {
	acc := NewSummarizer()
	err := ForEachBatch(dec, func(batch []Request) error {
		for _, r := range batch {
			acc.Add(r)
		}
		return nil
	})
	if err != nil {
		CloseDecoder(dec)
		return Summary{}, err
	}
	return acc.Summary(dec.Meta()), nil
}
