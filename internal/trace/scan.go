package trace

// Low-level scanning and formatting primitives for the text codecs.
// The hot path never converts record bytes to strings: lines are
// yielded as slices into the read buffer, fields alias the line, and
// the numeric parsers work on bytes with a strconv fallback that is
// only taken on malformed or exotic input (where its allocation buys
// the canonical error message, or the full parsing generality).

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
)

// maxLineLen bounds a single text line, like the bufio.Scanner limit
// the codecs used before: a pathological unterminated line must not
// grow the scratch buffer without bound.
const maxLineLen = 1 << 20

// lineScanner yields lines as byte slices that stay valid until the
// following next call. Lines that fit the read buffer are returned as
// views into it (zero copy); longer ones are assembled in a reusable
// scratch buffer.
type lineScanner struct {
	br      *bufio.Reader
	scratch []byte
}

func newLineScanner(r io.Reader) *lineScanner {
	return &lineScanner{br: bufio.NewReaderSize(r, 128<<10)}
}

// next returns the next line without its '\n' terminator, or io.EOF
// when the input is exhausted. The returned slice is only valid until
// the next call.
func (s *lineScanner) next() ([]byte, error) {
	line, err := s.br.ReadSlice('\n')
	if err == nil {
		return line[:len(line)-1], nil
	}
	if err == io.EOF {
		if len(line) == 0 {
			return nil, io.EOF
		}
		return line, nil // final unterminated line
	}
	if err != bufio.ErrBufferFull {
		return nil, err
	}
	s.scratch = append(s.scratch[:0], line...)
	for {
		line, err = s.br.ReadSlice('\n')
		s.scratch = append(s.scratch, line...)
		if len(s.scratch) > maxLineLen {
			return nil, fmt.Errorf("trace: line longer than %d bytes", maxLineLen)
		}
		switch err {
		case nil:
			return s.scratch[:len(s.scratch)-1], nil
		case io.EOF:
			return s.scratch, nil
		case bufio.ErrBufferFull:
			continue
		default:
			return nil, err
		}
	}
}

// splitComma splits line at commas into dst (fields alias line) and
// returns the total field count, which may exceed len(dst); excess
// fields are counted but not stored. A plain byte loop beats repeated
// bytes.IndexByte calls at trace-field widths.
func splitComma(dst [][]byte, line []byte) int {
	n := 0
	start := 0
	for i := 0; i < len(line); i++ {
		if line[i] == ',' {
			if n < len(dst) {
				dst[n] = line[start:i]
			}
			n++
			start = i + 1
		}
	}
	if n < len(dst) {
		dst[n] = line[start:]
	}
	n++
	return n
}

// parseUintBytes is strconv.ParseUint(string(b), 10, bits) without the
// string conversion on the digits-only fast path.
func parseUintBytes(b []byte, bits int) (uint64, error) {
	if len(b) == 0 {
		return strconv.ParseUint("", 10, bits)
	}
	maxVal := uint64(1)<<uint(bits) - 1
	var v uint64
	for _, c := range b {
		d := uint64(c - '0')
		if d > 9 || v > maxVal/10 {
			// Non-digit, sign, or overflow: strconv produces the
			// canonical NumError (syntax or range).
			return strconv.ParseUint(string(b), 10, bits)
		}
		if v = v*10 + d; v > maxVal {
			return strconv.ParseUint(string(b), 10, bits)
		}
	}
	return v, nil
}

// parseIntBytes is strconv.ParseInt(string(b), 10, bits) with a
// digits-only fast path; signed or malformed input falls back.
func parseIntBytes(b []byte, bits int) (int64, error) {
	if len(b) == 0 || b[0] == '-' || b[0] == '+' {
		return strconv.ParseInt(string(b), 10, bits)
	}
	v, err := parseUintBytes(b, bits-1)
	if err != nil {
		return strconv.ParseInt(string(b), 10, bits)
	}
	return int64(v), nil
}

// pow10tab holds the powers of ten exactly representable in float64.
var pow10tab = [...]float64{
	1e0, 1e1, 1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10,
	1e11, 1e12, 1e13, 1e14, 1e15, 1e16, 1e17, 1e18, 1e19, 1e20, 1e21, 1e22,
}

// mantCutoff is the largest mantissa accumulator value that can take
// one more decimal digit and stay exactly representable in float64.
const mantCutoff = (1<<53 - 9) / 10

// floatFromDecimal converts a scanned decimal (mant · 10^exp, exp in
// [-22, 0], mant < 2^53) to float64. This is the classic
// exact-arithmetic shortcut: both operands are exactly representable,
// so the single division rounds once and the result is identical to
// strconv's correctly-rounded parse.
func floatFromDecimal(mant uint64, exp int, neg bool) float64 {
	f := float64(mant)
	if exp < 0 {
		f /= pow10tab[-exp]
	}
	if neg {
		f = -f
	}
	return f
}

// parseFloatBytes is strconv.ParseFloat(string(b), 64) without the
// string conversion for plain decimal forms. Anything outside the
// exact fast path (exponent notation, hex floats, Inf/NaN, huge
// mantissas, deep fractions, malformed input) falls back to strconv.
func parseFloatBytes(b []byte) (float64, error) {
	s := b
	neg := false
	if len(s) > 0 && (s[0] == '-' || s[0] == '+') {
		neg = s[0] == '-'
		s = s[1:]
	}
	var (
		mant   uint64
		exp    int
		digits int
	)
	i := 0
	for ; i < len(s); i++ {
		d := uint64(s[i] - '0')
		if d > 9 {
			break
		}
		if mant >= mantCutoff {
			return fallbackFloat(b)
		}
		mant = mant*10 + d
		digits++
	}
	if i < len(s) && s[i] == '.' {
		for i++; i < len(s); i++ {
			d := uint64(s[i] - '0')
			if d > 9 {
				break
			}
			if mant >= mantCutoff {
				return fallbackFloat(b)
			}
			mant = mant*10 + d
			digits++
			exp--
		}
	}
	if i != len(s) || digits == 0 || exp < -22 {
		return fallbackFloat(b)
	}
	return floatFromDecimal(mant, exp, neg), nil
}

func fallbackFloat(b []byte) (float64, error) {
	return strconv.ParseFloat(string(b), 64)
}

// parseOpBytes is ParseOp without the string conversion: the
// single-letter spellings and the word spellings the MSRC corpus uses
// are matched on bytes; anything else falls back for the canonical
// error.
func parseOpBytes(b []byte) (Op, error) {
	switch len(b) {
	case 1:
		switch b[0] {
		case 'R', 'r', '0':
			return Read, nil
		case 'W', 'w', '1':
			return Write, nil
		}
	case 4:
		if string(b) == "Read" || string(b) == "READ" || string(b) == "read" {
			return Read, nil
		}
	case 5:
		if string(b) == "Write" || string(b) == "WRITE" || string(b) == "write" {
			return Write, nil
		}
	}
	return ParseOp(string(b))
}

// appendOp renders an Op exactly like fmt's %s of Op.String().
func appendOp(b []byte, o Op) []byte {
	switch o {
	case Read:
		return append(b, 'R')
	case Write:
		return append(b, 'W')
	}
	b = append(b, "Op("...)
	b = strconv.AppendUint(b, uint64(o), 10)
	return append(b, ')')
}

// appendPadded right-aligns num in a field of the given width, padding
// with spaces — fmt's %*d / %*f padding for the blktrace layout.
func appendPadded(b, num []byte, width int) []byte {
	for i := len(num); i < width; i++ {
		b = append(b, ' ')
	}
	return append(b, num...)
}
