package trace

// Multi-core decode: ParallelDecoder fans the record-aligned segments
// of a file (segment.go) out to worker goroutines and merges their
// decoded batches back in input order, so the request sequence (and
// any parse error position) is exactly the sequential Decoder's.
// StreamParallelDecoder does the same for non-seekable inputs by
// double-buffering large blocks: a coordinator goroutine reads block
// k+1 while workers decode the record-aligned sub-segments of block k.
//
// Both decoders recycle their request batches through a bounded free
// list (the engine bufPool discipline), so steady-state parallel
// decoding stays at ~0 allocations per record. In-flight work is
// bounded — segments ahead of the merge point by a token pool, blocks
// by the double buffer — so memory stays O(workers), not O(input).
//
// Consumers must call Close when abandoning a decoder before EOF or a
// terminal error; after either, the goroutines have already drained.

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
)

const (
	// ParallelMinBytes is the input size below which parallel decoding
	// is not worth the goroutine fan-out; helpers fall back to the
	// sequential decoder under it.
	ParallelMinBytes = 1 << 20
	// parBatchLen is the request-batch unit workers hand to the merger.
	parBatchLen = 1024
	// segRingDepth is how many decoded batches one segment may buffer
	// ahead of the merge point.
	segRingDepth = 4
	// minSegmentBytes bounds how small a planned segment may be: tiny
	// segments pay decoder-construction overhead for no parallelism
	// win.
	minSegmentBytes = 256 << 10
	// subSegmentMinBytes is the in-memory sub-segment floor of the
	// stream path (cheaper constructors than file segments, so finer
	// grain pays off).
	subSegmentMinBytes = 128 << 10
	// maxSegments caps a split so a pathological request cannot plan
	// unbounded bookkeeping.
	maxSegments = 1024
	// streamBlockLen is the block size of the double-buffered stream
	// path. It must exceed maxLineLen so a carried partial line always
	// leaves read room in the next block.
	streamBlockLen = 4 << 20
	// streamReadChunk bounds one source read of the stream coordinator:
	// between chunks it checks for shutdown, so Close never waits for a
	// stalled source to produce a whole block — at most one chunk.
	streamReadChunk = 256 << 10
)

// errParallelStopped is the coordinator's internal signal that
// shutdown interrupted a block read; it never reaches consumers.
var errParallelStopped = errors.New("trace: parallel decode stopped")

// parBatch is one message in flight from a worker to the merger: a
// decoded batch (reqs non-nil), a terminal parse error, or — with both
// nil — a line-count marker: the segment finished cleanly after
// consuming that many input lines. The merger accumulates markers in
// segment order into its line base, which is how a parse error in a
// later segment reports the same absolute line number the sequential
// decoder would.
type parBatch struct {
	reqs  []Request
	err   error
	lines int
}

// parMerge is the consumer-side cursor both parallel decoders share:
// it owns the current batch, the read position within it, and the
// terminal error, recycles spent batches into the free list, and
// provides the whole Next/DecodeBatch/ReadBatch surface on top of one
// decoder-specific fetch.
type parMerge struct {
	free  reqFreeList
	fetch func() ([]Request, error) // next in-order batch, or terminal error
	abort func()                    // stop the producers after a terminal condition

	cur []Request
	pos int
	err error
}

// advance recycles the spent batch and pulls the next one, latching
// EOF or the first in-order error as terminal.
func (m *parMerge) advance() ([]Request, error) {
	if m.err != nil {
		return nil, m.err
	}
	if m.cur != nil {
		m.free.put(m.cur)
		m.cur = nil
	}
	b, err := m.fetch()
	if err != nil {
		m.err = err
		m.abort()
		return nil, err
	}
	m.cur, m.pos = b, 0
	return b, nil
}

// Next implements Decoder.
func (m *parMerge) Next() (Request, error) {
	for m.pos >= len(m.cur) {
		if _, err := m.advance(); err != nil {
			return Request{}, err
		}
	}
	r := m.cur[m.pos]
	m.pos++
	return r, nil
}

// DecodeBatch implements BatchDecoder.
func (m *parMerge) DecodeBatch(dst []Request) (int, error) {
	n := 0
	for n < len(dst) {
		if m.pos < len(m.cur) {
			k := copy(dst[n:], m.cur[m.pos:])
			m.pos += k
			n += k
			continue
		}
		if _, err := m.advance(); err != nil {
			return n, err
		}
	}
	return n, nil
}

// ReadBatch implements BatchReader.
func (m *parMerge) ReadBatch() ([]Request, error) {
	if m.pos < len(m.cur) {
		b := m.cur[m.pos:]
		m.pos = len(m.cur)
		return b, nil
	}
	b, err := m.advance()
	if err != nil {
		return nil, err
	}
	m.pos = len(b)
	return b, nil
}

// pumpBatches decodes dec to exhaustion, streaming non-empty batches
// (and the terminal parse error, if any) into ch, which it always
// closes. Text decoders additionally get a final line-count marker so
// the merger can keep absolute line positions. It reports false when
// cut short by stop or by an error.
func pumpBatches(dec Decoder, ch chan<- parBatch, free reqFreeList, stop <-chan struct{}) bool {
	defer close(ch)
	for {
		buf := free.get()
		n, err := DecodeBatch(dec, buf)
		if n > 0 {
			select {
			case ch <- parBatch{reqs: buf[:n]}:
			case <-stop:
				return false
			}
		} else {
			free.put(buf)
		}
		if err == io.EOF {
			if lc, ok := dec.(lineCounter); ok {
				select {
				case ch <- parBatch{lines: lc.lines()}:
				case <-stop:
					return false
				}
			}
			return true
		}
		if err != nil {
			select {
			case ch <- parBatch{err: err}:
			case <-stop:
			}
			return false
		}
	}
}

// reqFreeList recycles request batches between the merger (which
// finishes with them) and the decode workers (which fill new ones).
type reqFreeList chan []Request

func (f reqFreeList) get() []Request {
	select {
	case b := <-f:
		return b
	default:
		return make([]Request, parBatchLen)
	}
}

func (f reqFreeList) put(b []Request) {
	if cap(b) < parBatchLen {
		return
	}
	select {
	case f <- b[:parBatchLen]:
	default:
	}
}

// --- file-backed parallel decoding ---

// ParallelDecoder decodes an io.ReaderAt-addressable input on worker
// goroutines, one record-aligned segment at a time, merging batches
// back in input order. It implements Decoder, BatchDecoder,
// BatchReader and SizeHinter; output is identical to the sequential
// decoder for every input, and parse errors surface at the same
// record position with the same message — text line numbers included,
// via the merger's per-segment line accounting.
type ParallelDecoder struct {
	parMerge

	ra      io.ReaderAt
	plan    *segmentPlan
	planErr error

	chans    []chan parBatch
	tokens   chan struct{}
	claim    atomic.Int64
	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	// seg is the merge cursor's next segment, and lineBase the input
	// lines consumed before it — prelude plus the drained segments'
	// line-count markers (single consumer).
	seg      int
	lineBase int
}

// NewParallelDecoder plans and starts a parallel decode of
// input[0:size) in the named format on the given number of workers
// (minimum 1). Planning errors (unknown format, broken header)
// surface on the first Next/ReadBatch call, matching the sequential
// constructors.
func NewParallelDecoder(ra io.ReaderAt, size int64, format string, workers int) *ParallelDecoder {
	if workers < 1 {
		workers = 1
	}
	d := &ParallelDecoder{ra: ra, stop: make(chan struct{})}
	d.parMerge = parMerge{fetch: d.fetchBatch, abort: d.shutdown}
	d.plan, d.planErr = splitSegments(ra, size, format, workers)
	if d.planErr != nil || len(d.plan.segs) == 0 {
		return d
	}
	d.lineBase = d.plan.preludeLines
	nseg := len(d.plan.segs)
	// In-flight segments are bounded by tokens: a worker takes one per
	// segment claim, the merger returns one per segment drained, so
	// workers can run at most inflight segments past the merge point.
	inflight := workers + 2
	if inflight > nseg {
		inflight = nseg
	}
	d.chans = make([]chan parBatch, nseg)
	for i := range d.chans {
		d.chans[i] = make(chan parBatch, segRingDepth)
	}
	d.tokens = make(chan struct{}, inflight+workers)
	for i := 0; i < inflight; i++ {
		d.tokens <- struct{}{}
	}
	d.free = make(reqFreeList, inflight*segRingDepth+workers)
	n := workers
	if n > nseg {
		n = nseg
	}
	d.wg.Add(n)
	for i := 0; i < n; i++ {
		go d.worker()
	}
	return d
}

func (d *ParallelDecoder) worker() {
	defer d.wg.Done()
	for {
		select {
		case <-d.stop:
			return
		case <-d.tokens:
		}
		i := int(d.claim.Add(1)) - 1
		if i >= len(d.plan.segs) {
			return
		}
		if !d.runSegment(i) {
			return
		}
	}
}

// runSegment decodes segment i and streams its batches to the merger.
// It reports false when the run was cut short (stop, or a parse error
// that ends the whole stream anyway).
func (d *ParallelDecoder) runSegment(i int) bool {
	s := d.plan.segs[i]
	dec := newSegmentDecoder(io.NewSectionReader(d.ra, s.start, s.end-s.start), d.plan.format, s.ctx)
	return pumpBatches(dec, d.chans[i], d.free, d.stop)
}

// fetchBatch is the merge cursor's fetch: the next in-order batch
// across the segment rings, releasing a claim token per drained
// segment and folding line-count markers into the running base so
// errors surface with absolute line positions.
func (d *ParallelDecoder) fetchBatch() ([]Request, error) {
	if d.planErr != nil {
		return nil, d.planErr
	}
	for d.seg < len(d.chans) {
		b, ok := <-d.chans[d.seg]
		if !ok {
			d.seg++
			select {
			case d.tokens <- struct{}{}:
			default:
			}
			continue
		}
		if b.err != nil {
			return nil, shiftLine(b.err, d.lineBase)
		}
		if b.reqs == nil {
			d.lineBase += b.lines
			continue
		}
		return b.reqs, nil
	}
	return nil, io.EOF
}

// Meta implements Decoder. The split parses headers up front, so Meta
// is complete from construction.
func (d *ParallelDecoder) Meta() Meta {
	if d.plan == nil {
		return Meta{}
	}
	return d.plan.meta
}

// SizeHint implements SizeHinter (counted binary inputs).
func (d *ParallelDecoder) SizeHint() int {
	if d.plan == nil {
		return 0
	}
	return d.plan.sizeHint
}

func (d *ParallelDecoder) shutdown() {
	d.stopOnce.Do(func() { close(d.stop) })
}

// Close stops the decode workers and waits for them to exit. It is
// idempotent and required when the consumer abandons the stream before
// EOF or a terminal error; afterwards it is a cheap no-op join.
func (d *ParallelDecoder) Close() {
	d.shutdown()
	d.wg.Wait()
}

// --- streamed parallel decoding ---

// streamTask is one in-memory sub-segment of a block, handed to a
// decode worker.
type streamTask struct {
	data []byte
	ctx  segCtx
	ch   chan parBatch
	done *sync.WaitGroup
}

// StreamParallelDecoder decodes a non-seekable stream on worker
// goroutines: a coordinator reads large blocks, cuts them at record
// boundaries, and hands record-aligned sub-segments to the workers
// while the next block is read into the other half of a double buffer.
// Output order and content are identical to the sequential decoder.
//
// Because the coordinator owns every read of the underlying reader,
// side effects attached to it (an ingest tee that hashes and spools
// the bytes) are pipelined with the parallel parse. Once the consumer
// has seen EOF, or Close has returned, no further reads of the
// underlying reader happen, so the caller may resume using it (e.g.
// to drain trailing bytes). After a mid-stream decode error the
// coordinator may still be inside one bounded chunk read — call Close
// (it waits that read out, and at most that read) before touching the
// reader again.
type StreamParallelDecoder struct {
	parMerge

	r       io.Reader
	format  string
	workers int

	tasks    chan streamTask
	order    chan chan parBatch
	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	metaMu sync.Mutex
	meta   Meta
	hint   int

	// curCh is the merge cursor's current sub-segment ring, and
	// lineBase the input lines consumed before it — the coordinator's
	// prelude marker plus the drained sub-segments' markers (single
	// consumer).
	curCh    chan parBatch
	lineBase int
}

// NewStreamParallelDecoder starts a parallel decode of r in the named
// format on the given number of workers (minimum 1).
func NewStreamParallelDecoder(r io.Reader, format string, workers int) (*StreamParallelDecoder, error) {
	switch format {
	case "csv", "bin", "msrc", "spc":
	default:
		return nil, fmt.Errorf("trace: unknown input format %q", format)
	}
	if workers < 1 {
		workers = 1
	}
	d := &StreamParallelDecoder{
		r:       r,
		format:  format,
		workers: workers,
		tasks:   make(chan streamTask, workers*2),
		order:   make(chan chan parBatch, workers*4+4),
		stop:    make(chan struct{}),
		meta:    initialMeta(format),
	}
	d.parMerge = parMerge{
		free:  make(reqFreeList, workers*segRingDepth*2+4),
		fetch: d.fetchBatch,
		abort: d.shutdown,
	}
	d.wg.Add(workers + 1)
	for i := 0; i < workers; i++ {
		go d.worker()
	}
	go d.coordinate()
	return d, nil
}

func (d *StreamParallelDecoder) worker() {
	defer d.wg.Done()
	for t := range d.tasks {
		d.runTask(t)
	}
}

func (d *StreamParallelDecoder) runTask(t streamTask) {
	defer t.done.Done()
	select {
	case <-d.stop:
		close(t.ch)
		return
	default:
	}
	pumpBatches(newSegmentDecoder(bytes.NewReader(t.data), d.format, t.ctx), t.ch, d.free, d.stop)
}

// setMeta publishes stream metadata established by the coordinator.
func (d *StreamParallelDecoder) setMeta(m Meta, hint int) {
	d.metaMu.Lock()
	d.meta, d.hint = m, hint
	d.metaMu.Unlock()
}

// emitError appends a terminal error to the ordered output, after all
// previously dispatched sub-segments.
func (d *StreamParallelDecoder) emitError(err error) {
	ch := make(chan parBatch, 1)
	ch <- parBatch{err: err}
	close(ch)
	select {
	case d.order <- ch:
	case <-d.stop:
	}
}

// emitLines threads a line-count marker into the ordered output — the
// coordinator's accounting for prelude lines it consumed itself.
// Returns false when the decoder is stopping.
func (d *StreamParallelDecoder) emitLines(n int) bool {
	if n == 0 {
		return true
	}
	ch := make(chan parBatch, 1)
	ch <- parBatch{lines: n}
	close(ch)
	select {
	case d.order <- ch:
		return true
	case <-d.stop:
		return false
	}
}

// dispatch hands one record-aligned sub-segment to the worker pool and
// threads its channel into the ordered output. Returns false when the
// decoder is stopping.
func (d *StreamParallelDecoder) dispatch(data []byte, ctx segCtx, done *sync.WaitGroup) bool {
	ch := make(chan parBatch, segRingDepth)
	done.Add(1)
	select {
	case d.tasks <- streamTask{data: data, ctx: ctx, ch: ch, done: done}:
	case <-d.stop:
		done.Done()
		return false
	}
	select {
	case d.order <- ch:
		return true
	case <-d.stop:
		return false
	}
}

// dispatchText fans the line-aligned region recs out as up to workers
// sub-segments cut at line boundaries.
func (d *StreamParallelDecoder) dispatchText(recs []byte, ctx segCtx, wg *sync.WaitGroup) bool {
	if len(recs) == 0 {
		return true
	}
	k := len(recs) / subSegmentMinBytes
	if k < 1 {
		k = 1
	}
	if k > d.workers {
		k = d.workers
	}
	per := len(recs) / k
	lo := 0
	for i := 1; i <= k && lo < len(recs); i++ {
		hi := len(recs)
		if i < k {
			nominal := i * per
			if nominal <= lo {
				continue
			}
			j := bytes.IndexByte(recs[nominal:], '\n')
			if j >= 0 {
				hi = nominal + j + 1
			}
		}
		if !d.dispatch(recs[lo:hi], ctx, wg) {
			return false
		}
		lo = hi
	}
	return true
}

// dispatchBin fans a stride-aligned record region out as up to workers
// sub-segments, each carrying its global start index and record count.
func (d *StreamParallelDecoder) dispatchBin(recData []byte, meta Meta, startIdx uint64, wg *sync.WaitGroup) bool {
	recs := uint64(len(recData) / binRecordLen)
	if recs == 0 {
		return true
	}
	k := len(recData) / subSegmentMinBytes
	if k < 1 {
		k = 1
	}
	if k > d.workers {
		k = d.workers
	}
	if uint64(k) > recs {
		k = int(recs)
	}
	per := recs / uint64(k)
	var assigned uint64
	for i := 1; i <= k; i++ {
		cnt := per
		if i == k {
			cnt = recs - assigned
		}
		if cnt == 0 {
			continue
		}
		lo := assigned * binRecordLen
		hi := (assigned + cnt) * binRecordLen
		ctx := segCtx{meta: meta, binCounted: true, binRemaining: cnt, binStart: startIdx + assigned}
		if !d.dispatch(recData[lo:hi], ctx, wg) {
			return false
		}
		assigned += cnt
	}
	return true
}

// coordinate is the reader goroutine: it owns every read of d.r,
// handles the header/prelude, cuts blocks at record boundaries, and
// fans sub-segments out to the workers.
func (d *StreamParallelDecoder) coordinate() {
	defer d.wg.Done()
	defer close(d.tasks)
	defer close(d.order)
	if d.format == "bin" {
		d.coordinateBin()
	} else {
		d.coordinateText()
	}
}

// blockBuffers is the double buffer of the stream coordinator: a block
// half may be refilled only once the sub-segments previously carved
// from it are fully decoded, while the other half's tasks keep
// running.
type blockBuffers struct {
	bufs  [2][]byte
	wgs   [2]sync.WaitGroup
	which int
}

// next returns the buffer half to fill and its task group, waiting out
// the half's previous tasks.
func (b *blockBuffers) next() ([]byte, *sync.WaitGroup) {
	b.which ^= 1
	b.wgs[b.which].Wait()
	if b.bufs[b.which] == nil {
		b.bufs[b.which] = make([]byte, streamBlockLen)
	}
	return b.bufs[b.which], &b.wgs[b.which]
}

// readBlock fills buf after the carried prefix, reading in bounded
// chunks with a shutdown check between them — so Close waits for at
// most one chunk-sized read on a stalled source, not a whole block.
// eof reports that the stream ended inside (or exactly at) this
// block; errParallelStopped reports shutdown.
func (d *StreamParallelDecoder) readBlock(buf, carry []byte) (data []byte, eof bool, err error) {
	filled := copy(buf, carry)
	for filled < len(buf) {
		select {
		case <-d.stop:
			return nil, false, errParallelStopped
		default:
		}
		limit := filled + streamReadChunk
		if limit > len(buf) {
			limit = len(buf)
		}
		n, rerr := d.r.Read(buf[filled:limit])
		filled += n
		if rerr == io.EOF {
			return buf[:filled], true, nil
		}
		if rerr != nil {
			return nil, false, rerr
		}
	}
	return buf, false, nil
}

func (d *StreamParallelDecoder) coordinateText() {
	var (
		blocks blockBuffers
		carry  []byte
	)
	pre := preludeState{format: d.format, ctx: segCtx{meta: initialMeta(d.format), sawData: true}}
	for {
		select {
		case <-d.stop:
			return
		default:
		}
		buf, wg := blocks.next()
		data, eof, err := d.readBlock(buf, carry)
		carry = nil
		if err != nil {
			if err != errParallelStopped {
				d.emitError(err)
			}
			return
		}
		if !pre.done {
			rest, perr := pre.advance(data, eof)
			if perr != nil {
				d.emitError(perr)
				return
			}
			d.setMeta(pre.ctx.meta, 0)
			data = rest
			if !pre.done {
				// Still inside the prelude: rest is at most one
				// incomplete comment line.
				if len(data) > maxLineLen {
					d.emitError(fmt.Errorf("trace: line longer than %d bytes", maxLineLen))
					return
				}
				if eof {
					return
				}
				carry = data
				continue
			}
			// Prelude complete: account its lines (the first data line
			// belongs to the dispatched region) before any sub-segment
			// enters the order.
			if !d.emitLines(pre.lineno - 1) {
				return
			}
		}
		recs := data
		if !eof {
			cut := bytes.LastIndexByte(data, '\n')
			if cut < 0 {
				if len(data) > maxLineLen {
					d.emitError(fmt.Errorf("trace: line longer than %d bytes", maxLineLen))
					return
				}
				carry = data
				continue
			}
			recs, carry = data[:cut+1], data[cut+1:]
			if len(carry) > maxLineLen {
				d.emitError(fmt.Errorf("trace: line longer than %d bytes", maxLineLen))
				return
			}
		}
		if !d.dispatchText(recs, pre.ctx, wg) {
			return
		}
		if eof {
			return
		}
	}
}

func (d *StreamParallelDecoder) coordinateBin() {
	meta, counted, count, err := parseBinHeader(d.r)
	if err != nil {
		if err == io.EOF {
			err = fmt.Errorf("trace: truncated binary header: %w", io.ErrUnexpectedEOF)
		}
		d.emitError(err)
		return
	}
	hint := 0
	if counted {
		hint = int(count)
	}
	d.setMeta(meta, hint)
	if counted && count == 0 {
		return
	}
	var (
		blocks    blockBuffers
		carry     []byte
		idx       uint64
		remaining = count
	)
	for {
		select {
		case <-d.stop:
			return
		default:
		}
		buf, wg := blocks.next()
		data, eof, err := d.readBlock(buf, carry)
		carry = nil
		if err != nil {
			if err != errParallelStopped {
				d.emitError(err)
			}
			return
		}
		usable := len(data)
		if counted {
			if max := remaining * binRecordLen; uint64(usable) > max {
				usable = int(max)
			}
		}
		full := usable - usable%binRecordLen
		recs := uint64(full / binRecordLen)
		if !d.dispatchBin(data[:full], meta, idx, wg) {
			return
		}
		idx += recs
		if counted {
			remaining -= recs
			if remaining == 0 {
				// Count satisfied: trailing bytes are ignored, exactly
				// like the sequential decoder, and reading stops here.
				return
			}
		}
		if eof {
			// The stream ended short of the count, or an uncounted
			// stream ended inside a record: hand the partial tail to a
			// decoder whose preset state reproduces the sequential
			// truncation error at the same record index. A clean
			// uncounted end (no tail) just finishes.
			tail := data[full:]
			if counted {
				ctx := segCtx{meta: meta, binCounted: true, binRemaining: remaining, binStart: idx}
				d.dispatch(tail, ctx, wg)
			} else if len(tail) > 0 {
				ctx := segCtx{meta: meta, binStart: idx}
				d.dispatch(tail, ctx, wg)
			}
			return
		}
		carry = data[full:]
	}
}

// fetchBatch is the merge cursor's fetch: the next in-order batch
// across the coordinator-ordered sub-segment rings, folding line-count
// markers into the running base so errors surface with absolute line
// positions.
func (d *StreamParallelDecoder) fetchBatch() ([]Request, error) {
	for {
		if d.curCh == nil {
			ch, ok := <-d.order
			if !ok {
				return nil, io.EOF
			}
			d.curCh = ch
		}
		b, ok := <-d.curCh
		if !ok {
			d.curCh = nil
			continue
		}
		if b.err != nil {
			return nil, shiftLine(b.err, d.lineBase)
		}
		if b.reqs == nil {
			d.lineBase += b.lines
			continue
		}
		return b.reqs, nil
	}
}

// Meta implements Decoder: complete after the prelude/header has been
// coordinated, which is guaranteed once the consumer has observed a
// request or EOF.
func (d *StreamParallelDecoder) Meta() Meta {
	d.metaMu.Lock()
	defer d.metaMu.Unlock()
	return d.meta
}

// SizeHint implements SizeHinter (counted binary inputs; 0 until the
// header has been read).
func (d *StreamParallelDecoder) SizeHint() int {
	d.metaMu.Lock()
	defer d.metaMu.Unlock()
	return d.hint
}

func (d *StreamParallelDecoder) shutdown() {
	d.stopOnce.Do(func() { close(d.stop) })
}

// Close stops the coordinator and workers and waits for them to exit.
// Idempotent; required when abandoning the stream early. After Close
// returns, the underlying reader is no longer touched.
func (d *StreamParallelDecoder) Close() {
	d.shutdown()
	d.wg.Wait()
}

// --- construction helpers ---

// OpenFileDecoder opens path and builds the fastest decoder for it:
// the segmented parallel decoder when workers > 1 and the file is
// large enough to split profitably, the sequential decoder otherwise.
// format "auto" (or "") is resolved by content sniffing; the concrete
// format is returned. The returned close function stops any decode
// workers and closes the file.
func OpenFileDecoder(path, format string, workers int) (Decoder, string, func(), error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, "", nil, err
	}
	if format == "auto" || format == "" {
		if format, err = DetectFile(path); err != nil {
			f.Close()
			return nil, "", nil, err
		}
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, "", nil, err
	}
	if workers > 1 && st.Mode().IsRegular() && st.Size() >= ParallelMinBytes {
		pd := NewParallelDecoder(f, st.Size(), format, workers)
		return pd, format, func() { pd.Close(); f.Close() }, nil
	}
	dec, err := NewDecoder(format, f)
	if err != nil {
		f.Close()
		return nil, "", nil, err
	}
	return dec, format, func() { f.Close() }, nil
}
