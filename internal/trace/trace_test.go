package trace

import (
	"testing"
	"time"
)

func mkTrace(arrivalsUS ...float64) *Trace {
	t := &Trace{Name: "t", Workload: "w", Set: "s"}
	lba := uint64(0)
	for _, us := range arrivalsUS {
		t.Requests = append(t.Requests, Request{
			Arrival: time.Duration(us * float64(time.Microsecond)),
			LBA:     lba,
			Sectors: 8,
			Op:      Read,
		})
		lba += 1000 // random pattern
	}
	return t
}

func TestOpString(t *testing.T) {
	if Read.String() != "R" || Write.String() != "W" {
		t.Fatal("Op.String broken")
	}
	if Op(9).String() == "" {
		t.Fatal("unknown op should stringify")
	}
}

func TestParseOp(t *testing.T) {
	for _, s := range []string{"R", "r", "Read", "READ", "read", "0"} {
		if op, err := ParseOp(s); err != nil || op != Read {
			t.Fatalf("ParseOp(%q) = %v, %v", s, op, err)
		}
	}
	for _, s := range []string{"W", "w", "Write", "WRITE", "write", "1"} {
		if op, err := ParseOp(s); err != nil || op != Write {
			t.Fatalf("ParseOp(%q) = %v, %v", s, op, err)
		}
	}
	if _, err := ParseOp("X"); err == nil {
		t.Fatal("want error for unknown op")
	}
}

func TestRequestBytesEnd(t *testing.T) {
	r := Request{LBA: 100, Sectors: 8}
	if r.Bytes() != 4096 {
		t.Fatalf("Bytes = %d", r.Bytes())
	}
	if r.End() != 108 {
		t.Fatalf("End = %d", r.End())
	}
}

func TestValidate(t *testing.T) {
	if err := (&Trace{}).Validate(); err != ErrNoRequest {
		t.Fatalf("empty: %v", err)
	}
	tr := mkTrace(0, 10, 20)
	if err := tr.Validate(); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
	tr.Requests[1].Sectors = 0
	if err := tr.Validate(); err == nil {
		t.Fatal("zero sectors accepted")
	}
	tr = mkTrace(0, 20, 10)
	if err := tr.Validate(); err == nil {
		t.Fatal("unsorted accepted")
	}
}

func TestSortStable(t *testing.T) {
	tr := &Trace{Requests: []Request{
		{Arrival: 20, LBA: 1, Sectors: 1},
		{Arrival: 10, LBA: 2, Sectors: 1},
		{Arrival: 10, LBA: 3, Sectors: 1},
	}}
	tr.Sort()
	if tr.Requests[0].LBA != 2 || tr.Requests[1].LBA != 3 || tr.Requests[2].LBA != 1 {
		t.Fatalf("sort order wrong: %+v", tr.Requests)
	}
}

func TestCloneIsDeep(t *testing.T) {
	tr := mkTrace(0, 10)
	c := tr.Clone()
	c.Requests[0].LBA = 999999
	if tr.Requests[0].LBA == 999999 {
		t.Fatal("Clone shares request slice")
	}
}

func TestDurationAndInterArrivals(t *testing.T) {
	tr := mkTrace(0, 100, 250)
	if tr.Duration() != 250*time.Microsecond {
		t.Fatalf("Duration = %v", tr.Duration())
	}
	ia := tr.InterArrivals()
	if len(ia) != 2 || ia[0] != 100*time.Microsecond || ia[1] != 150*time.Microsecond {
		t.Fatalf("InterArrivals = %v", ia)
	}
	us := tr.InterArrivalMicros()
	if us[0] != 100 || us[1] != 150 {
		t.Fatalf("InterArrivalMicros = %v", us)
	}
	if mkTrace(5).Duration() != 0 || mkTrace(5).InterArrivals() != nil {
		t.Fatal("single-request trace should have zero duration, nil IA")
	}
}

func TestTotalsAndFractions(t *testing.T) {
	tr := &Trace{Requests: []Request{
		{Arrival: 0, LBA: 0, Sectors: 8, Op: Read},
		{Arrival: 1, LBA: 8, Sectors: 8, Op: Write},    // sequential
		{Arrival: 2, LBA: 999, Sectors: 16, Op: Read},  // random
		{Arrival: 3, LBA: 1015, Sectors: 16, Op: Read}, // sequential
	}}
	if tr.TotalBytes() != int64(48*512) {
		t.Fatalf("TotalBytes = %d", tr.TotalBytes())
	}
	if got := tr.AvgRequestBytes(); got != float64(48*512)/4 {
		t.Fatalf("AvgRequestBytes = %v", got)
	}
	if got := tr.ReadFraction(); got != 0.75 {
		t.Fatalf("ReadFraction = %v", got)
	}
	flags := tr.SeqFlags()
	want := []bool{false, true, false, true}
	for i := range want {
		if flags[i] != want[i] {
			t.Fatalf("SeqFlags = %v, want %v", flags, want)
		}
	}
	if got := tr.SeqFraction(); got != 0.5 {
		t.Fatalf("SeqFraction = %v", got)
	}
}

func TestSeqFlagsPerDevice(t *testing.T) {
	tr := &Trace{Requests: []Request{
		{Arrival: 0, Device: 0, LBA: 0, Sectors: 8},
		{Arrival: 1, Device: 1, LBA: 8, Sectors: 8},  // different device: random
		{Arrival: 2, Device: 0, LBA: 8, Sectors: 8},  // continues dev0: sequential
		{Arrival: 3, Device: 1, LBA: 16, Sectors: 8}, // continues dev1: sequential
	}}
	flags := tr.SeqFlags()
	want := []bool{false, false, true, true}
	for i := range want {
		if flags[i] != want[i] {
			t.Fatalf("SeqFlags = %v, want %v", flags, want)
		}
	}
}

func TestSlice(t *testing.T) {
	tr := mkTrace(0, 10, 20, 30)
	s := tr.Slice(1, 3)
	if s.Len() != 2 || s.Requests[0].Arrival != 10*time.Microsecond {
		t.Fatalf("Slice = %+v", s.Requests)
	}
	if s.Name != tr.Name {
		t.Fatal("Slice should carry metadata")
	}
}

func TestEmptyTraceAccessors(t *testing.T) {
	tr := &Trace{}
	if tr.AvgRequestBytes() != 0 || tr.ReadFraction() != 0 || tr.SeqFraction() != 0 {
		t.Fatal("empty trace accessors should be zero")
	}
}
