package trace

// Golden-file locks for the codec layer: the encoders' byte output
// and the decoders' interpretation of committed fixture files must
// never drift. The hand-rolled formatters in stream.go replaced
// fmt-based rendering; these fixtures are the proof the rewrite (and
// any future one) stays byte-identical. Regenerate deliberately with:
//
//	go test ./internal/trace -run TestCodecGolden -update-golden

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite codec golden files")

// goldenTrace covers the field shapes that exercise the formatters:
// both ops, async on and off, zero and sub-microsecond latencies,
// fractional microsecond arrivals, multi-digit devices, huge LBAs,
// and metadata with every field set.
func goldenTrace() *Trace {
	return &Trace{
		Name: "golden-000", Workload: "golden", Set: "FIU", TsdevKnown: true,
		Requests: []Request{
			{Arrival: 0, Device: 0, LBA: 0, Sectors: 1, Op: Read},
			{Arrival: 1500 * time.Nanosecond, Device: 1, LBA: 8, Sectors: 8, Op: Write, Latency: 90 * time.Microsecond, Async: true},
			{Arrival: 2 * time.Millisecond, Device: 10, LBA: 1<<40 + 7, Sectors: 2048, Op: Read, Latency: 333 * time.Nanosecond},
			{Arrival: 2*time.Millisecond + 1, Device: 10, LBA: 1<<40 + 2055, Sectors: 64, Op: Read, Latency: 1250 * time.Microsecond},
			{Arrival: 5 * time.Second, Device: 3, LBA: 4096, Sectors: 16, Op: Write},
		},
	}
}

func goldenPath(name string) string {
	return filepath.Join("testdata", "golden", name)
}

// TestCodecGoldenEncode locks every output format's bytes against the
// committed fixtures.
func TestCodecGoldenEncode(t *testing.T) {
	tr := goldenTrace()
	cases := []struct {
		file   string
		render func() ([]byte, error)
	}{
		{"sample.csv", func() ([]byte, error) {
			var b bytes.Buffer
			err := WriteCSV(&b, tr)
			return b.Bytes(), err
		}},
		{"sample.bin", func() ([]byte, error) {
			var b bytes.Buffer
			err := WriteBinary(&b, tr)
			return b.Bytes(), err
		}},
		{"sample.blktrace", func() ([]byte, error) {
			var b bytes.Buffer
			err := WriteBlktrace(&b, tr)
			return b.Bytes(), err
		}},
		{"sample.fio", func() ([]byte, error) {
			var b bytes.Buffer
			err := WriteFIOLog(&b, tr, "/dev/golden")
			return b.Bytes(), err
		}},
	}
	for _, tc := range cases {
		t.Run(tc.file, func(t *testing.T) {
			got, err := tc.render()
			if err != nil {
				t.Fatal(err)
			}
			path := goldenPath(tc.file)
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o666); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update-golden): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("%s: encoder output diverges from golden file (%d vs %d bytes)", tc.file, len(got), len(want))
			}
		})
	}
}

// TestCodecGoldenDecode locks the decoders' interpretation of the
// committed input-format fixtures: the bytes on disk must round-trip
// to exactly the golden trace.
func TestCodecGoldenDecode(t *testing.T) {
	want := goldenTrace()
	for _, tc := range []struct {
		file, format string
	}{
		{"sample.csv", "csv"},
		{"sample.bin", "bin"},
	} {
		t.Run(tc.file, func(t *testing.T) {
			data, err := os.ReadFile(goldenPath(tc.file))
			if err != nil {
				t.Fatalf("missing golden file (run with -update-golden): %v", err)
			}
			got, err := ReadFormat(tc.format, bytes.NewReader(data))
			if err != nil {
				t.Fatal(err)
			}
			if got.Meta() != want.Meta() {
				t.Fatalf("meta: got %+v want %+v", got.Meta(), want.Meta())
			}
			// CSV stores timestamps at microsecond precision (3 decimal
			// places), so sub-nanosecond drift is impossible but coarser
			// values must match exactly after quantization.
			quant := want.Clone()
			if tc.format == "csv" {
				for i := range quant.Requests {
					quant.Requests[i].Arrival = quantizeCSV(quant.Requests[i].Arrival)
					quant.Requests[i].Latency = quantizeCSV(quant.Requests[i].Latency)
				}
			}
			if !reflect.DeepEqual(got.Requests, quant.Requests) {
				t.Fatalf("decoded requests diverge:\n got %+v\nwant %+v", got.Requests, quant.Requests)
			}
		})
	}
}

// quantizeCSV reproduces the CSV round trip's nanosecond quantization:
// %.3f microseconds parsed back to a Duration.
func quantizeCSV(d time.Duration) time.Duration {
	b := strconv.AppendFloat(nil, micros(d), 'f', 3, 64)
	f, err := parseFloatBytes(b)
	if err != nil {
		panic(err)
	}
	return fromMicros(f)
}
