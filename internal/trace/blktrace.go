package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// The blktrace text format (the output of `blkparse`) is what the
// paper's hardware emulation collects on the target node. This file
// writes and reads the two event classes the reconstruction pipeline
// consumes: D (issue to driver) and C (completion). Each line follows
// blkparse's default layout:
//
//	major,minor cpu seq timestamp pid action rwbs sector + count [info]
//
// e.g.
//
//	8,0    0        1     0.000000000  1234  D   R 383496192 + 64 [fio]
//	8,0    0        2     0.000150000  1234  C   R 383496192 + 64 [0]
//
// Timestamps are seconds with nanosecond fraction, matching blkparse.

// WriteBlktrace renders t as D/C event pairs. Requests without a
// recorded Latency emit only the D event, exactly like a capture that
// missed completions.
func WriteBlktrace(w io.Writer, t *Trace) error {
	return EncodeTrace(NewBlktraceEncoder(w), t)
}

// ReadBlktrace parses D/C event lines back into a trace: each D event
// opens a request, and a later C event with the same (device, LBA,
// sectors, op) closes it, filling Latency. Unmatched completions are
// ignored; unmatched issues stay with zero Latency. Lines that are
// not D or C events (blkparse emits Q/G/I/M and summary lines too)
// are skipped.
func ReadBlktrace(r io.Reader) (*Trace, error) {
	type key struct {
		dev     uint32
		lba     uint64
		sectors uint32
		op      Op
	}
	t := &Trace{}
	open := make(map[key][]int) // FIFO of open request indices
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineno := 0
	for sc.Scan() {
		lineno++
		fields := strings.Fields(sc.Text())
		// minimal D/C line: dev cpu seq ts pid action rwbs sector + count
		if len(fields) < 10 {
			continue
		}
		action := fields[5]
		if action != "D" && action != "C" {
			continue
		}
		devParts := strings.SplitN(fields[0], ",", 2)
		if len(devParts) != 2 {
			continue
		}
		minor, err := strconv.ParseUint(devParts[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("trace: blktrace line %d: device: %w", lineno, err)
		}
		ts, err := strconv.ParseFloat(fields[3], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: blktrace line %d: timestamp: %w", lineno, err)
		}
		op, err := ParseOp(strings.TrimLeft(fields[6], "FSMD")) // rwbs may carry flag prefixes
		if err != nil {
			continue // discard discard/flush records
		}
		lba, err := strconv.ParseUint(fields[7], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: blktrace line %d: sector: %w", lineno, err)
		}
		if fields[8] != "+" {
			continue
		}
		sectors, err := strconv.ParseUint(fields[9], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("trace: blktrace line %d: count: %w", lineno, err)
		}
		k := key{uint32(minor), lba, uint32(sectors), op}
		at := time.Duration(ts * float64(time.Second))
		if action == "D" {
			t.Requests = append(t.Requests, Request{
				Arrival: at,
				Device:  k.dev,
				LBA:     k.lba,
				Sectors: k.sectors,
				Op:      k.op,
			})
			open[k] = append(open[k], len(t.Requests)-1)
		} else {
			q := open[k]
			if len(q) == 0 {
				continue // completion without issue
			}
			idx := q[0]
			open[k] = q[1:]
			if lat := at - t.Requests[idx].Arrival; lat > 0 {
				t.Requests[idx].Latency = lat
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	t.Sort()
	for _, r := range t.Requests {
		if r.Latency > 0 {
			t.TsdevKnown = true
			break
		}
	}
	return t, nil
}
