package trace

// Locks for the parallel decode pipeline: for every input format and
// worker count, both parallel decoders must produce exactly the
// sequential Decoder's request sequence (verified structurally and by
// re-encoding both sides to identical bytes), stop at the same record
// on malformed inputs, and stay allocation-free per record in steady
// state.

import (
	"bytes"
	"fmt"
	"io"
	"runtime"
	"strings"
	"testing"
	"time"
)

// parVariant is one input fixture the identity tests decode both ways.
type parVariant struct {
	name   string
	format string
	data   []byte
}

// parVariants renders the fixture matrix: every format, plus layout
// hazards (metadata header, comment runs mid-file, CRLF line endings,
// blank lines, uncounted binary streams).
func parVariants(t testing.TB, n int) []parVariant {
	t.Helper()
	tr := benchTrace(n)
	var out []parVariant
	render := func(name, format string, enc func(io.Writer, *Trace) error) []byte {
		var buf bytes.Buffer
		if err := enc(&buf, tr); err != nil {
			t.Fatal(err)
		}
		out = append(out, parVariant{name: name, format: format, data: buf.Bytes()})
		return buf.Bytes()
	}
	csvData := render("csv/plain", "csv", WriteCSV)
	render("bin/counted", "bin", WriteBinary)
	render("msrc/plain", "msrc", writeMSRCStyle)
	render("spc/plain", "spc", writeSPCStyle)

	// Uncounted binary stream (streaming-encoder form).
	var ubin bytes.Buffer
	enc := NewBinaryEncoder(&ubin)
	if err := EncodeTrace(enc, tr); err != nil {
		t.Fatal(err)
	}
	out = append(out, parVariant{name: "bin/uncounted", format: "bin", data: ubin.Bytes()})

	// CSV with comment runs, blank lines and CRLF endings sprinkled
	// through the data region.
	lines := strings.Split(strings.TrimSuffix(string(csvData), "\n"), "\n")
	var hazard strings.Builder
	for i, ln := range lines {
		switch {
		case i > 0 && i%997 == 0:
			hazard.WriteString("# mid-file comment run\n# another comment\n\n")
		case i > 0 && i%411 == 0:
			hazard.WriteString(ln)
			hazard.WriteString("\r\n")
			continue
		}
		hazard.WriteString(ln)
		hazard.WriteString("\n")
	}
	out = append(out, parVariant{name: "csv/hazards", format: "csv", data: []byte(hazard.String())})

	// MSRC with a leading comment/blank prelude.
	var mbuf bytes.Buffer
	mbuf.WriteString("# event trace export\n\n# columns: ts,host,disk,op,off,size,resp\n")
	if err := writeMSRCStyle(&mbuf, tr); err != nil {
		t.Fatal(err)
	}
	out = append(out, parVariant{name: "msrc/prelude", format: "msrc", data: mbuf.Bytes()})
	return out
}

// collectSeq drains dec via Next, returning the requests before the
// terminal condition and the terminal error (nil for clean EOF).
func collectSeq(dec Decoder) ([]Request, Meta, error) {
	var out []Request
	for {
		r, err := dec.Next()
		if err == io.EOF {
			return out, dec.Meta(), nil
		}
		if err != nil {
			return out, dec.Meta(), err
		}
		out = append(out, r)
	}
}

// encodeCSVBytes renders a request slice under meta for byte-level
// comparison.
func encodeCSVBytes(t testing.TB, m Meta, reqs []Request) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := NewCSVEncoder(&buf)
	if err := enc.Begin(m); err != nil {
		t.Fatal(err)
	}
	for _, r := range reqs {
		if err := enc.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := enc.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestParallelDecodeByteIdentical is the acceptance lock: both
// parallel decoders, at workers 1/4/8, reproduce the sequential
// decoder byte-for-byte on every format.
func TestParallelDecodeByteIdentical(t *testing.T) {
	for _, v := range parVariants(t, 30_000) {
		seq, err := NewDecoder(v.format, bytes.NewReader(v.data))
		if err != nil {
			t.Fatal(err)
		}
		wantReqs, wantMeta, wantErr := collectSeq(seq)
		if wantErr != nil {
			t.Fatalf("%s: sequential decode failed: %v", v.name, wantErr)
		}
		want := encodeCSVBytes(t, wantMeta, wantReqs)
		for _, workers := range []int{1, 4, 8} {
			t.Run(fmt.Sprintf("%s/file/workers=%d", v.name, workers), func(t *testing.T) {
				pd := NewParallelDecoder(bytes.NewReader(v.data), int64(len(v.data)), v.format, workers)
				defer pd.Close()
				gotReqs, gotMeta, gotErr := collectSeq(pd)
				if gotErr != nil {
					t.Fatalf("parallel decode failed: %v", gotErr)
				}
				if gotMeta != wantMeta {
					t.Fatalf("meta mismatch: got %+v want %+v", gotMeta, wantMeta)
				}
				got := encodeCSVBytes(t, gotMeta, gotReqs)
				if !bytes.Equal(got, want) {
					t.Fatalf("parallel output differs from sequential (%d vs %d requests)", len(gotReqs), len(wantReqs))
				}
			})
			t.Run(fmt.Sprintf("%s/stream/workers=%d", v.name, workers), func(t *testing.T) {
				sd, err := NewStreamParallelDecoder(bytes.NewReader(v.data), v.format, workers)
				if err != nil {
					t.Fatal(err)
				}
				defer sd.Close()
				gotReqs, gotMeta, gotErr := collectSeq(sd)
				if gotErr != nil {
					t.Fatalf("stream parallel decode failed: %v", gotErr)
				}
				if gotMeta != wantMeta {
					t.Fatalf("meta mismatch: got %+v want %+v", gotMeta, wantMeta)
				}
				got := encodeCSVBytes(t, gotMeta, gotReqs)
				if !bytes.Equal(got, want) {
					t.Fatalf("stream parallel output differs from sequential (%d vs %d requests)", len(gotReqs), len(wantReqs))
				}
			})
		}
	}
}

// TestParallelDecodeBatchPaths exercises the DecodeBatch and ReadBatch
// consumption paths against the Next path.
func TestParallelDecodeBatchPaths(t *testing.T) {
	tr := benchTrace(20_000)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, tr); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	viaBatch := func(dec Decoder) []Request {
		var out []Request
		tmp := make([]Request, 100)
		for {
			n, err := DecodeBatch(dec, tmp)
			out = append(out, tmp[:n]...)
			if err == io.EOF {
				return out
			}
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	viaRead := func(br BatchReader) []Request {
		var out []Request
		for {
			b, err := br.ReadBatch()
			out = append(out, b...)
			if err == io.EOF {
				return out
			}
			if err != nil {
				t.Fatal(err)
			}
		}
	}

	pd := NewParallelDecoder(bytes.NewReader(data), int64(len(data)), "csv", 4)
	defer pd.Close()
	got := viaBatch(pd)
	if len(got) != tr.Len() {
		t.Fatalf("DecodeBatch path: %d of %d requests", len(got), tr.Len())
	}
	for i := range got {
		if got[i] != tr.Requests[i] {
			t.Fatalf("DecodeBatch path: request %d differs", i)
		}
	}

	sd, err := NewStreamParallelDecoder(bytes.NewReader(data), "csv", 4)
	if err != nil {
		t.Fatal(err)
	}
	defer sd.Close()
	got = viaRead(sd)
	if len(got) != tr.Len() {
		t.Fatalf("ReadBatch path: %d of %d requests", len(got), tr.Len())
	}
	for i := range got {
		if got[i] != tr.Requests[i] {
			t.Fatalf("ReadBatch path: request %d differs", i)
		}
	}
}

// TestParallelDecodeErrors locks error behaviour: the parallel paths
// must deliver exactly the records the sequential decoder delivers
// before failing, then fail with exactly the sequential decoder's
// error text — absolute line numbers included (the merger's
// per-segment line accounting).
func TestParallelDecodeErrors(t *testing.T) {
	// Big enough that the file splitter plans several segments (256 KiB
	// floor each): the corrupt lines land in later segments, so the
	// absolute line numbers genuinely exercise the merger's per-segment
	// accounting rather than a single segment-0 base.
	tr := benchTrace(40_000)
	var csvBuf, binBuf, msrcBuf, spcBuf bytes.Buffer
	if err := WriteCSV(&csvBuf, tr); err != nil {
		t.Fatal(err)
	}
	if err := WriteBinary(&binBuf, tr); err != nil {
		t.Fatal(err)
	}
	if err := writeMSRCStyle(&msrcBuf, tr); err != nil {
		t.Fatal(err)
	}
	if err := writeSPCStyle(&spcBuf, tr); err != nil {
		t.Fatal(err)
	}

	// corrupt splices a bad line at frac of the way through a text
	// fixture, with a comment run just before it so line numbers and
	// record counts diverge.
	corrupt := func(data string, frac float64, bad string) []byte {
		lines := strings.SplitAfter(data, "\n")
		mid := int(frac * float64(len(lines)))
		return []byte(strings.Join(lines[:mid], "") + "# a comment\n\n" + bad + "\n" + strings.Join(lines[mid:], ""))
	}
	lateHeader := func() []byte {
		lines := strings.SplitAfter(csvBuf.String(), "\n")
		mid := len(lines) / 2
		return []byte(strings.Join(lines[:mid], "") +
			"# tracetracker name=late workload=x set=y tsdev_known=true\n" +
			strings.Join(lines[mid:], ""))
	}()
	truncBin := binBuf.Bytes()[:binBuf.Len()-17]

	cases := []struct {
		name   string
		format string
		data   []byte
	}{
		{"csv/late-header", "csv", lateHeader},
		{"csv/bad-record", "csv", corrupt(csvBuf.String(), 2.0/3, "not,a,record")},
		{"csv/bad-field", "csv", corrupt(csvBuf.String(), 0.9, "12.5,0,xx,8,R,1.0,0")},
		{"bin/truncated-counted", "bin", truncBin},
		{"msrc/bad-first-line", "msrc", []byte("# c\nnot-an-msrc-line\n")},
		{"msrc/bad-mid-line", "msrc", corrupt(msrcBuf.String(), 0.75, "128166372003061629,hm,zz,Read,2096128,512,80")},
		{"spc/bad-mid-line", "spc", corrupt(spcBuf.String(), 0.4, "1,bad-lba,4096,R,1.5")},
		{"bin/empty", "bin", nil},
		{"bin/short-header", "bin", []byte("TTR1\x05")},
	}
	for _, tc := range cases {
		seq, err := NewDecoder(tc.format, bytes.NewReader(tc.data))
		if err != nil {
			t.Fatal(err)
		}
		wantReqs, _, wantErr := collectSeq(seq)
		if wantErr == nil {
			t.Fatalf("%s: expected a sequential decode error", tc.name)
		}
		for _, workers := range []int{1, 4, 8} {
			t.Run(fmt.Sprintf("%s/workers=%d", tc.name, workers), func(t *testing.T) {
				pd := NewParallelDecoder(bytes.NewReader(tc.data), int64(len(tc.data)), tc.format, workers)
				defer pd.Close()
				gotReqs, _, gotErr := collectSeq(pd)
				if gotErr == nil {
					t.Fatalf("parallel decode succeeded, want error %q", wantErr)
				}
				if gotErr.Error() != wantErr.Error() {
					t.Fatalf("parallel error text diverges:\n got %q\nwant %q", gotErr, wantErr)
				}
				if len(gotReqs) != len(wantReqs) {
					t.Fatalf("parallel delivered %d records before failing, sequential %d", len(gotReqs), len(wantReqs))
				}
				sd, err := NewStreamParallelDecoder(bytes.NewReader(tc.data), tc.format, workers)
				if err != nil {
					t.Fatal(err)
				}
				defer sd.Close()
				gotReqs, _, gotErr = collectSeq(sd)
				if gotErr == nil {
					t.Fatalf("stream parallel decode succeeded, want error %q", wantErr)
				}
				if gotErr.Error() != wantErr.Error() {
					t.Fatalf("stream parallel error text diverges:\n got %q\nwant %q", gotErr, wantErr)
				}
				if len(gotReqs) != len(wantReqs) {
					t.Fatalf("stream parallel delivered %d records before failing, sequential %d", len(gotReqs), len(wantReqs))
				}
			})
		}
	}
}

// TestParallelDecodeEmptyText locks the no-data cases: empty input and
// comment-only input decode to zero records with the prelude metadata.
func TestParallelDecodeEmptyText(t *testing.T) {
	header := "# tracetracker name=empty workload=w set=S tsdev_known=true\n# comment\n\n"
	for _, tc := range []struct {
		name, format, data string
	}{
		{"csv/empty", "csv", ""},
		{"csv/comments-only", "csv", header},
		{"spc/empty", "spc", ""},
		{"msrc/comments-only", "msrc", "# nothing here\n"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			seq, err := NewDecoder(tc.format, bytes.NewReader([]byte(tc.data)))
			if err != nil {
				t.Fatal(err)
			}
			wantReqs, wantMeta, wantErr := collectSeq(seq)
			if wantErr != nil || len(wantReqs) != 0 {
				t.Fatalf("sequential: %d reqs, err %v", len(wantReqs), wantErr)
			}
			pd := NewParallelDecoder(bytes.NewReader([]byte(tc.data)), int64(len(tc.data)), tc.format, 4)
			defer pd.Close()
			gotReqs, gotMeta, gotErr := collectSeq(pd)
			if gotErr != nil || len(gotReqs) != 0 {
				t.Fatalf("parallel: %d reqs, err %v", len(gotReqs), gotErr)
			}
			if gotMeta != wantMeta {
				t.Fatalf("meta mismatch: got %+v want %+v", gotMeta, wantMeta)
			}
			sd, err := NewStreamParallelDecoder(bytes.NewReader([]byte(tc.data)), tc.format, 4)
			if err != nil {
				t.Fatal(err)
			}
			defer sd.Close()
			gotReqs, gotMeta, gotErr = collectSeq(sd)
			if gotErr != nil || len(gotReqs) != 0 {
				t.Fatalf("stream parallel: %d reqs, err %v", len(gotReqs), gotErr)
			}
			if gotMeta != wantMeta {
				t.Fatalf("stream meta mismatch: got %+v want %+v", gotMeta, wantMeta)
			}
		})
	}
}

// TestParallelDecoderCloseEarly abandons parallel decoders mid-stream;
// Close must join every goroutine without deadlocking (the -race run
// doubles as a leak check for blocked sends).
func TestParallelDecoderCloseEarly(t *testing.T) {
	tr := benchTrace(50_000)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, tr); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	pd := NewParallelDecoder(bytes.NewReader(data), int64(len(data)), "csv", 4)
	for i := 0; i < 10; i++ {
		if _, err := pd.Next(); err != nil {
			t.Fatal(err)
		}
	}
	pd.Close()

	sd, err := NewStreamParallelDecoder(bytes.NewReader(data), "csv", 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := sd.Next(); err != nil {
			t.Fatal(err)
		}
	}
	sd.Close()
}

// waitGoroutines retries until the runtime goroutine count returns to
// the baseline, dumping stacks on timeout. Worker exits are observable
// only after their final unwind, hence the retry loop.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= base {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked: %d > baseline %d\n%s",
				runtime.NumGoroutine(), base, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestAbandonedDecodeReleasesGoroutines is the leak regression for the
// PR 4 known delta: a decode abandoned on an error path must release
// every worker goroutine. Drain and Summarize close the decoder they
// were draining when the decode fails (CloseDecoder), so repeated
// failing decodes leave the goroutine count at its baseline.
func TestAbandonedDecodeReleasesGoroutines(t *testing.T) {
	tr := benchTrace(40_000)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, tr); err != nil {
		t.Fatal(err)
	}
	// Corrupt a record past the first segment so decode workers are
	// mid-flight when the merger surfaces the error.
	lines := strings.SplitAfter(buf.String(), "\n")
	mid := len(lines) / 2
	data := []byte(strings.Join(lines[:mid], "") + "not,a,record\n" + strings.Join(lines[mid:], ""))

	base := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		pd := NewParallelDecoder(bytes.NewReader(data), int64(len(data)), "csv", 4)
		if _, err := Drain(pd); err == nil {
			t.Fatal("Drain: want a decode error")
		}
		sd, err := NewStreamParallelDecoder(bytes.NewReader(data), "csv", 4)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Summarize(sd); err == nil {
			t.Fatal("Summarize: want a decode error")
		}
		// A reorder wrapper must forward Close to its parallel inner.
		rd := NewReorderDecoder(NewParallelDecoder(bytes.NewReader(data), int64(len(data)), "csv", 4), 8)
		if _, err := rd.Next(); err != nil {
			t.Fatal(err)
		}
		CloseDecoder(rd)
	}
	waitGoroutines(t, base)
}

// TestParallelDecodeAllocs bounds the per-record allocation cost of
// the parallel path: amortized over a full decode it must stay under
// 0.01 allocs/record — the free-list recycling at work.
func TestParallelDecodeAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	const n = 120_000
	tr := benchTrace(n)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	drain := func(br BatchReader) {
		got := 0
		for {
			b, err := br.ReadBatch()
			got += len(b)
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
		}
		if got != n {
			t.Fatalf("decoded %d of %d", got, n)
		}
	}
	avg := testing.AllocsPerRun(3, func() {
		pd := NewParallelDecoder(bytes.NewReader(data), int64(len(data)), "bin", 4)
		drain(pd)
		pd.Close()
	})
	if perRec := avg / n; perRec > 0.01 {
		t.Fatalf("parallel decode allocates %.4f/record (%.0f/run), want <= 0.01", perRec, avg)
	}
}
