package trace

// Segment planning for the parallel decode pipeline: splitSegments
// partitions an input (anything addressable by io.ReaderAt) into byte
// ranges aligned to record boundaries, so independent workers can
// decode the ranges concurrently and a merger can concatenate the
// results back in input order with output identical to the sequential
// Decoder.
//
// The header/prelude region is parsed here, once, on the caller's
// goroutine: the native CSV metadata comments, the MSRC arrival base
// and workload (captured from the first data record), and the binary
// header (magic, metadata strings, record count). Every segment then
// carries the context (segCtx) that makes its decode independent of
// the bytes before it, mirroring how the reconstruction engine carries
// sequentiality state across shards.

import (
	"bytes"
	"fmt"
	"io"
)

// segCtx is the carry state that makes one segment decodable
// independently of the bytes before it.
type segCtx struct {
	// meta is the stream metadata established by the prelude (or, for
	// mid-stream text segments, the final prelude metadata: headers
	// after data rows are errors, so it can no longer change).
	meta Meta
	// sawData marks csv segments that start inside the data region, so
	// a metadata header inside them is rejected exactly like the
	// sequential decoder rejects headers after data rows.
	sawData bool
	// msrcBase is the arrival rebase timestamp captured from the first
	// MSRC data record.
	msrcBase int64
	// binCounted/binRemaining/binStart describe a binary segment: how
	// many fixed-stride records it holds and the global index of its
	// first record (for error messages identical to the sequential
	// decoder's).
	binCounted   bool
	binRemaining uint64
	binStart     uint64
}

// segmentRange is one plannable byte range of the input.
type segmentRange struct {
	start, end int64
	ctx        segCtx
}

// segmentPlan is the result of splitting one input.
type segmentPlan struct {
	format   string
	meta     Meta
	segs     []segmentRange
	sizeHint int
	// preludeLines is the number of input lines before the data region
	// of a text input — the line base of segment 0, so parse errors can
	// report absolute line numbers.
	preludeLines int
}

// newSegmentDecoder constructs the per-format decoder for one segment,
// preset with the segment's carry context. Same parse loops as the
// sequential decoders — the parallel path cannot drift from them.
func newSegmentDecoder(r io.Reader, format string, ctx segCtx) Decoder {
	switch format {
	case "csv":
		d := &CSVDecoder{ls: newLineScanner(r), meta: ctx.meta, sawData: ctx.sawData}
		d.t.applyMeta(ctx.meta)
		return d
	case "bin":
		return &BinaryDecoder{
			br:        newBinReader(r),
			meta:      ctx.meta,
			counted:   ctx.binCounted,
			remaining: ctx.binRemaining,
			idx:       ctx.binStart,
		}
	case "msrc":
		return &MSRCDecoder{ls: newLineScanner(r), meta: ctx.meta, base: ctx.msrcBase}
	case "spc":
		return NewSPCDecoder(r)
	default:
		panic("trace: newSegmentDecoder: unknown format " + format)
	}
}

// raLineScanner yields lines (without terminators) from an io.ReaderAt
// while tracking byte offsets, for prelude scanning. It applies the
// same maxLineLen bound as lineScanner so a pathological prelude fails
// with the same error the sequential path produces.
type raLineScanner struct {
	ra   io.ReaderAt
	size int64
	off  int64 // file offset of buf[pos]
	buf  []byte
	pos  int
}

// next returns the next line and the file offset of its first byte.
func (s *raLineScanner) next() (line []byte, start int64, err error) {
	for {
		if i := bytes.IndexByte(s.buf[s.pos:], '\n'); i >= 0 {
			line = s.buf[s.pos : s.pos+i]
			start = s.off
			s.pos += i + 1
			s.off += int64(i + 1)
			return line, start, nil
		}
		rem := len(s.buf) - s.pos
		if rem > maxLineLen {
			return nil, 0, fmt.Errorf("trace: line longer than %d bytes", maxLineLen)
		}
		if s.off+int64(rem) >= s.size {
			// Final unterminated line (or clean EOF).
			if rem == 0 {
				return nil, 0, io.EOF
			}
			line = s.buf[s.pos:]
			start = s.off
			s.pos = len(s.buf)
			s.off += int64(rem)
			return line, start, nil
		}
		// Compact and refill.
		s.buf = append(s.buf[:0], s.buf[s.pos:]...)
		s.pos = 0
		const chunk = 64 << 10
		n := len(s.buf)
		s.buf = append(s.buf, make([]byte, chunk)...)
		k, err := s.ra.ReadAt(s.buf[n:], s.off+int64(n))
		s.buf = s.buf[:n+k]
		if err != nil && err != io.EOF {
			return nil, 0, err
		}
		if k == 0 && err == io.EOF && n == len(s.buf) {
			// No progress possible; treated by the size check above on
			// the next loop, but guard against a lying Size.
			s.size = s.off + int64(n)
		}
	}
}

// alignAfter returns the offset of the first byte after the next '\n'
// at or after off, or end when no newline remains before end. A
// missing newline within maxLineLen bytes returns ok=false: the
// would-be boundary sits inside a line longer than the sequential
// scanner accepts, so the caller merges the range into the previous
// segment and lets its decoder surface the canonical error.
func alignAfter(ra io.ReaderAt, off, end int64) (int64, bool, error) {
	const chunk = 32 << 10
	buf := make([]byte, chunk)
	for pos := off; pos < end && pos-off <= maxLineLen; pos += chunk {
		n := chunk
		if int64(n) > end-pos {
			n = int(end - pos)
		}
		k, err := ra.ReadAt(buf[:n], pos)
		if i := bytes.IndexByte(buf[:k], '\n'); i >= 0 {
			return pos + int64(i) + 1, true, nil
		}
		if err != nil && err != io.EOF {
			return 0, false, err
		}
		if k < n || err == io.EOF {
			return end, true, nil
		}
	}
	if off >= end {
		return end, true, nil
	}
	return 0, false, nil
}

// targetSegmentCount sizes the split: enough segments to keep workers
// busy with some oversubscription for balance, but no segment smaller
// than minSegmentBytes (tiny segments pay constructor overhead for no
// win).
func targetSegmentCount(dataLen int64, workers int) int {
	if dataLen <= 0 {
		return 0
	}
	want := workers * 3
	if max := int(dataLen / minSegmentBytes); want > max {
		want = max
	}
	if want < 1 {
		want = 1
	}
	if want > maxSegments {
		want = maxSegments
	}
	return want
}

// splitSegments plans the parallel decode of input[0:size).
func splitSegments(ra io.ReaderAt, size int64, format string, workers int) (*segmentPlan, error) {
	switch format {
	case "bin":
		return splitBin(ra, size, workers)
	case "csv", "msrc", "spc":
		return splitText(ra, size, format, workers)
	default:
		return nil, fmt.Errorf("trace: unknown input format %q", format)
	}
}

// splitText plans a line-oriented input: the prelude scan establishes
// the metadata context and the start of the data region, then the data
// region is cut at line boundaries.
func splitText(ra io.ReaderAt, size int64, format string, workers int) (*segmentPlan, error) {
	ctx, dataStart, preludeLines, err := scanPrelude(ra, size, format)
	if err != nil {
		return nil, err
	}
	plan := &segmentPlan{format: format, meta: ctx.meta, preludeLines: preludeLines}
	dataLen := size - dataStart
	n := targetSegmentCount(dataLen, workers)
	if n == 0 {
		return plan, nil
	}
	segSize := dataLen / int64(n)
	lo := dataStart
	for i := 1; i <= n && lo < size; i++ {
		hi := size
		if i < n {
			nominal := dataStart + int64(i)*segSize
			if nominal <= lo {
				continue
			}
			aligned, ok, err := alignAfter(ra, nominal, size)
			if err != nil {
				return nil, err
			}
			if !ok {
				// Monster line across the boundary: merge forward.
				continue
			}
			hi = aligned
		}
		if hi > lo {
			plan.segs = append(plan.segs, segmentRange{start: lo, end: hi, ctx: ctx})
			lo = hi
		}
	}
	if lo < size {
		plan.segs = append(plan.segs, segmentRange{start: lo, end: size, ctx: ctx})
	}
	return plan, nil
}

// preludeState walks the leading comment/blank region of a text
// input, accumulating metadata exactly like the sequential decoders
// do, and captures the per-stream state (MSRC arrival base, workload)
// from the first data line. Shared by the file splitter and the
// stream coordinator so the two parallel paths cannot drift.
type preludeState struct {
	format  string
	ctx     segCtx
	lineno  int
	done    bool // first data line seen; ctx is final
	scratch Trace
}

// feed consumes one prelude line (without its terminator) and reports
// whether it is the first data line — which still belongs to the data
// region: segment 0 re-parses and emits it.
func (p *preludeState) feed(raw []byte) (bool, error) {
	p.lineno++
	line := bytes.TrimSpace(raw)
	if len(line) == 0 {
		return false, nil
	}
	if line[0] == '#' {
		if p.format == "csv" && bytes.HasPrefix(line, csvHeaderPrefix) {
			p.scratch.applyMeta(p.ctx.meta)
			parseHeaderComment(&p.scratch, string(line))
			p.ctx.meta = p.scratch.Meta()
		}
		return false, nil
	}
	if p.format == "msrc" {
		var f [8][]byte
		if n := splitComma(f[:], line); n != 7 {
			return false, fmt.Errorf("trace: msrc line %d: want 7 fields, got %d", p.lineno, n)
		}
		ts, err := parseIntBytes(f[0], 64)
		if err != nil {
			return false, fmt.Errorf("trace: msrc line %d timestamp: %w", p.lineno, err)
		}
		p.ctx.msrcBase = ts
		p.ctx.meta.Workload = string(f[1])
		p.ctx.meta.Name = p.ctx.meta.Workload
	}
	p.done = true
	return true, nil
}

// advance scans prelude lines inside an in-memory chunk and returns
// the unconsumed remainder: the data region (starting at the first
// data line) once found, or the trailing incomplete line to carry into
// the next chunk.
func (p *preludeState) advance(data []byte, eof bool) ([]byte, error) {
	for !p.done {
		if len(data) == 0 {
			return nil, nil
		}
		i := bytes.IndexByte(data, '\n')
		if i < 0 && !eof {
			return data, nil // incomplete line: carry
		}
		line, adv := data, len(data)
		if i >= 0 {
			line, adv = data[:i], i+1
		}
		isData, err := p.feed(line)
		if err != nil {
			return nil, err
		}
		if isData {
			return data, nil
		}
		data = data[adv:]
	}
	return data, nil
}

// scanPrelude runs the prelude over an io.ReaderAt and returns the
// final segment context, the offset of the first data line, and the
// number of lines before it (segment 0's line base). dataStart == size
// means the input holds no data records.
func scanPrelude(ra io.ReaderAt, size int64, format string) (segCtx, int64, int, error) {
	p := preludeState{format: format, ctx: segCtx{meta: initialMeta(format), sawData: true}}
	ls := &raLineScanner{ra: ra, size: size}
	for {
		raw, start, err := ls.next()
		if err == io.EOF {
			return p.ctx, size, p.lineno, nil
		}
		if err != nil {
			return p.ctx, 0, 0, err
		}
		isData, err := p.feed(raw)
		if err != nil {
			return p.ctx, 0, 0, err
		}
		if isData {
			// The first data line belongs to segment 0 (feed counted it).
			return p.ctx, start, p.lineno - 1, nil
		}
	}
}

// initialMeta is the metadata a format's decoder reports before any
// header or record is seen.
func initialMeta(format string) Meta {
	switch format {
	case "msrc":
		return Meta{Set: "MSRC", TsdevKnown: true}
	default:
		return Meta{}
	}
}

// splitBin plans the fixed-stride binary format: the header is parsed
// once, then the record region is cut at multiples of binRecordLen.
func splitBin(ra io.ReaderAt, size int64, workers int) (*segmentPlan, error) {
	meta, counted, count, hdrLen, err := readBinHeader(io.NewSectionReader(ra, 0, size))
	if err != nil {
		if err == io.EOF {
			// Same wrap the sequential constructor applies to a stream
			// that ends inside the header.
			err = fmt.Errorf("trace: truncated binary header: %w", io.ErrUnexpectedEOF)
		}
		return nil, err
	}
	plan := &segmentPlan{format: "bin", meta: meta}
	avail := size - hdrLen
	if avail < 0 {
		avail = 0
	}
	records := uint64(avail / binRecordLen) // full records on disk
	trailing := avail%binRecordLen != 0     // partial record at EOF
	if counted {
		plan.sizeHint = int(count)
		if count == 0 {
			return plan, nil
		}
		if count <= records {
			// Whole region present; bytes beyond the count are ignored,
			// exactly like the sequential decoder.
			records = count
			trailing = false
		}
	} else if records == 0 && !trailing {
		return plan, nil
	}
	// truncated: the last segment must run into the same truncation
	// error, at the same record index, as the sequential decoder — a
	// counted file shorter than its count, or an uncounted file ending
	// inside a record.
	truncated := (counted && count > records) || (!counted && trailing)

	n := targetSegmentCount(int64(records)*binRecordLen, workers)
	if n == 0 {
		n = 1 // truncation-only inputs still need one segment to error
	}
	per := records / uint64(n)
	lo := hdrLen
	var idx uint64
	for i := 1; i <= n; i++ {
		segRecs := per
		if i == n {
			segRecs = records - idx
		}
		hi := lo + int64(segRecs)*binRecordLen
		ctx := segCtx{meta: meta, binStart: idx, binCounted: true, binRemaining: segRecs}
		if i == n && truncated {
			hi = size
			if counted {
				ctx.binRemaining = count - idx
			} else {
				// Uncounted: leave the segment uncounted so its decoder
				// hits the partial trailing record naturally.
				ctx.binCounted = false
				ctx.binRemaining = 0
			}
		}
		if hi > lo || (ctx.binCounted && ctx.binRemaining > 0) {
			plan.segs = append(plan.segs, segmentRange{start: lo, end: hi, ctx: ctx})
		}
		lo = hi
		idx += segRecs
	}
	return plan, nil
}

// readBinHeader parses the compact binary header from r and reports
// how many bytes it occupied. The error messages are byte-for-byte the
// sequential BinaryDecoder's, so the parallel path cannot drift.
func readBinHeader(r io.Reader) (m Meta, counted bool, count uint64, hdrLen int64, err error) {
	cr := &countingReadWrapper{r: r}
	m, counted, count, err = parseBinHeader(cr)
	return m, counted, count, cr.n, err
}

type countingReadWrapper struct {
	r io.Reader
	n int64
}

func (c *countingReadWrapper) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}
