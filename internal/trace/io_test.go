package trace

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func sampleTrace() *Trace {
	return &Trace{
		Name:       "sample-01",
		Workload:   "ikki",
		Set:        "FIU",
		TsdevKnown: true,
		Requests: []Request{
			{Arrival: 0, Device: 0, LBA: 100, Sectors: 8, Op: Read, Latency: 150 * time.Microsecond},
			{Arrival: 500 * time.Microsecond, Device: 1, LBA: 2000, Sectors: 64, Op: Write, Latency: 2 * time.Millisecond, Async: true},
			{Arrival: 900 * time.Microsecond, Device: 0, LBA: 108, Sectors: 8, Op: Read},
		},
	}
}

func TestCSVRoundTrip(t *testing.T) {
	orig := sampleTrace()
	var buf bytes.Buffer
	if err := WriteCSV(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != orig.Name || got.Workload != orig.Workload || got.Set != orig.Set || got.TsdevKnown != orig.TsdevKnown {
		t.Fatalf("metadata lost: %+v", got)
	}
	if !reflect.DeepEqual(got.Requests, orig.Requests) {
		t.Fatalf("requests differ:\n got %+v\nwant %+v", got.Requests, orig.Requests)
	}
}

func TestCSVSubMicrosecondPrecision(t *testing.T) {
	orig := &Trace{Requests: []Request{
		{Arrival: 1500 * time.Nanosecond, LBA: 1, Sectors: 1, Op: Read},
	}}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// CSV stores microseconds with 3 decimals: 1.5us survives exactly.
	if got.Requests[0].Arrival != 1500*time.Nanosecond {
		t.Fatalf("arrival = %v", got.Requests[0].Arrival)
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"1,2,3\n",         // too few fields
		"x,0,0,8,R,0,0\n", // bad arrival
		"0,x,0,8,R,0,0\n", // bad device
		"0,0,x,8,R,0,0\n", // bad lba
		"0,0,0,x,R,0,0\n", // bad sectors
		"0,0,0,8,Q,0,0\n", // bad op
		"0,0,0,8,R,x,0\n", // bad latency
		"0,0,0,8,R,0,7\n", // bad async
	}
	for _, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c)); err == nil {
			t.Errorf("ReadCSV(%q) accepted bad input", c)
		}
	}
}

func TestReadCSVSkipsBlanksAndComments(t *testing.T) {
	in := "# comment\n\n0,0,0,8,R,0,0\n"
	tr, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 1 {
		t.Fatalf("len = %d", tr.Len())
	}
}

func TestReadMSRC(t *testing.T) {
	in := strings.Join([]string{
		"128166372003061629,hm,0,Read,383496192,32768,113736",
		"128166372013061629,hm,0,Write,383528960,4096,23736",
	}, "\n")
	tr, err := ReadMSRC(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Set != "MSRC" || !tr.TsdevKnown || tr.Workload != "hm" {
		t.Fatalf("metadata: %+v", tr)
	}
	if tr.Len() != 2 {
		t.Fatalf("len = %d", tr.Len())
	}
	r0 := tr.Requests[0]
	if r0.Arrival != 0 {
		t.Fatalf("first arrival not rebased: %v", r0.Arrival)
	}
	if r0.LBA != 383496192/512 || r0.Sectors != 64 || r0.Op != Read {
		t.Fatalf("r0 = %+v", r0)
	}
	if r0.Latency != time.Duration(113736)*100 {
		t.Fatalf("r0 latency = %v", r0.Latency)
	}
	// Second arrives 10^7 ticks = 1s later.
	if tr.Requests[1].Arrival != time.Second {
		t.Fatalf("r1 arrival = %v", tr.Requests[1].Arrival)
	}
}

func TestReadMSRCErrors(t *testing.T) {
	bad := []string{
		"1,2,3",
		"x,hm,0,Read,0,512,0",
		"1,hm,x,Read,0,512,0",
		"1,hm,0,Bad,0,512,0",
		"1,hm,0,Read,x,512,0",
		"1,hm,0,Read,0,x,0",
		"1,hm,0,Read,0,512,x",
	}
	for _, c := range bad {
		if _, err := ReadMSRC(strings.NewReader(c)); err == nil {
			t.Errorf("ReadMSRC(%q) accepted bad input", c)
		}
	}
}

func TestReadSPC(t *testing.T) {
	in := "0,12345,4096,R,0.000000\n1,999,512,W,1.500000\n"
	tr, err := ReadSPC(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 2 || tr.TsdevKnown {
		t.Fatalf("bad trace: %+v", tr)
	}
	if tr.Requests[0].LBA != 12345 || tr.Requests[0].Sectors != 8 {
		t.Fatalf("r0 = %+v", tr.Requests[0])
	}
	if tr.Requests[1].Arrival != 1500*time.Millisecond {
		t.Fatalf("r1 arrival = %v", tr.Requests[1].Arrival)
	}
	if tr.Requests[1].Device != 1 || tr.Requests[1].Op != Write {
		t.Fatalf("r1 = %+v", tr.Requests[1])
	}
}

func TestReadSPCZeroSizeClampsToOneSector(t *testing.T) {
	tr, err := ReadSPC(strings.NewReader("0,1,0,R,0.0\n"))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Requests[0].Sectors != 1 {
		t.Fatalf("sectors = %d, want clamp to 1", tr.Requests[0].Sectors)
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	orig := sampleTrace()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, orig) {
		t.Fatalf("round trip differs:\n got %+v\nwant %+v", got, orig)
	}
}

func TestBinaryRejectsBadMagic(t *testing.T) {
	if _, err := ReadBinary(bytes.NewReader([]byte("NOPE....."))); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestBinaryTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBinary(&buf, sampleTrace()); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	if _, err := ReadBinary(bytes.NewReader(b[:len(b)-5])); err == nil {
		t.Fatal("truncated input accepted")
	}
}

// Property: binary round-trip is identity for random traces.
func TestBinaryRoundTripProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := &Trace{Name: "p", Workload: "q", Set: "FIU", TsdevKnown: seed%2 == 0}
		arr := time.Duration(0)
		for i := 0; i < int(n%50)+1; i++ {
			arr += time.Duration(rng.Intn(1e6))
			tr.Requests = append(tr.Requests, Request{
				Arrival: arr,
				Device:  uint32(rng.Intn(4)),
				LBA:     uint64(rng.Int63n(1 << 40)),
				Sectors: uint32(rng.Intn(1024) + 1),
				Op:      Op(rng.Intn(2)),
				Latency: time.Duration(rng.Intn(1e7)),
				Async:   rng.Intn(2) == 0,
			})
		}
		var buf bytes.Buffer
		if err := WriteBinary(&buf, tr); err != nil {
			return false
		}
		got, err := ReadBinary(&buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got, tr)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: CSV round-trip preserves all fields (at its documented
// 1ns-truncated-to-1/1000us precision, which is exact for ns multiples
// of 1000... we use microsecond-aligned arrivals here).
func TestCSVRoundTripProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := &Trace{Name: "p", Workload: "q", Set: "MSPS", TsdevKnown: true}
		arr := time.Duration(0)
		for i := 0; i < int(n%40)+1; i++ {
			arr += time.Duration(rng.Intn(1e6)) * time.Microsecond
			tr.Requests = append(tr.Requests, Request{
				Arrival: arr,
				Device:  uint32(rng.Intn(4)),
				LBA:     uint64(rng.Int63n(1 << 40)),
				Sectors: uint32(rng.Intn(1024) + 1),
				Op:      Op(rng.Intn(2)),
				Latency: time.Duration(rng.Intn(1e6)) * time.Microsecond,
				Async:   rng.Intn(2) == 0,
			})
		}
		var buf bytes.Buffer
		if err := WriteCSV(&buf, tr); err != nil {
			return false
		}
		got, err := ReadCSV(&buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got, tr)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
