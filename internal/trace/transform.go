package trace

import (
	"fmt"
	"sort"
	"time"
)

// Merge combines several traces into one timeline, interleaving by
// arrival time (stable across inputs). Metadata comes from the first
// trace; use it to reassemble multi-volume MSRC captures or to fuse
// per-disk FIU logs into a node-level trace.
func Merge(traces ...*Trace) *Trace {
	out := &Trace{}
	if len(traces) == 0 {
		return out
	}
	out.Name = traces[0].Name
	out.Workload = traces[0].Workload
	out.Set = traces[0].Set
	out.TsdevKnown = traces[0].TsdevKnown
	total := 0
	for _, t := range traces {
		total += len(t.Requests)
		out.TsdevKnown = out.TsdevKnown && t.TsdevKnown
	}
	out.Requests = make([]Request, 0, total)
	for _, t := range traces {
		out.Requests = append(out.Requests, t.Requests...)
	}
	out.Sort()
	return out
}

// SplitByDevice partitions a trace into per-device traces, preserving
// order. Keys are the observed device IDs.
func SplitByDevice(t *Trace) map[uint32]*Trace {
	out := make(map[uint32]*Trace)
	for _, r := range t.Requests {
		sub := out[r.Device]
		if sub == nil {
			sub = &Trace{
				Name:       fmt.Sprintf("%s.dev%d", t.Name, r.Device),
				Workload:   t.Workload,
				Set:        t.Set,
				TsdevKnown: t.TsdevKnown,
			}
			out[r.Device] = sub
		}
		sub.Requests = append(sub.Requests, r)
	}
	return out
}

// Window extracts the requests with Arrival in [from, to), rebased so
// the window starts at zero. Use it to cut the day/night segments the
// MSRC studies analyze separately.
func Window(t *Trace, from, to time.Duration) *Trace {
	out := &Trace{
		Name:       fmt.Sprintf("%s[%v,%v)", t.Name, from, to),
		Workload:   t.Workload,
		Set:        t.Set,
		TsdevKnown: t.TsdevKnown,
	}
	// Requests are sorted by arrival: binary-search the bounds.
	lo := sort.Search(len(t.Requests), func(i int) bool { return t.Requests[i].Arrival >= from })
	hi := sort.Search(len(t.Requests), func(i int) bool { return t.Requests[i].Arrival >= to })
	out.Requests = make([]Request, hi-lo)
	copy(out.Requests, t.Requests[lo:hi])
	for i := range out.Requests {
		out.Requests[i].Arrival -= from
	}
	return out
}

// RemapLBA shifts and wraps every LBA into [0, capacitySectors),
// preserving request sizes. Reconstruction targets smaller than the
// traced volume need this before replay; the modulo keeps the access
// pattern's locality structure.
func RemapLBA(t *Trace, capacitySectors uint64) *Trace {
	out := t.Clone()
	if capacitySectors == 0 {
		return out
	}
	for i := range out.Requests {
		r := &out.Requests[i]
		if uint64(r.Sectors) >= capacitySectors {
			r.LBA = 0
			continue
		}
		r.LBA %= capacitySectors
		if r.End() > capacitySectors {
			r.LBA = capacitySectors - uint64(r.Sectors)
		}
	}
	return out
}

// ScaleTime multiplies every arrival (and recorded latency) by factor.
// factor > 1 slows the trace down, factor < 1 is the paper's
// Acceleration transformation applied uniformly to absolute time.
func ScaleTime(t *Trace, factor float64) *Trace {
	out := t.Clone()
	if factor <= 0 {
		return out
	}
	for i := range out.Requests {
		r := &out.Requests[i]
		r.Arrival = time.Duration(float64(r.Arrival) * factor)
		r.Latency = time.Duration(float64(r.Latency) * factor)
	}
	return out
}

// Concat appends b's timeline after a's (b rebased to start gap after
// a's last arrival). Useful for composing long-running scenarios from
// the per-day traces the corpora ship.
func Concat(a, b *Trace, gap time.Duration) *Trace {
	out := a.Clone()
	var base time.Duration
	if len(out.Requests) > 0 {
		base = out.Requests[len(out.Requests)-1].Arrival + gap
	}
	var b0 time.Duration
	if len(b.Requests) > 0 {
		b0 = b.Requests[0].Arrival
	}
	for _, r := range b.Requests {
		r.Arrival = base + (r.Arrival - b0)
		out.Requests = append(out.Requests, r)
	}
	out.TsdevKnown = a.TsdevKnown && b.TsdevKnown
	return out
}
