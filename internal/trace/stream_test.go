package trace

import (
	"bytes"
	"io"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"time"
)

func streamSample() *Trace {
	return &Trace{
		Name: "s", Workload: "w", Set: "FIU", TsdevKnown: true,
		Requests: []Request{
			{Arrival: 0, Device: 0, LBA: 100, Sectors: 8, Op: Read, Latency: 90 * time.Microsecond},
			{Arrival: time.Millisecond, Device: 1, LBA: 108, Sectors: 16, Op: Write, Latency: 250 * time.Microsecond, Async: true},
			{Arrival: 3 * time.Millisecond, Device: 0, LBA: 4096, Sectors: 64, Op: Read},
		},
	}
}

// TestStreamMatchesWholeTrace checks that encoding via the streaming
// encoders produces the same bytes as the whole-trace writers, and
// that decoding via the streaming decoders recovers the same trace as
// the whole-trace readers.
func TestStreamMatchesWholeTrace(t *testing.T) {
	orig := streamSample()
	var whole, streamed bytes.Buffer
	if err := WriteCSV(&whole, orig); err != nil {
		t.Fatal(err)
	}
	if err := EncodeTrace(NewCSVEncoder(&streamed), orig); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(whole.Bytes(), streamed.Bytes()) {
		t.Fatal("csv: streaming encoder diverges from WriteCSV")
	}
	got, err := Drain(NewCSVDecoder(bytes.NewReader(streamed.Bytes())))
	if err != nil {
		t.Fatal(err)
	}
	if got.Meta() != orig.Meta() {
		t.Fatalf("csv meta: got %+v want %+v", got.Meta(), orig.Meta())
	}
	if !reflect.DeepEqual(got.Requests, orig.Requests) {
		t.Fatal("csv: streaming round trip lost data")
	}
}

// TestBinaryStreamingSentinel checks that a BinaryEncoder stream (no
// up-front count) is readable by ReadBinary.
func TestBinaryStreamingSentinel(t *testing.T) {
	orig := streamSample()
	var buf bytes.Buffer
	if err := EncodeTrace(NewBinaryEncoder(&buf), orig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Meta() != orig.Meta() || !reflect.DeepEqual(got.Requests, orig.Requests) {
		t.Fatal("binary streaming round trip lost data")
	}
	// Counted files written by WriteBinary must stream-decode too.
	var counted bytes.Buffer
	if err := WriteBinary(&counted, orig); err != nil {
		t.Fatal(err)
	}
	dec := NewBinaryDecoder(bytes.NewReader(counted.Bytes()))
	got2, err := Drain(dec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got2.Requests, orig.Requests) {
		t.Fatal("counted binary stream decode lost data")
	}
}

// TestBinaryTruncatedHeader checks an empty or header-truncated
// binary stream is an error, not a silently empty trace.
func TestBinaryTruncatedHeader(t *testing.T) {
	for _, in := range []string{"", "TTR1", "TTR1\x02\x00a"} {
		if _, err := ReadBinary(strings.NewReader(in)); err == nil {
			t.Fatalf("truncated header %q accepted as empty trace", in)
		}
		dec := NewBinaryDecoder(strings.NewReader(in))
		if _, err := dec.Next(); err == nil || err == io.EOF {
			t.Fatalf("decoder on %q: got %v, want a truncation error", in, err)
		}
	}
}

// TestReorderDecoder checks the bounded window recovers the stable
// arrival sort of a near-sorted stream.
func TestReorderDecoder(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var reqs []Request
	for i := 0; i < 500; i++ {
		reqs = append(reqs, Request{
			Arrival: time.Duration(i) * time.Millisecond,
			LBA:     uint64(i), Sectors: 8, Op: Read,
		})
	}
	// Displace locally within a window of 8.
	shuffled := append([]Request(nil), reqs...)
	for i := 0; i+8 <= len(shuffled); i += 8 {
		rng.Shuffle(8, func(a, b int) {
			shuffled[i+a], shuffled[i+b] = shuffled[i+b], shuffled[i+a]
		})
	}
	var buf bytes.Buffer
	if err := EncodeTrace(NewBinaryEncoder(&buf), &Trace{Requests: shuffled}); err != nil {
		t.Fatal(err)
	}
	dec := NewReorderDecoder(NewBinaryDecoder(bytes.NewReader(buf.Bytes())), 16)
	got, err := Drain(dec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Requests, reqs) {
		t.Fatal("reorder decoder did not restore sorted order")
	}
	if _, err := dec.Next(); err != io.EOF {
		t.Fatalf("want io.EOF after drain, got %v", err)
	}
}

// TestReorderDecoderExactWindow checks the documented bound is
// inclusive: a request displaced by exactly `window` positions is
// still sorted into place.
func TestReorderDecoderExactWindow(t *testing.T) {
	// Arrivals [2ms, 3ms, 1ms]: the 1ms record sits 2 positions past
	// its sorted slot, so window=2 must recover [1,2,3].
	reqs := []Request{
		{Arrival: 2 * time.Millisecond, LBA: 2, Sectors: 8, Op: Read},
		{Arrival: 3 * time.Millisecond, LBA: 3, Sectors: 8, Op: Read},
		{Arrival: 1 * time.Millisecond, LBA: 1, Sectors: 8, Op: Read},
	}
	var buf bytes.Buffer
	if err := EncodeTrace(NewBinaryEncoder(&buf), &Trace{Requests: reqs}); err != nil {
		t.Fatal(err)
	}
	got, err := Drain(NewReorderDecoder(NewBinaryDecoder(bytes.NewReader(buf.Bytes())), 2))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(got.Requests); i++ {
		if got.Requests[i].Arrival < got.Requests[i-1].Arrival {
			t.Fatalf("window-sized displacement not sorted: %v", got.Requests)
		}
	}
}

// TestMSRCDecoderMatchesReader checks the streaming MSRC decoder plus
// a reorder window reproduces ReadMSRC on near-sorted input.
func TestMSRCDecoderMatchesReader(t *testing.T) {
	const msrc = `128166372003061629,web,0,Write,8192,4096,501
128166372002869395,web,0,Read,0,4096,1003
128166372013321843,web,1,Write,12288,8192,702
`
	want, err := ReadMSRC(strings.NewReader(msrc))
	if err != nil {
		t.Fatal(err)
	}
	got, err := Drain(NewReorderDecoder(NewMSRCDecoder(strings.NewReader(msrc)), 64))
	if err != nil {
		t.Fatal(err)
	}
	got.applyMeta(got.Meta())
	if !reflect.DeepEqual(got.Requests, want.Requests) {
		t.Fatalf("msrc stream mismatch:\n got %+v\nwant %+v", got.Requests, want.Requests)
	}
	if got.Set != "MSRC" || !got.TsdevKnown || got.Workload != "web" {
		t.Fatalf("msrc meta: %+v", got.Meta())
	}
}

// TestSPCDecoderMatchesReader checks the SPC streaming decoder against
// ReadSPC.
func TestSPCDecoderMatchesReader(t *testing.T) {
	const spc = `0,20941264,8192,W,0.000000
0,20939840,8192,W,0.001020
1,3072,1024,R,0.000511
`
	want, err := ReadSPC(strings.NewReader(spc))
	if err != nil {
		t.Fatal(err)
	}
	got, err := Drain(NewReorderDecoder(NewSPCDecoder(strings.NewReader(spc)), 64))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Requests, want.Requests) {
		t.Fatalf("spc stream mismatch:\n got %+v\nwant %+v", got.Requests, want.Requests)
	}
}

// TestBlktraceFIOEncodersMatchWriters checks streaming encoders for
// the two replay output formats against the whole-trace writers.
func TestBlktraceFIOEncodersMatchWriters(t *testing.T) {
	orig := streamSample()
	var whole, streamed bytes.Buffer
	if err := WriteBlktrace(&whole, orig); err != nil {
		t.Fatal(err)
	}
	if err := EncodeTrace(NewBlktraceEncoder(&streamed), orig); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(whole.Bytes(), streamed.Bytes()) {
		t.Fatal("blktrace: streaming encoder diverges")
	}
	whole.Reset()
	streamed.Reset()
	if err := WriteFIOLog(&whole, orig, "/dev/x"); err != nil {
		t.Fatal(err)
	}
	if err := EncodeTrace(NewFIOEncoder(&streamed, "/dev/x"), orig); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(whole.Bytes(), streamed.Bytes()) {
		t.Fatal("fio: streaming encoder diverges")
	}
}

// TestCSVLateHeaderRejected checks a metadata header behind data rows
// (concatenated files) is an error on both the streaming and the
// whole-trace path, so they cannot silently diverge.
func TestCSVLateHeaderRejected(t *testing.T) {
	const in = "1.000,0,100,8,R,5.000,0\n" +
		"# tracetracker name=x workload=w set=S tsdev_known=true\n" +
		"2.000,0,200,8,R,5.000,0\n"
	if _, err := ReadCSV(strings.NewReader(in)); err == nil || !strings.Contains(err.Error(), "metadata header after data") {
		t.Fatalf("ReadCSV late header: got %v", err)
	}
	dec := NewCSVDecoder(strings.NewReader(in))
	if _, err := dec.Next(); err != nil {
		t.Fatal(err)
	}
	if _, err := dec.Next(); err == nil || !strings.Contains(err.Error(), "metadata header after data") {
		t.Fatalf("decoder late header: got %v", err)
	}
	// A plain comment between rows stays legal.
	const ok = "# tracetracker name=x workload=w set=S tsdev_known=true\n" +
		"1.000,0,100,8,R,5.000,0\n" +
		"# just a note\n" +
		"2.000,0,200,8,R,5.000,0\n"
	tr, err := ReadCSV(strings.NewReader(ok))
	if err != nil || tr.Len() != 2 {
		t.Fatalf("plain comment: %v, %d requests", err, tr.Len())
	}
}

// TestSeqState checks the incremental sequentiality tracker matches
// SeqFlags and that clones are independent.
func TestSeqState(t *testing.T) {
	tr := streamSample()
	want := tr.SeqFlags()
	st := NewSeqState()
	for i, r := range tr.Requests {
		if got := st.Flag(r); got != want[i] {
			t.Fatalf("flag %d: got %v want %v", i, got, want[i])
		}
	}
	a := NewSeqState()
	a.Flag(Request{LBA: 0, Sectors: 8})
	b := a.Clone()
	b.Flag(Request{LBA: 100, Sectors: 8})
	if !a.Flag(Request{LBA: 8, Sectors: 8}) {
		t.Fatal("clone mutation leaked into parent")
	}
}

// countingDecoder wraps a decoder and counts how many requests the
// consumer has pulled out of it.
type countingDecoder struct {
	inner Decoder
	n     int
}

func (c *countingDecoder) Next() (Request, error) {
	r, err := c.inner.Next()
	if err == nil {
		c.n++
	}
	return r, err
}

func (c *countingDecoder) Meta() Meta { return c.inner.Meta() }

// batchSizeRecorder wraps a BatchDecoder recording how many records
// each inner batch call delivered, and the running total.
type batchSizeRecorder struct {
	inner BatchDecoder
	n     int
	sizes []int
}

func (c *batchSizeRecorder) Next() (Request, error) {
	r, err := c.inner.Next()
	if err == nil {
		c.n++
		c.sizes = append(c.sizes, 1)
	}
	return r, err
}

func (c *batchSizeRecorder) DecodeBatch(dst []Request) (int, error) {
	n, err := c.inner.DecodeBatch(dst)
	if n > 0 {
		c.n += n
		c.sizes = append(c.sizes, n)
	}
	return n, err
}

func (c *batchSizeRecorder) Meta() Meta { return c.inner.Meta() }

// TestReorderDecoderBatchedRefill is the regression test for the PR 4
// known delta (steady-state refill dropped to one record per emit):
// the batch path must refill from the inner decoder in multi-record
// reads while the hard window+1 read-ahead bound still holds at every
// point the consumer can observe, and the output must stay the stable
// arrival sort.
func TestReorderDecoderBatchedRefill(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	const n = 4_000
	const window = 16
	reqs := make([]Request, n)
	for i := range reqs {
		reqs[i] = Request{
			Arrival: time.Duration(i) * time.Millisecond,
			LBA:     uint64(i * 8),
			Sectors: 8,
			Op:      Read,
		}
	}
	shuffled := append([]Request(nil), reqs...)
	for i := 0; i+window < len(shuffled); i += window {
		rng.Shuffle(window, func(a, b int) {
			shuffled[i+a], shuffled[i+b] = shuffled[i+b], shuffled[i+a]
		})
	}
	var buf bytes.Buffer
	if err := EncodeTrace(NewBinaryEncoder(&buf), &Trace{Requests: shuffled}); err != nil {
		t.Fatal(err)
	}

	rec := &batchSizeRecorder{inner: NewBinaryDecoder(bytes.NewReader(buf.Bytes()))}
	dec := NewReorderDecoder(rec, window)
	var got []Request
	tmp := make([]Request, 64)
	for {
		k, err := dec.DecodeBatch(tmp)
		got = append(got, tmp[:k]...)
		// The hard bound, observed at every consumer-visible point: the
		// decoder has read at most window+1 records past its output.
		if ahead := rec.n - len(got); ahead > window+1 {
			t.Fatalf("reorder decoder read %d records past its output; window is %d", ahead, window)
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if !reflect.DeepEqual(got, reqs) {
		t.Fatal("batched reorder output is not the stable arrival sort")
	}
	max := 0
	for _, s := range rec.sizes {
		if s > max {
			max = s
		}
	}
	if max <= 1 {
		t.Fatalf("refill never batched: max inner read %d records (%d calls for %d records)",
			max, len(rec.sizes), rec.n)
	}
}

// TestReorderDecoderWindowBound is the regression test for the PR 3
// caveat: a ReorderDecoder must never read more than window+1 records
// past what it has emitted — the declared window is a hard buffering
// bound, not a refill hint that batching may overshoot by hundreds of
// records.
func TestReorderDecoderWindowBound(t *testing.T) {
	tr := benchTrace(4_000)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	const window = 7
	cd := &countingDecoder{inner: NewBinaryDecoder(bytes.NewReader(buf.Bytes()))}
	dec := NewReorderDecoder(cd, window)
	emitted := 0
	for {
		_, err := dec.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		emitted++
		if ahead := cd.n - emitted; ahead > window+1 {
			t.Fatalf("reorder decoder read %d records past its output; window is %d", ahead, window)
		}
	}
	if emitted != tr.Len() {
		t.Fatalf("emitted %d of %d", emitted, tr.Len())
	}
}
