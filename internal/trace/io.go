package trace

import (
	"bufio"
	"fmt"
	"io"
	"strings"
	"time"
)

// The native CSV format is the repository's canonical interchange
// format, one request per line:
//
//	arrival_us,device,lba,sectors,op,latency_us,async
//
// arrival_us and latency_us are decimal microseconds (fractional
// allowed), op is R or W, async is 0/1. Lines beginning with '#' are
// comments; the writer emits a header comment carrying trace metadata.

// WriteCSV writes t in the native CSV format.
func WriteCSV(w io.Writer, t *Trace) error {
	return EncodeTrace(NewCSVEncoder(w), t)
}

// ReadCSV reads a trace in the native CSV format.
func ReadCSV(r io.Reader) (*Trace, error) {
	return Drain(NewCSVDecoder(r))
}

func parseHeaderComment(t *Trace, line string) {
	if !strings.HasPrefix(line, "# tracetracker ") {
		return
	}
	for _, kv := range strings.Fields(line[len("# tracetracker "):]) {
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			continue
		}
		switch k {
		case "name":
			t.Name = v
		case "workload":
			t.Workload = v
		case "set":
			t.Set = v
		case "tsdev_known":
			t.TsdevKnown = v == "true"
		}
	}
}

// parseNativeFast parses one native CSV record in a single pass over
// the line, with no field slicing: the overwhelmingly common shape
// (plain decimal numbers, single-letter op, 0/1 async). ok=false
// means "not this shape" — the caller re-parses via splitComma +
// parseNativeLine, which accepts every form the format ever accepted
// (exponent floats, word ops) and produces the canonical error
// otherwise. The numeric conversions are bit-identical to the slow
// path: both funnel through floatFromDecimal under the same cutoffs.
func parseNativeFast(line []byte) (Request, bool) {
	var r Request
	p := 0
	arr, ok := scanMicrosField(line, &p)
	if !ok {
		return r, false
	}
	dev, ok := scanUintField(line, &p, 1<<32-1)
	if !ok {
		return r, false
	}
	lba, ok := scanUintField(line, &p, ^uint64(0))
	if !ok {
		return r, false
	}
	sec, ok := scanUintField(line, &p, 1<<32-1)
	if !ok {
		return r, false
	}
	if p+2 > len(line) || line[p+1] != ',' {
		return r, false
	}
	switch line[p] {
	case 'R', 'r':
		r.Op = Read
	case 'W', 'w':
		r.Op = Write
	default:
		// "0"/"1" op spellings collide with digits; let the slow path
		// disambiguate the rare traces that use them.
		return r, false
	}
	p += 2
	lat, ok := scanMicrosField(line, &p)
	if !ok {
		return r, false
	}
	if p+1 != len(line) {
		return r, false
	}
	switch line[p] {
	case '0':
	case '1':
		r.Async = true
	default:
		return r, false
	}
	r.Arrival = fromMicros(arr)
	r.Device = uint32(dev)
	r.LBA = lba
	r.Sectors = uint32(sec)
	r.Latency = fromMicros(lat)
	return r, true
}

// scanMicrosField scans a plain decimal float at *p terminated by ','
// and advances *p past the comma. ok=false leaves the caller to the
// slow path.
func scanMicrosField(line []byte, p *int) (float64, bool) {
	i := *p
	neg := false
	if i < len(line) && (line[i] == '-' || line[i] == '+') {
		neg = line[i] == '-'
		i++
	}
	var (
		mant   uint64
		exp    int
		digits int
	)
	for ; i < len(line); i++ {
		d := uint64(line[i] - '0')
		if d > 9 {
			break
		}
		if mant >= mantCutoff {
			return 0, false
		}
		mant = mant*10 + d
		digits++
	}
	if i < len(line) && line[i] == '.' {
		for i++; i < len(line); i++ {
			d := uint64(line[i] - '0')
			if d > 9 {
				break
			}
			if mant >= mantCutoff {
				return 0, false
			}
			mant = mant*10 + d
			digits++
			exp--
		}
	}
	if digits == 0 || exp < -22 || i >= len(line) || line[i] != ',' {
		return 0, false
	}
	*p = i + 1
	return floatFromDecimal(mant, exp, neg), true
}

// scanUintField scans a decimal unsigned integer at *p terminated by
// ',' and advances *p past the comma.
func scanUintField(line []byte, p *int, maxVal uint64) (uint64, bool) {
	i := *p
	var v uint64
	digits := 0
	for ; i < len(line); i++ {
		d := uint64(line[i] - '0')
		if d > 9 {
			break
		}
		if v > maxVal/10 {
			return 0, false
		}
		if v = v*10 + d; v > maxVal {
			return 0, false
		}
		digits++
	}
	if digits == 0 || i >= len(line) || line[i] != ',' {
		return 0, false
	}
	*p = i + 1
	return v, true
}

// parseNativeLine parses the 7 comma-split fields of one native CSV
// record. Fields alias the decoder's line buffer; nothing escapes.
func parseNativeLine(f [][]byte) (Request, error) {
	var r Request
	arr, err := parseFloatBytes(f[0])
	if err != nil {
		return r, fmt.Errorf("arrival: %w", err)
	}
	dev, err := parseUintBytes(f[1], 32)
	if err != nil {
		return r, fmt.Errorf("device: %w", err)
	}
	lba, err := parseUintBytes(f[2], 64)
	if err != nil {
		return r, fmt.Errorf("lba: %w", err)
	}
	sec, err := parseUintBytes(f[3], 32)
	if err != nil {
		return r, fmt.Errorf("sectors: %w", err)
	}
	op, err := parseOpBytes(f[4])
	if err != nil {
		return r, err
	}
	lat, err := parseFloatBytes(f[5])
	if err != nil {
		return r, fmt.Errorf("latency: %w", err)
	}
	async, err := parseUintBytes(f[6], 1)
	if err != nil {
		return r, fmt.Errorf("async: %w", err)
	}
	r = Request{
		Arrival: fromMicros(arr),
		Device:  uint32(dev),
		LBA:     lba,
		Sectors: uint32(sec),
		Op:      op,
		Latency: fromMicros(lat),
		Async:   async == 1,
	}
	return r, nil
}

func micros(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }
func fromMicros(us float64) time.Duration {
	return time.Duration(us * float64(time.Microsecond))
}

// ReadMSRC reads the Microsoft Research Cambridge CSV format:
//
//	Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime
//
// Timestamp and ResponseTime are Windows filetime ticks (100 ns units);
// Offset and Size are bytes. Arrivals are rebased so the first request
// is at zero. Response times populate Latency and mark the trace
// TsdevKnown.
func ReadMSRC(r io.Reader) (*Trace, error) {
	t, err := Drain(NewMSRCDecoder(r))
	if err != nil {
		return nil, err
	}
	t.Sort()
	return t, nil
}

// ReadSPC reads the SPC-1 ASCII trace format used by several public
// repositories (including parts of the UMass corpus):
//
//	ASU,LBA,Size,Opcode,Timestamp
//
// LBA is in sectors, Size in bytes, Opcode R/W, Timestamp fractional
// seconds. No completion information is available (TsdevKnown=false).
func ReadSPC(r io.Reader) (*Trace, error) {
	t, err := Drain(NewSPCDecoder(r))
	if err != nil {
		return nil, err
	}
	t.Sort()
	return t, nil
}

// binaryMagic identifies the compact binary trace format.
var binaryMagic = [4]byte{'T', 'T', 'R', '1'}

// WriteBinary writes t in the compact binary format: a magic header,
// metadata strings, the request count, then fixed-width little-endian
// request records. The format is ~3x smaller than CSV and much faster
// to parse, which matters for the 577-trace corpus sweeps.
func WriteBinary(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	if err := writeBinaryHeader(bw, t.Meta(), uint64(len(t.Requests))); err != nil {
		return err
	}
	var rec [binRecordLen]byte
	for _, r := range t.Requests {
		if err := writeBinaryRecord(bw, &rec, r); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary reads a trace written by WriteBinary or streamed by a
// BinaryEncoder.
func ReadBinary(r io.Reader) (*Trace, error) {
	return Drain(NewBinaryDecoder(r))
}
