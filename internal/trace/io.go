package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// The native CSV format is the repository's canonical interchange
// format, one request per line:
//
//	arrival_us,device,lba,sectors,op,latency_us,async
//
// arrival_us and latency_us are decimal microseconds (fractional
// allowed), op is R or W, async is 0/1. Lines beginning with '#' are
// comments; the writer emits a header comment carrying trace metadata.

// WriteCSV writes t in the native CSV format.
func WriteCSV(w io.Writer, t *Trace) error {
	return EncodeTrace(NewCSVEncoder(w), t)
}

// ReadCSV reads a trace in the native CSV format.
func ReadCSV(r io.Reader) (*Trace, error) {
	return Drain(NewCSVDecoder(r))
}

func parseHeaderComment(t *Trace, line string) {
	if !strings.HasPrefix(line, "# tracetracker ") {
		return
	}
	for _, kv := range strings.Fields(line[len("# tracetracker "):]) {
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			continue
		}
		switch k {
		case "name":
			t.Name = v
		case "workload":
			t.Workload = v
		case "set":
			t.Set = v
		case "tsdev_known":
			t.TsdevKnown = v == "true"
		}
	}
}

func parseNativeFields(f []string) (Request, error) {
	var r Request
	arr, err := strconv.ParseFloat(f[0], 64)
	if err != nil {
		return r, fmt.Errorf("arrival: %w", err)
	}
	dev, err := strconv.ParseUint(f[1], 10, 32)
	if err != nil {
		return r, fmt.Errorf("device: %w", err)
	}
	lba, err := strconv.ParseUint(f[2], 10, 64)
	if err != nil {
		return r, fmt.Errorf("lba: %w", err)
	}
	sec, err := strconv.ParseUint(f[3], 10, 32)
	if err != nil {
		return r, fmt.Errorf("sectors: %w", err)
	}
	op, err := ParseOp(f[4])
	if err != nil {
		return r, err
	}
	lat, err := strconv.ParseFloat(f[5], 64)
	if err != nil {
		return r, fmt.Errorf("latency: %w", err)
	}
	async, err := strconv.ParseUint(f[6], 10, 1)
	if err != nil {
		return r, fmt.Errorf("async: %w", err)
	}
	r = Request{
		Arrival: fromMicros(arr),
		Device:  uint32(dev),
		LBA:     lba,
		Sectors: uint32(sec),
		Op:      op,
		Latency: fromMicros(lat),
		Async:   async == 1,
	}
	return r, nil
}

func micros(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }
func fromMicros(us float64) time.Duration {
	return time.Duration(us * float64(time.Microsecond))
}

// ReadMSRC reads the Microsoft Research Cambridge CSV format:
//
//	Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime
//
// Timestamp and ResponseTime are Windows filetime ticks (100 ns units);
// Offset and Size are bytes. Arrivals are rebased so the first request
// is at zero. Response times populate Latency and mark the trace
// TsdevKnown.
func ReadMSRC(r io.Reader) (*Trace, error) {
	t, err := Drain(NewMSRCDecoder(r))
	if err != nil {
		return nil, err
	}
	t.Sort()
	return t, nil
}

// ReadSPC reads the SPC-1 ASCII trace format used by several public
// repositories (including parts of the UMass corpus):
//
//	ASU,LBA,Size,Opcode,Timestamp
//
// LBA is in sectors, Size in bytes, Opcode R/W, Timestamp fractional
// seconds. No completion information is available (TsdevKnown=false).
func ReadSPC(r io.Reader) (*Trace, error) {
	t, err := Drain(NewSPCDecoder(r))
	if err != nil {
		return nil, err
	}
	t.Sort()
	return t, nil
}

// binaryMagic identifies the compact binary trace format.
var binaryMagic = [4]byte{'T', 'T', 'R', '1'}

// WriteBinary writes t in the compact binary format: a magic header,
// metadata strings, the request count, then fixed-width little-endian
// request records. The format is ~3x smaller than CSV and much faster
// to parse, which matters for the 577-trace corpus sweeps.
func WriteBinary(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	if err := writeBinaryHeader(bw, t.Meta(), uint64(len(t.Requests))); err != nil {
		return err
	}
	for _, r := range t.Requests {
		if err := writeBinaryRecord(bw, r); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary reads a trace written by WriteBinary or streamed by a
// BinaryEncoder.
func ReadBinary(r io.Reader) (*Trace, error) {
	return Drain(NewBinaryDecoder(r))
}
