package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// The native CSV format is the repository's canonical interchange
// format, one request per line:
//
//	arrival_us,device,lba,sectors,op,latency_us,async
//
// arrival_us and latency_us are decimal microseconds (fractional
// allowed), op is R or W, async is 0/1. Lines beginning with '#' are
// comments; the writer emits a header comment carrying trace metadata.

// WriteCSV writes t in the native CSV format.
func WriteCSV(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# tracetracker name=%s workload=%s set=%s tsdev_known=%v\n",
		t.Name, t.Workload, t.Set, t.TsdevKnown)
	fmt.Fprintln(bw, "# arrival_us,device,lba,sectors,op,latency_us,async")
	for _, r := range t.Requests {
		async := 0
		if r.Async {
			async = 1
		}
		fmt.Fprintf(bw, "%.3f,%d,%d,%d,%s,%.3f,%d\n",
			micros(r.Arrival), r.Device, r.LBA, r.Sectors, r.Op, micros(r.Latency), async)
	}
	return bw.Flush()
}

// ReadCSV reads a trace in the native CSV format.
func ReadCSV(r io.Reader) (*Trace, error) {
	t := &Trace{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			parseHeaderComment(t, line)
			continue
		}
		f := strings.Split(line, ",")
		if len(f) != 7 {
			return nil, fmt.Errorf("trace: line %d: want 7 fields, got %d", lineno, len(f))
		}
		req, err := parseNativeFields(f)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", lineno, err)
		}
		t.Requests = append(t.Requests, req)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return t, nil
}

func parseHeaderComment(t *Trace, line string) {
	if !strings.HasPrefix(line, "# tracetracker ") {
		return
	}
	for _, kv := range strings.Fields(line[len("# tracetracker "):]) {
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			continue
		}
		switch k {
		case "name":
			t.Name = v
		case "workload":
			t.Workload = v
		case "set":
			t.Set = v
		case "tsdev_known":
			t.TsdevKnown = v == "true"
		}
	}
}

func parseNativeFields(f []string) (Request, error) {
	var r Request
	arr, err := strconv.ParseFloat(f[0], 64)
	if err != nil {
		return r, fmt.Errorf("arrival: %w", err)
	}
	dev, err := strconv.ParseUint(f[1], 10, 32)
	if err != nil {
		return r, fmt.Errorf("device: %w", err)
	}
	lba, err := strconv.ParseUint(f[2], 10, 64)
	if err != nil {
		return r, fmt.Errorf("lba: %w", err)
	}
	sec, err := strconv.ParseUint(f[3], 10, 32)
	if err != nil {
		return r, fmt.Errorf("sectors: %w", err)
	}
	op, err := ParseOp(f[4])
	if err != nil {
		return r, err
	}
	lat, err := strconv.ParseFloat(f[5], 64)
	if err != nil {
		return r, fmt.Errorf("latency: %w", err)
	}
	async, err := strconv.ParseUint(f[6], 10, 1)
	if err != nil {
		return r, fmt.Errorf("async: %w", err)
	}
	r = Request{
		Arrival: fromMicros(arr),
		Device:  uint32(dev),
		LBA:     lba,
		Sectors: uint32(sec),
		Op:      op,
		Latency: fromMicros(lat),
		Async:   async == 1,
	}
	return r, nil
}

func micros(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }
func fromMicros(us float64) time.Duration {
	return time.Duration(us * float64(time.Microsecond))
}

// ReadMSRC reads the Microsoft Research Cambridge CSV format:
//
//	Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime
//
// Timestamp and ResponseTime are Windows filetime ticks (100 ns units);
// Offset and Size are bytes. Arrivals are rebased so the first request
// is at zero. Response times populate Latency and mark the trace
// TsdevKnown.
func ReadMSRC(r io.Reader) (*Trace, error) {
	t := &Trace{Set: "MSRC", TsdevKnown: true}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var base int64
	first := true
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Split(line, ",")
		if len(f) != 7 {
			return nil, fmt.Errorf("trace: msrc line %d: want 7 fields, got %d", lineno, len(f))
		}
		ts, err := strconv.ParseInt(f[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: msrc line %d timestamp: %w", lineno, err)
		}
		if first {
			base = ts
			t.Workload = f[1]
			t.Name = f[1]
			first = false
		}
		disk, err := strconv.ParseUint(f[2], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("trace: msrc line %d disk: %w", lineno, err)
		}
		op, err := ParseOp(f[3])
		if err != nil {
			return nil, fmt.Errorf("trace: msrc line %d: %w", lineno, err)
		}
		off, err := strconv.ParseUint(f[4], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: msrc line %d offset: %w", lineno, err)
		}
		size, err := strconv.ParseUint(f[5], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: msrc line %d size: %w", lineno, err)
		}
		resp, err := strconv.ParseInt(f[6], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: msrc line %d response: %w", lineno, err)
		}
		sectors := uint32((size + SectorSize - 1) / SectorSize)
		if sectors == 0 {
			sectors = 1
		}
		t.Requests = append(t.Requests, Request{
			Arrival: time.Duration(ts-base) * 100, // 100ns ticks
			Device:  uint32(disk),
			LBA:     off / SectorSize,
			Sectors: sectors,
			Op:      op,
			Latency: time.Duration(resp) * 100,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	t.Sort()
	return t, nil
}

// ReadSPC reads the SPC-1 ASCII trace format used by several public
// repositories (including parts of the UMass corpus):
//
//	ASU,LBA,Size,Opcode,Timestamp
//
// LBA is in sectors, Size in bytes, Opcode R/W, Timestamp fractional
// seconds. No completion information is available (TsdevKnown=false).
func ReadSPC(r io.Reader) (*Trace, error) {
	t := &Trace{TsdevKnown: false}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Split(line, ",")
		if len(f) < 5 {
			return nil, fmt.Errorf("trace: spc line %d: want 5 fields, got %d", lineno, len(f))
		}
		asu, err := strconv.ParseUint(strings.TrimSpace(f[0]), 10, 32)
		if err != nil {
			return nil, fmt.Errorf("trace: spc line %d asu: %w", lineno, err)
		}
		lba, err := strconv.ParseUint(strings.TrimSpace(f[1]), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: spc line %d lba: %w", lineno, err)
		}
		size, err := strconv.ParseUint(strings.TrimSpace(f[2]), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: spc line %d size: %w", lineno, err)
		}
		op, err := ParseOp(strings.TrimSpace(f[3]))
		if err != nil {
			return nil, fmt.Errorf("trace: spc line %d: %w", lineno, err)
		}
		sec, err := strconv.ParseFloat(strings.TrimSpace(f[4]), 64)
		if err != nil {
			return nil, fmt.Errorf("trace: spc line %d timestamp: %w", lineno, err)
		}
		sectors := uint32((size + SectorSize - 1) / SectorSize)
		if sectors == 0 {
			sectors = 1
		}
		t.Requests = append(t.Requests, Request{
			Arrival: time.Duration(sec * float64(time.Second)),
			Device:  uint32(asu),
			LBA:     lba,
			Sectors: sectors,
			Op:      op,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	t.Sort()
	return t, nil
}

// binaryMagic identifies the compact binary trace format.
var binaryMagic = [4]byte{'T', 'T', 'R', '1'}

// WriteBinary writes t in the compact binary format: a magic header,
// metadata strings, the request count, then fixed-width little-endian
// request records. The format is ~3x smaller than CSV and much faster
// to parse, which matters for the 577-trace corpus sweeps.
func WriteBinary(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(binaryMagic[:]); err != nil {
		return err
	}
	writeString := func(s string) {
		var lenbuf [2]byte
		binary.LittleEndian.PutUint16(lenbuf[:], uint16(len(s)))
		bw.Write(lenbuf[:])
		bw.WriteString(s)
	}
	writeString(t.Name)
	writeString(t.Workload)
	writeString(t.Set)
	flags := byte(0)
	if t.TsdevKnown {
		flags |= 1
	}
	bw.WriteByte(flags)
	var cnt [8]byte
	binary.LittleEndian.PutUint64(cnt[:], uint64(len(t.Requests)))
	bw.Write(cnt[:])
	var rec [34]byte
	for _, r := range t.Requests {
		binary.LittleEndian.PutUint64(rec[0:], uint64(r.Arrival))
		binary.LittleEndian.PutUint32(rec[8:], r.Device)
		binary.LittleEndian.PutUint64(rec[12:], r.LBA)
		binary.LittleEndian.PutUint32(rec[20:], r.Sectors)
		rec[24] = byte(r.Op)
		binary.LittleEndian.PutUint64(rec[25:], uint64(r.Latency))
		if r.Async {
			rec[33] = 1
		} else {
			rec[33] = 0
		}
		if _, err := bw.Write(rec[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary reads a trace written by WriteBinary.
func ReadBinary(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, err
	}
	if magic != binaryMagic {
		return nil, fmt.Errorf("trace: bad magic %q", magic)
	}
	readString := func() (string, error) {
		var lenbuf [2]byte
		if _, err := io.ReadFull(br, lenbuf[:]); err != nil {
			return "", err
		}
		buf := make([]byte, binary.LittleEndian.Uint16(lenbuf[:]))
		if _, err := io.ReadFull(br, buf); err != nil {
			return "", err
		}
		return string(buf), nil
	}
	t := &Trace{}
	var err error
	if t.Name, err = readString(); err != nil {
		return nil, err
	}
	if t.Workload, err = readString(); err != nil {
		return nil, err
	}
	if t.Set, err = readString(); err != nil {
		return nil, err
	}
	flags, err := br.ReadByte()
	if err != nil {
		return nil, err
	}
	t.TsdevKnown = flags&1 != 0
	var cnt [8]byte
	if _, err := io.ReadFull(br, cnt[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint64(cnt[:])
	const maxRequests = 1 << 31
	if n > maxRequests {
		return nil, fmt.Errorf("trace: implausible request count %d", n)
	}
	t.Requests = make([]Request, 0, n)
	var rec [34]byte
	for i := uint64(0); i < n; i++ {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return nil, fmt.Errorf("trace: truncated at record %d: %w", i, err)
		}
		t.Requests = append(t.Requests, Request{
			Arrival: time.Duration(binary.LittleEndian.Uint64(rec[0:])),
			Device:  binary.LittleEndian.Uint32(rec[8:]),
			LBA:     binary.LittleEndian.Uint64(rec[12:]),
			Sectors: binary.LittleEndian.Uint32(rec[20:]),
			Op:      Op(rec[24]),
			Latency: time.Duration(binary.LittleEndian.Uint64(rec[25:])),
			Async:   rec[33] == 1,
		})
	}
	return t, nil
}
