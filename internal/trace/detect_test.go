package trace

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

const (
	msrcSample = `128166372003061629,web,0,Write,8192,4096,501
128166372002869395,web,0,Read,0,4096,1003
128166372013321843,web,1,Write,12288,8192,702
`
	spcSample = `0,20941264,8192,W,0.000000
0,20939840,8192,W,0.001020
1,3072,1024,R,0.000511
`
)

// TestDetectFormat detects each supported format from real encoder
// output or corpus-shaped samples.
func TestDetectFormat(t *testing.T) {
	var csvBuf, binBuf bytes.Buffer
	if err := WriteCSV(&csvBuf, streamSample()); err != nil {
		t.Fatal(err)
	}
	if err := WriteBinary(&binBuf, streamSample()); err != nil {
		t.Fatal(err)
	}
	// A headerless native CSV body (hand-written data only).
	native := "12.500,0,100,8,R,90.000,0\n13.000,1,108,16,W,250.000,1\n"

	cases := []struct {
		name, want string
		head       []byte
	}{
		{"csv-header", "csv", csvBuf.Bytes()},
		{"csv-bare", "csv", []byte(native)},
		{"bin", "bin", binBuf.Bytes()},
		{"msrc", "msrc", []byte(msrcSample)},
		{"spc", "spc", []byte(spcSample)},
		{"spc-extra-fields", "spc", []byte("0,20941264,8192,W,0.000000,extra\n")},
		{"leading-comments", "msrc", []byte("# exported\n\n" + msrcSample)},
	}
	for _, c := range cases {
		got, err := DetectFormat(c.head)
		if err != nil {
			t.Errorf("%s: %v", c.name, err)
			continue
		}
		if got != c.want {
			t.Errorf("%s: got %q want %q", c.name, got, c.want)
		}
	}
}

// TestDetectFormatErrors rejects undecidable input.
func TestDetectFormatErrors(t *testing.T) {
	for name, head := range map[string][]byte{
		"empty":        nil,
		"comments":     []byte("# nothing but comments\n"),
		"garbage":      []byte("hello,world\n"),
		"binary-noise": {0x7f, 'E', 'L', 'F', 0, 0, 0, 0},
	} {
		if got, err := DetectFormat(head); err == nil {
			t.Errorf("%s: detected %q, want error", name, got)
		}
	}
}

// TestSniffFormatReplaysBytes checks that decoding after a sniff sees
// the full stream, including inputs shorter and longer than the sniff
// window.
func TestSniffFormatReplaysBytes(t *testing.T) {
	orig := streamSample()
	var buf bytes.Buffer
	if err := WriteCSV(&buf, orig); err != nil {
		t.Fatal(err)
	}
	// Pad with trailing comment lines so the input exceeds SniffLen
	// and the decode must continue past the sniffed prefix.
	pad := strings.Repeat("# padding comment line to push the file past the sniff window\n", SniffLen/60+1)
	data := append(buf.Bytes(), []byte(pad)...)

	format, rd, err := SniffFormat(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if format != "csv" {
		t.Fatalf("format: %q", format)
	}
	got, err := ReadFormat(format, rd)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Requests, orig.Requests) {
		t.Fatal("sniffed decode lost or reordered requests")
	}
	if got.Meta() != orig.Meta() {
		t.Fatalf("sniffed decode meta: %+v", got.Meta())
	}
}

// TestDetectFile detects from a file head.
func TestDetectFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.bin")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteBinary(f, streamSample()); err != nil {
		t.Fatal(err)
	}
	f.Close()
	got, err := DetectFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != "bin" {
		t.Fatalf("got %q", got)
	}
	if _, err := DetectFile(filepath.Join(dir, "missing")); err == nil {
		t.Fatal("missing file: want error")
	}
}
