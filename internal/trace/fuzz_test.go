package trace

import (
	"bytes"
	"io"
	"testing"
)

// FuzzDecodeCSV drives the native CSV decoder over arbitrary bytes: it
// must terminate with a clean EOF or a parse error, never panic.
func FuzzDecodeCSV(f *testing.F) {
	var buf bytes.Buffer
	_ = WriteCSV(&buf, streamSample())
	f.Add(buf.Bytes())
	f.Add([]byte("# tracetracker name=a workload=b set=c tsdev_known=true\n"))
	f.Add([]byte("12.500,0,100,8,R,90.000,0\n"))
	f.Add([]byte("1,2,3\n"))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, data []byte) {
		dec := NewCSVDecoder(bytes.NewReader(data))
		for {
			_, err := dec.Next()
			if err != nil {
				if err != io.EOF && err.Error() == "" {
					t.Fatal("empty error message")
				}
				return
			}
		}
	})
}

// FuzzDetectFormat checks the sniffer never panics and only reports
// formats a decoder actually exists for.
func FuzzDetectFormat(f *testing.F) {
	var csvBuf, binBuf bytes.Buffer
	_ = WriteCSV(&csvBuf, streamSample())
	_ = WriteBinary(&binBuf, streamSample())
	f.Add(csvBuf.Bytes())
	f.Add(binBuf.Bytes())
	f.Add([]byte(msrcSample))
	f.Add([]byte(spcSample))
	f.Add([]byte("#\n#\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		format, err := DetectFormat(data)
		if err != nil {
			return
		}
		if _, derr := NewDecoder(format, bytes.NewReader(data)); derr != nil {
			t.Fatalf("detected %q but no decoder: %v", format, derr)
		}
	})
}

// FuzzSplitSegments is the differential lock on the parallel decode
// pipeline: for arbitrary bytes, every format, and 1-4 workers, both
// the file-backed and the streamed parallel decoders must deliver
// exactly the records the sequential decoder delivers, agree on
// success vs failure, and agree on the metadata of clean streams. The
// seeds cover the boundary hazards: CRLF endings, comment runs, late
// metadata headers, and truncated binary records.
func FuzzSplitSegments(f *testing.F) {
	var csvBuf, binBuf bytes.Buffer
	_ = WriteCSV(&csvBuf, streamSample())
	_ = WriteBinary(&binBuf, streamSample())
	f.Add(csvBuf.Bytes(), uint8(4))
	f.Add(binBuf.Bytes(), uint8(3))
	f.Add(binBuf.Bytes()[:binBuf.Len()-5], uint8(2)) // truncated bin record
	f.Add([]byte("12.5,0,100,8,R,90.0,0\r\n13.5,0,108,8,W,80.0,1\r\n"), uint8(2))
	f.Add([]byte("# c1\n# c2\n\n# tracetracker name=a workload=b set=c tsdev_known=true\n1,0,1,1,R,1,0\n"), uint8(3))
	f.Add([]byte("1,0,1,1,R,1,0\n# tracetracker name=late workload=b set=c tsdev_known=true\n2,0,2,1,W,1,0\n"), uint8(2))
	f.Add([]byte(msrcSample), uint8(4))
	f.Add([]byte(spcSample), uint8(2))
	f.Add([]byte("128166372003061629,hm,1,Read,2096128,512,80\n# run\n128166372013061629,hm,1,Write,2096640,512,81\n"), uint8(3))
	f.Fuzz(func(t *testing.T, data []byte, workers uint8) {
		if len(data) > 1<<20 {
			return
		}
		w := 1 + int(workers%4)
		for _, format := range []string{"csv", "bin", "msrc", "spc"} {
			seq, err := NewDecoder(format, bytes.NewReader(data))
			if err != nil {
				t.Fatalf("%s: sequential constructor: %v", format, err)
			}
			wantReqs, wantMeta, wantErr := fuzzCollect(seq)

			pd := NewParallelDecoder(bytes.NewReader(data), int64(len(data)), format, w)
			gotReqs, gotMeta, gotErr := fuzzCollect(pd)
			pd.Close()
			fuzzCompare(t, format+"/file", wantReqs, wantMeta, wantErr, gotReqs, gotMeta, gotErr)

			sd, err := NewStreamParallelDecoder(bytes.NewReader(data), format, w)
			if err != nil {
				t.Fatalf("%s: stream constructor: %v", format, err)
			}
			gotReqs, gotMeta, gotErr = fuzzCollect(sd)
			sd.Close()
			fuzzCompare(t, format+"/stream", wantReqs, wantMeta, wantErr, gotReqs, gotMeta, gotErr)
		}
	})
}

func fuzzCollect(dec Decoder) ([]Request, Meta, error) {
	var out []Request
	for {
		r, err := dec.Next()
		if err == io.EOF {
			return out, dec.Meta(), nil
		}
		if err != nil {
			return out, dec.Meta(), err
		}
		out = append(out, r)
		if len(out) > 1<<20 {
			return out, dec.Meta(), nil
		}
	}
}

func fuzzCompare(t *testing.T, path string, wantReqs []Request, wantMeta Meta, wantErr error, gotReqs []Request, gotMeta Meta, gotErr error) {
	t.Helper()
	if (wantErr == nil) != (gotErr == nil) {
		t.Fatalf("%s: sequential err %v, parallel err %v", path, wantErr, gotErr)
	}
	if len(gotReqs) != len(wantReqs) {
		t.Fatalf("%s: sequential delivered %d records, parallel %d (seq err %v, par err %v)",
			path, len(wantReqs), len(gotReqs), wantErr, gotErr)
	}
	for i := range wantReqs {
		if wantReqs[i] != gotReqs[i] {
			t.Fatalf("%s: record %d differs: seq %+v par %+v", path, i, wantReqs[i], gotReqs[i])
		}
	}
	if wantErr == nil && gotMeta != wantMeta {
		t.Fatalf("%s: meta differs: seq %+v par %+v", path, wantMeta, gotMeta)
	}
}
