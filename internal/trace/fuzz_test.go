package trace

import (
	"bytes"
	"io"
	"testing"
)

// FuzzDecodeCSV drives the native CSV decoder over arbitrary bytes: it
// must terminate with a clean EOF or a parse error, never panic.
func FuzzDecodeCSV(f *testing.F) {
	var buf bytes.Buffer
	_ = WriteCSV(&buf, streamSample())
	f.Add(buf.Bytes())
	f.Add([]byte("# tracetracker name=a workload=b set=c tsdev_known=true\n"))
	f.Add([]byte("12.500,0,100,8,R,90.000,0\n"))
	f.Add([]byte("1,2,3\n"))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, data []byte) {
		dec := NewCSVDecoder(bytes.NewReader(data))
		for {
			_, err := dec.Next()
			if err != nil {
				if err != io.EOF && err.Error() == "" {
					t.Fatal("empty error message")
				}
				return
			}
		}
	})
}

// FuzzDetectFormat checks the sniffer never panics and only reports
// formats a decoder actually exists for.
func FuzzDetectFormat(f *testing.F) {
	var csvBuf, binBuf bytes.Buffer
	_ = WriteCSV(&csvBuf, streamSample())
	_ = WriteBinary(&binBuf, streamSample())
	f.Add(csvBuf.Bytes())
	f.Add(binBuf.Bytes())
	f.Add([]byte(msrcSample))
	f.Add([]byte(spcSample))
	f.Add([]byte("#\n#\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		format, err := DetectFormat(data)
		if err != nil {
			return
		}
		if _, derr := NewDecoder(format, bytes.NewReader(data)); derr != nil {
			t.Fatalf("detected %q but no decoder: %v", format, derr)
		}
	})
}
