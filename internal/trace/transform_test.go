package trace

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func us(n int) time.Duration { return time.Duration(n) * time.Microsecond }

func TestMergeInterleaves(t *testing.T) {
	a := &Trace{Name: "a", TsdevKnown: true, Requests: []Request{
		{Arrival: us(0), Device: 0, LBA: 1, Sectors: 8},
		{Arrival: us(200), Device: 0, LBA: 2, Sectors: 8},
	}}
	b := &Trace{Name: "b", TsdevKnown: true, Requests: []Request{
		{Arrival: us(100), Device: 1, LBA: 3, Sectors: 8},
	}}
	m := Merge(a, b)
	if m.Len() != 3 {
		t.Fatalf("len = %d", m.Len())
	}
	if m.Requests[1].Device != 1 {
		t.Fatalf("interleave wrong: %+v", m.Requests)
	}
	if m.Name != "a" || !m.TsdevKnown {
		t.Fatalf("metadata wrong: %+v", m)
	}
	// TsdevKnown is the conjunction.
	b.TsdevKnown = false
	if Merge(a, b).TsdevKnown {
		t.Fatal("merge of unknown should be unknown")
	}
	if Merge().Len() != 0 {
		t.Fatal("empty merge should be empty")
	}
}

func TestSplitByDevice(t *testing.T) {
	tr := &Trace{Name: "n", Requests: []Request{
		{Arrival: us(0), Device: 0, LBA: 1, Sectors: 8},
		{Arrival: us(1), Device: 2, LBA: 2, Sectors: 8},
		{Arrival: us(2), Device: 0, LBA: 3, Sectors: 8},
	}}
	parts := SplitByDevice(tr)
	if len(parts) != 2 {
		t.Fatalf("parts = %d", len(parts))
	}
	if parts[0].Len() != 2 || parts[2].Len() != 1 {
		t.Fatalf("split sizes wrong")
	}
	if parts[0].Name != "n.dev0" {
		t.Fatalf("name = %q", parts[0].Name)
	}
}

func TestSplitMergeRoundTrip(t *testing.T) {
	tr := &Trace{Name: "x", Requests: []Request{
		{Arrival: us(0), Device: 1, LBA: 1, Sectors: 8},
		{Arrival: us(5), Device: 0, LBA: 2, Sectors: 8},
		{Arrival: us(9), Device: 1, LBA: 3, Sectors: 8},
	}}
	parts := SplitByDevice(tr)
	var list []*Trace
	for _, p := range parts {
		list = append(list, p)
	}
	m := Merge(list...)
	if m.Len() != tr.Len() {
		t.Fatal("requests lost")
	}
	for i := range m.Requests {
		if m.Requests[i].Arrival != tr.Requests[i].Arrival {
			t.Fatal("order lost")
		}
	}
}

func TestWindow(t *testing.T) {
	tr := &Trace{Name: "w", Requests: []Request{
		{Arrival: us(0), LBA: 1, Sectors: 8},
		{Arrival: us(100), LBA: 2, Sectors: 8},
		{Arrival: us(200), LBA: 3, Sectors: 8},
		{Arrival: us(300), LBA: 4, Sectors: 8},
	}}
	w := Window(tr, us(100), us(300))
	if w.Len() != 2 {
		t.Fatalf("window len = %d", w.Len())
	}
	if w.Requests[0].Arrival != 0 || w.Requests[1].Arrival != us(100) {
		t.Fatalf("rebase wrong: %+v", w.Requests)
	}
	if w.Requests[0].LBA != 2 {
		t.Fatal("wrong requests selected")
	}
	if Window(tr, us(500), us(600)).Len() != 0 {
		t.Fatal("out-of-range window should be empty")
	}
}

func TestRemapLBA(t *testing.T) {
	tr := &Trace{Requests: []Request{
		{Arrival: 0, LBA: 1000, Sectors: 8},
		{Arrival: 1, LBA: 1096, Sectors: 8},  // wraps to 72..80
		{Arrival: 2, LBA: 1020, Sectors: 16}, // end would exceed: clamped
	}}
	m := RemapLBA(tr, 1024)
	if m.Requests[0].LBA != 1000 {
		t.Fatalf("r0 remapped to %d", m.Requests[0].LBA)
	}
	if m.Requests[1].LBA != 72 {
		t.Fatalf("r1 remapped to %d", m.Requests[1].LBA)
	}
	if m.Requests[2].End() > 1024 {
		t.Fatalf("r2 exceeds capacity: %+v", m.Requests[2])
	}
	// Oversized request falls back to zero.
	big := RemapLBA(&Trace{Requests: []Request{{LBA: 5, Sectors: 4096}}}, 1024)
	if big.Requests[0].LBA != 0 {
		t.Fatal("oversized request should map to 0")
	}
	// Zero capacity is identity.
	if RemapLBA(tr, 0).Requests[1].LBA != 1096 {
		t.Fatal("zero capacity should be identity")
	}
	// Original untouched.
	if tr.Requests[1].LBA != 1096 {
		t.Fatal("RemapLBA mutated input")
	}
}

func TestScaleTime(t *testing.T) {
	tr := &Trace{Requests: []Request{
		{Arrival: us(100), LBA: 1, Sectors: 8, Latency: us(10)},
	}}
	s := ScaleTime(tr, 0.5)
	if s.Requests[0].Arrival != us(50) || s.Requests[0].Latency != us(5) {
		t.Fatalf("scaled: %+v", s.Requests[0])
	}
	if ScaleTime(tr, -1).Requests[0].Arrival != us(100) {
		t.Fatal("non-positive factor should be identity")
	}
}

func TestConcat(t *testing.T) {
	a := &Trace{TsdevKnown: true, Requests: []Request{
		{Arrival: us(0), LBA: 1, Sectors: 8},
		{Arrival: us(100), LBA: 2, Sectors: 8},
	}}
	b := &Trace{TsdevKnown: true, Requests: []Request{
		{Arrival: us(50), LBA: 3, Sectors: 8},
		{Arrival: us(70), LBA: 4, Sectors: 8},
	}}
	c := Concat(a, b, us(10))
	if c.Len() != 4 {
		t.Fatalf("len = %d", c.Len())
	}
	// b starts at 100+10 = 110, rebased from 50.
	if c.Requests[2].Arrival != us(110) || c.Requests[3].Arrival != us(130) {
		t.Fatalf("concat arrivals: %+v", c.Requests[2:])
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	// Concat onto empty rebases b to zero (no predecessor, no gap).
	e := Concat(&Trace{}, b, us(10))
	if e.Requests[0].Arrival != 0 {
		t.Fatalf("empty concat arrival: %v", e.Requests[0].Arrival)
	}
}

func TestBlktraceRoundTrip(t *testing.T) {
	orig := &Trace{Name: "bt", Requests: []Request{
		{Arrival: 0, Device: 0, LBA: 1000, Sectors: 8, Op: Read, Latency: us(150)},
		{Arrival: us(500), Device: 1, LBA: 2000, Sectors: 64, Op: Write, Latency: us(900)},
		{Arrival: us(800), Device: 0, LBA: 3000, Sectors: 8, Op: Read}, // no completion
	}}
	var buf bytes.Buffer
	if err := WriteBlktrace(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBlktrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 3 {
		t.Fatalf("len = %d", got.Len())
	}
	if !got.TsdevKnown {
		t.Fatal("completions present: TsdevKnown expected")
	}
	for i := range orig.Requests {
		o, g := orig.Requests[i], got.Requests[i]
		if g.Device != o.Device || g.LBA != o.LBA || g.Sectors != o.Sectors || g.Op != o.Op {
			t.Fatalf("request %d identity lost: %+v vs %+v", i, g, o)
		}
		// Timestamps survive at nanosecond resolution.
		if d := g.Arrival - o.Arrival; d < -time.Microsecond || d > time.Microsecond {
			t.Fatalf("request %d arrival drift %v", i, d)
		}
		if d := g.Latency - o.Latency; d < -time.Microsecond || d > time.Microsecond {
			t.Fatalf("request %d latency drift %v (%v vs %v)", i, d, g.Latency, o.Latency)
		}
	}
}

func TestBlktraceSkipsNoise(t *testing.T) {
	in := strings.Join([]string{
		"8,0    0        1     0.000000000  0  Q   R 100 + 8 [app]", // queue event: skipped
		"8,0    0        2     0.000000000  0  D   R 100 + 8 [app]",
		"CPU0 (app):",             // summary line: skipped
		" Reads Queued:  1, 4KiB", // summary line: skipped
		"8,0    0        3     0.000100000  0  C   R 100 + 8 [0]",
		"8,0    0        4     0.000200000  0  C   R 999 + 8 [0]", // orphan completion
	}, "\n")
	got, err := ReadBlktrace(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 {
		t.Fatalf("len = %d, want 1", got.Len())
	}
	if got.Requests[0].Latency != 100*time.Microsecond {
		t.Fatalf("latency = %v", got.Requests[0].Latency)
	}
}

func TestBlktraceFIFOMatching(t *testing.T) {
	// Two identical outstanding requests: completions must match in
	// FIFO order.
	in := strings.Join([]string{
		"8,0    0 1 0.000000000  0  D   W 100 + 8 [x]",
		"8,0    0 2 0.001000000  0  D   W 100 + 8 [x]",
		"8,0    0 3 0.002000000  0  C   W 100 + 8 [0]",
		"8,0    0 4 0.005000000  0  C   W 100 + 8 [0]",
	}, "\n")
	got, err := ReadBlktrace(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if got.Requests[0].Latency != 2*time.Millisecond {
		t.Fatalf("first latency = %v", got.Requests[0].Latency)
	}
	if got.Requests[1].Latency != 4*time.Millisecond {
		t.Fatalf("second latency = %v", got.Requests[1].Latency)
	}
}

// Property: Window(0, end+1) then rebasing is the identity, and
// Merge(SplitByDevice(t)) preserves every request, for random traces.
func TestTransformProperties(t *testing.T) {
	rng := func(seed int64) *Trace {
		tr := &Trace{Name: "prop"}
		arr := time.Duration(0)
		s := seed
		next := func(mod int64) int64 {
			s = s*6364136223846793005 + 1442695040888963407
			v := s >> 33
			if v < 0 {
				v = -v
			}
			return v % mod
		}
		n := int(next(200)) + 2
		for i := 0; i < n; i++ {
			arr += time.Duration(next(1e9))
			tr.Requests = append(tr.Requests, Request{
				Arrival: arr,
				Device:  uint32(next(3)),
				LBA:     uint64(next(1 << 30)),
				Sectors: uint32(next(256)) + 1,
				Op:      Op(next(2)),
			})
		}
		return tr
	}
	for seed := int64(1); seed <= 25; seed++ {
		tr := rng(seed)
		// Full-range window preserves count and relative gaps.
		w := Window(tr, 0, tr.Requests[len(tr.Requests)-1].Arrival+1)
		if w.Len() != tr.Len() {
			t.Fatalf("seed %d: window lost requests", seed)
		}
		for i := 1; i < tr.Len(); i++ {
			wantGap := tr.Requests[i].Arrival - tr.Requests[i-1].Arrival
			gotGap := w.Requests[i].Arrival - w.Requests[i-1].Arrival
			if wantGap != gotGap {
				t.Fatalf("seed %d: window changed gap %d", seed, i)
			}
		}
		// Split+merge preserves the multiset of requests and order.
		parts := SplitByDevice(tr)
		var list []*Trace
		for _, p := range parts {
			list = append(list, p)
		}
		m := Merge(list...)
		if m.Len() != tr.Len() {
			t.Fatalf("seed %d: split+merge lost requests", seed)
		}
		for i := range m.Requests {
			if m.Requests[i].Arrival != tr.Requests[i].Arrival {
				t.Fatalf("seed %d: split+merge reordered", seed)
			}
		}
		// RemapLBA keeps every request within capacity.
		const cap = 1 << 20
		r := RemapLBA(tr, cap)
		for i, req := range r.Requests {
			if req.End() > cap && uint64(req.Sectors) < cap {
				t.Fatalf("seed %d: request %d beyond capacity", seed, i)
			}
		}
	}
}
