package trace

// Codec micro-benchmarks: per-format decode and encode throughput on
// a synthetic in-memory trace. cmd/tracebench measures the same paths
// end-to-end from files; these stay close to the codec for profiling.

import (
	"bytes"
	"fmt"
	"io"
	"testing"
	"time"
)

// benchTrace synthesizes a deterministic n-request trace exercising
// varied field widths.
func benchTrace(n int) *Trace {
	t := &Trace{Name: "bench", Workload: "w", Set: "FIU", TsdevKnown: true}
	t.Requests = make([]Request, n)
	for i := range t.Requests {
		t.Requests[i] = Request{
			Arrival: time.Duration(i) * 37 * time.Microsecond,
			Device:  uint32(i % 4),
			LBA:     uint64(i*8) % (1 << 30),
			Sectors: uint32(8 + (i%4)*8),
			Op:      Op(i % 2),
			Latency: time.Duration(90+i%50) * time.Microsecond,
			Async:   i%5 == 0,
		}
	}
	return t
}

func benchDecode(b *testing.B, format string, encode func(io.Writer, *Trace) error) {
	tr := benchTrace(200_000)
	var buf bytes.Buffer
	if err := encode(&buf, tr); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dec, err := NewDecoder(format, bytes.NewReader(data))
		if err != nil {
			b.Fatal(err)
		}
		n := 0
		var batch [512]Request
		for {
			k, err := DecodeBatch(dec, batch[:])
			n += k
			if err == io.EOF {
				break
			}
			if err != nil {
				b.Fatal(err)
			}
		}
		if n != tr.Len() {
			b.Fatalf("decoded %d of %d records", n, tr.Len())
		}
	}
}

func BenchmarkDecodeCSV(b *testing.B) { benchDecode(b, "csv", WriteCSV) }
func BenchmarkDecodeBin(b *testing.B) { benchDecode(b, "bin", WriteBinary) }

func BenchmarkDecodeMSRC(b *testing.B) {
	benchDecode(b, "msrc", writeMSRCStyle)
}

func BenchmarkDecodeSPC(b *testing.B) {
	benchDecode(b, "spc", writeSPCStyle)
}

// writeMSRCStyle renders t as an MSRC-format file
// (Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime; 100ns
// ticks and byte offsets).
func writeMSRCStyle(w io.Writer, t *Trace) error {
	var buf bytes.Buffer
	for _, r := range t.Requests {
		op := "Read"
		if r.Op == Write {
			op = "Write"
		}
		fmt.Fprintf(&buf, "%d,bench,%d,%s,%d,%d,%d\n",
			r.Arrival.Nanoseconds()/100, r.Device, op,
			r.LBA*SectorSize, uint64(r.Sectors)*SectorSize,
			r.Latency.Nanoseconds()/100)
	}
	_, err := w.Write(buf.Bytes())
	return err
}

// writeSPCStyle renders t as an SPC-1 ASCII file
// (ASU,LBA,Size,Opcode,Timestamp; byte sizes, fractional seconds).
func writeSPCStyle(w io.Writer, t *Trace) error {
	var buf bytes.Buffer
	for _, r := range t.Requests {
		fmt.Fprintf(&buf, "%d,%d,%d,%s,%.6f\n",
			r.Device, r.LBA, uint64(r.Sectors)*SectorSize, r.Op, r.Arrival.Seconds())
	}
	_, err := w.Write(buf.Bytes())
	return err
}

func benchEncode(b *testing.B, format string) {
	tr := benchTrace(200_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc, err := NewEncoder(format, io.Discard, "/dev/bench")
		if err != nil {
			b.Fatal(err)
		}
		if err := EncodeTrace(enc, tr); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeCSV(b *testing.B)      { benchEncode(b, "csv") }
func BenchmarkEncodeBin(b *testing.B)      { benchEncode(b, "bin") }
func BenchmarkEncodeBlktrace(b *testing.B) { benchEncode(b, "blktrace") }
func BenchmarkEncodeFIO(b *testing.B)      { benchEncode(b, "fio") }
