package trace

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestFIOLogRoundTrip(t *testing.T) {
	orig := &Trace{Name: "f", Requests: []Request{
		{Arrival: 0, LBA: 8, Sectors: 8, Op: Read},
		{Arrival: 1500 * time.Microsecond, LBA: 64, Sectors: 16, Op: Write},
		{Arrival: 1500 * time.Microsecond, LBA: 128, Sectors: 8, Op: Read}, // zero gap: no wait line
	}}
	var buf bytes.Buffer
	if err := WriteFIOLog(&buf, orig, "/dev/sdb"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "fio version 2 iolog\n") {
		t.Fatalf("missing header:\n%s", out)
	}
	if !strings.Contains(out, "/dev/sdb wait 1500") {
		t.Fatalf("missing wait line:\n%s", out)
	}
	if !strings.Contains(out, "/dev/sdb write 32768 8192") {
		t.Fatalf("missing write line (offset 64*512, len 16*512):\n%s", out)
	}
	got, err := ReadFIOLog(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 3 {
		t.Fatalf("len = %d", got.Len())
	}
	for i := range orig.Requests {
		o, g := orig.Requests[i], got.Requests[i]
		if g.LBA != o.LBA || g.Sectors != o.Sectors || g.Op != o.Op || g.Arrival != o.Arrival {
			t.Fatalf("request %d: %+v vs %+v", i, g, o)
		}
	}
}

func TestFIOLogWaitAccumulates(t *testing.T) {
	in := strings.Join([]string{
		"fio version 2 iolog",
		"/dev/x add",
		"/dev/x open",
		"/dev/x read 0 4096",
		"/dev/x wait 100",
		"/dev/x wait 200",
		"/dev/x read 4096 4096",
		"/dev/x close",
	}, "\n")
	got, err := ReadFIOLog(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if got.Requests[1].Arrival != 300*time.Microsecond {
		t.Fatalf("arrival = %v", got.Requests[1].Arrival)
	}
}

func TestFIOLogErrors(t *testing.T) {
	bad := []string{
		"/dev/x wait",        // short wait
		"/dev/x wait abc",    // bad wait
		"/dev/x read 0",      // short io
		"/dev/x read x 4096", // bad offset
		"/dev/x write 0 x",   // bad length
	}
	for _, c := range bad {
		if _, err := ReadFIOLog(strings.NewReader(c)); err == nil {
			t.Errorf("accepted %q", c)
		}
	}
	// Unknown actions are skipped, not errors (fio emits trims etc).
	if tr, err := ReadFIOLog(strings.NewReader("/dev/x trim 0 4096")); err != nil || tr.Len() != 0 {
		t.Fatalf("trim handling: %v %d", err, tr.Len())
	}
}

func TestWriteFIOJob(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFIOJob(&buf, &Trace{Name: "n"}, "trace.log", "/dev/nvme0n1"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"[replay]", "read_iolog=trace.log", "filename=/dev/nvme0n1", `"n"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}
