package trace

// Text-format parse errors carry their line position as data, not just
// prose: sequential decoders count lines over the whole input, while
// parallel segment decoders count within their segment — so the
// parallel merge shifts each surfaced error by the lines consumed
// before its segment and the rendered message matches the sequential
// decoder position-for-position (locked by TestParallelDecodeErrors).

import (
	"errors"
	"fmt"
	"strconv"
)

// lineError is a text parse error at a 1-based line position within
// the decoder's scope. Error renders "trace: <kind> <pos><rest>".
type lineError struct {
	kind  string // "line", "msrc line" or "spc line"
	pos   int
	rest  string // rendered remainder, beginning with its separator
	cause error  // wrapped cause, may be nil
}

func (e *lineError) Error() string {
	return "trace: " + e.kind + " " + strconv.Itoa(e.pos) + e.rest
}

func (e *lineError) Unwrap() error { return e.cause }

// lineErrf builds a lineError; format/args render the remainder after
// the position, and cause stays unwrappable (errors.Is/As).
func lineErrf(kind string, pos int, cause error, format string, args ...any) *lineError {
	return &lineError{kind: kind, pos: pos, rest: fmt.Sprintf(format, args...), cause: cause}
}

// shiftLine returns err with its line position advanced by base input
// lines; errors without a line position pass through unchanged.
func shiftLine(err error, base int) error {
	if base == 0 {
		return err
	}
	var le *lineError
	if errors.As(err, &le) {
		shifted := *le
		shifted.pos += base
		return &shifted
	}
	return err
}

// lineCounter is implemented by the text decoders so the parallel
// merge can account each drained segment's consumed lines.
type lineCounter interface{ lines() int }
