// Package trace defines the block-trace data model every stage of the
// TraceTracker pipeline consumes and produces, together with readers
// and writers for the on-disk formats the public trace corpora use
// (native CSV, MSRC-style CSV, SPC-1 ASCII) and a compact binary format
// for large reconstructed traces.
//
// A trace is an ordered sequence of block-layer requests. Timestamps
// are offsets from the start of the trace, stored as time.Duration
// (nanosecond resolution, which subsumes the microsecond resolution of
// every public corpus).
package trace

import (
	"errors"
	"fmt"
	"sort"
	"time"
)

// SectorSize is the logical block size all corpora use.
const SectorSize = 512

// Op is the I/O operation type of a block request.
type Op uint8

const (
	// Read transfers data from the device to the host.
	Read Op = iota
	// Write transfers data from the host to the device.
	Write
)

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o {
	case Read:
		return "R"
	case Write:
		return "W"
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

// ParseOp converts the spellings found in public corpora ("R", "Read",
// "r", "0" / "W", "Write", "w", "1") into an Op.
func ParseOp(s string) (Op, error) {
	switch s {
	case "R", "r", "Read", "READ", "read", "0":
		return Read, nil
	case "W", "w", "Write", "WRITE", "write", "1":
		return Write, nil
	default:
		return 0, fmt.Errorf("trace: unknown op %q", s)
	}
}

// Request is one block-layer I/O instruction.
type Request struct {
	// Arrival is when the request crossed the block layer, relative to
	// the start of the trace. This is the timestamp every corpus
	// records and the one inter-arrival analysis uses.
	Arrival time.Duration
	// Device identifies the disk/LUN within multi-device traces.
	Device uint32
	// LBA is the starting logical block address in sectors.
	LBA uint64
	// Sectors is the request length in 512-byte sectors.
	Sectors uint32
	// Op is Read or Write.
	Op Op
	// Latency is the device service time when the corpus records
	// completion events (MSPS/MSRC event-tracing style). Zero means
	// unknown (FIU style). The paper calls traces with this field
	// "Tsdev known".
	Latency time.Duration
	// Async marks requests known to have been issued without waiting
	// for the previous completion. Only synthetic traces carry ground
	// truth here; reconstruction infers it for real corpora.
	Async bool
}

// Bytes returns the request size in bytes.
func (r Request) Bytes() int64 { return int64(r.Sectors) * SectorSize }

// End returns the first LBA after the request, used for sequentiality
// detection.
func (r Request) End() uint64 { return r.LBA + uint64(r.Sectors) }

// Trace is an ordered block trace plus identifying metadata.
type Trace struct {
	// Name identifies the trace (e.g. "ikki-000").
	Name string
	// Workload is the workload family ("ikki", "MSNFS", ...).
	Workload string
	// Set is the corpus ("FIU", "MSPS", "MSRC").
	Set string
	// TsdevKnown records whether per-request Latency is populated.
	TsdevKnown bool
	// Requests in non-decreasing Arrival order.
	Requests []Request
}

// Errors returned by Validate.
var (
	ErrUnsorted  = errors.New("trace: requests not sorted by arrival")
	ErrZeroSize  = errors.New("trace: request with zero sectors")
	ErrNoRequest = errors.New("trace: empty trace")
)

// Validate checks the invariants the pipeline relies on: at least one
// request, non-decreasing arrivals, non-zero sizes.
func (t *Trace) Validate() error {
	if len(t.Requests) == 0 {
		return ErrNoRequest
	}
	for i, r := range t.Requests {
		if r.Sectors == 0 {
			return fmt.Errorf("%w (index %d)", ErrZeroSize, i)
		}
		if i > 0 && r.Arrival < t.Requests[i-1].Arrival {
			return fmt.Errorf("%w (index %d)", ErrUnsorted, i)
		}
	}
	return nil
}

// Sort orders requests by arrival time (stable, preserving issue order
// of simultaneous requests).
func (t *Trace) Sort() {
	sort.SliceStable(t.Requests, func(i, j int) bool {
		return t.Requests[i].Arrival < t.Requests[j].Arrival
	})
}

// Clone deep-copies the trace.
func (t *Trace) Clone() *Trace {
	c := *t
	c.Requests = append([]Request(nil), t.Requests...)
	return &c
}

// Len returns the number of requests.
func (t *Trace) Len() int { return len(t.Requests) }

// Duration returns the arrival-span of the trace (last arrival minus
// first arrival); zero for traces with fewer than two requests.
func (t *Trace) Duration() time.Duration {
	if len(t.Requests) < 2 {
		return 0
	}
	return t.Requests[len(t.Requests)-1].Arrival - t.Requests[0].Arrival
}

// TotalBytes returns the sum of request sizes.
func (t *Trace) TotalBytes() int64 {
	var n int64
	for _, r := range t.Requests {
		n += r.Bytes()
	}
	return n
}

// AvgRequestBytes returns the mean request size in bytes (0 if empty).
func (t *Trace) AvgRequestBytes() float64 {
	if len(t.Requests) == 0 {
		return 0
	}
	return float64(t.TotalBytes()) / float64(len(t.Requests))
}

// ReadFraction returns the fraction of requests that are reads.
func (t *Trace) ReadFraction() float64 {
	if len(t.Requests) == 0 {
		return 0
	}
	reads := 0
	for _, r := range t.Requests {
		if r.Op == Read {
			reads++
		}
	}
	return float64(reads) / float64(len(t.Requests))
}

// InterArrivals returns the n-1 inter-arrival times Tintt[i] =
// Arrival[i+1] - Arrival[i]. The paper's whole inference model operates
// on this series.
func (t *Trace) InterArrivals() []time.Duration {
	if len(t.Requests) < 2 {
		return nil
	}
	out := make([]time.Duration, len(t.Requests)-1)
	for i := 1; i < len(t.Requests); i++ {
		out[i-1] = t.Requests[i].Arrival - t.Requests[i-1].Arrival
	}
	return out
}

// InterArrivalMicros returns InterArrivals converted to float64
// microseconds, the unit the paper plots everywhere.
func (t *Trace) InterArrivalMicros() []float64 {
	ia := t.InterArrivals()
	out := make([]float64, len(ia))
	for i, d := range ia {
		out[i] = float64(d) / float64(time.Microsecond)
	}
	return out
}

// SeqFlags classifies each request as sequential (true) or random
// (false). Request i is sequential when it starts exactly where the
// previous request on the same device ended; the first request seen on
// a device is random by convention. This matches the block-level
// definition the paper's grouping step uses.
func (t *Trace) SeqFlags() []bool {
	out := make([]bool, len(t.Requests))
	st := NewSeqState()
	for i, r := range t.Requests {
		out[i] = st.Flag(r)
	}
	return out
}

// SeqFraction returns the fraction of sequential requests.
func (t *Trace) SeqFraction() float64 {
	if len(t.Requests) == 0 {
		return 0
	}
	n := 0
	for _, s := range t.SeqFlags() {
		if s {
			n++
		}
	}
	return float64(n) / float64(len(t.Requests))
}

// Slice returns a shallow sub-trace covering requests [lo, hi).
func (t *Trace) Slice(lo, hi int) *Trace {
	c := *t
	c.Requests = t.Requests[lo:hi]
	return &c
}
