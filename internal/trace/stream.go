package trace

// Streaming layer: Decoder yields requests one at a time and Encoder
// consumes them one at a time, so pipelines can process traces far
// larger than memory. Every on-disk format gets a streaming
// counterpart here, and the whole-trace Read*/Write* functions in
// io.go, blktrace.go and fio.go delegate to these, so the two paths
// cannot drift apart.
//
// Decoders yield requests in file order. The MSRC and SPC corpora are
// only nearly sorted (event tracing reorders completions), so their
// whole-trace readers sort after draining; streaming callers that need
// monotonic arrivals wrap the decoder in a ReorderDecoder with a
// bounded window instead.

import (
	"bufio"
	"container/heap"
	"encoding/binary"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// Meta is the trace-level metadata that travels alongside a request
// stream: everything a Trace carries except the requests themselves.
type Meta struct {
	Name       string
	Workload   string
	Set        string
	TsdevKnown bool
}

// Meta extracts the stream metadata of a trace.
func (t *Trace) Meta() Meta {
	return Meta{Name: t.Name, Workload: t.Workload, Set: t.Set, TsdevKnown: t.TsdevKnown}
}

// applyMeta copies m into the trace's metadata fields.
func (t *Trace) applyMeta(m Meta) {
	t.Name, t.Workload, t.Set, t.TsdevKnown = m.Name, m.Workload, m.Set, m.TsdevKnown
}

// Decoder yields the requests of a trace incrementally.
type Decoder interface {
	// Next returns the next request, or io.EOF when the stream is
	// exhausted. Any other error is a parse/IO failure.
	Next() (Request, error)
	// Meta returns the metadata seen so far. Formats carry metadata in
	// a header, so Meta is complete after the first Next call (and for
	// headered formats after construction); callers that emit metadata
	// should read at least one request first.
	Meta() Meta
}

// Encoder consumes a request stream and renders one on-disk format.
type Encoder interface {
	// Begin emits the format's header. It must be called exactly once,
	// before the first Write.
	Begin(Meta) error
	// Write appends one request.
	Write(Request) error
	// Close terminates the stream and flushes buffered output. It does
	// not close the underlying writer.
	Close() error
}

// SizeHinter is implemented by decoders that know how many requests
// remain (the counted binary format); Drain uses it to preallocate.
type SizeHinter interface {
	// SizeHint returns the expected remaining request count, 0 when
	// unknown.
	SizeHint() int
}

// Drain reads dec to exhaustion and materializes a whole Trace.
func Drain(dec Decoder) (*Trace, error) {
	t := &Trace{}
	if h, ok := dec.(SizeHinter); ok {
		// The hint comes from an untrusted file header: cap the upfront
		// allocation so a corrupt count cannot OOM the process, and let
		// append grow past it for genuinely huge traces.
		const maxPrealloc = 1 << 20
		if n := h.SizeHint(); n > 0 {
			t.Requests = make([]Request, 0, min(n, maxPrealloc))
		}
	}
	for {
		r, err := dec.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		t.Requests = append(t.Requests, r)
	}
	t.applyMeta(dec.Meta())
	return t, nil
}

// EncodeTrace streams a whole trace through enc.
func EncodeTrace(enc Encoder, t *Trace) error {
	if err := enc.Begin(t.Meta()); err != nil {
		return err
	}
	for _, r := range t.Requests {
		if err := enc.Write(r); err != nil {
			return err
		}
	}
	return enc.Close()
}

// NewDecoder returns a streaming decoder for the named input format:
// "csv", "bin", "msrc" or "spc".
func NewDecoder(format string, r io.Reader) (Decoder, error) {
	switch format {
	case "csv":
		return NewCSVDecoder(r), nil
	case "bin":
		return NewBinaryDecoder(r), nil
	case "msrc":
		return NewMSRCDecoder(r), nil
	case "spc":
		return NewSPCDecoder(r), nil
	default:
		return nil, fmt.Errorf("trace: unknown input format %q", format)
	}
}

// NeedsSort reports whether the named input format is only
// near-sorted in file order (event-traced corpora), so materializing
// readers must sort after draining and streaming consumers need a
// reorder window.
func NeedsSort(format string) bool { return format == "msrc" || format == "spc" }

// ReadFormat materializes a whole trace of the named input format,
// applying the arrival sort the near-sorted corpora need.
func ReadFormat(format string, r io.Reader) (*Trace, error) {
	dec, err := NewDecoder(format, r)
	if err != nil {
		return nil, err
	}
	t, err := Drain(dec)
	if err != nil {
		return nil, err
	}
	if NeedsSort(format) {
		t.Sort()
	}
	return t, nil
}

// NewEncoder returns a streaming encoder for the named output format:
// "csv", "bin", "blktrace" or "fio". fioDevice is the replay target
// path the fio format embeds (ignored by the others).
func NewEncoder(format string, w io.Writer, fioDevice string) (Encoder, error) {
	switch format {
	case "csv":
		return NewCSVEncoder(w), nil
	case "bin":
		return NewBinaryEncoder(w), nil
	case "blktrace":
		return NewBlktraceEncoder(w), nil
	case "fio":
		return NewFIOEncoder(w, fioDevice), nil
	default:
		return nil, fmt.Errorf("trace: unknown output format %q", format)
	}
}

// SeqState tracks per-device end positions so sequentiality flags can
// be computed incrementally. Flag returns the classification of each
// request presented in trace order; trace.SeqFlags delegates here, so
// a SeqState snapshot at a shard boundary reproduces the whole-trace
// flags exactly.
type SeqState struct {
	lastEnd map[uint32]uint64
}

// NewSeqState returns an empty sequentiality tracker.
func NewSeqState() *SeqState {
	return &SeqState{lastEnd: make(map[uint32]uint64, 4)}
}

// Flag classifies r (true = sequential) and advances the state.
func (s *SeqState) Flag(r Request) bool {
	end, seen := s.lastEnd[r.Device]
	s.lastEnd[r.Device] = r.End()
	return seen && r.LBA == end
}

// Clone deep-copies the state, so shard planners can snapshot it.
func (s *SeqState) Clone() *SeqState {
	c := NewSeqState()
	for k, v := range s.lastEnd {
		c.lastEnd[k] = v
	}
	return c
}

// --- native CSV ---

// CSVDecoder streams the native CSV format.
type CSVDecoder struct {
	sc      *bufio.Scanner
	lineno  int
	meta    Meta
	t       Trace // scratch for header parsing
	sawData bool
}

// NewCSVDecoder wraps r in a native-CSV request stream.
func NewCSVDecoder(r io.Reader) *CSVDecoder {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	return &CSVDecoder{sc: sc}
}

// Meta implements Decoder.
func (d *CSVDecoder) Meta() Meta { return d.meta }

// Next implements Decoder.
func (d *CSVDecoder) Next() (Request, error) {
	for d.sc.Scan() {
		d.lineno++
		line := strings.TrimSpace(d.sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if strings.HasPrefix(line, "# tracetracker ") && d.sawData {
				// A metadata header behind data rows (concatenated
				// files) cannot be honoured by a streaming consumer
				// that already acted on the old metadata — reject it
				// rather than let streaming and whole-trace paths
				// silently diverge.
				return Request{}, fmt.Errorf("trace: line %d: metadata header after data rows", d.lineno)
			}
			d.t.applyMeta(d.meta)
			parseHeaderComment(&d.t, line)
			d.meta = d.t.Meta()
			continue
		}
		f := strings.Split(line, ",")
		if len(f) != 7 {
			return Request{}, fmt.Errorf("trace: line %d: want 7 fields, got %d", d.lineno, len(f))
		}
		req, err := parseNativeFields(f)
		if err != nil {
			return Request{}, fmt.Errorf("trace: line %d: %w", d.lineno, err)
		}
		d.sawData = true
		return req, nil
	}
	if err := d.sc.Err(); err != nil {
		return Request{}, err
	}
	return Request{}, io.EOF
}

// CSVEncoder streams the native CSV format.
type CSVEncoder struct {
	bw *bufio.Writer
}

// NewCSVEncoder wraps w in a native-CSV request sink.
func NewCSVEncoder(w io.Writer) *CSVEncoder {
	return &CSVEncoder{bw: bufio.NewWriter(w)}
}

// Begin implements Encoder.
func (e *CSVEncoder) Begin(m Meta) error {
	fmt.Fprintf(e.bw, "# tracetracker name=%s workload=%s set=%s tsdev_known=%v\n",
		m.Name, m.Workload, m.Set, m.TsdevKnown)
	_, err := fmt.Fprintln(e.bw, "# arrival_us,device,lba,sectors,op,latency_us,async")
	return err
}

// Write implements Encoder.
func (e *CSVEncoder) Write(r Request) error {
	async := 0
	if r.Async {
		async = 1
	}
	_, err := fmt.Fprintf(e.bw, "%.3f,%d,%d,%d,%s,%.3f,%d\n",
		micros(r.Arrival), r.Device, r.LBA, r.Sectors, r.Op, micros(r.Latency), async)
	return err
}

// Close implements Encoder.
func (e *CSVEncoder) Close() error { return e.bw.Flush() }

// --- compact binary ---

// streamingCount is the request-count sentinel a BinaryEncoder writes:
// it cannot know the count up front, so records simply run to EOF.
// BinaryDecoder (and therefore ReadBinary) accepts both forms.
const streamingCount = ^uint64(0)

// BinaryDecoder streams the compact binary format.
type BinaryDecoder struct {
	br        *bufio.Reader
	meta      Meta
	headerErr error
	remaining uint64
	counted   bool
	idx       uint64
}

// NewBinaryDecoder wraps r in a binary request stream. Header parse
// errors surface on the first Next call.
func NewBinaryDecoder(r io.Reader) *BinaryDecoder {
	d := &BinaryDecoder{br: bufio.NewReader(r)}
	d.headerErr = d.readHeader()
	if d.headerErr == io.EOF {
		// A stream ending inside the header (including a 0-byte file)
		// is a truncated trace, not a clean end-of-stream — Next must
		// not let it masquerade as an empty trace.
		d.headerErr = fmt.Errorf("trace: truncated binary header: %w", io.ErrUnexpectedEOF)
	}
	return d
}

func (d *BinaryDecoder) readHeader() error {
	var magic [4]byte
	if _, err := io.ReadFull(d.br, magic[:]); err != nil {
		return err
	}
	if magic != binaryMagic {
		return fmt.Errorf("trace: bad magic %q", magic)
	}
	readString := func() (string, error) {
		var lenbuf [2]byte
		if _, err := io.ReadFull(d.br, lenbuf[:]); err != nil {
			return "", err
		}
		buf := make([]byte, binary.LittleEndian.Uint16(lenbuf[:]))
		if _, err := io.ReadFull(d.br, buf); err != nil {
			return "", err
		}
		return string(buf), nil
	}
	var err error
	if d.meta.Name, err = readString(); err != nil {
		return err
	}
	if d.meta.Workload, err = readString(); err != nil {
		return err
	}
	if d.meta.Set, err = readString(); err != nil {
		return err
	}
	flags, err := d.br.ReadByte()
	if err != nil {
		return err
	}
	d.meta.TsdevKnown = flags&1 != 0
	var cnt [8]byte
	if _, err := io.ReadFull(d.br, cnt[:]); err != nil {
		return err
	}
	n := binary.LittleEndian.Uint64(cnt[:])
	if n != streamingCount {
		const maxRequests = 1 << 31
		if n > maxRequests {
			return fmt.Errorf("trace: implausible request count %d", n)
		}
		d.remaining = n
		d.counted = true
	}
	return nil
}

// Meta implements Decoder.
func (d *BinaryDecoder) Meta() Meta { return d.meta }

// SizeHint implements SizeHinter: the counted header form declares
// the remaining record count (0 for streamed sentinel files).
func (d *BinaryDecoder) SizeHint() int {
	if d.headerErr != nil || !d.counted {
		return 0
	}
	return int(d.remaining)
}

// Next implements Decoder.
func (d *BinaryDecoder) Next() (Request, error) {
	if d.headerErr != nil {
		return Request{}, d.headerErr
	}
	if d.counted && d.remaining == 0 {
		return Request{}, io.EOF
	}
	var rec [34]byte
	if _, err := io.ReadFull(d.br, rec[:]); err != nil {
		if !d.counted && err == io.EOF {
			return Request{}, io.EOF
		}
		return Request{}, fmt.Errorf("trace: truncated at record %d: %w", d.idx, err)
	}
	if d.counted {
		d.remaining--
	}
	d.idx++
	return Request{
		Arrival: time.Duration(binary.LittleEndian.Uint64(rec[0:])),
		Device:  binary.LittleEndian.Uint32(rec[8:]),
		LBA:     binary.LittleEndian.Uint64(rec[12:]),
		Sectors: binary.LittleEndian.Uint32(rec[20:]),
		Op:      Op(rec[24]),
		Latency: time.Duration(binary.LittleEndian.Uint64(rec[25:])),
		Async:   rec[33] == 1,
	}, nil
}

// BinaryEncoder streams the compact binary format. Because the count
// is unknown up front it writes the streamingCount sentinel; files it
// produces are readable by ReadBinary/BinaryDecoder but differ in that
// one header field from WriteBinary output.
type BinaryEncoder struct {
	bw *bufio.Writer
}

// NewBinaryEncoder wraps w in a binary request sink.
func NewBinaryEncoder(w io.Writer) *BinaryEncoder {
	return &BinaryEncoder{bw: bufio.NewWriter(w)}
}

// Begin implements Encoder.
func (e *BinaryEncoder) Begin(m Meta) error {
	return writeBinaryHeader(e.bw, m, streamingCount)
}

// Write implements Encoder.
func (e *BinaryEncoder) Write(r Request) error {
	return writeBinaryRecord(e.bw, r)
}

// Close implements Encoder.
func (e *BinaryEncoder) Close() error { return e.bw.Flush() }

// writeBinaryHeader emits the magic, metadata strings, flags and the
// request count (or streamingCount).
func writeBinaryHeader(bw *bufio.Writer, m Meta, count uint64) error {
	if _, err := bw.Write(binaryMagic[:]); err != nil {
		return err
	}
	writeString := func(s string) {
		var lenbuf [2]byte
		binary.LittleEndian.PutUint16(lenbuf[:], uint16(len(s)))
		bw.Write(lenbuf[:])
		bw.WriteString(s)
	}
	writeString(m.Name)
	writeString(m.Workload)
	writeString(m.Set)
	flags := byte(0)
	if m.TsdevKnown {
		flags |= 1
	}
	bw.WriteByte(flags)
	var cnt [8]byte
	binary.LittleEndian.PutUint64(cnt[:], count)
	_, err := bw.Write(cnt[:])
	return err
}

// writeBinaryRecord emits one fixed-width request record.
func writeBinaryRecord(bw *bufio.Writer, r Request) error {
	var rec [34]byte
	binary.LittleEndian.PutUint64(rec[0:], uint64(r.Arrival))
	binary.LittleEndian.PutUint32(rec[8:], r.Device)
	binary.LittleEndian.PutUint64(rec[12:], r.LBA)
	binary.LittleEndian.PutUint32(rec[20:], r.Sectors)
	rec[24] = byte(r.Op)
	binary.LittleEndian.PutUint64(rec[25:], uint64(r.Latency))
	if r.Async {
		rec[33] = 1
	}
	_, err := bw.Write(rec[:])
	return err
}

// --- MSRC CSV ---

// MSRCDecoder streams the Microsoft Research Cambridge CSV format in
// file order, rebasing arrivals so the first record is at zero. MSRC
// files are only nearly sorted; wrap in a ReorderDecoder when monotone
// arrivals are required.
type MSRCDecoder struct {
	sc     *bufio.Scanner
	lineno int
	meta   Meta
	base   int64
	first  bool
}

// NewMSRCDecoder wraps r in an MSRC request stream.
func NewMSRCDecoder(r io.Reader) *MSRCDecoder {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	return &MSRCDecoder{sc: sc, meta: Meta{Set: "MSRC", TsdevKnown: true}, first: true}
}

// Meta implements Decoder.
func (d *MSRCDecoder) Meta() Meta { return d.meta }

// Next implements Decoder.
func (d *MSRCDecoder) Next() (Request, error) {
	for d.sc.Scan() {
		d.lineno++
		line := strings.TrimSpace(d.sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Split(line, ",")
		if len(f) != 7 {
			return Request{}, fmt.Errorf("trace: msrc line %d: want 7 fields, got %d", d.lineno, len(f))
		}
		ts, err := strconv.ParseInt(f[0], 10, 64)
		if err != nil {
			return Request{}, fmt.Errorf("trace: msrc line %d timestamp: %w", d.lineno, err)
		}
		if d.first {
			d.base = ts
			d.meta.Workload = f[1]
			d.meta.Name = f[1]
			d.first = false
		}
		disk, err := strconv.ParseUint(f[2], 10, 32)
		if err != nil {
			return Request{}, fmt.Errorf("trace: msrc line %d disk: %w", d.lineno, err)
		}
		op, err := ParseOp(f[3])
		if err != nil {
			return Request{}, fmt.Errorf("trace: msrc line %d: %w", d.lineno, err)
		}
		off, err := strconv.ParseUint(f[4], 10, 64)
		if err != nil {
			return Request{}, fmt.Errorf("trace: msrc line %d offset: %w", d.lineno, err)
		}
		size, err := strconv.ParseUint(f[5], 10, 64)
		if err != nil {
			return Request{}, fmt.Errorf("trace: msrc line %d size: %w", d.lineno, err)
		}
		resp, err := strconv.ParseInt(f[6], 10, 64)
		if err != nil {
			return Request{}, fmt.Errorf("trace: msrc line %d response: %w", d.lineno, err)
		}
		sectors := uint32((size + SectorSize - 1) / SectorSize)
		if sectors == 0 {
			sectors = 1
		}
		return Request{
			Arrival: time.Duration(ts-d.base) * 100, // 100ns ticks
			Device:  uint32(disk),
			LBA:     off / SectorSize,
			Sectors: sectors,
			Op:      op,
			Latency: time.Duration(resp) * 100,
		}, nil
	}
	if err := d.sc.Err(); err != nil {
		return Request{}, err
	}
	return Request{}, io.EOF
}

// --- SPC-1 ASCII ---

// SPCDecoder streams the SPC-1 ASCII format in file order.
type SPCDecoder struct {
	sc     *bufio.Scanner
	lineno int
}

// NewSPCDecoder wraps r in an SPC request stream.
func NewSPCDecoder(r io.Reader) *SPCDecoder {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	return &SPCDecoder{sc: sc}
}

// Meta implements Decoder.
func (d *SPCDecoder) Meta() Meta { return Meta{TsdevKnown: false} }

// Next implements Decoder.
func (d *SPCDecoder) Next() (Request, error) {
	for d.sc.Scan() {
		d.lineno++
		line := strings.TrimSpace(d.sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Split(line, ",")
		if len(f) < 5 {
			return Request{}, fmt.Errorf("trace: spc line %d: want 5 fields, got %d", d.lineno, len(f))
		}
		asu, err := strconv.ParseUint(strings.TrimSpace(f[0]), 10, 32)
		if err != nil {
			return Request{}, fmt.Errorf("trace: spc line %d asu: %w", d.lineno, err)
		}
		lba, err := strconv.ParseUint(strings.TrimSpace(f[1]), 10, 64)
		if err != nil {
			return Request{}, fmt.Errorf("trace: spc line %d lba: %w", d.lineno, err)
		}
		size, err := strconv.ParseUint(strings.TrimSpace(f[2]), 10, 64)
		if err != nil {
			return Request{}, fmt.Errorf("trace: spc line %d size: %w", d.lineno, err)
		}
		op, err := ParseOp(strings.TrimSpace(f[3]))
		if err != nil {
			return Request{}, fmt.Errorf("trace: spc line %d: %w", d.lineno, err)
		}
		sec, err := strconv.ParseFloat(strings.TrimSpace(f[4]), 64)
		if err != nil {
			return Request{}, fmt.Errorf("trace: spc line %d timestamp: %w", d.lineno, err)
		}
		sectors := uint32((size + SectorSize - 1) / SectorSize)
		if sectors == 0 {
			sectors = 1
		}
		return Request{
			Arrival: time.Duration(sec * float64(time.Second)),
			Device:  uint32(asu),
			LBA:     lba,
			Sectors: sectors,
			Op:      op,
		}, nil
	}
	if err := d.sc.Err(); err != nil {
		return Request{}, err
	}
	return Request{}, io.EOF
}

// --- blktrace text (encoder) ---

// BlktraceEncoder streams the blkparse-style D/C event text format.
type BlktraceEncoder struct {
	bw   *bufio.Writer
	name string
	seq  int
}

// NewBlktraceEncoder wraps w in a blktrace event sink.
func NewBlktraceEncoder(w io.Writer) *BlktraceEncoder {
	return &BlktraceEncoder{bw: bufio.NewWriter(w)}
}

// Begin implements Encoder.
func (e *BlktraceEncoder) Begin(m Meta) error {
	e.name = m.Name
	return nil
}

// Write implements Encoder.
func (e *BlktraceEncoder) Write(r Request) error {
	e.seq++
	rwbs := "R"
	if r.Op == Write {
		rwbs = "W"
	}
	_, err := fmt.Fprintf(e.bw, "8,%d    0 %8d %14.9f  0  D   %s %d + %d [%s]\n",
		r.Device, e.seq, r.Arrival.Seconds(), rwbs, r.LBA, r.Sectors, e.name)
	if err != nil {
		return err
	}
	if r.Latency > 0 {
		e.seq++
		_, err = fmt.Fprintf(e.bw, "8,%d    0 %8d %14.9f  0  C   %s %d + %d [0]\n",
			r.Device, e.seq, (r.Arrival + r.Latency).Seconds(), rwbs, r.LBA, r.Sectors)
	}
	return err
}

// Close implements Encoder.
func (e *BlktraceEncoder) Close() error { return e.bw.Flush() }

// --- fio iolog v2 (encoder) ---

// FIOEncoder streams the fio iolog v2 replay format.
type FIOEncoder struct {
	bw     *bufio.Writer
	device string
	prev   time.Duration
	first  bool
}

// NewFIOEncoder wraps w in an iolog sink replaying against device.
func NewFIOEncoder(w io.Writer, device string) *FIOEncoder {
	return &FIOEncoder{bw: bufio.NewWriter(w), device: device, first: true}
}

// Begin implements Encoder.
func (e *FIOEncoder) Begin(Meta) error {
	fmt.Fprintln(e.bw, "fio version 2 iolog")
	fmt.Fprintf(e.bw, "%s add\n", e.device)
	_, err := fmt.Fprintf(e.bw, "%s open\n", e.device)
	return err
}

// Write implements Encoder.
func (e *FIOEncoder) Write(r Request) error {
	if !e.first {
		if gap := r.Arrival - e.prev; gap > 0 {
			fmt.Fprintf(e.bw, "%s wait %d\n", e.device, gap.Microseconds())
		}
	}
	e.first = false
	e.prev = r.Arrival
	action := "read"
	if r.Op == Write {
		action = "write"
	}
	_, err := fmt.Fprintf(e.bw, "%s %s %d %d\n", e.device, action, int64(r.LBA)*SectorSize, r.Bytes())
	return err
}

// Close implements Encoder.
func (e *FIOEncoder) Close() error {
	fmt.Fprintf(e.bw, "%s close\n", e.device)
	return e.bw.Flush()
}

// --- bounded reordering ---

// reorderItem pairs a request with its input position for stable
// ordering of equal arrivals.
type reorderItem struct {
	req Request
	seq uint64
}

type reorderHeap []reorderItem

func (h reorderHeap) Len() int { return len(h) }
func (h reorderHeap) Less(i, j int) bool {
	if h[i].req.Arrival != h[j].req.Arrival {
		return h[i].req.Arrival < h[j].req.Arrival
	}
	return h[i].seq < h[j].seq
}
func (h reorderHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *reorderHeap) Push(x any)   { *h = append(*h, x.(reorderItem)) }
func (h *reorderHeap) Pop() (x any) { old := *h; n := len(old); x = old[n-1]; *h = old[:n-1]; return }

// ReorderDecoder wraps a decoder with a bounded min-heap window: as
// long as no request is displaced by more than window positions from
// its sorted slot, the output order equals the stable arrival sort the
// whole-trace readers produce — with O(window) memory instead of the
// whole trace. Event-traced corpora (MSRC) are near-sorted, so a small
// window suffices.
type ReorderDecoder struct {
	inner  Decoder
	window int
	h      reorderHeap
	seq    uint64
	done   bool
	err    error
}

// NewReorderDecoder wraps dec with a reorder window of the given size
// (minimum 1).
func NewReorderDecoder(dec Decoder, window int) *ReorderDecoder {
	if window < 1 {
		window = 1
	}
	return &ReorderDecoder{inner: dec, window: window}
}

// Meta implements Decoder.
func (d *ReorderDecoder) Meta() Meta { return d.inner.Meta() }

// Next implements Decoder.
func (d *ReorderDecoder) Next() (Request, error) {
	if d.err != nil {
		return Request{}, d.err
	}
	// Hold window+1 items before emitting: popping the min of w+1
	// buffered requests is what guarantees displacements up to w.
	for !d.done && len(d.h) <= d.window {
		r, err := d.inner.Next()
		if err == io.EOF {
			d.done = true
			break
		}
		if err != nil {
			d.err = err
			return Request{}, err
		}
		heap.Push(&d.h, reorderItem{req: r, seq: d.seq})
		d.seq++
	}
	if len(d.h) == 0 {
		d.err = io.EOF
		return Request{}, io.EOF
	}
	it := heap.Pop(&d.h).(reorderItem)
	return it.req, nil
}
