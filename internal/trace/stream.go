package trace

// Streaming layer: Decoder yields requests one at a time and Encoder
// consumes them one at a time, so pipelines can process traces far
// larger than memory. Every on-disk format gets a streaming
// counterpart here, and the whole-trace Read*/Write* functions in
// io.go, blktrace.go and fio.go delegate to these, so the two paths
// cannot drift apart.
//
// The codecs are allocation-free in steady state: text decoders scan
// lines as byte slices (scan.go) with no per-record string or field
// allocations, encoders render into a reusable buffer, and the
// DecodeBatch API lets consumers amortize the per-record interface
// call on top. trace/zeroalloc_test.go locks the zero-allocs property
// for all four input formats and all four output formats.
//
// Decoders yield requests in file order. The MSRC and SPC corpora are
// only nearly sorted (event tracing reorders completions), so their
// whole-trace readers sort after draining; streaming callers that need
// monotonic arrivals wrap the decoder in a ReorderDecoder with a
// bounded window instead.

import (
	"bufio"
	"bytes"
	"container/heap"
	"encoding/binary"
	"fmt"
	"io"
	"slices"
	"strconv"
	"time"
)

// Meta is the trace-level metadata that travels alongside a request
// stream: everything a Trace carries except the requests themselves.
type Meta struct {
	Name       string
	Workload   string
	Set        string
	TsdevKnown bool
}

// Meta extracts the stream metadata of a trace.
func (t *Trace) Meta() Meta {
	return Meta{Name: t.Name, Workload: t.Workload, Set: t.Set, TsdevKnown: t.TsdevKnown}
}

// applyMeta copies m into the trace's metadata fields.
func (t *Trace) applyMeta(m Meta) {
	t.Name, t.Workload, t.Set, t.TsdevKnown = m.Name, m.Workload, m.Set, m.TsdevKnown
}

// Decoder yields the requests of a trace incrementally.
type Decoder interface {
	// Next returns the next request, or io.EOF when the stream is
	// exhausted. Any other error is a parse/IO failure.
	Next() (Request, error)
	// Meta returns the metadata seen so far. Formats carry metadata in
	// a header, so Meta is complete after the first Next call (and for
	// headered formats after construction); callers that emit metadata
	// should read at least one request first.
	Meta() Meta
}

// CloseDecoder stops a decoder's background workers, if it has any
// (the parallel decoders, or wrappers like ReorderDecoder over them).
// A decoder abandoned before EOF or a terminal decode error would
// otherwise leak its worker goroutines, so every whole-stream consumer
// in this package (Drain, Summarize) and in the engine closes the
// decoder it was draining on its error paths. Safe on any decoder;
// Close is idempotent and, after a terminal condition, a cheap join.
func CloseDecoder(dec Decoder) {
	if c, ok := dec.(interface{ Close() }); ok {
		c.Close()
	}
}

// BatchDecoder is implemented by decoders that can fill a request
// slice per call, amortizing the per-record interface dispatch that
// dominates tight Next loops. Every decoder in this package
// implements it.
type BatchDecoder interface {
	Decoder
	// DecodeBatch fills dst and returns the number of requests
	// decoded. It returns (n, io.EOF) when the stream ended after n
	// records, and (n, err) when record n+1 failed to parse; n ==
	// len(dst) implies a nil error.
	DecodeBatch(dst []Request) (int, error)
}

// DecodeBatch fills dst from dec, using the decoder's native batch
// path when it has one and a Next loop otherwise. The contract is
// BatchDecoder.DecodeBatch's.
func DecodeBatch(dec Decoder, dst []Request) (int, error) {
	if bd, ok := dec.(BatchDecoder); ok {
		return bd.DecodeBatch(dst)
	}
	return decodeBatch(dec, dst)
}

// BatchReader is implemented by decoders that expose their internally
// decoded batches (the parallel decoders), letting whole-stream
// consumers iterate requests without copying them into their own
// buffer first. ReadBatch returns the next non-empty run of requests,
// or io.EOF when the stream is exhausted; the returned slice is only
// valid until the next call on the decoder.
type BatchReader interface {
	Decoder
	ReadBatch() ([]Request, error)
}

// ForEachBatch drains dec to EOF, invoking fn on each non-empty run
// of requests: the decoder's own batches when it is a BatchReader (no
// copy), drainChunk-sized reads into a scratch buffer otherwise. It
// returns fn's first error, or the decode error; the slice handed to
// fn is only valid for that call. This is the one drain loop shared
// by every whole-stream consumer (Summarize, the engine's model fit
// and produce loop, Drain's batch path), so decoder-facing changes
// land in one place.
func ForEachBatch(dec Decoder, fn func([]Request) error) error {
	if br, ok := dec.(BatchReader); ok {
		for {
			batch, err := br.ReadBatch()
			if len(batch) > 0 {
				if ferr := fn(batch); ferr != nil {
					return ferr
				}
			}
			if err == io.EOF {
				return nil
			}
			if err != nil {
				return err
			}
		}
	}
	buf := make([]Request, drainChunk)
	for {
		n, err := DecodeBatch(dec, buf)
		if n > 0 {
			if ferr := fn(buf[:n]); ferr != nil {
				return ferr
			}
		}
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
	}
}

// decodeBatch is the shared DecodeBatch body. Each concrete decoder
// instantiates it with its own type, so the inner Next calls are
// direct (devirtualized), which is where the batch speedup comes
// from.
//
//tracelint:hotpath
func decodeBatch[D interface{ Next() (Request, error) }](d D, dst []Request) (int, error) {
	for i := range dst {
		r, err := d.Next()
		if err != nil {
			return i, err
		}
		dst[i] = r
	}
	return len(dst), nil
}

// Encoder consumes a request stream and renders one on-disk format.
type Encoder interface {
	// Begin emits the format's header. It must be called exactly once,
	// before the first Write.
	Begin(Meta) error
	// Write appends one request.
	Write(Request) error
	// Close terminates the stream and flushes buffered output. It does
	// not close the underlying writer.
	Close() error
}

// ShardEncoder is implemented by encoders whose record rendering is a
// pure function of the request — no cross-record state — so parallel
// shard workers can render runs of records into private buffers
// concurrently and an ordered merger can splice them into the output
// verbatim. csv and bin qualify; blktrace (event sequence numbers) and
// fio (inter-arrival waits, open/close bracketing) do not and take the
// serial Write path.
type ShardEncoder interface {
	Encoder
	// AppendRecord appends to dst exactly the bytes Write would emit
	// for r. It must be safe for concurrent use.
	AppendRecord(dst []byte, r Request) []byte
	// WriteRaw splices pre-rendered record bytes into the stream, as
	// if each rendered record had been passed to Write in order.
	WriteRaw(p []byte) error
}

// SizeHinter is implemented by decoders that know how many requests
// remain (the counted binary format); Drain uses it to preallocate.
type SizeHinter interface {
	// SizeHint returns the expected remaining request count, 0 when
	// unknown.
	SizeHint() int
}

// drainChunk is the batch size Drain (and the other whole-stream
// consumers in this package) read with.
const drainChunk = 1024

// Drain reads dec to exhaustion and materializes a whole Trace. On a
// decode error the decoder is closed (CloseDecoder) before returning,
// so parallel decoders never leak workers through this path.
func Drain(dec Decoder) (*Trace, error) {
	t := &Trace{}
	if h, ok := dec.(SizeHinter); ok {
		// The hint comes from an untrusted file header: cap the upfront
		// allocation so a corrupt count cannot OOM the process, and let
		// append grow past it for genuinely huge traces.
		const maxPrealloc = 1 << 20
		if n := h.SizeHint(); n > 0 {
			t.Requests = make([]Request, 0, min(n, maxPrealloc))
		}
	}
	if _, ok := dec.(BatchReader); ok {
		// Parallel decoders hand over their internal batches; append
		// copies them straight into the trace.
		err := ForEachBatch(dec, func(batch []Request) error {
			t.Requests = append(t.Requests, batch...)
			return nil
		})
		if err != nil {
			CloseDecoder(dec)
			return nil, err
		}
		t.applyMeta(dec.Meta())
		return t, nil
	}
	// The sequential path decodes straight into the trace slice — no
	// intermediate buffer — so it keeps its own loop.
	for {
		n := len(t.Requests)
		t.Requests = slices.Grow(t.Requests, drainChunk)
		k, err := DecodeBatch(dec, t.Requests[n:n+drainChunk])
		t.Requests = t.Requests[:n+k]
		if err == io.EOF {
			break
		}
		if err != nil {
			CloseDecoder(dec)
			return nil, err
		}
	}
	t.applyMeta(dec.Meta())
	return t, nil
}

// EncodeTrace streams a whole trace through enc.
func EncodeTrace(enc Encoder, t *Trace) error {
	if err := enc.Begin(t.Meta()); err != nil {
		return err
	}
	for _, r := range t.Requests {
		if err := enc.Write(r); err != nil {
			return err
		}
	}
	return enc.Close()
}

// NewDecoder returns a streaming decoder for the named input format:
// "csv", "bin", "msrc" or "spc".
func NewDecoder(format string, r io.Reader) (Decoder, error) {
	switch format {
	case "csv":
		return NewCSVDecoder(r), nil
	case "bin":
		return NewBinaryDecoder(r), nil
	case "msrc":
		return NewMSRCDecoder(r), nil
	case "spc":
		return NewSPCDecoder(r), nil
	default:
		return nil, fmt.Errorf("trace: unknown input format %q", format)
	}
}

// NeedsSort reports whether the named input format is only
// near-sorted in file order (event-traced corpora), so materializing
// readers must sort after draining and streaming consumers need a
// reorder window.
func NeedsSort(format string) bool { return format == "msrc" || format == "spc" }

// ReadFormat materializes a whole trace of the named input format,
// applying the arrival sort the near-sorted corpora need.
func ReadFormat(format string, r io.Reader) (*Trace, error) {
	dec, err := NewDecoder(format, r)
	if err != nil {
		return nil, err
	}
	t, err := Drain(dec)
	if err != nil {
		return nil, err
	}
	if NeedsSort(format) {
		t.Sort()
	}
	return t, nil
}

// NewEncoder returns a streaming encoder for the named output format:
// "csv", "bin", "blktrace" or "fio". fioDevice is the replay target
// path the fio format embeds (ignored by the others).
func NewEncoder(format string, w io.Writer, fioDevice string) (Encoder, error) {
	switch format {
	case "csv":
		return NewCSVEncoder(w), nil
	case "bin":
		return NewBinaryEncoder(w), nil
	case "blktrace":
		return NewBlktraceEncoder(w), nil
	case "fio":
		return NewFIOEncoder(w, fioDevice), nil
	default:
		return nil, fmt.Errorf("trace: unknown output format %q", format)
	}
}

// SeqState tracks per-device end positions so sequentiality flags can
// be computed incrementally. Flag returns the classification of each
// request presented in trace order; trace.SeqFlags delegates here, so
// a SeqState snapshot at a shard boundary reproduces the whole-trace
// flags exactly.
//
// The public corpora use a handful of small device numbers, so the
// first smallDevices devices live in a flat array — Flag on them costs
// two array accesses instead of two map operations, which matters in
// the per-request planner loop. Larger device IDs fall back to a
// lazily-built map.
type SeqState struct {
	smallEnd  [smallDevices]uint64
	smallSeen uint32 // bitmask over smallEnd
	lastEnd   map[uint32]uint64
}

// smallDevices is the device-number range SeqState tracks in its
// array fast path.
const smallDevices = 16

// NewSeqState returns an empty sequentiality tracker.
func NewSeqState() *SeqState {
	return &SeqState{}
}

// Flag classifies r (true = sequential) and advances the state.
func (s *SeqState) Flag(r Request) bool {
	if r.Device < smallDevices {
		bit := uint32(1) << r.Device
		end := s.smallEnd[r.Device]
		seen := s.smallSeen&bit != 0
		s.smallEnd[r.Device] = r.End()
		s.smallSeen |= bit
		return seen && r.LBA == end
	}
	if s.lastEnd == nil {
		s.lastEnd = make(map[uint32]uint64, 4)
	}
	end, seen := s.lastEnd[r.Device]
	s.lastEnd[r.Device] = r.End()
	return seen && r.LBA == end
}

// Clone deep-copies the state, so shard planners can snapshot it.
func (s *SeqState) Clone() *SeqState {
	c := &SeqState{smallEnd: s.smallEnd, smallSeen: s.smallSeen}
	if s.lastEnd != nil {
		c.lastEnd = make(map[uint32]uint64, len(s.lastEnd))
		for k, v := range s.lastEnd {
			c.lastEnd[k] = v
		}
	}
	return c
}

// --- native CSV ---

// csvHeaderPrefix marks the native metadata header comment.
var csvHeaderPrefix = []byte("# tracetracker ")

// CSVDecoder streams the native CSV format.
type CSVDecoder struct {
	ls      *lineScanner
	lineno  int
	meta    Meta
	t       Trace // scratch for header parsing
	sawData bool
}

// NewCSVDecoder wraps r in a native-CSV request stream.
func NewCSVDecoder(r io.Reader) *CSVDecoder {
	return &CSVDecoder{ls: newLineScanner(r)}
}

// Meta implements Decoder.
func (d *CSVDecoder) Meta() Meta { return d.meta }

// Next implements Decoder.
//
//tracelint:hotpath
func (d *CSVDecoder) Next() (Request, error) {
	for {
		line, err := d.ls.next()
		if err == io.EOF {
			return Request{}, io.EOF
		}
		if err != nil {
			return Request{}, err
		}
		d.lineno++
		line = bytes.TrimSpace(line)
		if len(line) == 0 {
			continue
		}
		if line[0] == '#' {
			if bytes.HasPrefix(line, csvHeaderPrefix) && d.sawData {
				// A metadata header behind data rows (concatenated
				// files) cannot be honoured by a streaming consumer
				// that already acted on the old metadata — reject it
				// rather than let streaming and whole-trace paths
				// silently diverge.
				return Request{}, lineErrf("line", d.lineno, nil, ": metadata header after data rows")
			}
			d.t.applyMeta(d.meta)
			//tracelint:ignore hotpath header-comment path: runs once per header line, not per record
			parseHeaderComment(&d.t, string(line))
			d.meta = d.t.Meta()
			continue
		}
		if req, ok := parseNativeFast(line); ok {
			d.sawData = true
			return req, nil
		}
		var f [8][]byte
		if n := splitComma(f[:], line); n != 7 {
			return Request{}, lineErrf("line", d.lineno, nil, ": want 7 fields, got %d", n)
		}
		req, err := parseNativeLine(f[:7])
		if err != nil {
			return Request{}, lineErrf("line", d.lineno, err, ": %v", err)
		}
		d.sawData = true
		return req, nil
	}
}

// DecodeBatch implements BatchDecoder.
func (d *CSVDecoder) DecodeBatch(dst []Request) (int, error) { return decodeBatch(d, dst) }

// lines implements lineCounter.
func (d *CSVDecoder) lines() int { return d.lineno }

// CSVEncoder streams the native CSV format.
type CSVEncoder struct {
	bw  *bufio.Writer
	buf []byte // reusable line scratch
}

// NewCSVEncoder wraps w in a native-CSV request sink.
func NewCSVEncoder(w io.Writer) *CSVEncoder {
	return &CSVEncoder{bw: bufio.NewWriter(w)}
}

// Begin implements Encoder.
func (e *CSVEncoder) Begin(m Meta) error {
	fmt.Fprintf(e.bw, "# tracetracker name=%s workload=%s set=%s tsdev_known=%v\n",
		m.Name, m.Workload, m.Set, m.TsdevKnown)
	_, err := fmt.Fprintln(e.bw, "# arrival_us,device,lba,sectors,op,latency_us,async")
	return err
}

// appendCSVRecord renders one native-CSV record line, the pure
// function behind both Write and AppendRecord.
//
//tracelint:hotpath
func appendCSVRecord(b []byte, r Request) []byte {
	b = strconv.AppendFloat(b, micros(r.Arrival), 'f', 3, 64)
	b = append(b, ',')
	b = strconv.AppendUint(b, uint64(r.Device), 10)
	b = append(b, ',')
	b = strconv.AppendUint(b, r.LBA, 10)
	b = append(b, ',')
	b = strconv.AppendUint(b, uint64(r.Sectors), 10)
	b = append(b, ',')
	b = appendOp(b, r.Op)
	b = append(b, ',')
	b = strconv.AppendFloat(b, micros(r.Latency), 'f', 3, 64)
	if r.Async {
		b = append(b, ",1\n"...)
	} else {
		b = append(b, ",0\n"...)
	}
	return b
}

// Write implements Encoder.
//
//tracelint:hotpath
func (e *CSVEncoder) Write(r Request) error {
	b := appendCSVRecord(e.buf[:0], r)
	e.buf = b
	_, err := e.bw.Write(b)
	return err
}

// AppendRecord implements ShardEncoder.
//
//tracelint:hotpath
func (e *CSVEncoder) AppendRecord(dst []byte, r Request) []byte { return appendCSVRecord(dst, r) }

// WriteRaw implements ShardEncoder.
func (e *CSVEncoder) WriteRaw(p []byte) error {
	_, err := e.bw.Write(p)
	return err
}

// Close implements Encoder.
func (e *CSVEncoder) Close() error { return e.bw.Flush() }

// --- compact binary ---

// streamingCount is the request-count sentinel a BinaryEncoder writes:
// it cannot know the count up front, so records simply run to EOF.
// BinaryDecoder (and therefore ReadBinary) accepts both forms.
const streamingCount = ^uint64(0)

// binRecordLen is the fixed width of one binary request record.
const binRecordLen = 34

// BinaryDecoder streams the compact binary format.
type BinaryDecoder struct {
	br        *bufio.Reader
	meta      Meta
	headerErr error
	remaining uint64
	counted   bool
	idx       uint64
}

// newBinReader sizes the read buffer the binary decoder peeks records
// out of.
func newBinReader(r io.Reader) *bufio.Reader {
	return bufio.NewReaderSize(r, 128<<10)
}

// NewBinaryDecoder wraps r in a binary request stream. Header parse
// errors surface on the first Next call.
func NewBinaryDecoder(r io.Reader) *BinaryDecoder {
	d := &BinaryDecoder{br: newBinReader(r)}
	var count uint64
	d.meta, d.counted, count, d.headerErr = parseBinHeader(d.br)
	if d.counted {
		d.remaining = count
	}
	if d.headerErr == io.EOF {
		// A stream ending inside the header (including a 0-byte file)
		// is a truncated trace, not a clean end-of-stream — Next must
		// not let it masquerade as an empty trace.
		d.headerErr = fmt.Errorf("trace: truncated binary header: %w", io.ErrUnexpectedEOF)
	}
	return d
}

// parseBinHeader reads the binary header (magic, metadata strings,
// flags, request count) from r — shared by the sequential decoder and
// the segment splitter, so the two paths cannot drift.
func parseBinHeader(r io.Reader) (m Meta, counted bool, count uint64, err error) {
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return m, false, 0, err
	}
	if magic != binaryMagic {
		return m, false, 0, fmt.Errorf("trace: bad magic %q", magic)
	}
	readString := func() (string, error) {
		var lenbuf [2]byte
		if _, err := io.ReadFull(r, lenbuf[:]); err != nil {
			return "", err
		}
		buf := make([]byte, binary.LittleEndian.Uint16(lenbuf[:]))
		if _, err := io.ReadFull(r, buf); err != nil {
			return "", err
		}
		return string(buf), nil
	}
	if m.Name, err = readString(); err != nil {
		return m, false, 0, err
	}
	if m.Workload, err = readString(); err != nil {
		return m, false, 0, err
	}
	if m.Set, err = readString(); err != nil {
		return m, false, 0, err
	}
	var flags [1]byte
	if _, err := io.ReadFull(r, flags[:]); err != nil {
		return m, false, 0, err
	}
	m.TsdevKnown = flags[0]&1 != 0
	var cnt [8]byte
	if _, err := io.ReadFull(r, cnt[:]); err != nil {
		return m, false, 0, err
	}
	n := binary.LittleEndian.Uint64(cnt[:])
	if n != streamingCount {
		const maxRequests = 1 << 31
		if n > maxRequests {
			return m, false, 0, fmt.Errorf("trace: implausible request count %d", n)
		}
		return m, true, n, nil
	}
	return m, false, 0, nil
}

// Meta implements Decoder.
func (d *BinaryDecoder) Meta() Meta { return d.meta }

// SizeHint implements SizeHinter: the counted header form declares
// the remaining record count (0 for streamed sentinel files).
func (d *BinaryDecoder) SizeHint() int {
	if d.headerErr != nil || !d.counted {
		return 0
	}
	return int(d.remaining)
}

// Next implements Decoder. Records are decoded in place from the read
// buffer (Peek/Discard), so steady-state decoding never copies or
// allocates.
//
//tracelint:hotpath
func (d *BinaryDecoder) Next() (Request, error) {
	if d.headerErr != nil {
		return Request{}, d.headerErr
	}
	if d.counted && d.remaining == 0 {
		return Request{}, io.EOF
	}
	rec, err := d.br.Peek(binRecordLen)
	if err != nil {
		if len(rec) == 0 && !d.counted && err == io.EOF {
			return Request{}, io.EOF
		}
		if err == io.EOF && len(rec) > 0 {
			err = io.ErrUnexpectedEOF
		}
		return Request{}, fmt.Errorf("trace: truncated at record %d: %w", d.idx, err)
	}
	r := decodeBinRecord(rec)
	d.br.Discard(binRecordLen)
	if d.counted {
		d.remaining--
	}
	d.idx++
	return r, nil
}

// DecodeBatch implements BatchDecoder.
func (d *BinaryDecoder) DecodeBatch(dst []Request) (int, error) { return decodeBatch(d, dst) }

// decodeBinRecord unpacks one fixed-width record.
//
//tracelint:hotpath
func decodeBinRecord(rec []byte) Request {
	_ = rec[binRecordLen-1]
	return Request{
		Arrival: time.Duration(binary.LittleEndian.Uint64(rec[0:])),
		Device:  binary.LittleEndian.Uint32(rec[8:]),
		LBA:     binary.LittleEndian.Uint64(rec[12:]),
		Sectors: binary.LittleEndian.Uint32(rec[20:]),
		Op:      Op(rec[24]),
		Latency: time.Duration(binary.LittleEndian.Uint64(rec[25:])),
		Async:   rec[33] == 1,
	}
}

// BinaryEncoder streams the compact binary format. Because the count
// is unknown up front it writes the streamingCount sentinel; files it
// produces are readable by ReadBinary/BinaryDecoder but differ in that
// one header field from WriteBinary output.
type BinaryEncoder struct {
	bw  *bufio.Writer
	rec [binRecordLen]byte
}

// NewBinaryEncoder wraps w in a binary request sink.
func NewBinaryEncoder(w io.Writer) *BinaryEncoder {
	return &BinaryEncoder{bw: bufio.NewWriter(w)}
}

// Begin implements Encoder.
func (e *BinaryEncoder) Begin(m Meta) error {
	return writeBinaryHeader(e.bw, m, streamingCount)
}

// Write implements Encoder.
//
//tracelint:hotpath
func (e *BinaryEncoder) Write(r Request) error {
	return writeBinaryRecord(e.bw, &e.rec, r)
}

// AppendRecord implements ShardEncoder. The packing stores duplicate
// writeBinaryRecord's rather than share a helper: an out-of-line pack
// function makes the inliner spill the Request through the stack per
// record, which costs the binary encoder ~40% of its throughput. The
// golden and shard-splice identity tests lock the two bodies together.
//
//tracelint:hotpath
func (e *BinaryEncoder) AppendRecord(dst []byte, r Request) []byte {
	var rec [binRecordLen]byte
	binary.LittleEndian.PutUint64(rec[0:], uint64(r.Arrival))
	binary.LittleEndian.PutUint32(rec[8:], r.Device)
	binary.LittleEndian.PutUint64(rec[12:], r.LBA)
	binary.LittleEndian.PutUint32(rec[20:], r.Sectors)
	rec[24] = byte(r.Op)
	binary.LittleEndian.PutUint64(rec[25:], uint64(r.Latency))
	if r.Async {
		rec[33] = 1
	}
	return append(dst, rec[:]...)
}

// WriteRaw implements ShardEncoder.
func (e *BinaryEncoder) WriteRaw(p []byte) error {
	_, err := e.bw.Write(p)
	return err
}

// Close implements Encoder.
func (e *BinaryEncoder) Close() error { return e.bw.Flush() }

// writeBinaryHeader emits the magic, metadata strings, flags and the
// request count (or streamingCount).
func writeBinaryHeader(bw *bufio.Writer, m Meta, count uint64) error {
	if _, err := bw.Write(binaryMagic[:]); err != nil {
		return err
	}
	writeString := func(s string) {
		var lenbuf [2]byte
		binary.LittleEndian.PutUint16(lenbuf[:], uint16(len(s)))
		bw.Write(lenbuf[:])
		bw.WriteString(s)
	}
	writeString(m.Name)
	writeString(m.Workload)
	writeString(m.Set)
	flags := byte(0)
	if m.TsdevKnown {
		flags |= 1
	}
	bw.WriteByte(flags)
	var cnt [8]byte
	binary.LittleEndian.PutUint64(cnt[:], count)
	_, err := bw.Write(cnt[:])
	return err
}

// writeBinaryRecord emits one fixed-width request record into rec
// (caller-owned scratch, so nothing escapes per record). The stores
// stay in this body — see AppendRecord for why they are not shared.
func writeBinaryRecord(bw *bufio.Writer, rec *[binRecordLen]byte, r Request) error {
	binary.LittleEndian.PutUint64(rec[0:], uint64(r.Arrival))
	binary.LittleEndian.PutUint32(rec[8:], r.Device)
	binary.LittleEndian.PutUint64(rec[12:], r.LBA)
	binary.LittleEndian.PutUint32(rec[20:], r.Sectors)
	rec[24] = byte(r.Op)
	binary.LittleEndian.PutUint64(rec[25:], uint64(r.Latency))
	if r.Async {
		rec[33] = 1
	} else {
		rec[33] = 0
	}
	_, err := bw.Write(rec[:])
	return err
}

// --- MSRC CSV ---

// MSRCDecoder streams the Microsoft Research Cambridge CSV format in
// file order, rebasing arrivals so the first record is at zero. MSRC
// files are only nearly sorted; wrap in a ReorderDecoder when monotone
// arrivals are required.
type MSRCDecoder struct {
	ls     *lineScanner
	lineno int
	meta   Meta
	base   int64
	first  bool
}

// NewMSRCDecoder wraps r in an MSRC request stream.
func NewMSRCDecoder(r io.Reader) *MSRCDecoder {
	return &MSRCDecoder{ls: newLineScanner(r), meta: Meta{Set: "MSRC", TsdevKnown: true}, first: true}
}

// Meta implements Decoder.
func (d *MSRCDecoder) Meta() Meta { return d.meta }

// Next implements Decoder.
//
//tracelint:hotpath
func (d *MSRCDecoder) Next() (Request, error) {
	for {
		line, err := d.ls.next()
		if err == io.EOF {
			return Request{}, io.EOF
		}
		if err != nil {
			return Request{}, err
		}
		d.lineno++
		line = bytes.TrimSpace(line)
		if len(line) == 0 || line[0] == '#' {
			continue
		}
		var f [8][]byte
		if n := splitComma(f[:], line); n != 7 {
			return Request{}, lineErrf("msrc line", d.lineno, nil, ": want 7 fields, got %d", n)
		}
		ts, err := parseIntBytes(f[0], 64)
		if err != nil {
			return Request{}, lineErrf("msrc line", d.lineno, err, " timestamp: %v", err)
		}
		if d.first {
			d.base = ts
			//tracelint:ignore hotpath first-record path: the workload name is captured once per stream
			d.meta.Workload = string(f[1])
			d.meta.Name = d.meta.Workload
			d.first = false
		}
		disk, err := parseUintBytes(f[2], 32)
		if err != nil {
			return Request{}, lineErrf("msrc line", d.lineno, err, " disk: %v", err)
		}
		op, err := parseOpBytes(f[3])
		if err != nil {
			return Request{}, lineErrf("msrc line", d.lineno, err, ": %v", err)
		}
		off, err := parseUintBytes(f[4], 64)
		if err != nil {
			return Request{}, lineErrf("msrc line", d.lineno, err, " offset: %v", err)
		}
		size, err := parseUintBytes(f[5], 64)
		if err != nil {
			return Request{}, lineErrf("msrc line", d.lineno, err, " size: %v", err)
		}
		resp, err := parseIntBytes(f[6], 64)
		if err != nil {
			return Request{}, lineErrf("msrc line", d.lineno, err, " response: %v", err)
		}
		sectors := uint32((size + SectorSize - 1) / SectorSize)
		if sectors == 0 {
			sectors = 1
		}
		return Request{
			Arrival: time.Duration(ts-d.base) * 100, // 100ns ticks
			Device:  uint32(disk),
			LBA:     off / SectorSize,
			Sectors: sectors,
			Op:      op,
			Latency: time.Duration(resp) * 100,
		}, nil
	}
}

// DecodeBatch implements BatchDecoder.
func (d *MSRCDecoder) DecodeBatch(dst []Request) (int, error) { return decodeBatch(d, dst) }

// lines implements lineCounter.
func (d *MSRCDecoder) lines() int { return d.lineno }

// --- SPC-1 ASCII ---

// SPCDecoder streams the SPC-1 ASCII format in file order.
type SPCDecoder struct {
	ls     *lineScanner
	lineno int
}

// NewSPCDecoder wraps r in an SPC request stream.
func NewSPCDecoder(r io.Reader) *SPCDecoder {
	return &SPCDecoder{ls: newLineScanner(r)}
}

// Meta implements Decoder.
func (d *SPCDecoder) Meta() Meta { return Meta{TsdevKnown: false} }

// Next implements Decoder.
//
//tracelint:hotpath
func (d *SPCDecoder) Next() (Request, error) {
	for {
		line, err := d.ls.next()
		if err == io.EOF {
			return Request{}, io.EOF
		}
		if err != nil {
			return Request{}, err
		}
		d.lineno++
		line = bytes.TrimSpace(line)
		if len(line) == 0 || line[0] == '#' {
			continue
		}
		var f [8][]byte
		if n := splitComma(f[:], line); n < 5 {
			return Request{}, lineErrf("spc line", d.lineno, nil, ": want 5 fields, got %d", n)
		}
		asu, err := parseUintBytes(bytes.TrimSpace(f[0]), 32)
		if err != nil {
			return Request{}, lineErrf("spc line", d.lineno, err, " asu: %v", err)
		}
		lba, err := parseUintBytes(bytes.TrimSpace(f[1]), 64)
		if err != nil {
			return Request{}, lineErrf("spc line", d.lineno, err, " lba: %v", err)
		}
		size, err := parseUintBytes(bytes.TrimSpace(f[2]), 64)
		if err != nil {
			return Request{}, lineErrf("spc line", d.lineno, err, " size: %v", err)
		}
		op, err := parseOpBytes(bytes.TrimSpace(f[3]))
		if err != nil {
			return Request{}, lineErrf("spc line", d.lineno, err, ": %v", err)
		}
		sec, err := parseFloatBytes(bytes.TrimSpace(f[4]))
		if err != nil {
			return Request{}, lineErrf("spc line", d.lineno, err, " timestamp: %v", err)
		}
		sectors := uint32((size + SectorSize - 1) / SectorSize)
		if sectors == 0 {
			sectors = 1
		}
		return Request{
			Arrival: time.Duration(sec * float64(time.Second)),
			Device:  uint32(asu),
			LBA:     lba,
			Sectors: sectors,
			Op:      op,
		}, nil
	}
}

// DecodeBatch implements BatchDecoder.
func (d *SPCDecoder) DecodeBatch(dst []Request) (int, error) { return decodeBatch(d, dst) }

// lines implements lineCounter.
func (d *SPCDecoder) lines() int { return d.lineno }

// --- blktrace text (encoder) ---

// BlktraceEncoder streams the blkparse-style D/C event text format.
type BlktraceEncoder struct {
	bw   *bufio.Writer
	name string
	seq  int
	buf  []byte // reusable line scratch
	num  []byte // reusable number scratch for padded fields
}

// NewBlktraceEncoder wraps w in a blktrace event sink.
func NewBlktraceEncoder(w io.Writer) *BlktraceEncoder {
	return &BlktraceEncoder{bw: bufio.NewWriter(w)}
}

// Begin implements Encoder.
func (e *BlktraceEncoder) Begin(m Meta) error {
	e.name = m.Name
	return nil
}

// appendEvent renders one blkparse-style event line, matching the
// previous fmt template "8,%d    0 %8d %14.9f  0  %c   %c %d + %d [%s]\n"
// byte for byte.
func (e *BlktraceEncoder) appendEvent(b []byte, dev uint32, seq int, at time.Duration, ev, rwbs byte, lba uint64, sectors uint32, tag string) []byte {
	b = append(b, "8,"...)
	b = strconv.AppendUint(b, uint64(dev), 10)
	b = append(b, "    0 "...)
	e.num = strconv.AppendInt(e.num[:0], int64(seq), 10)
	b = appendPadded(b, e.num, 8)
	b = append(b, ' ')
	e.num = strconv.AppendFloat(e.num[:0], at.Seconds(), 'f', 9, 64)
	b = appendPadded(b, e.num, 14)
	b = append(b, "  0  "...)
	b = append(b, ev)
	b = append(b, "   "...)
	b = append(b, rwbs, ' ')
	b = strconv.AppendUint(b, lba, 10)
	b = append(b, " + "...)
	b = strconv.AppendUint(b, uint64(sectors), 10)
	b = append(b, " ["...)
	b = append(b, tag...)
	b = append(b, "]\n"...)
	return b
}

// Write implements Encoder.
//
//tracelint:hotpath
func (e *BlktraceEncoder) Write(r Request) error {
	rwbs := byte('R')
	if r.Op == Write {
		rwbs = 'W'
	}
	e.seq++
	b := e.appendEvent(e.buf[:0], r.Device, e.seq, r.Arrival, 'D', rwbs, r.LBA, r.Sectors, e.name)
	if r.Latency > 0 {
		e.seq++
		b = e.appendEvent(b, r.Device, e.seq, r.Arrival+r.Latency, 'C', rwbs, r.LBA, r.Sectors, "0")
	}
	e.buf = b
	_, err := e.bw.Write(b)
	return err
}

// Close implements Encoder.
func (e *BlktraceEncoder) Close() error { return e.bw.Flush() }

// --- fio iolog v2 (encoder) ---

// FIOEncoder streams the fio iolog v2 replay format.
type FIOEncoder struct {
	bw     *bufio.Writer
	device string
	prev   time.Duration
	first  bool
	buf    []byte // reusable line scratch
}

// NewFIOEncoder wraps w in an iolog sink replaying against device.
func NewFIOEncoder(w io.Writer, device string) *FIOEncoder {
	return &FIOEncoder{bw: bufio.NewWriter(w), device: device, first: true}
}

// Begin implements Encoder.
func (e *FIOEncoder) Begin(Meta) error {
	fmt.Fprintln(e.bw, "fio version 2 iolog")
	fmt.Fprintf(e.bw, "%s add\n", e.device)
	_, err := fmt.Fprintf(e.bw, "%s open\n", e.device)
	return err
}

// Write implements Encoder.
//
//tracelint:hotpath
func (e *FIOEncoder) Write(r Request) error {
	b := e.buf[:0]
	if !e.first {
		if gap := r.Arrival - e.prev; gap > 0 {
			b = append(b, e.device...)
			b = append(b, " wait "...)
			b = strconv.AppendInt(b, gap.Microseconds(), 10)
			b = append(b, '\n')
		}
	}
	e.first = false
	e.prev = r.Arrival
	b = append(b, e.device...)
	if r.Op == Write {
		b = append(b, " write "...)
	} else {
		b = append(b, " read "...)
	}
	b = strconv.AppendInt(b, int64(r.LBA)*SectorSize, 10)
	b = append(b, ' ')
	b = strconv.AppendInt(b, r.Bytes(), 10)
	b = append(b, '\n')
	e.buf = b
	_, err := e.bw.Write(b)
	return err
}

// Close implements Encoder.
func (e *FIOEncoder) Close() error {
	fmt.Fprintf(e.bw, "%s close\n", e.device)
	return e.bw.Flush()
}

// --- bounded reordering ---

// reorderItem pairs a request with its input position for stable
// ordering of equal arrivals.
type reorderItem struct {
	req Request
	seq uint64
}

type reorderHeap []reorderItem

func (h reorderHeap) Len() int { return len(h) }
func (h reorderHeap) Less(i, j int) bool {
	if h[i].req.Arrival != h[j].req.Arrival {
		return h[i].req.Arrival < h[j].req.Arrival
	}
	return h[i].seq < h[j].seq
}
func (h reorderHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *reorderHeap) Push(x any)   { *h = append(*h, x.(reorderItem)) }
func (h *reorderHeap) Pop() (x any) { old := *h; n := len(old); x = old[n-1]; *h = old[:n-1]; return }

// reorderBatch is the refill read size of a ReorderDecoder.
const reorderBatch = 256

// ReorderDecoder wraps a decoder with a bounded min-heap window: as
// long as no request is displaced by more than window positions from
// its sorted slot, the output order equals the stable arrival sort the
// whole-trace readers produce — with O(window) memory instead of the
// whole trace. The heap never holds more than window+1 requests — the
// declared window is a hard buffering and read-ahead bound, not a hint
// batching may overshoot: whenever a DecodeBatch or Next call returns,
// the decoder has read at most window+1 records past what it has
// emitted. (Mid-call, a batched refill may transiently stage up to
// another window+1 records in its read scratch before draining them
// into the same call's output.)
//
// Refills are still batched. Emitting safely needs window+1 buffered
// candidates, so the steady state interleaves one read with one emit —
// but DecodeBatch reads each run of records from the inner decoder in
// a single batched call (up to the window deficit, capped at
// reorderBatch) and then drains it through the heap in push/pop
// lockstep, so the per-record inner cost is a devirtualized batch
// slot, not a full Next dispatch. Records decoded before a mid-stream
// inner error are emitted before the error surfaces, matching the
// sequential and parallel decoders' delivery contract. Event-traced
// corpora (MSRC) are near-sorted, so a small window suffices.
type ReorderDecoder struct {
	inner  Decoder
	window int
	h      reorderHeap
	seq    uint64
	done   bool
	primed bool // heap has reached window+1 once; steady state holds window
	err    error
	batch  []Request
}

// NewReorderDecoder wraps dec with a reorder window of the given size
// (minimum 1).
func NewReorderDecoder(dec Decoder, window int) *ReorderDecoder {
	if window < 1 {
		window = 1
	}
	return &ReorderDecoder{inner: dec, window: window}
}

// Meta implements Decoder.
func (d *ReorderDecoder) Meta() Meta { return d.inner.Meta() }

// Close stops the inner decoder's background workers, if it has any;
// see CloseDecoder.
func (d *ReorderDecoder) Close() { CloseDecoder(d.inner) }

// fill reads up to want records from the inner decoder in one batched
// call and pushes them onto the heap, latching EOF/errors.
func (d *ReorderDecoder) fill(want int) {
	if d.batch == nil {
		d.batch = make([]Request, reorderBatch)
	}
	if want > len(d.batch) {
		want = len(d.batch)
	}
	n, err := DecodeBatch(d.inner, d.batch[:want])
	for _, r := range d.batch[:n] {
		heap.Push(&d.h, reorderItem{req: r, seq: d.seq})
		d.seq++
	}
	if err == io.EOF {
		d.done = true
	} else if err != nil {
		d.err = err
	}
}

// Next implements Decoder.
func (d *ReorderDecoder) Next() (Request, error) {
	var one [1]Request
	if n, err := d.DecodeBatch(one[:]); n == 0 {
		return Request{}, err
	}
	return one[0], nil
}

// DecodeBatch implements BatchDecoder, with the interface's contract:
// (n, err) delivers the records still buffered ahead of the terminal
// condition together with it, and a full dst implies a nil error with
// the terminal surfacing on a later call.
func (d *ReorderDecoder) DecodeBatch(dst []Request) (int, error) {
	n := 0
	for n < len(dst) {
		switch {
		case !d.done && d.err == nil && !d.primed:
			// Initial fill to window+1 candidates, batched.
			d.fill(d.window + 1 - len(d.h))
			if len(d.h) > d.window {
				d.primed = true
			}
		case len(d.h) == 0:
			// Terminal: the latched error (or EOF) surfaces together
			// with any records emitted this call, the DecodeBatch
			// contract.
			if d.err == nil {
				d.err = io.EOF
			}
			return n, d.err
		case d.done || d.err != nil || len(d.h) > d.window:
			// Drain (stream over), or the first pop after priming.
			dst[n] = heap.Pop(&d.h).(reorderItem).req
			n++
		default:
			// Steady state: the heap holds exactly window requests. Read
			// the next run in one batched call, then emit in push/pop
			// lockstep — the heap peaks at window+1, never beyond.
			want := len(dst) - n
			if want > d.window+1 {
				want = d.window + 1
			}
			if want > reorderBatch {
				want = reorderBatch
			}
			if d.batch == nil {
				d.batch = make([]Request, reorderBatch)
			}
			k, err := DecodeBatch(d.inner, d.batch[:want])
			for _, r := range d.batch[:k] {
				heap.Push(&d.h, reorderItem{req: r, seq: d.seq})
				d.seq++
				dst[n] = heap.Pop(&d.h).(reorderItem).req
				n++
			}
			if err == io.EOF {
				d.done = true
			} else if err != nil {
				d.err = err
			}
		}
	}
	return n, nil
}
