package trace

// Allocation locks for the codec hot paths: steady-state Decoder.Next
// must not allocate for any input format, and Encoder.Write must not
// allocate for any output format. These are the properties the
// zero-allocation codec rewrite exists for; a regression here is a
// performance bug even when output stays correct.

import (
	"bytes"
	"io"
	"testing"
)

// allocSample renders a trace in the given input format.
func allocSample(t *testing.T, format string, n int) []byte {
	t.Helper()
	tr := benchTrace(n)
	var buf bytes.Buffer
	var err error
	switch format {
	case "csv":
		err = WriteCSV(&buf, tr)
	case "bin":
		err = WriteBinary(&buf, tr)
	case "msrc":
		err = writeMSRCStyle(&buf, tr)
	case "spc":
		err = writeSPCStyle(&buf, tr)
	default:
		t.Fatalf("unknown format %q", format)
	}
	if err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestDecoderNextZeroAlloc locks Decoder.Next to zero allocations per
// record in steady state, for all four input formats.
func TestDecoderNextZeroAlloc(t *testing.T) {
	const runs = 2000
	for _, format := range []string{"csv", "bin", "msrc", "spc"} {
		t.Run(format, func(t *testing.T) {
			data := allocSample(t, format, runs+100)
			dec, err := NewDecoder(format, bytes.NewReader(data))
			if err != nil {
				t.Fatal(err)
			}
			// Warm up: first reads grow scratch and fill buffers.
			for i := 0; i < 50; i++ {
				if _, err := dec.Next(); err != nil {
					t.Fatal(err)
				}
			}
			avg := testing.AllocsPerRun(runs, func() {
				if _, err := dec.Next(); err != nil {
					t.Fatal(err)
				}
			})
			if avg != 0 {
				t.Fatalf("%s Decoder.Next allocates %.3f per record, want 0", format, avg)
			}
		})
	}
}

// TestDecodeBatchZeroAlloc locks the batched decode path to zero
// allocations per batch in steady state.
func TestDecodeBatchZeroAlloc(t *testing.T) {
	const runs = 200
	const batch = 64
	for _, format := range []string{"csv", "bin", "msrc", "spc"} {
		t.Run(format, func(t *testing.T) {
			data := allocSample(t, format, (runs+10)*batch)
			dec, err := NewDecoder(format, bytes.NewReader(data))
			if err != nil {
				t.Fatal(err)
			}
			buf := make([]Request, batch)
			if _, err := DecodeBatch(dec, buf); err != nil {
				t.Fatal(err)
			}
			avg := testing.AllocsPerRun(runs, func() {
				if _, err := DecodeBatch(dec, buf); err != nil {
					t.Fatal(err)
				}
			})
			if avg != 0 {
				t.Fatalf("%s DecodeBatch allocates %.3f per batch, want 0", format, avg)
			}
		})
	}
}

// TestEncoderWriteZeroAlloc locks Encoder.Write to zero allocations
// per record in steady state, for all four output formats.
func TestEncoderWriteZeroAlloc(t *testing.T) {
	const runs = 2000
	reqs := benchTrace(64).Requests
	for _, format := range []string{"csv", "bin", "blktrace", "fio"} {
		t.Run(format, func(t *testing.T) {
			enc, err := NewEncoder(format, io.Discard, "/dev/alloc")
			if err != nil {
				t.Fatal(err)
			}
			if err := enc.Begin(Meta{Name: "alloc", Workload: "w", Set: "FIU", TsdevKnown: true}); err != nil {
				t.Fatal(err)
			}
			// Warm up the scratch buffers.
			for _, r := range reqs {
				if err := enc.Write(r); err != nil {
					t.Fatal(err)
				}
			}
			i := 0
			avg := testing.AllocsPerRun(runs, func() {
				if err := enc.Write(reqs[i%len(reqs)]); err != nil {
					t.Fatal(err)
				}
				i++
			})
			if avg != 0 {
				t.Fatalf("%s Encoder.Write allocates %.3f per record, want 0", format, avg)
			}
		})
	}
}

// TestSummarizerZeroAlloc locks the one-pass summarizer fold: ingest
// and tracestat -stream run it per record over whole corpora.
func TestSummarizerZeroAlloc(t *testing.T) {
	reqs := benchTrace(64).Requests
	acc := NewSummarizer()
	for _, r := range reqs {
		acc.Add(r)
	}
	i := 0
	avg := testing.AllocsPerRun(2000, func() {
		acc.Add(reqs[i%len(reqs)])
		i++
	})
	if avg != 0 {
		t.Fatalf("Summarizer.Add allocates %.3f per record, want 0", avg)
	}
}
