package trace

import (
	"bytes"
	"math"
	"testing"
	"time"
)

// summarySample is a sorted trace with a mix of ops, devices and a
// sequential run.
func summarySample() *Trace {
	return &Trace{
		Name: "sum", Workload: "w", Set: "FIU", TsdevKnown: true,
		Requests: []Request{
			{Arrival: 0, Device: 0, LBA: 100, Sectors: 8, Op: Read, Latency: 90 * time.Microsecond},
			{Arrival: 500 * time.Microsecond, Device: 0, LBA: 108, Sectors: 8, Op: Read},
			{Arrival: time.Millisecond, Device: 1, LBA: 50, Sectors: 16, Op: Write},
			{Arrival: 4 * time.Millisecond, Device: 0, LBA: 116, Sectors: 32, Op: Write},
			{Arrival: 10 * time.Millisecond, Device: 1, LBA: 9999, Sectors: 1, Op: Read},
		},
	}
}

// TestSummarizerMatchesTraceMethods locks the one-pass summary to the
// whole-trace accessor methods.
func TestSummarizerMatchesTraceMethods(t *testing.T) {
	tr := summarySample()
	var buf bytes.Buffer
	if err := WriteCSV(&buf, tr); err != nil {
		t.Fatal(err)
	}
	sum, err := Summarize(NewCSVDecoder(bytes.NewReader(buf.Bytes())))
	if err != nil {
		t.Fatal(err)
	}
	if sum.Requests != int64(tr.Len()) {
		t.Fatalf("requests: %d want %d", sum.Requests, tr.Len())
	}
	if sum.Duration() != tr.Duration() {
		t.Fatalf("duration: %v want %v", sum.Duration(), tr.Duration())
	}
	if sum.TotalBytes != tr.TotalBytes() {
		t.Fatalf("bytes: %d want %d", sum.TotalBytes, tr.TotalBytes())
	}
	if sum.ReadFraction() != tr.ReadFraction() {
		t.Fatalf("read fraction: %v want %v", sum.ReadFraction(), tr.ReadFraction())
	}
	if sum.SeqFraction() != tr.SeqFraction() {
		t.Fatalf("seq fraction: %v want %v", sum.SeqFraction(), tr.SeqFraction())
	}
	if sum.AvgRequestBytes() != tr.AvgRequestBytes() {
		t.Fatalf("avg bytes: %v want %v", sum.AvgRequestBytes(), tr.AvgRequestBytes())
	}
	if sum.Meta != tr.Meta() {
		t.Fatalf("meta: %+v want %+v", sum.Meta, tr.Meta())
	}

	// Inter-arrival moments against a direct computation.
	ia := tr.InterArrivalMicros()
	var mean, max float64
	for _, v := range ia {
		mean += v
		max = math.Max(max, v)
	}
	mean /= float64(len(ia))
	var m2 float64
	for _, v := range ia {
		m2 += (v - mean) * (v - mean)
	}
	std := math.Sqrt(m2 / float64(len(ia)))
	if math.Abs(sum.IntervalMeanUS-mean) > 1e-9 {
		t.Fatalf("ia mean: %v want %v", sum.IntervalMeanUS, mean)
	}
	if math.Abs(sum.IntervalStdUS-std) > 1e-6 {
		t.Fatalf("ia std: %v want %v", sum.IntervalStdUS, std)
	}
	if sum.IntervalMaxUS != max {
		t.Fatalf("ia max: %v want %v", sum.IntervalMaxUS, max)
	}
}

// TestSummarizerSmall covers the zero- and one-request edges.
func TestSummarizerSmall(t *testing.T) {
	empty := NewSummarizer().Summary(Meta{})
	if empty.Requests != 0 || empty.Duration() != 0 || empty.ReadFraction() != 0 ||
		empty.SeqFraction() != 0 || empty.AvgRequestBytes() != 0 {
		t.Fatalf("empty summary: %+v", empty)
	}
	one := NewSummarizer()
	one.Add(Request{Arrival: time.Second, LBA: 1, Sectors: 4, Op: Write})
	s := one.Summary(Meta{})
	if s.Requests != 1 || s.Duration() != 0 || s.IntervalMeanUS != 0 || s.TotalBytes != 4*SectorSize {
		t.Fatalf("single summary: %+v", s)
	}
}
