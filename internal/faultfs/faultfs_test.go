package faultfs

import (
	"bytes"
	"errors"
	"syscall"
	"testing"
)

func TestPassThroughWithoutRule(t *testing.T) {
	in := New()
	var buf bytes.Buffer
	w := in.Writer(SinkJournal, &buf)
	if _, err := w.Write([]byte("hello")); err != nil {
		t.Fatalf("unarmed writer failed: %v", err)
	}
	if buf.String() != "hello" {
		t.Fatalf("unarmed writer wrote %q", buf.String())
	}
	if in.Hits(SinkJournal) != 0 {
		t.Fatalf("unarmed sink recorded hits")
	}
}

func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	var buf bytes.Buffer
	if w := in.Writer(SinkCorpusObject, &buf); w != &buf {
		t.Fatalf("nil injector should return the writer unchanged")
	}
}

func TestFailAfterBytes(t *testing.T) {
	in := New()
	var buf bytes.Buffer
	w := in.Writer(SinkCorpusObject, &buf)
	in.Fail(SinkCorpusObject, 8, syscall.ENOSPC)

	if _, err := w.Write([]byte("12345678")); err != nil {
		t.Fatalf("write within allowance failed: %v", err)
	}
	n, err := w.Write([]byte("x"))
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("want ENOSPC, got n=%d err=%v", n, err)
	}
	if n != 0 {
		t.Fatalf("non-short rule leaked %d bytes of the failing write", n)
	}
	if buf.String() != "12345678" {
		t.Fatalf("buffer holds %q", buf.String())
	}
	// The rule keeps failing until cleared.
	if _, err := w.Write([]byte("y")); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("second write after fault: %v", err)
	}
	if in.Hits(SinkCorpusObject) != 2 {
		t.Fatalf("hits = %d, want 2", in.Hits(SinkCorpusObject))
	}

	in.Clear(SinkCorpusObject)
	if _, err := w.Write([]byte("z")); err != nil {
		t.Fatalf("write after Clear failed: %v", err)
	}
}

func TestFailShortTearsTheWrite(t *testing.T) {
	in := New()
	var buf bytes.Buffer
	w := in.Writer(SinkJournal, &buf)
	in.FailShort(SinkJournal, 3, syscall.EIO)

	n, err := w.Write([]byte("abcdef"))
	if !errors.Is(err, syscall.EIO) {
		t.Fatalf("want EIO, got n=%d err=%v", n, err)
	}
	if n != 3 || buf.String() != "abc" {
		t.Fatalf("torn write landed n=%d buf=%q, want 3 bytes %q", n, buf.String(), "abc")
	}
}

func TestMidStreamArming(t *testing.T) {
	in := New()
	var buf bytes.Buffer
	w := in.Writer(SinkCorpusResult, &buf)
	if _, err := w.Write([]byte("ok")); err != nil {
		t.Fatal(err)
	}
	in.Fail(SinkCorpusResult, 0, syscall.ENOSPC)
	if _, err := w.Write([]byte("no")); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("rule armed mid-stream did not fire: %v", err)
	}
}
