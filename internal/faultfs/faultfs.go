// Package faultfs injects write faults into the durability layer's
// storage sinks, for tests that prove a dying disk degrades the
// service instead of corrupting it. A sink is a named write path
// (corpus object spool, result-cache fill, job journal append); a
// component that supports fault injection wraps its writer with
// Injector.Writer under the sink's name, which is a no-op until a test
// arms a rule with Fail or FailShort.
//
// Rules fire byte-accurately: the first afterBytes pass through
// untouched, then every write fails with the configured error —
// usually a real errno such as syscall.ENOSPC or syscall.EIO, so
// errors.Is works on the propagated chain exactly as it would for the
// genuine fault. FailShort additionally commits the remaining
// allowance before failing, modelling a torn (short) write.
package faultfs

import (
	"io"
	"sync"
)

// Sink names for the repo's durability write paths.
const (
	// SinkCorpusObject is the ingest blob spool (corpus tmp/ staging).
	SinkCorpusObject = "corpus.object"
	// SinkCorpusResult is the result-cache fill.
	SinkCorpusResult = "corpus.result"
	// SinkJournal is the daemon's job-journal append.
	SinkJournal = "daemon.journal"
)

// rule is one armed fault: pass allow bytes, then fail with err.
type rule struct {
	allow int64
	err   error
	short bool
}

// Injector holds the armed fault rules, keyed by sink. The zero value
// is not usable; construct with New. A nil *Injector is inert.
type Injector struct {
	mu    sync.Mutex
	rules map[string]*rule
	hits  map[string]int
}

// New returns an Injector with no rules armed: every wrapped writer
// passes bytes through until a rule is set.
func New() *Injector {
	return &Injector{rules: make(map[string]*rule), hits: make(map[string]int)}
}

// Fail arms sink to pass afterBytes through and then fail every write
// with err (whole writes are rejected: no bytes of the failing write
// land). Re-arming a sink replaces its rule and allowance.
func (in *Injector) Fail(sink string, afterBytes int64, err error) {
	in.set(sink, &rule{allow: afterBytes, err: err})
}

// FailShort is Fail, but the write that exhausts the allowance is torn
// rather than rejected: its first bytes (up to the allowance) reach
// the underlying writer before the error returns — the shape a real
// device leaves when it dies mid-write.
func (in *Injector) FailShort(sink string, afterBytes int64, err error) {
	in.set(sink, &rule{allow: afterBytes, err: err, short: true})
}

func (in *Injector) set(sink string, r *rule) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.rules[sink] = r
}

// Clear disarms sink; wrapped writers pass through again.
func (in *Injector) Clear(sink string) {
	in.mu.Lock()
	defer in.mu.Unlock()
	delete(in.rules, sink)
}

// Hits reports how many writes sink's rule has failed since it was
// armed — a test asserting Hits > 0 knows the fault actually fired
// rather than the code path silently not writing.
func (in *Injector) Hits(sink string) int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.hits[sink]
}

// Writer wraps w with sink's fault rule. Safe on a nil Injector
// (returns w unchanged); the wrapper consults the rule on every write,
// so arming or clearing mid-stream takes effect immediately.
func (in *Injector) Writer(sink string, w io.Writer) io.Writer {
	if in == nil {
		return w
	}
	return &faultWriter{in: in, sink: sink, w: w}
}

type faultWriter struct {
	in   *Injector
	sink string
	w    io.Writer
}

func (f *faultWriter) Write(p []byte) (int, error) {
	f.in.mu.Lock()
	r := f.in.rules[f.sink]
	if r == nil {
		f.in.mu.Unlock()
		return f.w.Write(p)
	}
	if int64(len(p)) <= r.allow {
		r.allow -= int64(len(p))
		f.in.mu.Unlock()
		return f.w.Write(p)
	}
	n := r.allow
	r.allow = 0
	f.in.hits[f.sink]++
	err, short := r.err, r.short
	f.in.mu.Unlock()
	if short && n > 0 {
		wn, werr := f.w.Write(p[:n])
		if werr != nil {
			return wn, werr
		}
		return wn, err
	}
	return 0, err
}
