package engine

import (
	"bytes"
	"io"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/trace"
)

// hddConfigs returns the device variants the pipelined path must
// reproduce: the default 7200rpm profile and a write-back-cache
// variant, whose busyUntil can exceed the last host-visible completion
// at an epoch boundary — exactly the state the snapshot handoff must
// carry.
func hddConfigs() map[string]device.HDDConfig {
	wc := device.DefaultHDDConfig()
	wc.WriteCache = true
	return map[string]device.HDDConfig{
		"default":    device.DefaultHDDConfig(),
		"writecache": wc,
	}
}

// TestPipelinedHDDByteIdentical is the acceptance lock of the
// epoch-pipelined path: for workers 1, 4 and 8 the HDD reconstruction
// is byte-identical to the sequential core pipeline (the pre-pipeline
// serial fallback), across workload families, both latency paths, both
// post-processing settings, and both cache configurations.
func TestPipelinedHDDByteIdentical(t *testing.T) {
	for cfgName, hddCfg := range hddConfigs() {
		mk := func() device.Device { return device.NewHDD(hddCfg) }
		for _, family := range []string{"ikki", "MSNFS", "Exchange"} {
			for _, tsdev := range []bool{true, false} {
				for _, skipPost := range []bool{false, true} {
					opts := core.Options{SkipPostProcess: skipPost}
					old := genOld(t, family, 3000, tsdev)
					wantTrace, wantRep, err := core.Reconstruct(old, mk(), opts)
					if err != nil {
						t.Fatalf("%s/%s tsdev=%v: sequential: %v", cfgName, family, tsdev, err)
					}
					want := traceBytes(t, wantTrace)
					for _, workers := range []int{1, 4, 8} {
						cfg := testConfig(workers, opts)
						cfg.Device = mk
						gotTrace, gotRep, err := New(cfg).Reconstruct(old)
						if err != nil {
							t.Fatalf("%s/%s tsdev=%v w=%d: pipelined: %v", cfgName, family, tsdev, workers, err)
						}
						if got := traceBytes(t, gotTrace); !bytes.Equal(got, want) {
							t.Fatalf("%s/%s tsdev=%v skipPost=%v w=%d: pipelined HDD output not byte-identical to the serial path",
								cfgName, family, tsdev, skipPost, workers)
						}
						if gotRep.Shards < 2 {
							t.Fatalf("%s/%s w=%d: expected multiple epochs, got %d", cfgName, family, workers, gotRep.Shards)
						}
						if gotRep.IdleCount != wantRep.IdleCount || gotRep.IdleTotal != wantRep.IdleTotal ||
							gotRep.AsyncCount != wantRep.AsyncCount {
							t.Fatalf("%s/%s tsdev=%v w=%d: report aggregates diverge: got %d/%v/%d want %d/%v/%d",
								cfgName, family, tsdev, workers,
								gotRep.IdleCount, gotRep.IdleTotal, gotRep.AsyncCount,
								wantRep.IdleCount, wantRep.IdleTotal, wantRep.AsyncCount)
						}
						if !reflect.DeepEqual(gotRep.Idle, wantRep.Idle) || !reflect.DeepEqual(gotRep.Async, wantRep.Async) {
							t.Fatalf("%s/%s tsdev=%v w=%d: per-instruction report diverges", cfgName, family, tsdev, workers)
						}
						if !reflect.DeepEqual(gotRep.Model, wantRep.Model) {
							t.Fatalf("%s/%s tsdev=%v w=%d: model diverges", cfgName, family, tsdev, workers)
						}
					}
				}
			}
		}
	}
}

// TestPipelinedHDDStream checks the streaming HDD path: for every
// worker count and for each encoder class — csv/bin take the
// parallel-rendered ShardEncoder splice, blktrace the serial record
// fallback — the streamed bytes equal a direct whole-trace encode of
// the sequential reconstruction.
func TestPipelinedHDDStream(t *testing.T) {
	mk := func() device.Device { return device.NewHDD(device.DefaultHDDConfig()) }
	for _, tsdev := range []bool{true, false} {
		old := genOld(t, "MSNFS", 3000, tsdev)
		wantTrace, wantRep, err := core.Reconstruct(old, mk(), core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		var input bytes.Buffer
		if err := trace.WriteBinary(&input, old); err != nil {
			t.Fatal(err)
		}
		encoders := map[string]struct {
			enc  func(w *bytes.Buffer) trace.Encoder
			want func(w *bytes.Buffer) error
		}{
			"csv": {
				enc:  func(w *bytes.Buffer) trace.Encoder { return trace.NewCSVEncoder(w) },
				want: func(w *bytes.Buffer) error { return trace.WriteCSV(w, wantTrace) },
			},
			"bin": {
				enc: func(w *bytes.Buffer) trace.Encoder { return trace.NewBinaryEncoder(w) },
				want: func(w *bytes.Buffer) error {
					return trace.EncodeTrace(trace.NewBinaryEncoder(w), wantTrace)
				},
			},
			"blktrace": {
				enc: func(w *bytes.Buffer) trace.Encoder { return trace.NewBlktraceEncoder(w) },
				want: func(w *bytes.Buffer) error {
					return trace.EncodeTrace(trace.NewBlktraceEncoder(w), wantTrace)
				},
			},
		}
		for encName, ec := range encoders {
			var want bytes.Buffer
			if err := ec.want(&want); err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 4, 8} {
				cfg := testConfig(workers, core.Options{})
				cfg.Device = mk
				e := New(cfg)
				var got bytes.Buffer
				rep, err := e.ReconstructStream(
					trace.NewBinaryDecoder(bytes.NewReader(input.Bytes())),
					ec.enc(&got),
					wantRep.Model,
				)
				if err != nil {
					t.Fatalf("%s tsdev=%v w=%d: stream: %v", encName, tsdev, workers, err)
				}
				if !bytes.Equal(got.Bytes(), want.Bytes()) {
					t.Fatalf("%s tsdev=%v w=%d: streamed HDD output diverges from the serial path", encName, tsdev, workers)
				}
				if rep.Requests != int64(old.Len()) {
					t.Fatalf("%s w=%d: stream report requests %d want %d", encName, workers, rep.Requests, old.Len())
				}
				if rep.Shards < 2 {
					t.Fatalf("%s w=%d: expected multiple epochs, got %d", encName, workers, rep.Shards)
				}
				if rep.IdleCount != wantRep.IdleCount || rep.AsyncCount != wantRep.AsyncCount {
					t.Fatalf("%s w=%d: stream aggregates diverge", encName, workers)
				}
			}
		}
	}
}

// TestPipelinedHDDStreamErrors checks the pipelined path keeps the
// streaming error contract: planner validation surfaces, and an
// encoder failure aborts the run instead of draining the input.
func TestPipelinedHDDStreamErrors(t *testing.T) {
	cfg := testConfig(4, core.Options{})
	cfg.Device = func() device.Device { return device.NewHDD(device.DefaultHDDConfig()) }
	e := New(cfg)

	old := genOld(t, "ikki", 2000, true)
	var input bytes.Buffer
	if err := trace.WriteBinary(&input, old); err != nil {
		t.Fatal(err)
	}
	// failingEncoder is not a ShardEncoder, so the pipelined path takes
	// the serial record fallback and must stop after the first failed
	// Write instead of draining the input.
	enc := &failingEncoder{}
	if _, err := e.ReconstructStream(trace.NewBinaryDecoder(bytes.NewReader(input.Bytes())), enc, nil); err != io.ErrShortWrite {
		t.Fatalf("want the encoder's error, got %v", err)
	}
	if enc.writes != 1 {
		t.Fatalf("failing encoder written %d times, want 1", enc.writes)
	}

	// Planner validation (unsorted input) surfaces as the run error.
	unsorted := "# tracetracker name=x workload=w set=S tsdev_known=true\n" +
		"10.000,0,100,8,R,5.000,0\n" +
		"1.000,0,200,8,R,5.000,0\n"
	_, err := e.ReconstructStream(trace.NewCSVDecoder(strings.NewReader(unsorted)), trace.NewCSVEncoder(io.Discard), nil)
	if err == nil || !strings.Contains(err.Error(), "not sorted") {
		t.Fatalf("unsorted input: got %v", err)
	}
}
