package engine

import (
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/obs"
)

// reconstructWithTracer runs one traced reconstruction and returns
// the exported span tree.
func reconstructWithTracer(t *testing.T, cfg Config) *obs.JobTrace {
	t.Helper()
	tr := genOld(t, "MSNFS", 4000, true)
	tracer := obs.NewTracer("traced-job", 0, obs.TraceContext{})
	cfg.Trace = tracer
	out, _, err := New(cfg).Reconstruct(tr)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != tr.Len() {
		t.Fatalf("reconstructed %d of %d requests", out.Len(), tr.Len())
	}
	return tracer.Finish()
}

// verifySpanTree checks the invariants both executors must produce:
// the root span covers every other span, a plan span hangs off the
// root, and the sampled epoch spans carry their index plus the
// executor's per-stage children.
func verifySpanTree(t *testing.T, jt *obs.JobTrace, wantEpochChildren []string) {
	t.Helper()
	if len(jt.Spans) == 0 {
		t.Fatal("no spans recorded")
	}
	root := jt.Spans[0]
	if root.Parent != "" {
		t.Fatalf("first span is not the root: %+v", root)
	}
	children := map[string][]obs.SpanOut{}
	for _, s := range jt.Spans[1:] {
		if s.StartNS < root.StartNS || s.EndNS > root.EndNS {
			t.Fatalf("span %s [%d,%d] escapes the root [%d,%d]",
				s.Name, s.StartNS, s.EndNS, root.StartNS, root.EndNS)
		}
		children[s.Parent] = append(children[s.Parent], s)
	}

	var plan, epochs []obs.SpanOut
	for _, s := range children[root.ID] {
		switch s.Name {
		case "plan":
			plan = append(plan, s)
		case "epoch":
			epochs = append(epochs, s)
		}
	}
	if len(plan) != 1 {
		t.Fatalf("found %d plan spans, want 1", len(plan))
	}
	if _, ok := plan[0].Attrs["token_wait_ns"]; !ok {
		t.Fatalf("plan span missing token_wait_ns attr: %+v", plan[0])
	}
	if len(epochs) < 2 {
		t.Fatalf("found %d epoch spans, want several (small-shard config)", len(epochs))
	}
	for _, ep := range epochs {
		if ep.Attrs["requests"] <= 0 {
			t.Fatalf("epoch span missing request count: %+v", ep)
		}
		if ep.Duration() <= 0 {
			t.Fatalf("epoch span has no duration: %+v", ep)
		}
		var names []string
		for _, c := range children[ep.ID] {
			names = append(names, c.Name)
			if c.StartNS < ep.StartNS || c.EndNS > ep.EndNS {
				t.Fatalf("stage %s [%d,%d] escapes its epoch [%d,%d]",
					c.Name, c.StartNS, c.EndNS, ep.StartNS, ep.EndNS)
			}
		}
		sort.Strings(names)
		want := append([]string(nil), wantEpochChildren...)
		sort.Strings(want)
		if len(names) != len(want) {
			t.Fatalf("epoch %d children %v, want %v", ep.Attrs["epoch"], names, want)
		}
		for i := range names {
			if names[i] != want[i] {
				t.Fatalf("epoch %d children %v, want %v", ep.Attrs["epoch"], names, want)
			}
		}
	}
	// Epoch indexes are distinct and ascending (stride sampling).
	for i := 1; i < len(epochs); i++ {
		if epochs[i].Attrs["epoch"] <= epochs[i-1].Attrs["epoch"] {
			t.Fatalf("epoch indexes not ascending: %+v", epochs)
		}
	}
}

// TestTraceSpanTreeShardSafe covers the shard-parallel executor:
// decompose and emulate run fused in the worker, merge on the
// collector.
func TestTraceSpanTreeShardSafe(t *testing.T) {
	jt := reconstructWithTracer(t, testConfig(4, core.Options{}))
	verifySpanTree(t, jt, []string{"decompose", "emulate", "merge"})
}

// TestTraceSpanTreePipelined covers the HDD epoch pipeline, which
// adds the serialized device-state service stage.
func TestTraceSpanTreePipelined(t *testing.T) {
	cfg := testConfig(4, core.Options{})
	cfg.Device = func() device.Device { return device.NewHDD(device.DefaultHDDConfig()) }
	jt := reconstructWithTracer(t, cfg)
	verifySpanTree(t, jt, []string{"decompose", "service", "emulate", "merge"})
}
