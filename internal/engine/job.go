package engine

import (
	"fmt"
	"io"
	"os"
	"sync/atomic"
	"time"

	"repro/internal/baseline"
	"repro/internal/device"
	"repro/internal/obs"
	"repro/internal/trace"
)

// DefaultReorderWindow is the bounded arrival-sort window streaming
// jobs apply to near-sorted corpora (msrc/spc inputs).
const DefaultReorderWindow = 1 << 16

// JobSpec describes one batch reconstruction: the JSON body
// tracetrackerd accepts and the unit of work RunJob executes.
type JobSpec struct {
	// Name labels the job (defaults to the input path).
	Name string `json:"name,omitempty"`
	// In is the input trace path; InFormat one of csv, bin, msrc, spc.
	In       string `json:"in"`
	InFormat string `json:"informat,omitempty"`
	// Out is the output path; empty keeps the result in memory for the
	// result endpoint. OutFormat one of csv, bin, blktrace, fio.
	Out       string `json:"out,omitempty"`
	OutFormat string `json:"outformat,omitempty"`
	// FIODevice is the replay target embedded in fio output.
	FIODevice string `json:"fio_device,omitempty"`
	// Method is one of tracetracker (default), dynamic, fixed-th,
	// revision, acceleration.
	Method string `json:"method,omitempty"`
	// Device is the reconstruction target: "array" (default; alias
	// "new" — the paper's 4-SSD flash array), "ssd" (one member SSD),
	// or "hdd" (alias "old" — the decade-old disk the public traces
	// were captured on). HDD jobs run on the engine's epoch-pipelined
	// path, so Parallel applies to them like any other job.
	Device string `json:"device,omitempty"`
	// Factor is the acceleration divisor (acceleration method).
	Factor float64 `json:"factor,omitempty"`
	// ThresholdUS is the fixed-th idle threshold in microseconds.
	ThresholdUS float64 `json:"threshold_us,omitempty"`
	// Parallel overrides the engine worker count (0 = engine default).
	Parallel int `json:"parallel,omitempty"`
	// Stream selects the bounded-memory streaming path (requires In
	// and Out paths; tracetracker/dynamic methods only).
	Stream bool `json:"stream,omitempty"`
	// ReorderWindow bounds the streaming arrival sort (0 = default for
	// msrc/spc inputs, 1 = none).
	ReorderWindow int `json:"reorder_window,omitempty"`
}

// Normalized returns the spec with all defaults applied — the form
// RunJob executes and servers should persist, so later consumers (for
// example a result endpoint re-encoding an in-memory trace) see the
// same effective values RunJob used.
func (s JobSpec) Normalized() JobSpec { return s.withDefaults() }

func (s JobSpec) withDefaults() JobSpec {
	if s.InFormat == "" {
		s.InFormat = "csv"
	}
	if s.OutFormat == "" {
		s.OutFormat = "csv"
	}
	if s.Method == "" {
		s.Method = "tracetracker"
	}
	s.Device = normalizeDevice(s.Device)
	if s.Name == "" {
		s.Name = s.In
	}
	if s.FIODevice == "" {
		s.FIODevice = "/dev/nvme0n1"
	}
	if s.Factor == 0 {
		s.Factor = baseline.DefaultAccelerationFactor
	}
	if s.ThresholdUS == 0 {
		s.ThresholdUS = float64(baseline.DefaultFixedThreshold) / float64(time.Microsecond)
	}
	if s.ReorderWindow == 0 && trace.NeedsSort(s.InFormat) {
		s.ReorderWindow = DefaultReorderWindow
	}
	return s
}

// Validate rejects specs RunJob cannot execute. Call it on a
// Normalized spec — normalization is the single place defaults are
// applied.
func (s JobSpec) Validate() error {
	if s.In == "" {
		return fmt.Errorf("engine: job needs an input path")
	}
	switch s.InFormat {
	case "csv", "bin", "msrc", "spc":
	default:
		return fmt.Errorf("engine: unknown input format %q", s.InFormat)
	}
	switch s.OutFormat {
	case "csv", "bin", "blktrace", "fio":
	default:
		return fmt.Errorf("engine: unknown output format %q", s.OutFormat)
	}
	switch s.Method {
	case "tracetracker", "dynamic", "fixed-th", "revision", "acceleration":
	default:
		return fmt.Errorf("engine: unknown method %q", s.Method)
	}
	if _, err := DeviceFactory(s.Device); err != nil {
		return err
	}
	if s.Stream {
		if s.Method != "tracetracker" && s.Method != "dynamic" {
			return fmt.Errorf("engine: streaming supports the tracetracker/dynamic methods, not %q", s.Method)
		}
		if s.Out == "" {
			return fmt.Errorf("engine: streaming jobs need an output path")
		}
	}
	return nil
}

// normalizeDevice canonicalizes JobSpec.Device aliases; unknown names
// pass through for Validate to reject.
func normalizeDevice(name string) string {
	switch name {
	case "", "new", "array":
		return "array"
	case "old", "hdd":
		return "hdd"
	default:
		return name
	}
}

// DeviceFactory maps a JobSpec.Device name (aliases included, "" =
// array) to a per-worker device constructor for engine.Config.Device.
func DeviceFactory(name string) (func() device.Device, error) {
	switch normalizeDevice(name) {
	case "array":
		return func() device.Device { return device.NewArray(device.DefaultArrayConfig()) }, nil
	case "ssd":
		return func() device.Device { return device.NewSSD(device.DefaultSSDConfig()) }, nil
	case "hdd":
		return func() device.Device { return device.NewHDD(device.DefaultHDDConfig()) }, nil
	default:
		return nil, fmt.Errorf("engine: unknown device %q", name)
	}
}

// JobResult is the outcome of one job.
type JobResult struct {
	// Report carries engine diagnostics (nil for baseline methods).
	Report *Report
	// OutPath is where the output was written ("" if held in memory).
	OutPath string
	// Trace is the in-memory result when no output path was given.
	Trace *trace.Trace
}

// RunJob executes one batch reconstruction with cfg as the engine
// base configuration (the spec's Parallel overrides its Workers).
func RunJob(cfg Config, spec JobSpec) (*JobResult, error) {
	spec = spec.Normalized()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if spec.Parallel > 0 {
		cfg.Workers = spec.Parallel
	}
	// The spec's device selects the target for every method; HDD
	// targets run on the epoch-pipelined engine path at the job's full
	// worker count — they no longer imply a serial reconstruction.
	dev, err := DeviceFactory(spec.Device)
	if err != nil {
		return nil, err
	}
	cfg.Device = dev
	switch spec.Method {
	case "dynamic":
		cfg.Core.SkipPostProcess = true
	case "tracetracker":
	default:
		return runBaselineJob(cfg, spec)
	}
	eng := New(cfg)

	if spec.Stream {
		// Probe the input before touching the output, so a job with a
		// bad input path cannot clobber an existing file.
		if _, err := os.Stat(spec.In); err != nil {
			return nil, err
		}
		var rep *Report
		err := writeAtomically(spec.Out, func(out io.Writer) error {
			enc, err := trace.NewEncoder(spec.OutFormat, out, spec.FIODevice)
			if err != nil {
				return err
			}
			rep, err = eng.ReconstructPath(spec.In, spec.InFormat, spec.ReorderWindow, enc)
			return err
		})
		if err != nil {
			return nil, err
		}
		return &JobResult{Report: rep, OutPath: spec.Out}, nil
	}

	dsp := cfg.Trace.Start(cfg.Trace.Root(), "decode")
	old, err := readTraceFile(spec.In, spec.InFormat)
	dsp.End()
	if err != nil {
		return nil, err
	}
	if err := old.Validate(); err != nil {
		return nil, fmt.Errorf("input: %w", err)
	}
	result, rep, err := eng.Reconstruct(old)
	if err != nil {
		return nil, err
	}
	return finishJob(cfg.Trace, spec, result, reportFromCore(rep, int64(result.Len()), eng.cfg.Workers))
}

// runBaselineJob executes the non-engine comparison methods (always
// in memory and sequential — they exist for fidelity comparisons, not
// throughput).
func runBaselineJob(cfg Config, spec JobSpec) (*JobResult, error) {
	dsp := cfg.Trace.Start(cfg.Trace.Root(), "decode")
	old, err := readTraceFile(spec.In, spec.InFormat)
	dsp.End()
	if err != nil {
		return nil, err
	}
	if err := old.Validate(); err != nil {
		return nil, fmt.Errorf("input: %w", err)
	}
	var result *trace.Trace
	rsp := cfg.Trace.Start(cfg.Trace.Root(), "reconstruct")
	switch spec.Method {
	case "fixed-th":
		result = baseline.FixedTh(old, cfg.withDefaults().Device(), time.Duration(spec.ThresholdUS*float64(time.Microsecond)))
	case "revision":
		result = baseline.Revision(old, cfg.withDefaults().Device())
	case "acceleration":
		result = baseline.Acceleration(old, spec.Factor)
	}
	rsp.End()
	return finishJob(cfg.Trace, spec, result, nil)
}

// finishJob writes or retains the result per the spec.
func finishJob(tr *obs.Tracer, spec JobSpec, result *trace.Trace, rep *Report) (*JobResult, error) {
	if spec.Out == "" {
		return &JobResult{Report: rep, Trace: result}, nil
	}
	esp := tr.Start(tr.Root(), "encode")
	err := writeAtomically(spec.Out, func(w io.Writer) error {
		return writeTraceTo(w, spec.OutFormat, spec.FIODevice, result)
	})
	esp.End()
	if err != nil {
		return nil, err
	}
	return &JobResult{Report: rep, OutPath: spec.Out}, nil
}

// partialSeq disambiguates concurrent partial files within this
// process; the pid handles other processes.
var partialSeq atomic.Uint64

// writeAtomically runs write against a uniquely named partial file
// next to the target and renames it over the target only on success,
// so a failed or interrupted job never truncates an existing output
// and two jobs racing on the same output path cannot corrupt each
// other (last rename wins whole). The partial is opened with the same
// 0666-through-umask permissions os.Create gives a directly written
// output.
func writeAtomically(path string, write func(io.Writer) error) error {
	partial := fmt.Sprintf("%s.partial-%d-%d", path, os.Getpid(), partialSeq.Add(1))
	tmp, err := os.OpenFile(partial, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o666)
	if err != nil {
		return err
	}
	defer func() {
		if tmp != nil {
			tmp.Close()
			os.Remove(partial)
		}
	}()
	if err := write(tmp); err != nil {
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(partial)
		tmp = nil
		return err
	}
	tmp = nil
	if err := os.Rename(partial, path); err != nil {
		os.Remove(partial)
		return err
	}
	return nil
}

// readTraceFile materializes a whole trace from a file.
func readTraceFile(path, format string) (*trace.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return trace.ReadFormat(format, f)
}

// writeTraceTo renders a whole trace in the named format.
func writeTraceTo(w io.Writer, format, fioDevice string, t *trace.Trace) error {
	enc, err := trace.NewEncoder(format, w, fioDevice)
	if err != nil {
		return err
	}
	return trace.EncodeTrace(enc, t)
}
