package engine

import (
	"fmt"
	"io"
	"os"
	"sync/atomic"
	"time"

	"repro/internal/baseline"
	"repro/internal/obs"
	"repro/internal/trace"
)

// DefaultReorderWindow is the bounded arrival-sort window streaming
// jobs apply to near-sorted corpora (msrc/spc inputs).
const DefaultReorderWindow = 1 << 16

// JobSpec describes one batch reconstruction: the JSON body
// tracetrackerd accepts and the unit of work RunJob executes.
type JobSpec struct {
	// Name labels the job (defaults to the input path).
	Name string `json:"name,omitempty"`
	// In is the input trace path; InFormat one of csv, bin, msrc, spc.
	In       string `json:"in"`
	InFormat string `json:"informat,omitempty"`
	// Out is the output path; empty keeps the result in memory for the
	// result endpoint. OutFormat one of csv, bin, blktrace, fio.
	Out       string `json:"out,omitempty"`
	OutFormat string `json:"outformat,omitempty"`
	// FIODevice is the replay target embedded in fio output.
	FIODevice string `json:"fio_device,omitempty"`
	// Method is one of tracetracker (default), dynamic, fixed-th,
	// revision, acceleration.
	Method string `json:"method,omitempty"`
	// Device is the reconstruction target: "array" (default; alias
	// "new" — the paper's 4-SSD flash array), "ssd" (one member SSD),
	// "hdd" (alias "old" — the decade-old disk the public traces were
	// captured on), "ftl" (page-mapped flash translation layer with
	// background GC in idle gaps), or "host" (alias "hoststack" — the
	// syscall/page-cache/writeback stack over an inner device). The
	// stateful targets (hdd, ftl, host) run on the engine's
	// epoch-pipelined path, so Parallel applies to them like any other
	// job. See the engine device registry (Devices) for the full
	// capability table.
	Device string `json:"device,omitempty"`
	// FTLConfig tunes the "ftl" target; it must be unset for other
	// targets and enters the spec fingerprint only when selected.
	FTLConfig *FTLSpec `json:"ftl_config,omitempty"`
	// HostConfig tunes the "host" target, same contract as FTLConfig.
	HostConfig *HostSpec `json:"host_config,omitempty"`
	// Factor is the acceleration divisor (acceleration method).
	Factor float64 `json:"factor,omitempty"`
	// ThresholdUS is the fixed-th idle threshold in microseconds.
	ThresholdUS float64 `json:"threshold_us,omitempty"`
	// Parallel overrides the engine worker count (0 = engine default).
	Parallel int `json:"parallel,omitempty"`
	// Stream selects the bounded-memory streaming path (requires In
	// and Out paths; tracetracker/dynamic methods only).
	Stream bool `json:"stream,omitempty"`
	// ReorderWindow bounds the streaming arrival sort (0 = default for
	// msrc/spc inputs, 1 = none).
	ReorderWindow int `json:"reorder_window,omitempty"`
}

// Normalized returns the spec with all defaults applied — the form
// RunJob executes and servers should persist, so later consumers (for
// example a result endpoint re-encoding an in-memory trace) see the
// same effective values RunJob used.
func (s JobSpec) Normalized() JobSpec { return s.withDefaults() }

func (s JobSpec) withDefaults() JobSpec {
	if s.InFormat == "" {
		s.InFormat = "csv"
	}
	if s.OutFormat == "" {
		s.OutFormat = "csv"
	}
	if s.Method == "" {
		s.Method = "tracetracker"
	}
	s.Device = normalizeDevice(s.Device)
	if s.Name == "" {
		s.Name = s.In
	}
	if s.FIODevice == "" {
		s.FIODevice = "/dev/nvme0n1"
	}
	if s.Factor == 0 {
		s.Factor = baseline.DefaultAccelerationFactor
	}
	if s.ThresholdUS == 0 {
		s.ThresholdUS = float64(baseline.DefaultFixedThreshold) / float64(time.Microsecond)
	}
	if s.ReorderWindow == 0 && trace.NeedsSort(s.InFormat) {
		s.ReorderWindow = DefaultReorderWindow
	}
	// Canonicalize the nested device configs so semantically equal
	// specs fingerprint equally: an all-defaults config is the same as
	// none, and inner-device aliases normalize. The pointers are copied
	// before mutation — a spec shares no state with its Normalized form.
	if s.FTLConfig != nil && *s.FTLConfig == (FTLSpec{}) {
		s.FTLConfig = nil
	}
	if s.HostConfig != nil {
		hc := *s.HostConfig
		if hc.Inner != "" {
			hc.Inner = normalizeDevice(hc.Inner)
		}
		if hc == (HostSpec{}) {
			s.HostConfig = nil
		} else {
			s.HostConfig = &hc
		}
	}
	return s
}

// ValidationError is a JobSpec validation failure: Field names the
// offending JSON field and Code is a stable machine-readable cause the
// daemon's error envelope forwards to clients.
type ValidationError struct {
	// Field is the JSON field path, e.g. "device" or "ftl_config.blocks".
	Field string
	// Code is the stable cause, e.g. "unknown_device".
	Code string //tracelint:errcode-field
	msg  string
}

func (e *ValidationError) Error() string {
	return "engine: " + e.Field + ": " + e.msg
}

// Validate rejects specs RunJob cannot execute. Call it on a
// Normalized spec — normalization is the single place defaults are
// applied.
func (s JobSpec) Validate() error {
	if s.In == "" {
		return &ValidationError{Field: "in", Code: "missing_input",
			msg: "job needs an input path"}
	}
	switch s.InFormat {
	case "csv", "bin", "msrc", "spc":
	default:
		return &ValidationError{Field: "informat", Code: "unknown_format",
			msg: fmt.Sprintf("unknown input format %q", s.InFormat)}
	}
	switch s.OutFormat {
	case "csv", "bin", "blktrace", "fio":
	default:
		return &ValidationError{Field: "outformat", Code: "unknown_format",
			msg: fmt.Sprintf("unknown output format %q", s.OutFormat)}
	}
	switch s.Method {
	case "tracetracker", "dynamic", "fixed-th", "revision", "acceleration":
	default:
		return &ValidationError{Field: "method", Code: "unknown_method",
			msg: fmt.Sprintf("unknown method %q", s.Method)}
	}
	dev := normalizeDevice(s.Device)
	if deviceEntryFor(dev) == nil {
		return &ValidationError{Field: "device", Code: "unknown_device",
			msg: fmt.Sprintf("unknown device %q", s.Device)}
	}
	if s.FTLConfig != nil && dev != "ftl" {
		return &ValidationError{Field: "ftl_config", Code: "config_mismatch",
			msg: fmt.Sprintf("ftl_config is only valid for the ftl device, not %q", dev)}
	}
	if s.HostConfig != nil && dev != "host" {
		return &ValidationError{Field: "host_config", Code: "config_mismatch",
			msg: fmt.Sprintf("host_config is only valid for the host device, not %q", dev)}
	}
	if err := s.FTLConfig.validate(); err != nil {
		return err
	}
	if err := s.HostConfig.validate(); err != nil {
		return err
	}
	if s.Stream {
		if s.Method != "tracetracker" && s.Method != "dynamic" {
			return &ValidationError{Field: "stream", Code: "bad_stream_spec",
				msg: fmt.Sprintf("streaming supports the tracetracker/dynamic methods, not %q", s.Method)}
		}
		if s.Out == "" {
			return &ValidationError{Field: "out", Code: "bad_stream_spec",
				msg: "streaming jobs need an output path"}
		}
	}
	return nil
}

// JobResult is the outcome of one job.
type JobResult struct {
	// Report carries engine diagnostics (nil for baseline methods).
	Report *Report
	// OutPath is where the output was written ("" if held in memory).
	OutPath string
	// Trace is the in-memory result when no output path was given.
	Trace *trace.Trace
}

// RunJob executes one batch reconstruction with cfg as the engine
// base configuration (the spec's Parallel overrides its Workers).
func RunJob(cfg Config, spec JobSpec) (*JobResult, error) {
	spec = spec.Normalized()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if spec.Parallel > 0 {
		cfg.Workers = spec.Parallel
	}
	// The spec's device selects the target for every method; stateful
	// targets (hdd, ftl, host) run on the epoch-pipelined engine path
	// at the job's full worker count — they never imply a serial
	// reconstruction.
	dev, err := deviceFactoryFor(spec)
	if err != nil {
		return nil, err
	}
	cfg.Device = dev
	switch spec.Method {
	case "dynamic":
		cfg.Core.SkipPostProcess = true
	case "tracetracker":
	default:
		return runBaselineJob(cfg, spec)
	}
	eng := New(cfg)

	if spec.Stream {
		// Probe the input before touching the output, so a job with a
		// bad input path cannot clobber an existing file.
		if _, err := os.Stat(spec.In); err != nil {
			return nil, err
		}
		var rep *Report
		err := writeAtomically(spec.Out, func(out io.Writer) error {
			enc, err := trace.NewEncoder(spec.OutFormat, out, spec.FIODevice)
			if err != nil {
				return err
			}
			rep, err = eng.ReconstructPath(spec.In, spec.InFormat, spec.ReorderWindow, enc)
			return err
		})
		if err != nil {
			return nil, err
		}
		return &JobResult{Report: rep, OutPath: spec.Out}, nil
	}

	dsp := cfg.Trace.Start(cfg.Trace.Root(), "decode")
	old, err := readTraceFile(spec.In, spec.InFormat)
	dsp.End()
	if err != nil {
		return nil, err
	}
	if err := old.Validate(); err != nil {
		return nil, fmt.Errorf("input: %w", err)
	}
	result, rep, err := eng.Reconstruct(old)
	if err != nil {
		return nil, err
	}
	return finishJob(cfg.Trace, spec, result, reportFromCore(rep, int64(result.Len()), eng.cfg.Workers))
}

// runBaselineJob executes the non-engine comparison methods (always
// in memory and sequential — they exist for fidelity comparisons, not
// throughput).
func runBaselineJob(cfg Config, spec JobSpec) (*JobResult, error) {
	dsp := cfg.Trace.Start(cfg.Trace.Root(), "decode")
	old, err := readTraceFile(spec.In, spec.InFormat)
	dsp.End()
	if err != nil {
		return nil, err
	}
	if err := old.Validate(); err != nil {
		return nil, fmt.Errorf("input: %w", err)
	}
	var result *trace.Trace
	rsp := cfg.Trace.Start(cfg.Trace.Root(), "reconstruct")
	switch spec.Method {
	case "fixed-th":
		result = baseline.FixedTh(old, cfg.withDefaults().Device(), time.Duration(spec.ThresholdUS*float64(time.Microsecond)))
	case "revision":
		result = baseline.Revision(old, cfg.withDefaults().Device())
	case "acceleration":
		result = baseline.Acceleration(old, spec.Factor)
	}
	rsp.End()
	return finishJob(cfg.Trace, spec, result, nil)
}

// finishJob writes or retains the result per the spec.
func finishJob(tr *obs.Tracer, spec JobSpec, result *trace.Trace, rep *Report) (*JobResult, error) {
	if spec.Out == "" {
		return &JobResult{Report: rep, Trace: result}, nil
	}
	esp := tr.Start(tr.Root(), "encode")
	err := writeAtomically(spec.Out, func(w io.Writer) error {
		return writeTraceTo(w, spec.OutFormat, spec.FIODevice, result)
	})
	esp.End()
	if err != nil {
		return nil, err
	}
	return &JobResult{Report: rep, OutPath: spec.Out}, nil
}

// partialSeq disambiguates concurrent partial files within this
// process; the pid handles other processes.
var partialSeq atomic.Uint64

// writeAtomically runs write against a uniquely named partial file
// next to the target and renames it over the target only on success,
// so a failed or interrupted job never truncates an existing output
// and two jobs racing on the same output path cannot corrupt each
// other (last rename wins whole). The partial is opened with the same
// 0666-through-umask permissions os.Create gives a directly written
// output.
func writeAtomically(path string, write func(io.Writer) error) error {
	partial := fmt.Sprintf("%s.partial-%d-%d", path, os.Getpid(), partialSeq.Add(1))
	tmp, err := os.OpenFile(partial, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o666)
	if err != nil {
		return err
	}
	defer func() {
		if tmp != nil {
			tmp.Close()
			os.Remove(partial)
		}
	}()
	if err := write(tmp); err != nil {
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(partial)
		tmp = nil
		return err
	}
	tmp = nil
	if err := os.Rename(partial, path); err != nil {
		os.Remove(partial)
		return err
	}
	return nil
}

// readTraceFile materializes a whole trace from a file.
func readTraceFile(path, format string) (*trace.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return trace.ReadFormat(format, f)
}

// writeTraceTo renders a whole trace in the named format.
func writeTraceTo(w io.Writer, format, fioDevice string, t *trace.Trace) error {
	enc, err := trace.NewEncoder(format, w, fioDevice)
	if err != nil {
		return err
	}
	return trace.EncodeTrace(enc, t)
}
