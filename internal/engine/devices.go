package engine

// The device registry: one table describing every reconstruction
// target — canonical name, aliases, config knobs and pipeline
// capability — that drives JobSpec validation, per-worker device
// construction, and the daemon's GET /v1/devices discovery endpoint.
// Because all three read the same table, the API surface cannot drift
// from what the engine actually accepts.

import (
	"fmt"
	"time"

	"repro/internal/device"
	"repro/internal/ftl"
	"repro/internal/hoststack"
)

// Pipeline capabilities, as reported by device discovery.
const (
	// PipelineShardParallel marks devices that drain between epochs
	// (device.ShardSafe): every epoch emulates from a fresh device and
	// shifts into place.
	PipelineShardParallel = "shard-parallel"
	// PipelineStateful marks devices whose state persists across idle
	// periods (device.Stateful): they run on the epoch-pipelined
	// executor via snapshot/handoff.
	PipelineStateful = "stateful-pipelined"
)

// DeviceKnob documents one nested config field of a device target.
type DeviceKnob struct {
	Name    string `json:"name"`
	Type    string `json:"type"`
	Default string `json:"default"`
	Help    string `json:"help"`
}

// DeviceInfo describes one reconstruction target for capability
// discovery.
type DeviceInfo struct {
	// Name is the canonical JobSpec.Device value.
	Name string `json:"name"`
	// Aliases are accepted spellings that normalize to Name.
	Aliases []string `json:"aliases,omitempty"`
	// Default marks the target an empty JobSpec.Device selects.
	Default bool `json:"default,omitempty"`
	// Pipeline is the execution strategy the engine uses for this
	// target: PipelineShardParallel or PipelineStateful.
	Pipeline string `json:"pipeline"`
	// ConfigField names the nested JobSpec field that tunes this
	// target ("" when it has none).
	ConfigField string `json:"config_field,omitempty"`
	// Summary is a one-line description.
	Summary string `json:"summary"`
	// Knobs documents the nested config fields (ConfigField targets).
	Knobs []DeviceKnob `json:"knobs,omitempty"`
}

// deviceEntry couples the published DeviceInfo with the spec-aware
// per-worker constructor.
type deviceEntry struct {
	info DeviceInfo
	// build returns the per-worker device constructor for a normalized,
	// validated spec.
	build func(spec JobSpec) func() device.Device
}

var deviceRegistry = []deviceEntry{
	{
		info: DeviceInfo{
			Name:     "array",
			Aliases:  []string{"new"},
			Default:  true,
			Pipeline: PipelineShardParallel,
			Summary:  "the paper's modern 4-SSD flash array (the NEW system)",
		},
		build: func(JobSpec) func() device.Device {
			return func() device.Device { return device.NewArray(device.DefaultArrayConfig()) }
		},
	},
	{
		info: DeviceInfo{
			Name:     "ssd",
			Pipeline: PipelineShardParallel,
			Summary:  "one member SSD of the array",
		},
		build: func(JobSpec) func() device.Device {
			return func() device.Device { return device.NewSSD(device.DefaultSSDConfig()) }
		},
	},
	{
		info: DeviceInfo{
			Name:     "hdd",
			Aliases:  []string{"old"},
			Pipeline: PipelineStateful,
			Summary:  "the decade-old disk the public traces were captured on (the OLD system)",
		},
		build: func(JobSpec) func() device.Device {
			return func() device.Device { return device.NewHDD(device.DefaultHDDConfig()) }
		},
	},
	{
		info: DeviceInfo{
			Name:        "ftl",
			Pipeline:    PipelineStateful,
			ConfigField: "ftl_config",
			Summary:     "page-mapped flash translation layer with background GC in idle gaps",
			Knobs: []DeviceKnob{
				{Name: "blocks", Type: "int", Default: "1024", Help: "physical erase blocks"},
				{Name: "pages_per_block", Type: "int", Default: "128", Help: "pages per erase block"},
				{Name: "page_kb", Type: "int", Default: "8", Help: "flash page size in KiB"},
				{Name: "overprovision_pct", Type: "float", Default: "0.07", Help: "fraction of blocks reserved from the host LBA space"},
				{Name: "read_latency_us", Type: "float", Default: "50", Help: "page read latency (tR)"},
				{Name: "program_latency_us", Type: "float", Default: "600", Help: "page program latency (tPROG)"},
				{Name: "erase_latency_us", Type: "float", Default: "3000", Help: "block erase latency (tBERS)"},
				{Name: "gc_trigger_free_blocks", Type: "int", Default: "8", Help: "free-block level that starts foreground GC"},
				{Name: "background_gc_target", Type: "int", Default: "32", Help: "free-block level background GC restores during idle gaps"},
			},
		},
		build: func(spec JobSpec) func() device.Device {
			cfg := spec.FTLConfig.ftlConfig()
			return func() device.Device { return device.NewFTLDevice(cfg) }
		},
	},
	{
		info: DeviceInfo{
			Name:        "host",
			Aliases:     []string{"hoststack"},
			Pipeline:    PipelineStateful,
			ConfigField: "host_config",
			Summary:     "host storage stack (syscall + page cache + writeback) over an inner device",
			Knobs: []DeviceKnob{
				{Name: "device", Type: "string", Default: "hdd", Help: "inner block device: hdd, array or ssd"},
				{Name: "cache_pages", Type: "int", Default: "65536", Help: "page-cache capacity in pages"},
				{Name: "page_kb", Type: "int", Default: "4", Help: "cache page size in KiB"},
				{Name: "write_through", Type: "bool", Default: "false", Help: "disable write-back buffering"},
				{Name: "dirty_high_water", Type: "float", Default: "0.20", Help: "dirty fraction that triggers synchronous flushing"},
				{Name: "flush_batch", Type: "int", Default: "32", Help: "dirty pages written per flush round"},
				{Name: "readahead_pages", Type: "int", Default: "8", Help: "pages prefetched after a read miss (-1 disables)"},
				{Name: "syscall_overhead_us", Type: "float", Default: "3", Help: "per-request mode-switch and copy cost"},
				{Name: "hit_latency_us", Type: "float", Default: "2", Help: "cache-hit service time"},
			},
		},
		build: func(spec JobSpec) func() device.Device {
			cfg, inner := spec.HostConfig.hostConfig()
			return func() device.Device { return hoststack.New(cfg, inner()) }
		},
	},
}

// Devices returns the published capability table, for the daemon's
// discovery endpoint.
func Devices() []DeviceInfo {
	out := make([]DeviceInfo, len(deviceRegistry))
	for i := range deviceRegistry {
		out[i] = deviceRegistry[i].info
	}
	return out
}

// normalizeDevice canonicalizes JobSpec.Device aliases via the
// registry; unknown names pass through for Validate to reject.
func normalizeDevice(name string) string {
	if name == "" {
		return "array"
	}
	for i := range deviceRegistry {
		e := &deviceRegistry[i]
		if name == e.info.Name {
			return name
		}
		for _, a := range e.info.Aliases {
			if name == a {
				return e.info.Name
			}
		}
	}
	return name
}

// deviceEntryFor returns the registry entry for a canonical device
// name, nil when unknown.
func deviceEntryFor(name string) *deviceEntry {
	for i := range deviceRegistry {
		if deviceRegistry[i].info.Name == name {
			return &deviceRegistry[i]
		}
	}
	return nil
}

// deviceFactoryFor maps a normalized spec to its per-worker device
// constructor.
func deviceFactoryFor(spec JobSpec) (func() device.Device, error) {
	e := deviceEntryFor(normalizeDevice(spec.Device))
	if e == nil {
		return nil, &ValidationError{Field: "device", Code: "unknown_device",
			msg: fmt.Sprintf("unknown device %q", spec.Device)}
	}
	return e.build(spec), nil
}

// DeviceFactory maps a JobSpec.Device name (aliases included, "" =
// array) to a per-worker device constructor with default config, for
// callers without a full spec (the CLIs).
func DeviceFactory(name string) (func() device.Device, error) {
	return deviceFactoryFor(JobSpec{Device: name})
}

// FTLSpec is the JobSpec.FTLConfig payload: the "ftl" target's
// geometry and timing knobs. Zero fields keep the engine defaults
// (device.DefaultFTLDeviceConfig).
type FTLSpec struct {
	Blocks              int     `json:"blocks,omitempty"`
	PagesPerBlock       int     `json:"pages_per_block,omitempty"`
	PageKB              int     `json:"page_kb,omitempty"`
	OverprovisionPct    float64 `json:"overprovision_pct,omitempty"`
	ReadLatencyUS       float64 `json:"read_latency_us,omitempty"`
	ProgramLatencyUS    float64 `json:"program_latency_us,omitempty"`
	EraseLatencyUS      float64 `json:"erase_latency_us,omitempty"`
	GCTriggerFreeBlocks int     `json:"gc_trigger_free_blocks,omitempty"`
	BackgroundGCTarget  int     `json:"background_gc_target,omitempty"`
}

// ftlConfig converts the spec (nil = all defaults) to an ftl.Config.
func (s *FTLSpec) ftlConfig() ftl.Config {
	cfg := device.DefaultFTLDeviceConfig()
	if s == nil {
		return cfg
	}
	if s.Blocks > 0 {
		cfg.Blocks = s.Blocks
	}
	if s.PagesPerBlock > 0 {
		cfg.PagesPerBlock = s.PagesPerBlock
	}
	if s.PageKB > 0 {
		cfg.PageKB = s.PageKB
	}
	if s.OverprovisionPct > 0 {
		cfg.OverprovisionPct = s.OverprovisionPct
	}
	if s.ReadLatencyUS > 0 {
		cfg.ReadLatency = time.Duration(s.ReadLatencyUS * float64(time.Microsecond))
	}
	if s.ProgramLatencyUS > 0 {
		cfg.ProgramLatency = time.Duration(s.ProgramLatencyUS * float64(time.Microsecond))
	}
	if s.EraseLatencyUS > 0 {
		cfg.EraseLatency = time.Duration(s.EraseLatencyUS * float64(time.Microsecond))
	}
	if s.GCTriggerFreeBlocks > 0 {
		cfg.GCTriggerFreeBlocks = s.GCTriggerFreeBlocks
	}
	if s.BackgroundGCTarget > 0 {
		cfg.BackgroundGCTarget = s.BackgroundGCTarget
	}
	return cfg
}

// validate bounds the geometry so a daemon request cannot allocate an
// unbounded simulator, and keeps GC schedulable (ErrFull unreachable).
func (s *FTLSpec) validate() *ValidationError {
	bad := func(knob, msg string) *ValidationError {
		return &ValidationError{Field: "ftl_config." + knob, Code: "bad_device_config", msg: msg}
	}
	if s == nil {
		return nil
	}
	if s.Blocks != 0 && (s.Blocks < 64 || s.Blocks > 1<<16) {
		return bad("blocks", fmt.Sprintf("blocks must be in [64, %d]", 1<<16))
	}
	if s.PagesPerBlock < 0 || s.PagesPerBlock > 1<<12 {
		return bad("pages_per_block", fmt.Sprintf("pages_per_block must be in [0, %d]", 1<<12))
	}
	cfg := s.ftlConfig()
	if total := int64(cfg.Blocks) * int64(cfg.PagesPerBlock); total > 1<<22 {
		return bad("blocks", fmt.Sprintf("blocks * pages_per_block must be at most %d", 1<<22))
	}
	if s.PageKB < 0 || s.PageKB > 64 {
		return bad("page_kb", "page_kb must be in [0, 64]")
	}
	if s.OverprovisionPct < 0 || s.OverprovisionPct > 0.5 {
		return bad("overprovision_pct", "overprovision_pct must be in [0, 0.5]")
	}
	if s.ReadLatencyUS < 0 || s.ProgramLatencyUS < 0 || s.EraseLatencyUS < 0 {
		return bad("read_latency_us", "latencies must be non-negative")
	}
	if s.GCTriggerFreeBlocks < 0 || cfg.GCTriggerFreeBlocks >= cfg.Blocks {
		return bad("gc_trigger_free_blocks", "gc_trigger_free_blocks must be in [0, blocks)")
	}
	if s.BackgroundGCTarget < 0 || cfg.BackgroundGCTarget >= cfg.Blocks {
		return bad("background_gc_target", "background_gc_target must be in [0, blocks)")
	}
	return nil
}

// HostSpec is the JobSpec.HostConfig payload: the "host" target's
// cache and inner-device knobs. Zero fields keep the hoststack
// defaults; ReadAheadPages uses -1 to disable (0 = default).
type HostSpec struct {
	// Inner selects the block device underneath the stack: "hdd"
	// (default), "array" or "ssd".
	Inner             string  `json:"device,omitempty"`
	CachePages        int     `json:"cache_pages,omitempty"`
	PageKB            int     `json:"page_kb,omitempty"`
	WriteThrough      bool    `json:"write_through,omitempty"`
	DirtyHighWater    float64 `json:"dirty_high_water,omitempty"`
	FlushBatch        int     `json:"flush_batch,omitempty"`
	ReadAheadPages    int     `json:"readahead_pages,omitempty"`
	SyscallOverheadUS float64 `json:"syscall_overhead_us,omitempty"`
	HitLatencyUS      float64 `json:"hit_latency_us,omitempty"`
}

// hostInner resolves the inner-device name ("" = hdd). The alias
// switch is spelled out rather than going through normalizeDevice so
// the registry literal (whose build closures reach here) has no static
// reference back to itself — Go's initialization-cycle rule.
func (s *HostSpec) hostInner() string {
	if s == nil {
		return "hdd"
	}
	switch s.Inner {
	case "", "old", "hdd":
		return "hdd"
	case "new", "array":
		return "array"
	default:
		return s.Inner
	}
}

// hostConfig converts the spec (nil = all defaults) to a stack config
// plus the inner-device constructor. The block-layer log is always
// disabled on engine targets: it grows without bound over a trace and
// is excluded from snapshots.
func (s *HostSpec) hostConfig() (hoststack.Config, func() device.Device) {
	cfg := hoststack.DefaultConfig()
	cfg.NoBlockLog = true
	var inner func() device.Device
	switch s.hostInner() {
	case "array":
		inner = func() device.Device { return device.NewArray(device.DefaultArrayConfig()) }
	case "ssd":
		inner = func() device.Device { return device.NewSSD(device.DefaultSSDConfig()) }
	default:
		inner = func() device.Device { return device.NewHDD(device.DefaultHDDConfig()) }
	}
	if s == nil {
		return cfg, inner
	}
	if s.CachePages > 0 {
		cfg.CachePages = s.CachePages
	}
	if s.PageKB > 0 {
		cfg.PageKB = s.PageKB
	}
	cfg.WriteBack = !s.WriteThrough
	if s.DirtyHighWater > 0 {
		cfg.DirtyHighWater = s.DirtyHighWater
	}
	if s.FlushBatch > 0 {
		cfg.FlushBatch = s.FlushBatch
	}
	switch {
	case s.ReadAheadPages > 0:
		cfg.ReadAheadPages = s.ReadAheadPages
	case s.ReadAheadPages < 0:
		cfg.ReadAheadPages = 0
	}
	if s.SyscallOverheadUS > 0 {
		cfg.SyscallOverhead = time.Duration(s.SyscallOverheadUS * float64(time.Microsecond))
	}
	if s.HitLatencyUS > 0 {
		cfg.HitLatency = time.Duration(s.HitLatencyUS * float64(time.Microsecond))
	}
	return cfg, inner
}

// validate bounds the cache geometry and checks the inner device.
func (s *HostSpec) validate() *ValidationError {
	bad := func(knob, msg string) *ValidationError {
		return &ValidationError{Field: "host_config." + knob, Code: "bad_device_config", msg: msg}
	}
	if s == nil {
		return nil
	}
	switch s.hostInner() {
	case "hdd", "array", "ssd":
	default:
		return bad("device", fmt.Sprintf("inner device must be hdd, array or ssd, not %q", s.Inner))
	}
	if s.CachePages < 0 || s.CachePages > 1<<22 {
		return bad("cache_pages", fmt.Sprintf("cache_pages must be in [0, %d]", 1<<22))
	}
	if s.PageKB < 0 || s.PageKB > 64 {
		return bad("page_kb", "page_kb must be in [0, 64]")
	}
	if s.DirtyHighWater < 0 || s.DirtyHighWater >= 1 {
		return bad("dirty_high_water", "dirty_high_water must be in [0, 1)")
	}
	if s.FlushBatch < 0 {
		return bad("flush_batch", "flush_batch must be non-negative")
	}
	if s.ReadAheadPages < -1 || s.ReadAheadPages > 1024 {
		return bad("readahead_pages", "readahead_pages must be in [-1, 1024]")
	}
	if s.SyscallOverheadUS < 0 || s.HitLatencyUS < 0 {
		return bad("syscall_overhead_us", "latencies must be non-negative")
	}
	return nil
}
