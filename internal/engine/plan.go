package engine

import (
	"fmt"
	"time"

	"repro/internal/obs"
	"repro/internal/trace"
)

// shard is one epoch of the trace plus the carry state that makes its
// reconstruction independent: the sequentiality flags of its requests
// (computed against full-trace history), the request immediately
// before it, and the arrival immediately after it.
type shard struct {
	index int
	reqs  []trace.Request
	seq   []bool

	hasPrev bool
	prev    trace.Request
	prevSeq bool

	hasNext     bool
	nextArrival time.Duration

	// span is the shard's epoch span, attached by the executor's
	// submit wrapper when tracing is on (the zero Span otherwise). The
	// per-stage children hang off it as the shard moves through the
	// pipeline; the merge loop ends it.
	span obs.Span

	// dst, when set, points at this shard's slot in the merged output
	// (and dstIdle/dstAsync at the report slots): the executor writes
	// results in place instead of allocating per-shard buffers, so the
	// in-memory merge copies nothing.
	dst      []trace.Request
	dstIdle  []time.Duration
	dstAsync []bool
}

// shouldCut reports whether the planner cuts before a request that
// arrives gap after the previous one, given the current shard length.
func shouldCut(cfg Config, curLen int, gap time.Duration) bool {
	if curLen >= cfg.MaxShardRequests {
		return true
	}
	return curLen >= cfg.MinShardRequests && gap >= cfg.MinIdleGap
}

// planEach partitions a materialized trace into shards of slice views
// (no request copying), handing each to emit as soon as it is cut so
// planning overlaps with execution. Sequentiality flags are computed
// incrementally along the scan.
func planEach(cfg Config, t *trace.Trace, emit func(shard) error) error {
	n := t.Len()
	if n == 0 {
		return nil
	}
	flags := make([]bool, n)
	st := trace.NewSeqState()
	flags[0] = st.Flag(t.Requests[0])
	index := 0
	lo := 0
	for i := 1; i <= n; i++ {
		atEnd := i == n
		if !atEnd {
			flags[i] = st.Flag(t.Requests[i])
			if !shouldCut(cfg, i-lo, t.Requests[i].Arrival-t.Requests[i-1].Arrival) {
				continue
			}
		}
		s := shard{
			index: index,
			reqs:  t.Requests[lo:i],
			seq:   flags[lo:i],
		}
		if lo > 0 {
			s.hasPrev = true
			s.prev = t.Requests[lo-1]
			s.prevSeq = flags[lo-1]
		}
		if !atEnd {
			s.hasNext = true
			s.nextArrival = t.Requests[i].Arrival
		}
		if err := emit(s); err != nil {
			return err
		}
		index++
		lo = i
	}
	return nil
}

// planSlice collects planEach's shards (test and inspection helper).
func planSlice(cfg Config, t *trace.Trace) []shard {
	var shards []shard
	planEach(cfg, t, func(s shard) error {
		shards = append(shards, s)
		return nil
	})
	return shards
}

// streamPlanner builds shards incrementally from a request stream,
// owning each shard's buffer. It also validates the invariants the
// pipeline relies on (trace.Validate equivalents) as it goes. When a
// pool is attached, new shard buffers come from it (the executor
// returns them there once a shard is merged), so a long run reuses a
// bounded set of buffers instead of allocating per shard.
type streamPlanner struct {
	cfg   Config
	pool  *bufPool
	seq   *trace.SeqState
	cur   shard
	count int64
	index int
}

func newStreamPlanner(cfg Config, pool *bufPool) *streamPlanner {
	return &streamPlanner{cfg: cfg, pool: pool, seq: trace.NewSeqState()}
}

// refill points the open shard at recycled buffers, if any are free;
// append grows nil slices naturally otherwise, and those buffers
// enter the recycling loop once their shard retires.
func (p *streamPlanner) refill() {
	if p.pool != nil {
		p.cur.reqs = p.pool.getReqs()
		p.cur.seq = p.pool.getSeqs()
	}
}

// add consumes the next request. When it opens a new epoch, the
// completed previous shard is returned.
func (p *streamPlanner) add(r trace.Request) (*shard, error) {
	if r.Sectors == 0 {
		return nil, fmt.Errorf("%w (index %d)", trace.ErrZeroSize, p.count)
	}
	var done *shard
	if n := len(p.cur.reqs); n > 0 {
		last := p.cur.reqs[n-1]
		gap := r.Arrival - last.Arrival
		if gap < 0 {
			return nil, fmt.Errorf("%w (index %d); widen the reorder window for near-sorted corpora", trace.ErrUnsorted, p.count)
		}
		if shouldCut(p.cfg, n, gap) {
			finished := p.cur
			finished.hasNext = true
			finished.nextArrival = r.Arrival
			done = &finished
			p.index++
			p.cur = shard{
				index:   p.index,
				hasPrev: true,
				prev:    last,
				prevSeq: finished.seq[n-1],
			}
			p.refill()
		}
	}
	p.cur.reqs = append(p.cur.reqs, r)
	p.cur.seq = append(p.cur.seq, p.seq.Flag(r))
	p.count++
	return done, nil
}

// finish returns the trailing shard, if any.
func (p *streamPlanner) finish() *shard {
	if len(p.cur.reqs) == 0 {
		return nil
	}
	last := p.cur
	p.cur = shard{}
	return &last
}
