package engine

// Result caching: a JobSpec digests to a fingerprint of exactly the
// fields that can change the output bytes, and RunJobCached
// short-circuits a job whose (input digest, fingerprint) key already
// has a cached output. The cache itself is a pluggable hook
// (ResultCache) so the engine stays storage-agnostic; the corpus
// store implements it.

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// ResultCache stores reconstructed outputs keyed by CacheKey.
// *corpus.Store implements it.
type ResultCache interface {
	// LookupResult returns the on-disk path of the cached output for
	// key and the note stored with it.
	LookupResult(key string) (path string, note []byte, ok bool)
	// StoreResult atomically stores the output produced by write under
	// key, with a JSON note; storing an existing key is a no-op that
	// returns the existing path.
	StoreResult(key, inputDigest string, note []byte, write func(io.Writer) error) (string, error)
}

// Fingerprint digests the semantic content of the normalized spec:
// every field that can change the output bytes, and none that cannot.
// Name only labels the job; In/Out locate rather than shape the data;
// Parallel and Stream select execution strategies whose outputs are
// locked byte-identical to the sequential pipeline by the engine
// tests; and baseline-only knobs are dropped unless their method is
// selected. Two specs with equal fingerprints run against the same
// input bytes therefore produce identical outputs.
func (s JobSpec) Fingerprint() string {
	n := s.Normalized()
	n.Name, n.In, n.Out = "", "", ""
	n.Parallel, n.Stream = 0, false
	if n.Device == "array" {
		// The default target digests as the empty string, so specs from
		// before the Device field keep their fingerprints (and cached
		// results). Non-default targets shape the output and enter the
		// digest.
		n.Device = ""
	}
	if n.Device != "ftl" {
		// Nested device configs only shape the output when their target
		// is selected (Validate rejects the mismatch anyway); nil
		// pointers vanish from the JSON, so specs predating these fields
		// keep their fingerprints and cached results.
		n.FTLConfig = nil
	}
	if n.Device != "host" {
		n.HostConfig = nil
	}
	if n.OutFormat != "fio" {
		n.FIODevice = ""
	}
	if n.Method != "fixed-th" {
		n.ThresholdUS = 0
	}
	if n.Method != "acceleration" {
		n.Factor = 0
	}
	b, err := json.Marshal(n)
	if err != nil {
		// A JobSpec is plain data; marshaling cannot fail.
		panic(err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// CacheKey is the result-cache key for running spec against the input
// with the given content digest.
func CacheKey(inputDigest string, spec JobSpec) string {
	h := sha256.New()
	io.WriteString(h, "tracetracker-result-v1\x00")
	io.WriteString(h, inputDigest)
	io.WriteString(h, "\x00")
	io.WriteString(h, spec.Fingerprint())
	return hex.EncodeToString(h.Sum(nil))
}

// cacheNote is what RunJobCached stores beside each result, so a hit
// can restore the report and an operator can see what produced a
// cache file.
type cacheNote struct {
	Spec   JobSpec `json:"spec"`
	Report *Report `json:"report,omitempty"`
}

// RunJobCached executes one job with result caching: a hit copies the
// cached output into place (or points the result at the cache file
// when the spec keeps no output path) without reconstructing anything;
// a miss runs RunJob and stores the output under the job's key before
// returning. inputDigest must be the content digest of the bytes at
// spec.In — the caller (the corpus layer) owns that mapping. The
// returned bool reports a hit.
//
// The engine Config deliberately does not enter the key: its fields
// either shape scheduling (Workers, shard cuts — byte-identical by
// the engine's core invariant) or must be held fixed per cache by the
// caller (Core options).
func RunJobCached(cfg Config, spec JobSpec, inputDigest string, cache ResultCache) (*JobResult, bool, error) {
	spec = spec.Normalized()
	if err := spec.Validate(); err != nil {
		return nil, false, err
	}
	key := CacheKey(inputDigest, spec)
	lsp := cfg.Trace.Start(cfg.Trace.Root(), "cache-lookup")
	path, note, ok := cache.LookupResult(key)
	lsp.SetAttr("hit", boolAttr(ok))
	lsp.End()
	if ok {
		if cfg.Metrics != nil {
			cfg.Metrics.CacheHits.Inc()
		}
		// A missing or unreadable note only loses the restored report.
		var n cacheNote
		json.Unmarshal(note, &n)
		if spec.Out != "" {
			if err := copyFileAtomic(spec.Out, path); err != nil {
				return nil, false, err
			}
			return &JobResult{Report: n.Report, OutPath: spec.Out}, true, nil
		}
		return &JobResult{Report: n.Report, OutPath: path}, true, nil
	}

	if cfg.Metrics != nil {
		cfg.Metrics.CacheMisses.Inc()
	}
	res, err := RunJob(cfg, spec)
	if err != nil {
		return nil, false, err
	}
	note, err = json.Marshal(cacheNote{Spec: spec, Report: res.Report})
	if err != nil {
		return nil, false, err
	}
	fill := func(w io.Writer) error {
		if res.Trace != nil {
			return writeTraceTo(w, spec.OutFormat, spec.FIODevice, res.Trace)
		}
		f, err := os.Open(res.OutPath)
		if err != nil {
			return err
		}
		defer f.Close()
		_, err = io.Copy(w, f)
		return err
	}
	ssp := cfg.Trace.Start(cfg.Trace.Root(), "cache-store")
	path, err = cache.StoreResult(key, inputDigest, note, fill)
	ssp.End()
	if err != nil {
		return nil, false, fmt.Errorf("engine: job succeeded but caching its result failed: %w", err)
	}
	if res.OutPath == "" {
		// Point the result at the cached copy: a caller holding the
		// trace only in memory can evict it and still serve the bytes
		// from disk.
		res.OutPath = path
	}
	return res, false, nil
}

func boolAttr(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// copyFileAtomic lands a copy of src at dst via the engine's partial
// file + rename discipline.
func copyFileAtomic(dst, src string) error {
	return writeAtomically(dst, func(w io.Writer) error {
		f, err := os.Open(src)
		if err != nil {
			return err
		}
		defer f.Close()
		_, err = io.Copy(w, f)
		return err
	})
}
