package engine

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/ftl"
	"repro/internal/hoststack"
	"repro/internal/trace"
)

// testFTLConfig is a deliberately small geometry so corpus-scale test
// traces lap the device and force both foreground and background GC —
// the state the snapshot handoff must carry across epochs.
func testFTLConfig() ftl.Config {
	cfg := device.DefaultFTLDeviceConfig()
	cfg.Blocks = 64
	cfg.PagesPerBlock = 32
	return cfg
}

// testHostConfig is a small cache over a write-caching HDD: evictions,
// dirty-threshold flushes and inner destage debt all cross epoch
// boundaries.
func testHostConfig() (hoststack.Config, device.HDDConfig) {
	wc := device.DefaultHDDConfig()
	wc.WriteCache = true
	return hoststack.Config{
		CachePages: 256,
		PageKB:     4,
		WriteBack:  true,
		FlushBatch: 8,
		NoBlockLog: true,
	}, wc
}

// statefulTargets returns the two deep-state pipelined targets under
// test, with fixture assertions proving the workload actually
// exercised their state machines.
func statefulTargets(t *testing.T) map[string]struct {
	mk    func() device.Device
	prove func(name string, stats []device.Stat)
} {
	t.Helper()
	ftlCfg := testFTLConfig()
	hostCfg, hddCfg := testHostConfig()
	find := func(name string, stats []device.Stat, key string) float64 {
		for _, s := range stats {
			if s.Name == key {
				return s.Value
			}
		}
		t.Fatalf("%s: device stats missing %q: %+v", name, key, stats)
		return 0
	}
	return map[string]struct {
		mk    func() device.Device
		prove func(name string, stats []device.Stat)
	}{
		"ftl": {
			mk: func() device.Device { return device.NewFTLDevice(ftlCfg) },
			prove: func(name string, stats []device.Stat) {
				if find(name, stats, "host_writes") == 0 || find(name, stats, "erases") == 0 {
					t.Fatalf("%s: fixture created no GC pressure: %+v", name, stats)
				}
			},
		},
		"host": {
			mk: func() device.Device { return hoststack.New(hostCfg, device.NewHDD(hddCfg)) },
			prove: func(name string, stats []device.Stat) {
				if find(name, stats, "cache_misses") == 0 || find(name, stats, "flushed_pages") == 0 {
					t.Fatalf("%s: fixture created no cache/writeback pressure: %+v", name, stats)
				}
			},
		},
	}
}

// pipelinedByteIdentical locks the epoch-pipelined path for one
// stateful target: for workers 1, 4 and 8 the reconstruction — records,
// per-instruction report and device stats — is byte-identical to the
// sequential core pipeline.
func pipelinedByteIdentical(t *testing.T, target string) {
	tc := statefulTargets(t)[target]
	for _, family := range []string{"ikki", "MSNFS"} {
		for _, tsdev := range []bool{true, false} {
			for _, skipPost := range []bool{false, true} {
				opts := core.Options{SkipPostProcess: skipPost}
				old := genOld(t, family, 3000, tsdev)
				wantTrace, wantRep, err := core.Reconstruct(old, tc.mk(), opts)
				if err != nil {
					t.Fatalf("%s tsdev=%v: sequential: %v", family, tsdev, err)
				}
				tc.prove(target+"/"+family, wantRep.DeviceStats)
				want := traceBytes(t, wantTrace)
				for _, workers := range []int{1, 4, 8} {
					cfg := testConfig(workers, opts)
					cfg.Device = tc.mk
					gotTrace, gotRep, err := New(cfg).Reconstruct(old)
					if err != nil {
						t.Fatalf("%s tsdev=%v w=%d: pipelined: %v", family, tsdev, workers, err)
					}
					if got := traceBytes(t, gotTrace); !bytes.Equal(got, want) {
						t.Fatalf("%s tsdev=%v skipPost=%v w=%d: pipelined %s output not byte-identical to the serial path",
							family, tsdev, skipPost, workers, target)
					}
					if gotRep.Shards < 2 {
						t.Fatalf("%s w=%d: expected multiple epochs, got %d", family, workers, gotRep.Shards)
					}
					if gotRep.IdleCount != wantRep.IdleCount || gotRep.IdleTotal != wantRep.IdleTotal ||
						gotRep.AsyncCount != wantRep.AsyncCount {
						t.Fatalf("%s tsdev=%v w=%d: report aggregates diverge", family, tsdev, workers)
					}
					if !reflect.DeepEqual(gotRep.Idle, wantRep.Idle) || !reflect.DeepEqual(gotRep.Async, wantRep.Async) {
						t.Fatalf("%s tsdev=%v w=%d: per-instruction report diverges", family, tsdev, workers)
					}
					if !reflect.DeepEqual(gotRep.Model, wantRep.Model) {
						t.Fatalf("%s tsdev=%v w=%d: model diverges", family, tsdev, workers)
					}
					if !reflect.DeepEqual(gotRep.DeviceStats, wantRep.DeviceStats) {
						t.Fatalf("%s tsdev=%v w=%d: device stats diverge:\n got %+v\nwant %+v",
							family, tsdev, workers, gotRep.DeviceStats, wantRep.DeviceStats)
					}
				}
			}
		}
	}
}

// TestPipelinedFTLByteIdentical is the acceptance lock for the FTL
// target on the epoch-pipelined path.
func TestPipelinedFTLByteIdentical(t *testing.T) { pipelinedByteIdentical(t, "ftl") }

// TestPipelinedHostByteIdentical is the acceptance lock for the
// host-stack target on the epoch-pipelined path.
func TestPipelinedHostByteIdentical(t *testing.T) { pipelinedByteIdentical(t, "host") }

// TestPipelinedFTLHostStream checks the streaming variant for both
// targets: streamed bytes equal a direct whole-trace encode of the
// sequential reconstruction, and the stream report carries the same
// device stats.
func TestPipelinedFTLHostStream(t *testing.T) {
	for target, tc := range statefulTargets(t) {
		old := genOld(t, "MSNFS", 3000, true)
		wantTrace, wantRep, err := core.Reconstruct(old, tc.mk(), core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		var want, input bytes.Buffer
		if err := trace.WriteCSV(&want, wantTrace); err != nil {
			t.Fatal(err)
		}
		if err := trace.WriteBinary(&input, old); err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 4, 8} {
			cfg := testConfig(workers, core.Options{})
			cfg.Device = tc.mk
			var got bytes.Buffer
			rep, err := New(cfg).ReconstructStream(
				trace.NewBinaryDecoder(bytes.NewReader(input.Bytes())),
				trace.NewCSVEncoder(&got),
				nil,
			)
			if err != nil {
				t.Fatalf("%s w=%d: stream: %v", target, workers, err)
			}
			if !bytes.Equal(got.Bytes(), want.Bytes()) {
				t.Fatalf("%s w=%d: streamed output diverges from the serial path", target, workers)
			}
			if rep.Shards < 2 {
				t.Fatalf("%s w=%d: expected multiple epochs, got %d", target, workers, rep.Shards)
			}
			if !reflect.DeepEqual(rep.DeviceStats, wantRep.DeviceStats) {
				t.Fatalf("%s w=%d: stream device stats diverge:\n got %+v\nwant %+v",
					target, workers, rep.DeviceStats, wantRep.DeviceStats)
			}
		}
	}
}

// TestJobSpecDeviceConfigs locks the spec-level surface: nested config
// validation codes, fingerprint gating (configs only digest when their
// target is selected; an all-defaults config digests like none), and
// registry-driven construction.
func TestJobSpecDeviceConfigs(t *testing.T) {
	base := JobSpec{In: "x.csv", Device: "ftl"}
	if err := base.Normalized().Validate(); err != nil {
		t.Fatalf("plain ftl spec: %v", err)
	}

	cases := []struct {
		name  string
		spec  JobSpec
		field string
		code  string
	}{
		{"mismatched ftl_config", JobSpec{In: "x", Device: "array", FTLConfig: &FTLSpec{Blocks: 128}}, "ftl_config", "config_mismatch"},
		{"mismatched host_config", JobSpec{In: "x", Device: "ssd", HostConfig: &HostSpec{CachePages: 64}}, "host_config", "config_mismatch"},
		{"bad ftl blocks", JobSpec{In: "x", Device: "ftl", FTLConfig: &FTLSpec{Blocks: 4}}, "ftl_config.blocks", "bad_device_config"},
		{"bad host inner", JobSpec{In: "x", Device: "host", HostConfig: &HostSpec{Inner: "ftl"}}, "host_config.device", "bad_device_config"},
		{"bad host highwater", JobSpec{In: "x", Device: "host", HostConfig: &HostSpec{DirtyHighWater: 1.5}}, "host_config.dirty_high_water", "bad_device_config"},
		{"unknown device", JobSpec{In: "x", Device: "floppy"}, "device", "unknown_device"},
	}
	for _, tc := range cases {
		err := tc.spec.Normalized().Validate()
		ve, ok := err.(*ValidationError)
		if !ok {
			t.Fatalf("%s: want *ValidationError, got %v", tc.name, err)
		}
		if ve.Field != tc.field || ve.Code != tc.code {
			t.Fatalf("%s: got field=%q code=%q, want field=%q code=%q", tc.name, ve.Field, ve.Code, tc.field, tc.code)
		}
	}

	// Fingerprint gating: a config on a non-matching device is dropped
	// from the digest; on its own device it changes the digest; an
	// all-defaults (zero) config digests like no config at all.
	arr := JobSpec{In: "x"}.Fingerprint()
	if got := (JobSpec{In: "x", FTLConfig: &FTLSpec{Blocks: 128}}).Fingerprint(); got != arr {
		t.Fatalf("ftl_config entered a non-ftl fingerprint")
	}
	plainFTL := JobSpec{In: "x", Device: "ftl"}.Fingerprint()
	if got := (JobSpec{In: "x", Device: "ftl", FTLConfig: &FTLSpec{}}).Fingerprint(); got != plainFTL {
		t.Fatalf("zero ftl_config changed the ftl fingerprint")
	}
	if got := (JobSpec{In: "x", Device: "ftl", FTLConfig: &FTLSpec{Blocks: 128}}).Fingerprint(); got == plainFTL {
		t.Fatalf("ftl_config did not enter the ftl fingerprint")
	}
	plainHost := JobSpec{In: "x", Device: "host"}.Fingerprint()
	if got := (JobSpec{In: "x", Device: "host", HostConfig: &HostSpec{CachePages: 64}}).Fingerprint(); got == plainHost {
		t.Fatalf("host_config did not enter the host fingerprint")
	}
	if got := (JobSpec{In: "x", Device: "hoststack"}).Fingerprint(); got != plainHost {
		t.Fatalf("hoststack alias fingerprints differently from host")
	}

	// Registry-driven discovery matches validation.
	names := map[string]bool{}
	for _, d := range Devices() {
		names[d.Name] = true
		if d.Pipeline != PipelineShardParallel && d.Pipeline != PipelineStateful {
			t.Fatalf("device %s: unknown pipeline %q", d.Name, d.Pipeline)
		}
		if _, err := DeviceFactory(d.Name); err != nil {
			t.Fatalf("registry device %s fails DeviceFactory: %v", d.Name, err)
		}
		for _, a := range d.Aliases {
			if normalizeDevice(a) != d.Name {
				t.Fatalf("alias %q does not normalize to %s", a, d.Name)
			}
		}
	}
	for _, want := range []string{"array", "ssd", "hdd", "ftl", "host"} {
		if !names[want] {
			t.Fatalf("registry missing device %q", want)
		}
	}
}
