// Package engine is the streaming, sharded reconstruction engine: it
// runs the TraceTracker co-evaluation pipeline (package core) over
// epoch shards of a trace concurrently, producing output byte-identical
// to the sequential pipeline while scaling with cores and, in streaming
// mode, holding only a bounded window of the trace in memory.
//
// Shard-safe devices (the flash simulators) run shard-parallel with
// time translation as described below; non-shard-safe devices that
// support state handoff (device.Stateful — the HDD) run on the
// epoch-pipelined executor instead (see pipeline.go); devices with
// neither capability fall back to the sequential pipeline.
//
// # Why sharding is exact
//
// The emulation loop is synchronous: every instruction is submitted at
// or after the previous completion, by which point a shard-safe device
// (device.ShardSafe) has drained, so its servicing is invariant under
// time translation. A shard emulated from virtual time zero therefore
// equals the same span of the whole-trace emulation shifted by the
// preceding shard's end time. The inference decomposition is local to
// adjacent request pairs given the per-device sequentiality state, and
// the post-processing shift only accumulates — so each shard needs just
// a tiny carry (previous request + flag, next arrival, running seq
// state) to reproduce its slice of the sequential result exactly. The
// merge step chains the per-shard time bases and shifts in shard order.
//
// The model fit (infer.Estimate) is global, so it runs once up front —
// incrementally via infer.StreamClassifier in streaming mode. Note the
// fit itself retains one inter-arrival sample (~8 bytes) per request,
// so a streaming run over an inference-path corpus (no recorded
// latencies) is O(n) in samples even though requests stay bounded;
// only Tsdev-known corpora stream in fully bounded memory.
//
// # Shard boundaries
//
// The planner prefers to cut where the inter-arrival gap is at least
// MinIdleGap — the idle-period boundaries the paper's inference step
// identifies as application think time, which align shards with
// natural workload epochs — and force-cuts at MaxShardRequests so
// memory stays bounded on gap-free streams. Correctness does not
// depend on cut placement (see above); placement only shapes load
// balance.
package engine

import (
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/infer"
	"repro/internal/obs"
	"repro/internal/trace"
)

// Config parameterizes an Engine. The zero value selects GOMAXPROCS
// workers, 1 ms idle cuts, and the paper's target array.
type Config struct {
	// Workers is the number of concurrent shard executors (default
	// GOMAXPROCS).
	Workers int
	// MinIdleGap is the smallest inter-arrival gap treated as an epoch
	// boundary (default 1 ms, well above device service times).
	MinIdleGap time.Duration
	// MinShardRequests is the minimum shard size before an idle cut is
	// taken (default 1024), so pathological gap-heavy traces don't
	// produce confetti shards.
	MinShardRequests int
	// MaxShardRequests force-cuts a shard regardless of gaps (default
	// 65536), bounding streaming memory.
	MaxShardRequests int
	// Core configures the reconstruction pipeline itself.
	Core core.Options
	// Device builds one target device per worker (default: the paper's
	// 4-SSD flash array).
	Device func() device.Device
	// Metrics, when non-nil, receives per-stage wall time, queue
	// occupancy, token-pool backpressure and cache traffic. nil (the
	// default) disables instrumentation entirely: the executors take a
	// per-shard nil check and the per-request paths are untouched.
	Metrics *obs.EngineMetrics
	// Trace, when non-nil, records this run's span tree — plan span,
	// sampled epoch spans with per-stage children — under the tracer's
	// root. nil (the default) disables tracing at nil-check cost, the
	// same discipline as Metrics.
	Trace *obs.Tracer
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.MinIdleGap <= 0 {
		c.MinIdleGap = time.Millisecond
	}
	if c.MinShardRequests <= 0 {
		c.MinShardRequests = 1024
	}
	if c.MaxShardRequests <= 0 {
		c.MaxShardRequests = 65536
	}
	if c.MaxShardRequests < c.MinShardRequests {
		// MaxShardRequests is the operator's memory bound — honour it
		// and shrink the idle-cut minimum instead.
		c.MinShardRequests = c.MaxShardRequests
	}
	if c.Device == nil {
		c.Device = func() device.Device { return device.NewArray(device.DefaultArrayConfig()) }
	}
	return c
}

// Engine runs sharded reconstructions.
type Engine struct {
	cfg Config
}

// New builds an Engine, applying Config defaults.
func New(cfg Config) *Engine {
	return &Engine{cfg: cfg.withDefaults()}
}

// Config returns the engine's effective (defaulted) configuration.
func (e *Engine) Config() Config { return e.cfg }

// Report aggregates reconstruction diagnostics across shards; it is
// the streaming counterpart of core.Report (which additionally carries
// per-instruction slices).
type Report struct {
	// Model is the fitted inference model (nil on the Tsdev-known path).
	Model *infer.Model
	// Requests is the number of instructions processed.
	Requests int64
	// Shards is the number of epoch shards executed.
	Shards int
	// Workers is the executor count used.
	Workers int
	// IdleCount / IdleTotal / AsyncCount mirror core.Report.
	IdleCount  int
	IdleTotal  time.Duration
	AsyncCount int
	// DeviceStats mirrors core.Report.DeviceStats: the target device's
	// accumulated model statistics when it reports any.
	DeviceStats []device.Stat
}

// Reconstruct is the in-memory entry point: it reproduces
// core.Reconstruct(old, target, cfg.Core) exactly — byte-identical
// output and report — but executes the per-shard work on cfg.Workers
// goroutines: shard-parallel for shard-safe devices, epoch-pipelined
// (see pipeline.go) for stateful devices like the HDD. Devices with
// neither capability fall back to the sequential pipeline.
func (e *Engine) Reconstruct(old *trace.Trace) (*trace.Trace, *core.Report, error) {
	dev := e.cfg.Device()
	shardSafe := device.IsShardSafe(dev)
	if !shardSafe && !device.IsStateful(dev) {
		return core.Reconstruct(old, dev, e.cfg.Core)
	}

	rep := &core.Report{}
	m, useRecorded, err := core.PrepareModel(old, e.cfg.Core)
	if err != nil {
		return nil, nil, err
	}
	rep.Model = m

	out := &trace.Trace{
		Name:       old.Name,
		Workload:   old.Workload,
		Set:        old.Set,
		TsdevKnown: true,
	}
	n := old.Len()
	if n > 0 {
		out.Requests = make([]trace.Request, n)
		rep.Idle = make([]time.Duration, n)
		rep.Async = make([]bool, n)
	}

	// Planning overlaps with execution: shards are submitted as the
	// scan cuts them, each pointing at its slot of the preallocated
	// output, so the merge step only fixes up arrivals in place.
	produce := func(submit func(shard) error) error {
		pos := 0
		return planEach(e.cfg, old, func(s shard) error {
			end := pos + len(s.reqs)
			s.dst = out.Requests[pos:end]
			s.dstIdle = rep.Idle[pos:end]
			s.dstAsync = rep.Async[pos:end]
			pos = end
			return submit(s)
		})
	}
	if !shardSafe {
		err = e.executePipelined(produce, rep.Model, useRecorded, nil, func(res pipeResult) error {
			rep.IdleCount += res.idleCount
			rep.IdleTotal += res.idleTotal
			rep.AsyncCount += res.asyncCount
			rep.Shards++
			return nil
		}, nil, &rep.DeviceStats)
		if err != nil {
			return nil, nil, err
		}
		return out, rep, nil
	}
	err = e.execute(produce, rep.Model, useRecorded, func(res shardResult, offset time.Duration) error {
		if offset != 0 {
			for i := range res.reqs {
				res.reqs[i].Arrival += offset
			}
		}
		rep.IdleCount += res.idleCount
		rep.IdleTotal += res.idleTotal
		rep.AsyncCount += res.asyncCount
		rep.Shards++
		return nil
	}, nil)
	if err != nil {
		return nil, nil, err
	}
	return out, rep, nil
}
