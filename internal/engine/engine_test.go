package engine

import (
	"bytes"
	"errors"
	"io"
	"os"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/trace"
	"repro/internal/workload"
)

// genOld synthesizes an application for a workload family and runs it
// against the OLD device to obtain a ground-truth block trace (the
// same construction the experiments use).
func genOld(t *testing.T, family string, ops int, tsdevKnown bool) *trace.Trace {
	t.Helper()
	p, ok := workload.Lookup(family)
	if !ok {
		t.Fatalf("unknown workload family %q", family)
	}
	app := workload.Generate(p, workload.GenOptions{Ops: ops, Seed: workload.TraceSeed(family, 0)})
	res := app.Execute(device.NewHDD(device.DefaultHDDConfig()))
	old := res.Trace
	old.Name = family + "-000"
	old.Workload = family
	old.TsdevKnown = tsdevKnown
	if !tsdevKnown {
		for i := range old.Requests {
			old.Requests[i].Latency = 0
		}
	}
	return old
}

func traceBytes(t *testing.T, tr *trace.Trace) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := trace.WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// testConfig forces small shards so even unit-test traces split into
// many epochs.
func testConfig(workers int, opts core.Options) Config {
	return Config{
		Workers:          workers,
		MinIdleGap:       500 * time.Microsecond,
		MinShardRequests: 64,
		MaxShardRequests: 512,
		Core:             opts,
	}
}

// TestParallelByteIdentical is the engine's central guarantee: for
// N=1,4,8 workers the parallel reconstruction is byte-identical to the
// sequential core pipeline, across workload families, both latency
// paths, and both post-processing settings.
func TestParallelByteIdentical(t *testing.T) {
	families := []string{"ikki", "MSNFS", "Exchange"}
	for _, family := range families {
		for _, tsdev := range []bool{true, false} {
			for _, skipPost := range []bool{false, true} {
				opts := core.Options{SkipPostProcess: skipPost}
				old := genOld(t, family, 3000, tsdev)
				wantTrace, wantRep, err := core.Reconstruct(old, device.NewArray(device.DefaultArrayConfig()), opts)
				if err != nil {
					t.Fatalf("%s tsdev=%v: sequential: %v", family, tsdev, err)
				}
				want := traceBytes(t, wantTrace)
				for _, workers := range []int{1, 4, 8} {
					e := New(testConfig(workers, opts))
					gotTrace, gotRep, err := e.Reconstruct(old)
					if err != nil {
						t.Fatalf("%s tsdev=%v w=%d: engine: %v", family, tsdev, workers, err)
					}
					if got := traceBytes(t, gotTrace); !bytes.Equal(got, want) {
						t.Fatalf("%s tsdev=%v skipPost=%v w=%d: output not byte-identical to sequential pipeline",
							family, tsdev, skipPost, workers)
					}
					if gotRep.IdleCount != wantRep.IdleCount || gotRep.IdleTotal != wantRep.IdleTotal ||
						gotRep.AsyncCount != wantRep.AsyncCount {
						t.Fatalf("%s tsdev=%v w=%d: report aggregates diverge: got %d/%v/%d want %d/%v/%d",
							family, tsdev, workers,
							gotRep.IdleCount, gotRep.IdleTotal, gotRep.AsyncCount,
							wantRep.IdleCount, wantRep.IdleTotal, wantRep.AsyncCount)
					}
					if !reflect.DeepEqual(gotRep.Idle, wantRep.Idle) || !reflect.DeepEqual(gotRep.Async, wantRep.Async) {
						t.Fatalf("%s tsdev=%v w=%d: per-instruction report diverges", family, tsdev, workers)
					}
					if !reflect.DeepEqual(gotRep.Model, wantRep.Model) {
						t.Fatalf("%s tsdev=%v w=%d: model diverges", family, tsdev, workers)
					}
				}
			}
		}
	}
}

// TestForceInferenceParity checks the ForceInference path (recorded
// latencies hidden from decomposition) matches sequentially.
func TestForceInferenceParity(t *testing.T) {
	opts := core.Options{ForceInference: true}
	old := genOld(t, "ikki", 2000, true)
	wantTrace, _, err := core.Reconstruct(old, device.NewArray(device.DefaultArrayConfig()), opts)
	if err != nil {
		t.Fatal(err)
	}
	e := New(testConfig(4, opts))
	gotTrace, _, err := e.Reconstruct(old)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(traceBytes(t, gotTrace), traceBytes(t, wantTrace)) {
		t.Fatal("ForceInference engine output diverges from sequential")
	}
}

// TestNonShardSafeFallback checks that a device with neither
// shard-safe emulation nor state handoff (an Instrumented wrapper
// hides both capabilities) routes through the sequential pipeline
// (and still agrees with it, trivially). The raw HDD no longer lands
// here — it is Stateful and runs the epoch pipeline (hdd_test.go).
func TestNonShardSafeFallback(t *testing.T) {
	old := genOld(t, "ikki", 600, true)
	mk := func() device.Device { return device.NewInstrumented(device.NewHDD(device.DefaultHDDConfig())) }
	if dev := mk(); device.IsShardSafe(dev) || device.IsStateful(dev) {
		t.Fatal("fixture device must have neither engine capability")
	}
	want, _, err := core.Reconstruct(old, mk(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(4, core.Options{})
	cfg.Device = mk
	got, _, err := New(cfg).Reconstruct(old)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(traceBytes(t, got), traceBytes(t, want)) {
		t.Fatal("fallback output diverges")
	}
}

// TestStreamMatchesInMemory checks the streaming path (decode →
// shard → encode) produces the same CSV bytes as encoding the
// in-memory engine result, on both latency paths.
func TestStreamMatchesInMemory(t *testing.T) {
	for _, tsdev := range []bool{true, false} {
		old := genOld(t, "MSNFS", 3000, tsdev)
		e := New(testConfig(4, core.Options{}))
		outTrace, rep, err := e.Reconstruct(old)
		if err != nil {
			t.Fatal(err)
		}
		var want bytes.Buffer
		if err := trace.WriteCSV(&want, outTrace); err != nil {
			t.Fatal(err)
		}

		// Binary input preserves exact nanosecond timestamps (CSV would
		// quantize to the µs-fraction text form and legitimately change
		// the reconstruction).
		var input bytes.Buffer
		if err := trace.WriteBinary(&input, old); err != nil {
			t.Fatal(err)
		}
		var got bytes.Buffer
		srep, err := e.ReconstructStream(
			trace.NewBinaryDecoder(bytes.NewReader(input.Bytes())),
			trace.NewCSVEncoder(&got),
			rep.Model,
		)
		if err != nil {
			t.Fatalf("tsdev=%v: stream: %v", tsdev, err)
		}
		if !bytes.Equal(got.Bytes(), want.Bytes()) {
			t.Fatalf("tsdev=%v: streaming output diverges from in-memory engine", tsdev)
		}
		if srep.Requests != int64(old.Len()) {
			t.Fatalf("tsdev=%v: stream report requests %d want %d", tsdev, srep.Requests, old.Len())
		}
		if srep.Shards < 2 {
			t.Fatalf("tsdev=%v: expected multiple shards, got %d", tsdev, srep.Shards)
		}
		if srep.IdleCount == 0 {
			t.Fatalf("tsdev=%v: stream report lost idle aggregates", tsdev)
		}
	}
}

// TestFitModelMatchesEstimate checks pass-one streaming model fitting
// equals the in-memory fit the engine/core use.
func TestFitModelMatchesEstimate(t *testing.T) {
	old := genOld(t, "ikki", 3000, false)
	_, rep, err := New(testConfig(2, core.Options{})).Reconstruct(old)
	if err != nil {
		t.Fatal(err)
	}
	var input bytes.Buffer
	if err := trace.WriteBinary(&input, old); err != nil {
		t.Fatal(err)
	}
	m, n, err := FitModel(trace.NewBinaryDecoder(bytes.NewReader(input.Bytes())), core.Options{}.Estimate)
	if err != nil {
		t.Fatal(err)
	}
	if n != old.Len() {
		t.Fatalf("fit saw %d requests, want %d", n, old.Len())
	}
	if !reflect.DeepEqual(m, rep.Model) {
		t.Fatalf("streamed model differs:\n got %+v\nwant %+v", m, rep.Model)
	}
}

// TestStreamErrors checks the planner's validation and the model
// requirement surface as errors.
func TestStreamErrors(t *testing.T) {
	e := New(testConfig(2, core.Options{}))
	// Unsorted input.
	unsorted := "# tracetracker name=x workload=w set=S tsdev_known=true\n" +
		"10.000,0,100,8,R,5.000,0\n" +
		"1.000,0,200,8,R,5.000,0\n"
	_, err := e.ReconstructStream(trace.NewCSVDecoder(strings.NewReader(unsorted)), trace.NewCSVEncoder(io.Discard), nil)
	if err == nil || !strings.Contains(err.Error(), "not sorted") {
		t.Fatalf("unsorted input: got %v", err)
	}
	// Missing model on an inference-path trace.
	nomodel := "# tracetracker name=x workload=w set=S tsdev_known=false\n" +
		"1.000,0,100,8,R,0.000,0\n"
	_, err = e.ReconstructStream(trace.NewCSVDecoder(strings.NewReader(nomodel)), trace.NewCSVEncoder(io.Discard), nil)
	if err != ErrModelRequired {
		t.Fatalf("missing model: got %v", err)
	}
	// Zero-size request.
	zero := "# tracetracker name=x workload=w set=S tsdev_known=true\n" +
		"1.000,0,100,0,R,5.000,0\n"
	_, err = e.ReconstructStream(trace.NewCSVDecoder(strings.NewReader(zero)), trace.NewCSVEncoder(io.Discard), nil)
	if err == nil || !strings.Contains(err.Error(), "zero sectors") {
		t.Fatalf("zero sectors: got %v", err)
	}
}

// failingEncoder errors on the first Write, simulating a full disk.
type failingEncoder struct{ writes int }

func (f *failingEncoder) Begin(trace.Meta) error { return nil }
func (f *failingEncoder) Write(trace.Request) error {
	f.writes++
	return io.ErrShortWrite
}
func (f *failingEncoder) Close() error { return nil }

// TestStreamEmitErrorAborts checks an output error surfaces as the
// run's error and stops the pipeline instead of silently draining the
// whole input.
func TestStreamEmitErrorAborts(t *testing.T) {
	old := genOld(t, "ikki", 2000, true)
	var input bytes.Buffer
	if err := trace.WriteBinary(&input, old); err != nil {
		t.Fatal(err)
	}
	e := New(testConfig(4, core.Options{}))
	enc := &failingEncoder{}
	_, err := e.ReconstructStream(trace.NewBinaryDecoder(bytes.NewReader(input.Bytes())), enc, nil)
	if err != io.ErrShortWrite {
		t.Fatalf("want the encoder's error, got %v", err)
	}
	if enc.writes != 1 {
		t.Fatalf("encoder written %d times after failing, want 1", enc.writes)
	}
}

// TestEmptyStream checks an empty input is rejected like the
// in-memory path's Validate (a broken corpus must not record as a
// successful reconstruction).
func TestEmptyStream(t *testing.T) {
	e := New(testConfig(2, core.Options{}))
	var out bytes.Buffer
	_, err := e.ReconstructStream(trace.NewCSVDecoder(strings.NewReader("")), trace.NewCSVEncoder(&out), nil)
	if !errors.Is(err, trace.ErrNoRequest) {
		t.Fatalf("want ErrNoRequest, got %v", err)
	}
	if out.Len() != 0 {
		t.Fatal("rejected empty stream still wrote output")
	}
}

// TestPlanSliceCoverage checks shards partition the trace exactly and
// carries line up.
func TestPlanSliceCoverage(t *testing.T) {
	old := genOld(t, "ikki", 2000, true)
	cfg := testConfig(4, core.Options{}).withDefaults()
	shards := planSlice(cfg, old)
	if len(shards) < 2 {
		t.Fatalf("want multiple shards, got %d", len(shards))
	}
	total := 0
	for i, s := range shards {
		if s.index != i {
			t.Fatalf("shard %d has index %d", i, s.index)
		}
		if len(s.reqs) == 0 || len(s.seq) != len(s.reqs) {
			t.Fatalf("shard %d malformed", i)
		}
		if i > 0 {
			if !s.hasPrev {
				t.Fatalf("shard %d missing prev carry", i)
			}
			prevShard := shards[i-1]
			if s.prev != prevShard.reqs[len(prevShard.reqs)-1] {
				t.Fatalf("shard %d prev carry mismatch", i)
			}
			if !prevShard.hasNext || prevShard.nextArrival != s.reqs[0].Arrival {
				t.Fatalf("shard %d next carry mismatch", i)
			}
		}
		total += len(s.reqs)
	}
	if total != old.Len() {
		t.Fatalf("shards cover %d requests, want %d", total, old.Len())
	}
	if shards[len(shards)-1].hasNext {
		t.Fatal("final shard claims a next arrival")
	}
}

// TestStreamPlannerMatchesPlanSlice checks both planners cut at the
// same points.
func TestStreamPlannerMatchesPlanSlice(t *testing.T) {
	old := genOld(t, "Exchange", 1500, true)
	cfg := testConfig(4, core.Options{}).withDefaults()
	want := planSlice(cfg, old)
	p := newStreamPlanner(cfg, nil)
	var got []shard
	for _, r := range old.Requests {
		done, err := p.add(r)
		if err != nil {
			t.Fatal(err)
		}
		if done != nil {
			got = append(got, *done)
		}
	}
	if last := p.finish(); last != nil {
		got = append(got, *last)
	}
	if len(got) != len(want) {
		t.Fatalf("shard count: got %d want %d", len(got), len(want))
	}
	for i := range got {
		if !reflect.DeepEqual(got[i].reqs, want[i].reqs) {
			t.Fatalf("shard %d requests differ", i)
		}
		if !reflect.DeepEqual(got[i].seq, want[i].seq) {
			t.Fatalf("shard %d seq flags differ", i)
		}
		if got[i].hasPrev != want[i].hasPrev || got[i].prev != want[i].prev || got[i].prevSeq != want[i].prevSeq {
			t.Fatalf("shard %d prev carry differs", i)
		}
		if got[i].hasNext != want[i].hasNext || got[i].nextArrival != want[i].nextArrival {
			t.Fatalf("shard %d next carry differs", i)
		}
	}
}

// TestReconstructPathParallelDecode locks the fused ingest: when the
// input file is big enough for the segmented parallel decoder to
// engage, ReconstructPath's output stays byte-identical to the
// single-worker (sequential-decode) run, for a headered CSV input and
// a counted binary input.
func TestReconstructPathParallelDecode(t *testing.T) {
	old := genOld(t, "MSNFS", 40_000, true)
	dir := t.TempDir()
	write := func(name string, enc func(io.Writer, *trace.Trace) error) string {
		path := dir + "/" + name
		var buf bytes.Buffer
		if err := enc(&buf, old); err != nil {
			t.Fatal(err)
		}
		if buf.Len() < trace.ParallelMinBytes {
			t.Fatalf("%s fixture too small (%d bytes) to engage the parallel decoder", name, buf.Len())
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o666); err != nil {
			t.Fatal(err)
		}
		return path
	}
	for _, tc := range []struct {
		format string
		path   string
	}{
		{"bin", write("in.bin", trace.WriteBinary)},
		{"csv", write("in.csv", trace.WriteCSV)},
	} {
		run := func(workers int) []byte {
			var out bytes.Buffer
			e := New(testConfig(workers, core.Options{}))
			rep, err := e.ReconstructPath(tc.path, tc.format, 0, trace.NewCSVEncoder(&out))
			if err != nil {
				t.Fatalf("%s w=%d: %v", tc.format, workers, err)
			}
			if rep.Requests != int64(old.Len()) {
				t.Fatalf("%s w=%d: %d of %d requests", tc.format, workers, rep.Requests, old.Len())
			}
			return out.Bytes()
		}
		want := run(1)
		if got := run(4); !bytes.Equal(got, want) {
			t.Fatalf("%s: parallel-decode streaming output diverges from single-worker run", tc.format)
		}
	}
}
