package engine

// Epoch-pipelined execution for non-shard-safe devices (the HDD).
//
// A shard-safe device drains between epochs, so every epoch can be
// emulated from a fresh device at time zero and shifted into place —
// that is the execute() path. The HDD cannot: its head position,
// rotational phase and write-cache destage debt persist across idle
// periods, so epoch k's servicing depends on everything before it.
// What it does NOT depend on is anything expensive: given the device's
// entry state and the entry virtual time, the epoch's servicing is a
// pure function of the epoch itself.
//
// The pipeline exploits that. Stages, per epoch:
//
//	planner (serial)    cut epochs at idle-gap boundaries, carry seq state
//	decompose (pool)    infer per-request idle/async from the OLD trace —
//	                    device-independent, so it runs before any device
//	                    state exists for the epoch
//	servicer (serial)   the only device-ordered pass: snapshot the entry
//	                    state (device.Stateful), advance one continuously
//	                    evolving device through the epoch's submissions,
//	                    and accumulate the post-processing arrival shift
//	                    — device arithmetic only, no output
//	emulate (pool)      restore the entry snapshot into a per-worker
//	                    device, re-run the epoch on the global timeline
//	                    writing the output trace, post-process with the
//	                    entry shift (arrivals become final), and render
//	                    the output bytes when the encoder allows it
//	merge (serial)      splice results back in epoch order
//
// Epochs are the handoff points because the planner already cuts them
// at the workload's idle gaps: they are the natural quiescent points
// where a snapshot is small (the device has signalled every prior
// completion) and load balance is decent. The servicer and the workers
// run the same submission sequence at the same absolute times against
// deterministic devices, so the output is byte-identical to one
// sequential emulation — locked by the HDD identity tests at workers
// 1, 4 and 8.
//
// In-flight epochs are token-bounded exactly like execute(), so the
// streaming path holds O(Workers · MaxShardRequests) requests no
// matter how the stage throughputs differ.

import (
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/infer"
	"repro/internal/obs"
	"repro/internal/replay"
	"repro/internal/trace"
)

// pipeEpoch is one epoch travelling through the pipelined executor.
type pipeEpoch struct {
	s     shard
	idle  []time.Duration
	async []bool
	// h and shift are attached by the servicer: the device handoff at
	// the epoch's entry and the cumulative post-processing arrival
	// reduction accumulated by all earlier epochs.
	h     replay.Handoff
	shift time.Duration
}

// pipeResult is one reconstructed epoch awaiting the ordered merge.
// Arrivals are final (absolute timeline, post-processing applied), so
// the merge adds no offsets.
type pipeResult struct {
	index int
	n     int
	// span is the epoch span, carried to the merge loop (see shard).
	span obs.Span
	// reqs holds the epoch's output records, nil when they were already
	// rendered into enc (the requests buffer is recycled eagerly then).
	reqs []trace.Request
	enc  []byte

	idleCount  int
	idleTotal  time.Duration
	asyncCount int
}

// executePipelined runs the epoch pipeline: produce submits epochs in
// index order (same contract as execute); the worker pool serves both
// the decompose and the emulate stages; the servicer goroutine threads
// device state through the epochs in order; emit receives results in
// epoch order with final arrivals. se, when non-nil, is the shard
// encoder workers pre-render output bytes with (streaming only). pool
// follows the execute() recycling discipline and must be non-nil
// whenever se is. devStats, when non-nil, receives the servicer
// device's accumulated statistics (device.StatsReporter) after the
// last epoch is serviced — the servicer's device is the one instance
// that sees every submission in order, so its stats equal a serial
// run's; the write is safe to read once executePipelined returns (the
// servicer's channel close happens-before the merge loop ends).
func (e *Engine) executePipelined(produce func(submit func(shard) error) error, m *infer.Model, useRecorded bool, se trace.ShardEncoder, emit func(pipeResult) error, pool *bufPool, devStats *[]device.Stat) error {
	workers := e.cfg.Workers
	mtr := e.cfg.Metrics
	tra := e.cfg.Trace
	inflight := 4 * workers
	// Every stage channel holds the full in-flight budget, so no stage
	// send can block: the token pool is the only backpressure point.
	decCh := make(chan pipeEpoch, inflight)
	svcCh := make(chan pipeEpoch, inflight)
	emuCh := make(chan pipeEpoch, inflight)
	resCh := make(chan pipeResult, inflight)
	tokens := make(chan struct{}, inflight)
	stop := make(chan struct{})
	skipPost := e.cfg.Core.SkipPostProcess

	var produceErr error
	go func() {
		defer close(decCh)
		// Plan-stage accounting mirrors execute(): producer wall time
		// minus token-pool stalls (downstream backpressure).
		var planStart time.Time
		var tokenWait time.Duration
		timed := mtr != nil || tra != nil
		if timed {
			planStart = time.Now()
		}
		psp := tra.Start(tra.Root(), "plan")
		produceErr = produce(func(s shard) error {
			var w0 time.Time
			if timed {
				w0 = time.Now()
			}
			select {
			case tokens <- struct{}{}:
			case <-stop:
				return errAborted
			}
			if timed {
				tokenWait += time.Since(w0)
			}
			if mtr != nil {
				mtr.EpochsInFlight.Inc()
				mtr.StageEpochs[obs.StagePlan].Inc()
				mtr.QueuePush(obs.StageDecompose)
			}
			s.span = tra.StartEpoch(tra.Root(), s.index)
			s.span.SetAttr("requests", int64(len(s.reqs)))
			decCh <- pipeEpoch{s: s}
			return nil
		})
		psp.SetAttr("token_wait_ns", int64(tokenWait))
		psp.End()
		if mtr != nil {
			mtr.TokenWaitNanos.Add(int64(tokenWait))
			mtr.StageNanos[obs.StagePlan].Add(int64(time.Since(planStart) - tokenWait))
		}
	}()

	var wg, decDone sync.WaitGroup
	wg.Add(workers)
	decDone.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			dev := e.cfg.Device()
			dec, emu := decCh, emuCh
			for dec != nil || emu != nil {
				select {
				case ep, ok := <-emu:
					if !ok {
						emu = nil
						continue
					}
					mtr.QueuePop(obs.StageEmulate)
					var t0 time.Time
					if mtr != nil {
						t0 = time.Now()
					}
					res := e.runEpoch(&ep, dev, se, pool, skipPost)
					if mtr != nil {
						mtr.StageAdd(obs.StageEmulate, time.Since(t0))
					}
					mtr.QueuePush(obs.StageMerge)
					resCh <- res
				case ep, ok := <-dec:
					if !ok {
						dec = nil
						decDone.Done()
						continue
					}
					mtr.QueuePop(obs.StageDecompose)
					var t0 time.Time
					if mtr != nil {
						t0 = time.Now()
					}
					e.decomposeEpoch(&ep, m, useRecorded, pool)
					if mtr != nil {
						mtr.StageAdd(obs.StageDecompose, time.Since(t0))
					}
					mtr.QueuePush(obs.StageService)
					svcCh <- ep
				}
			}
		}()
	}
	go func() {
		decDone.Wait()
		close(svcCh)
	}()
	go func() {
		wg.Wait()
		close(resCh)
	}()

	// Servicer: the serial device-ordered pass.
	go func() {
		defer close(emuCh)
		sdev := e.cfg.Device()
		snap := sdev.(device.Stateful)
		pending := make(map[int]pipeEpoch)
		next := 0
		var now, shift time.Duration
		for ep := range svcCh {
			mtr.QueuePop(obs.StageService)
			pending[ep.s.index] = ep
			for {
				cur, ok := pending[next]
				if !ok {
					break
				}
				delete(pending, next)
				var t0 time.Time
				if mtr != nil {
					t0 = time.Now()
				}
				ssp := cur.s.span.Child("service")
				cur.h = replay.Handoff{State: snap.Snapshot(), Now: now}
				cur.shift = shift
				var async []bool
				if !skipPost {
					async = cur.async
				}
				var delta time.Duration
				now, delta = replay.ServiceShard(cur.s.reqs, sdev, cur.idle, async, now)
				shift += delta
				ssp.End()
				if mtr != nil {
					mtr.StageAdd(obs.StageService, time.Since(t0))
				}
				mtr.QueuePush(obs.StageEmulate)
				emuCh <- cur
				next++
			}
		}
		if devStats != nil {
			if sr, ok := sdev.(device.StatsReporter); ok {
				*devStats = sr.DeviceStats()
			}
		}
	}()

	var emitErr error
	pending := make(map[int]pipeResult)
	next := 0
	for res := range resCh {
		mtr.QueuePop(obs.StageMerge)
		pending[res.index] = res
		for {
			r, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			if emitErr == nil {
				var m0 time.Time
				if mtr != nil {
					m0 = time.Now()
				}
				msp := r.span.Child("merge")
				if err := emit(r); err != nil {
					emitErr = err
					close(stop)
				}
				msp.End()
				if mtr != nil {
					mtr.StageAdd(obs.StageMerge, time.Since(m0))
					mtr.Epochs.Inc()
					mtr.Requests.Add(int64(r.n))
				}
			}
			r.span.End()
			if pool != nil {
				pool.putBytes(r.enc)
				if emitErr == nil {
					// The requests are dead once emitted.
					pool.putReqs(r.reqs)
				}
			}
			next++
			<-tokens
			if mtr != nil {
				mtr.EpochsInFlight.Dec()
			}
		}
	}
	if produceErr != nil && produceErr != errAborted {
		return produceErr
	}
	return emitErr
}

// decomposeEpoch is the first worker stage: per-request idle/async
// inference with the epoch's carry context. The seq flags are dead
// afterwards and recycle immediately.
//
//tracelint:hotpath
func (e *Engine) decomposeEpoch(ep *pipeEpoch, m *infer.Model, useRecorded bool, pool *bufPool) {
	s := &ep.s
	ctx := infer.ShardContext{
		TsdevKnown:  useRecorded,
		Seq:         s.seq,
		HasNext:     s.hasNext,
		NextArrival: s.nextArrival,
	}
	if s.hasPrev {
		ctx.Prev = &s.prev
		ctx.PrevSeq = s.prevSeq
	}
	if s.dst != nil {
		// In-memory path: write straight into the report slots.
		ep.idle, ep.async = s.dstIdle, s.dstAsync
	} else {
		n := len(s.reqs)
		ep.idle = pool.getDurs(n)
		ep.async = pool.getFlags(n)
	}
	dsp := s.span.Child("decompose")
	infer.DecomposeShardInto(ep.idle, ep.async, m, s.reqs, ctx)
	dsp.End()
	if pool != nil {
		pool.putSeqs(s.seq)
		s.seq = nil
	}
}

// runEpoch is the second worker stage: re-run the epoch's emulation
// from the entry handoff on this worker's device, post-process to
// final arrivals, aggregate, and (streaming) render the output bytes.
//
//tracelint:hotpath
func (e *Engine) runEpoch(ep *pipeEpoch, dev device.Device, se trace.ShardEncoder, pool *bufPool, skipPost bool) pipeResult {
	s := &ep.s
	out := s.dst
	if out == nil {
		// Streaming path: emulate in place over the planner buffer. The
		// decompose stage already consumed the original request data.
		out = s.reqs
	}
	esp := s.span.Child("emulate")
	replay.EmulateShardResume(out, s.reqs, dev, ep.idle, ep.h)
	if !skipPost {
		// The servicer accounted the same reductions when it computed
		// the next epoch's entry shift; starting from ep.shift makes
		// these arrivals final.
		core.PostProcessShard(out, ep.async, ep.shift)
	}
	// The span matches the emulate stage metric: it also covers the
	// aggregation and (streaming) render below.
	defer esp.End()
	res := pipeResult{index: s.index, n: len(out), span: s.span, reqs: out}
	for _, d := range ep.idle {
		if d > 0 {
			res.idleCount++
			res.idleTotal += d
		}
	}
	for _, a := range ep.async {
		if a {
			res.asyncCount++
		}
	}
	if s.dst == nil {
		pool.putDurs(ep.idle)
		pool.putFlags(ep.async)
	}
	if se != nil {
		buf := pool.getBytes()
		for i := range out {
			buf = se.AppendRecord(buf, out[i])
		}
		res.enc = buf
		// Rendered: the request buffer is dead already.
		pool.putReqs(out)
		res.reqs = nil
	}
	return res
}
