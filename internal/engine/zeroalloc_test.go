package engine

// Steady-state allocation lock for the streaming reconstruction: with
// the zero-allocation codec, pooled shard buffers and worker-local
// decomposition scratch, a Tsdev-known run must cost (amortized)
// near-zero allocations per request — the budget below allows only
// the fixed per-run setup (decoder, channels, goroutines, pool warmup)
// spread over the request count.

import (
	"bytes"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"runtime"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/trace"
)

// allocBenchTrace synthesizes a recorded-latency trace with idle gaps
// so the planner cuts many shards.
func allocBenchTrace(n int) *trace.Trace {
	t := &trace.Trace{Name: "alloc", Workload: "w", Set: "MSPS", TsdevKnown: true}
	t.Requests = make([]trace.Request, n)
	arr := time.Duration(0)
	for i := range t.Requests {
		gap := 40 * time.Microsecond
		if i%2048 == 2047 {
			gap = 5 * time.Millisecond // idle cut opportunity
		}
		arr += gap
		t.Requests[i] = trace.Request{
			Arrival: arr,
			Device:  uint32(i % 3),
			LBA:     uint64(i*8) % (1 << 28),
			Sectors: uint32(8 + (i%4)*8),
			Op:      trace.Op(i % 2),
			Latency: time.Duration(80+i%40) * time.Microsecond,
		}
	}
	return t
}

// TestStreamReconstructAllocBound locks the amortized allocation cost
// of ReconstructStream on the recorded-latency path — with
// instrumentation disabled (the nil Config.Metrics and Config.Trace
// hooks must leave the hot path untouched), with a live metrics
// registry attached, and with both metrics and a span recorder on.
// The instrumentation itself must be allocation-free: atomic updates
// on pre-registered metrics, and spans appended into the Tracer's
// fixed preallocated buffer — so every configuration shares the same
// 0.05 allocs/request bound (the fixed per-run setup amortized over
// the request count).
func TestStreamReconstructAllocBound(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation accounting at full trace size")
	}
	const n = 200_000
	var buf bytes.Buffer
	if err := trace.WriteBinary(&buf, allocBenchTrace(n)); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	cases := []struct {
		name    string
		metrics *obs.EngineMetrics
		tracer  *obs.Tracer
	}{
		{"hooks-disabled", nil, nil},
		{"metrics-enabled", obs.NewEngineMetrics(obs.NewRegistry()), nil},
		{"metrics-and-tracer-enabled",
			obs.NewEngineMetrics(obs.NewRegistry()),
			obs.NewTracer("allocbound", 0, obs.TraceContext{})},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			eng := New(Config{Workers: 2, MaxShardRequests: 4096, Metrics: tc.metrics, Trace: tc.tracer})
			run := func() {
				dec := trace.NewBinaryDecoder(bytes.NewReader(data))
				rep, err := eng.ReconstructStream(dec, trace.NewBinaryEncoder(io.Discard), nil)
				if err != nil {
					t.Fatal(err)
				}
				if rep.Requests != n {
					t.Fatalf("reconstructed %d of %d requests", rep.Requests, n)
				}
			}
			run() // warm up code paths

			runtime.GC()
			var m0, m1 runtime.MemStats
			runtime.ReadMemStats(&m0)
			run()
			runtime.ReadMemStats(&m1)

			perReq := float64(m1.Mallocs-m0.Mallocs) / float64(n)
			if perReq > 0.05 {
				t.Fatalf("streaming reconstruction allocates %.4f objects per request (%d total), want amortized ~0",
					perReq, m1.Mallocs-m0.Mallocs)
			}
			if tc.metrics != nil {
				if got := tc.metrics.Requests.Value(); got != 2*n {
					t.Fatalf("engine_requests_total = %d, want %d", got, 2*n)
				}
				secs := tc.metrics.StageSeconds()
				if secs["decompose"] <= 0 || secs["emulate"] <= 0 || secs["merge"] <= 0 {
					t.Fatalf("stage seconds not recorded: %v", secs)
				}
			}
			if tc.tracer != nil {
				// The bound must hold while spans are actually recorded,
				// not because the buffer silently filled on warmup.
				jt := tc.tracer.Snapshot()
				if len(jt.Spans) < 3 {
					t.Fatalf("tracer recorded %d spans, want the run's plan and epoch spans", len(jt.Spans))
				}
			}
		})
	}
}

// TestMeasuredHotPathsAnnotated closes the loop between this file's
// allocation bounds and the tracelint hotpath analyzer: every function
// on the measured path (the codec record loops exercised through
// ReconstructStream and locked by trace/zeroalloc_test.go, and the
// engine's per-shard/per-epoch stages locked above) must carry
// //tracelint:hotpath, so a regression is rejected at the allocating
// line by `go vet -vettool`, not just caught after the fact by the
// benchmark's amortized bound.
func TestMeasuredHotPathsAnnotated(t *testing.T) {
	// (file, receiver type or "", function name); receivers are matched
	// without pointer markers.
	measured := []struct {
		file string
		recv string
		name string
	}{
		{"../trace/stream.go", "CSVDecoder", "Next"},
		{"../trace/stream.go", "BinaryDecoder", "Next"},
		{"../trace/stream.go", "MSRCDecoder", "Next"},
		{"../trace/stream.go", "SPCDecoder", "Next"},
		{"../trace/stream.go", "", "decodeBatch"},
		{"../trace/stream.go", "CSVEncoder", "Write"},
		{"../trace/stream.go", "BinaryEncoder", "Write"},
		{"../trace/stream.go", "BlktraceEncoder", "Write"},
		{"../trace/stream.go", "FIOEncoder", "Write"},
		{"../trace/stream.go", "CSVEncoder", "AppendRecord"},
		{"../trace/stream.go", "BinaryEncoder", "AppendRecord"},
		{"../trace/summary.go", "Summarizer", "Add"},
		{"exec.go", "Engine", "runShard"},
		{"pipeline.go", "Engine", "decomposeEpoch"},
		{"pipeline.go", "Engine", "runEpoch"},
	}
	fset := token.NewFileSet()
	parsed := map[string]*ast.File{}
	for _, m := range measured {
		f, ok := parsed[m.file]
		if !ok {
			var err error
			f, err = parser.ParseFile(fset, m.file, nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				t.Fatal(err)
			}
			parsed[m.file] = f
		}
		fn := findFunc(f, m.recv, m.name)
		if fn == nil {
			t.Errorf("%s: measured function %s.%s not found", m.file, m.recv, m.name)
			continue
		}
		if !hasHotpathDirective(fn) {
			t.Errorf("%s: %s.%s is on a measured zero-alloc path but lacks //tracelint:hotpath",
				m.file, m.recv, m.name)
		}
	}
}

func findFunc(f *ast.File, recv, name string) *ast.FuncDecl {
	for _, decl := range f.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Name.Name != name {
			continue
		}
		if recv == "" {
			if fn.Recv == nil {
				return fn
			}
			continue
		}
		if fn.Recv == nil || len(fn.Recv.List) != 1 {
			continue
		}
		rt := fn.Recv.List[0].Type
		if star, ok := rt.(*ast.StarExpr); ok {
			rt = star.X
		}
		if id, ok := rt.(*ast.Ident); ok && id.Name == recv {
			return fn
		}
	}
	return nil
}

func hasHotpathDirective(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if c.Text == "//tracelint:hotpath" {
			return true
		}
	}
	return false
}
