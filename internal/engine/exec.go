package engine

import (
	"errors"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/infer"
	"repro/internal/obs"
	"repro/internal/replay"
	"repro/internal/trace"
)

// errAborted is the sentinel a submit callback returns once an emit
// error has stopped the run; execute never surfaces it (the emit
// error is the root cause).
var errAborted = errors.New("engine: run aborted by output error")

// shardResult is the reconstruction of one shard in shard-relative
// time, plus the chaining values the merger needs.
type shardResult struct {
	index int
	reqs  []trace.Request
	// span is the shard's epoch span, carried through so the merge
	// loop can time its merge child and close the epoch.
	span obs.Span
	// end is the completion time of the shard's last instruction,
	// relative to the shard base: the next shard's base increment.
	end time.Duration
	// shiftDelta is the post-processing arrival reduction accumulated
	// within the shard: the next shard's shift increment.
	shiftDelta time.Duration

	idleCount  int
	idleTotal  time.Duration
	asyncCount int
}

// workerScratch is the per-executor decomposition scratch reused
// across shards on the streaming path, where nothing downstream of
// runShard reads the idle/async slices (the result carries their
// aggregates). The in-memory path writes into report-owned slots
// instead and ignores this.
type workerScratch struct {
	idle  []time.Duration
	async []bool
}

func (w *workerScratch) grow(n int) ([]time.Duration, []bool) {
	if cap(w.idle) < n {
		w.idle = make([]time.Duration, n)
		w.async = make([]bool, n)
	}
	return w.idle[:n], w.async[:n]
}

// runShard executes the full per-shard pipeline: decomposition with
// carry context, emulation on a drained device from time zero, and
// local post-processing. On the streaming path (s.dst == nil) the
// emulation writes in place over s.reqs — the original request data is
// fully consumed by the decomposition first — so a shard costs no
// output allocation at all.
//
//tracelint:hotpath
func (e *Engine) runShard(s *shard, m *infer.Model, useRecorded bool, dev device.Device, scr *workerScratch) shardResult {
	ctx := infer.ShardContext{
		TsdevKnown:  useRecorded,
		Seq:         s.seq,
		HasNext:     s.hasNext,
		NextArrival: s.nextArrival,
	}
	if s.hasPrev {
		ctx.Prev = &s.prev
		ctx.PrevSeq = s.prevSeq
	}
	var (
		idle  []time.Duration
		async []bool
		out   []trace.Request
		end   time.Duration
	)
	if s.dst != nil {
		idle, async, out = s.dstIdle, s.dstAsync, s.dst
	} else {
		idle, async = scr.grow(len(s.reqs))
		out = s.reqs
	}
	mtr := e.cfg.Metrics
	var t0 time.Time
	if mtr != nil {
		t0 = time.Now()
	}
	dsp := s.span.Child("decompose")
	infer.DecomposeShardInto(idle, async, m, s.reqs, ctx)
	dsp.End()
	if mtr != nil {
		t1 := time.Now()
		mtr.StageAdd(obs.StageDecompose, t1.Sub(t0))
		t0 = t1
	}
	esp := s.span.Child("emulate")
	end = replay.EmulateShardInto(out, s.reqs, dev, idle)
	esp.End()
	if mtr != nil {
		mtr.StageAdd(obs.StageEmulate, time.Since(t0))
	}
	res := shardResult{
		index: s.index,
		reqs:  out,
		span:  s.span,
		end:   end,
	}
	if !e.cfg.Core.SkipPostProcess {
		res.shiftDelta = core.PostProcessShard(out, async, 0)
	}
	for _, d := range idle {
		if d > 0 {
			res.idleCount++
			res.idleTotal += d
		}
	}
	for _, a := range async {
		if a {
			res.asyncCount++
		}
	}
	return res
}

// bufPool is a free list recycling shard buffers between the merge
// loop (which finishes with a shard's requests) and the stream
// planner (which opens the next shard). The in-flight token pool
// bounds how many buffers circulate, so steady-state streaming
// reconstruction allocates nothing per shard once the list warms up.
// The pipelined executor additionally recycles its per-epoch
// decomposition scratch (durs/flags) and pre-rendered output buffers
// (bytes) through the same pool.
type bufPool struct {
	mu    sync.Mutex
	reqs  [][]trace.Request // guarded by mu
	seqs  [][]bool          // guarded by mu
	durs  [][]time.Duration // guarded by mu
	flags [][]bool          // guarded by mu
	bytes [][]byte          // guarded by mu
}

func (p *bufPool) getReqs() []trace.Request {
	p.mu.Lock()
	defer p.mu.Unlock()
	if n := len(p.reqs); n > 0 {
		b := p.reqs[n-1]
		p.reqs = p.reqs[:n-1]
		return b[:0]
	}
	return nil
}

func (p *bufPool) putReqs(b []trace.Request) {
	if b == nil {
		return
	}
	p.mu.Lock()
	p.reqs = append(p.reqs, b)
	p.mu.Unlock()
}

func (p *bufPool) getSeqs() []bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if n := len(p.seqs); n > 0 {
		b := p.seqs[n-1]
		p.seqs = p.seqs[:n-1]
		return b[:0]
	}
	return nil
}

func (p *bufPool) putSeqs(b []bool) {
	if b == nil {
		return
	}
	p.mu.Lock()
	p.seqs = append(p.seqs, b)
	p.mu.Unlock()
}

// getDurs returns a duration scratch of length n (stale contents are
// fine: DecomposeShardInto overwrites every slot it reads).
func (p *bufPool) getDurs(n int) []time.Duration {
	p.mu.Lock()
	var b []time.Duration
	if k := len(p.durs); k > 0 {
		b = p.durs[k-1]
		p.durs = p.durs[:k-1]
	}
	p.mu.Unlock()
	if cap(b) < n {
		return make([]time.Duration, n)
	}
	return b[:n]
}

func (p *bufPool) putDurs(b []time.Duration) {
	if b == nil {
		return
	}
	p.mu.Lock()
	p.durs = append(p.durs, b)
	p.mu.Unlock()
}

// getFlags returns a bool scratch of length n (see getDurs).
func (p *bufPool) getFlags(n int) []bool {
	p.mu.Lock()
	var b []bool
	if k := len(p.flags); k > 0 {
		b = p.flags[k-1]
		p.flags = p.flags[:k-1]
	}
	p.mu.Unlock()
	if cap(b) < n {
		return make([]bool, n)
	}
	return b[:n]
}

func (p *bufPool) putFlags(b []bool) {
	if b == nil {
		return
	}
	p.mu.Lock()
	p.flags = append(p.flags, b)
	p.mu.Unlock()
}

// getBytes returns an empty byte buffer for epoch encoding.
func (p *bufPool) getBytes() []byte {
	p.mu.Lock()
	defer p.mu.Unlock()
	if k := len(p.bytes); k > 0 {
		b := p.bytes[k-1]
		p.bytes = p.bytes[:k-1]
		return b[:0]
	}
	return nil
}

func (p *bufPool) putBytes(b []byte) {
	if b == nil {
		return
	}
	p.mu.Lock()
	p.bytes = append(p.bytes, b)
	p.mu.Unlock()
}

// execute runs the shard pipeline: produce is called on its own
// goroutine and submits shards in index order via the callback it is
// handed; cfg.Workers executors reconstruct them concurrently; emit
// receives each result in shard order together with the offset to add
// to every arrival to place it on the global timeline (shard base
// minus accumulated post-processing shift).
//
// In-flight shards are bounded by a token pool, so streaming runs hold
// only O(Workers · MaxShardRequests) requests in memory no matter how
// unbalanced the shard durations are. A produce error ends submission
// at that point; an emit error additionally signals the producer to
// stop, so a failed output stream does not keep decoding and
// reconstructing the rest of the input. Residual in-flight shards are
// drained, not emitted.
//
// pool, when non-nil, receives each shard's buffers back once they are
// dead (seq flags after the shard runs, requests after the merge emits
// them); the planner that owns the same pool reuses them for new
// shards. nil (the in-memory path, whose shards are views into the
// preallocated output) disables recycling.
func (e *Engine) execute(produce func(submit func(shard) error) error, m *infer.Model, useRecorded bool, emit func(res shardResult, offset time.Duration) error, pool *bufPool) error {
	workers := e.cfg.Workers
	mtr := e.cfg.Metrics
	tra := e.cfg.Trace
	shardCh := make(chan shard, workers)
	results := make(chan shardResult, workers)
	tokens := make(chan struct{}, 4*workers)
	stop := make(chan struct{})

	var produceErr error
	go func() {
		defer close(shardCh)
		// Plan-stage accounting: the producer's wall time minus the time
		// it spent stalled on the token pool (that is downstream
		// backpressure, not planning).
		var planStart time.Time
		var tokenWait time.Duration
		timed := mtr != nil || tra != nil
		if timed {
			planStart = time.Now()
		}
		psp := tra.Start(tra.Root(), "plan")
		produceErr = produce(func(s shard) error {
			var w0 time.Time
			if timed {
				w0 = time.Now()
			}
			select {
			case tokens <- struct{}{}:
			case <-stop:
				return errAborted
			}
			if timed {
				tokenWait += time.Since(w0)
			}
			if mtr != nil {
				mtr.EpochsInFlight.Inc()
				mtr.StageEpochs[obs.StagePlan].Inc()
				mtr.QueuePush(obs.StageDecompose)
			}
			s.span = tra.StartEpoch(tra.Root(), s.index)
			s.span.SetAttr("requests", int64(len(s.reqs)))
			select {
			case shardCh <- s:
			case <-stop:
				return errAborted
			}
			return nil
		})
		psp.SetAttr("token_wait_ns", int64(tokenWait))
		psp.End()
		if mtr != nil {
			mtr.TokenWaitNanos.Add(int64(tokenWait))
			mtr.StageNanos[obs.StagePlan].Add(int64(time.Since(planStart) - tokenWait))
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			dev := e.cfg.Device()
			var scr workerScratch
			for s := range shardCh {
				s := s
				mtr.QueuePop(obs.StageDecompose)
				res := e.runShard(&s, m, useRecorded, dev, &scr)
				if pool != nil {
					// The seq flags are dead once the shard ran.
					pool.putSeqs(s.seq)
				}
				mtr.QueuePush(obs.StageMerge)
				results <- res
			}
		}()
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	var emitErr error
	pending := make(map[int]shardResult)
	next := 0
	var base, shift time.Duration
	for res := range results {
		mtr.QueuePop(obs.StageMerge)
		pending[res.index] = res
		for {
			r, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			if emitErr == nil {
				var m0 time.Time
				if mtr != nil {
					m0 = time.Now()
				}
				msp := r.span.Child("merge")
				if err := emit(r, base-shift); err != nil {
					emitErr = err
					close(stop)
				}
				msp.End()
				if mtr != nil {
					mtr.StageAdd(obs.StageMerge, time.Since(m0))
					mtr.Epochs.Inc()
					mtr.Requests.Add(int64(len(r.reqs)))
				}
			}
			r.span.End()
			if pool != nil && emitErr == nil {
				// The requests are dead once emitted.
				pool.putReqs(r.reqs)
			}
			base += r.end
			shift += r.shiftDelta
			next++
			<-tokens
			if mtr != nil {
				mtr.EpochsInFlight.Dec()
			}
		}
	}
	if produceErr != nil && produceErr != errAborted {
		return produceErr
	}
	return emitErr
}
