package engine

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/trace"
)

// memCache is a minimal ResultCache over a temp directory.
type memCache struct {
	dir    string
	notes  map[string][]byte
	stores int
}

func newMemCache(t *testing.T) *memCache {
	return &memCache{dir: t.TempDir(), notes: make(map[string][]byte)}
}

func (c *memCache) LookupResult(key string) (string, []byte, bool) {
	note, ok := c.notes[key]
	if !ok {
		return "", nil, false
	}
	return filepath.Join(c.dir, key), note, true
}

func (c *memCache) StoreResult(key, inputDigest string, note []byte, write func(io.Writer) error) (string, error) {
	if _, ok := c.notes[key]; ok {
		return filepath.Join(c.dir, key), nil
	}
	f, err := os.Create(filepath.Join(c.dir, key))
	if err != nil {
		return "", err
	}
	defer f.Close()
	if err := write(f); err != nil {
		return "", err
	}
	c.notes[key] = note
	c.stores++
	return f.Name(), nil
}

// TestFingerprintSemantics locks which spec fields enter the job
// fingerprint: labels, paths and execution strategy stay out,
// output-shaping fields go in.
func TestFingerprintSemantics(t *testing.T) {
	base := JobSpec{In: "/a/in.csv", Method: "tracetracker"}
	fp := base.Fingerprint()

	same := []JobSpec{
		{In: "/elsewhere/other.csv", Method: "tracetracker"},
		{In: "/a/in.csv", Name: "labelled", Method: "tracetracker"},
		{In: "/a/in.csv", Out: "/tmp/out.csv", Method: "tracetracker"},
		{In: "/a/in.csv", Parallel: 8, Method: "tracetracker"},
		{In: "/a/in.csv", Out: "/tmp/o", Stream: true, Method: "tracetracker"},
		{In: "/a/in.csv"},                                    // method defaults to tracetracker
		{In: "/a/in.csv", FIODevice: "/dev/sdz"},             // non-fio output ignores the device
		{In: "/a/in.csv", ThresholdUS: 123},                  // fixed-th-only knob
		{In: "/a/in.csv", Factor: 9},                         // acceleration-only knob
		{In: "/a/in.csv", InFormat: "csv", OutFormat: "csv"}, // explicit defaults
	}
	for i, s := range same {
		if got := s.Fingerprint(); got != fp {
			t.Errorf("variant %d changed the fingerprint", i)
		}
	}

	diff := []JobSpec{
		{In: "/a/in.csv", Method: "dynamic"},
		{In: "/a/in.csv", Method: "revision"},
		{In: "/a/in.csv", OutFormat: "bin"},
		{In: "/a/in.csv", InFormat: "bin"},
		{In: "/a/in.csv", OutFormat: "fio", FIODevice: "/dev/sdz"},
		{In: "/a/in.csv", Method: "fixed-th", ThresholdUS: 123},
		{In: "/a/in.csv", Method: "acceleration", Factor: 9},
		{In: "/a/in.csv", ReorderWindow: 7},
	}
	seen := map[string]int{fp: -1}
	for i, s := range diff {
		got := s.Fingerprint()
		if prev, dup := seen[got]; dup {
			t.Errorf("variants %d and %d collide", i, prev)
		}
		seen[got] = i
	}

	// Keys separate by input digest too.
	if CacheKey("d1", base) == CacheKey("d2", base) {
		t.Error("cache key ignores the input digest")
	}
}

// TestRunJobCached is the cache contract: first run executes and
// stores, second run is a hit serving byte-identical output and the
// restored report, and a different input digest misses.
func TestRunJobCached(t *testing.T) {
	dir := t.TempDir()
	old := genOld(t, "ikki", 400, true)
	inPath := filepath.Join(dir, "in.csv")
	f, err := os.Create(inPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteCSV(f, old); err != nil {
		t.Fatal(err)
	}
	f.Close()

	cache := newMemCache(t)
	cfg := testConfig(2, core.Options{})
	spec := JobSpec{In: inPath}

	res1, hit1, err := RunJobCached(cfg, spec, "digest-a", cache)
	if err != nil {
		t.Fatal(err)
	}
	if hit1 {
		t.Fatal("first run reported a hit")
	}
	if res1.Trace == nil || res1.Report == nil {
		t.Fatalf("first run result: %+v", res1)
	}
	if cache.stores != 1 {
		t.Fatalf("stores: %d", cache.stores)
	}
	var want bytes.Buffer
	if err := trace.WriteCSV(&want, res1.Trace); err != nil {
		t.Fatal(err)
	}

	res2, hit2, err := RunJobCached(cfg, spec, "digest-a", cache)
	if err != nil {
		t.Fatal(err)
	}
	if !hit2 {
		t.Fatal("second run missed")
	}
	got, err := os.ReadFile(res2.OutPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatal("cached bytes diverge from the first run")
	}
	if res2.Report == nil || res2.Report.Requests != res1.Report.Requests {
		t.Fatalf("restored report: %+v", res2.Report)
	}
	if cache.stores != 1 {
		t.Fatalf("hit stored again: %d", cache.stores)
	}

	// A hit with an output path materializes the file there.
	outPath := filepath.Join(dir, "out.csv")
	specOut := spec
	specOut.Out = outPath
	res3, hit3, err := RunJobCached(cfg, specOut, "digest-a", cache)
	if err != nil {
		t.Fatal(err)
	}
	if !hit3 || res3.OutPath != outPath {
		t.Fatalf("hit with out path: hit=%v out=%q", hit3, res3.OutPath)
	}
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, want.Bytes()) {
		t.Fatal("materialized output diverges")
	}

	// A different input digest misses and re-executes.
	_, hit4, err := RunJobCached(cfg, spec, "digest-b", cache)
	if err != nil {
		t.Fatal(err)
	}
	if hit4 {
		t.Fatal("different digest hit")
	}
	if cache.stores != 2 {
		t.Fatalf("stores after second digest: %d", cache.stores)
	}
}

// TestRunJobCachedStreaming checks the streaming path lands in the
// cache too: a streamed job's cached bytes equal its output file.
func TestRunJobCachedStreaming(t *testing.T) {
	dir := t.TempDir()
	old := genOld(t, "ikki", 400, true)
	inPath := filepath.Join(dir, "in.csv")
	f, err := os.Create(inPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteCSV(f, old); err != nil {
		t.Fatal(err)
	}
	f.Close()

	cache := newMemCache(t)
	outPath := filepath.Join(dir, "out.csv")
	spec := JobSpec{In: inPath, Out: outPath, Stream: true}
	res, hit, err := RunJobCached(testConfig(2, core.Options{}), spec, "digest-s", cache)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("first streamed run hit")
	}
	outBytes, err := os.ReadFile(res.OutPath)
	if err != nil {
		t.Fatal(err)
	}
	key := CacheKey("digest-s", spec)
	cached, _, ok := cache.LookupResult(key)
	if !ok {
		t.Fatal("streamed result not cached")
	}
	cachedBytes, err := os.ReadFile(cached)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(outBytes, cachedBytes) {
		t.Fatal("cached streamed bytes diverge from the output file")
	}

	// An equivalent non-streamed spec hits the streamed result: the
	// fingerprint folds execution strategy away.
	plain := JobSpec{In: inPath}
	_, hitPlain, err := RunJobCached(testConfig(2, core.Options{}), plain, "digest-s", cache)
	if err != nil {
		t.Fatal(err)
	}
	if !hitPlain {
		t.Fatal("in-memory spec missed the streamed cache entry")
	}
}
