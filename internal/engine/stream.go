package engine

import (
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/infer"
	"repro/internal/trace"
)

// ErrModelRequired is returned by ReconstructStream when the input
// needs the inference model (no recorded latencies, or ForceInference)
// but none was supplied. Fit one with FitModel, or use ReconstructPath
// which orchestrates the two passes.
var ErrModelRequired = errors.New("engine: input requires an inference model; fit one with FitModel")

// FitModel runs the global model fit over a request stream with the
// incremental classifier, returning the fitted model and the number of
// requests seen. This is pass one of a streaming reconstruction for
// corpora without recorded latencies. The classifier retains one
// inter-arrival sample (~8 bytes) per request — far below
// materializing the trace, but still O(n); truly bounded streaming is
// only possible for Tsdev-known corpora, which skip this pass.
func FitModel(dec trace.Decoder, opts infer.EstimateOptions) (*infer.Model, int, error) {
	c := infer.NewStreamClassifier()
	err := trace.ForEachBatch(dec, func(batch []trace.Request) error {
		c.AddBatch(batch)
		return nil
	})
	if err != nil {
		trace.CloseDecoder(dec)
		return nil, c.N(), err
	}
	m, err := infer.EstimateGrouping(c.Grouping(), dec.Meta().Name, opts)
	return m, c.N(), err
}

// ReconstructStream runs the sharded reconstruction over a request
// stream, writing the reconstructed trace to enc (Begin through Close;
// the underlying writer stays open) with bounded memory: at most
// O(Workers · MaxShardRequests) requests are resident. (Fitting the
// model beforehand has its own footprint — see FitModel.) m is the
// pre-fitted inference model; it may be nil when the stream records
// latencies (Tsdev-known) and ForceInference is off, and is ignored on
// that recorded path just like the sequential pipeline ignores it.
//
// The input must be non-decreasing in arrival (wrap near-sorted
// corpora in a trace.ReorderDecoder) with non-zero request sizes; the
// planner rejects violations. Non-shard-safe devices that support
// state handoff (device.Stateful — the HDD) run on the epoch pipeline
// (pipeline.go) with the same bounded memory; devices with neither
// capability fall back to materializing the stream and running
// sequentially.
//
// On any error the decoder is closed (trace.CloseDecoder), so an
// abandoned parallel decode never leaks its worker goroutines.
func (e *Engine) ReconstructStream(dec trace.Decoder, enc trace.Encoder, m *infer.Model) (*Report, error) {
	rep, err := e.reconstructStream(dec, enc, m)
	if err != nil {
		trace.CloseDecoder(dec)
		return nil, err
	}
	return rep, nil
}

func (e *Engine) reconstructStream(dec trace.Decoder, enc trace.Encoder, m *infer.Model) (*Report, error) {
	dev := e.cfg.Device()
	shardSafe := device.IsShardSafe(dev)
	if !shardSafe && !device.IsStateful(dev) {
		return e.streamFallback(dec, enc, dev)
	}

	rep := &Report{Workers: e.cfg.Workers}
	first, err := dec.Next()
	if err == io.EOF {
		// Consistent with the in-memory path's Validate: an empty
		// input is a broken corpus, not a successful reconstruction.
		return nil, fmt.Errorf("input: %w", trace.ErrNoRequest)
	}
	if err != nil {
		return nil, err
	}
	meta := dec.Meta()
	outMeta := meta
	outMeta.TsdevKnown = true // emulation records new device times

	useRecorded := meta.TsdevKnown && !e.cfg.Core.ForceInference
	if useRecorded {
		// Parity with the sequential pipeline: the recorded-latency
		// path never consults a model.
		m = nil
	} else if m == nil {
		return nil, ErrModelRequired
	}
	rep.Model = m

	pool := &bufPool{}
	planner := newStreamPlanner(e.cfg, pool)
	produce := func(submit func(shard) error) error {
		feed := func(r trace.Request) error {
			done, err := planner.add(r)
			if err != nil {
				return err
			}
			if done != nil {
				return submit(*done)
			}
			return nil
		}
		if err := feed(first); err != nil {
			return err
		}
		// Fused parallel ingest: with a parallel decoder, its workers
		// fill batches concurrently with this planner loop and with the
		// shard executors downstream, so decode and emulation overlap
		// end-to-end and the planner consumes pre-decoded batches
		// without copying them into its own buffer first.
		err := trace.ForEachBatch(dec, func(batch []trace.Request) error {
			for _, r := range batch {
				if err := feed(r); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return err
		}
		if last := planner.finish(); last != nil {
			return submit(*last)
		}
		return nil
	}

	if !shardSafe {
		return e.streamPipelined(produce, enc, outMeta, m, useRecorded, pool, rep)
	}

	begun := false
	emit := func(res shardResult, offset time.Duration) error {
		if !begun {
			begun = true
			if err := enc.Begin(outMeta); err != nil {
				return err
			}
		}
		for i := range res.reqs {
			res.reqs[i].Arrival += offset
			if err := enc.Write(res.reqs[i]); err != nil {
				return err
			}
		}
		rep.Requests += int64(len(res.reqs))
		rep.Shards++
		rep.IdleCount += res.idleCount
		rep.IdleTotal += res.idleTotal
		rep.AsyncCount += res.asyncCount
		return nil
	}
	if err := e.execute(produce, m, useRecorded, emit, pool); err != nil {
		return nil, err
	}
	return rep, enc.Close()
}

// streamPipelined finishes a streaming reconstruction on the epoch
// pipeline: results arrive in order with final arrivals, pre-rendered
// to bytes when the encoder's records are stateless (ShardEncoder —
// csv/bin), written record-by-record otherwise.
func (e *Engine) streamPipelined(produce func(submit func(shard) error) error, enc trace.Encoder, outMeta trace.Meta, m *infer.Model, useRecorded bool, pool *bufPool, rep *Report) (*Report, error) {
	se, _ := enc.(trace.ShardEncoder)
	begun := false
	emit := func(res pipeResult) error {
		if !begun {
			begun = true
			if err := enc.Begin(outMeta); err != nil {
				return err
			}
		}
		if res.enc != nil {
			if err := se.WriteRaw(res.enc); err != nil {
				return err
			}
		} else {
			for i := range res.reqs {
				if err := enc.Write(res.reqs[i]); err != nil {
					return err
				}
			}
		}
		rep.Requests += int64(res.n)
		rep.Shards++
		rep.IdleCount += res.idleCount
		rep.IdleTotal += res.idleTotal
		rep.AsyncCount += res.asyncCount
		return nil
	}
	if err := e.executePipelined(produce, m, useRecorded, se, emit, pool, &rep.DeviceStats); err != nil {
		return nil, err
	}
	return rep, enc.Close()
}

// streamFallback materializes the stream and runs the sequential
// pipeline, for devices with neither shard-safe emulation nor state
// handoff.
func (e *Engine) streamFallback(dec trace.Decoder, enc trace.Encoder, dev device.Device) (*Report, error) {
	old, err := trace.Drain(dec)
	if err != nil {
		return nil, err
	}
	if err := old.Validate(); err != nil {
		return nil, err
	}
	out, rep, err := core.Reconstruct(old, dev, e.cfg.Core)
	if err != nil {
		return nil, err
	}
	if err := trace.EncodeTrace(enc, out); err != nil {
		return nil, err
	}
	return reportFromCore(rep, int64(out.Len()), 1), nil
}

// reportFromCore projects a core.Report onto the engine's aggregate
// report.
func reportFromCore(rep *core.Report, requests int64, workers int) *Report {
	return &Report{
		Model:       rep.Model,
		Requests:    requests,
		Shards:      rep.Shards,
		Workers:     workers,
		IdleCount:   rep.IdleCount,
		IdleTotal:   rep.IdleTotal,
		AsyncCount:  rep.AsyncCount,
		DeviceStats: rep.DeviceStats,
	}
}

// ReconstructPath orchestrates a whole streaming reconstruction from
// an input file: pass one fits the model if the corpus needs it, pass
// two streams the sharded reconstruction into enc. reorderWindow
// (<= 1 = none) inserts a bounded arrival-sort window, which the
// near-sorted event-traced corpora (msrc) need. Both passes decode on
// the engine's worker count via the segmented parallel decoder when
// the input file is large enough to split.
func (e *Engine) ReconstructPath(inPath, informat string, reorderWindow int, enc trace.Encoder) (*Report, error) {
	fsp := e.cfg.Trace.Start(e.cfg.Trace.Root(), "fit")
	m, err := e.fitModelFromPath(inPath, informat, reorderWindow)
	fsp.End()
	if err != nil {
		return nil, err
	}
	dec, closeDec, err := openDecoder(inPath, informat, reorderWindow, e.cfg.Workers)
	if err != nil {
		return nil, err
	}
	defer closeDec()
	return e.ReconstructStream(dec, enc, m)
}

// fitModelFromPath is pass one of ReconstructPath: a cheap probe of
// the first record decides whether the corpus needs inference, and if
// so the input is re-opened and fitted with FitModel.
func (e *Engine) fitModelFromPath(inPath, informat string, reorderWindow int) (*infer.Model, error) {
	// The probe only needs the header metadata, which doesn't depend
	// on record order — skip the reorder window (so it doesn't buffer
	// a whole window of requests to answer a one-record question) and
	// the parallel decoder (one record never justifies a fan-out).
	probe, closeProbe, err := openDecoder(inPath, informat, 0, 1)
	if err != nil {
		return nil, err
	}
	_, err = probe.Next()
	needModel := !probe.Meta().TsdevKnown || e.cfg.Core.ForceInference
	closeProbe()
	if err == io.EOF {
		return nil, nil // empty input: pass two reports ErrNoRequest
	}
	if err != nil {
		return nil, err
	}
	if !needModel {
		return nil, nil
	}
	dec, closeDec, err := openDecoder(inPath, informat, reorderWindow, e.cfg.Workers)
	if err != nil {
		return nil, err
	}
	defer closeDec()
	m, _, err := FitModel(dec, e.cfg.Core.Estimate)
	return m, err
}

// openDecoder opens a format decoder over a file — segmented parallel
// when workers > 1 and the file is big enough to split — optionally
// wrapped in a reorder window.
func openDecoder(path, format string, reorderWindow, workers int) (trace.Decoder, func(), error) {
	dec, _, closeDec, err := trace.OpenFileDecoder(path, format, workers)
	if err != nil {
		return nil, nil, err
	}
	if reorderWindow > 1 {
		dec = trace.NewReorderDecoder(dec, reorderWindow)
	}
	return dec, closeDec, nil
}
