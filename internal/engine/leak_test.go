package engine

import (
	"bytes"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/trace"
)

// TestStreamAbandonClosesDecoder is the engine side of the PR 4 leak
// delta: a planner validation error abandons the input decoder
// mid-stream, and ReconstructStream must close it so a parallel
// decoder's workers exit instead of leaking.
func TestStreamAbandonClosesDecoder(t *testing.T) {
	old := genOld(t, "MSNFS", 40_000, true)
	var buf bytes.Buffer
	if err := trace.WriteCSV(&buf, old); err != nil {
		t.Fatal(err)
	}
	// Swap an early record's arrival far forward so the planner sees an
	// unsorted stream after a few shards, with decode segments still in
	// flight behind it.
	lines := strings.SplitAfter(buf.String(), "\n")
	lines[len(lines)/4] = "999999999.000,0,100,8,R,5.000,0\n"
	data := []byte(strings.Join(lines, ""))
	if len(data) < trace.ParallelMinBytes {
		t.Fatalf("fixture too small (%d bytes) for the parallel decoder", len(data))
	}
	path := t.TempDir() + "/unsorted.csv"
	if err := os.WriteFile(path, data, 0o666); err != nil {
		t.Fatal(err)
	}

	base := runtime.NumGoroutine()
	for i := 0; i < 3; i++ {
		dec, closeDec, err := openDecoder(path, "csv", 0, 4)
		if err != nil {
			t.Fatal(err)
		}
		e := New(testConfig(2, core.Options{}))
		if _, err := e.ReconstructStream(dec, trace.NewCSVEncoder(bytes.NewBuffer(nil)), nil); err == nil {
			t.Fatal("want an unsorted-input error")
		}
		// ReconstructStream already closed the decoder; the openDecoder
		// close func is the caller's usual cleanup and must be a no-op
		// join on top.
		closeDec()
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d > baseline %d", runtime.NumGoroutine(), base)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
