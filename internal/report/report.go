// Package report renders experiment results as aligned ASCII tables
// and compact CDF series, the textual equivalents of the paper's
// figures.
package report

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Table is a simple aligned-column table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case time.Duration:
			row[i] = FormatDuration(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = pad(c, widths[i])
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// FormatDuration renders a duration with the µs/ms/s unit the paper's
// axes use, three significant digits.
func FormatDuration(d time.Duration) string {
	switch {
	case d < 0:
		return "-" + FormatDuration(-d)
	case d < time.Millisecond:
		return fmt.Sprintf("%.3gus", float64(d)/float64(time.Microsecond))
	case d < time.Second:
		return fmt.Sprintf("%.3gms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%.3gs", d.Seconds())
	}
}

// Percent formats a fraction as a percentage.
func Percent(f float64) string { return fmt.Sprintf("%.1f%%", f*100) }

// CDFSeries compactly summarizes a sample as values at fixed CDF
// levels — the textual form of the paper's CDF plots.
type CDFSeries struct {
	Name   string
	Levels []float64 // e.g. 0.1, 0.2, ... 0.9, 0.99
	Values []float64 // sample value at each level
}

// DefaultLevels are the CDF levels every experiment reports.
var DefaultLevels = []float64{0.01, 0.10, 0.25, 0.50, 0.75, 0.90, 0.99}

// NewCDFSeries computes the series for a sample at DefaultLevels.
func NewCDFSeries(name string, sample []float64) CDFSeries {
	s := append([]float64(nil), sample...)
	sort.Float64s(s)
	cs := CDFSeries{Name: name, Levels: DefaultLevels}
	for _, q := range cs.Levels {
		if len(s) == 0 {
			cs.Values = append(cs.Values, 0)
			continue
		}
		idx := int(q * float64(len(s)-1))
		cs.Values = append(cs.Values, s[idx])
	}
	return cs
}

// RenderCDFs prints multiple series side by side, one row per level.
// Values are treated as microseconds.
func RenderCDFs(w io.Writer, title string, series ...CDFSeries) {
	t := &Table{Title: title, Headers: []string{"CDF"}}
	for _, s := range series {
		t.Headers = append(t.Headers, s.Name)
	}
	for li, q := range DefaultLevels {
		cells := []any{fmt.Sprintf("p%02.0f", q*100)}
		for _, s := range series {
			v := time.Duration(s.Values[li] * float64(time.Microsecond))
			cells = append(cells, FormatDuration(v))
		}
		t.AddRow(cells...)
	}
	t.Render(w)
}
