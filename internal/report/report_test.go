package report

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestTableRender(t *testing.T) {
	tbl := &Table{Title: "demo", Headers: []string{"a", "bee"}}
	tbl.AddRow("x", 1)
	tbl.AddRow("longer", 2.5)
	tbl.AddRow("dur", 1500*time.Microsecond)
	var buf bytes.Buffer
	tbl.Render(&buf)
	out := buf.String()
	if !strings.Contains(out, "== demo ==") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "longer") || !strings.Contains(out, "2.500") {
		t.Fatalf("missing cells:\n%s", out)
	}
	if !strings.Contains(out, "1.5ms") {
		t.Fatalf("duration not formatted:\n%s", out)
	}
	// Header separator row present.
	if !strings.Contains(out, "---") {
		t.Fatalf("missing separator:\n%s", out)
	}
}

func TestFormatDuration(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want string
	}{
		{500 * time.Nanosecond, "0.5us"},
		{42 * time.Microsecond, "42us"},
		{1500 * time.Microsecond, "1.5ms"},
		{2 * time.Second, "2s"},
		{-3 * time.Millisecond, "-3ms"},
	}
	for _, c := range cases {
		if got := FormatDuration(c.d); got != c.want {
			t.Errorf("FormatDuration(%v) = %q, want %q", c.d, got, c.want)
		}
	}
}

func TestPercent(t *testing.T) {
	if Percent(0.123) != "12.3%" {
		t.Fatalf("Percent = %q", Percent(0.123))
	}
}

func TestNewCDFSeries(t *testing.T) {
	sample := make([]float64, 100)
	for i := range sample {
		sample[i] = float64(i)
	}
	s := NewCDFSeries("x", sample)
	if len(s.Values) != len(DefaultLevels) {
		t.Fatal("level count mismatch")
	}
	// Median of 0..99 ~ 49.
	for i, q := range s.Levels {
		if q == 0.50 && (s.Values[i] < 45 || s.Values[i] > 55) {
			t.Fatalf("median = %v", s.Values[i])
		}
	}
	// Monotone in level.
	for i := 1; i < len(s.Values); i++ {
		if s.Values[i] < s.Values[i-1] {
			t.Fatal("series not monotone")
		}
	}
	empty := NewCDFSeries("e", nil)
	for _, v := range empty.Values {
		if v != 0 {
			t.Fatal("empty series should be zeros")
		}
	}
}

func TestRenderCDFs(t *testing.T) {
	a := NewCDFSeries("alpha", []float64{1, 2, 3})
	b := NewCDFSeries("beta", []float64{10, 20, 30})
	var buf bytes.Buffer
	RenderCDFs(&buf, "cdfs", a, b)
	out := buf.String()
	for _, want := range []string{"alpha", "beta", "p50", "p99"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}
