package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestKSIdenticalSamples(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	if d := KolmogorovSmirnov(a, a); d != 0 {
		t.Fatalf("KS(a,a) = %v", d)
	}
}

func TestKSDisjointSamples(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{100, 200, 300}
	if d := KolmogorovSmirnov(a, b); d != 1 {
		t.Fatalf("KS(disjoint) = %v, want 1", d)
	}
}

func TestKSEmpty(t *testing.T) {
	if KolmogorovSmirnov(nil, []float64{1}) != 1 {
		t.Fatal("KS with empty sample should be 1")
	}
}

func TestKSKnownValue(t *testing.T) {
	// a = {1,2}, b = {1.5}: F_a jumps 0.5 at 1 and 2; F_b jumps 1 at
	// 1.5. Max gap is 0.5 (at 1 or after 1.5).
	d := KolmogorovSmirnov([]float64{1, 2}, []float64{1.5})
	if !almostEq(d, 0.5, 1e-12) {
		t.Fatalf("KS = %v, want 0.5", d)
	}
}

func TestKSSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := make([]float64, 100)
	b := make([]float64, 150)
	for i := range a {
		a[i] = rng.NormFloat64()
	}
	for i := range b {
		b[i] = rng.NormFloat64() + 0.5
	}
	if d1, d2 := KolmogorovSmirnov(a, b), KolmogorovSmirnov(b, a); !almostEq(d1, d2, 1e-12) {
		t.Fatalf("KS not symmetric: %v vs %v", d1, d2)
	}
}

func TestKSBoundsProperty(t *testing.T) {
	f := func(ra, rb []int8) bool {
		a := make([]float64, len(ra))
		b := make([]float64, len(rb))
		for i, v := range ra {
			a[i] = float64(v)
		}
		for i, v := range rb {
			b[i] = float64(v)
		}
		d := KolmogorovSmirnov(a, b)
		return d >= 0 && d <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWasserstein1Shift(t *testing.T) {
	// Shifting a distribution by c moves W1 by exactly c.
	a := []float64{1, 2, 3, 4}
	b := []float64{11, 12, 13, 14}
	if d := Wasserstein1(a, b); !almostEq(d, 10, 1e-9) {
		t.Fatalf("W1(shift 10) = %v", d)
	}
}

func TestWasserstein1Identical(t *testing.T) {
	a := []float64{5, 5, 7}
	if d := Wasserstein1(a, a); !almostEq(d, 0, 1e-12) {
		t.Fatalf("W1(a,a) = %v", d)
	}
}

func TestWasserstein1Empty(t *testing.T) {
	if !math.IsInf(Wasserstein1(nil, []float64{1}), 1) {
		t.Fatal("W1 with empty sample should be +Inf")
	}
}

func TestWassersteinDistinguishesWhatKSCannot(t *testing.T) {
	// Both b and c are fully disjoint from a (KS = 1 for both), but c
	// moved its mass 100x further; W1 must see that.
	a := []float64{1, 2, 3}
	b := []float64{10, 11, 12}
	c := []float64{1000, 1001, 1002}
	if KolmogorovSmirnov(a, b) != 1 || KolmogorovSmirnov(a, c) != 1 {
		t.Fatal("setup: both should be KS=1")
	}
	if Wasserstein1(a, c) <= Wasserstein1(a, b) {
		t.Fatal("W1 should rank the farther distribution higher")
	}
}

func TestWasserstein1SymmetricProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		m := 1 + rng.Intn(50)
		a := make([]float64, n)
		b := make([]float64, m)
		for i := range a {
			a[i] = rng.Float64() * 100
		}
		for i := range b {
			b[i] = rng.Float64() * 100
		}
		return almostEq(Wasserstein1(a, b), Wasserstein1(b, a), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestTotalVariationBinned(t *testing.T) {
	a := []float64{1, 1, 1, 1}
	b := []float64{9, 9, 9, 9}
	tv, err := TotalVariationBinned(a, b, LinearBins, 0, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(tv, 1, 1e-12) {
		t.Fatalf("TV(disjoint) = %v, want 1", tv)
	}
	tv, err = TotalVariationBinned(a, a, LinearBins, 0, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	if tv != 0 {
		t.Fatalf("TV(a,a) = %v", tv)
	}
	if _, err := TotalVariationBinned(a, b, LinearBins, 5, 5, 10); err == nil {
		t.Fatal("bad domain should error")
	}
}
