package stats

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestECDFBasics(t *testing.T) {
	e := NewECDF([]float64{3, 1, 2, 2})
	if e.N() != 4 {
		t.Fatalf("N = %d", e.N())
	}
	if got := e.Eval(0.5); got != 0 {
		t.Fatalf("Eval below min = %v", got)
	}
	if got := e.Eval(1); !almostEq(got, 0.25, 1e-12) {
		t.Fatalf("Eval(1) = %v", got)
	}
	if got := e.Eval(2); !almostEq(got, 0.75, 1e-12) {
		t.Fatalf("Eval(2) = %v (duplicates must collapse)", got)
	}
	if got := e.Eval(2.5); !almostEq(got, 0.75, 1e-12) {
		t.Fatalf("Eval(2.5) = %v", got)
	}
	if got := e.Eval(99); got != 1 {
		t.Fatalf("Eval above max = %v", got)
	}
}

func TestECDFEmpty(t *testing.T) {
	e := NewECDF(nil)
	if e.Eval(1) != 0 || e.Quantile(0.5) != 0 || e.N() != 0 {
		t.Fatal("empty ECDF should be degenerate zeros")
	}
}

func TestECDFQuantile(t *testing.T) {
	e := NewECDF([]float64{10, 20, 30, 40})
	if got := e.Quantile(0.25); got != 10 {
		t.Fatalf("Q(0.25) = %v", got)
	}
	if got := e.Quantile(0.5); got != 20 {
		t.Fatalf("Q(0.5) = %v", got)
	}
	if got := e.Quantile(1); got != 40 {
		t.Fatalf("Q(1) = %v", got)
	}
	if got := e.Quantile(2); got != 40 {
		t.Fatalf("Q(clamped) = %v", got)
	}
	if got := e.Quantile(-1); got != 10 {
		t.Fatalf("Q(<=0) = %v", got)
	}
}

func TestECDFSupportStrictlyIncreasing(t *testing.T) {
	e := NewECDF([]float64{5, 5, 5, 1, 1, 9})
	sup := e.Support()
	for i := 1; i < len(sup); i++ {
		if sup[i] <= sup[i-1] {
			t.Fatal("support must be strictly increasing")
		}
	}
	if len(sup) != 3 {
		t.Fatalf("support len = %d, want 3", len(sup))
	}
}

func TestECDFPointsAreCopies(t *testing.T) {
	e := NewECDF([]float64{1, 2})
	xs, cs := e.Points()
	xs[0], cs[0] = -99, -99
	if e.Support()[0] == -99 || e.Probs()[0] == -99 {
		t.Fatal("Points must return copies")
	}
}

func TestECDFMaxGap(t *testing.T) {
	// 80% of mass at x=7: the max jump must be at 7.
	sample := []float64{1, 2, 7, 7, 7, 7, 7, 7, 7, 7}
	x, gap := NewECDF(sample).MaxGapBelow()
	if x != 7 {
		t.Fatalf("max gap at %v, want 7", x)
	}
	if !almostEq(gap, 0.8, 1e-12) {
		t.Fatalf("gap = %v, want 0.8", gap)
	}
}

// Property: Eval agrees with the definitional count-based CDF.
func TestECDFEvalMatchesDefinition(t *testing.T) {
	f := func(raw []int8, probe int8) bool {
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		e := NewECDF(xs)
		x := float64(probe)
		count := 0
		for _, v := range xs {
			if v <= x {
				count++
			}
		}
		want := 0.0
		if len(xs) > 0 {
			want = float64(count) / float64(len(xs))
		}
		return almostEq(e.Eval(x), want, 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: cumulative probabilities are monotone and end at 1.
func TestECDFMonotoneProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(300)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.ExpFloat64() * 1000
		}
		e := NewECDF(xs)
		probs := e.Probs()
		if !sort.Float64sAreSorted(probs) {
			t.Fatal("probs not monotone")
		}
		if !almostEq(probs[len(probs)-1], 1, 1e-12) {
			t.Fatalf("last prob = %v", probs[len(probs)-1])
		}
	}
}
